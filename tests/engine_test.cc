#include <gtest/gtest.h>

#include "arch/engine.h"
#include "common/rng.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{9}),
                        Value(int64_t{1}), Value(int64_t{2}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

TEST(EngineTest, RegisterAndSubmit) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  EXPECT_FALSE(engine.RegisterStream("packets", gen::PacketSchema()).ok());

  auto q = engine.Submit("select src_ip from packets where len > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_EQ((*q)->output_schema().field(0).name, "src_ip");

  EXPECT_FALSE(engine.Submit("select nosuch from packets").ok());
  EXPECT_FALSE(engine.Submit("select x from nostream").ok());
}

TEST(EngineTest, IngestFansOutToAllQueries) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto big = engine.Submit("select ts from packets where len > 100");
  auto tcp = engine.Submit("select ts from packets where protocol = 6");
  ASSERT_TRUE(big.ok() && tcp.ok());

  ASSERT_TRUE(engine.Ingest("packets", Pkt(1, 1, 6, 50)).ok());
  ASSERT_TRUE(engine.Ingest("packets", Pkt(2, 1, 17, 500)).ok());
  ASSERT_TRUE(engine.Ingest("packets", Pkt(3, 1, 6, 500)).ok());
  engine.FinishAll();

  EXPECT_EQ((*big)->result_count(), 2u);  // len 500 twice.
  EXPECT_EQ((*tcp)->result_count(), 2u);  // proto 6 twice.
}

TEST(EngineTest, UnknownStreamRejected) {
  StreamEngine engine;
  EXPECT_EQ(engine.Ingest("ghost", Pkt(1, 1, 6, 1)).code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, IngestAfterFinishRejected) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  engine.FinishAll();
  EXPECT_FALSE(engine.Ingest("packets", Pkt(1, 1, 6, 1)).ok());
}

TEST(EngineTest, CallbackStreamsResults) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts, len from packets where len > 10");
  ASSERT_TRUE(q.ok());
  std::vector<int64_t> seen;
  (*q)->OnResult([&](const TupleRef& t) { seen.push_back(t->at(1).AsInt()); });
  (void)engine.Ingest("packets", Pkt(1, 1, 6, 5));
  (void)engine.Ingest("packets", Pkt(2, 1, 6, 50));
  EXPECT_EQ(seen, std::vector<int64_t>{50});
  EXPECT_EQ((*q)->result_count(), 1u);  // Collected too.
}

TEST(EngineTest, GroupByQueryThroughEngine) {
  StreamEngine engine;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), domains).ok());
  auto q = engine.Submit(
      "select tb, src_ip, count(*) from packets group by ts/10 as tb, src_ip");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  for (int64_t i = 0; i < 25; ++i) {
    (void)engine.Ingest("packets", Pkt(i, i % 2, 6, 100));
  }
  engine.FinishAll();
  // Buckets 0,1,2 x sources 0,1.
  EXPECT_EQ((*q)->result_count(), 6u);
}

TEST(EngineTest, ReorderSlackRestoresOrderForWindows) {
  StreamEngine engine;
  StreamOptions opt;
  opt.reorder_slack = 5;
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), {}, opt).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/10 as tb");
  ASSERT_TRUE(q.ok());
  // Slightly disordered arrival; the reorder front-end fixes it before
  // the group-by sees it.
  for (int64_t ts : {2, 1, 4, 3, 6, 5, 12, 11, 14, 13, 22, 21}) {
    (void)engine.Ingest("packets", Pkt(ts, 1, 6, 1));
  }
  engine.FinishAll();
  std::map<int64_t, int64_t> rows;
  for (const TupleRef& r : (*q)->results()) {
    rows[r->at(0).AsInt()] = r->at(1).AsInt();
  }
  EXPECT_EQ(rows[0], 6);
  EXPECT_EQ(rows[1], 4);
  EXPECT_EQ(rows[2], 2);
}

TEST(EngineTest, HeartbeatClosesIdleBuckets) {
  StreamEngine engine;
  StreamOptions opt;
  opt.heartbeat_period = 10;
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), {}, opt).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/10 as tb");
  ASSERT_TRUE(q.ok());
  (void)engine.Ingest("packets", Pkt(1, 1, 6, 1));
  (void)engine.Ingest("packets", Pkt(2, 1, 6, 1));
  EXPECT_EQ((*q)->result_count(), 0u);
  // A much later tuple triggers heartbeats 10 and 20, closing bucket 0 —
  // without needing the application to punctuate.
  (void)engine.Ingest("packets", Pkt(25, 1, 6, 1));
  EXPECT_EQ((*q)->result_count(), 1u);
}

TEST(EngineTest, MultiQuerySoak) {
  // Several queries of different shapes share one ingest path; results
  // cross-check against directly computed truths.
  StreamEngine engine;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), domains).ok());

  auto q_filter = engine.Submit("select ts from packets where len > 1000");
  auto q_agg = engine.Submit(
      "select tb, sum(len) from packets where protocol = 6 "
      "group by ts/100 as tb");
  auto q_distinct = engine.Submit("select distinct protocol from packets");
  ASSERT_TRUE(q_filter.ok() && q_agg.ok() && q_distinct.ok());

  gen::PacketGenerator tap(gen::PacketOptions{});
  uint64_t truth_big = 0;
  std::map<int64_t, int64_t> truth_sum;
  std::set<int64_t> truth_protos;
  for (int i = 0; i < 20000; ++i) {
    TupleRef p = tap.Next();
    truth_big += p->at(gen::PacketCols::kLen).AsInt() > 1000 ? 1 : 0;
    if (p->at(gen::PacketCols::kProtocol).AsInt() == 6) {
      truth_sum[p->ts() / 100] += p->at(gen::PacketCols::kLen).AsInt();
    }
    truth_protos.insert(p->at(gen::PacketCols::kProtocol).AsInt());
    ASSERT_TRUE(engine.Ingest("packets", p).ok());
  }
  engine.FinishAll();

  EXPECT_EQ((*q_filter)->result_count(), truth_big);
  EXPECT_EQ((*q_distinct)->result_count(), truth_protos.size());
  std::map<int64_t, int64_t> got_sum;
  for (const TupleRef& r : (*q_agg)->results()) {
    got_sum[r->at(0).AsInt()] = r->at(1).AsInt();
  }
  EXPECT_EQ(got_sum, truth_sum);
  EXPECT_GT(engine.TotalStateBytes(), 0u);
}

TEST(EngineTest, TwoStreamJoinThroughEngine) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("syn", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.RegisterStream("synack", gen::PacketSchema()).ok());
  auto q = engine.Submit(
      "select s.ts, a.ts - s.ts as rtt "
      "from syn s [range 100], synack a [range 100] "
      "where s.src_ip = a.dst_ip");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto syn = [&](int64_t ts, int64_t src) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{0}),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{0}), Value("")});
  };
  auto ack = [&](int64_t ts, int64_t dst) {
    return MakeTuple(ts, {Value(ts), Value(int64_t{0}), Value(dst),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{1}), Value("")});
  };
  (void)engine.Ingest("syn", syn(10, 42));
  (void)engine.Ingest("synack", ack(15, 42));
  engine.FinishAll();
  ASSERT_EQ((*q)->result_count(), 1u);
  EXPECT_EQ((*q)->results()[0]->at(1).AsInt(), 5);
}

// --- Opt-in threaded execution (EnableParallel) ---

TEST(EngineParallelTest, ChainQueryMatchesSerial) {
  const char* kQuery =
      "select tb, src_ip, count(*) from packets "
      "where protocol = 6 group by ts/60 as tb, src_ip";
  auto feed = [](StreamEngine& engine) {
    Rng rng(7);
    for (int64_t i = 0; i < 5000; ++i) {
      ASSERT_TRUE(engine
                      .Ingest("packets",
                              Pkt(i, static_cast<int64_t>(rng.Uniform(8)),
                                  (i % 3 == 0) ? 17 : 6,
                                  static_cast<int64_t>(rng.Uniform(1500))))
                      .ok());
    }
    engine.FinishAll();
  };

  StreamEngine serial;
  ASSERT_TRUE(serial.RegisterStream("packets", gen::PacketSchema()).ok());
  auto sq = serial.Submit(kQuery);
  ASSERT_TRUE(sq.ok());
  feed(serial);

  StreamEngine par;
  ASSERT_TRUE(par.RegisterStream("packets", gen::PacketSchema()).ok());
  auto pq = par.Submit(kQuery);
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(par.EnableParallel(*pq).ok());
  EXPECT_TRUE((*pq)->parallel());
  // Single-input plan: one worker per operator of the chain.
  ASSERT_NE((*pq)->parallel_executor(), nullptr);
  EXPECT_GE((*pq)->parallel_executor()->num_stages(), 2u);
  feed(par);

  ASSERT_EQ((*sq)->result_count(), (*pq)->result_count());
  // The chain preserves order stage-to-stage, so rows match 1:1.
  for (size_t i = 0; i < (*sq)->result_count(); ++i) {
    EXPECT_EQ(*(*sq)->results()[i], *(*pq)->results()[i]) << "row " << i;
  }
  // Every stage saw the full (post-filter) flow; nothing was shed.
  const ParallelExecutor* exec = (*pq)->parallel_executor();
  for (size_t i = 0; i < exec->num_stages(); ++i) {
    EXPECT_EQ(exec->stage_stats(i).dropped, 0u) << "stage " << i;
  }
}

TEST(EngineParallelTest, JoinQueryRunsWholePlanOnWorker) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("syn", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.RegisterStream("synack", gen::PacketSchema()).ok());
  auto q = engine.Submit(
      "select s.ts, a.ts - s.ts as rtt "
      "from syn s [range 100], synack a [range 100] "
      "where s.src_ip = a.dst_ip");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.EnableParallel(*q).ok());
  // Multi-input plans fall back to one whole-query stage.
  EXPECT_EQ((*q)->parallel_executor()->num_stages(), 1u);

  auto syn = [&](int64_t ts, int64_t src) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{0}),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{0}), Value("")});
  };
  auto ack = [&](int64_t ts, int64_t dst) {
    return MakeTuple(ts, {Value(ts), Value(int64_t{0}), Value(dst),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{1}), Value("")});
  };
  for (int64_t i = 0; i < 200; ++i) {
    (void)engine.Ingest("syn", syn(10 * i, i % 16));
    (void)engine.Ingest("synack", ack(10 * i + 5, i % 16));
  }
  engine.FinishAll();
  // Each synack joins the syns of the same key within range 100.
  EXPECT_GT((*q)->result_count(), 0u);
  for (const TupleRef& row : (*q)->results()) {
    EXPECT_EQ(row->at(1).AsInt(), 5);
  }
}

TEST(EngineParallelTest, EnableParallelValidation) {
  StreamEngine engine;
  StreamOptions opts;
  opts.reorder_slack = 8;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  ASSERT_TRUE(
      engine.RegisterStream("disordered", gen::PacketSchema(), {}, opts).ok());

  auto fronted = engine.Submit("select ts from disordered where len > 0");
  ASSERT_TRUE(fronted.ok());
  EXPECT_FALSE(engine.EnableParallel(*fronted).ok());  // Has a front-end.

  auto late = engine.Submit("select ts from packets where len > 0");
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(engine.Ingest("packets", Pkt(1, 1, 6, 10)).ok());
  EXPECT_FALSE(engine.EnableParallel(*late).ok());  // Already ingested.

  EXPECT_FALSE(engine.EnableParallel(nullptr).ok());
  engine.FinishAll();
}

}  // namespace
}  // namespace sqp
