#include <gtest/gtest.h>

#include "arch/engine.h"
#include "common/rng.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{9}),
                        Value(int64_t{1}), Value(int64_t{2}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

TEST(EngineTest, RegisterAndSubmit) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  EXPECT_FALSE(engine.RegisterStream("packets", gen::PacketSchema()).ok());

  auto q = engine.Submit("select src_ip from packets where len > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_EQ((*q)->output_schema().field(0).name, "src_ip");

  EXPECT_FALSE(engine.Submit("select nosuch from packets").ok());
  EXPECT_FALSE(engine.Submit("select x from nostream").ok());
}

TEST(EngineTest, IngestFansOutToAllQueries) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto big = engine.Submit("select ts from packets where len > 100");
  auto tcp = engine.Submit("select ts from packets where protocol = 6");
  ASSERT_TRUE(big.ok() && tcp.ok());

  ASSERT_TRUE(engine.Ingest("packets", Pkt(1, 1, 6, 50)).ok());
  ASSERT_TRUE(engine.Ingest("packets", Pkt(2, 1, 17, 500)).ok());
  ASSERT_TRUE(engine.Ingest("packets", Pkt(3, 1, 6, 500)).ok());
  engine.FinishAll();

  EXPECT_EQ((*big)->result_count(), 2u);  // len 500 twice.
  EXPECT_EQ((*tcp)->result_count(), 2u);  // proto 6 twice.
}

TEST(EngineTest, UnknownStreamRejected) {
  StreamEngine engine;
  EXPECT_EQ(engine.Ingest("ghost", Pkt(1, 1, 6, 1)).code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, IngestAfterFinishRejected) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  engine.FinishAll();
  EXPECT_FALSE(engine.Ingest("packets", Pkt(1, 1, 6, 1)).ok());
}

TEST(EngineTest, CallbackStreamsResults) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts, len from packets where len > 10");
  ASSERT_TRUE(q.ok());
  std::vector<int64_t> seen;
  (*q)->OnResult([&](const TupleRef& t) { seen.push_back(t->at(1).AsInt()); });
  (void)engine.Ingest("packets", Pkt(1, 1, 6, 5));
  (void)engine.Ingest("packets", Pkt(2, 1, 6, 50));
  EXPECT_EQ(seen, std::vector<int64_t>{50});
  EXPECT_EQ((*q)->result_count(), 1u);  // Collected too.
}

TEST(EngineTest, GroupByQueryThroughEngine) {
  StreamEngine engine;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), domains).ok());
  auto q = engine.Submit(
      "select tb, src_ip, count(*) from packets group by ts/10 as tb, src_ip");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  for (int64_t i = 0; i < 25; ++i) {
    (void)engine.Ingest("packets", Pkt(i, i % 2, 6, 100));
  }
  engine.FinishAll();
  // Buckets 0,1,2 x sources 0,1.
  EXPECT_EQ((*q)->result_count(), 6u);
}

TEST(EngineTest, ReorderSlackRestoresOrderForWindows) {
  StreamEngine engine;
  StreamOptions opt;
  opt.reorder_slack = 5;
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), {}, opt).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/10 as tb");
  ASSERT_TRUE(q.ok());
  // Slightly disordered arrival; the reorder front-end fixes it before
  // the group-by sees it.
  for (int64_t ts : {2, 1, 4, 3, 6, 5, 12, 11, 14, 13, 22, 21}) {
    (void)engine.Ingest("packets", Pkt(ts, 1, 6, 1));
  }
  engine.FinishAll();
  std::map<int64_t, int64_t> rows;
  for (const TupleRef& r : (*q)->results()) {
    rows[r->at(0).AsInt()] = r->at(1).AsInt();
  }
  EXPECT_EQ(rows[0], 6);
  EXPECT_EQ(rows[1], 4);
  EXPECT_EQ(rows[2], 2);
}

TEST(EngineTest, HeartbeatClosesIdleBuckets) {
  StreamEngine engine;
  StreamOptions opt;
  opt.heartbeat_period = 10;
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), {}, opt).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/10 as tb");
  ASSERT_TRUE(q.ok());
  (void)engine.Ingest("packets", Pkt(1, 1, 6, 1));
  (void)engine.Ingest("packets", Pkt(2, 1, 6, 1));
  EXPECT_EQ((*q)->result_count(), 0u);
  // A much later tuple triggers heartbeats 10 and 20, closing bucket 0 —
  // without needing the application to punctuate.
  (void)engine.Ingest("packets", Pkt(25, 1, 6, 1));
  EXPECT_EQ((*q)->result_count(), 1u);
}

TEST(EngineTest, MultiQuerySoak) {
  // Several queries of different shapes share one ingest path; results
  // cross-check against directly computed truths.
  StreamEngine engine;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  ASSERT_TRUE(
      engine.RegisterStream("packets", gen::PacketSchema(), domains).ok());

  auto q_filter = engine.Submit("select ts from packets where len > 1000");
  auto q_agg = engine.Submit(
      "select tb, sum(len) from packets where protocol = 6 "
      "group by ts/100 as tb");
  auto q_distinct = engine.Submit("select distinct protocol from packets");
  ASSERT_TRUE(q_filter.ok() && q_agg.ok() && q_distinct.ok());

  gen::PacketGenerator tap(gen::PacketOptions{});
  uint64_t truth_big = 0;
  std::map<int64_t, int64_t> truth_sum;
  std::set<int64_t> truth_protos;
  for (int i = 0; i < 20000; ++i) {
    TupleRef p = tap.Next();
    truth_big += p->at(gen::PacketCols::kLen).AsInt() > 1000 ? 1 : 0;
    if (p->at(gen::PacketCols::kProtocol).AsInt() == 6) {
      truth_sum[p->ts() / 100] += p->at(gen::PacketCols::kLen).AsInt();
    }
    truth_protos.insert(p->at(gen::PacketCols::kProtocol).AsInt());
    ASSERT_TRUE(engine.Ingest("packets", p).ok());
  }
  engine.FinishAll();

  EXPECT_EQ((*q_filter)->result_count(), truth_big);
  EXPECT_EQ((*q_distinct)->result_count(), truth_protos.size());
  std::map<int64_t, int64_t> got_sum;
  for (const TupleRef& r : (*q_agg)->results()) {
    got_sum[r->at(0).AsInt()] = r->at(1).AsInt();
  }
  EXPECT_EQ(got_sum, truth_sum);
  EXPECT_GT(engine.TotalStateBytes(), 0u);
}

TEST(EngineTest, TwoStreamJoinThroughEngine) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("syn", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.RegisterStream("synack", gen::PacketSchema()).ok());
  auto q = engine.Submit(
      "select s.ts, a.ts - s.ts as rtt "
      "from syn s [range 100], synack a [range 100] "
      "where s.src_ip = a.dst_ip");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto syn = [&](int64_t ts, int64_t src) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{0}),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{0}), Value("")});
  };
  auto ack = [&](int64_t ts, int64_t dst) {
    return MakeTuple(ts, {Value(ts), Value(int64_t{0}), Value(dst),
                          Value(int64_t{0}), Value(int64_t{0}),
                          Value(int64_t{6}), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{1}), Value("")});
  };
  (void)engine.Ingest("syn", syn(10, 42));
  (void)engine.Ingest("synack", ack(15, 42));
  engine.FinishAll();
  ASSERT_EQ((*q)->result_count(), 1u);
  EXPECT_EQ((*q)->results()[0]->at(1).AsInt(), 5);
}

}  // namespace
}  // namespace sqp
