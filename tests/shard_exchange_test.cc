#include <gtest/gtest.h>

#include <vector>

#include "exec/exchange.h"
#include "exec/plan.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t key, int64_t payload = 0) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(payload)});
}

// --- ShardRouter ---

TEST(ShardRouterTest, SingleShardAlwaysZero) {
  ShardRouter r(1, ShardRouting::kDisjoint, {{1}});
  EXPECT_EQ(r.Route(Element(T(1, 42)), 0), 0);
  EXPECT_EQ(r.Route(Element(Punctuation::Watermark(5)), 0), 0);
}

TEST(ShardRouterTest, DisjointIsDeterministicPerKey) {
  ShardRouter r(4, ShardRouting::kDisjoint, {{1}});
  for (int64_t key = 0; key < 64; ++key) {
    int first = r.Route(Element(T(1, key)), 0);
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 4);
    // Same key, different ts/payload: same shard, always.
    EXPECT_EQ(r.Route(Element(T(99, key, 7)), 0), first);
  }
}

TEST(ShardRouterTest, WatermarksBroadcast) {
  ShardRouter r(4, ShardRouting::kDisjoint, {{1}});
  EXPECT_EQ(r.Route(Element(Punctuation::Watermark(10)), 0),
            ShardRouter::kBroadcast);
  ShardRouter rep(4, ShardRouting::kReplicated, {{1}, {1}});
  EXPECT_EQ(rep.Route(Element(Punctuation::Watermark(10)), 1),
            ShardRouter::kBroadcast);
}

TEST(ShardRouterTest, CloseKeyFollowsItsTuplesUnderDisjoint) {
  // The whole point of OneValueKeyHash: a CloseKey punctuation must land
  // on the shard owning the tuples it closes.
  ShardRouter r(8, ShardRouting::kDisjoint, {{1}});
  for (int64_t key = 0; key < 100; ++key) {
    int tuple_shard = r.Route(Element(T(1, key)), 0);
    int close_shard =
        r.Route(Element(Punctuation::CloseKey(5, Value(key))), 0);
    EXPECT_EQ(close_shard, tuple_shard) << "key " << key;
  }
}

TEST(ShardRouterTest, CloseKeyBroadcastsUnderReplicated) {
  ShardRouter r(4, ShardRouting::kReplicated, {{1}});
  EXPECT_EQ(r.Route(Element(Punctuation::CloseKey(5, Value(int64_t{3}))), 0),
            ShardRouter::kBroadcast);
}

TEST(ShardRouterTest, ReplicatedBroadcastsNonZeroPorts) {
  ShardRouter r(4, ShardRouting::kReplicated, {{1}, {1}});
  // Port 0 still partitions on its key...
  int s0 = r.Route(Element(T(1, 7)), 0);
  EXPECT_GE(s0, 0);
  // ...while port 1 goes everywhere.
  EXPECT_EQ(r.Route(Element(T(1, 7)), 1), ShardRouter::kBroadcast);
}

TEST(ShardRouterTest, EmptyKeyColumnsRoundRobin) {
  ShardRouter r(3, ShardRouting::kReplicated, {{}});
  std::vector<int> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(r.Route(Element(T(i, 0)), 0));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

// --- HashExchangeOp ---

TEST(HashExchangeTest, PartitionsEveryTupleToExactlyOneShard) {
  Plan plan;
  auto* ex = plan.Make<HashExchangeOp>(
      4, ShardRouting::kDisjoint, std::vector<std::vector<int>>{{1}});
  std::vector<CollectorSink*> sinks;
  for (int i = 0; i < 4; ++i) {
    sinks.push_back(plan.Make<CollectorSink>());
    ex->SetShardOutput(i, sinks.back());
  }
  const int n = 400;
  for (int64_t i = 0; i < n; ++i) ex->Push(Element(T(i, i % 37)), 0);

  uint64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sinks[static_cast<size_t>(i)]->count(), ex->routed(i));
    total += ex->routed(i);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(n));
  EXPECT_EQ(ex->stats().tuples_out, static_cast<uint64_t>(n));
  // 37 keys over 4 shards: roughly even.
  EXPECT_LT(ex->SkewRatio(), 2.0);
}

TEST(HashExchangeTest, WatermarkReachesEveryShard) {
  Plan plan;
  auto* ex = plan.Make<HashExchangeOp>(
      3, ShardRouting::kDisjoint, std::vector<std::vector<int>>{{1}});
  std::vector<CollectorSink*> sinks;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(plan.Make<CollectorSink>());
    ex->SetShardOutput(i, sinks.back());
  }
  ex->Push(Element(Punctuation::Watermark(9)), 0);
  for (auto* s : sinks) {
    ASSERT_EQ(s->punctuations().size(), 1u);
    EXPECT_EQ(s->punctuations()[0].ts, 9);
  }
}

TEST(HashExchangeTest, FlushFansOutOncePerShard) {
  Plan plan;
  auto* ex = plan.Make<HashExchangeOp>(
      2, ShardRouting::kDisjoint, std::vector<std::vector<int>>{{1}});
  std::vector<CountingSink*> sinks;
  std::vector<int> flushes(2, 0);
  // CountingSink doesn't record flushes; interpose callback operators.
  class FlushCounter : public Operator {
   public:
    explicit FlushCounter(int* n) : Operator("flush-counter"), n_(n) {}
    void Push(const Element& e, int = 0) override { CountIn(e); }
    void Flush() override { ++*n_; }

   private:
    int* n_;
  };
  auto* f0 = plan.Make<FlushCounter>(&flushes[0]);
  auto* f1 = plan.Make<FlushCounter>(&flushes[1]);
  ex->SetShardOutput(0, f0);
  ex->SetShardOutput(1, f1);
  ex->Flush();
  EXPECT_EQ(flushes[0], 1);
  EXPECT_EQ(flushes[1], 1);
  (void)sinks;
}

// --- ShardMergeOp ---

TEST(ShardMergeTest, ForwardsTuplesInArrivalOrder) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(2, ShardRouting::kDisjoint);
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  m->Push(Element(T(1, 0)), 0);
  m->Push(Element(T(2, 1)), 1);
  m->Push(Element(T(3, 0)), 0);
  ASSERT_EQ(sink->count(), 3u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 1);
  EXPECT_EQ(sink->tuples()[1]->ts(), 2);
  EXPECT_EQ(sink->tuples()[2]->ts(), 3);
}

TEST(ShardMergeTest, WatermarkIsMinAcrossShards) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(3, ShardRouting::kDisjoint);
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);

  m->Push(Element(Punctuation::Watermark(10)), 0);
  m->Push(Element(Punctuation::Watermark(20)), 1);
  // Shard 2 hasn't reported: nothing forwarded yet.
  EXPECT_TRUE(sink->punctuations().empty());
  EXPECT_EQ(m->merged_watermark(), INT64_MIN);

  m->Push(Element(Punctuation::Watermark(15)), 2);
  // min(10, 20, 15) = 10.
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 10);
  EXPECT_EQ(m->merged_watermark(), 10);

  // Shard 0 advances to 30: min becomes 15.
  m->Push(Element(Punctuation::Watermark(30)), 0);
  ASSERT_EQ(sink->punctuations().size(), 2u);
  EXPECT_EQ(sink->punctuations()[1].ts, 15);
}

TEST(ShardMergeTest, WatermarkNeverRegressesOrDuplicates) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(2, ShardRouting::kDisjoint);
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  m->Push(Element(Punctuation::Watermark(10)), 0);
  m->Push(Element(Punctuation::Watermark(10)), 1);  // min reaches 10.
  m->Push(Element(Punctuation::Watermark(10)), 0);  // No change: no emit.
  m->Push(Element(Punctuation::Watermark(5)), 1);   // Stale: ignored.
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 10);
}

TEST(ShardMergeTest, CloseKeyForwardsThroughUnderDisjoint) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(4, ShardRouting::kDisjoint);
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  m->Push(Element(Punctuation::CloseKey(7, Value(int64_t{3}))), 2);
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_TRUE(sink->punctuations()[0].has_key);
  EXPECT_EQ(sink->punctuations()[0].ts, 7);
}

TEST(ShardMergeTest, CloseKeyDedupedUnderReplicated) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(3, ShardRouting::kReplicated);
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  m->Push(Element(Punctuation::CloseKey(7, Value(int64_t{3}))), 0);
  m->Push(Element(Punctuation::CloseKey(9, Value(int64_t{3}))), 1);
  EXPECT_TRUE(sink->punctuations().empty());  // One shard missing.
  m->Push(Element(Punctuation::CloseKey(8, Value(int64_t{3}))), 2);
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 9);  // Max across shards.
  // The dedup entry was retired: a fresh round needs all three again.
  m->Push(Element(Punctuation::CloseKey(11, Value(int64_t{3}))), 0);
  EXPECT_EQ(sink->punctuations().size(), 1u);
}

TEST(ShardMergeTest, FlushForwardsOnlyOnNthCall) {
  Plan plan;
  auto* m = plan.Make<ShardMergeOp>(3, ShardRouting::kDisjoint);
  int flushes = 0;
  class FlushCounter : public Operator {
   public:
    explicit FlushCounter(int* n) : Operator("flush-counter"), n_(n) {}
    void Push(const Element& e, int = 0) override { CountIn(e); }
    void Flush() override { ++*n_; }

   private:
    int* n_;
  };
  auto* fc = plan.Make<FlushCounter>(&flushes);
  m->SetOutput(fc);
  m->Flush();
  m->Flush();
  EXPECT_EQ(flushes, 0);
  m->Flush();
  EXPECT_EQ(flushes, 1);
}

}  // namespace
}  // namespace sqp
