#include "../bench/bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sqp {
namespace bench {
namespace {

TEST(BenchTableTest, RaggedRowsDoNotReadPastWidths) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  // More cells than headers: Print must size its width table to the
  // widest row instead of indexing past it (was an OOB read).
  t.AddRow({"1", "2", "extra", "more"});
  t.AddRow({"only-one"});
  t.Print("ragged");  // ASan/valgrind would flag the old bug here.
  const TableData& rec = JsonReport().back();
  EXPECT_EQ(rec.title, "ragged");
  EXPECT_EQ(rec.rows.size(), 3u);
  EXPECT_EQ(rec.rows[1].size(), 4u);
}

TEST(BenchTableTest, WriteJsonReportRoundTrips) {
  JsonReport().clear();
  BinaryName() = "bench_util_test";
  Table t({"metric", "value"});
  t.AddRow({"throughput \"quoted\"", "1.5"});
  t.Print("golden");

  std::string path = ::testing::TempDir() + "/bench_util_test.json";
  WriteJsonReport(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(),
            "{\"binary\":\"bench_util_test\",\"smoke\":false,\"tables\":["
            "{\"title\":\"golden\",\"headers\":[\"metric\",\"value\"],"
            "\"rows\":[[\"throughput \\\"quoted\\\"\",\"1.5\"]]}]}\n");
  std::remove(path.c_str());
}

TEST(BenchArgsTest, ParsesSmokeAndJsonFlags) {
  JsonPath().clear();
  SmokeFlag() = false;
  const char* argv_in[] = {"bench_x", "--smoke", "--json=/tmp/out.json",
                           "--benchmark_filter=foo"};
  char* argv[4];
  for (int i = 0; i < 4; ++i) argv[i] = const_cast<char*>(argv_in[i]);
  int argc = 4;
  ParseBenchArgs(argc, argv);
  EXPECT_TRUE(SmokeMode());
  EXPECT_EQ(JsonPath(), "/tmp/out.json");
  // Consumed flags are stripped; google-benchmark flags pass through.
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=foo");
  // Don't leave the atexit hook writing to /tmp from a unit test.
  JsonPath().clear();
  SmokeFlag() = false;
}

}  // namespace
}  // namespace bench
}  // namespace sqp
