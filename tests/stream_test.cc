#include <gtest/gtest.h>

#include "stream/arrival.h"
#include "stream/element.h"
#include "stream/queue.h"

namespace sqp {
namespace {

// --- Element / Punctuation ---

TEST(ElementTest, TupleElement) {
  Element e(MakeTuple(3, {Value(int64_t{1})}));
  EXPECT_TRUE(e.is_tuple());
  EXPECT_FALSE(e.is_punctuation());
  EXPECT_EQ(e.ts(), 3);
}

TEST(ElementTest, PunctuationElement) {
  Element e(Punctuation::Watermark(9));
  EXPECT_TRUE(e.is_punctuation());
  EXPECT_EQ(e.ts(), 9);
  EXPECT_FALSE(e.punctuation().has_key);
}

TEST(ElementTest, KeyPunctuation) {
  Element e(Punctuation::CloseKey(5, Value(int64_t{17})));
  ASSERT_TRUE(e.is_punctuation());
  EXPECT_TRUE(e.punctuation().has_key);
  EXPECT_EQ(e.punctuation().key.AsInt(), 17);
  EXPECT_EQ(e.ToString(), "punct(ts<=5, key=17)");
}

// --- StreamQueue ---

TEST(StreamQueueTest, FifoOrder) {
  StreamQueue q;
  q.Push(Element(MakeTuple(1, {})));
  q.Push(Element(MakeTuple(2, {})));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop()->ts(), 1);
  EXPECT_EQ(q.Pop()->ts(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(StreamQueueTest, BoundedQueueDropsTuples) {
  StreamQueue q(2);
  EXPECT_TRUE(q.Push(Element(MakeTuple(1, {}))));
  EXPECT_TRUE(q.Push(Element(MakeTuple(2, {}))));
  EXPECT_FALSE(q.Push(Element(MakeTuple(3, {}))));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_NEAR(q.DropRate(), 1.0 / 3.0, 1e-9);
}

TEST(StreamQueueTest, PunctuationNeverDropped) {
  StreamQueue q(2);
  q.Push(Element(MakeTuple(1, {})));
  q.Push(Element(MakeTuple(2, {})));
  EXPECT_TRUE(q.Push(Element(Punctuation::Watermark(5))));
  // A data tuple was evicted to make room.
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.size(), 2u);
  // The punctuation is still in the queue.
  bool found = false;
  while (auto e = q.Pop()) {
    found |= e->is_punctuation();
  }
  EXPECT_TRUE(found);
}

TEST(StreamQueueTest, TracksBytesAndPeaks) {
  StreamQueue q;
  q.Push(Element(MakeTuple(1, {Value(std::string(100, 'x'))})));
  size_t bytes_one = q.bytes();
  EXPECT_GT(bytes_one, 100u);
  q.Push(Element(MakeTuple(2, {Value(std::string(100, 'y'))})));
  EXPECT_EQ(q.stats().peak_len, 2u);
  q.Pop();
  q.Pop();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_GE(q.stats().peak_bytes, 2 * bytes_one - 16);
}

// --- Arrival processes ---

TEST(ArrivalTest, UniformExactRate) {
  UniformArrival a(2.0);
  uint64_t total = 0;
  for (int t = 0; t < 100; ++t) total += a.ArrivalsAt(t);
  EXPECT_EQ(total, 200u);
  EXPECT_DOUBLE_EQ(a.MeanRate(), 2.0);
}

TEST(ArrivalTest, UniformFractionalRateAccumulates) {
  UniformArrival a(0.5);
  uint64_t total = 0;
  for (int t = 0; t < 100; ++t) total += a.ArrivalsAt(t);
  EXPECT_EQ(total, 50u);
}

TEST(ArrivalTest, PoissonMeanRate) {
  PoissonArrival a(3.0, 42);
  uint64_t total = 0;
  const int ticks = 20000;
  for (int t = 0; t < ticks; ++t) total += a.ArrivalsAt(t);
  EXPECT_NEAR(static_cast<double>(total) / ticks, 3.0, 0.1);
}

TEST(ArrivalTest, BurstyLongRunRate) {
  BurstyArrival a(4.0, 10.0, 30.0, 7);
  uint64_t total = 0;
  const int ticks = 40000;
  for (int t = 0; t < ticks; ++t) total += a.ArrivalsAt(t);
  // Mean = on_rate * on/(on+off) = 4 * 10/40 = 1.0.
  EXPECT_NEAR(a.MeanRate(), 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(total) / ticks, 1.0, 0.15);
}

TEST(ArrivalTest, ScheduledReplaysExactly) {
  ScheduledArrival a({1, 0, 2, 0, 3});
  EXPECT_EQ(a.ArrivalsAt(0), 1u);
  EXPECT_EQ(a.ArrivalsAt(1), 0u);
  EXPECT_EQ(a.ArrivalsAt(2), 2u);
  EXPECT_EQ(a.ArrivalsAt(4), 3u);
  EXPECT_EQ(a.ArrivalsAt(5), 0u);
  EXPECT_EQ(a.ArrivalsAt(-1), 0u);
  EXPECT_DOUBLE_EQ(a.MeanRate(), 6.0 / 5.0);
}

}  // namespace
}  // namespace sqp
