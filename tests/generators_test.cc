#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "stream/generators.h"

namespace sqp {
namespace gen {
namespace {

TEST(CdrGeneratorTest, SchemaAndOrdering) {
  SchemaRef s = CdrSchema();
  EXPECT_TRUE(s->has_ordering());
  EXPECT_EQ(s->ordering_index(), CdrCols::kTs);
  EXPECT_EQ(s->FieldIndex("origin"), CdrCols::kOrigin);
  EXPECT_EQ(s->FieldIndex("duration"), CdrCols::kDuration);
}

TEST(CdrGeneratorTest, TimestampsNondecreasing) {
  CdrGenerator g(CdrOptions{});
  int64_t last = -1;
  for (int i = 0; i < 1000; ++i) {
    TupleRef t = g.Next();
    EXPECT_GE(t->ts(), last);
    last = t->ts();
    EXPECT_EQ(t->at(CdrCols::kTs).AsInt(), t->ts());
  }
}

TEST(CdrGeneratorTest, DeterministicForSeed) {
  CdrOptions opt;
  opt.seed = 99;
  CdrGenerator a(opt), b(opt);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*a.Next(), *b.Next());
  }
}

TEST(CdrGeneratorTest, FraudCallersHaveLongerCalls) {
  CdrOptions opt;
  opt.num_callers = 200;
  opt.fraud_fraction = 0.1;
  CdrGenerator g(opt);
  double fraud_dur = 0, normal_dur = 0;
  int fraud_n = 0, normal_n = 0;
  for (int i = 0; i < 20000; ++i) {
    TupleRef t = g.Next();
    int64_t origin = t->at(CdrCols::kOrigin).AsInt();
    if (g.IsFraudCaller(origin)) {
      fraud_dur += static_cast<double>(t->at(CdrCols::kDuration).AsInt());
      ++fraud_n;
    } else {
      normal_dur += static_cast<double>(t->at(CdrCols::kDuration).AsInt());
      ++normal_n;
    }
  }
  ASSERT_GT(fraud_n, 100);
  ASSERT_GT(normal_n, 100);
  EXPECT_GT(fraud_dur / fraud_n, 2.5 * (normal_dur / normal_n));
}

TEST(PacketGeneratorTest, SchemaFields) {
  SchemaRef s = PacketSchema();
  EXPECT_EQ(s->FieldIndex("src_ip"), PacketCols::kSrcIp);
  EXPECT_EQ(s->FieldIndex("payload"), PacketCols::kPayload);
  EXPECT_EQ(s->field(PacketCols::kPayload).type, ValueType::kString);
}

TEST(PacketGeneratorTest, P2pPayloadVsPortGroundTruth) {
  PacketOptions opt;
  opt.p2p_fraction = 0.3;
  opt.p2p_on_known_port = 1.0 / 3.0;
  PacketGenerator g(opt);
  uint64_t keyword_pkts = 0, port_pkts = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    TupleRef t = g.Next();
    const std::string& payload = t->at(PacketCols::kPayload).AsString();
    bool kw = payload.find("Kazaa") != std::string::npos ||
              payload.find("GNUTELLA") != std::string::npos ||
              payload.find("BitTorrent") != std::string::npos;
    int64_t dport = t->at(PacketCols::kDstPort).AsInt();
    keyword_pkts += kw ? 1 : 0;
    port_pkts += (dport == kKazaaPort || dport == kGnutellaPort) ? 1 : 0;
  }
  // Slide 10's lesson: payload inspection finds ~3x the port heuristic.
  EXPECT_EQ(keyword_pkts, g.true_p2p_packets());
  double ratio = static_cast<double>(keyword_pkts) /
                 static_cast<double>(port_pkts);
  EXPECT_NEAR(ratio, 3.0, 0.6);
}

TEST(PacketGeneratorTest, SynAckMatchesReversedEndpoints) {
  PacketOptions opt;
  opt.syn_prob = 0.2;
  opt.p2p_fraction = 0.0;
  PacketGenerator g(opt);
  struct ConnKey {
    int64_t src, dst, sport, dport;
    bool operator<(const ConnKey& o) const {
      return std::tie(src, dst, sport, dport) <
             std::tie(o.src, o.dst, o.sport, o.dport);
    }
  };
  std::map<ConnKey, int64_t> syns;
  int matched = 0;
  for (int i = 0; i < 20000; ++i) {
    TupleRef t = g.Next();
    bool syn = t->at(PacketCols::kIsSyn).AsInt() == 1;
    bool ack = t->at(PacketCols::kIsAck).AsInt() == 1;
    ConnKey k{t->at(PacketCols::kSrcIp).AsInt(),
              t->at(PacketCols::kDstIp).AsInt(),
              t->at(PacketCols::kSrcPort).AsInt(),
              t->at(PacketCols::kDstPort).AsInt()};
    if (syn && !ack) {
      syns[k] = t->ts();
    } else if (syn && ack) {
      ConnKey rev{k.dst, k.src, k.dport, k.sport};
      auto it = syns.find(rev);
      if (it != syns.end()) {
        int64_t rtt = t->ts() - it->second;
        EXPECT_GE(rtt, opt.min_rtt);
        // Replies due on the same tick queue behind each other, so a
        // reply can slip a few ticks past the nominal maximum.
        EXPECT_LE(rtt, opt.max_rtt + 10);
        ++matched;
      }
    }
  }
  EXPECT_GT(matched, 100);
}

TEST(SensorGeneratorTest, ValuesStayInBand) {
  SensorOptions opt;
  opt.num_sensors = 5;
  SensorGenerator g(opt);
  for (int i = 0; i < 5000; ++i) {
    TupleRef t = g.Next();
    double temp = t->at(SensorCols::kTemperature).AsDouble();
    double hum = t->at(SensorCols::kHumidity).AsDouble();
    EXPECT_GE(temp, opt.base_temperature - 30.0);
    EXPECT_LE(temp, opt.base_temperature + 30.0);
    EXPECT_GE(hum, 0.0);
    EXPECT_LE(hum, 100.0);
  }
}

TEST(SensorGeneratorTest, RoundRobinSensorIds) {
  SensorOptions opt;
  opt.num_sensors = 3;
  SensorGenerator g(opt);
  EXPECT_EQ(g.Next()->at(SensorCols::kSensorId).AsInt(), 0);
  EXPECT_EQ(g.Next()->at(SensorCols::kSensorId).AsInt(), 1);
  EXPECT_EQ(g.Next()->at(SensorCols::kSensorId).AsInt(), 2);
  EXPECT_EQ(g.Next()->at(SensorCols::kSensorId).AsInt(), 0);
}

TEST(AuctionGeneratorTest, EveryAuctionEventuallyCloses) {
  AuctionOptions opt;
  opt.concurrent_auctions = 4;
  opt.min_bids = 2;
  opt.max_bids = 5;
  AuctionGenerator g(opt);
  std::map<int64_t, int> bids;
  std::set<int64_t> closed;
  for (int i = 0; i < 3000; ++i) {
    Element e = g.Next();
    if (e.is_punctuation()) {
      ASSERT_TRUE(e.punctuation().has_key);
      int64_t id = e.punctuation().key.AsInt();
      EXPECT_TRUE(closed.insert(id).second) << "auction closed twice";
      // Closed auctions got between min and max bids.
      EXPECT_GE(bids[id], 2);
      EXPECT_LE(bids[id], 5);
    } else {
      bids[e.tuple()->at(AuctionCols::kAuctionId).AsInt()]++;
    }
  }
  EXPECT_GT(closed.size(), 100u);
}

TEST(AuctionGeneratorTest, NoBidsAfterClose) {
  AuctionGenerator g(AuctionOptions{});
  std::set<int64_t> closed;
  for (int i = 0; i < 5000; ++i) {
    Element e = g.Next();
    if (e.is_punctuation()) {
      closed.insert(e.punctuation().key.AsInt());
    } else {
      EXPECT_EQ(closed.count(e.tuple()->at(AuctionCols::kAuctionId).AsInt()),
                0u);
    }
  }
}

}  // namespace
}  // namespace gen
}  // namespace sqp
