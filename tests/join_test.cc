#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "exec/merge_join.h"
#include "exec/plan.h"
#include "exec/sym_hash_join.h"
#include "exec/window_join.h"
#include "exec/xjoin.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t key, int64_t payload = 0) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(payload)});
}

// --- Symmetric hash join ---

TEST(SymHashJoinTest, JoinsAcrossArrivalOrders) {
  Plan plan;
  auto* j = plan.Make<SymmetricHashJoinOp>(std::vector<int>{1},
                                           std::vector<int>{1});
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);

  j->Push(Element(T(1, 7)), 0);
  EXPECT_EQ(sink->count(), 0u);
  j->Push(Element(T(2, 7)), 1);  // Matches the earlier left tuple.
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->arity(), 6u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 2);  // max of the two.
  j->Push(Element(T(3, 7)), 0);  // Matches the right tuple too.
  EXPECT_EQ(sink->count(), 2u);
}

TEST(SymHashJoinTest, NoSelfJoinWithinOneSide) {
  Plan plan;
  auto* j = plan.Make<SymmetricHashJoinOp>(std::vector<int>{1},
                                           std::vector<int>{1});
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 7)), 0);
  j->Push(Element(T(2, 7)), 0);
  EXPECT_EQ(sink->count(), 0u);
}

TEST(SymHashJoinTest, CrossProductOfEqualKeys) {
  Plan plan;
  auto* j = plan.Make<SymmetricHashJoinOp>(std::vector<int>{1},
                                           std::vector<int>{1});
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);
  for (int i = 0; i < 3; ++i) j->Push(Element(T(i, 1)), 0);
  for (int i = 0; i < 4; ++i) j->Push(Element(T(10 + i, 1)), 1);
  EXPECT_EQ(sink->tuples(), 12u);
}

TEST(SymHashJoinTest, StateGrowsUnbounded) {
  Plan plan;
  auto* j = plan.Make<SymmetricHashJoinOp>(std::vector<int>{1},
                                           std::vector<int>{1});
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);
  size_t s0 = j->StateBytes();
  for (int64_t i = 0; i < 1000; ++i) j->Push(Element(T(i, i)), 0);
  EXPECT_GT(j->StateBytes(), s0 + 1000 * 32);
}

// --- Binary window join [KNV03] ---

BinaryWindowJoinOp::Options JoinOpts(JoinStrategy ls, JoinStrategy rs,
                                     int64_t w1 = 100, int64_t w2 = 100) {
  BinaryWindowJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.left_window = WindowSpec::TimeSliding(w1);
  o.right_window = WindowSpec::TimeSliding(w2);
  o.left_strategy = ls;
  o.right_strategy = rs;
  return o;
}

TEST(WindowJoinTest, MatchesWithinWindowOnly) {
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(
      JoinOpts(JoinStrategy::kHash, JoinStrategy::kHash, 10, 10));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);

  j->Push(Element(T(1, 5)), 0);
  j->Push(Element(T(5, 5)), 1);  // In window: match.
  EXPECT_EQ(sink->count(), 1u);
  j->Push(Element(T(50, 5)), 1);  // Left tuple long expired: no match.
  EXPECT_EQ(sink->count(), 1u);
}

TEST(WindowJoinTest, CountWindows) {
  BinaryWindowJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.left_window = WindowSpec::CountSliding(2);
  o.right_window = WindowSpec::CountSliding(2);
  o.left_strategy = o.right_strategy = JoinStrategy::kNestedLoop;
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(o);
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);
  // Three left tuples with key 1; window keeps last 2.
  for (int64_t i = 0; i < 3; ++i) j->Push(Element(T(i, 1)), 0);
  j->Push(Element(T(10, 1)), 1);
  EXPECT_EQ(sink->tuples(), 2u);
}

TEST(WindowJoinTest, PunctuationPurgesState) {
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(
      JoinOpts(JoinStrategy::kHash, JoinStrategy::kHash, 10, 10));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 5)), 0);
  size_t before = j->StateBytes();
  j->Push(Element(Punctuation::Watermark(100)), 0);
  EXPECT_LT(j->StateBytes(), before);
}

// All four strategy combinations must produce identical results — the
// strategies trade CPU vs memory, never correctness (slide 33).
struct StrategyCombo {
  JoinStrategy left, right;
};

class StrategyEquivalenceTest : public ::testing::TestWithParam<StrategyCombo> {
};

TEST_P(StrategyEquivalenceTest, SameResultsAsReference) {
  auto combo = GetParam();
  Rng rng(31);
  std::vector<std::pair<int, TupleRef>> inputs;  // (side, tuple)
  int64_t ts = 0;
  for (int i = 0; i < 800; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(3));
    inputs.emplace_back(rng.Bernoulli(0.5) ? 0 : 1,
                        T(ts, static_cast<int64_t>(rng.Uniform(20)), i));
  }

  auto run = [&](JoinStrategy ls, JoinStrategy rs) {
    Plan plan;
    auto* j = plan.Make<BinaryWindowJoinOp>(JoinOpts(ls, rs, 25, 40));
    auto* sink = plan.Make<CollectorSink>();
    j->SetOutput(sink);
    for (auto& [side, t] : inputs) j->Push(Element(t), side);
    std::multiset<std::string> results;
    for (const TupleRef& t : sink->tuples()) results.insert(t->ToString());
    return results;
  };

  auto reference = run(JoinStrategy::kHash, JoinStrategy::kHash);
  auto got = run(combo.left, combo.right);
  EXPECT_EQ(reference, got);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, StrategyEquivalenceTest,
    ::testing::Values(StrategyCombo{JoinStrategy::kNestedLoop,
                                    JoinStrategy::kNestedLoop},
                      StrategyCombo{JoinStrategy::kHash,
                                    JoinStrategy::kNestedLoop},
                      StrategyCombo{JoinStrategy::kNestedLoop,
                                    JoinStrategy::kHash}),
    [](const auto& info) {
      auto clean = [](std::string s) {
        for (char& c : s) {
          if (c == '-') c = '_';
        }
        return s;
      };
      return clean(JoinStrategyName(info.param.left)) + "_" +
             clean(JoinStrategyName(info.param.right));
    });

TEST(WindowJoinTest, HashUsesMoreMemoryLessCpu) {
  Rng rng(32);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += 1;
    inputs.emplace_back(i % 2, T(ts, static_cast<int64_t>(rng.Uniform(50))));
  }
  auto run = [&](JoinStrategy s) {
    Plan plan;
    auto* j = plan.Make<BinaryWindowJoinOp>(JoinOpts(s, s, 200, 200));
    auto* sink = plan.Make<CountingSink>();
    j->SetOutput(sink);
    size_t peak_mem = 0;
    for (auto& [side, t] : inputs) {
      j->Push(Element(t), side);
      peak_mem = std::max(peak_mem, j->StateBytes());
    }
    return std::make_pair(peak_mem, j->join_stats());
  };
  auto [hash_mem, hash_stats] = run(JoinStrategy::kHash);
  auto [nl_mem, nl_stats] = run(JoinStrategy::kNestedLoop);
  EXPECT_GT(hash_mem, nl_mem);                       // Index costs memory.
  EXPECT_EQ(nl_stats.hash_probes, 0u);
  EXPECT_GT(nl_stats.nl_comparisons, hash_stats.hash_probes * 10);
  EXPECT_EQ(hash_stats.results, nl_stats.results);   // Same output.
}

// --- Ordered merge (band) join ---

TEST(MergeJoinTest, BandZeroIsTsEquijoin) {
  OrderedMergeJoinOp::Options o;
  o.band = 0;
  Plan plan;
  auto* j = plan.Make<OrderedMergeJoinOp>(o);
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 0)), 0);
  j->Push(Element(T(1, 1)), 1);
  j->Push(Element(T(2, 2)), 1);
  EXPECT_EQ(sink->count(), 1u);
}

TEST(MergeJoinTest, BandAdmitsNearbyTimestamps) {
  OrderedMergeJoinOp::Options o;
  o.band = 5;
  Plan plan;
  auto* j = plan.Make<OrderedMergeJoinOp>(o);
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(10, 0)), 0);
  j->Push(Element(T(13, 1)), 1);  // |13-10| <= 5: match.
  j->Push(Element(T(20, 2)), 1);  // Too far.
  EXPECT_EQ(sink->count(), 1u);
}

TEST(MergeJoinTest, ExtraEquiColumns) {
  OrderedMergeJoinOp::Options o;
  o.band = 100;
  o.left_cols = {1};
  o.right_cols = {1};
  Plan plan;
  auto* j = plan.Make<OrderedMergeJoinOp>(o);
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 7)), 0);
  j->Push(Element(T(2, 7)), 1);
  j->Push(Element(T(3, 8)), 1);  // Key mismatch.
  EXPECT_EQ(sink->count(), 1u);
}

TEST(MergeJoinTest, StateBoundedByBand) {
  OrderedMergeJoinOp::Options o;
  o.band = 10;
  Plan plan;
  auto* j = plan.Make<OrderedMergeJoinOp>(o);
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);
  // Advance both sides in lockstep; buffers must stay small.
  for (int64_t t = 0; t < 5000; ++t) {
    j->Push(Element(T(t, 0)), 0);
    j->Push(Element(T(t, 1)), 1);
    EXPECT_LT(j->StateBytes(), 50000u);
  }
}

// --- XJoin ---

TEST(XJoinTest, UnboundedBudgetEqualsSymHash) {
  XJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.memory_budget_bytes = 0;
  Plan plan;
  auto* j = plan.Make<XJoinOp>(o);
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    j->Push(Element(T(i, static_cast<int64_t>(rng.Uniform(10)))), i % 2);
  }
  j->Flush();
  j->Flush();
  EXPECT_EQ(j->spilled_tuples(), 0u);
  EXPECT_EQ(j->disk_stage_results(), 0u);
  EXPECT_GT(j->memory_stage_results(), 0u);
}

TEST(XJoinTest, SpillPreservesExactResults) {
  Rng rng(34);
  std::vector<std::pair<int, TupleRef>> inputs;
  for (int i = 0; i < 1000; ++i) {
    inputs.emplace_back(i % 2, T(i, static_cast<int64_t>(rng.Uniform(30)), i));
  }
  auto run = [&](size_t budget) {
    XJoinOp::Options o;
    o.left_cols = {1};
    o.right_cols = {1};
    o.memory_budget_bytes = budget;
    Plan plan;
    auto* j = plan.Make<XJoinOp>(o);
    auto* sink = plan.Make<CollectorSink>();
    j->SetOutput(sink);
    for (auto& [side, t] : inputs) j->Push(Element(t), side);
    j->Flush();
    j->Flush();
    std::multiset<std::string> results;
    for (const TupleRef& t : sink->tuples()) results.insert(t->ToString());
    return std::make_pair(results, j->spilled_tuples());
  };
  auto [unbounded_results, no_spills] = run(0);
  auto [bounded_results, spills] = run(20000);
  EXPECT_EQ(no_spills, 0u);
  EXPECT_GT(spills, 0u);
  EXPECT_EQ(unbounded_results, bounded_results);  // No dupes, no losses.
}

TEST(XJoinTest, TighterBudgetMoreDiskIo) {
  Rng rng(35);
  std::vector<std::pair<int, TupleRef>> inputs;
  for (int i = 0; i < 1000; ++i) {
    inputs.emplace_back(i % 2, T(i, static_cast<int64_t>(rng.Uniform(30))));
  }
  auto disk_io = [&](size_t budget) {
    XJoinOp::Options o;
    o.left_cols = {1};
    o.right_cols = {1};
    o.memory_budget_bytes = budget;
    Plan plan;
    auto* j = plan.Make<XJoinOp>(o);
    auto* sink = plan.Make<CountingSink>();
    j->SetOutput(sink);
    for (auto& [side, t] : inputs) j->Push(Element(t), side);
    j->Flush();
    j->Flush();
    return j->disk_write_bytes() + j->disk_read_bytes();
  };
  EXPECT_GT(disk_io(10000), disk_io(50000));
}

}  // namespace
}  // namespace sqp
