// The continuous-query server: the HTTP layer, the listener, the
// session result queues, and the end-to-end multi-client contract —
// every client gets exactly its query's rows, detach/reattach via
// cursor loses nothing and repeats nothing, and admission rejects with
// a reason while admitted sessions keep streaming.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/engine.h"
#include "server/http.h"
#include "server/net_listener.h"
#include "server/query_server.h"
#include "server/session.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{9}),
                        Value(int64_t{1}), Value(int64_t{2}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

TupleRef Row(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

/// One blocking request/response against localhost: send the raw bytes,
/// read to EOF. Returns the raw response.
std::string RawRequest(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  if (!server::SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string Get(int port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nHost: t\r\nConnection: "
                              "close\r\n\r\n");
}

std::string Post(int port, const std::string& target,
                 const std::string& body) {
  return RawRequest(port, "POST " + target + " HTTP/1.1\r\nHost: t\r\n" +
                              "Content-Length: " +
                              std::to_string(body.size()) +
                              "\r\nConnection: close\r\n\r\n" + body);
}

std::string Del(int port, const std::string& target) {
  return RawRequest(port, "DELETE " + target +
                              " HTTP/1.1\r\nHost: t\r\nConnection: "
                              "close\r\n\r\n");
}

/// Body of a response (dechunked when chunked).
std::string Body(const std::string& raw) {
  std::string head, body;
  if (!server::SplitHttpResponse(raw, &head, &body)) return "";
  return server::DechunkBody(head, body);
}

std::string JsonStr(const std::string& body, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  size_t p = body.find(pat);
  if (p == std::string::npos) return "";
  p += pat.size();
  size_t e = body.find('"', p);
  return e == std::string::npos ? "" : body.substr(p, e - p);
}

/// Splits an NDJSON payload into row lines and returns the trailer
/// separately (the line carrying "next_cursor").
struct Streamed {
  std::vector<std::string> rows;  // {"seq":..,"ts":..,"row":[..]} lines.
  std::string trailer;
  uint64_t next_cursor = 0;
  bool finished = false;
};
Streamed ParseStream(const std::string& payload) {
  Streamed out;
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (line.find("\"next_cursor\"") != std::string::npos) {
      out.trailer = line;
      size_t p = line.find("\"next_cursor\":");
      out.next_cursor = static_cast<uint64_t>(
          std::atoll(line.c_str() + p + 14));
      out.finished = line.find("\"finished\":true") != std::string::npos;
    } else {
      out.rows.push_back(line);
    }
  }
  return out;
}

uint64_t SeqOf(const std::string& row_line) {
  size_t p = row_line.find("\"seq\":");
  return static_cast<uint64_t>(std::atoll(row_line.c_str() + p + 6));
}

/// The row payload with the seq stripped: "ts":..,"row":[..] — the
/// fragment server::RowJson produces, used for multiset comparison
/// against an in-process reference run.
std::string PayloadOf(const std::string& row_line) {
  size_t p = row_line.find("\"ts\":");
  return row_line.substr(p, row_line.size() - p - 1);  // Trim '}'.
}

// ---------------------------------------------------------------------------
// HttpParseTest.

TEST(HttpParseTest, RequestLineParamsAndBodyLength) {
  server::HttpRequest req;
  size_t content_length = 99;
  ASSERT_TRUE(server::ParseHttpHead(
      "POST /query?queue=64&policy=drop&q=hello%20x HTTP/1.1\r\n"
      "Host: t\r\nContent-Length: 12\r\n\r\n",
      &req, &content_length));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.ParamInt("queue", 0), 64);
  ASSERT_NE(req.Param("policy"), nullptr);
  EXPECT_EQ(*req.Param("policy"), "drop");
  ASSERT_NE(req.Param("q"), nullptr);
  EXPECT_EQ(*req.Param("q"), "hello x");
  EXPECT_EQ(req.Param("nope"), nullptr);
  EXPECT_EQ(req.ParamInt("nope", -7), -7);
  EXPECT_EQ(content_length, 12u);
}

TEST(HttpParseTest, MalformedRequestLineRejected) {
  server::HttpRequest req;
  size_t n = 0;
  EXPECT_FALSE(server::ParseHttpHead("garbage\r\n\r\n", &req, &n));
  EXPECT_FALSE(server::ParseHttpHead("", &req, &n));
}

TEST(HttpParseTest, ChunkedResponseRoundTrips) {
  std::string raw =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nabcd\r\n3\r\nefg\r\n0\r\n\r\n";
  std::string head, body;
  ASSERT_TRUE(server::SplitHttpResponse(raw, &head, &body));
  EXPECT_EQ(server::DechunkBody(head, body), "abcdefg");
  // Non-chunked passes through untouched.
  EXPECT_EQ(server::DechunkBody("HTTP/1.0 200 OK\r\nContent-Length: 2",
                                "hi"),
            "hi");
}

TEST(HttpParseTest, HeadEndingExactlyAtTheCapIsAccepted) {
  // Pad with a header so the terminator's last byte lands exactly on the
  // max_head boundary: the head is complete and within the cap, so it
  // must parse (the cap only rejects heads whose terminator never came).
  std::string head = "GET /healthz HTTP/1.0\r\nX-Pad: ";
  while (head.size() < 90) head += "p";
  head += "\r\n\r\n";
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(server::SendAll(sv[1], head.data(), head.size()));
  ::close(sv[1]);
  server::HttpRequest req;
  EXPECT_TRUE(server::ReadHttpRequest(sv[0], &req, /*max_head=*/head.size()));
  EXPECT_EQ(req.path, "/healthz");
  ::close(sv[0]);
}

TEST(HttpParseTest, NonFiniteDoublesRenderAsJsonNull) {
  // %.17g would emit "nan"/"inf" — invalid JSON in the NDJSON stream.
  EXPECT_EQ(server::ValueJson(Value(std::nan(""))), "null");
  EXPECT_EQ(server::ValueJson(
                Value(std::numeric_limits<double>::infinity())),
            "null");
  EXPECT_EQ(server::ValueJson(
                Value(-std::numeric_limits<double>::infinity())),
            "null");
  EXPECT_EQ(server::ValueJson(Value(3.5)), "3.5");
}

// ---------------------------------------------------------------------------
// NetListenerTest.

TEST(NetListenerTest, ServesSequentialRequests) {
  server::NetListener listener;
  server::NetListenerOptions opts;
  opts.recv_timeout_ms = 2000;
  opts.send_timeout_ms = 2000;
  ASSERT_TRUE(listener
                  .Start(0,
                         [](int fd) {
                           server::HttpRequest req;
                           if (!server::ReadHttpRequest(fd, &req)) return;
                           server::WriteHttpResponse(fd, 200, "text/plain",
                                                     "hi " + req.path);
                         },
                         opts)
                  .ok());
  ASSERT_TRUE(listener.serving());
  ASSERT_GT(listener.port(), 0);
  for (int i = 0; i < 3; ++i) {
    std::string resp = Get(listener.port(), "/x");
    EXPECT_NE(resp.find(" 200 "), std::string::npos);
    EXPECT_NE(resp.find("hi /x"), std::string::npos);
  }
  EXPECT_EQ(listener.accepted(), 3u);
  listener.Stop();
  EXPECT_FALSE(listener.serving());
}

TEST(NetListenerTest, ConnectionCapRejectsWithOverflowResponse) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  server::NetListener listener;
  server::NetListenerOptions opts;
  opts.max_concurrent = 1;
  opts.recv_timeout_ms = 5000;
  opts.overflow_response =
      "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 4\r\n"
      "Connection: close\r\n\r\nfull";
  ASSERT_TRUE(listener
                  .Start(0,
                         [&](int fd) {
                           server::HttpRequest req;
                           if (!server::ReadHttpRequest(fd, &req)) return;
                           entered.fetch_add(1);
                           {
                             std::unique_lock<std::mutex> lock(mu);
                             cv.wait(lock, [&] { return release; });
                           }
                           server::WriteHttpResponse(fd, 200, "text/plain",
                                                     "slow");
                         },
                         opts)
                  .ok());

  std::thread holder([&] {
    std::string resp = Get(listener.port(), "/hold");
    EXPECT_NE(resp.find("slow"), std::string::npos);
  });
  // Wait until the first connection occupies the only slot.
  while (entered.load() == 0) std::this_thread::yield();

  std::string rejected = Get(listener.port(), "/second");
  EXPECT_NE(rejected.find(" 503 "), std::string::npos);
  EXPECT_NE(rejected.find("full"), std::string::npos);
  EXPECT_GE(listener.overflowed(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  listener.Stop();
}

TEST(NetListenerTest, StalledClientTimesOutAndIsDropped) {
  server::NetListener listener;
  server::NetListenerOptions opts;
  opts.max_concurrent = 4;
  opts.recv_timeout_ms = 100;  // A silent client is cut loose fast.
  ASSERT_TRUE(listener
                  .Start(0,
                         [](int fd) {
                           server::HttpRequest req;
                           if (!server::ReadHttpRequest(fd, &req)) return;
                           server::WriteHttpResponse(fd, 200, "text/plain",
                                                     "ok");
                         },
                         opts)
                  .ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(listener.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Send nothing: the handler's read times out, the connection ends, and
  // our recv sees EOF instead of hanging forever.
  char buf[16];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0);
  ::close(fd);
  listener.Stop();
}

// ---------------------------------------------------------------------------
// ResultQueueTest.

TEST(ResultQueueTest, DropsNeverConsumeSequenceNumbers) {
  server::ResultQueueOptions opts;
  opts.limit = 2;
  opts.overflow = server::SessionOverflow::kDrop;
  server::ResultQueue q(opts);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(q.Push(Row(i, i)), i < 2);
  EXPECT_EQ(q.produced(), 2u);
  EXPECT_EQ(q.dropped(), 3u);
  EXPECT_EQ(q.next_seq(), 2u);  // The stored stream has no holes.
  auto got = q.WaitRows(0, 10, std::chrono::steady_clock::now());
  ASSERT_EQ(got.rows.size(), 2u);
  EXPECT_EQ(got.rows[0].seq, 0u);
  EXPECT_EQ(got.rows[1].seq, 1u);
}

TEST(ResultQueueTest, AckTrimsRetentionAndFreesCapacity) {
  server::ResultQueueOptions opts;
  opts.limit = 2;
  opts.overflow = server::SessionOverflow::kDrop;
  server::ResultQueue q(opts);
  EXPECT_TRUE(q.Push(Row(0, 0)));
  EXPECT_TRUE(q.Push(Row(1, 1)));
  EXPECT_FALSE(q.Push(Row(2, 2)));  // Full.
  q.Ack(2);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_TRUE(q.Push(Row(3, 3)));
  auto got = q.WaitRows(0, 10, std::chrono::steady_clock::now());
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_EQ(got.rows[0].seq, 2u);  // Seqs keep counting past the ack.
  EXPECT_EQ(q.lag(), 1u);
}

TEST(ResultQueueTest, BlockPolicyTimesOutThenDrops) {
  server::ResultQueueOptions opts;
  opts.limit = 1;
  opts.overflow = server::SessionOverflow::kBlock;
  opts.block_ms = 30;
  server::ResultQueue q(opts);
  EXPECT_TRUE(q.Push(Row(0, 0)));
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.Push(Row(1, 1)));  // Blocks ~30ms, then tail-drops.
  auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            25);
  EXPECT_EQ(q.dropped(), 1u);
}

TEST(ResultQueueTest, CloseUnblocksABlockedProducer) {
  server::ResultQueueOptions opts;
  opts.limit = 1;
  opts.overflow = server::SessionOverflow::kBlock;
  opts.block_ms = 0;  // Wait indefinitely — only Close can free it.
  server::ResultQueue q(opts);
  EXPECT_TRUE(q.Push(Row(0, 0)));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(Row(1, 1)));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ResultQueueTest, FinishedOnlyAfterReaderDrains) {
  server::ResultQueue q(server::ResultQueueOptions{});
  EXPECT_TRUE(q.Push(Row(0, 0)));
  EXPECT_TRUE(q.Push(Row(1, 1)));
  q.Finish();
  auto got = q.WaitRows(0, 1, std::chrono::steady_clock::now());
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_FALSE(got.finished);  // Row 1 still unseen.
  got = q.WaitRows(1, 10, std::chrono::steady_clock::now());
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_TRUE(got.finished);
  got = q.WaitRows(2, 10, std::chrono::steady_clock::now());
  EXPECT_TRUE(got.rows.empty());
  EXPECT_TRUE(got.finished);
}

// ---------------------------------------------------------------------------
// QueryServerTest — end-to-end over real sockets.

class QueryServerTest : public ::testing::Test {
 protected:
  /// Starts the engine's query server on an ephemeral port.
  int Serve(server::QueryServerOptions opts = {}) {
    (void)engine_.RegisterStream("packets", gen::PacketSchema());
    auto bound = engine_.Serve(0, opts);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return *bound;
  }

  /// Submits `cql` and returns the session id ("" on rejection).
  std::string Submit(int port, const std::string& cql,
                     const std::string& params = "") {
    std::string resp = Post(port, "/query" + params, cql);
    return JsonStr(Body(resp), "session");
  }

  /// Streams every row of a session to completion, resuming from
  /// `cursor`, `max_per_poll` rows per request (0 = all in one).
  std::vector<std::string> StreamAll(int port, const std::string& sid,
                                     uint64_t cursor = 0,
                                     int max_per_poll = 0) {
    std::vector<std::string> rows;
    for (int polls = 0; polls < 1000; ++polls) {
      std::string t = "/session/" + sid +
                      "/results?wait_ms=2000&cursor=" +
                      std::to_string(cursor);
      if (max_per_poll > 0) t += "&max=" + std::to_string(max_per_poll);
      Streamed got = ParseStream(Body(Get(port, t)));
      for (const std::string& r : got.rows) rows.push_back(r);
      cursor = got.next_cursor;
      if (got.finished) return rows;
    }
    ADD_FAILURE() << "session " << sid << " never finished";
    return rows;
  }

  StreamEngine engine_;
};

TEST_F(QueryServerTest, StreamedRowsMatchInProcessRunExactly) {
  int port = Serve();
  const std::string cql = "select ts, len from packets where len > 300";
  std::string sid = Submit(port, cql);
  ASSERT_FALSE(sid.empty());

  // Reference: the same query compiled in-process over the same feed.
  StreamEngine ref;
  (void)ref.RegisterStream("packets", gen::PacketSchema());
  auto refq = ref.Submit(cql);
  ASSERT_TRUE(refq.ok());

  gen::PacketGenerator generator(gen::PacketOptions{});
  for (int i = 0; i < 3000; ++i) {
    TupleRef p = generator.Next();
    (void)engine_.Ingest("packets", p);
    (void)ref.Ingest("packets", p);
  }
  engine_.FinishAll();
  engine_.query_server()->FinishSessions();
  ref.FinishAll();

  std::vector<std::string> streamed = StreamAll(port, sid);
  std::multiset<std::string> got;
  for (const std::string& line : streamed) got.insert(PayloadOf(line));
  std::multiset<std::string> want;
  for (const TupleRef& t : (*refq)->results()) {
    want.insert(server::RowJson(*t));
  }
  EXPECT_GT(want.size(), 0u);
  EXPECT_EQ(got, want);
}

TEST_F(QueryServerTest, DetachReattachSeesEveryRowExactlyOnce) {
  server::QueryServerOptions opts;
  opts.queue.limit = 8;  // Small: the producer leans on backpressure.
  opts.queue.block_ms = 30000;
  int port = Serve(opts);
  std::string sid =
      Submit(port, "select ts, src_ip from packets where src_ip >= 0");
  ASSERT_FALSE(sid.empty());

  const int kRows = 100;
  // One dedicated ingest thread (the engine's single-ingest contract);
  // it blocks whenever the 8-row queue is full and only advances as the
  // client acks — the test *is* the backpressure path.
  std::thread ingest([&] {
    for (int i = 0; i < kRows; ++i) {
      (void)engine_.Ingest("packets", Pkt(i, i % 7, 6, 400));
    }
    engine_.FinishAll();
    engine_.query_server()->FinishSessions();
  });

  // Stream in small polls, "detaching" after every response (each poll
  // is its own connection) and reattaching at the cursor.
  std::vector<std::string> rows = StreamAll(port, sid, 0, 3);
  ingest.join();

  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(SeqOf(rows[i]), static_cast<uint64_t>(i))
        << "gap or duplicate at row " << i;
  }
}

TEST_F(QueryServerTest, ClientBlockMsZeroIsClampedAndCannotWedgeIngest) {
  server::QueryServerOptions opts;
  opts.queue.limit = 4;
  opts.max_block_ms = 50;
  int port = Serve(opts);
  // Unclamped, ?block_ms=0 means "wait indefinitely": with no reader
  // ever attaching, every push past the 4-row limit would park the
  // ingest thread forever. The server-side clamp bounds each push.
  std::string sid =
      Submit(port, "select ts, src_ip from packets where src_ip >= 0",
             "?policy=block&block_ms=0");
  ASSERT_FALSE(sid.empty());

  for (int i = 0; i < 20; ++i) {
    (void)engine_.Ingest("packets", Pkt(i, i % 7, 6, 400));
  }
  engine_.FinishAll();  // Returns only because each blocked push times out.

  std::string info = Body(Get(port, "/session/" + sid));
  size_t p = info.find("\"dropped\":");
  ASSERT_NE(p, std::string::npos) << info;
  EXPECT_GT(std::atoll(info.c_str() + p + 10), 0) << info;
}

TEST_F(QueryServerTest, ThirtyTwoConcurrentClientsEachGetTheirRows) {
  int port = Serve();
  const int kClients = 32;
  const int kPerKey = 40;

  // Every client registers a different filter, concurrently.
  std::vector<std::string> sids(kClients);
  {
    std::vector<std::thread> submitters;
    for (int c = 0; c < kClients; ++c) {
      submitters.emplace_back([&, c] {
        sids[c] = Submit(port,
                         "select ts, src_ip from packets where src_ip = " +
                             std::to_string(c));
      });
    }
    for (auto& th : submitters) th.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(sids[c].empty()) << "client " << c;
  }

  // One interleaved feed; key c appears exactly kPerKey times.
  for (int round = 0; round < kPerKey; ++round) {
    for (int c = 0; c < kClients; ++c) {
      (void)engine_.Ingest("packets",
                           Pkt(round * kClients + c, c, 6, 100 + c));
    }
  }
  engine_.FinishAll();
  engine_.query_server()->FinishSessions();

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < kClients; ++c) {
    readers.emplace_back([&, c] {
      std::vector<std::string> rows = StreamAll(port, sids[c]);
      if (rows.size() != static_cast<size_t>(kPerKey)) {
        failures.fetch_add(1);
        return;
      }
      const std::string key = "," + std::to_string(c) + "]";
      for (const std::string& line : rows) {
        // Each row is [ts, src_ip]; src_ip must be this client's key.
        if (line.find(key) == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine_.query_server()->rows_delivered(),
            static_cast<uint64_t>(kClients * kPerKey));
}

TEST_F(QueryServerTest, AdmissionRejectsAtCapAndReadmitsAfterClose) {
  server::QueryServerOptions opts;
  opts.admission.max_sessions = 2;
  int port = Serve(opts);

  std::string s0 = Submit(port, "select ts from packets");
  std::string s1 = Submit(port, "select len from packets");
  ASSERT_FALSE(s0.empty());
  ASSERT_FALSE(s1.empty());

  std::string rejected = Post(port, "/query", "select src_ip from packets");
  EXPECT_NE(rejected.find(" 429 "), std::string::npos);
  EXPECT_NE(rejected.find("max_sessions"), std::string::npos);

  // The admitted sessions keep streaming through the overload.
  (void)engine_.Ingest("packets", Pkt(1, 1, 6, 400));
  Streamed got = ParseStream(
      Body(Get(port, "/session/" + s0 + "/results?wait_ms=2000&max=1")));
  EXPECT_EQ(got.rows.size(), 1u);

  // Closing one frees a slot.
  EXPECT_NE(Del(port, "/session/" + s1).find(" 200 "), std::string::npos);
  std::string s2 = Submit(port, "select src_ip from packets");
  EXPECT_FALSE(s2.empty());
}

TEST_F(QueryServerTest, OverloadedByQueueReservationRejectsWithReason) {
  server::QueryServerOptions opts;
  opts.admission.max_queued_rows = 100;
  int port = Serve(opts);
  ASSERT_FALSE(Submit(port, "select ts from packets", "?queue=64").empty());
  std::string rejected =
      Post(port, "/query?queue=64", "select len from packets");
  EXPECT_NE(rejected.find(" 429 "), std::string::npos);
  EXPECT_NE(rejected.find("overloaded"), std::string::npos);
  // A smaller reservation still fits.
  EXPECT_FALSE(Submit(port, "select len from packets", "?queue=16").empty());
}

TEST_F(QueryServerTest, DropPolicyCountsWhatASlowClientLoses) {
  int port = Serve();
  std::string sid = Submit(port, "select ts from packets",
                           "?policy=drop&queue=4");
  ASSERT_FALSE(sid.empty());
  for (int i = 0; i < 50; ++i) {
    (void)engine_.Ingest("packets", Pkt(i, 1, 6, 400));
  }
  Streamed got = ParseStream(
      Body(Get(port, "/session/" + sid + "/results?wait_ms=100")));
  EXPECT_EQ(got.rows.size(), 4u);  // Queue capacity; the rest dropped.
  EXPECT_NE(got.trailer.find("\"dropped\":46"), std::string::npos);
  std::string info = Body(Get(port, "/session/" + sid));
  EXPECT_NE(info.find("\"dropped\":46"), std::string::npos);
}

TEST_F(QueryServerTest, ShedPolicyAttachesTheController) {
  int port = Serve();
  std::string resp =
      Post(port, "/query?policy=shed&queue=32", "select ts from packets");
  EXPECT_NE(resp.find(" 200 "), std::string::npos);
  std::string sid = JsonStr(Body(resp), "session");
  ASSERT_FALSE(sid.empty());
  std::string info = Body(Get(port, "/session/" + sid));
  EXPECT_NE(info.find("\"policy\":\"shed\""), std::string::npos);
  EXPECT_NE(info.find("\"shed_rate\":"), std::string::npos);
  EXPECT_NE(Del(port, "/session/" + sid).find(" 200 "), std::string::npos);
}

TEST_F(QueryServerTest, BadQueryAndBadRoutesReportErrors) {
  int port = Serve();
  std::string bad = Post(port, "/query", "select nonsense !!");
  EXPECT_NE(bad.find(" 400 "), std::string::npos);
  EXPECT_EQ(engine_.num_queries(), 0u);  // Nothing half-registered.
  EXPECT_NE(Get(port, "/session/nope").find(" 404 "), std::string::npos);
  EXPECT_NE(Get(port, "/definitely/not").find(" 404 "), std::string::npos);
  EXPECT_NE(Post(port, "/query?policy=wat", "select ts from packets")
                .find(" 400 "),
            std::string::npos);
  EXPECT_NE(Get(port, "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(Get(port, "/stats").find("\"sessions\":0"), std::string::npos);
}

TEST_F(QueryServerTest, EngineTeardownWhileClientStreams) {
  auto engine = std::make_unique<StreamEngine>();
  (void)engine->RegisterStream("packets", gen::PacketSchema());
  auto bound = engine->Serve(0);
  ASSERT_TRUE(bound.ok());
  int port = *bound;
  std::string sid = JsonStr(
      Body(Post(port, "/query", "select ts from packets")), "session");
  ASSERT_FALSE(sid.empty());

  // A client parked in a long poll while the engine dies under it: the
  // server's Stop kicks the connection loose and the response still
  // terminates cleanly.
  std::thread reader([&] {
    (void)Get(port, "/session/" + sid + "/results?wait_ms=10000");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  engine.reset();
  reader.join();
}

// Crash-class inputs at the network boundary: oversized numeric
// literals and pathological nesting once escaped the lexer/parser as
// uncaught exceptions (std::stoll) or stack overflow, killing the whole
// server. Each must come back as a 400 — and the server must keep
// answering afterwards.
TEST_F(QueryServerTest, HostileQueriesAnswer400AndServerSurvives) {
  int port = Serve();
  const std::vector<std::string> hostile = {
      "select 99999999999999999999 from packets",
      "select ts from packets where len > " + std::string(400, '9'),
      "select ts from packets where len > " + std::string(400, '9') + ".5",
      "select count(*) from packets [range 99999999999999999999]",
      "select ts from packets where " + std::string(20000, '(') + "1" +
          std::string(20000, ')') + " = 1",
      std::string(1 << 16, '@'),
  };
  for (const std::string& cql : hostile) {
    std::string resp = Post(port, "/query", cql);
    EXPECT_NE(resp.find(" 400 "), std::string::npos)
        << "query: " << cql.substr(0, 80);
  }
  // Still alive: health checks pass and a well-formed submit works.
  EXPECT_NE(Get(port, "/healthz").find(" 200 "), std::string::npos);
  std::string sid = Submit(port, "select ts from packets where len > 100");
  EXPECT_FALSE(sid.empty());
}

// ?replay=1 pours the durable archive through a new session before live
// ingest takes over — the late subscriber sees the archived past.
TEST_F(QueryServerTest, ReplaySessionSeesArchivedPast) {
  std::string tmpl = std::string(::testing::TempDir()) + "sqp-srv-XXXXXX";
  std::vector<char> dirbuf(tmpl.begin(), tmpl.end());
  dirbuf.push_back('\0');
  ASSERT_NE(mkdtemp(dirbuf.data()), nullptr);
  int port = Serve();
  ASSERT_TRUE(engine_.EnableDurability(dirbuf.data(), {}).ok());

  gen::PacketGenerator generator(gen::PacketOptions{});
  for (int i = 0; i < 500; ++i) {
    (void)engine_.Ingest("packets", generator.Next());
  }

  // Replay needs a lossy queue policy; with the default block policy it
  // must be refused outright (not wedge the engine).
  std::string refused =
      Post(port, "/query?replay=1", "select ts from packets");
  EXPECT_NE(refused.find(" 400 "), std::string::npos);

  std::string resp = Body(Post(port, "/query?replay=1&policy=drop&queue=4096",
                               "select ts from packets where len > 0"));
  std::string sid = JsonStr(resp, "session");
  ASSERT_FALSE(sid.empty()) << resp;
  // All 500 archived elements were poured through the new query.
  EXPECT_NE(resp.find("\"replayed\":500"), std::string::npos) << resp;

  engine_.FinishAll();
  engine_.query_server()->FinishSessions();
  std::vector<std::string> rows = StreamAll(port, sid);
  EXPECT_GT(rows.size(), 0u);
}

// The metrics exporter rides the same listener now; make sure the
// refactor kept it serving.
TEST_F(QueryServerTest, MetricsExporterStillServesOverSharedListener) {
  (void)engine_.RegisterStream("packets", gen::PacketSchema());
  auto bound = engine_.ServeMetrics(0);
  ASSERT_TRUE(bound.ok());
  std::string resp = Get(*bound, "/metrics");
  EXPECT_NE(resp.find(" 200 "), std::string::npos);
  std::string json = Get(*bound, "/snapshot.json");
  EXPECT_NE(json.find(" 200 "), std::string::npos);
}

}  // namespace
}  // namespace sqp
