#include <gtest/gtest.h>

#include <map>

#include "cql/planner.h"
#include "exec/plan.h"
#include "stream/generators.h"

namespace sqp {
namespace cql {
namespace {

Catalog TestCatalog() {
  Catalog cat;
  // Packet stream with domain metadata for the analyzer.
  std::vector<FieldDomain> pkt_domains(gen::PacketSchema()->num_fields());
  pkt_domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  pkt_domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  pkt_domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  EXPECT_TRUE(cat.Register("packets", gen::PacketSchema(), pkt_domains).ok());
  EXPECT_TRUE(cat.Register("syn", gen::PacketSchema(), pkt_domains).ok());
  EXPECT_TRUE(cat.Register("synack", gen::PacketSchema(), pkt_domains).ok());
  EXPECT_TRUE(cat.Register("cdr", gen::CdrSchema()).ok());
  return cat;
}

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len,
             const char* payload = "") {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{99}),
                        Value(int64_t{1000}), Value(int64_t{80}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value(payload)});
}

TEST(CompileTest, SelectProjectRuns) {
  Catalog cat = TestCatalog();
  auto cq = Compile("select src_ip, len from packets where len > 100", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(1, 5, 6, 50)));
  (*cq)->Push(Element(Pkt(2, 7, 6, 200)));
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.tuples()[0]->at(0).AsInt(), 7);
  EXPECT_EQ(sink.tuples()[0]->at(1).AsInt(), 200);
  EXPECT_EQ((*cq)->output_schema().field(0).name, "src_ip");
}

TEST(CompileTest, ProjectionExpressions) {
  Catalog cat = TestCatalog();
  auto cq = Compile("select len * 2 as dbl, ts from packets", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(3, 1, 6, 10)));
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.tuples()[0]->at(0).AsInt(), 20);
  EXPECT_EQ((*cq)->output_schema().field(0).name, "dbl");
}

TEST(CompileTest, ContainsPredicate) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select ts from packets where contains(payload, 'GNUTELLA')", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(1, 1, 6, 10, "..GNUTELLA CONNECT..")));
  (*cq)->Push(Element(Pkt(2, 1, 6, 10, "plain")));
  (*cq)->Finish();
  EXPECT_EQ(sink.count(), 1u);
}

TEST(CompileTest, Slide13AggregateQueryEndToEnd) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select tb, src_ip, sum(len) from packets where protocol = 6 "
      "group by ts/60 as tb, src_ip having count(*) > 2",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  // Bucket 0 (ts 0-59): src 1 sends 3 packets (passes having), src 2
  // sends 1 (filtered by having); UDP packets excluded by WHERE.
  (*cq)->Push(Element(Pkt(1, 1, 6, 10)));
  (*cq)->Push(Element(Pkt(2, 1, 6, 20)));
  (*cq)->Push(Element(Pkt(3, 1, 6, 30)));
  (*cq)->Push(Element(Pkt(4, 2, 6, 99)));
  (*cq)->Push(Element(Pkt(5, 1, 17, 1000)));
  // Bucket 1: closes bucket 0.
  (*cq)->Push(Element(Pkt(65, 3, 6, 5)));
  (*cq)->Finish();

  ASSERT_EQ(sink.count(), 1u);
  const TupleRef& row = sink.tuples()[0];
  EXPECT_EQ(row->at(0).AsInt(), 0);   // tb = 0.
  EXPECT_EQ(row->at(1).AsInt(), 1);   // src_ip.
  EXPECT_EQ(row->at(2).AsInt(), 60);  // sum(len) = 10+20+30.
  // Memory analysis: src_ip unbounded -> unbounded verdict.
  EXPECT_EQ((*cq)->memory().verdict, MemoryVerdict::kUnbounded);
}

TEST(CompileTest, BoundedMemoryVerdictWithRangePredicate) {
  Catalog cat = TestCatalog();
  // Slide 36: length range-restricted makes grouping bounded.
  auto cq = Compile(
      "select len, count(*) from packets "
      "where len > 512 and len < 1024 group by len",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ((*cq)->memory().verdict, MemoryVerdict::kBounded);
  EXPECT_EQ((*cq)->memory().max_groups, 511u);

  auto unbounded = Compile(
      "select len, count(*) from packets where len > 512 group by len", cat);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ((*unbounded)->memory().verdict, MemoryVerdict::kUnbounded);
}

TEST(CompileTest, DistinctQuery) {
  Catalog cat = TestCatalog();
  auto cq = Compile("select distinct protocol from packets", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  for (int64_t p : {6, 6, 17, 6, 17}) {
    (*cq)->Push(Element(Pkt(p, 1, p, 10)));
  }
  (*cq)->Finish();
  EXPECT_EQ(sink.count(), 2u);
}

TEST(CompileTest, SlidingWindowAggregate) {
  Catalog cat = TestCatalog();
  auto cq = Compile("select sum(len) from packets [range 10]", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(1, 1, 6, 100)));
  (*cq)->Push(Element(Pkt(5, 1, 6, 50)));
  (*cq)->Push(Element(Pkt(20, 1, 6, 7)));
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.tuples()[1]->at(0).AsInt(), 150);
  EXPECT_EQ(sink.tuples()[2]->at(0).AsInt(), 7);  // Old ones expired.
}

TEST(CompileTest, Slide13RttJoinEndToEnd) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select s.ts, a.ts - s.ts as rtt "
      "from syn s [range 200], synack a [range 200] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "and s.src_port = a.dst_port and s.dst_port = a.src_port "
      "and s.is_syn = 1 and a.is_ack = 1",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  ASSERT_EQ((*cq)->num_inputs(), 2);
  CollectorSink sink;
  (*cq)->AttachSink(&sink);

  auto syn = [&](int64_t ts, int64_t src, int64_t dst, int64_t sp, int64_t dp) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(dst), Value(sp),
                          Value(dp), Value(gen::kProtoTcp), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{0}), Value("")});
  };
  auto ack = [&](int64_t ts, int64_t src, int64_t dst, int64_t sp, int64_t dp) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(dst), Value(sp),
                          Value(dp), Value(gen::kProtoTcp), Value(int64_t{60}),
                          Value(int64_t{1}), Value(int64_t{1}), Value("")});
  };
  (*cq)->Push(Element(syn(10, 111, 222, 1000, 80)), 0);
  (*cq)->Push(Element(ack(25, 222, 111, 80, 1000)), 1);  // Reply: rtt 15.
  (*cq)->Push(Element(ack(30, 222, 111, 80, 9999)), 1);  // Port mismatch.
  (*cq)->Finish();

  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.tuples()[0]->at(1).AsInt(), 15);
  EXPECT_EQ((*cq)->output_schema().field(1).name, "rtt");
  EXPECT_EQ((*cq)->memory().verdict, MemoryVerdict::kBounded);
}

TEST(CompileTest, JoinWithoutWindowsUsesSymmetricHash) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select s.ts from syn s, synack a where s.src_ip = a.dst_ip", cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ((*cq)->memory().verdict, MemoryVerdict::kUnbounded);
  EXPECT_NE((*cq)->plan_desc().find("sym-hash-join"), std::string::npos);
}

TEST(CompileTest, CompileErrors) {
  Catalog cat = TestCatalog();
  EXPECT_FALSE(Compile("select x from nosuch", cat).ok());
  EXPECT_FALSE(Compile("select nosuchcol from packets", cat).ok());
  EXPECT_FALSE(
      Compile("select ts from syn s, synack a where s.len > 1", cat).ok());
  // Mixed windowed/unwindowed join.
  EXPECT_FALSE(
      Compile("select s.ts from syn s [range 5], synack a "
              "where s.src_ip = a.src_ip",
              cat)
          .ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(Compile("select ts from packets where sum(len) > 1", cat).ok());
  // HAVING without group/aggregates.
  EXPECT_FALSE(Compile("select ts from packets having ts > 1", cat).ok());
}

TEST(CompileTest, AmbiguousColumnRejected) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select ts from syn s [range 5], synack a [range 5] "
      "where s.src_ip = a.src_ip",
      cat);
  EXPECT_FALSE(cq.ok());  // "ts" exists on both streams.
}

TEST(CompileTest, AggregateOverJoin) {
  // Group-by over the combined layout of a windowed join: per-server
  // connection counts from matched SYN/SYN-ACK pairs.
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select s.dst_ip, count(*), avg(a.ts - s.ts) "
      "from syn s [range 100], synack a [range 100] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "group by s.dst_ip",
      cat);
  // avg over an expression argument is unsupported; expect the clean
  // rejection rather than silent misplanning.
  if (!cq.ok()) {
    EXPECT_EQ(cq.status().code(), StatusCode::kUnimplemented);
  }

  auto counts = Compile(
      "select s.dst_ip, count(*) "
      "from syn s [range 100], synack a [range 100] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "group by s.dst_ip",
      cat);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  CollectorSink sink;
  (*counts)->AttachSink(&sink);
  auto syn = [&](int64_t ts, int64_t src, int64_t dst) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(dst), Value(int64_t{1}),
                          Value(int64_t{2}), Value(gen::kProtoTcp),
                          Value(int64_t{60}), Value(int64_t{1}),
                          Value(int64_t{0}), Value("")});
  };
  auto ack = [&](int64_t ts, int64_t src, int64_t dst) {
    return MakeTuple(ts, {Value(ts), Value(src), Value(dst), Value(int64_t{2}),
                          Value(int64_t{1}), Value(gen::kProtoTcp),
                          Value(int64_t{60}), Value(int64_t{1}),
                          Value(int64_t{1}), Value("")});
  };
  // Two connections to server 50, one to server 60.
  (*counts)->Push(Element(syn(1, 10, 50)), 0);
  (*counts)->Push(Element(ack(2, 50, 10)), 1);
  (*counts)->Push(Element(syn(3, 11, 50)), 0);
  (*counts)->Push(Element(ack(4, 50, 11)), 1);
  (*counts)->Push(Element(syn(5, 12, 60)), 0);
  (*counts)->Push(Element(ack(6, 60, 12)), 1);
  (*counts)->Finish();
  std::map<int64_t, int64_t> rows;
  for (const TupleRef& r : sink.tuples()) {
    rows[r->at(0).AsInt()] = r->at(1).AsInt();
  }
  EXPECT_EQ(rows[50], 2);
  EXPECT_EQ(rows[60], 1);
}

TEST(CompileTest, AvgAndMinMaxInGroupBy) {
  Catalog cat = TestCatalog();
  auto cq = Compile(
      "select src_ip, avg(len), min(len), max(len) from packets "
      "group by src_ip",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(1, 1, 6, 10)));
  (*cq)->Push(Element(Pkt(2, 1, 6, 30)));
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_DOUBLE_EQ(sink.tuples()[0]->at(1).AsDouble(), 20.0);
  EXPECT_EQ(sink.tuples()[0]->at(2).AsInt(), 10);
  EXPECT_EQ(sink.tuples()[0]->at(3).AsInt(), 30);
}

}  // namespace
}  // namespace cql
}  // namespace sqp
