#include <gtest/gtest.h>

#include "cql/parser.h"

namespace sqp {
namespace cql {
namespace {

TEST(ParserTest, SimpleSelectWhere) {
  auto q = Parse("select src_ip, ts from packets where len > 512");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].name, "packets");
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->ToString(), "(len > 512)");
}

TEST(ParserTest, SelectDistinct) {
  auto q = Parse("select distinct len from packets");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, Slide13TrafficQuery) {
  // The first GSQL query of slide 13, adapted to our window syntax.
  auto q = Parse(
      "select tb, src_ip, sum(len) from packets "
      "where protocol = 6 "
      "group by ts/60 as tb, src_ip having count(*) > 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by.size(), 2u);
  EXPECT_EQ(q->group_by[0].alias, "tb");
  EXPECT_EQ(q->group_by[0].expr->ToString(), "(ts / 60)");
  ASSERT_NE(q->having, nullptr);
  EXPECT_EQ(q->having->ToString(), "(count(*) > 5)");
}

TEST(ParserTest, Slide13RttJoinQuery) {
  auto q = Parse(
      "select s.ts, a.ts - s.ts as rtt "
      "from tcp_syn s [range 100], tcp_syn_ack a [range 100] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "and s.src_port = a.dst_port and s.dst_port = a.src_port");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].alias, "s");
  ASSERT_TRUE(q->from[0].window.has_value());
  EXPECT_EQ(q->from[0].window->kind, WindowKind::kTimeSliding);
  EXPECT_EQ(q->from[0].window->size, 100);
  EXPECT_EQ(q->select[1].alias, "rtt");
  EXPECT_EQ(q->select[1].expr->ToString(), "(a.ts - s.ts)");
}

TEST(ParserTest, RowsWindow) {
  auto q = Parse("select ts from s [rows 1000]");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->from[0].window.has_value());
  EXPECT_EQ(q->from[0].window->kind, WindowKind::kCountSliding);
  EXPECT_EQ(q->from[0].window->size, 1000);
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = Parse("select a from s where a + 2 * 3 = 7 and b < 1 or c > 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(),
            "((((a + (2 * 3)) = 7) and (b < 1)) or (c > 2))");
}

TEST(ParserTest, NotAndParens) {
  auto q = Parse("select a from s where not (a = 1 or b = 2)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "not ((a = 1) or (b = 2))");
}

TEST(ParserTest, FunctionCalls) {
  auto q = Parse("select count(*), sum(len), contains(payload, 'GNUTELLA') "
                 "from packets");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->ToString(), "count(*)");
  EXPECT_EQ(q->select[1].expr->ToString(), "sum(len)");
  EXPECT_EQ(q->select[2].expr->ToString(), "contains(payload, 'GNUTELLA')");
}

TEST(ParserTest, UnaryMinus) {
  auto q = Parse("select a from s where a > -5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "(a > (0 - 5))");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("selec a from s").ok());
  EXPECT_FALSE(Parse("select from s").ok());
  EXPECT_FALSE(Parse("select a").ok());               // Missing FROM.
  EXPECT_FALSE(Parse("select a from s where").ok());  // Dangling WHERE.
  EXPECT_FALSE(Parse("select a from s [range]").ok());
  EXPECT_FALSE(Parse("select a from s [range 0]").ok());  // Invalid size.
  EXPECT_FALSE(Parse("select a from s x y").ok());        // Trailing junk.
  EXPECT_FALSE(Parse("select a from s, t, u").ok());      // 3 streams.
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto q = Parse("select a frm s");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("expected 'from'"), std::string::npos);
}

TEST(ParserTest, QueryToStringRoundtrips) {
  const char* text =
      "select tb, src_ip from packets where protocol = 6 "
      "group by ts/60 as tb, src_ip";
  auto q1 = Parse(text);
  ASSERT_TRUE(q1.ok());
  auto q2 = Parse(q1->ToString());
  ASSERT_TRUE(q2.ok()) << q1->ToString();
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

}  // namespace
}  // namespace cql
}  // namespace sqp
