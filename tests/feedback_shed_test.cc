#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "common/rng.h"
#include "shed/feedback_shedder.h"
#include "stream/arrival.h"

namespace sqp {
namespace {

/// Simulates a queue fed at `arrival` and drained at `capacity` per
/// tick, with the feedback shedder dropping at the queue's mouth.
struct SimResult {
  double final_drop_rate;
  double mean_queue_tail;  // Mean occupancy over the last quarter.
  size_t peak_queue;
};

SimResult RunQueueSim(double arrival_rate, double capacity, int ticks,
                      FeedbackShedder& shedder, uint64_t seed) {
  Rng rng(seed);
  PoissonArrival arrivals(arrival_rate, seed + 1);
  double queue = 0;
  SimResult r{0, 0, 0};
  int tail_start = ticks * 3 / 4;
  int tail_n = 0;
  for (int t = 0; t < ticks; ++t) {
    uint64_t n = arrivals.ArrivalsAt(t);
    double p = shedder.Observe(static_cast<size_t>(queue));
    for (uint64_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) queue += 1;
    }
    queue = std::max(0.0, queue - capacity);
    r.peak_queue = std::max(r.peak_queue, static_cast<size_t>(queue));
    if (t >= tail_start) {
      r.mean_queue_tail += queue;
      ++tail_n;
    }
  }
  r.mean_queue_tail /= tail_n;
  r.final_drop_rate = shedder.drop_rate();
  return r;
}

TEST(FeedbackShedderTest, NoDropsWhenUnderloaded) {
  FeedbackShedder shed(FeedbackShedder::Options{});
  auto r = RunQueueSim(/*arrival=*/0.5, /*capacity=*/1.0, 5000, shed, 1);
  EXPECT_LT(r.final_drop_rate, 0.02);
  EXPECT_LT(r.mean_queue_tail, 10.0);
}

TEST(FeedbackShedderTest, ConvergesToExcessFraction) {
  // Arrival 4/tick, capacity 1/tick: steady state must shed ~75%.
  FeedbackShedder shed(FeedbackShedder::Options{});
  auto r = RunQueueSim(4.0, 1.0, 20000, shed, 2);
  EXPECT_NEAR(r.final_drop_rate, 0.75, 0.08);
  // Queue holds near the target instead of exploding.
  EXPECT_LT(r.mean_queue_tail, 400.0);
}

TEST(FeedbackShedderTest, QueueStabilizesNearTarget) {
  FeedbackShedder::Options opt;
  opt.target_queue = 50.0;
  FeedbackShedder shed(opt);
  auto r = RunQueueSim(2.0, 1.0, 20000, shed, 3);
  EXPECT_NEAR(r.mean_queue_tail, 50.0, 40.0);
}

TEST(FeedbackShedderTest, RecoversWhenOverloadEnds) {
  FeedbackShedder shed(FeedbackShedder::Options{});
  // Overload phase.
  (void)RunQueueSim(3.0, 1.0, 10000, shed, 4);
  EXPECT_GT(shed.drop_rate(), 0.5);
  // Load drops; the integral unwinds and shedding stops.
  auto r = RunQueueSim(0.3, 1.0, 10000, shed, 5);
  EXPECT_LT(r.final_drop_rate, 0.05);
}

TEST(FeedbackShedderTest, DropRateAlwaysValidProbability) {
  FeedbackShedder shed(FeedbackShedder::Options{});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    double p = shed.Observe(static_cast<size_t>(rng.Uniform(100000)));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FeedbackShedderTest, SanitizesDegenerateOptions) {
  // target_queue <= 0 would divide by zero (or invert the error sign);
  // the constructor degrades to target 1 and the controller still
  // behaves: zero queue -> no drops, big queue -> drops.
  for (double bad : {0.0, -5.0, std::nan("")}) {
    FeedbackShedder::Options opt;
    opt.target_queue = bad;
    FeedbackShedder shed(opt);
    EXPECT_DOUBLE_EQ(shed.options().target_queue, 1.0);
    EXPECT_DOUBLE_EQ(shed.Observe(0), 0.0);
    double p = 0.0;
    for (int i = 0; i < 50; ++i) p = shed.Observe(1000);
    EXPECT_GT(p, 0.5);
    for (int i = 0; i < 200; ++i) p = shed.Observe(0);
    EXPECT_LT(p, 0.05);
  }
  FeedbackShedder::Options neg;
  neg.kp = -1.0;
  neg.ki = -1.0;
  FeedbackShedder shed(neg);
  for (int i = 0; i < 100; ++i) {
    double p = shed.Observe(10000);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FeedbackShedderTest, AntiWindupRecoversQuicklyAfterLongBurst) {
  // A long hard overload (queue pinned far above target) must not bank
  // integral that keeps shedding long after the queue empties. With
  // conditional integration the drop rate falls below 1% within a
  // bounded number of idle ticks.
  FeedbackShedder::Options opt;
  opt.target_queue = 100.0;
  FeedbackShedder shed(opt);
  for (int i = 0; i < 5000; ++i) shed.Observe(100000);  // 1000x target.
  EXPECT_DOUBLE_EQ(shed.drop_rate(), 1.0);
  int ticks_to_recover = 0;
  while (shed.Observe(0) >= 0.01 && ticks_to_recover < 10000) {
    ++ticks_to_recover;
  }
  // kp=0.2, ki=0.02: the frozen integral can hold at most ~1 - kp*10,
  // and draining at ki per tick bounds recovery well under 100 ticks —
  // not the 5000 the burst lasted.
  EXPECT_LT(ticks_to_recover, 100);
}

TEST(FeedbackShedderTest, ConvergesUnderBurstyTicks) {
  // Scripted bursty observation sequence: backlog alternates between
  // hard bursts and idle valleys around the target; the controller must
  // settle to a mid-range rate rather than slam between 0 and 1 forever.
  FeedbackShedder::Options opt;
  opt.target_queue = 100.0;
  FeedbackShedder shed(opt);
  Rng rng(11);
  double queue = 0;
  BurstyArrival arrivals(10.0, 30.0, 120.0, 9);
  for (int t = 0; t < 30000; ++t) {
    uint64_t n = arrivals.ArrivalsAt(t);
    double p = shed.Observe(static_cast<size_t>(queue));
    for (uint64_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) queue += 1;
    }
    queue = std::max(0.0, queue - 1.0);
  }
  // Long-run mean arrival is 10*30/(30+120) = 2/tick against capacity 1:
  // the steady drop rate must sit near 1/2, and the queue near target.
  double tail_rate = 0.0;
  double tail_queue = 0.0;
  int tail_n = 0;
  for (int t = 0; t < 30000; ++t) {
    uint64_t n = arrivals.ArrivalsAt(30000 + t);
    double p = shed.Observe(static_cast<size_t>(queue));
    for (uint64_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) queue += 1;
    }
    queue = std::max(0.0, queue - 1.0);
    tail_rate += p;
    tail_queue += queue;
    ++tail_n;
  }
  EXPECT_NEAR(tail_rate / tail_n, 0.5, 0.15);
  EXPECT_LT(tail_queue / tail_n, 1000.0);
}

TEST(FeedbackShedderTest, BurstyArrivalsBoundedQueue) {
  FeedbackShedder::Options opt;
  opt.target_queue = 100.0;
  FeedbackShedder shed(opt);
  Rng rng(7);
  BurstyArrival arrivals(6.0, 50.0, 100.0, 8);  // Mean 2/tick, bursts of 6.
  double queue = 0;
  size_t peak = 0;
  for (int t = 0; t < 30000; ++t) {
    uint64_t n = arrivals.ArrivalsAt(t);
    double p = shed.Observe(static_cast<size_t>(queue));
    for (uint64_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(p)) queue += 1;
    }
    queue = std::max(0.0, queue - 1.0);
    peak = std::max(peak, static_cast<size_t>(queue));
  }
  // Without shedding the queue would grow ~ (2-1)*30000 = 30000.
  EXPECT_LT(peak, 3000u);
}

}  // namespace
}  // namespace sqp
