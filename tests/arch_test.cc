#include <gtest/gtest.h>

#include <map>

#include "arch/db_sink.h"
#include "arch/decompose.h"
#include "arch/node.h"
#include "arch/system.h"
#include "common/rng.h"
#include "exec/select.h"

namespace sqp {
namespace {

SchemaRef KvSchema() {
  static const SchemaRef kSchema = std::make_shared<const Schema>(
      *Schema::WithOrdering({{"ts", ValueType::kInt},
                             {"key", ValueType::kInt},
                             {"val", ValueType::kInt}},
                            "ts"));
  return kSchema;
}

TupleRef T(int64_t ts, int64_t key, int64_t val) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(val)});
}

// --- DbSink ---

TEST(DbSinkTest, StoresAndScans) {
  DbSink db(KvSchema());
  db.Push(Element(T(1, 1, 10)));
  db.Push(Element(T(2, 2, 20)));
  db.Push(Element(Punctuation::Watermark(5)));  // Not stored.
  EXPECT_EQ(db.size(), 2u);
  auto rows = db.Scan(Gt(Col(2), Lit(int64_t{15})));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->at(1).AsInt(), 2);
  EXPECT_EQ(db.Scan(nullptr).size(), 2u);
}

TEST(DbSinkTest, OneTimeAggregate) {
  DbSink db(KvSchema());
  db.Push(Element(T(1, 1, 10)));
  db.Push(Element(T(2, 1, 20)));
  db.Push(Element(T(3, 2, 5)));
  auto results = db.Aggregate({1}, {{AggKind::kSum, 2, 0.5}});
  std::map<int64_t, int64_t> sums;
  for (auto& [key, vals] : results) {
    sums[key.parts[0].AsInt()] = vals[0].AsInt();
  }
  EXPECT_EQ(sums[1], 30);
  EXPECT_EQ(sums[2], 5);
}

// --- Decompose ---

TEST(DecomposeTest, SumCountMinMax) {
  auto d = DecomposeAggregates({{AggKind::kSum, 2, 0.5},
                                {AggKind::kCount, -1, 0.5},
                                {AggKind::kMin, 2, 0.5}},
                               1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->low_specs.size(), 3u);
  EXPECT_EQ(d->high_specs.size(), 3u);
  EXPECT_EQ(d->high_specs[0].kind, AggKind::kSum);
  EXPECT_EQ(d->high_specs[1].kind, AggKind::kSum);  // count merges by sum.
  EXPECT_EQ(d->high_specs[2].kind, AggKind::kMin);
  EXPECT_EQ(d->finalizers.size(), 3u);
}

TEST(DecomposeTest, AvgSplitsIntoSumAndCount) {
  auto d = DecomposeAggregates({{AggKind::kAvg, 2, 0.5}}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->low_specs.size(), 2u);
  EXPECT_EQ(d->low_specs[0].kind, AggKind::kSum);
  EXPECT_EQ(d->low_specs[1].kind, AggKind::kCount);
  EXPECT_EQ(d->finalizers.size(), 1u);
}

TEST(DecomposeTest, HolisticRejected) {
  auto d = DecomposeAggregates({{AggKind::kMedian, 2, 0.5}}, 1);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnimplemented);
}

// --- DsmsNode ---

TEST(DsmsNodeTest, CapacityLimitsThroughput) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(sink);
  NodeOptions opt;
  opt.capacity_per_tick = 2.0;
  DsmsNode node(sel, opt);
  for (int i = 0; i < 10; ++i) node.Arrive(Element(T(i, 0, 0)));
  node.Tick();
  EXPECT_EQ(node.processed(), 2u);
  node.Tick();
  EXPECT_EQ(node.processed(), 4u);
  node.Drain();
  EXPECT_EQ(node.processed(), 10u);
}

TEST(DsmsNodeTest, QueueOverflowDrops) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(sink);
  NodeOptions opt;
  opt.queue_limit = 3;
  DsmsNode node(sel, opt);
  for (int i = 0; i < 10; ++i) node.Arrive(Element(T(i, 0, 0)));
  EXPECT_EQ(node.dropped(), 7u);
  EXPECT_GT(node.DropRate(), 0.5);
}

// --- ThreeLevelSystem ---

TEST(ThreeLevelTest, ExactResultsDespiteTinyLowLevel) {
  ThreeLevelConfig cfg;
  cfg.key_cols = {1};
  cfg.aggs = {{AggKind::kCount, -1, 0.5},
              {AggKind::kSum, 2, 0.5},
              {AggKind::kAvg, 2, 0.5}};
  cfg.window_size = 100;
  cfg.low_slots = 4;  // Brutally small: constant eviction.
  cfg.low_node.queue_limit = 0;
  cfg.low_node.capacity_per_tick = 1e9;
  cfg.high_node.capacity_per_tick = 1e9;
  auto sys = ThreeLevelSystem::Make(KvSchema(), cfg);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  // Ground truth computed directly.
  std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>> truth;
  Rng rng(55);
  for (int i = 0; i < 5000; ++i) {
    int64_t ts = i;
    int64_t key = static_cast<int64_t>(rng.Uniform(50));
    int64_t val = static_cast<int64_t>(rng.Uniform(100));
    auto& [cnt, sum] = truth[{ts / 100, key}];
    ++cnt;
    sum += val;
    (*sys)->Arrive(T(ts, key, val));
    (*sys)->Tick();
  }
  (*sys)->Drain();

  EXPECT_GT((*sys)->partial_agg().agg_stats().evictions, 100u);
  const DbSink& db = (*sys)->db();
  ASSERT_EQ(db.size(), truth.size());
  for (const TupleRef& row : db.table()) {
    int64_t bucket = row->at(0).AsInt() / 100;
    int64_t key = row->at(1).AsInt();
    auto it = truth.find({bucket, key});
    ASSERT_NE(it, truth.end());
    EXPECT_DOUBLE_EQ(row->at(2).ToDouble(), double(it->second.first));
    EXPECT_DOUBLE_EQ(row->at(3).ToDouble(), double(it->second.second));
    double avg = double(it->second.second) / double(it->second.first);
    EXPECT_NEAR(row->at(4).AsDouble(), avg, 1e-9);
  }
}

TEST(ThreeLevelTest, LowLevelMemoryBoundedBySlots) {
  ThreeLevelConfig cfg;
  cfg.key_cols = {1};
  cfg.aggs = {{AggKind::kCount, -1, 0.5}};
  cfg.window_size = 1000000;  // One giant bucket.
  cfg.low_slots = 8;
  auto sys = ThreeLevelSystem::Make(KvSchema(), cfg);
  ASSERT_TRUE(sys.ok());
  Rng rng(56);
  size_t peak = 0;
  for (int i = 0; i < 20000; ++i) {
    (*sys)->Arrive(T(i, static_cast<int64_t>(rng.Uniform(100000)), 1));
    (*sys)->Tick();
    peak = std::max(peak, (*sys)->partial_agg().StateBytes());
  }
  EXPECT_LT(peak, 16384u);  // O(slots), not O(distinct keys).
}

TEST(ThreeLevelTest, UndecomposableAggregateFailsCleanly) {
  ThreeLevelConfig cfg;
  cfg.key_cols = {1};
  cfg.aggs = {{AggKind::kMedian, 2, 0.5}};
  auto sys = ThreeLevelSystem::Make(KvSchema(), cfg);
  EXPECT_FALSE(sys.ok());
}

}  // namespace
}  // namespace sqp
