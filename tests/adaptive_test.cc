#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "exec/eddy.h"
#include "exec/mjoin.h"
#include "exec/plan.h"
#include "exec/punct_groupby.h"
#include "exec/select.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t a, int64_t b = 0) {
  return MakeTuple(ts, {Value(ts), Value(a), Value(b)});
}

// --- EddyOp ---

EddyOp::Options TwoFilters(bool adaptive) {
  EddyOp::Options opt;
  // Filter 0: passes a < 500; filter 1: passes b < 500.
  opt.filters = {{Lt(Col(1), Lit(int64_t{500})), 1.0},
                 {Lt(Col(2), Lit(int64_t{500})), 1.0}};
  opt.adaptive = adaptive;
  opt.reorder_interval = 64;
  return opt;
}

TEST(EddyTest, SameOutputAsStaticOrder) {
  Rng rng(91);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 5000; ++i) {
    tuples.push_back(T(i, static_cast<int64_t>(rng.Uniform(1000)),
                       static_cast<int64_t>(rng.Uniform(1000))));
  }
  auto run = [&](bool adaptive) {
    Plan plan;
    auto* eddy = plan.Make<EddyOp>(TwoFilters(adaptive));
    auto* sink = plan.Make<CollectorSink>();
    eddy->SetOutput(sink);
    for (const TupleRef& t : tuples) eddy->Push(Element(t));
    std::multiset<std::string> out;
    for (const TupleRef& t : sink->tuples()) out.insert(t->ToString());
    return out;
  };
  EXPECT_EQ(run(true), run(false));  // Adaptivity never changes results.
}

TEST(EddyTest, AdaptsToDriftingSelectivity) {
  // Phase 1: filter 0 is selective (a always >= 500 fails -> drops all).
  // Phase 2: distributions swap. Adaptive routing re-ranks; the static
  // order (initially optimal) becomes wasteful after the drift.
  auto make_stream = [&]() {
    Rng rng(92);
    std::vector<TupleRef> tuples;
    for (int64_t i = 0; i < 20000; ++i) {
      bool phase2 = i >= 10000;
      int64_t a = phase2 ? static_cast<int64_t>(rng.Uniform(499))
                         : 500 + static_cast<int64_t>(rng.Uniform(500));
      int64_t b = phase2 ? 500 + static_cast<int64_t>(rng.Uniform(500))
                         : static_cast<int64_t>(rng.Uniform(499));
      tuples.push_back(T(i, a, b));
    }
    return tuples;
  };
  std::vector<TupleRef> tuples = make_stream();

  auto work = [&](bool adaptive) {
    Plan plan;
    auto* eddy = plan.Make<EddyOp>(TwoFilters(adaptive));
    auto* sink = plan.Make<CountingSink>();
    eddy->SetOutput(sink);
    for (const TupleRef& t : tuples) eddy->Push(Element(t));
    return eddy->work();
  };
  double adaptive_work = work(true);
  double static_work = work(false);
  // Static starts with filter 0 first — optimal in phase 1 but evaluates
  // two predicates per tuple in phase 2. Adaptive re-ranks after drift.
  EXPECT_LT(adaptive_work, static_work * 0.85);
}

TEST(EddyTest, OrderConvergesToRank) {
  // Filter 1 drops everything; filter 0 drops nothing; adaptive order
  // must put filter 1 first once estimates settle.
  EddyOp::Options opt;
  opt.filters = {{Lit(int64_t{1}), 1.0}, {Lit(int64_t{0}), 1.0}};
  opt.reorder_interval = 32;
  Plan plan;
  auto* eddy = plan.Make<EddyOp>(opt);
  auto* sink = plan.Make<CountingSink>();
  eddy->SetOutput(sink);
  for (int64_t i = 0; i < 1000; ++i) eddy->Push(Element(T(i, 0)));
  EXPECT_EQ(eddy->order()[0], 1u);
  EXPECT_LT(eddy->selectivity_estimate(1), 0.05);
  EXPECT_GT(eddy->selectivity_estimate(0), 0.95);
  EXPECT_EQ(sink->tuples(), 0u);  // Filter 1 rejects everything.
}

TEST(EddyTest, PunctuationsPass) {
  Plan plan;
  auto* eddy = plan.Make<EddyOp>(TwoFilters(true));
  auto* sink = plan.Make<CollectorSink>();
  eddy->SetOutput(sink);
  eddy->Push(Element(Punctuation::Watermark(5)));
  EXPECT_EQ(sink->punctuations().size(), 1u);
}

// --- MultiWindowJoinOp ---

MultiWindowJoinOp::Options ThreeWay(int64_t w, bool adaptive) {
  MultiWindowJoinOp::Options opt;
  opt.streams = {{1, w}, {1, w}, {1, w}};
  opt.adaptive_order = adaptive;
  return opt;
}

TEST(MJoinTest, ThreeWayMatchesBruteForce) {
  Rng rng(93);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  for (int i = 0; i < 600; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(2));
    inputs.emplace_back(static_cast<int>(rng.Uniform(3)),
                        T(ts, static_cast<int64_t>(rng.Uniform(8)), i));
  }
  const int64_t w = 30;

  Plan plan;
  auto* mjoin = plan.Make<MultiWindowJoinOp>(ThreeWay(w, true));
  auto* sink = plan.Make<CollectorSink>();
  mjoin->SetOutput(sink);
  for (auto& [side, t] : inputs) mjoin->Push(Element(t), side);

  // Brute force: for each arrival, scan both other streams' windows.
  std::multiset<std::string> expect;
  std::vector<std::vector<TupleRef>> seen(3);
  for (auto& [side, t] : inputs) {
    int64_t key = t->at(1).AsInt();
    std::vector<std::vector<const Tuple*>> matches(3);
    bool any_empty = false;
    for (int s = 0; s < 3; ++s) {
      if (s == side) continue;
      for (const TupleRef& o : seen[static_cast<size_t>(s)]) {
        if (o->ts() > t->ts() - w && o->at(1).AsInt() == key) {
          matches[static_cast<size_t>(s)].push_back(o.get());
        }
      }
      if (matches[static_cast<size_t>(s)].empty()) any_empty = true;
    }
    if (!any_empty) {
      // Cross product in stream order.
      std::vector<const Tuple*> parts(3);
      parts[static_cast<size_t>(side)] = t.get();
      int s1 = -1, s2 = -1;
      for (int s = 0; s < 3; ++s) {
        if (s == side) continue;
        (s1 < 0 ? s1 : s2) = s;
      }
      for (const Tuple* a : matches[static_cast<size_t>(s1)]) {
        for (const Tuple* b : matches[static_cast<size_t>(s2)]) {
          parts[static_cast<size_t>(s1)] = a;
          parts[static_cast<size_t>(s2)] = b;
          std::vector<Value> row;
          for (const Tuple* p : parts) {
            row.insert(row.end(), p->values().begin(), p->values().end());
          }
          expect.insert(Tuple(t->ts(), row).ToString());
        }
      }
    }
    seen[static_cast<size_t>(side)].push_back(t);
  }

  std::multiset<std::string> got;
  for (const TupleRef& t : sink->tuples()) got.insert(t->ToString());
  EXPECT_EQ(got, expect);
}

TEST(MJoinTest, AdaptiveOrderReducesPartialWork) {
  // Stream 2's matches are rare; probing it first prunes early.
  Rng rng(94);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  for (int i = 0; i < 4000; ++i) {
    ++ts;
    int side = static_cast<int>(rng.Uniform(3));
    // Stream 2 uses a wider key domain -> fewer matches per key.
    int64_t key = side == 2 ? static_cast<int64_t>(rng.Uniform(40))
                            : static_cast<int64_t>(rng.Uniform(4));
    inputs.emplace_back(side, T(ts, key, i));
  }
  auto partials = [&](bool adaptive) {
    Plan plan;
    auto* mjoin = plan.Make<MultiWindowJoinOp>(ThreeWay(500, adaptive));
    auto* sink = plan.Make<CountingSink>();
    mjoin->SetOutput(sink);
    for (auto& [side, t] : inputs) mjoin->Push(Element(t), side);
    return std::make_pair(mjoin->partial_results(), mjoin->results());
  };
  auto [adaptive_partials, r1] = partials(true);
  auto [fixed_partials, r2] = partials(false);
  EXPECT_EQ(r1, r2);  // Same join results.
  EXPECT_LT(adaptive_partials, fixed_partials);
}

TEST(MJoinTest, PunctuationPurgesAllWindows) {
  Plan plan;
  auto* mjoin = plan.Make<MultiWindowJoinOp>(ThreeWay(10, true));
  auto* sink = plan.Make<CollectorSink>();
  mjoin->SetOutput(sink);
  mjoin->Push(Element(T(1, 1)), 0);
  mjoin->Push(Element(T(2, 1)), 1);
  size_t before = mjoin->StateBytes();
  mjoin->Push(Element(Punctuation::Watermark(1000)), 0);
  EXPECT_LT(mjoin->StateBytes(), before);
  // A later matching triple must not see the purged tuples.
  mjoin->Push(Element(T(1001, 1)), 2);
  EXPECT_EQ(sink->count(), 0u);
}

TEST(MJoinTest, TwoWayDegeneratesToBinaryJoin) {
  MultiWindowJoinOp::Options opt;
  opt.streams = {{1, 100}, {1, 100}};
  Plan plan;
  auto* mjoin = plan.Make<MultiWindowJoinOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  mjoin->SetOutput(sink);
  mjoin->Push(Element(T(1, 7)), 0);
  mjoin->Push(Element(T(2, 7)), 1);
  mjoin->Push(Element(T(3, 8)), 1);
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->arity(), 6u);
}

// --- PunctuationGroupByOp ---

TEST(PunctGroupByTest, CloseKeyEmitsGroup) {
  Plan plan;
  auto* gb = plan.Make<PunctuationGroupByOp>(
      1, std::vector<AggSpec>{{AggKind::kCount, -1, 0.5},
                              {AggKind::kMax, 2, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  gb->Push(Element(T(1, 7, 10)));
  gb->Push(Element(T(2, 7, 30)));
  gb->Push(Element(T(3, 8, 5)));
  EXPECT_EQ(sink->count(), 0u);
  gb->Push(Element(Punctuation::CloseKey(4, Value(int64_t{7}))));
  ASSERT_EQ(sink->count(), 1u);
  const TupleRef& row = sink->tuples()[0];
  EXPECT_EQ(row->ts(), 4);
  EXPECT_EQ(row->at(1).AsInt(), 7);   // Key.
  EXPECT_EQ(row->at(2).AsInt(), 2);   // count.
  EXPECT_EQ(row->at(3).AsInt(), 30);  // max.
  EXPECT_EQ(gb->open_groups(), 1u);
}

TEST(PunctGroupByTest, WatermarkClosesQuietGroups) {
  Plan plan;
  auto* gb = plan.Make<PunctuationGroupByOp>(
      1, std::vector<AggSpec>{{AggKind::kCount, -1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  gb->Push(Element(T(1, 7, 0)));
  gb->Push(Element(T(9, 8, 0)));
  gb->Push(Element(Punctuation::Watermark(5)));
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 7);
}

TEST(PunctGroupByTest, FlushClosesRemaining) {
  Plan plan;
  auto* gb = plan.Make<PunctuationGroupByOp>(
      1, std::vector<AggSpec>{{AggKind::kCount, -1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  gb->Push(Element(T(1, 1, 0)));
  gb->Push(Element(T(2, 2, 0)));
  gb->Flush();
  EXPECT_EQ(sink->count(), 2u);
  EXPECT_EQ(gb->open_groups(), 0u);
}

TEST(PunctGroupByTest, AuctionWinningBids) {
  // The slide-28 workload end-to-end: max bid per auction, emitted the
  // moment the auction's close punctuation arrives.
  gen::AuctionGenerator auctions(gen::AuctionOptions{});
  Plan plan;
  auto* gb = plan.Make<PunctuationGroupByOp>(
      gen::AuctionCols::kAuctionId,
      std::vector<AggSpec>{{AggKind::kMax, gen::AuctionCols::kAmount, 0.5},
                           {AggKind::kCount, -1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);

  std::map<int64_t, double> truth_max;
  std::map<int64_t, int64_t> truth_bids;
  int punct_count = 0;
  for (int i = 0; i < 20000; ++i) {
    Element e = auctions.Next();
    if (e.is_tuple()) {
      int64_t id = e.tuple()->at(gen::AuctionCols::kAuctionId).AsInt();
      truth_max[id] = std::max(truth_max[id],
                               e.tuple()->at(gen::AuctionCols::kAmount).AsDouble());
      truth_bids[id]++;
    } else {
      ++punct_count;
    }
    gb->Push(e);
  }
  EXPECT_GT(punct_count, 100);
  // Every emitted row matches ground truth.
  EXPECT_EQ(sink->count(), static_cast<size_t>(punct_count));
  for (const TupleRef& row : sink->tuples()) {
    int64_t id = row->at(1).AsInt();
    EXPECT_DOUBLE_EQ(row->at(2).AsDouble(), truth_max[id]);
    EXPECT_EQ(row->at(3).AsInt(), truth_bids[id]);
  }
  // Memory tracks open auctions only.
  EXPECT_LE(gb->open_groups(), 8u);
}

}  // namespace
}  // namespace sqp
