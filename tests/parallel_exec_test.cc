#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/sym_hash_join.h"
#include "exec/window_agg.h"
#include "sched/parallel_executor.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"

namespace sqp {
namespace {

// Input schema for the join chain: [pair_id, side, v].
Element PairTuple(int64_t i, int64_t v) {
  return Element(MakeTuple(i, {Value(i / 2), Value(i % 2), Value(v)}));
}

/// Unary wrapper routing elements into a symmetric hash join's ports by
/// the `side` column (the executors run linear chains).
class SelfJoinStage : public Operator {
 public:
  SelfJoinStage()
      : Operator("self-join"),
        join_({0}, {0}),
        bridge_([this](const Element& e) { Emit(e); }) {
    join_.SetOutput(&bridge_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      Emit(e);
      return;
    }
    join_.Push(e, static_cast<int>(e.tuple()->at(1).AsInt()));
  }

  void Flush() override {
    join_.Flush();
    join_.Flush();
    Operator::Flush();
  }

 private:
  SymmetricHashJoinOp join_;
  CallbackSink bridge_;
};

/// A pass-through operator with a fixed per-element delay, to force
/// queue build-up. Bounded per-element work keeps Stop() responsive.
class SlowPass : public Operator {
 public:
  explicit SlowPass(int delay_us) : Operator("slow-pass"), delay_us_(delay_us) {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    Emit(e);
  }

 private:
  int delay_us_;
};

std::vector<Operator*> MakeJoinChain(Plan* plan) {
  auto* sel = plan->Make<SelectOp>(Gt(Col(2), Lit(int64_t{-1})), "sel");
  auto* join = plan->Make<SelfJoinStage>();
  auto* agg = plan->Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(64),
      std::vector<AggSpec>{{AggKind::kCount, -1, 0.5},
                           {AggKind::kSum, 2, 0.5}},
      "agg");
  return {sel, join, agg};
}

std::vector<std::string> Sorted(const std::vector<TupleRef>& rows) {
  std::vector<std::string> s;
  s.reserve(rows.size());
  for (const TupleRef& t : rows) s.push_back(t->ToString());
  std::sort(s.begin(), s.end());
  return s;
}

TEST(ParallelExecutorTest, MatchesSerialExecutorOnJoinChain) {
  const int kN = 2000;
  // Serial reference: same chain under the QueuedExecutor.
  Plan splan;
  std::vector<Operator*> schain = MakeJoinChain(&splan);
  auto* ssink = splan.Make<CollectorSink>();
  std::vector<QueuedExecutor::Stage> sstages;
  for (Operator* op : schain) sstages.push_back({op, 1.0, 1.0, 0});
  QueuedExecutor serial(sstages, ssink, MakeFifoPolicy());
  for (int64_t i = 0; i < kN; ++i) serial.Arrive(PairTuple(i, i % 97));
  serial.Tick(1e15);
  serial.Drain();

  Plan pplan;
  std::vector<Operator*> pchain = MakeJoinChain(&pplan);
  auto* psink = pplan.Make<CollectorSink>();
  std::vector<ParallelExecutor::Stage> pstages;
  for (Operator* op : pchain) {
    pstages.push_back({op, 64, Backpressure::kBlock, 0});
  }
  ParallelExecutor par(pstages, psink);
  par.Start();
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(par.Arrive(PairTuple(i, i % 97)));
  }
  par.Drain();

  ASSERT_EQ(ssink->count(), psink->count());
  // Order-insensitive comparison at the exchange point: the threaded
  // pipeline preserves per-stage FIFO order, but we only require
  // multiset equality.
  EXPECT_EQ(Sorted(ssink->tuples()), Sorted(psink->tuples()));
  EXPECT_EQ(par.dropped(), 0u);
}

TEST(ParallelExecutorTest, StageStatsAccount) {
  Plan plan;
  auto* a = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "a");
  auto* b = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{49})), "b");
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {a, 0, Backpressure::kBlock, 0}, {b, 0, Backpressure::kBlock, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  for (int64_t i = 0; i < 100; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(i)})));
  }
  exec.Drain();
  auto s0 = exec.stage_stats(0);
  auto s1 = exec.stage_stats(1);
  EXPECT_EQ(s0.enqueued, 100u);
  EXPECT_EQ(s0.processed, 100u);
  EXPECT_EQ(s0.dropped, 0u);
  EXPECT_EQ(s0.Backlog(), 0u);
  EXPECT_EQ(s1.enqueued, 100u);  // Stage a passes everything.
  EXPECT_EQ(s1.processed, 100u);
  EXPECT_GE(s0.max_queue_depth, 1u);
  EXPECT_EQ(sink->tuples(), 50u);  // 50..99 pass stage b.
}

TEST(ParallelExecutorTest, BackpressureBlocksInsteadOfDropping) {
  Plan plan;
  auto* slow = plan.Make<SlowPass>(100);
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {slow, 4, Backpressure::kBlock, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  // Pushing far more than the bound at full speed must block (not drop)
  // until the slow worker frees slots.
  for (int64_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(exec.Arrive(Element(MakeTuple(i, {Value(i)}))));
  }
  exec.Drain();
  EXPECT_EQ(exec.dropped(), 0u);
  EXPECT_EQ(sink->tuples(), 300u);
  EXPECT_LE(exec.stage_stats(0).max_queue_depth, 4u);
}

TEST(ParallelExecutorTest, DropNewestShedsAndCounts) {
  Plan plan;
  auto* slow = plan.Make<SlowPass>(200);
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {slow, 4, Backpressure::kDropNewest, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  uint64_t accepted = 0;
  for (int64_t i = 0; i < 200; ++i) {
    if (exec.Arrive(Element(MakeTuple(i, {Value(i)})))) ++accepted;
  }
  exec.Drain();
  auto s = exec.stage_stats(0);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.dropped + accepted, 200u);
  EXPECT_EQ(sink->tuples(), accepted);
}

TEST(ParallelExecutorTest, PunctuationsBypassFullQueues) {
  Plan plan;
  auto* slow = plan.Make<SlowPass>(500);
  auto* sink = plan.Make<CollectorSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {slow, 2, Backpressure::kDropNewest, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  for (int64_t i = 0; i < 50; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(i)})));
  }
  // The queue is saturated; a watermark must still get through.
  EXPECT_TRUE(exec.Arrive(Element(Punctuation::Watermark(100))));
  exec.Drain();
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 100);
}

TEST(ParallelExecutorTest, StopWhileQueuesFullJoinsCleanly) {
  Plan plan;
  auto* slow = plan.Make<SlowPass>(1000);
  auto* pass = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "pass");
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {slow, 4, Backpressure::kBlock, 0}, {pass, 4, Backpressure::kBlock, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  // Producer blocks on the full entry queue; Stop() must unblock it and
  // join without processing the backlog.
  std::atomic<uint64_t> accepted{0};
  std::thread producer([&] {
    for (int64_t i = 0; i < 1000; ++i) {
      if (exec.Arrive(Element(MakeTuple(i, {Value(i)})))) ++accepted;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  exec.Stop();
  producer.join();
  EXPECT_FALSE(exec.running());
  auto s = exec.stage_stats(0);
  EXPECT_LE(s.processed, s.enqueued);
  EXPECT_LT(accepted.load(), 1000u);  // The tail was refused, not queued.
}

TEST(ParallelExecutorTest, DrainWhileProducersRacingIsLossAccounted) {
  Plan plan;
  auto* pass = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "pass");
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages = {
      {pass, 128, Backpressure::kBlock, 0}};
  ParallelExecutor exec(stages, sink);
  exec.Start();
  std::atomic<uint64_t> accepted{0};
  std::thread producer([&] {
    for (int64_t i = 0; i < 20000; ++i) {
      if (exec.Arrive(Element(MakeTuple(i, {Value(i)})))) ++accepted;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  exec.Drain();  // Races the producer: later Arrives return false.
  producer.join();
  EXPECT_EQ(sink->tuples(), accepted.load());
}

// Stress shaped for TSan: several stages, bounded queues, two producer
// threads hammering the MPSC entry queue, punctuations mixed in.
TEST(ParallelExecutorStress, MultiProducerBoundedChain) {
  Plan plan;
  auto* s0 = plan.Make<SelectOp>(Gt(Col(2), Lit(int64_t{-1})), "s0");
  auto* join = plan.Make<SelfJoinStage>();
  auto* s1 = plan.Make<SelectOp>(Gt(Col(2), Lit(int64_t{-1})), "s1");
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{Col(0), Col(2)},
                                    "proj");
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : std::vector<Operator*>{s0, join, s1, proj}) {
    stages.push_back({op, 512, Backpressure::kBlock, 0});
  }
  ParallelExecutor exec(stages, sink);
  exec.Start();
  const int kPerProducer = 20000;
  auto produce = [&](int64_t base) {
    for (int64_t i = 0; i < kPerProducer; ++i) {
      exec.Arrive(PairTuple(base + i, i % 31));
      if (i % 1000 == 999) {
        exec.Arrive(Element(Punctuation::Watermark(base + i)));
      }
    }
  };
  std::thread p1(produce, 0);
  std::thread p2(produce, int64_t{1} << 32);  // Disjoint pair_ids.
  p1.join();
  p2.join();
  exec.Drain();
  EXPECT_EQ(exec.dropped(), 0u);
  // Each producer's range pairs up internally: every two tuples with the
  // same pair_id join exactly once.
  EXPECT_EQ(sink->tuples(), static_cast<uint64_t>(kPerProducer));
  uint64_t total_in = exec.stage_stats(0).enqueued;
  EXPECT_EQ(total_in,
            2u * kPerProducer + 2u * (kPerProducer / 1000));
}

// --- QueuedExecutor / ParallelExecutor stats parity ---

TEST(StageStatsParityTest, SerialExecutorReportsPerStageDrops) {
  Plan plan;
  auto* a = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "a");
  auto* b = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "b");
  auto* sink = plan.Make<CountingSink>();
  // Stage 1's queue bound is 1: the relay hand-off must shed and charge
  // the drop to stage 1, not lose it silently.
  std::vector<QueuedExecutor::Stage> stages = {{a, 1.0, 1.0, 0},
                                               {b, 1.0, 1.0, 1}};
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  for (int64_t i = 0; i < 6; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(i)})));
  }
  // FIFO delivers all of stage a first (older sequence numbers); stage
  // b's bound of 1 holds only one hand-off, so 5 of the 6 drop.
  for (int i = 0; i < 6; ++i) exec.Tick(1.0);
  auto sb = exec.stage_stats(1);
  EXPECT_EQ(sb.dropped, 5u);
  EXPECT_EQ(exec.dropped(1), sb.dropped);
  EXPECT_EQ(exec.dropped(), exec.dropped(0) + exec.dropped(1));
  exec.Drain();
  EXPECT_EQ(sink->tuples() + sb.dropped, 6u);
}

TEST(StageStatsParityTest, SerialExecutorCountersMatchFlow) {
  Plan plan;
  auto* a = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{4})), "a");
  auto* b = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{-1})), "b");
  auto* sink = plan.Make<CountingSink>();
  std::vector<QueuedExecutor::Stage> stages = {{a, 1.0, 1.0, 0},
                                               {b, 1.0, 1.0, 0}};
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  for (int64_t i = 0; i < 10; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(i)})));
  }
  exec.Tick(1e6);
  auto s0 = exec.stage_stats(0);
  auto s1 = exec.stage_stats(1);
  EXPECT_EQ(s0.enqueued, 10u);
  EXPECT_EQ(s0.processed, 10u);
  EXPECT_EQ(s0.max_queue_depth, 10u);
  EXPECT_EQ(s1.enqueued, 5u);  // 5..9 pass the first filter.
  EXPECT_EQ(s1.processed, 5u);
  EXPECT_DOUBLE_EQ(s0.busy_time, 10.0);  // Cost units, not wall time.
  EXPECT_DOUBLE_EQ(s1.busy_time, 5.0);
  EXPECT_EQ(sink->tuples(), 5u);
}

}  // namespace
}  // namespace sqp
