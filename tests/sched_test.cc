#include <gtest/gtest.h>

#include "exec/plan.h"
#include "exec/select.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "sched/sim.h"

namespace sqp {
namespace {

// The slide-43 setting: op1 (sel 0.2, 1 time unit), op2 (sel 0, 1 time
// unit); one tuple arrives at each of t = 0..4 (bursty: rate 1 during the
// burst, long-run average 0.5).
ChainSimConfig Slide43Config() {
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.2}, {1.0, 0.0}};
  cfg.ticks = 5;
  return cfg;
}

TEST(ChainSimTest, Slide43FifoColumnExact) {
  auto cfg = Slide43Config();
  ScheduledArrival arrivals({1, 1, 1, 1, 1});
  auto policy = MakeFifoPolicy();
  auto result = RunChainSim(cfg, arrivals, *policy);
  // Slide 43 FIFO column: 1, 1.2, 2.0, 2.2, 3.0.
  ASSERT_EQ(result.memory_at_tick.size(), 5u);
  EXPECT_NEAR(result.memory_at_tick[0], 1.0, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[1], 1.2, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[2], 2.0, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[3], 2.2, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[4], 3.0, 1e-9);
}

TEST(ChainSimTest, Slide43GreedyColumnExact) {
  auto cfg = Slide43Config();
  ScheduledArrival arrivals({1, 1, 1, 1, 1});
  auto policy = MakeGreedyPolicy();
  auto result = RunChainSim(cfg, arrivals, *policy);
  // Slide 43 Greedy column: 1, 1.2, 1.4, 1.6, 1.8.
  ASSERT_EQ(result.memory_at_tick.size(), 5u);
  EXPECT_NEAR(result.memory_at_tick[0], 1.0, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[1], 1.2, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[2], 1.4, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[3], 1.6, 1e-9);
  EXPECT_NEAR(result.memory_at_tick[4], 1.8, 1e-9);
}

TEST(ChainSimTest, ChainMatchesGreedyOnTwoOpChain) {
  // For this 2-operator chain the envelope makes Chain == Greedy.
  auto cfg = Slide43Config();
  ScheduledArrival a1({1, 1, 1, 1, 1}), a2({1, 1, 1, 1, 1});
  auto chain = MakeChainPolicy({1.0, 1.0}, {0.2, 0.0});
  auto greedy = MakeGreedyPolicy();
  auto r1 = RunChainSim(cfg, a1, *chain);
  auto r2 = RunChainSim(cfg, a2, *greedy);
  EXPECT_EQ(r1.memory_at_tick, r2.memory_at_tick);
}

TEST(ChainSimTest, ChainBeatsFifoOnBurstyArrivals) {
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.5}, {1.0, 0.3}, {1.0, 0.0}};
  cfg.ticks = 2000;
  BurstyArrival a1(1.0, 20, 40, 5), a2(1.0, 20, 40, 5);
  auto chain = MakeChainPolicy({1.0, 1.0, 1.0}, {0.5, 0.3, 0.0});
  auto fifo = MakeFifoPolicy();
  auto rc = RunChainSim(cfg, a1, *chain);
  auto rf = RunChainSim(cfg, a2, *fifo);
  EXPECT_LT(rc.avg_memory, rf.avg_memory);
  EXPECT_LE(rc.peak_memory, rf.peak_memory + 1e-9);
}

TEST(ChainSimTest, AllPoliciesCompleteSameWorkEventually) {
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.5}, {1.0, 0.0}};
  cfg.ticks = 1000;
  // Light load: every policy must keep up.
  for (auto make : {&MakeFifoPolicy, &MakeGreedyPolicy, &MakeRoundRobinPolicy}) {
    UniformArrival arrivals(0.3);
    auto policy = make();
    auto r = RunChainSim(cfg, arrivals, *policy);
    EXPECT_NEAR(static_cast<double>(r.completed), 0.3 * 1000, 5.0)
        << policy->name();
  }
}

TEST(PolicyTest, FifoPicksOldestHead) {
  auto fifo = MakeFifoPolicy();
  std::vector<OpView> views(2);
  views[0].queue_len = 1;
  views[0].head_seq = 10;
  views[1].queue_len = 1;
  views[1].head_seq = 3;
  EXPECT_EQ(fifo->Pick(views), 1);
}

TEST(PolicyTest, GreedyPicksBestReleaseRate) {
  auto greedy = MakeGreedyPolicy();
  std::vector<OpView> views(2);
  views[0] = {1, 0, 1.0, 0.2, 1.0};  // Releases 0.8/unit.
  views[1] = {1, 1, 1.0, 0.0, 4.0};  // Releases 1.0 but costs 4 -> 0.25.
  EXPECT_EQ(greedy->Pick(views), 0);
}

TEST(PolicyTest, EmptyQueuesYieldNoPick) {
  auto fifo = MakeFifoPolicy();
  auto rr = MakeRoundRobinPolicy();
  std::vector<OpView> views(3);
  EXPECT_EQ(fifo->Pick(views), -1);
  EXPECT_EQ(rr->Pick(views), -1);
}

TEST(PolicyTest, RoundRobinCycles) {
  auto rr = MakeRoundRobinPolicy();
  std::vector<OpView> views(3);
  for (auto& v : views) v.queue_len = 1;
  EXPECT_EQ(rr->Pick(views), 0);
  EXPECT_EQ(rr->Pick(views), 1);
  EXPECT_EQ(rr->Pick(views), 2);
  EXPECT_EQ(rr->Pick(views), 0);
}

TEST(PolicyTest, ChainPriorityFromEnvelope) {
  // Costs 1,1,1; sels 0.9, 0.1, 0.0. Envelope: ops 0 and 1 share the
  // steep first segment (slope -0.455); op 2 sits on a shallow one
  // (-0.09). Chain must prefer the first segment over op 2 even when
  // op 2 holds the older tuple — exactly where FIFO differs.
  auto chain = MakeChainPolicy({1, 1, 1}, {0.9, 0.1, 0.0});
  std::vector<OpView> views(3);
  views[1].queue_len = 1;
  views[1].head_seq = 5;
  views[2].queue_len = 1;
  views[2].head_seq = 0;  // Older, but on the shallow segment.
  EXPECT_EQ(chain->Pick(views), 1);
  auto fifo = MakeFifoPolicy();
  EXPECT_EQ(fifo->Pick(views), 2);
  // Within one segment, Chain falls back to FIFO order.
  views[0].queue_len = 1;
  views[0].head_seq = 7;
  EXPECT_EQ(chain->Pick(views), 1);  // Same segment as op0, older head.
}

// --- QueuedExecutor: policies over real operators ---

TEST(QueuedExecutorTest, ProcessesChainWithCosts) {
  Plan plan;
  auto* s1 = plan.Make<SelectOp>(Gt(Col(1), Lit(int64_t{10})), "s1");
  auto* s2 = plan.Make<SelectOp>(Lt(Col(1), Lit(int64_t{100})), "s2");
  auto* sink = plan.Make<CollectorSink>();

  std::vector<QueuedExecutor::Stage> stages = {
      {s1, 1.0, 0.5, 0},
      {s2, 1.0, 0.5, 0},
  };
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  for (int64_t v : {5, 50, 500, 60}) {
    exec.Arrive(Element(MakeTuple(v, {Value(v), Value(v)})));
  }
  EXPECT_EQ(exec.QueuedElements(), 4u);
  for (int t = 0; t < 20; ++t) exec.Tick();
  exec.Drain();
  EXPECT_EQ(sink->count(), 2u);  // 50 and 60 pass both filters.
}

TEST(QueuedExecutorTest, BoundedQueueDrops) {
  Plan plan;
  auto* s1 = plan.Make<SelectOp>(Lit(int64_t{1}), "s1");
  auto* sink = plan.Make<CountingSink>();
  std::vector<QueuedExecutor::Stage> stages = {{s1, 1.0, 1.0, 2}};
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  for (int i = 0; i < 5; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(int64_t{i})})));
  }
  EXPECT_EQ(exec.dropped(), 3u);
  exec.Drain();
  EXPECT_EQ(sink->tuples(), 2u);
}

TEST(QueuedExecutorTest, CapacityLimitsWorkPerTick) {
  Plan plan;
  auto* s1 = plan.Make<SelectOp>(Lit(int64_t{1}), "s1");
  auto* sink = plan.Make<CountingSink>();
  std::vector<QueuedExecutor::Stage> stages = {{s1, 2.0, 1.0, 0}};  // Cost 2.
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  for (int i = 0; i < 4; ++i) {
    exec.Arrive(Element(MakeTuple(i, {Value(int64_t{i})})));
  }
  exec.Tick(1.0);  // Half a tuple of progress.
  EXPECT_EQ(sink->tuples(), 0u);
  exec.Tick(1.0);  // Completes the first tuple.
  EXPECT_EQ(sink->tuples(), 1u);
}

}  // namespace
}  // namespace sqp
