#include <gtest/gtest.h>

#include "exec/plan.h"
#include "exec/streamify.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

TEST(StreamifyTest, IStreamEmitsOnInsert) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kIStream, 10);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));
  s->Push(Element(T(2, 2)));
  EXPECT_EQ(sink->count(), 2u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 1);
}

TEST(StreamifyTest, DStreamEmitsOnExpiry) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kDStream, 10);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));
  s->Push(Element(T(5, 2)));
  EXPECT_EQ(sink->count(), 0u);  // Nothing expired yet.
  s->Push(Element(T(12, 3)));    // ts=1 leaves the window.
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 1);
}

TEST(StreamifyTest, DStreamFlushDrainsWindow) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kDStream, 100);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));
  s->Push(Element(T(2, 2)));
  s->Flush();
  EXPECT_EQ(sink->count(), 2u);
}

TEST(StreamifyTest, RStreamSnapshotsEveryPeriod) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kRStream, 10, 5);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));   // First tuple sets the snapshot phase.
  s->Push(Element(T(2, 2)));
  s->Push(Element(T(6, 3)));   // Crosses snapshot at ts=6.
  // Snapshot at 6 contains tuples 1, 2, 6 (all within window 10).
  EXPECT_EQ(sink->count(), 4u);  // 1 at ts=1 (initial) + 3 at ts=6.
}

TEST(StreamifyTest, RStreamRestampsOutput) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kRStream, 100, 10);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));
  s->Push(Element(T(25, 2)));
  for (const TupleRef& t : sink->tuples()) {
    EXPECT_EQ(t->ts() % 10, 1 % 10);  // Snapshots on the period grid.
  }
}

TEST(StreamifyTest, DStreamPunctuationDrivesExpiry) {
  Plan plan;
  auto* s = plan.Make<StreamifyOp>(StreamifyKind::kDStream, 10);
  auto* sink = plan.Make<CollectorSink>();
  s->SetOutput(sink);
  s->Push(Element(T(1, 1)));
  s->Push(Element(Punctuation::Watermark(50)));
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->punctuations().size(), 1u);
}

TEST(StreamifyTest, KindNames) {
  EXPECT_STREQ(StreamifyKindName(StreamifyKind::kIStream), "istream");
  EXPECT_STREQ(StreamifyKindName(StreamifyKind::kDStream), "dstream");
  EXPECT_STREQ(StreamifyKindName(StreamifyKind::kRStream), "rstream");
}

}  // namespace
}  // namespace sqp
