#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"

namespace sqp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, GeometricMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.2);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(8);
  ZipfGenerator zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c / 20000.0, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewFavorsSmallIds) {
  Rng rng(9);
  ZipfGenerator zipf(1000, 1.2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
  // Item 0 should dominate item 100 heavily under s=1.2.
  EXPECT_GT(counts[0], 20 * (counts.count(100) ? counts[100] : 1));
}

TEST(ZipfTest, TheoreticalHeadProbability) {
  Rng rng(10);
  const uint64_t n = 100;
  const double s = 1.0;
  ZipfGenerator zipf(n, s);
  double hn = 0;
  for (uint64_t i = 1; i <= n; ++i) hn += 1.0 / static_cast<double>(i);
  int head = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) head += (zipf.Next(rng) == 0) ? 1 : 0;
  EXPECT_NEAR(head / static_cast<double>(trials), 1.0 / hn, 0.01);
}

}  // namespace
}  // namespace sqp
