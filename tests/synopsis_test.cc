#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "synopsis/ams.h"
#include "synopsis/count_min.h"
#include "synopsis/distinct.h"
#include "synopsis/exp_histogram.h"
#include "synopsis/gk_quantile.h"
#include "synopsis/histogram.h"
#include "synopsis/misra_gries.h"
#include "synopsis/reservoir.h"

namespace sqp {
namespace {

// --- Reservoir ---

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  ReservoirSample r(100, 1);
  for (int i = 0; i < 50; ++i) r.Add(Value(static_cast<int64_t>(i)));
  EXPECT_EQ(r.sample().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  ReservoirSample r(10, 2);
  for (int i = 0; i < 10000; ++i) r.Add(Value(static_cast<int64_t>(i)));
  EXPECT_EQ(r.sample().size(), 10u);
  EXPECT_EQ(r.seen(), 10000u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 1000 items should land in a 100-slot reservoir ~10% of runs.
  int first_item_in = 0;
  const int runs = 400;
  for (int run = 0; run < runs; ++run) {
    ReservoirSample r(100, static_cast<uint64_t>(run));
    for (int i = 0; i < 1000; ++i) r.Add(Value(static_cast<int64_t>(i)));
    for (const Value& v : r.sample()) {
      if (v.AsInt() == 0) ++first_item_in;
    }
  }
  EXPECT_NEAR(first_item_in / static_cast<double>(runs), 0.1, 0.04);
}

TEST(ReservoirTest, MeanAndQuantileEstimates) {
  ReservoirSample r(2000, 3);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) r.Add(Value(rng.NextDouble() * 100.0));
  EXPECT_NEAR(r.EstimateMean(), 50.0, 3.0);
  EXPECT_NEAR(r.EstimateQuantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(r.EstimateQuantile(0.9), 90.0, 5.0);
}

TEST(ReservoirTest, ScaleUp) {
  ReservoirSample r(100, 4);
  for (int i = 0; i < 10000; ++i) r.Add(Value(static_cast<int64_t>(i)));
  // If 25 of 100 sampled values match, estimate 2500 matches overall.
  EXPECT_DOUBLE_EQ(r.ScaleUp(25), 2500.0);
}

// --- Histograms ---

TEST(EquiWidthTest, ExactOnUniformBuckets) {
  EquiWidthHistogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i % 100));
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_NEAR(h.EstimateRangeCount(0.0, 50.0), 500.0, 1.0);
  EXPECT_NEAR(h.EstimateSelectivity(20.0, 30.0), 0.1, 0.01);
}

TEST(EquiWidthTest, OutOfDomainClamps) {
  EquiWidthHistogram h(0.0, 10.0, 5);
  h.Add(-5.0);
  h.Add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_NEAR(h.EstimateRangeCount(0.0, 10.0), 2.0, 1e-9);
}

TEST(EquiDepthTest, SkewedDataBetterThanEquiWidth) {
  // Heavily skewed data: 90% of mass in [0,1), rest in [1,100).
  Rng rng(6);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(rng.Bernoulli(0.9) ? rng.NextDouble()
                                      : 1.0 + rng.NextDouble() * 99.0);
  }
  EquiWidthHistogram ew(0.0, 100.0, 10);
  for (double v : data) ew.Add(v);
  auto ed = EquiDepthHistogram::Build(data, 10, data.size());
  ASSERT_TRUE(ed.ok());

  double truth = 0;
  for (double v : data) truth += (v < 0.5) ? 1 : 0;
  double ew_err = std::fabs(ew.EstimateRangeCount(0.0, 0.5) - truth);
  double ed_err = std::fabs(ed->EstimateRangeCount(0.0, 0.5) - truth);
  EXPECT_LT(ed_err, ew_err);
}

// --- Count-Min ---

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cm(256, 4, 1);
  std::unordered_map<int64_t, uint64_t> truth;
  Rng rng(7);
  ZipfGenerator zipf(1000, 1.1);
  for (int i = 0; i < 50000; ++i) {
    int64_t v = static_cast<int64_t>(zipf.Next(rng));
    cm.Add(Value(v));
    truth[v]++;
  }
  for (const auto& [v, c] : truth) {
    EXPECT_GE(cm.Estimate(Value(v)), c);
  }
}

TEST(CountMinTest, ErrorWithinEpsBound) {
  double eps = 0.01, delta = 0.01;
  CountMinSketch cm = CountMinSketch::FromError(eps, delta, 2);
  std::unordered_map<int64_t, uint64_t> truth;
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Uniform(5000));
    cm.Add(Value(v));
    truth[v]++;
  }
  uint64_t bound = static_cast<uint64_t>(eps * static_cast<double>(cm.total()));
  int violations = 0;
  for (const auto& [v, c] : truth) {
    if (cm.Estimate(Value(v)) > c + bound) ++violations;
  }
  // Probability of violation <= delta per item.
  EXPECT_LT(violations, static_cast<int>(truth.size() / 20));
}

// --- AMS ---

TEST(AmsTest, F2EstimateClose) {
  AmsSketch ams(9, 32, 3);
  std::unordered_map<int64_t, int64_t> truth;
  Rng rng(9);
  ZipfGenerator zipf(200, 1.0);
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(zipf.Next(rng));
    ams.Add(Value(v));
    truth[v]++;
  }
  double f2 = 0;
  for (const auto& [v, c] : truth) f2 += static_cast<double>(c) * c;
  EXPECT_NEAR(ams.EstimateF2() / f2, 1.0, 0.35);
}

TEST(AmsTest, JoinSizeEstimate) {
  AmsSketch a(9, 32, 4), b(9, 32, 4);  // Same seed: shared hash family.
  std::unordered_map<int64_t, int64_t> fa, fb;
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Uniform(100));
    a.Add(Value(v));
    fa[v]++;
    int64_t w = static_cast<int64_t>(rng.Uniform(100));
    b.Add(Value(w));
    fb[w]++;
  }
  double truth = 0;
  for (const auto& [v, c] : fa) {
    truth += static_cast<double>(c) * static_cast<double>(fb[v]);
  }
  EXPECT_NEAR(AmsSketch::EstimateJoinSize(a, b) / truth, 1.0, 0.35);
}

// --- Distinct counters ---

TEST(FlajoletMartinTest, OrderOfMagnitude) {
  FlajoletMartin fm(64, 11);
  for (int i = 0; i < 20000; ++i) fm.Add(Value(static_cast<int64_t>(i)));
  double est = fm.Estimate();
  EXPECT_GT(est, 20000 * 0.5);
  EXPECT_LT(est, 20000 * 2.0);
}

TEST(HyperLogLogTest, AccurateAtScale) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100000; ++i) hll.Add(Value(static_cast<int64_t>(i)));
  // Standard error ~1.04/sqrt(4096) ~ 1.6%.
  EXPECT_NEAR(hll.Estimate() / 100000.0, 1.0, 0.05);
}

TEST(HyperLogLogTest, DuplicatesDontInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 50; ++rep) {
    for (int i = 0; i < 1000; ++i) hll.Add(Value(static_cast<int64_t>(i)));
  }
  EXPECT_NEAR(hll.Estimate() / 1000.0, 1.0, 0.1);
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12);
  for (int i = 0; i < 30000; ++i) a.Add(Value(static_cast<int64_t>(i)));
  for (int i = 20000; i < 60000; ++i) b.Add(Value(static_cast<int64_t>(i)));
  a.Merge(b);
  EXPECT_NEAR(a.Estimate() / 60000.0, 1.0, 0.05);
}

TEST(HyperLogLogTest, SmallRangeLinearCounting) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100; ++i) hll.Add(Value(static_cast<int64_t>(i)));
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

// --- GK quantiles ---

class GkEpsTest : public ::testing::TestWithParam<double> {};

TEST_P(GkEpsTest, RankErrorWithinEps) {
  double eps = GetParam();
  GkQuantile gk(eps);
  Rng rng(12);
  std::vector<double> data;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble() * 1000.0;
    gk.Add(v);
    data.push_back(v);
  }
  std::sort(data.begin(), data.end());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    double est = gk.Query(q);
    // True rank of the estimate.
    auto it = std::lower_bound(data.begin(), data.end(), est);
    double rank = static_cast<double>(it - data.begin()) / n;
    EXPECT_NEAR(rank, q, 2.0 * eps) << "q=" << q << " eps=" << eps;
  }
  // Space is sublinear.
  EXPECT_LT(gk.summary_size(), static_cast<size_t>(n / 4));
}

INSTANTIATE_TEST_SUITE_P(Eps, GkEpsTest, ::testing::Values(0.1, 0.01, 0.005));

TEST(GkQuantileTest, SmallerEpsMoreSpace) {
  GkQuantile coarse(0.1), fine(0.001);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    coarse.Add(v);
    fine.Add(v);
  }
  EXPECT_LT(coarse.summary_size(), fine.summary_size());
}

// --- Misra-Gries ---

TEST(MisraGriesTest, GuaranteedHeavyHittersSurvive) {
  MisraGries mg(10);
  // Item 999 appears 3000 times of 12000 total (25% > 1/10).
  Rng rng(14);
  for (int i = 0; i < 12000; ++i) {
    if (i % 4 == 0) {
      mg.Add(Value(int64_t{999}));
    } else {
      mg.Add(Value(static_cast<int64_t>(rng.Uniform(5000))));
    }
  }
  EXPECT_GT(mg.Estimate(Value(int64_t{999})), 0u);
  // Undercount bounded by n/k.
  EXPECT_GE(mg.Estimate(Value(int64_t{999})) + mg.n() / mg.k(), 3000u);
  EXPECT_LE(mg.num_counters(), 10u);
}

TEST(MisraGriesTest, HeavyHittersQuery) {
  MisraGries mg(20);
  for (int i = 0; i < 1000; ++i) mg.Add(Value(int64_t{1}));
  for (int i = 0; i < 100; ++i) mg.Add(Value(static_cast<int64_t>(100 + i)));
  auto hh = mg.HeavyHitters(500);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].first.AsInt(), 1);
}

// --- Exponential histogram ---

TEST(ExpHistogramTest, ExactForSmallCounts) {
  ExpHistogram eh(100, 0.5);
  for (int64_t t = 1; t <= 5; ++t) eh.Add(t);
  // All 5 events within window; oldest bucket size 1 -> subtract 0.
  EXPECT_NEAR(static_cast<double>(eh.Estimate(5)), 5.0, 1.0);
}

TEST(ExpHistogramTest, ExpiryRemovesOldEvents) {
  ExpHistogram eh(10, 0.2);
  for (int64_t t = 1; t <= 5; ++t) eh.Add(t);
  EXPECT_EQ(eh.Estimate(1000), 0u);
}

class ExpHistAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(ExpHistAccuracyTest, RelativeErrorBounded) {
  double eps = GetParam();
  const int64_t window = 1000;
  ExpHistogram eh(window, eps);
  Rng rng(15);
  std::vector<int64_t> events;
  int64_t now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += static_cast<int64_t>(rng.Uniform(3));
    eh.Add(now);
    events.push_back(now);
  }
  uint64_t truth = 0;
  for (int64_t t : events) {
    if (t > now - window) ++truth;
  }
  double est = static_cast<double>(eh.Estimate(now));
  EXPECT_NEAR(est / static_cast<double>(truth), 1.0, 2 * eps + 0.02);
  // Space: logarithmic-ish, far below the window's event count.
  EXPECT_LT(eh.num_buckets(), 40.0 / eps);
}

INSTANTIATE_TEST_SUITE_P(Eps, ExpHistAccuracyTest,
                         ::testing::Values(0.5, 0.1, 0.05));

}  // namespace
}  // namespace sqp
