#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/doc_gen.h"
#include "xml/filter.h"
#include "xml/xml_event.h"
#include "xml/xpath.h"

namespace sqp {
namespace xml {
namespace {

// --- Tokenizer ---

TEST(XmlTokenizerTest, ElementsAttrsText) {
  auto ev = Tokenize("<a x='1' y=\"two\">hi<b/></a>");
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  ASSERT_EQ(ev->size(), 5u);
  EXPECT_EQ((*ev)[0].kind, XmlEvent::Kind::kStart);
  EXPECT_EQ((*ev)[0].name, "a");
  ASSERT_EQ((*ev)[0].attrs.size(), 2u);
  EXPECT_EQ((*ev)[0].attrs[0].second, "1");
  EXPECT_EQ((*ev)[0].attrs[1].second, "two");
  EXPECT_EQ((*ev)[1].kind, XmlEvent::Kind::kText);
  EXPECT_EQ((*ev)[1].text, "hi");
  EXPECT_EQ((*ev)[2].name, "b");  // Self-closing expands to start+end.
  EXPECT_EQ((*ev)[3].kind, XmlEvent::Kind::kEnd);
  EXPECT_EQ((*ev)[4].name, "a");
}

TEST(XmlTokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("<a>").ok());           // Unclosed.
  EXPECT_FALSE(Tokenize("<a></b>").ok());       // Mismatched.
  EXPECT_FALSE(Tokenize("<a x=1></a>").ok());   // Unquoted attr.
  EXPECT_FALSE(Tokenize("<a x='1></a>").ok());  // Unterminated value.
}

TEST(XmlTokenizerTest, RoundTripsGeneratedDocs) {
  XmlDocOptions opt;
  auto events = GenerateAuctionDoc(opt);
  auto reparsed = Tokenize(ToXmlText(events));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*reparsed)[i].kind, events[i].kind) << i;
    EXPECT_EQ((*reparsed)[i].name, events[i].name) << i;
  }
}

// --- XPath parser ---

TEST(XPathParseTest, StepsAndAxes) {
  auto p = ParseXPath("/site/people//person[@id='p3']/name");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->steps.size(), 4u);
  EXPECT_EQ(p->steps[0].axis, XPathStep::Axis::kChild);
  EXPECT_EQ(p->steps[2].axis, XPathStep::Axis::kDescendant);
  ASSERT_TRUE(p->steps[2].pred.has_value());
  EXPECT_EQ(p->steps[2].pred->attr, "id");
  EXPECT_EQ(p->steps[2].pred->value, "p3");
  EXPECT_EQ(p->ToString(), "/site/people//person[@id='p3']/name");
}

TEST(XPathParseTest, Wildcard) {
  auto p = ParseXPath("//*/bid");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps[0].name, "*");
  EXPECT_EQ(p->steps[0].axis, XPathStep::Axis::kDescendant);
}

TEST(XPathParseTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("site/x").ok());        // Missing leading /.
  EXPECT_FALSE(ParseXPath("/a[@x=1]").ok());      // Unquoted predicate.
  EXPECT_FALSE(ParseXPath("/a/").ok());           // Trailing slash.
  EXPECT_FALSE(ParseXPath("/a[b='c']").ok());     // Non-attribute pred.
}

// --- Filter matching ---

std::vector<XmlEvent> Doc(const std::string& text) {
  auto ev = Tokenize(text);
  EXPECT_TRUE(ev.ok());
  return *ev;
}

TEST(XPathFilterTest, ChildPath) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("/a/b").ok());
  auto counts = set.MatchDocument(Doc("<a><b/><c><b/></c><b/></a>"));
  EXPECT_EQ(counts[0], 2u);  // Only direct children of a.
}

TEST(XPathFilterTest, DescendantPath) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("//b").ok());
  auto counts = set.MatchDocument(Doc("<a><b/><c><b><b/></b></c></a>"));
  EXPECT_EQ(counts[0], 3u);
}

TEST(XPathFilterTest, MixedAxes) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("/a//c/d").ok());
  auto counts = set.MatchDocument(
      Doc("<a><c><d/></c><x><c><d/><e><d/></e></c></x><d/></a>"));
  // d as a *child* of any descendant c: two of them; the e/d and a/d
  // don't qualify.
  EXPECT_EQ(counts[0], 2u);
}

TEST(XPathFilterTest, WildcardStep) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("/a/*/d").ok());
  auto counts = set.MatchDocument(Doc("<a><b><d/></b><c><d/></c><d/></a>"));
  EXPECT_EQ(counts[0], 2u);  // a/d lacks the middle element.
}

TEST(XPathFilterTest, AttributePredicate) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("//person[@id='p1']/name").ok());
  auto counts = set.MatchDocument(
      Doc("<site><person id='p0'><name/></person>"
          "<person id='p1'><name/></person></site>"));
  EXPECT_EQ(counts[0], 1u);
}

TEST(XPathFilterTest, RepeatedDescendantNoDoubleCount) {
  // //a//b with nested a's: each b element fires once even though
  // several derivations reach it.
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("//a//b").ok());
  auto counts = set.MatchDocument(Doc("<a><a><b/></a></a>"));
  EXPECT_EQ(counts[0], 1u);
}

TEST(XPathFilterTest, ManyQueriesSharedPrefix) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("/site/people/person/name").ok());
  ASSERT_TRUE(set.Add("/site/people/person/city").ok());
  ASSERT_TRUE(set.Add("/site/auctions/auction/bid").ok());
  // Prefix sharing: far fewer states than 3 independent 4-step paths.
  EXPECT_LT(set.num_states(), 12u);

  auto events = GenerateAuctionDoc(XmlDocOptions{});
  auto counts = set.MatchDocument(events);
  EXPECT_EQ(counts[0], 20u);  // One name per person.
  EXPECT_GT(counts[2], 20u);  // At least one bid per auction (30+).
}

TEST(XPathFilterTest, SharedMatchesNaiveOnRandomWorkload) {
  // Property: the shared NFA agrees with per-query evaluation across a
  // batch of random paths and generated documents.
  XPathFilterSet set;
  const char* kPaths[] = {
      "/site/people/person",
      "//person/name",
      "//auction[@category='c1']",
      "/site/auctions/auction/bid",
      "//auction//bid",
      "//*[@id='p1']",
      "/site//name",
      "//seller",
  };
  for (const char* p : kPaths) {
    ASSERT_TRUE(set.Add(p).ok()) << p;
  }
  for (uint64_t seed : {1u, 2u, 3u}) {
    XmlDocOptions opt;
    opt.seed = seed;
    auto events = GenerateAuctionDoc(opt);
    EXPECT_EQ(set.MatchDocument(events), set.MatchDocumentNaive(events))
        << "seed " << seed;
  }
}

TEST(XPathFilterTest, SharedStateKeepsChildDepthConstraint) {
  // Regression: /a/b (child) and a query forcing /a to persist via a
  // descendant edge out of the same trie state must not let /a/b match
  // at deeper depths.
  XPathFilterSet set;
  auto q_child = set.Add("/a/b");
  auto q_desc = set.Add("/a//c");
  ASSERT_TRUE(q_child.ok() && q_desc.ok());
  auto counts = set.MatchDocument(Doc("<a><x><b/><c/></x><b/></a>"));
  EXPECT_EQ(counts[static_cast<size_t>(*q_child)], 1u);  // Only a's direct b.
  EXPECT_EQ(counts[static_cast<size_t>(*q_desc)], 1u);
  // And the shared result agrees with per-query evaluation.
  EXPECT_EQ(counts, set.MatchDocumentNaive(Doc("<a><x><b/><c/></x><b/></a>")));
}

TEST(XPathFilterTest, MatcherStreamsIncrementally) {
  XPathFilterSet set;
  ASSERT_TRUE(set.Add("/a/b").ok());
  auto m = set.NewMatcher();
  EXPECT_TRUE(m.OnEvent(XmlEvent::Start("a")).empty());
  auto hits = m.OnEvent(XmlEvent::Start("b"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0);
  m.OnEvent(XmlEvent::End("b"));
  m.OnEvent(XmlEvent::End("a"));
  EXPECT_EQ(m.match_counts()[0], 1u);
}

}  // namespace
}  // namespace xml
}  // namespace sqp
