#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/rng.h"
#include "exec/paned_window_agg.h"
#include "exec/plan.h"
#include "exec/window_join.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

// --- PanedWindowAggregateOp ---

TEST(PanedWindowTest, PaneSizeIsGcd) {
  PanedWindowAggregateOp::Options opt;
  opt.window = 60;
  opt.slide = 25;
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  EXPECT_EQ(pw->pane_size(), 5);
}

TEST(PanedWindowTest, TumblingSpecialCase) {
  // slide == window: panes degenerate to the window itself.
  PanedWindowAggregateOp::Options opt;
  opt.window = 10;
  opt.slide = 10;
  opt.aggs = {{AggKind::kSum, 1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  pw->SetOutput(sink);
  for (int64_t ts : {1, 5, 9, 11, 15, 21}) pw->Push(Element(T(ts, ts)));
  pw->Flush();
  ASSERT_EQ(sink->count(), 3u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 10);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 15);  // 1+5+9.
  EXPECT_EQ(sink->tuples()[1]->at(1).AsInt(), 26);  // 11+15.
  EXPECT_EQ(sink->tuples()[2]->at(1).AsInt(), 21);
}

TEST(PanedWindowTest, OverlappingWindowsShareWork) {
  PanedWindowAggregateOp::Options opt;
  opt.window = 40;
  opt.slide = 10;
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  pw->SetOutput(sink);
  // One tuple per tick for 100 ticks.
  for (int64_t ts = 0; ts < 100; ++ts) pw->Push(Element(T(ts, 1)));
  pw->Flush();
  // Steady state: every window of 40 ticks holds 40 tuples.
  std::map<int64_t, int64_t> rows;
  for (const TupleRef& r : sink->tuples()) rows[r->ts()] = r->at(1).AsInt();
  EXPECT_EQ(rows[40], 40);
  EXPECT_EQ(rows[50], 40);
  EXPECT_EQ(rows[90], 40);
  // Ramp-up windows are partial.
  EXPECT_EQ(rows[10], 10);
  EXPECT_EQ(rows[20], 20);
}

// Property: paned output equals a brute-force window scan, for several
// (window, slide) shapes and aggregate kinds.
struct PanedCase {
  int64_t window, slide;
  AggKind kind;
};

class PanedPropertyTest : public ::testing::TestWithParam<PanedCase> {};

TEST_P(PanedPropertyTest, MatchesBruteForce) {
  auto [window, slide, kind] = GetParam();
  PanedWindowAggregateOp::Options opt;
  opt.window = window;
  opt.slide = slide;
  opt.aggs = {{kind, 1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  pw->SetOutput(sink);

  Rng rng(31);
  std::vector<TupleRef> tuples;
  int64_t ts = 0;
  for (int i = 0; i < 1500; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(3));
    tuples.push_back(T(ts, static_cast<int64_t>(rng.Uniform(1000))));
  }
  for (const TupleRef& t : tuples) pw->Push(Element(t));
  pw->Flush();

  auto brute = [&](int64_t boundary) {
    double sum = 0, mx = -1e18;
    int64_t count = 0;
    for (const TupleRef& t : tuples) {
      if (t->ts() >= boundary - window && t->ts() < boundary) {
        sum += t->at(1).ToDouble();
        mx = std::max(mx, t->at(1).ToDouble());
        ++count;
      }
    }
    switch (kind) {
      case AggKind::kSum:
        return sum;
      case AggKind::kMax:
        return mx;
      default:
        return static_cast<double>(count);
    }
  };

  ASSERT_GT(sink->count(), 10u);
  for (const TupleRef& r : sink->tuples()) {
    double expect = brute(r->ts());
    EXPECT_NEAR(r->at(1).ToDouble(), expect, 1e-9)
        << "boundary " << r->ts() << " w=" << window << " s=" << slide;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PanedPropertyTest,
    ::testing::Values(PanedCase{60, 10, AggKind::kCount},
                      PanedCase{60, 10, AggKind::kSum},
                      PanedCase{60, 10, AggKind::kMax},
                      PanedCase{50, 15, AggKind::kSum},
                      PanedCase{64, 64, AggKind::kSum},
                      PanedCase{100, 7, AggKind::kMax}),
    [](const auto& info) {
      return std::string(AggKindName(info.param.kind)) + "_w" +
             std::to_string(info.param.window) + "_s" +
             std::to_string(info.param.slide);
    });

TEST(PanedWindowTest, StateBoundedByPaneCount) {
  PanedWindowAggregateOp::Options opt;
  opt.window = 1000;
  opt.slide = 100;
  opt.aggs = {{AggKind::kSum, 1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  auto* sink = plan.Make<CountingSink>();
  pw->SetOutput(sink);
  for (int64_t ts = 0; ts < 100000; ++ts) {
    pw->Push(Element(T(ts, 1)));
    // 10 panes of O(1) accumulators, regardless of tuples in window.
    EXPECT_LT(pw->StateBytes(), 4096u);
  }
}

TEST(PanedWindowTest, LargeTimeJumpStaysCheap) {
  PanedWindowAggregateOp::Options opt;
  opt.window = 100;
  opt.slide = 10;
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  Plan plan;
  auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  pw->SetOutput(sink);
  pw->Push(Element(T(5, 1)));
  pw->Push(Element(T(1000000000, 1)));  // Empty-window run suppressed.
  pw->Flush();
  // Only windows that contain data are emitted.
  EXPECT_LT(sink->count(), 50u);
  for (const TupleRef& r : sink->tuples()) {
    EXPECT_GE(r->at(1).AsInt(), 0);
  }
}

// --- LEFT OUTER window join ---

BinaryWindowJoinOp::Options OuterOpts(int64_t w) {
  BinaryWindowJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.left_window = WindowSpec::TimeSliding(w);
  o.right_window = WindowSpec::TimeSliding(w);
  o.left_outer = true;
  o.right_arity = 2;
  return o;
}

TEST(OuterJoinTest, UnmatchedLeftEmittedOnExpiry) {
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(OuterOpts(10));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 5)), 0);   // Will never match.
  j->Push(Element(T(50, 6)), 0);  // Expires ts=1 from the left window.
  ASSERT_EQ(sink->count(), 1u);
  const TupleRef& row = sink->tuples()[0];
  EXPECT_EQ(row->arity(), 4u);  // 2 left cols + 2 null pads.
  EXPECT_EQ(row->at(0).AsInt(), 1);
  EXPECT_TRUE(row->at(2).is_null());
  EXPECT_TRUE(row->at(3).is_null());
  EXPECT_EQ(j->join_stats().unmatched_left, 1u);
}

TEST(OuterJoinTest, MatchedLeftNotReported) {
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(OuterOpts(10));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 5)), 0);
  j->Push(Element(T(3, 5)), 1);   // Match.
  j->Push(Element(T(50, 9)), 0);  // Expire the matched tuple.
  j->Flush();
  j->Flush();
  EXPECT_EQ(j->join_stats().unmatched_left, 1u);  // Only ts=50 (at flush).
  // The matched row plus the flush-time unmatched for ts=50.
  ASSERT_EQ(sink->count(), 2u);
  EXPECT_EQ(sink->tuples()[0]->arity(), 4u);
  EXPECT_FALSE(sink->tuples()[0]->at(2).is_null());
}

TEST(OuterJoinTest, PunctuationDrivesExpiryReports) {
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(OuterOpts(10));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  j->Push(Element(T(1, 5)), 0);
  j->Push(Element(Punctuation::Watermark(100)), 0);
  EXPECT_EQ(j->join_stats().unmatched_left, 1u);
  EXPECT_EQ(sink->count(), 1u);
}

TEST(OuterJoinTest, CountsMatchInnerPlusUnmatched) {
  // Property: outer results = inner results + unmatched-left rows, and
  // unmatched + distinct-matched-left = left tuple count.
  Rng rng(32);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  uint64_t left_count = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += 1;
    int side = rng.Bernoulli(0.5) ? 0 : 1;
    left_count += side == 0 ? 1 : 0;
    inputs.emplace_back(side, T(ts, static_cast<int64_t>(rng.Uniform(40))));
  }
  Plan plan;
  auto* j = plan.Make<BinaryWindowJoinOp>(OuterOpts(30));
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  for (auto& [side, t] : inputs) j->Push(Element(t), side);
  j->Flush();
  j->Flush();
  const WindowJoinStats& st = j->join_stats();
  EXPECT_EQ(sink->count(), st.results + st.unmatched_left);
  // Every left tuple is either matched at least once or reported.
  EXPECT_LE(st.unmatched_left, left_count);
}

TEST(OuterJoinTest, RttMonitorFindsFailedConnections) {
  // The outer join's motivating use: SYNs that never get a SYN-ACK.
  Plan plan;
  BinaryWindowJoinOp::Options o = OuterOpts(100);
  auto* j = plan.Make<BinaryWindowJoinOp>(o);
  auto* sink = plan.Make<CollectorSink>();
  j->SetOutput(sink);
  // 3 SYNs; only key 1 and 3 answered.
  j->Push(Element(T(10, 1)), 0);
  j->Push(Element(T(11, 2)), 0);
  j->Push(Element(T(12, 3)), 0);
  j->Push(Element(T(20, 1)), 1);
  j->Push(Element(T(25, 3)), 1);
  j->Push(Element(Punctuation::Watermark(500)), 0);
  const WindowJoinStats& st = j->join_stats();
  EXPECT_EQ(st.results, 2u);
  EXPECT_EQ(st.unmatched_left, 1u);  // The key-2 SYN timed out.
}

}  // namespace
}  // namespace sqp
