#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/reorder.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts) { return MakeTuple(ts, {Value(ts)}); }

// --- HeartbeatOp ---

TEST(HeartbeatTest, EmitsWatermarkEveryPeriod) {
  Plan plan;
  auto* hb = plan.Make<HeartbeatOp>(10);
  auto* sink = plan.Make<CollectorSink>();
  hb->SetOutput(sink);
  for (int64_t ts : {0, 3, 9, 12, 25}) hb->Push(Element(T(ts)));
  // Beats at 10 and 20 (after ts 12 and 25 cross them).
  ASSERT_EQ(sink->punctuations().size(), 2u);
  EXPECT_EQ(sink->punctuations()[0].ts, 10);
  EXPECT_EQ(sink->punctuations()[1].ts, 20);
  EXPECT_EQ(sink->count(), 5u);  // All tuples forwarded.
}

TEST(HeartbeatTest, SlackShiftsWatermarks) {
  Plan plan;
  auto* hb = plan.Make<HeartbeatOp>(10, /*slack=*/3);
  auto* sink = plan.Make<CollectorSink>();
  hb->SetOutput(sink);
  hb->Push(Element(T(0)));
  hb->Push(Element(T(15)));
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 7);  // 10 - 3.
}

TEST(HeartbeatTest, DrivesDownstreamBucketCloseout) {
  // A group-by that would otherwise wait for newer tuples closes its
  // bucket off the heartbeat.
  Plan plan;
  auto* hb = plan.Make<HeartbeatOp>(5);
  GroupByOptions opt;
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  opt.window_size = 10;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  hb->SetOutput(gb);
  gb->SetOutput(sink);
  hb->Push(Element(T(1)));
  hb->Push(Element(T(8)));
  EXPECT_EQ(sink->count(), 0u);
  hb->Push(Element(T(11)));  // Heartbeat at 10 closes bucket [0,10).
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 2);
}

// --- SlackReorderOp ---

TEST(ReorderTest, RestoresOrderWithinSlack) {
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(5);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  for (int64_t ts : {3, 1, 2, 8, 6, 12, 10, 15}) ro->Push(Element(T(ts)));
  ro->Flush();
  ASSERT_EQ(sink->count(), 8u);
  for (size_t i = 1; i < sink->tuples().size(); ++i) {
    EXPECT_LE(sink->tuples()[i - 1]->ts(), sink->tuples()[i]->ts());
  }
}

TEST(ReorderTest, HoldsBackWithinSlackWindow) {
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(10);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  ro->Push(Element(T(5)));
  EXPECT_EQ(sink->count(), 0u);  // Might still see ts < 5.
  ro->Push(Element(T(20)));      // Releases everything <= 10.
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_EQ(ro->buffered(), 1u);
}

TEST(ReorderTest, DropsBeyondBoundLateTuples) {
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(2, /*drop_late=*/true);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  ro->Push(Element(T(10)));
  ro->Push(Element(T(20)));  // Emits 10 and 18-release threshold.
  ro->Push(Element(T(1)));   // Far too late.
  ro->Flush();
  EXPECT_EQ(ro->late_dropped(), 1u);
  EXPECT_EQ(sink->count(), 2u);
}

TEST(ReorderTest, ForwardLateWhenConfigured) {
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(2, /*drop_late=*/false);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  ro->Push(Element(T(10)));
  ro->Push(Element(T(20)));
  ro->Push(Element(T(1)));
  ro->Flush();
  EXPECT_EQ(ro->late_dropped(), 0u);
  EXPECT_EQ(sink->count(), 3u);
}

TEST(ReorderTest, WatermarkForcesRelease) {
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(100);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  ro->Push(Element(T(5)));
  ro->Push(Element(T(7)));
  EXPECT_EQ(sink->count(), 0u);
  ro->Push(Element(Punctuation::Watermark(6)));
  EXPECT_EQ(sink->count(), 1u);  // ts=5 released, ts=7 still held.
  EXPECT_EQ(sink->punctuations().size(), 1u);
}

// Property: random bounded-disorder streams come out sorted, no drops.
class ReorderPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReorderPropertyTest, BoundedDisorderFullyRestored) {
  int64_t slack = GetParam();
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(slack);
  auto* sink = plan.Make<CollectorSink>();
  ro->SetOutput(sink);
  Rng rng(7);
  int64_t base = 0;
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ++base;
    // Jitter within the slack bound.
    int64_t ts = base - static_cast<int64_t>(rng.Uniform(
                            static_cast<uint64_t>(slack) + 1));
    ro->Push(Element(T(std::max<int64_t>(0, ts))));
  }
  ro->Flush();
  EXPECT_EQ(ro->late_dropped(), 0u);
  ASSERT_EQ(sink->count(), static_cast<size_t>(kN));
  for (size_t i = 1; i < sink->tuples().size(); ++i) {
    EXPECT_LE(sink->tuples()[i - 1]->ts(), sink->tuples()[i]->ts());
  }
}

INSTANTIATE_TEST_SUITE_P(Slacks, ReorderPropertyTest,
                         ::testing::Values(1, 5, 50));

// Integration: disorderly stream -> reorder -> heartbeat -> group-by is
// exact vs feeding the sorted stream directly.
TEST(ReorderIntegrationTest, DisorderedPipelineMatchesSorted) {
  Rng rng(8);
  std::vector<TupleRef> tuples;
  int64_t base = 0;
  for (int i = 0; i < 4000; ++i) {
    ++base;
    tuples.push_back(T(base - static_cast<int64_t>(rng.Uniform(4))));
  }

  auto run = [&](bool disordered) {
    Plan plan;
    GroupByOptions opt;
    opt.aggs = {{AggKind::kCount, -1, 0.5}};
    opt.window_size = 100;
    auto* gb = plan.Make<GroupByAggregateOp>(opt);
    auto* sink = plan.Make<CollectorSink>();
    gb->SetOutput(sink);
    if (disordered) {
      auto* ro = plan.Make<SlackReorderOp>(4);
      ro->SetOutput(gb);
      for (const TupleRef& t : tuples) ro->Push(Element(t));
      ro->Flush();
    } else {
      std::vector<TupleRef> sorted = tuples;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const TupleRef& a, const TupleRef& b) {
                         return a->ts() < b->ts();
                       });
      for (const TupleRef& t : sorted) gb->Push(Element(t));
      gb->Flush();
    }
    std::map<int64_t, int64_t> rows;
    for (const TupleRef& r : sink->tuples()) {
      rows[r->ts()] = r->at(1).AsInt();
    }
    return rows;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace sqp
