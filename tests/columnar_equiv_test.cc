// Columnar-path equivalence suite: the vectorized execution path must be
// observationally identical to the row path — bit-identical values,
// timestamps and punctuation interleaving — across conversions,
// compiled expressions, operator chains, both executors and sharded
// plans. Streams are seeded-random over randomized schemas (nulls,
// strings, doubles, interleaved punctuations) so the batches exercised
// cover the layouts the kernels specialize on AND the shapes that must
// fall back to rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/column_batch.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/punct_groupby.h"
#include "exec/select.h"
#include "exec/sharded_op.h"
#include "exec/vector_expr.h"
#include "sched/parallel_executor.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "stream/element_batch.h"

namespace sqp {
namespace {

/// Records the exact interleaved arrival order of tuples and
/// punctuations (a split collector can't show ordering violations
/// between the two kinds).
class RecordingSink : public Operator {
 public:
  RecordingSink() : Operator("record") {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      log_.push_back("P:" + std::to_string(e.punctuation().ts));
    } else {
      log_.push_back("T:" + std::to_string(e.tuple()->ts()) + "/" +
                     e.tuple()->ToString());
    }
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

std::vector<std::string> Sorted(const RecordingSink& s) {
  std::vector<std::string> v = s.log();
  std::sort(v.begin(), v.end());
  return v;
}

// Per-column value profile of a randomized schema. kMixed deliberately
// breaks FromRows (int and double in one column) to exercise the row
// fallback; the rest convert.
enum class ColKind { kInt, kDouble, kString, kIntNullable, kAllNull, kMixed };

struct RandomSchema {
  std::vector<ColKind> cols;
};

RandomSchema MakeSchema(Rng* rng, bool allow_mixed) {
  RandomSchema s;
  size_t arity = 1 + rng->Uniform(5);
  for (size_t i = 0; i < arity; ++i) {
    uint64_t k = rng->Uniform(allow_mixed ? 6 : 5);
    s.cols.push_back(static_cast<ColKind>(k));
  }
  return s;
}

Value MakeValue(Rng* rng, ColKind kind) {
  switch (kind) {
    case ColKind::kInt:
      return Value(static_cast<int64_t>(rng->Uniform(1000)) - 500);
    case ColKind::kDouble:
      return Value(static_cast<double>(rng->Uniform(1000)) / 8.0 - 60.0);
    case ColKind::kString: {
      static const char* kWords[] = {"", "a", "bc", "query", "stream",
                                     "w\"x", "punct"};
      return Value(std::string(kWords[rng->Uniform(7)]));
    }
    case ColKind::kIntNullable:
      if (rng->Uniform(4) == 0) return Value::Null();
      return Value(static_cast<int64_t>(rng->Uniform(100)));
    case ColKind::kAllNull:
      return Value::Null();
    case ColKind::kMixed:
      if (rng->Uniform(2) == 0) return Value(static_cast<int64_t>(rng->Uniform(50)));
      return Value(static_cast<double>(rng->Uniform(50)) + 0.5);
  }
  return Value::Null();
}

/// Seeded stream over `schema` with punctuations interleaved at random
/// offsets (including back-to-back and leading positions).
std::vector<Element> MakeStream(Rng* rng, const RandomSchema& schema, int n) {
  std::vector<Element> out;
  out.reserve(static_cast<size_t>(n) + static_cast<size_t>(n) / 8 + 2);
  for (int64_t i = 0; i < n; ++i) {
    if (rng->Uniform(16) == 0) {
      out.push_back(Element(Punctuation::Watermark(i)));
      if (rng->Uniform(4) == 0) {
        out.push_back(Element(Punctuation::Watermark(i)));  // back-to-back
      }
    }
    std::vector<Value> vals;
    vals.reserve(schema.cols.size());
    for (ColKind k : schema.cols) vals.push_back(MakeValue(rng, k));
    out.push_back(Element(MakeTuple(i, std::move(vals))));
  }
  if (rng->Uniform(2) == 0) {
    out.push_back(Element(Punctuation::Watermark(n)));  // trailing
  }
  return out;
}

void DrivePerElement(Operator* entry, const std::vector<Element>& input) {
  for (const Element& e : input) entry->Process(e, 0);
  entry->Flush();
}

/// Drives `entry` columnarly: slices of `batch_size` converted with
/// FromRows and delivered via ProcessColumns; slices that cannot
/// convert take ProcessBatch — the same decision an executor makes.
void DriveColumnar(Operator* entry, const std::vector<Element>& input,
                   size_t batch_size) {
  ElementBatch eb;
  ColumnBatch cb;
  for (size_t i = 0; i < input.size();) {
    eb.clear();
    for (size_t j = 0; j < batch_size && i < input.size(); ++j, ++i) {
      eb.push_back(input[i]);
    }
    if (ColumnBatch::FromRows(eb, &cb)) {
      entry->ProcessColumns(cb, 0);
    } else {
      entry->ProcessBatch(eb, 0);
    }
  }
  entry->Flush();
}

const size_t kBatchSizes[] = {1, 3, 17, 64, 256};

// ---------------------------------------------------------------------------
// Conversion round-trips.

TEST(ColumnarEquivTest, RoundTripRandomizedSchemas) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    RandomSchema schema = MakeSchema(&rng, /*allow_mixed=*/false);
    std::vector<Element> input =
        MakeStream(&rng, schema, 1 + static_cast<int>(rng.Uniform(120)));
    ElementBatch eb;
    for (const Element& e : input) eb.push_back(e);
    ColumnBatch cb;
    ASSERT_TRUE(ColumnBatch::FromRows(eb, &cb)) << "trial " << trial;

    ElementBatch back;
    cb.MaterializeRows(&back);
    ASSERT_EQ(back.size(), input.size()) << "trial " << trial;
    for (size_t i = 0; i < input.size(); ++i) {
      const Element& want = input[i];
      const Element& got = back[i];
      ASSERT_EQ(got.is_punctuation(), want.is_punctuation())
          << "trial " << trial << " elem " << i;
      if (want.is_punctuation()) {
        EXPECT_EQ(got.punctuation().ts, want.punctuation().ts);
      } else {
        EXPECT_EQ(got.tuple()->ts(), want.tuple()->ts());
        EXPECT_EQ(got.tuple()->ToString(), want.tuple()->ToString())
            << "trial " << trial << " elem " << i;
      }
    }
  }
}

TEST(ColumnarEquivTest, RoundTripRespectsSelectionVector) {
  Rng rng(102);
  RandomSchema schema{{ColKind::kInt, ColKind::kString, ColKind::kIntNullable}};
  std::vector<Element> input = MakeStream(&rng, schema, 64);
  ElementBatch eb;
  for (const Element& e : input) eb.push_back(e);
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromRows(eb, &cb));

  // Keep every third physical row; every punctuation must still appear,
  // anchored between the surviving rows it arrived between.
  cb.has_sel = true;
  cb.sel.clear();
  for (uint32_t r = 0; r < cb.rows(); r += 3) cb.sel.push_back(r);

  ElementBatch back;
  cb.MaterializeRows(&back);
  size_t puncts = 0;
  size_t rows = 0;
  for (const Element& e : back) {
    if (e.is_punctuation()) {
      ++puncts;
    } else {
      ++rows;
    }
  }
  size_t want_puncts = 0;
  for (const Element& e : input) want_puncts += e.is_punctuation() ? 1 : 0;
  EXPECT_EQ(puncts, want_puncts);
  EXPECT_EQ(rows, cb.sel.size());
}

TEST(ColumnarEquivTest, MixedTypeAndRaggedBatchesFallBack) {
  ElementBatch mixed;
  mixed.push_back(Element(MakeTuple(0, {Value(int64_t{1})})));
  mixed.push_back(Element(MakeTuple(1, {Value(2.5)})));
  ColumnBatch cb;
  EXPECT_FALSE(ColumnBatch::FromRows(mixed, &cb));

  ElementBatch ragged;
  ragged.push_back(Element(MakeTuple(0, {Value(int64_t{1})})));
  ragged.push_back(
      Element(MakeTuple(1, {Value(int64_t{1}), Value(int64_t{2})})));
  EXPECT_FALSE(ColumnBatch::FromRows(ragged, &cb));

  // Null + one concrete type is fine — null rows join the typed column
  // through the validity mask.
  ElementBatch nullable;
  nullable.push_back(Element(MakeTuple(0, {Value::Null()})));
  nullable.push_back(Element(MakeTuple(1, {Value(int64_t{7})})));
  EXPECT_TRUE(ColumnBatch::FromRows(nullable, &cb));
  ElementBatch back;
  cb.MaterializeRows(&back);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].tuple()->at(0).is_null());
  EXPECT_EQ(back[1].tuple()->at(0).AsInt(), 7);
}

// ---------------------------------------------------------------------------
// Randomized expression fuzz: compiled kernels vs Expr::Eval.

/// Random expression tree over `arity` columns: comparisons, arithmetic
/// (incl. div/mod zero cases), logic, Not, Contains, typed and null
/// literals — every shape the compiler either vectorizes or rejects
/// (rejection keeps the scalar path, which is equivalence too).
ExprRef RandomExpr(Rng* rng, size_t arity, int depth) {
  if (depth <= 0 || rng->Uniform(4) == 0) {
    switch (rng->Uniform(5)) {
      case 0:
        return Col(static_cast<int>(rng->Uniform(arity)));
      case 1:
        return Lit(static_cast<int64_t>(rng->Uniform(200)) - 100);
      case 2:
        return Lit(static_cast<double>(rng->Uniform(64)) / 4.0 - 8.0);
      case 3:
        return Lit(Value(std::string(rng->Uniform(2) == 0 ? "a" : "bc")));
      default:
        return Lit(Value::Null());
    }
  }
  uint64_t pick = rng->Uniform(15);
  if (pick == 13) return Not(RandomExpr(rng, arity, depth - 1));
  if (pick == 14) {
    return ContainsFn(RandomExpr(rng, arity, depth - 1),
                      RandomExpr(rng, arity, depth - 1));
  }
  static const BinOp kOps[] = {BinOp::kEq,  BinOp::kNe,  BinOp::kLt,
                               BinOp::kLe,  BinOp::kGt,  BinOp::kGe,
                               BinOp::kAnd, BinOp::kOr,  BinOp::kAdd,
                               BinOp::kSub, BinOp::kMul, BinOp::kDiv,
                               BinOp::kMod};
  return Bin(kOps[pick], RandomExpr(rng, arity, depth - 1),
             RandomExpr(rng, arity, depth - 1));
}

TEST(ColumnarEquivTest, FuzzSelectMatchesRowPath) {
  Rng rng(201);
  for (int trial = 0; trial < 120; ++trial) {
    RandomSchema schema = MakeSchema(&rng, /*allow_mixed=*/true);
    std::vector<Element> input = MakeStream(&rng, schema, 300);
    ExprRef pred = RandomExpr(&rng, schema.cols.size(), 3);

    SelectOp ref(pred);
    RecordingSink ref_sink;
    ref.SetOutput(&ref_sink);
    DrivePerElement(&ref, input);

    size_t bs = kBatchSizes[trial % 5];
    SelectOp op(pred);
    RecordingSink sink;
    op.SetOutput(&sink);
    DriveColumnar(&op, input, bs);
    ASSERT_EQ(sink.log(), ref_sink.log())
        << "trial " << trial << " batch_size " << bs;
    EXPECT_EQ(op.stats().tuples_in, ref.stats().tuples_in);
    EXPECT_EQ(op.stats().tuples_out, ref.stats().tuples_out);
    EXPECT_EQ(op.stats().puncts_out, ref.stats().puncts_out);
  }
}

TEST(ColumnarEquivTest, FuzzProjectMatchesRowPath) {
  Rng rng(202);
  for (int trial = 0; trial < 120; ++trial) {
    RandomSchema schema = MakeSchema(&rng, /*allow_mixed=*/true);
    std::vector<Element> input = MakeStream(&rng, schema, 300);
    std::vector<ExprRef> exprs;
    size_t width = 1 + rng.Uniform(4);
    for (size_t i = 0; i < width; ++i) {
      exprs.push_back(rng.Uniform(2) == 0
                          ? Col(static_cast<int>(rng.Uniform(schema.cols.size())))
                          : RandomExpr(&rng, schema.cols.size(), 2));
    }

    ProjectOp ref(exprs);
    RecordingSink ref_sink;
    ref.SetOutput(&ref_sink);
    DrivePerElement(&ref, input);

    size_t bs = kBatchSizes[trial % 5];
    ProjectOp op(exprs);
    RecordingSink sink;
    op.SetOutput(&sink);
    DriveColumnar(&op, input, bs);
    ASSERT_EQ(sink.log(), ref_sink.log())
        << "trial " << trial << " batch_size " << bs;
  }
}

TEST(ColumnarEquivTest, FuzzSelectProjectChainMatchesRowPath) {
  Rng rng(203);
  for (int trial = 0; trial < 60; ++trial) {
    RandomSchema schema = MakeSchema(&rng, /*allow_mixed=*/true);
    std::vector<Element> input = MakeStream(&rng, schema, 400);
    size_t arity = schema.cols.size();
    ExprRef p1 = RandomExpr(&rng, arity, 3);
    ExprRef p2 = RandomExpr(&rng, arity, 2);
    std::vector<ExprRef> proj;
    for (size_t i = 0; i < arity; ++i) proj.push_back(Col(static_cast<int>(i)));

    auto build = [&](RecordingSink* sink,
                     std::vector<std::unique_ptr<Operator>>* own) {
      auto s1 = std::make_unique<SelectOp>(p1);
      auto s2 = std::make_unique<SelectOp>(p2);
      auto pr = std::make_unique<ProjectOp>(proj);
      s1->SetOutput(s2.get());
      s2->SetOutput(pr.get());
      pr->SetOutput(sink);
      Operator* entry = s1.get();
      own->push_back(std::move(s1));
      own->push_back(std::move(s2));
      own->push_back(std::move(pr));
      return entry;
    };

    RecordingSink ref_sink;
    std::vector<std::unique_ptr<Operator>> ref_own;
    DrivePerElement(build(&ref_sink, &ref_own), input);

    RecordingSink sink;
    std::vector<std::unique_ptr<Operator>> own;
    DriveColumnar(build(&sink, &own), input, kBatchSizes[trial % 5]);
    ASSERT_EQ(sink.log(), ref_sink.log()) << "trial " << trial;
  }
}

TEST(ColumnarEquivTest, PunctGroupByColumnarMatchesRow) {
  std::vector<AggSpec> aggs = {AggSpec{AggKind::kCount, -1, 0.5},
                               AggSpec{AggKind::kSum, 2, 0.5}};
  Rng rng(204);
  std::vector<Element> input;
  for (int64_t i = 0; i < 3000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(40));
    input.push_back(
        Element(MakeTuple(i, {Value(i), Value(key), Value(i % 17)})));
    if (rng.Uniform(9) == 0) {
      input.push_back(Element(Punctuation::CloseKey(
          i, Value(static_cast<int64_t>(rng.Uniform(40))))));
    }
    if (rng.Uniform(64) == 0) {
      input.push_back(Element(Punctuation::Watermark(i - 100)));
    }
  }

  PunctuationGroupByOp ref(1, aggs);
  RecordingSink ref_sink;
  ref.SetOutput(&ref_sink);
  DrivePerElement(&ref, input);

  for (size_t bs : kBatchSizes) {
    PunctuationGroupByOp op(1, aggs);
    RecordingSink sink;
    op.SetOutput(&sink);
    DriveColumnar(&op, input, bs);
    ASSERT_EQ(sink.log(), ref_sink.log()) << "batch_size " << bs;
  }
}

// ---------------------------------------------------------------------------
// Executor-level equivalence.

std::vector<Element> NumericStream(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Element> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(Element(MakeTuple(
        i, {Value(i / 2), Value(i % 2),
            Value(static_cast<int64_t>(rng.Uniform(1000)))})));
    if (i % 97 == 96) out.push_back(Element(Punctuation::Watermark(i)));
  }
  return out;
}

std::vector<Operator*> MakeNumericChain(
    std::vector<std::unique_ptr<Operator>>* own) {
  auto s1 = std::make_unique<SelectOp>(Gt(Col(2), Lit(int64_t{99})));
  auto s2 = std::make_unique<SelectOp>(Lt(Col(2), Lit(int64_t{990})));
  auto p1 = std::make_unique<ProjectOp>(
      std::vector<ExprRef>{Col(0), Col(1), Col(2)});
  auto p2 = std::make_unique<ProjectOp>(
      std::vector<ExprRef>{Col(0), Add(Col(2), Lit(int64_t{1}))});
  std::vector<Operator*> chain = {s1.get(), s2.get(), p1.get(), p2.get()};
  own->push_back(std::move(s1));
  own->push_back(std::move(s2));
  own->push_back(std::move(p1));
  own->push_back(std::move(p2));
  return chain;
}

TEST(ColumnarEquivTest, QueuedExecutorColumnarMatchesRow) {
  std::vector<Element> input = NumericStream(301, 4000);

  auto run = [&](bool columnar, RecordingSink* sink) {
    std::vector<std::unique_ptr<Operator>> own;
    std::vector<Operator*> chain = MakeNumericChain(&own);
    std::vector<QueuedExecutor::Stage> stages;
    for (Operator* op : chain) {
      QueuedExecutor::Stage s;
      s.op = op;
      s.max_batch = 64;
      s.columnar = columnar;
      stages.push_back(s);
    }
    QueuedExecutor exec(stages, sink, MakeFifoPolicy());
    for (const Element& e : input) exec.Arrive(e);
    exec.Tick(1e15);
    exec.Drain();
  };

  RecordingSink ref;
  run(false, &ref);
  RecordingSink got;
  run(true, &got);
  // The serial executor is deterministic: exact order must match.
  EXPECT_EQ(got.log(), ref.log());
  ASSERT_GT(ref.log().size(), 100u);
}

TEST(ColumnarEquivTest, ParallelExecutorColumnarMatchesRow) {
  std::vector<Element> input = NumericStream(302, 6000);

  auto run = [&](bool columnar, RecordingSink* sink, uint64_t* dropped) {
    std::vector<std::unique_ptr<Operator>> own;
    std::vector<Operator*> chain = MakeNumericChain(&own);
    std::vector<ParallelExecutor::Stage> stages;
    for (Operator* op : chain) {
      ParallelExecutor::Stage s;
      s.op = op;
      s.queue_limit = 256;
      s.backpressure = Backpressure::kBlock;
      s.wake_batch = 64;
      s.max_batch = 64;
      s.columnar = columnar;
      stages.push_back(s);
    }
    ParallelExecutor exec(stages, sink);
    exec.Start();
    for (const Element& e : input) exec.Arrive(e);
    exec.Drain();
    *dropped = exec.dropped();
  };

  RecordingSink ref;
  uint64_t ref_dropped = 0;
  run(false, &ref, &ref_dropped);
  ASSERT_EQ(ref_dropped, 0u);

  RecordingSink got;
  uint64_t dropped = 0;
  run(true, &got, &dropped);
  EXPECT_EQ(dropped, 0u);
  // Stage hand-offs preserve order per stage, and the chain is linear:
  // exact order must match here too.
  EXPECT_EQ(got.log(), ref.log());
  ASSERT_GT(ref.log().size(), 100u);
}

TEST(ColumnarEquivTest, ShardedColumnarMatchesSerial) {
  std::vector<AggSpec> aggs = {AggSpec{AggKind::kCount, -1, 0.5},
                               AggSpec{AggKind::kMax, 2, 0.5}};

  Plan sp;
  auto* serial = sp.Make<PunctuationGroupByOp>(1, aggs);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}};
  so.columnar = true;
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<PunctuationGroupByOp>(1, aggs); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  auto drive = [](auto push) {
    Rng rng(303);
    for (int64_t i = 0; i < 6000; ++i) {
      int64_t key = static_cast<int64_t>(rng.Uniform(64));
      push(Element(MakeTuple(i, {Value(i), Value(key), Value(i % 100)})));
      if (i % 7 == 6) {
        push(Element(Punctuation::CloseKey(
            i, Value(static_cast<int64_t>(rng.Uniform(64))))));
      }
    }
  };
  drive([&](const Element& e) { serial->Push(e, 0); });
  drive([&](const Element& e) { sharded->Push(e, 0); });
  serial->Flush();
  sharded->Flush();

  auto rows = [](const CollectorSink& s) {
    std::vector<std::string> out;
    for (const TupleRef& t : s.tuples()) out.push_back(t->ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_GT(ssink->count(), 0u);
  EXPECT_EQ(rows(*ssink), rows(*psink));
  EXPECT_EQ(ssink->punctuations().size(), psink->punctuations().size());
}

// TSan coverage: four columnar stages running on their own threads with
// small queues (constant backpressure blocking + wakeups) and strings in
// flight, so batch conversion, hand-off and drop accounting race with
// delivery if any of them share state unsafely.
TEST(ColumnarEquivTest, ParallelColumnarStress) {
  Rng rng(304);
  std::vector<Element> input;
  for (int64_t i = 0; i < 20000; ++i) {
    input.push_back(Element(MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(1000))),
            Value(std::string(rng.Uniform(2) == 0 ? "hot" : "cold"))})));
    if (i % 101 == 100) input.push_back(Element(Punctuation::Watermark(i)));
  }

  std::vector<std::unique_ptr<Operator>> own;
  auto s1 = std::make_unique<SelectOp>(Gt(Col(1), Lit(int64_t{9})));
  auto p1 = std::make_unique<ProjectOp>(
      std::vector<ExprRef>{Col(0), Col(1), Col(2)});
  auto s2 = std::make_unique<SelectOp>(Lt(Col(1), Lit(int64_t{991})));
  auto p2 = std::make_unique<ProjectOp>(
      std::vector<ExprRef>{Col(1), Col(2)});
  std::vector<Operator*> chain = {s1.get(), p1.get(), s2.get(), p2.get()};
  own.push_back(std::move(s1));
  own.push_back(std::move(p1));
  own.push_back(std::move(s2));
  own.push_back(std::move(p2));

  CountingSink sink;
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : chain) {
    ParallelExecutor::Stage s;
    s.op = op;
    s.queue_limit = 64;  // Small: forces constant blocking + wakeups.
    s.backpressure = Backpressure::kBlock;
    s.wake_batch = 32;
    s.max_batch = 32;
    s.columnar = true;
    stages.push_back(s);
  }
  ParallelExecutor exec(stages, &sink);
  exec.Start();
  for (const Element& e : input) exec.Arrive(e);
  exec.Drain();
  EXPECT_EQ(exec.dropped(), 0u);

  // Row-path reference for the expected survivor count.
  uint64_t expect = 0;
  for (const Element& e : input) {
    if (e.is_punctuation()) continue;
    int64_t v = e.tuple()->at(1).AsInt();
    if (v > 9 && v < 991) ++expect;
  }
  EXPECT_EQ(sink.tuples(), expect);
}

}  // namespace
}  // namespace sqp
