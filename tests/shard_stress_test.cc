// Concurrency stress for ShardedOp, aimed at the TSan CI job: stats
// readers racing the shard/merge workers, bounded queues under both
// backpressure policies, and teardown without a flush.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/sharded_op.h"
#include "exec/window_join.h"
#include "obs/registry.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t key, int64_t payload = 0) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(payload)});
}

GroupByOptions Grouping() {
  GroupByOptions g;
  g.key_cols = {1};
  g.aggs = {AggSpec{AggKind::kCount, -1, 0.5}};
  g.window_size = 50;
  return g;
}

TEST(ShardStressTest, StatsReadersRaceTheWorkers) {
  Plan plan;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}};
  so.wake_batch = 8;
  auto* sharded = plan.Make<ShardedOp>(
      so, [](int) { return std::make_unique<GroupByAggregateOp>(Grouping()); });
  auto* sink = plan.Make<CountingSink>();
  sharded->SetOutput(sink);

  // Reader thread hammers every cross-thread accessor while the caller
  // thread ingests and the workers drain; under TSan this is the test.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    obs::Snapshot snap;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::SnapshotBuilder b(&snap);
      sharded->CollectStats(b, {{"query", "stress"}});
      for (int i = 0; i < 4; ++i) (void)sharded->shard_stats(i);
      (void)sharded->SkewRatio();
      (void)sharded->StateBytes();
      (void)sharded->dropped();
      (void)sharded->merged_tuples();
      snap.samples.clear();
    }
  });

  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    sharded->Push(Element(T(i / 8, static_cast<int64_t>(rng.Uniform(64)))), 0);
  }
  sharded->Flush();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  uint64_t routed = 0;
  for (int i = 0; i < 4; ++i) routed += sharded->shard_stats(i).routed;
  EXPECT_EQ(routed, 20000u);
  EXPECT_GT(sink->tuples(), 0u);
}

TEST(ShardStressTest, TinyQueuesBlockWithoutDeadlockOrLoss) {
  Plan plan;
  ShardedOpOptions so;
  so.shards = 3;
  so.key_cols = {{1}, {1}};
  so.queue_limit = 4;        // Force constant producer blocking.
  so.merge_queue_limit = 4;  // And merge-side blocking too.
  so.wake_batch = 2;
  BinaryWindowJoinOp::Options j;
  j.left_cols = {1};
  j.right_cols = {1};
  j.left_window = WindowSpec::TimeSliding(30);
  j.right_window = WindowSpec::TimeSliding(30);
  auto* sharded = plan.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<BinaryWindowJoinOp>(j); });
  auto* sink = plan.Make<CountingSink>();
  sharded->SetOutput(sink);

  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    sharded->Push(Element(T(i / 2, static_cast<int64_t>(rng.Uniform(8)))),
                  static_cast<int>(rng.Uniform(2)));
  }
  sharded->Flush();
  sharded->Flush();
  EXPECT_EQ(sharded->dropped(), 0u);  // kBlock: nothing lost.
  EXPECT_GT(sink->tuples(), 0u);
}

TEST(ShardStressTest, DropNewestShedsButNeverDropsPunctuations) {
  Plan plan;
  ShardedOpOptions so;
  so.shards = 2;
  so.key_cols = {{1}};
  so.queue_limit = 2;
  so.backpressure = ShardBackpressure::kDropNewest;
  so.wake_batch = 64;  // Larger than the queue: the limit must wake.
  // A deliberately slow replica so queues overflow: every tuple rescans
  // a growing window.
  GroupByOptions g;
  g.key_cols = {1};
  g.aggs = {AggSpec{AggKind::kCountDistinct, 2, 0.5}};
  g.window_size = 1000;
  auto* sharded = plan.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<GroupByAggregateOp>(g); });
  auto* sink = plan.Make<CollectorSink>();
  sharded->SetOutput(sink);

  for (int i = 0; i < 50000; ++i) {
    sharded->Push(Element(T(i / 100, i % 16, i)), 0);
  }
  for (int w = 0; w < 100; ++w) {
    sharded->Push(Element(Punctuation::Watermark(600 + w)), 0);
  }
  sharded->Flush();

  uint64_t routed = 0;
  for (int i = 0; i < 2; ++i) routed += sharded->shard_stats(i).routed;
  // Shedding happened (the queues are 2 deep), was counted, and the
  // books balance: routed + dropped = offered.
  EXPECT_EQ(routed + sharded->dropped(), 50000u + 100u * 2u);
  // Every watermark bypassed the full queues and reached both shards:
  // the merge's min rule advanced to the last one.
  // (CollectorSink keeps punctuations separately.)
  ASSERT_FALSE(sink->punctuations().empty());
  EXPECT_EQ(sink->punctuations().back().ts, 699);
}

TEST(ShardStressTest, DestructionWithoutFlushAbandonsCleanly) {
  for (int round = 0; round < 10; ++round) {
    Plan plan;
    ShardedOpOptions so;
    so.shards = 4;
    so.key_cols = {{1}};
    so.queue_limit = 8;
    auto* sharded = plan.Make<ShardedOp>(so, [](int) {
      return std::make_unique<GroupByAggregateOp>(Grouping());
    });
    auto* sink = plan.Make<CountingSink>();
    sharded->SetOutput(sink);
    for (int i = 0; i < 2000; ++i) {
      sharded->Push(Element(T(i / 4, i % 32)), 0);
    }
    EXPECT_TRUE(sharded->running());
    // Plan teardown destroys the ShardedOp mid-stream: StopAndJoin must
    // abandon queued work and join every worker without flushing.
  }
}

TEST(ShardStressTest, ReusableAcrossManyShortRuns) {
  // Start/drain cost and thread lifecycle: many small ShardedOps in
  // sequence, each fully drained — catches leaked threads under TSan.
  for (int round = 0; round < 20; ++round) {
    Plan plan;
    ShardedOpOptions so;
    so.shards = 2;
    so.key_cols = {{1}};
    auto* sharded = plan.Make<ShardedOp>(so, [](int) {
      return std::make_unique<GroupByAggregateOp>(Grouping());
    });
    auto* sink = plan.Make<CountingSink>();
    sharded->SetOutput(sink);
    for (int i = 0; i < 300; ++i) {
      sharded->Push(Element(T(i, i % 5)), 0);
    }
    sharded->Flush();
    EXPECT_FALSE(sharded->running());
    EXPECT_GT(sink->tuples(), 0u);
  }
}

}  // namespace
}  // namespace sqp
