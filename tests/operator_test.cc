#include <gtest/gtest.h>

#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/union.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

TEST(SelectOpTest, FiltersByPredicate) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Gt(Col(1), Lit(int64_t{5})));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  for (int64_t v : {3, 7, 5, 9}) sel->Push(Element(T(v, v)));
  ASSERT_EQ(sink->count(), 2u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 7);
  EXPECT_EQ(sink->tuples()[1]->at(1).AsInt(), 9);
  EXPECT_DOUBLE_EQ(sel->stats().Selectivity(), 0.5);
}

TEST(SelectOpTest, PunctuationsPassThrough) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{0}));  // Rejects everything.
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  sel->Push(Element(T(1, 1)));
  sel->Push(Element(Punctuation::Watermark(5)));
  EXPECT_EQ(sink->count(), 0u);
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 5);
}

TEST(ProjectOpTest, ComputesExpressionsKeepsTs) {
  Plan plan;
  auto* proj = plan.Make<ProjectOp>(
      std::vector<ExprRef>{Col(1), Mul(Col(1), Lit(int64_t{2}))});
  auto* sink = plan.Make<CollectorSink>();
  proj->SetOutput(sink);
  proj->Push(Element(T(42, 10)));
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 42);  // Ordering attr preserved.
  EXPECT_EQ(sink->tuples()[0]->at(0).AsInt(), 10);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 20);
}

TEST(ProjectOpTest, OutputSchemaTypesAndNames) {
  Schema in({{"ts", ValueType::kInt}, {"len", ValueType::kInt}});
  auto out = ProjectOp::OutputSchema(
      in, {Col(1), Div(Mul(Col(1), Lit(1.0)), Lit(2.0))}, {"len", "half"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->field(0).name, "len");
  EXPECT_EQ(out->field(0).type, ValueType::kInt);
  EXPECT_EQ(out->field(1).name, "half");
  EXPECT_EQ(out->field(1).type, ValueType::kDouble);
}

TEST(ProjectOpTest, OutputSchemaRejectsBadExpr) {
  Schema in({{"s", ValueType::kString}});
  EXPECT_FALSE(ProjectOp::OutputSchema(in, {Add(Col(0), Lit(int64_t{1}))}).ok());
}

TEST(DistinctOpTest, EmitsFirstOccurrenceOnly) {
  Plan plan;
  auto* d = plan.Make<DistinctOp>(std::vector<int>{1});
  auto* sink = plan.Make<CollectorSink>();
  d->SetOutput(sink);
  for (int64_t v : {1, 2, 1, 3, 2, 1}) d->Push(Element(T(v, v)));
  EXPECT_EQ(sink->count(), 3u);
}

TEST(DistinctOpTest, WindowResetsSeenSet) {
  Plan plan;
  auto* d = plan.Make<DistinctOp>(std::vector<int>{1}, /*window_size=*/10);
  auto* sink = plan.Make<CollectorSink>();
  d->SetOutput(sink);
  d->Push(Element(T(1, 7)));
  d->Push(Element(T(2, 7)));   // Duplicate in same bucket.
  d->Push(Element(T(15, 7)));  // New bucket: emitted again.
  EXPECT_EQ(sink->count(), 2u);
}

TEST(DistinctOpTest, StateGrowsWithoutWindow) {
  Plan plan;
  auto* d = plan.Make<DistinctOp>(std::vector<int>{1});
  auto* sink = plan.Make<CountingSink>();
  d->SetOutput(sink);
  size_t before = d->StateBytes();
  for (int64_t v = 0; v < 1000; ++v) d->Push(Element(T(v, v)));
  EXPECT_GT(d->StateBytes(), before + 1000 * 8);
}

TEST(UnionOpTest, MergesBothInputs) {
  Plan plan;
  auto* u = plan.Make<UnionOp>();
  auto* sink = plan.Make<CollectorSink>();
  u->SetOutput(sink);
  u->Push(Element(T(1, 1)), 0);
  u->Push(Element(T(2, 2)), 1);
  u->Push(Element(T(3, 3)), 0);
  EXPECT_EQ(sink->count(), 3u);
}

TEST(UnionOpTest, WatermarkIsMinOfInputs) {
  Plan plan;
  auto* u = plan.Make<UnionOp>();
  auto* sink = plan.Make<CollectorSink>();
  u->SetOutput(sink);
  u->Push(Element(Punctuation::Watermark(10)), 0);
  EXPECT_TRUE(sink->punctuations().empty());  // Other side unknown.
  u->Push(Element(Punctuation::Watermark(4)), 1);
  ASSERT_EQ(sink->punctuations().size(), 1u);
  EXPECT_EQ(sink->punctuations()[0].ts, 4);
  // Advancing the slower side re-emits the new minimum.
  u->Push(Element(Punctuation::Watermark(12)), 1);
  ASSERT_EQ(sink->punctuations().size(), 2u);
  EXPECT_EQ(sink->punctuations()[1].ts, 10);
}

TEST(UnionOpTest, SingleFlushAfterBothInputs) {
  Plan plan;
  auto* u = plan.Make<UnionOp>();
  auto* down = plan.Make<CollectorSink>();
  u->SetOutput(down);
  u->Flush();
  u->Flush();
  SUCCEED();  // Flush propagation reaching a sink must not crash.
}

TEST(OrderedMergeOpTest, OutputIsTimestampOrdered) {
  Plan plan;
  auto* m = plan.Make<OrderedMergeOp>();
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  // Side 0: 1, 5, 9; side 1: 2, 3, 10 — interleaved pushes.
  m->Push(Element(T(1, 0)), 0);
  m->Push(Element(T(2, 1)), 1);
  m->Push(Element(T(5, 0)), 0);
  m->Push(Element(T(3, 1)), 1);
  m->Push(Element(T(9, 0)), 0);
  m->Push(Element(T(10, 1)), 1);
  m->Flush();
  m->Flush();
  ASSERT_EQ(sink->count(), 6u);
  for (size_t i = 1; i < sink->tuples().size(); ++i) {
    EXPECT_LE(sink->tuples()[i - 1]->ts(), sink->tuples()[i]->ts());
  }
}

TEST(OrderedMergeOpTest, HoldsBackUntilOtherSideCatchesUp) {
  Plan plan;
  auto* m = plan.Make<OrderedMergeOp>();
  auto* sink = plan.Make<CollectorSink>();
  m->SetOutput(sink);
  m->Push(Element(T(5, 0)), 0);
  EXPECT_EQ(sink->count(), 0u);  // Side 1 frontier unknown.
  m->Push(Element(T(7, 1)), 1);
  EXPECT_EQ(sink->count(), 1u);  // ts=5 released (5 <= min(5,7)).
}

TEST(PlanTest, StatsString) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  sel->Push(Element(T(1, 1)));
  std::string s = plan.StatsString();
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_NE(s.find("in=1"), std::string::npos);
}

TEST(PlanTest, RunStreamDrivesAndFlushes) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  int64_t next_ts = 0;
  RunStream(sel, [&]() { return T(next_ts++, 0); }, 10);
  EXPECT_EQ(sink->count(), 10u);
}

}  // namespace
}  // namespace sqp
