#include <gtest/gtest.h>

#include "exec/plan.h"
#include "exec/select.h"
#include "shed/load_shedder.h"
#include "shed/qos.h"
#include "shed/shed_planner.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

TEST(RandomDropTest, DropRateApproximatelyHonored) {
  Plan plan;
  auto* drop = plan.Make<RandomDropOp>(0.3, 42);
  auto* sink = plan.Make<CountingSink>();
  drop->SetOutput(sink);
  const int n = 20000;
  for (int i = 0; i < n; ++i) drop->Push(Element(T(i, i)));
  EXPECT_NEAR(static_cast<double>(drop->dropped()) / n, 0.3, 0.02);
  EXPECT_EQ(sink->tuples() + drop->dropped(), static_cast<uint64_t>(n));
}

TEST(RandomDropTest, ScaleFactorUnbiasesCounts) {
  Plan plan;
  auto* drop = plan.Make<RandomDropOp>(0.5, 7);
  auto* sink = plan.Make<CountingSink>();
  drop->SetOutput(sink);
  const int n = 40000;
  for (int i = 0; i < n; ++i) drop->Push(Element(T(i, i)));
  double estimated = static_cast<double>(sink->tuples()) * drop->scale_factor();
  EXPECT_NEAR(estimated / n, 1.0, 0.03);
}

TEST(RandomDropTest, PunctuationsNeverDropped) {
  Plan plan;
  auto* drop = plan.Make<RandomDropOp>(1.0, 1);
  auto* sink = plan.Make<CollectorSink>();
  drop->SetOutput(sink);
  drop->Push(Element(T(1, 1)));
  drop->Push(Element(Punctuation::Watermark(5)));
  EXPECT_EQ(sink->count(), 0u);
  EXPECT_EQ(sink->punctuations().size(), 1u);
}

TEST(SemanticDropTest, KeepsPredicateMatches) {
  // Keep tuples with v >= 90 (the query-relevant ones), drop all else.
  Plan plan;
  auto* drop = plan.Make<SemanticDropOp>(Ge(Col(1), Lit(int64_t{90})), 1.0, 3);
  auto* sink = plan.Make<CollectorSink>();
  drop->SetOutput(sink);
  for (int64_t v = 0; v < 100; ++v) drop->Push(Element(T(v, v)));
  EXPECT_EQ(sink->count(), 10u);
  for (const TupleRef& t : sink->tuples()) {
    EXPECT_GE(t->at(1).AsInt(), 90);
  }
}

TEST(SemanticDropTest, PartialDropRateOnNonMatches) {
  Plan plan;
  auto* drop = plan.Make<SemanticDropOp>(Ge(Col(1), Lit(int64_t{50})), 0.5, 4);
  auto* sink = plan.Make<CountingSink>();
  drop->SetOutput(sink);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    drop->Push(Element(T(i, i % 100)));
  }
  // Half the tuples match (always kept); the rest dropped at 50%.
  EXPECT_NEAR(static_cast<double>(sink->tuples()) / n, 0.75, 0.02);
}

TEST(QosCurveTest, LinearAndClamping) {
  QosCurve c = QosCurve::Linear();
  EXPECT_DOUBLE_EQ(c.Utility(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.Utility(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.Utility(2.0), 1.0);  // Clamped.
  EXPECT_DOUBLE_EQ(c.Utility(-1.0), 0.0);
}

TEST(QosCurveTest, PiecewiseInterpolation) {
  auto c = QosCurve::Make({{0.0, 0.0}, {0.5, 0.8}, {1.0, 1.0}});
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->Utility(0.25), 0.4, 1e-9);
  EXPECT_NEAR(c->Utility(0.75), 0.9, 1e-9);
}

TEST(QosCurveTest, RejectsInvalidPoints) {
  EXPECT_FALSE(QosCurve::Make({{0.0, 0.0}}).ok());
  EXPECT_FALSE(QosCurve::Make({{0.5, 0.0}, {0.5, 1.0}}).ok());
  EXPECT_FALSE(QosCurve::Make({{0.0, -0.1}, {1.0, 1.0}}).ok());
}

TEST(QosAllocationTest, FullCapacityDeliversEverything) {
  std::vector<double> rates = {10.0, 20.0};
  std::vector<QosCurve> curves = {QosCurve::Linear(), QosCurve::Linear()};
  auto alloc = AllocateCapacity(rates, curves, 30.0);
  EXPECT_NEAR(alloc.delivered_fraction[0], 1.0, 0.05);
  EXPECT_NEAR(alloc.delivered_fraction[1], 1.0, 0.05);
  EXPECT_NEAR(alloc.total_utility, 2.0, 0.1);
}

TEST(QosAllocationTest, SteepCurveGetsCapacityFirst) {
  std::vector<double> rates = {10.0, 10.0};
  // Query 0 gains utility fast early (concave-ish knee curve inverted):
  auto steep = QosCurve::Make({{0.0, 0.0}, {0.3, 0.9}, {1.0, 1.0}});
  auto shallow = QosCurve::Linear();
  ASSERT_TRUE(steep.ok());
  std::vector<QosCurve> curves = {*steep, shallow};
  auto alloc = AllocateCapacity(rates, curves, 4.0);  // 20% of demand.
  EXPECT_GT(alloc.delivered_fraction[0], alloc.delivered_fraction[1]);
}

TEST(ShedPlannerTest, NoSheddingWhenUnderCapacity) {
  std::vector<ShedPoint> points = {{10.0, 1.0, 1.0}};
  auto plan = PlanShedding(points, 8.0, 10.0);
  EXPECT_DOUBLE_EQ(plan.drop_rate[0], 0.0);
  EXPECT_TRUE(plan.feasible);
}

TEST(ShedPlannerTest, ShedsExactlyTheExcess) {
  std::vector<ShedPoint> points = {{20.0, 1.0, 1.0}};
  auto plan = PlanShedding(points, 20.0, 15.0);
  EXPECT_NEAR(plan.drop_rate[0], 0.25, 1e-9);
  EXPECT_NEAR(plan.saved_work, 5.0, 1e-9);
  EXPECT_TRUE(plan.feasible);
}

TEST(ShedPlannerTest, PrefersCheapAnswerLossPoints) {
  // Point 0: high work saved per answer lost; point 1: poor ratio.
  std::vector<ShedPoint> points = {{10.0, 5.0, 0.1}, {10.0, 1.0, 1.0}};
  auto plan = PlanShedding(points, 60.0, 45.0);
  EXPECT_GT(plan.drop_rate[0], 0.0);
  EXPECT_DOUBLE_EQ(plan.drop_rate[1], 0.0);
}

TEST(ShedPlannerTest, InfeasibleWhenExcessTooLarge) {
  std::vector<ShedPoint> points = {{1.0, 1.0, 1.0}};
  auto plan = PlanShedding(points, 100.0, 1.0);
  EXPECT_FALSE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.drop_rate[0], 1.0);
}

// End-to-end: semantic shedding preserves a HAVING-style answer better
// than random shedding at equal drop volume (slide 44's point).
TEST(SheddingEndToEndTest, SemanticBeatsRandomForSelectiveQuery) {
  // Query cares about v >= 900 (the top decile).
  auto run = [&](bool semantic) {
    Plan plan;
    Operator* shed;
    if (semantic) {
      shed = plan.Make<SemanticDropOp>(Ge(Col(1), Lit(int64_t{900})), 0.556, 9);
    } else {
      shed = plan.Make<RandomDropOp>(0.5, 9);
    }
    auto* sel = plan.Make<SelectOp>(Ge(Col(1), Lit(int64_t{900})));
    auto* sink = plan.Make<CountingSink>();
    shed->SetOutput(sel);
    sel->SetOutput(sink);
    Rng rng(10);
    for (int i = 0; i < 20000; ++i) {
      shed->Push(Element(T(i, static_cast<int64_t>(rng.Uniform(1000)))));
    }
    return sink->tuples();
  };
  uint64_t with_random = run(false);
  uint64_t with_semantic = run(true);
  // True answer ~2000; semantic keeps all of it, random halves it.
  EXPECT_GT(with_semantic, with_random * 18 / 10);
}

}  // namespace
}  // namespace sqp
