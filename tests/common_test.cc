#include <gtest/gtest.h>

#include "common/schema.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/tuple.h"
#include "common/value.h"

namespace sqp {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  SQP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kOutOfRange);
}

// --- Value ---

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).ToDouble(), 3.0);
  EXPECT_EQ(Value(3.9).ToInt(), 3);
  EXPECT_EQ(Value("xyz").ToInt(), 0);
  EXPECT_DOUBLE_EQ(Value::Null().ToDouble(), 0.0);
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.1), Value(int64_t{3}));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CrossTypeOrderingIsDeterministic) {
  Value i(int64_t{5});
  Value s("5");
  EXPECT_TRUE((i < s) != (s < i));
}

TEST(ValueTest, NumericEqualValuesHashEqual) {
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(Value::Add(Value(int64_t{2}), Value(int64_t{3}))->AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Add(Value(int64_t{2}), Value(0.5))->AsDouble(), 2.5);
  EXPECT_EQ(Value::Mul(Value(int64_t{4}), Value(int64_t{6}))->AsInt(), 24);
  EXPECT_EQ(Value::Div(Value(int64_t{7}), Value(int64_t{2}))->AsInt(), 3);
  EXPECT_EQ(Value::Mod(Value(int64_t{7}), Value(int64_t{3}))->AsInt(), 1);
}

TEST(ValueTest, ArithmeticErrors) {
  EXPECT_FALSE(Value::Add(Value("a"), Value(int64_t{1})).ok());
  EXPECT_FALSE(Value::Div(Value(int64_t{1}), Value(int64_t{0})).ok());
  EXPECT_FALSE(Value::Mod(Value(1.5), Value(int64_t{2})).ok());
  EXPECT_EQ(Value::Div(Value(int64_t{1}), Value(int64_t{0})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

// --- Schema ---

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("z"), -1);
  EXPECT_TRUE(s.RequireField("a").ok());
  EXPECT_EQ(s.RequireField("z").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, OrderingAttribute) {
  auto s = Schema::WithOrdering(
      {{"ts", ValueType::kInt}, {"v", ValueType::kDouble}}, "ts");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->has_ordering());
  EXPECT_EQ(s->ordering_index(), 0);
}

TEST(SchemaTest, OrderingMustBeIntField) {
  auto missing = Schema::WithOrdering({{"v", ValueType::kDouble}}, "ts");
  EXPECT_FALSE(missing.ok());
  auto wrong_type =
      Schema::WithOrdering({{"ts", ValueType::kDouble}}, "ts");
  EXPECT_FALSE(wrong_type.ok());
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a({{"x", ValueType::kInt}});
  Schema b({{"x", ValueType::kInt}});
  Schema c({{"x", ValueType::kDouble}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "x:int");
}

// --- Tuple / Key ---

TEST(TupleTest, Basics) {
  TupleRef t = MakeTuple(5, {Value(int64_t{1}), Value("x")});
  EXPECT_EQ(t->ts(), 5);
  EXPECT_EQ(t->arity(), 2u);
  EXPECT_EQ(t->at(1).AsString(), "x");
  EXPECT_EQ(t->ToString(), "(ts=5, [1, x])");
}

TEST(TupleTest, KeyExtractionAndHash) {
  TupleRef t = MakeTuple(0, {Value(int64_t{1}), Value(int64_t{2}),
                             Value(int64_t{3})});
  Key k1 = ExtractKey(*t, {0, 2});
  Key k2 = ExtractKey(*t, {0, 2});
  Key k3 = ExtractKey(*t, {0, 1});
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(KeyHash()(k1), KeyHash()(k2));
  EXPECT_FALSE(k1 == k3);
}

TEST(TupleTest, MemoryBytesGrowsWithStrings) {
  TupleRef small = MakeTuple(0, {Value(int64_t{1})});
  TupleRef big = MakeTuple(0, {Value(std::string(1000, 'x'))});
  EXPECT_GT(big->MemoryBytes(), small->MemoryBytes() + 900);
}

// --- Strings ---

TEST(StringsTest, SplitJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
}

TEST(StringsTest, CaseAndSearch) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(Contains("hello GNUTELLA world", "GNUTELLA"));
  EXPECT_FALSE(Contains("hello", "world"));
  EXPECT_TRUE(StartsWith("X-Kazaa-IP", "X-Kazaa-"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
}

TEST(StringsTest, StripAndFormat) {
  EXPECT_EQ(StripWhitespace("  x \n"), "x");
  EXPECT_EQ(StrFormat("%d-%s", 5, "a"), "5-a");
  EXPECT_EQ(FormatIpv4(0x0A000001), "10.0.0.1");
}

}  // namespace
}  // namespace sqp
