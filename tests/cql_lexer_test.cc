#include <gtest/gtest.h>

#include "cql/lexer.h"

namespace sqp {
namespace cql {
namespace {

TEST(LexerTest, KeywordsAndIdentifiersLowercased) {
  auto toks = Lex("SELECT srcIP FROM Traffic");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);  // 4 tokens + EOF.
  EXPECT_TRUE((*toks)[0].IsKeyword("select"));
  EXPECT_EQ((*toks)[1].text, "srcip");
  EXPECT_TRUE((*toks)[2].IsKeyword("from"));
  EXPECT_EQ((*toks)[3].text, "traffic");
  EXPECT_EQ((*toks)[4].kind, TokenKind::kEof);
}

TEST(LexerTest, NumericLiterals) {
  auto toks = Lex("42 3.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*toks)[0].int_val, 42);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*toks)[1].double_val, 3.5);
}

TEST(LexerTest, StringLiteralsPreserveCase) {
  auto toks = Lex("'X-Kazaa-'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[0].text, "X-Kazaa-");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto toks = Lex("select 'oops");
  EXPECT_FALSE(toks.ok());
  EXPECT_EQ(toks.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, MultiCharSymbols) {
  auto toks = Lex("a != b <= c >= d <> e");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].IsSymbol("!="));
  EXPECT_TRUE((*toks)[3].IsSymbol("<="));
  EXPECT_TRUE((*toks)[5].IsSymbol(">="));
  EXPECT_TRUE((*toks)[7].IsSymbol("!="));  // <> normalizes to !=.
}

TEST(LexerTest, WindowBrackets) {
  auto toks = Lex("Traffic [range 60]");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].IsSymbol("["));
  EXPECT_TRUE((*toks)[2].IsKeyword("range"));
  EXPECT_EQ((*toks)[3].int_val, 60);
  EXPECT_TRUE((*toks)[4].IsSymbol("]"));
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = Lex("select -- the traffic\n x");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_EQ((*toks)[1].text, "x");
}

TEST(LexerTest, QualifiedNamesSplitOnDot) {
  auto toks = Lex("S.srcIP");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 4u);
  EXPECT_EQ((*toks)[0].text, "s");
  EXPECT_TRUE((*toks)[1].IsSymbol("."));
  EXPECT_EQ((*toks)[2].text, "srcip");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Lex("select @x").ok());
}

TEST(LexerTest, OffsetsRecorded) {
  auto toks = Lex("ab cd");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].pos, 0u);
  EXPECT_EQ((*toks)[1].pos, 3u);
}

}  // namespace
}  // namespace cql
}  // namespace sqp
