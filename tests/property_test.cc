// Cross-cutting randomized invariants that individual module tests
// don't cover: total-order laws for Value, conservation laws for
// queues/operators, and watermark monotonicity through operator chains.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/reorder.h"
#include "exec/select.h"
#include "exec/union.h"
#include "stream/queue.h"

namespace sqp {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(static_cast<int64_t>(rng.UniformRange(-100, 100)));
    case 2:
      return Value(rng.NextDouble() * 200.0 - 100.0);
    default:
      return Value(std::string(1 + rng.Uniform(3), static_cast<char>(
                                                       'a' + rng.Uniform(4))));
  }
}

TEST(ValueOrderPropertyTest, TotalOrderLaws) {
  Rng rng(201);
  for (int trial = 0; trial < 5000; ++trial) {
    Value a = RandomValue(rng), b = RandomValue(rng), c = RandomValue(rng);
    // Antisymmetry.
    EXPECT_FALSE(a < b && b < a);
    // Exactly one of <, ==, > holds.
    int rels = (a < b) + (a == b) + (b < a);
    EXPECT_EQ(rels, 1) << a.ToString() << " vs " << b.ToString();
    // Transitivity.
    if (a < b && b < c) {
      EXPECT_LT(a.Compare(c), 0);
    }
    if (a == b && b == c) {
      EXPECT_TRUE(a == c);
    }
    // Compare consistency with hash for equal values.
    if (a == b) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

TEST(StreamQueuePropertyTest, ConservationUnderRandomOps) {
  Rng rng(202);
  for (uint64_t cap : {0u, 1u, 7u, 64u}) {
    StreamQueue q(cap);
    uint64_t accepted = 0, popped = 0;
    for (int i = 0; i < 5000; ++i) {
      if (rng.Bernoulli(0.6)) {
        if (q.Push(Element(MakeTuple(i, {Value(int64_t{i})})))) ++accepted;
      } else if (q.Pop().has_value()) {
        ++popped;
      }
      // Conservation: everything accepted is either popped or resident.
      EXPECT_EQ(accepted, popped + q.size());
      if (cap > 0) {
        EXPECT_LE(q.size(), cap);
      }
    }
    EXPECT_EQ(q.stats().pushed, accepted);
    EXPECT_EQ(q.stats().popped, popped);
  }
}

TEST(OperatorPropertyTest, SelectConservation) {
  // tuples_in == tuples_out + rejected for any predicate.
  Rng rng(203);
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Gt(Col(0), Lit(int64_t{0})));
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(sink);
  for (int i = 0; i < 10000; ++i) {
    sel->Push(Element(MakeTuple(i, {Value(rng.UniformRange(-5, 5))})));
  }
  EXPECT_EQ(sel->stats().tuples_in, 10000u);
  EXPECT_EQ(sel->stats().tuples_out, sink->tuples());
  EXPECT_LE(sel->stats().tuples_out, sel->stats().tuples_in);
}

TEST(WatermarkPropertyTest, UnionNeverEmitsDecreasingWatermarks) {
  Rng rng(204);
  Plan plan;
  auto* u = plan.Make<UnionOp>();
  std::vector<int64_t> seen;
  auto* sink = plan.Make<CallbackSink>([&](const Element& e) {
    if (e.is_punctuation()) seen.push_back(e.punctuation().ts);
  });
  u->SetOutput(sink);
  int64_t wm[2] = {0, 0};
  for (int i = 0; i < 2000; ++i) {
    int side = rng.Bernoulli(0.5) ? 0 : 1;
    if (rng.Bernoulli(0.3)) {
      wm[side] += static_cast<int64_t>(rng.Uniform(5));
      u->Push(Element(Punctuation::Watermark(wm[side])), side);
    } else {
      u->Push(Element(MakeTuple(i, {Value(int64_t{i})})), side);
    }
  }
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(WatermarkPropertyTest, ReorderedStreamHonorsItsWatermarks) {
  // After SlackReorderOp, no tuple may be emitted with ts <= the last
  // watermark forwarded (the contract downstream windows rely on).
  Rng rng(205);
  Plan plan;
  auto* ro = plan.Make<SlackReorderOp>(8);
  int64_t last_wm = INT64_MIN;
  bool violated = false;
  auto* sink = plan.Make<CallbackSink>([&](const Element& e) {
    if (e.is_punctuation()) {
      last_wm = std::max(last_wm, e.punctuation().ts);
    } else if (e.tuple()->ts() <= last_wm) {
      violated = true;
    }
  });
  ro->SetOutput(sink);
  int64_t base = 0;
  for (int i = 0; i < 5000; ++i) {
    ++base;
    int64_t ts = base - static_cast<int64_t>(rng.Uniform(9));
    ro->Push(Element(MakeTuple(std::max<int64_t>(0, ts),
                               {Value(std::max<int64_t>(0, ts))})));
    if (i % 100 == 99) {
      // Watermark consistent with the slack bound.
      ro->Push(Element(Punctuation::Watermark(base - 9)));
    }
  }
  ro->Flush();
  EXPECT_FALSE(violated);
}

TEST(GroupByPropertyTest, BucketCountsSumToInput) {
  // Sum over all emitted bucket counts equals tuples in, for random
  // timestamps and watermarks interleaved.
  Rng rng(206);
  Plan plan;
  GroupByOptions opt;
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  opt.window_size = 16;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  uint64_t emitted_total = 0;
  auto* sink = plan.Make<CallbackSink>([&](const Element& e) {
    if (e.is_tuple()) {
      emitted_total += static_cast<uint64_t>(e.tuple()->at(1).AsInt());
    }
  });
  gb->SetOutput(sink);
  int64_t ts = 0;
  const int kN = 8000;
  for (int i = 0; i < kN; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(3));
    gb->Push(Element(MakeTuple(ts, {Value(ts)})));
    if (rng.Bernoulli(0.01)) {
      gb->Push(Element(Punctuation::Watermark(ts - 1)));
    }
  }
  gb->Flush();
  EXPECT_EQ(emitted_total, static_cast<uint64_t>(kN));
}

}  // namespace
}  // namespace sqp
