#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "arch/cql_decompose.h"
#include "common/rng.h"
#include "cql/planner.h"
#include "exec/plan.h"
#include "stream/generators.h"
#include "synopsis/misra_gries.h"

namespace sqp {
namespace {

// --- Distributed partial aggregation (slide 55): K observation points,
// each aggregating its own partition, merged at one high level. ---

class DistributedAggTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedAggTest, PartitionedNodesMergeExactly) {
  int num_nodes = GetParam();
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5},
                               {AggKind::kSum, 2, 0.5},
                               {AggKind::kMax, 2, 0.5}};
  std::vector<std::unique_ptr<PartialAggregator>> nodes;
  for (int k = 0; k < num_nodes; ++k) {
    nodes.push_back(std::make_unique<PartialAggregator>(
        32, std::vector<int>{1}, aggs));
  }
  FinalAggregator high(aggs);
  PartialAggregator reference(0, {1}, aggs);
  FinalAggregator ref_high(aggs);

  Rng rng(101);
  std::vector<PartialGroup> partials;
  for (int64_t i = 0; i < 20000; ++i) {
    TupleRef t = MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(200))),
            Value(static_cast<int64_t>(rng.Uniform(1000)))});
    // Route by arrival (e.g. per-interface taps see disjoint packets).
    size_t node = static_cast<size_t>(i) % static_cast<size_t>(num_nodes);
    nodes[node]->Add(*t, &partials);
    for (auto& g : partials) high.Merge(std::move(g));
    partials.clear();
    reference.Add(*t, &partials);
  }
  for (auto& node : nodes) {
    node->Flush(&partials);
    for (auto& g : partials) high.Merge(std::move(g));
    partials.clear();
  }
  reference.Flush(&partials);
  for (auto& g : partials) ref_high.Merge(std::move(g));

  auto collect = [](const FinalAggregator& f) {
    std::map<int64_t, std::vector<double>> out;
    for (const auto& [key, vals] : f.Results()) {
      std::vector<double> row;
      for (const Value& v : vals) row.push_back(v.ToDouble());
      out[key.parts[0].AsInt()] = row;
    }
    return out;
  };
  EXPECT_EQ(collect(high), collect(ref_high));
}

INSTANTIATE_TEST_SUITE_P(Nodes, DistributedAggTest,
                         ::testing::Values(2, 4, 16));

// --- Distributed heavy hitters via Misra-Gries merge ([BO03]-flavour) ---

TEST(DistributedTopKTest, MergedSummaryFindsGlobalHeavyHitter) {
  // Item 42 is heavy overall but only moderately heavy at each site.
  MisraGries sites[4] = {MisraGries(50), MisraGries(50), MisraGries(50),
                         MisraGries(50)};
  Rng rng(102);
  uint64_t truth42 = 0;
  for (int i = 0; i < 40000; ++i) {
    int site = i % 4;
    if (i % 5 == 0) {
      sites[site].Add(Value(int64_t{42}));
      ++truth42;
    } else {
      sites[site].Add(Value(static_cast<int64_t>(100 + rng.Uniform(5000))));
    }
  }
  MisraGries merged(50);
  for (auto& s : sites) merged.Merge(s);
  EXPECT_EQ(merged.n(), 40000u);
  // Undercount bounded by n/k.
  uint64_t est = merged.Estimate(Value(int64_t{42}));
  EXPECT_GT(est, 0u);
  EXPECT_LE(est, truth42);
  EXPECT_GE(est + merged.n() / merged.k(), truth42);
  // 42 dominates the merged heavy-hitter list.
  auto hh = merged.HeavyHitters(merged.n() / 10);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].first.AsInt(), 42);
}

TEST(DistributedTopKTest, MergeRespectsCapacity) {
  MisraGries a(10), b(10);
  Rng rng(103);
  for (int i = 0; i < 5000; ++i) {
    a.Add(Value(static_cast<int64_t>(rng.Uniform(100))));
    b.Add(Value(static_cast<int64_t>(rng.Uniform(100))));
  }
  a.Merge(b);
  EXPECT_LE(a.num_counters(), 10u);
}

// --- CQL-level query decomposition (slide 54) ---

cql::Catalog PacketCatalog() {
  cql::Catalog cat;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  EXPECT_TRUE(cat.Register("packets", gen::PacketSchema(), domains).ok());
  return cat;
}

TEST(CqlDecomposeTest, MatchesDirectExecution) {
  cql::Catalog cat = PacketCatalog();
  const char* kQuery =
      "select tb, src_ip, count(*), sum(len), avg(len) from packets "
      "where protocol = 6 group by ts/100 as tb, src_ip";

  // Direct single-level execution through the CQL planner.
  auto direct = cql::Compile(kQuery, cat);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  CollectorSink direct_sink;
  (*direct)->AttachSink(&direct_sink);

  // Decomposed 3-level execution.
  auto decomposed = DecomposeCqlAggregate(kQuery, cat, /*low_slots=*/8);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status().ToString();
  EXPECT_NE(decomposed->config.prefilter, nullptr);  // WHERE pushed down.
  decomposed->config.low_node.capacity_per_tick = 1e9;
  decomposed->config.high_node.capacity_per_tick = 1e9;
  auto sys = ThreeLevelSystem::Make(decomposed->input_schema,
                                    decomposed->config);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  gen::PacketGenerator tap(gen::PacketOptions{});
  for (int i = 0; i < 30000; ++i) {
    TupleRef p = tap.Next();
    (*direct)->Push(Element(p));
    (*sys)->Arrive(p);
    (*sys)->Tick();
  }
  (*direct)->Finish();
  (*sys)->Drain();

  // Compare (bucket, src) -> (count, sum, avg).
  std::map<std::pair<int64_t, int64_t>, std::vector<double>> d_rows, s_rows;
  for (const TupleRef& r : direct_sink.tuples()) {
    d_rows[{r->at(0).AsInt(), r->at(1).AsInt()}] = {
        r->at(2).ToDouble(), r->at(3).ToDouble(), r->at(4).ToDouble()};
  }
  for (const TupleRef& r : (*sys)->db().table()) {
    // DB layout: [ts, src, count, sum, avg]; ts = bucket start.
    s_rows[{r->at(0).AsInt() / 100, r->at(1).AsInt()}] = {
        r->at(2).ToDouble(), r->at(3).ToDouble(), r->at(4).ToDouble()};
  }
  ASSERT_EQ(d_rows.size(), s_rows.size());
  for (const auto& [key, vals] : d_rows) {
    auto it = s_rows.find(key);
    ASSERT_NE(it, s_rows.end());
    for (size_t i = 0; i < vals.size(); ++i) {
      EXPECT_NEAR(it->second[i], vals[i], 1e-9);
    }
  }
  // The low level genuinely ran bounded: evictions occurred.
  EXPECT_GT((*sys)->partial_agg().agg_stats().evictions, 0u);
}

TEST(CqlDecomposeTest, Rejections) {
  cql::Catalog cat = PacketCatalog();
  // No window.
  EXPECT_FALSE(DecomposeCqlAggregate(
                   "select src_ip, count(*) from packets group by src_ip", cat)
                   .ok());
  // Holistic aggregate.
  EXPECT_FALSE(
      DecomposeCqlAggregate("select tb, median(len) from packets "
                            "group by ts/60 as tb",
                            cat)
          .ok());
  // HAVING (must run over final values).
  EXPECT_FALSE(DecomposeCqlAggregate(
                   "select tb, count(*) from packets group by ts/60 as tb "
                   "having count(*) > 5",
                   cat)
                   .ok());
  // Unparseable.
  EXPECT_FALSE(DecomposeCqlAggregate("selec x", cat).ok());
}

TEST(CqlDecomposeTest, HavingOverDbSink) {
  // The documented pattern: decompose without HAVING, apply it as a
  // one-time query over the stored relation.
  cql::Catalog cat = PacketCatalog();
  auto decomposed = DecomposeCqlAggregate(
      "select tb, src_ip, count(*) from packets group by ts/100 as tb, src_ip",
      cat, 16);
  ASSERT_TRUE(decomposed.ok());
  decomposed->config.low_node.capacity_per_tick = 1e9;
  decomposed->config.high_node.capacity_per_tick = 1e9;
  auto sys = ThreeLevelSystem::Make(decomposed->input_schema,
                                    decomposed->config);
  ASSERT_TRUE(sys.ok());
  gen::PacketGenerator tap(gen::PacketOptions{});
  for (int i = 0; i < 20000; ++i) {
    (*sys)->Arrive(tap.Next());
    (*sys)->Tick();
  }
  (*sys)->Drain();
  // HAVING count(*) > 5 over the DB: col 2 is the count.
  auto heavy = (*sys)->db().Scan(Gt(Col(2), Lit(5.0)));
  for (const TupleRef& r : heavy) {
    EXPECT_GT(r->at(2).ToDouble(), 5.0);
  }
  EXPECT_LT(heavy.size(), (*sys)->db().size());
}

}  // namespace
}  // namespace sqp
