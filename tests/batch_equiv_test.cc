// Batch-path equivalence suite: for every operator with a PushBatch
// override (and for whole chains under both executors), the batched
// execution path must produce output identical element-for-element to
// the per-element path — including punctuation ordering. Streams are
// seeded-random with interleaved watermarks so the batches exercised
// mix tuples and punctuations at arbitrary offsets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/sym_hash_join.h"
#include "exec/window_agg.h"
#include "sched/parallel_executor.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "stream/element_batch.h"

namespace sqp {
namespace {

/// Records the exact interleaved arrival order of tuples and
/// punctuations (CollectorSink splits them, which can't show an
/// ordering violation between the two kinds).
class RecordingSink : public Operator {
 public:
  RecordingSink() : Operator("record") {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      log_.push_back("P:" + std::to_string(e.punctuation().ts));
    } else {
      log_.push_back("T:" + e.tuple()->ToString());
    }
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

/// Seeded stream over schema [pair_id, side, v] with a watermark every
/// `punct_every` tuples (interleaved mid-stream, not appended).
std::vector<Element> MakeStream(uint64_t seed, int n, int punct_every) {
  Rng rng(seed);
  std::vector<Element> out;
  out.reserve(static_cast<size_t>(n + n / punct_every + 1));
  for (int64_t i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next() % 97);
    out.push_back(
        Element(MakeTuple(i, {Value(i / 2), Value(i % 2), Value(v)})));
    if ((i + 1) % punct_every == 0) {
      out.push_back(Element(Punctuation::Watermark(i)));
    }
  }
  return out;
}

/// Drives `entry` with the whole stream one element at a time.
void DrivePerElement(Operator* entry, const std::vector<Element>& input) {
  for (const Element& e : input) entry->Process(e, 0);
  entry->Flush();
}

/// Drives `entry` with the stream sliced into ElementBatch runs of
/// `batch_size`.
void DriveBatched(Operator* entry, const std::vector<Element>& input,
                  size_t batch_size) {
  ElementBatch batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < input.size();) {
    batch.clear();
    for (size_t j = 0; j < batch_size && i < input.size(); ++j, ++i) {
      batch.push_back(input[i]);
    }
    entry->ProcessBatch(batch, 0);
  }
  entry->Flush();
}

/// Unary wrapper routing elements into a symmetric hash join's ports by
/// the `side` column (executors and chain drivers are single-input).
class SelfJoinStage : public Operator {
 public:
  SelfJoinStage()
      : Operator("self-join"),
        join_({0}, {0}),
        bridge_([this](const Element& e) { Emit(e); }) {
    join_.SetOutput(&bridge_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      Emit(e);
      return;
    }
    join_.Push(e, static_cast<int>(e.tuple()->at(1).AsInt()));
  }

  void Flush() override {
    join_.Flush();
    join_.Flush();
    Operator::Flush();
  }

 private:
  SymmetricHashJoinOp join_;
  CallbackSink bridge_;
};

const size_t kBatchSizes[] = {1, 3, 8, 64, 256};

TEST(BatchEquivTest, SelectMatchesPerElement) {
  std::vector<Element> input = MakeStream(11, 1500, 37);
  SelectOp ref(Gt(Col(2), Lit(int64_t{40})));
  RecordingSink ref_sink;
  ref.SetOutput(&ref_sink);
  DrivePerElement(&ref, input);

  for (size_t bs : kBatchSizes) {
    SelectOp op(Gt(Col(2), Lit(int64_t{40})));
    RecordingSink sink;
    op.SetOutput(&sink);
    DriveBatched(&op, input, bs);
    EXPECT_EQ(sink.log(), ref_sink.log()) << "batch_size=" << bs;
    EXPECT_EQ(op.stats().tuples_in, ref.stats().tuples_in);
    EXPECT_EQ(op.stats().puncts_out, ref.stats().puncts_out);
  }
}

TEST(BatchEquivTest, ProjectMatchesPerElement) {
  std::vector<Element> input = MakeStream(12, 1200, 41);
  auto make = [] {
    return std::make_unique<ProjectOp>(
        std::vector<ExprRef>{Col(2), Col(0)});
  };
  auto ref = make();
  RecordingSink ref_sink;
  ref->SetOutput(&ref_sink);
  DrivePerElement(ref.get(), input);

  for (size_t bs : kBatchSizes) {
    auto op = make();
    RecordingSink sink;
    op->SetOutput(&sink);
    DriveBatched(op.get(), input, bs);
    EXPECT_EQ(sink.log(), ref_sink.log()) << "batch_size=" << bs;
  }
}

TEST(BatchEquivTest, DistinctMatchesPerElement) {
  std::vector<Element> input = MakeStream(13, 2000, 29);
  auto make = [] {
    return std::make_unique<DistinctOp>(std::vector<int>{2}, int64_t{256});
  };
  auto ref = make();
  RecordingSink ref_sink;
  ref->SetOutput(&ref_sink);
  DrivePerElement(ref.get(), input);

  for (size_t bs : kBatchSizes) {
    auto op = make();
    RecordingSink sink;
    op->SetOutput(&sink);
    DriveBatched(op.get(), input, bs);
    EXPECT_EQ(sink.log(), ref_sink.log()) << "batch_size=" << bs;
  }
}

TEST(BatchEquivTest, GroupByAggregateMatchesPerElement) {
  // Watermarks close buckets mid-stream, so close-out emissions must
  // land at the same position in the output either way.
  std::vector<Element> input = MakeStream(14, 1800, 23);
  auto make = [] {
    GroupByOptions opt;
    opt.key_cols = {1};
    opt.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kSum, 2, 0.5}};
    opt.window_size = 128;
    return std::make_unique<GroupByAggregateOp>(opt);
  };
  auto ref = make();
  RecordingSink ref_sink;
  ref->SetOutput(&ref_sink);
  DrivePerElement(ref.get(), input);

  for (size_t bs : kBatchSizes) {
    auto op = make();
    RecordingSink sink;
    op->SetOutput(&sink);
    DriveBatched(op.get(), input, bs);
    EXPECT_EQ(sink.log(), ref_sink.log()) << "batch_size=" << bs;
  }
}

TEST(BatchEquivTest, JoinChainMatchesPerElement) {
  // select -> project -> self-join: the join expands batches (one input
  // can produce many outputs), exercising the Emit coalescing buffer.
  std::vector<Element> input = MakeStream(15, 1600, 31);
  auto build = [](Operator** entry, RecordingSink* sink,
                  std::vector<std::unique_ptr<Operator>>* own) {
    auto sel = std::make_unique<SelectOp>(Gt(Col(2), Lit(int64_t{5})));
    auto proj = std::make_unique<ProjectOp>(
        std::vector<ExprRef>{Col(0), Col(1), Col(2)});
    auto join = std::make_unique<SelfJoinStage>();
    sel->SetOutput(proj.get());
    proj->SetOutput(join.get());
    join->SetOutput(sink);
    *entry = sel.get();
    own->push_back(std::move(sel));
    own->push_back(std::move(proj));
    own->push_back(std::move(join));
  };

  Operator* ref_entry = nullptr;
  RecordingSink ref_sink;
  std::vector<std::unique_ptr<Operator>> ref_own;
  build(&ref_entry, &ref_sink, &ref_own);
  DrivePerElement(ref_entry, input);

  for (size_t bs : kBatchSizes) {
    Operator* entry = nullptr;
    RecordingSink sink;
    std::vector<std::unique_ptr<Operator>> own;
    build(&entry, &sink, &own);
    DriveBatched(entry, input, bs);
    EXPECT_EQ(sink.log(), ref_sink.log()) << "batch_size=" << bs;
  }
}

TEST(BatchEquivTest, EmitCoalescingOverflowPreservesOrder) {
  // Every tuple shares one join key, so late arrivals each produce
  // hundreds of matches: one input batch expands far past the emit
  // buffer cap (1024), forcing mid-batch overflow flushes.
  std::vector<Element> input;
  for (int64_t i = 0; i < 600; ++i) {
    input.push_back(
        Element(MakeTuple(i, {Value(int64_t{7}), Value(i % 2), Value(i)})));
    if ((i + 1) % 100 == 0) {
      input.push_back(Element(Punctuation::Watermark(i)));
    }
  }
  auto run = [&](size_t bs, std::vector<std::string>* log) {
    SelfJoinStage join;
    RecordingSink sink;
    join.SetOutput(&sink);
    if (bs == 0) {
      DrivePerElement(&join, input);
    } else {
      DriveBatched(&join, input, bs);
    }
    *log = sink.log();
  };
  std::vector<std::string> ref;
  run(0, &ref);
  ASSERT_GT(ref.size(), 2048u);  // The cap is actually exercised.
  for (size_t bs : {size_t{64}, size_t{600}}) {
    std::vector<std::string> got;
    run(bs, &got);
    EXPECT_EQ(got, ref) << "batch_size=" << bs;
  }
}

// ---------------------------------------------------------------------------
// Executor-level equivalence.

std::vector<Operator*> MakeExecChain(
    std::vector<std::unique_ptr<Operator>>* own) {
  auto sel = std::make_unique<SelectOp>(Gt(Col(2), Lit(int64_t{3})));
  auto proj = std::make_unique<ProjectOp>(
      std::vector<ExprRef>{Col(0), Col(1), Col(2)});
  auto join = std::make_unique<SelfJoinStage>();
  auto agg = std::make_unique<WindowAggregateOp>(
      WindowSpec::TimeSliding(64),
      std::vector<AggSpec>{{AggKind::kCount, -1, 0.5},
                           {AggKind::kSum, 2, 0.5}});
  std::vector<Operator*> chain = {sel.get(), proj.get(), join.get(),
                                  agg.get()};
  own->push_back(std::move(sel));
  own->push_back(std::move(proj));
  own->push_back(std::move(join));
  own->push_back(std::move(agg));
  return chain;
}

std::vector<std::string> SortedLog(const RecordingSink& sink) {
  std::vector<std::string> s = sink.log();
  std::sort(s.begin(), s.end());
  return s;
}

TEST(BatchEquivTest, ParallelExecutorBatchedMatchesPerElementDelivery) {
  std::vector<Element> input = MakeStream(16, 3000, 43);

  auto run = [&](size_t max_batch, Backpressure bp, size_t queue_limit,
                 RecordingSink* sink, uint64_t* dropped) {
    std::vector<std::unique_ptr<Operator>> own;
    std::vector<Operator*> chain = MakeExecChain(&own);
    std::vector<ParallelExecutor::Stage> stages;
    for (Operator* op : chain) {
      ParallelExecutor::Stage s;
      s.op = op;
      s.queue_limit = queue_limit;
      s.backpressure = bp;
      s.max_batch = max_batch;
      stages.push_back(s);
    }
    ParallelExecutor exec(stages, sink);
    exec.Start();
    for (const Element& e : input) exec.Arrive(e);
    exec.Drain();
    *dropped = exec.dropped();
    // Batched stages report delivery batches; per-element stages don't.
    sched::StageStats s0 = exec.stage_stats(0);
    if (max_batch > 1) {
      EXPECT_GT(s0.batches, 0u);
      EXPECT_LE(s0.batches, s0.processed);
    } else {
      EXPECT_EQ(s0.batches, 0u);
    }
  };

  RecordingSink ref;
  uint64_t ref_dropped = 0;
  run(1, Backpressure::kBlock, 64, &ref, &ref_dropped);
  ASSERT_EQ(ref_dropped, 0u);

  for (size_t mb : {size_t{8}, size_t{64}, size_t{256}}) {
    RecordingSink got;
    uint64_t dropped = 0;
    run(mb, Backpressure::kBlock, 64, &got, &dropped);
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(SortedLog(got), SortedLog(ref)) << "max_batch=" << mb;
  }

  // Drop-mode backpressure with a bound generous enough to never shed:
  // batched delivery must not introduce loss or change the output.
  RecordingSink drop_mode;
  uint64_t drop_dropped = 0;
  run(64, Backpressure::kDropNewest, 100000, &drop_mode, &drop_dropped);
  EXPECT_EQ(drop_dropped, 0u);
  EXPECT_EQ(SortedLog(drop_mode), SortedLog(ref));
}

TEST(BatchEquivTest, QueuedExecutorBatchedDeliveryMatches) {
  std::vector<Element> input = MakeStream(17, 2500, 53);

  auto run = [&](size_t max_batch, RecordingSink* sink) {
    std::vector<std::unique_ptr<Operator>> own;
    std::vector<Operator*> chain = MakeExecChain(&own);
    std::vector<QueuedExecutor::Stage> stages;
    for (Operator* op : chain) {
      QueuedExecutor::Stage s;
      s.op = op;
      s.max_batch = max_batch;
      stages.push_back(s);
    }
    QueuedExecutor exec(stages, sink, MakeFifoPolicy());
    for (const Element& e : input) exec.Arrive(e);
    exec.Tick(1e15);
    exec.Drain();
  };

  RecordingSink ref;
  run(1, &ref);
  for (size_t mb : {size_t{16}, size_t{64}}) {
    RecordingSink got;
    run(mb, &got);
    // The serial executor is deterministic: exact order must match.
    EXPECT_EQ(got.log(), ref.log()) << "max_batch=" << mb;
  }
}

}  // namespace
}  // namespace sqp
