// Equivalence proofs for key-partitioned execution: the merged output of
// a ShardedOp must be the serial operator's output up to inter-shard
// reordering — bit-identical as a multiset of rows — and punctuation
// ordering must still be trustworthy downstream.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "arch/engine.h"
#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/punct_groupby.h"
#include "exec/sharded_op.h"
#include "exec/sharding.h"
#include "exec/window_join.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t key, int64_t payload = 0) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(payload)});
}

std::multiset<std::string> Rows(const CollectorSink& s) {
  std::multiset<std::string> out;
  for (const TupleRef& t : s.tuples()) out.insert(t->ToString());
  return out;
}

std::multiset<std::string> Rows(const std::vector<TupleRef>& ts) {
  std::multiset<std::string> out;
  for (const TupleRef& t : ts) out.insert(t->ToString());
  return out;
}

BinaryWindowJoinOp::Options JoinOpts() {
  BinaryWindowJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.left_window = WindowSpec::TimeSliding(50);
  o.right_window = WindowSpec::TimeSliding(50);
  return o;
}

/// Drives the same element sequence into both a serial operator and its
/// sharded counterpart: interleaved two-port tuples with periodic
/// watermarks, then the binary flush protocol.
template <typename PushFn>
void DriveJoinWorkload(PushFn push, uint64_t seed, int n, int keys) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    int64_t ts = i / 2;
    int port = static_cast<int>(rng.Uniform(2));
    int64_t key = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(keys)));
    push(Element(T(ts, key, i)), port);
    if (i % 256 == 255) {
      push(Element(Punctuation::Watermark(ts - 80)), 0);
    }
  }
}

TEST(ShardEquivTest, WindowJoinDisjointMatchesSerial) {
  auto opts = JoinOpts();
  Plan sp;
  auto* serial = sp.Make<BinaryWindowJoinOp>(opts);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}, {1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<BinaryWindowJoinOp>(opts); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  DriveJoinWorkload([&](const Element& e, int p) { serial->Push(e, p); }, 11,
                    4000, 40);
  DriveJoinWorkload([&](const Element& e, int p) { sharded->Push(e, p); }, 11,
                    4000, 40);
  serial->Flush();
  serial->Flush();
  sharded->Flush();
  sharded->Flush();

  EXPECT_GT(ssink->count(), 0u);
  EXPECT_EQ(Rows(*ssink), Rows(*psink));
  EXPECT_EQ(sharded->merged_tuples(), psink->count());
  EXPECT_EQ(sharded->dropped(), 0u);
  EXPECT_FALSE(sharded->running());
}

TEST(ShardEquivTest, WindowJoinReplicatedMatchesSerial) {
  auto opts = JoinOpts();
  Plan sp;
  auto* serial = sp.Make<BinaryWindowJoinOp>(opts);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 3;
  so.routing = ShardRouting::kReplicated;
  so.key_cols = {{1}, {1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<BinaryWindowJoinOp>(opts); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  DriveJoinWorkload([&](const Element& e, int p) { serial->Push(e, p); }, 23,
                    3000, 16);
  DriveJoinWorkload([&](const Element& e, int p) { sharded->Push(e, p); }, 23,
                    3000, 16);
  serial->Flush();
  serial->Flush();
  sharded->Flush();
  sharded->Flush();

  EXPECT_GT(ssink->count(), 0u);
  // Replicated routing: each shard joins its slice of the left stream
  // against the full right stream — every pair exactly once.
  EXPECT_EQ(Rows(*ssink), Rows(*psink));
  // The broadcast side's ingest amplification is visible in routed
  // counts: total routed exceeds elements pushed.
  uint64_t routed = 0;
  for (int i = 0; i < 3; ++i) routed += sharded->shard_stats(i).routed;
  EXPECT_GT(routed, sharded->stats().tuples_in);
}

TEST(ShardEquivTest, SkewedKeysStillMatchAndReportSkew) {
  auto opts = JoinOpts();
  Plan sp;
  auto* serial = sp.Make<BinaryWindowJoinOp>(opts);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}, {1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<BinaryWindowJoinOp>(opts); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  auto drive = [](auto push) {
    Rng rng(5);
    ZipfGenerator zipf(64, 1.4);
    for (int i = 0; i < 3000; ++i) {
      int64_t ts = i / 2;
      int port = static_cast<int>(rng.Uniform(2));
      int64_t key = static_cast<int64_t>(zipf.Next(rng));
      push(Element(T(ts, key, i)), port);
    }
  };
  drive([&](const Element& e, int p) { serial->Push(e, p); });
  drive([&](const Element& e, int p) { sharded->Push(e, p); });
  serial->Flush();
  serial->Flush();
  sharded->Flush();
  sharded->Flush();

  EXPECT_EQ(Rows(*ssink), Rows(*psink));
  // Zipf(1.4) hammers the hot key's shard; the gauge must say so.
  EXPECT_GT(sharded->SkewRatio(), 1.2);
}

TEST(ShardEquivTest, WindowedGroupByMatchesSerial) {
  GroupByOptions g;
  g.key_cols = {1};
  g.aggs = {AggSpec{AggKind::kCount, -1, 0.5}, AggSpec{AggKind::kSum, 2, 0.5}};
  g.window_size = 100;

  Plan sp;
  auto* serial = sp.Make<GroupByAggregateOp>(g);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<GroupByAggregateOp>(g); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  auto drive = [](auto push) {
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
      push(Element(T(i / 4, static_cast<int64_t>(rng.Uniform(32)), i % 10)));
      if (i % 512 == 511) push(Element(Punctuation::Watermark(i / 4 - 150)));
    }
  };
  drive([&](const Element& e) { serial->Push(e, 0); });
  drive([&](const Element& e) { sharded->Push(e, 0); });
  serial->Flush();
  sharded->Flush();

  EXPECT_GT(ssink->count(), 0u);
  // Bucket-start timestamps are deterministic, every group lives wholly
  // on one shard: rows must be bit-identical after reordering.
  EXPECT_EQ(Rows(*ssink), Rows(*psink));
}

TEST(ShardEquivTest, PunctuationGroupByCloseKeyMatchesSerial) {
  std::vector<AggSpec> aggs = {AggSpec{AggKind::kCount, -1, 0.5},
                               AggSpec{AggKind::kMax, 2, 0.5}};

  Plan sp;
  auto* serial = sp.Make<PunctuationGroupByOp>(1, aggs);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<PunctuationGroupByOp>(1, aggs); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  auto drive = [](auto push) {
    Rng rng(29);
    for (int i = 0; i < 4000; ++i) {
      int64_t key = static_cast<int64_t>(rng.Uniform(50));
      push(Element(T(i, key, i % 100)));
      if (i % 7 == 6) {
        // Close a random key: data-dependent window extent, routed to
        // the shard owning that key's accumulator.
        push(Element(Punctuation::CloseKey(
            i, Value(static_cast<int64_t>(rng.Uniform(50))))));
      }
    }
  };
  drive([&](const Element& e) { serial->Push(e, 0); });
  drive([&](const Element& e) { sharded->Push(e, 0); });
  serial->Flush();
  sharded->Flush();

  EXPECT_GT(ssink->count(), 0u);
  EXPECT_EQ(Rows(*ssink), Rows(*psink));
  // CloseKey punctuations forward exactly once under disjoint routing,
  // same as serial.
  EXPECT_EQ(ssink->punctuations().size(), psink->punctuations().size());
}

/// Order-preserving sink: CollectorSink splits tuples and punctuations
/// into separate vectors, which erases exactly the interleaving the
/// watermark-correctness invariant is about.
class RecordingSink : public Operator {
 public:
  RecordingSink() : Operator("recording-sink") {}
  void Push(const Element& e, int = 0) override {
    CountIn(e);
    log_.push_back(e);
  }
  const std::vector<Element>& log() const { return log_; }

 private:
  std::vector<Element> log_;
};

TEST(ShardEquivTest, NoTupleEverFollowsAWatermarkThatCoversIt) {
  auto opts = JoinOpts();
  Plan pp;
  ShardedOpOptions so;
  so.shards = 4;
  so.key_cols = {{1}, {1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<BinaryWindowJoinOp>(opts); });
  auto* sink = pp.Make<RecordingSink>();
  sharded->SetOutput(sink);

  DriveJoinWorkload([&](const Element& e, int p) { sharded->Push(e, p); }, 41,
                    4000, 24);
  sharded->Flush();
  sharded->Flush();

  // The min-across-shards merge rule's contract, checked on the actual
  // downstream order: once watermark W goes by, no later tuple may carry
  // ts <= W, and watermarks must strictly increase.
  int64_t wm = INT64_MIN;
  size_t wm_count = 0;
  for (const Element& e : sink->log()) {
    if (e.is_punctuation()) {
      if (!e.punctuation().has_key) {
        EXPECT_GT(e.punctuation().ts, wm);
        wm = e.punctuation().ts;
        ++wm_count;
      }
      continue;
    }
    EXPECT_GT(e.ts(), wm) << "tuple emitted after a watermark covering it";
  }
  EXPECT_GT(wm_count, 0u);
}

TEST(ShardEquivTest, ShardsOfOneStillWorkThroughTheFullPath) {
  // The shards=1 configuration is the honest baseline of the scaling
  // benchmark: same queues, same merge, one replica.
  GroupByOptions g;
  g.key_cols = {1};
  g.aggs = {AggSpec{AggKind::kCount, -1, 0.5}};
  g.window_size = 10;

  Plan sp;
  auto* serial = sp.Make<GroupByAggregateOp>(g);
  auto* ssink = sp.Make<CollectorSink>();
  serial->SetOutput(ssink);

  Plan pp;
  ShardedOpOptions so;
  so.shards = 1;
  so.key_cols = {{1}};
  auto* sharded = pp.Make<ShardedOp>(
      so, [&](int) { return std::make_unique<GroupByAggregateOp>(g); });
  auto* psink = pp.Make<CollectorSink>();
  sharded->SetOutput(psink);

  for (int i = 0; i < 500; ++i) {
    serial->Push(Element(T(i, i % 7)), 0);
    sharded->Push(Element(T(i, i % 7)), 0);
  }
  serial->Flush();
  sharded->Flush();
  EXPECT_EQ(Rows(*ssink), Rows(*psink));
}

// --- Plan rewrite (ShardStatefulOps) ---

TEST(ShardRewriteTest, SplicesJoinAndKeepsWiring) {
  Plan plan;
  auto* join = plan.Make<BinaryWindowJoinOp>(JoinOpts());
  auto* sink = plan.Make<CollectorSink>();
  join->SetOutput(sink);

  ShardPlanOptions opts;
  opts.shards = 2;
  auto rewrites = ShardStatefulOps(plan, opts);
  ASSERT_EQ(rewrites.size(), 1u);
  ASSERT_NE(rewrites[0].sharded, nullptr);
  EXPECT_EQ(rewrites[0].original, join);
  EXPECT_EQ(rewrites[0].routing, ShardRouting::kDisjoint);
  // The splice inherited the downstream edge and disconnected the
  // original (it remains plan-owned as the replica template).
  EXPECT_EQ(rewrites[0].sharded->output(), sink);
  EXPECT_EQ(join->output(), nullptr);

  ShardedOp* sh = rewrites[0].sharded;
  for (int i = 0; i < 100; ++i) {
    sh->Push(Element(T(i, i % 5)), i % 2);
  }
  sh->Flush();
  sh->Flush();
  EXPECT_GT(sink->count(), 0u);
}

TEST(ShardRewriteTest, CountWindowAndOuterJoinRefuse) {
  Plan plan;
  auto count_opts = JoinOpts();
  count_opts.left_window = WindowSpec::CountSliding(10);
  plan.Make<BinaryWindowJoinOp>(count_opts);

  auto outer_opts = JoinOpts();
  outer_opts.left_outer = true;
  outer_opts.right_arity = 3;
  plan.Make<BinaryWindowJoinOp>(outer_opts);

  GroupByOptions global;  // No key columns: one group, all shards.
  plan.Make<GroupByAggregateOp>(global);

  ShardPlanOptions opts;
  opts.shards = 4;
  auto rewrites = ShardStatefulOps(plan, opts);
  ASSERT_EQ(rewrites.size(), 3u);
  for (const auto& rw : rewrites) {
    EXPECT_EQ(rw.sharded, nullptr);
    EXPECT_FALSE(rw.reason.empty());
  }
}

TEST(ShardRewriteTest, ShardsOfOneLeavesPlanUntouched) {
  Plan plan;
  auto* join = plan.Make<BinaryWindowJoinOp>(JoinOpts());
  auto* sink = plan.Make<CollectorSink>();
  join->SetOutput(sink);
  ShardPlanOptions opts;
  opts.shards = 1;
  auto rewrites = ShardStatefulOps(plan, opts);
  ASSERT_EQ(rewrites.size(), 1u);
  EXPECT_EQ(rewrites[0].sharded, nullptr);
  EXPECT_EQ(join->output(), sink);
}

// --- Engine-level (CQL) sharding ---

TupleRef Pkt(int64_t ts, int64_t src, int64_t dst, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(dst), Value(int64_t{1}),
                        Value(int64_t{2}), Value(int64_t{6}), Value(len),
                        Value(int64_t{0}), Value(int64_t{0}), Value("")});
}

/// Runs `query` over the same generated packet workload on a serial and
/// a sharded engine and returns (serial rows, sharded rows).
std::pair<std::multiset<std::string>, std::multiset<std::string>>
RunCqlBothWays(const std::string& query, bool join_inputs, bool also_parallel,
               QueryHandle** sharded_handle_out = nullptr,
               StreamEngine* sharded_engine = nullptr) {
  StreamEngine serial;
  StreamEngine local;
  StreamEngine& shard_eng = sharded_engine != nullptr ? *sharded_engine : local;
  for (StreamEngine* e : {&serial, &shard_eng}) {
    EXPECT_TRUE(e->RegisterStream("syn", gen::PacketSchema()).ok());
    EXPECT_TRUE(e->RegisterStream("synack", gen::PacketSchema()).ok());
  }
  auto sq = serial.Submit(query);
  auto pq = shard_eng.Submit(query);
  EXPECT_TRUE(sq.ok()) << sq.status().ToString();
  EXPECT_TRUE(pq.ok()) << pq.status().ToString();
  ShardPlanOptions opts;
  opts.shards = 4;
  EXPECT_TRUE(shard_eng.EnableSharding(*pq, opts).ok());
  EXPECT_TRUE((*pq)->sharded());
  if (also_parallel) {
    EXPECT_TRUE(shard_eng.EnableParallel(*pq).ok());
  }
  if (sharded_handle_out != nullptr) *sharded_handle_out = *pq;

  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    int64_t ts = i / 2;
    TupleRef t = Pkt(ts, static_cast<int64_t>(rng.Uniform(20)),
                     static_cast<int64_t>(rng.Uniform(20)), 100 + i % 50);
    const char* stream =
        join_inputs ? (i % 2 == 0 ? "syn" : "synack") : "syn";
    EXPECT_TRUE(serial.Ingest(stream, t).ok());
    EXPECT_TRUE(shard_eng.Ingest(stream, t).ok());
  }
  serial.FinishAll();
  shard_eng.FinishAll();
  return {Rows((*sq)->results()), Rows((*pq)->results())};
}

TEST(ShardEngineTest, CqlWindowJoinShardedMatchesSerial) {
  auto [serial, sharded] = RunCqlBothWays(
      "select s.ts, a.ts from syn s [range 40], synack a [range 40] "
      "where s.src_ip = a.dst_ip",
      /*join_inputs=*/true, /*also_parallel=*/false);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_EQ(serial, sharded);
}

TEST(ShardEngineTest, CqlGroupByShardedMatchesSerial) {
  auto [serial, sharded] = RunCqlBothWays(
      "select tb, src_ip, count(*), sum(len) from syn "
      "group by ts/60 as tb, src_ip",
      /*join_inputs=*/false, /*also_parallel=*/false);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_EQ(serial, sharded);
}

TEST(ShardEngineTest, ShardingComposesWithParallelExecutor) {
  QueryHandle* h = nullptr;
  StreamEngine eng;
  auto [serial, sharded] = RunCqlBothWays(
      "select s.ts, a.ts from syn s [range 40], synack a [range 40] "
      "where s.src_ip = a.dst_ip",
      /*join_inputs=*/true, /*also_parallel=*/true, &h, &eng);
  EXPECT_EQ(serial, sharded);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->parallel());
  // Sharded plans run whole-query (one stage): the shard workers, not
  // stage splitting, provide the parallelism.
  EXPECT_EQ(h->parallel_executor()->num_stages(), 1u);
}

TEST(ShardEngineTest, ShardMetricsReachTheRegistry) {
  StreamEngine eng;
  ASSERT_TRUE(eng.RegisterStream("syn", gen::PacketSchema()).ok());
  auto q = eng.Submit(
      "select tb, src_ip, count(*) from syn group by ts/60 as tb, src_ip");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ShardPlanOptions opts;
  opts.shards = 2;
  ASSERT_TRUE(eng.EnableSharding(*q, opts).ok());
  ASSERT_TRUE((*q)->sharded());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(eng.Ingest("syn", Pkt(i, i % 10, 0, 100)).ok());
  }
  // Snapshot while the shard workers are live, then again after drain.
  auto live = eng.Metrics().TakeSnapshot();
  eng.FinishAll();
  auto done = eng.Metrics().TakeSnapshot();

  auto count_samples = [](const obs::Snapshot& s, const std::string& name) {
    size_t n = 0;
    for (const auto& smp : s.samples) {
      if (smp.name == name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_samples(live, "sqp_shard_routed_total"), 2u);
  EXPECT_EQ(count_samples(done, "sqp_shard_routed_total"), 2u);
  EXPECT_EQ(count_samples(done, "sqp_shard_skew"), 1u);
  double routed = 0;
  for (const auto& smp : done.samples) {
    if (smp.name == "sqp_shard_routed_total") routed += smp.value;
  }
  EXPECT_GE(routed, 500.0);  // 500 tuples + broadcast flush-side puncts.
}

TEST(ShardEngineTest, OrderingGuardsEnforced) {
  StreamEngine eng;
  ASSERT_TRUE(eng.RegisterStream("syn", gen::PacketSchema()).ok());
  auto q = eng.Submit(
      "select tb, src_ip, count(*) from syn group by ts/60 as tb, src_ip");
  ASSERT_TRUE(q.ok());

  EXPECT_FALSE(eng.EnableSharding(nullptr).ok());
  ShardPlanOptions zero;
  zero.shards = 0;
  EXPECT_FALSE(eng.EnableSharding(*q, zero).ok());

  // EnableParallel first: sharding must refuse (the stage captured the
  // plan edges the rewrite would move).
  ASSERT_TRUE(eng.EnableParallel(*q).ok());
  EXPECT_FALSE(eng.EnableSharding(*q).ok());

  // After the first ingest: refuse as well.
  auto q2 = eng.Submit("select ts from syn where len > 0");
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(eng.Ingest("syn", Pkt(1, 1, 1, 10)).ok());
  EXPECT_FALSE(eng.EnableSharding(*q2).ok());
  eng.FinishAll();
}

TEST(ShardEngineTest, StatelessQueryReportsNothingToShard) {
  StreamEngine eng;
  ASSERT_TRUE(eng.RegisterStream("syn", gen::PacketSchema()).ok());
  auto q = eng.Submit("select ts from syn where len > 10");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(eng.EnableSharding(*q).ok());
  EXPECT_FALSE((*q)->sharded());  // Nothing stateful: plan untouched.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(eng.Ingest("syn", Pkt(i, 1, 1, 100)).ok());
  }
  eng.FinishAll();
  EXPECT_EQ((*q)->result_count(), 10u);
}

}  // namespace
}  // namespace sqp
