// Fuzz-style robustness sweep over the CQL input boundary: every
// hostile input here once crashed (or could crash) the process via an
// uncaught exception or stack overflow. Compile() must return an error
// Status for all of them — never terminate. The query text arrives over
// the network (POST /query), so "it throws" means "a client can kill
// the server".

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cql/planner.h"
#include "stream/generators.h"

namespace sqp {
namespace cql {
namespace {

class CqlFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.Register("packets", gen::PacketSchema()).ok());
  }

  // The property under test: hostile input yields a Status, not a crash.
  void ExpectRejected(const std::string& query) {
    auto compiled = Compile(query, catalog_);
    EXPECT_FALSE(compiled.ok()) << "accepted: " << query.substr(0, 120);
  }

  Catalog catalog_;
};

TEST_F(CqlFuzzTest, OversizedIntLiteralIsLexError) {
  // 20 nines > INT64_MAX: used to escape as std::out_of_range from
  // std::stoll inside the lexer.
  ExpectRejected("select 99999999999999999999 from packets");
  ExpectRejected("select ts from packets where len > 99999999999999999999");
  ExpectRejected(
      "select ts from packets where len > " + std::string(400, '9'));
  // Window sizes and group-by arithmetic lex through the same path.
  ExpectRejected(
      "select count(*) from packets [range 99999999999999999999]");
  ExpectRejected(
      "select tb, count(*) from packets group by "
      "ts/99999999999999999999 as tb");
}

TEST_F(CqlFuzzTest, OversizedDoubleLiteralIsLexError) {
  // A fractional literal whose magnitude overflows double (strtod sets
  // ERANGE and returns inf) — the huge-digit-string analogue of 1e999.
  std::string big(400, '9');
  ExpectRejected("select ts from packets where len > " + big + ".5");
}

TEST_F(CqlFuzzTest, BoundaryIntLiteralsStillLex) {
  // INT64_MAX itself must keep working — the fix rejects overflow, not
  // big-but-valid values.
  auto ok = Compile(
      "select ts from packets where len < 9223372036854775807", catalog_);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(CqlFuzzTest, DeepNestingIsParseError) {
  // Kilobytes of '(' used to recurse the descent parser off the stack —
  // no Status can report a SIGSEGV.
  for (int depth : {300, 5000, 50000}) {
    std::string q = "select ts from packets where " +
                    std::string(depth, '(') + "1" + std::string(depth, ')') +
                    " = 1";
    ExpectRejected(q);
  }
  // Unary chains that recurse without a parenthesis hop.
  std::string minuses;
  for (int i = 0; i < 50000; ++i) minuses += "- ";
  ExpectRejected("select ts from packets where len > " + minuses + "1");
  std::string nots;
  for (int i = 0; i < 50000; ++i) nots += "not ";
  ExpectRejected("select ts from packets where " + nots + "len > 1");
}

TEST_F(CqlFuzzTest, ModerateNestingStillParses) {
  // The depth cap must not reject human-written queries.
  std::string q = "select ts from packets where " + std::string(50, '(') +
                  "len" + std::string(50, ')') + " > 1";
  auto compiled = Compile(q, catalog_);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
}

TEST_F(CqlFuzzTest, TruncatedTokenStreams) {
  // Every prefix of a valid query must fail or succeed cleanly.
  const std::string whole =
      "select tb, protocol, count(*) from packets [range 60 slide 10] "
      "where len > 100 group by ts/60 as tb, protocol having count(*) > 2";
  for (size_t cut = 0; cut < whole.size(); ++cut) {
    auto compiled = Compile(whole.substr(0, cut), catalog_);
    (void)compiled;  // OK or error — just never a crash.
  }
  ExpectRejected("select");
  ExpectRejected("select ts from");
  ExpectRejected("select ts from packets where");
  ExpectRejected("select ts from packets where len >");
  ExpectRejected("select ts from packets [range");
  ExpectRejected("select ts from packets group by");
  ExpectRejected("select count( from packets");
  ExpectRejected("select ts from packets where 'unterminated");
}

TEST_F(CqlFuzzTest, GarbageBytes) {
  ExpectRejected("");
  ExpectRejected("\0x01\x02\x03");
  ExpectRejected("select \x7f\x7f from packets");
  ExpectRejected(std::string(1 << 16, '@'));
  ExpectRejected("select ts from packets where len ?? 3");
  ExpectRejected(";;;;;;;;");
}

}  // namespace
}  // namespace cql
}  // namespace sqp
