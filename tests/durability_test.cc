// sqp::dur end to end: codec framing, archive torn-tail tolerance,
// checkpoint round-trips, and the crash-recovery invariant — a run that
// dies (including by SIGKILL) and recovers from checkpoint + archive
// suffix produces the same result multiset as an uninterrupted run.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/engine.h"
#include "dur/archive.h"
#include "dur/checkpoint.h"
#include "dur/codec.h"
#include "dur/manager.h"
#include "stream/generators.h"

namespace sqp {
namespace {

std::string TempDir(const char* tag) {
  std::string tmpl = std::string(::testing::TempDir()) + "sqp-dur-" + tag +
                     "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return made == nullptr ? std::string() : std::string(made);
}

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{9}),
                        Value(int64_t{1}), Value(int64_t{2}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

std::vector<std::string> Rows(const QueryHandle* q) {
  std::vector<std::string> rows;
  rows.reserve(q->results().size());
  for (const TupleRef& t : q->results()) rows.push_back(t->ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------
// Codec

TEST(DurCodecTest, Crc32KnownVector) {
  const char* s = "123456789";  // The classic CRC-32/IEEE check string.
  EXPECT_EQ(dur::Crc32(s, 9), 0xCBF43926u);
}

TEST(DurCodecTest, ScalarAndValueRoundTrip) {
  dur::BufWriter w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(1ull << 53);
  w.I64(-42);
  w.F64(2.5);
  w.Str("hello");
  w.Val(Value());
  w.Val(Value(int64_t{-9}));
  w.Val(Value(3.25));
  w.Val(Value("streams"));

  dur::BufReader r(w.data().data(), w.data().size());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f = 0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&f).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 53);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f, 2.5);
  EXPECT_EQ(s, "hello");
  Value v;
  ASSERT_TRUE(r.Val(&v).ok());
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(r.Val(&v).ok());
  EXPECT_EQ(v.AsInt(), -9);
  ASSERT_TRUE(r.Val(&v).ok());
  EXPECT_EQ(v.AsDouble(), 3.25);
  ASSERT_TRUE(r.Val(&v).ok());
  EXPECT_EQ(v.AsString(), "streams");
  EXPECT_TRUE(r.done());
}

TEST(DurCodecTest, ElementRoundTripAndTruncation) {
  dur::BufWriter w;
  w.Elem(Element(Pkt(5, 10, 6, 99)));
  w.Elem(Element(Punctuation::CloseKey(7, Value("k"))));

  dur::BufReader r(w.data().data(), w.data().size());
  Element e;
  ASSERT_TRUE(r.Elem(&e).ok());
  ASSERT_TRUE(e.is_tuple());
  EXPECT_EQ(e.tuple()->ts(), 5);
  EXPECT_EQ(e.tuple()->at(6).AsInt(), 99);
  ASSERT_TRUE(r.Elem(&e).ok());
  ASSERT_TRUE(e.is_punctuation());
  EXPECT_TRUE(e.punctuation().has_key);
  EXPECT_EQ(e.punctuation().key.AsString(), "k");

  // Every strict prefix must fail cleanly, never read past the end.
  for (size_t cut = 0; cut < w.size(); ++cut) {
    dur::BufReader short_r(w.data().data(), cut);
    Element dummy;
    Status st = short_r.Elem(&dummy);
    if (cut == 0 || st.ok()) {
      // A prefix that happens to hold the full first element is fine.
      continue;
    }
    EXPECT_FALSE(st.ok());
  }
}

// ---------------------------------------------------------------------
// Archive

TEST(DurArchiveTest, MergesStreamsInGlobalSeqOrder) {
  std::string root = TempDir("merge");
  dur::DurabilityManager mgr(root, {}, nullptr);
  ASSERT_TRUE(mgr.Open().ok());
  // Interleave two streams; seq assignment records the interleaving.
  for (int i = 0; i < 50; ++i) {
    mgr.Append("a", Element(Pkt(i, 1, 6, i)));
    mgr.Append("b", Element(Punctuation::Watermark(i)));
  }
  ASSERT_TRUE(mgr.Flush().ok());

  dur::ArchiveReader reader(root);
  ASSERT_TRUE(reader.Open().ok());
  dur::ArchivedRecord rec;
  uint64_t expect_seq = 1;
  while (true) {
    auto has = reader.Next(&rec);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    EXPECT_EQ(rec.seq, expect_seq);
    EXPECT_EQ(rec.stream, (expect_seq % 2 == 1) ? "a" : "b");
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, 101u);
  EXPECT_EQ(reader.torn_streams(), 0u);
}

TEST(DurArchiveTest, TornTailTruncatesAtLastIntactRecord) {
  std::string root = TempDir("torn");
  dur::DurabilityManager mgr(root, {}, nullptr);
  ASSERT_TRUE(mgr.Open().ok());
  for (int i = 0; i < 10; ++i) mgr.Append("s", Element(Pkt(i, 1, 6, i)));
  ASSERT_TRUE(mgr.Flush().ok());

  // Simulate a crash mid-write: garbage half-frame at the segment tail.
  std::string dir = root + "/streams/s";
  std::vector<std::string> segs;
  ASSERT_TRUE(dur::ListDir(dir, &segs).ok());
  ASSERT_EQ(segs.size(), 1u);
  FILE* f = std::fopen((dir + "/" + segs[0]).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[] = {0x13, 0x37, 0x00, 0x05};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  std::string seg_path = dir + "/" + segs[0];
  struct stat st {};
  ASSERT_EQ(::stat(seg_path.c_str(), &st), 0);
  const off_t torn_size = st.st_size;

  {
    dur::ArchiveReader reader(root);
    ASSERT_TRUE(reader.Open().ok());
    dur::ArchivedRecord rec;
    int n = 0;
    while (true) {
      auto has = reader.Next(&rec);
      ASSERT_TRUE(has.ok());
      if (!*has) break;
      ++n;
    }
    EXPECT_EQ(n, 10);  // All intact records, none invented.
    EXPECT_EQ(reader.torn_streams(), 1u);
  }

  // The reader physically repaired the tail: the garbage is gone and a
  // second pass sees a clean chain.
  ASSERT_EQ(::stat(seg_path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, torn_size - static_cast<off_t>(sizeof(garbage)));
  dur::ArchiveReader again(root);
  ASSERT_TRUE(again.Open().ok());
  dur::ArchivedRecord rec;
  int n = 0;
  while (true) {
    auto has = again.Next(&rec);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    ++n;
  }
  EXPECT_EQ(n, 10);
  EXPECT_EQ(again.torn_streams(), 0u);
}

TEST(DurArchiveTest, TornSegmentDoesNotMaskLaterSegments) {
  std::string root = TempDir("torn-chain");
  // Segment 1 (seqs 1..3) from a writer that "crashed" mid-frame, then a
  // successor segment (seqs 3..5) from the restarted writer — the seq-3
  // overlap mimics a flush retried after a short write.
  {
    dur::ArchiveWriter w(root, "s", /*segment_bytes=*/64u << 20);
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      w.AppendFramed(seq, dur::FrameRecord(seq, Element(Pkt(1, 1, 6, 1))));
    }
    ASSERT_TRUE(w.Flush(false).ok());
  }
  std::vector<std::string> segs;
  ASSERT_TRUE(dur::ListDir(root + "/streams/s", &segs).ok());
  ASSERT_EQ(segs.size(), 1u);
  FILE* f = std::fopen((root + "/streams/s/" + segs[0]).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[] = {0x7F, 0x01, 0x02};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  {
    dur::ArchiveWriter w(root, "s", 64u << 20);
    for (uint64_t seq = 3; seq <= 5; ++seq) {
      w.AppendFramed(seq, dur::FrameRecord(seq, Element(Pkt(1, 1, 6, 1))));
    }
    ASSERT_TRUE(w.Flush(false).ok());
  }

  // The torn frame ends its segment, not the chain: the successor's
  // records still replay, exactly once each.
  dur::ArchiveReader reader(root);
  ASSERT_TRUE(reader.Open().ok());
  dur::ArchivedRecord rec;
  std::vector<uint64_t> seqs;
  while (true) {
    auto has = reader.Next(&rec);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    seqs.push_back(rec.seq);
  }
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(reader.torn_streams(), 1u);
}

TEST(DurManagerTest, AppendSurfacesStickyFlushError) {
  std::string root = TempDir("ioerr") + "/arch";
  // Block the stream's directory slot with a regular file so the
  // segment open fails — a stand-in for any persistent IO error.
  ASSERT_TRUE(dur::MakeDirs(root + "/streams").ok());
  FILE* blocker = std::fopen((root + "/streams/s").c_str(), "wb");
  ASSERT_NE(blocker, nullptr);
  std::fclose(blocker);

  dur::DurabilityOptions opt;
  opt.flush_interval_ms = 0;  // Inline flush: the failure is immediate.
  dur::DurabilityManager mgr(root, opt, nullptr);
  ASSERT_TRUE(mgr.Open().ok());
  auto first = mgr.Append("s", Element(Pkt(1, 1, 6, 1)));
  EXPECT_FALSE(first.ok());  // The inline flush it triggered failed.
  auto second = mgr.Append("s", Element(Pkt(2, 1, 6, 2)));
  EXPECT_FALSE(second.ok());  // Sticky: refused outright, not buffered.
  EXPECT_EQ(mgr.appended(), 0u);
  EXPECT_FALSE(mgr.Flush().ok());
}

// ---------------------------------------------------------------------
// Checkpoint files

TEST(DurCheckpointTest, RoundTripAndPrune) {
  std::string root = TempDir("ckpt");
  for (uint64_t id = 1; id <= 4; ++id) {
    dur::Checkpoint c;
    c.id = id;
    c.position = id * 100;
    c.next_seq = id * 100 + 1;
    dur::QueryCheckpoint qc;
    qc.text = "select ts from s";
    qc.included = true;
    qc.op_states = {"state-" + std::to_string(id), ""};
    c.queries.push_back(qc);
    ASSERT_TRUE(dur::WriteCheckpoint(root, c, /*keep=*/2).ok());
  }
  auto latest = dur::ReadLatestCheckpoint(root);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->id, 4u);
  EXPECT_EQ(latest->position, 400u);
  ASSERT_EQ(latest->queries.size(), 1u);
  EXPECT_TRUE(latest->queries[0].included);
  ASSERT_EQ(latest->queries[0].op_states.size(), 2u);
  EXPECT_EQ(latest->queries[0].op_states[0], "state-4");
  // keep=2 pruned the first two files.
  std::vector<std::string> files;
  ASSERT_TRUE(dur::ListDir(root + "/ckpt", &files).ok());
  EXPECT_EQ(files.size(), 2u);
}

TEST(DurCheckpointTest, CorruptLatestFallsBackToPrevious) {
  std::string root = TempDir("ckpt-corrupt");
  for (uint64_t id = 1; id <= 2; ++id) {
    dur::Checkpoint c;
    c.id = id;
    c.position = id;
    c.next_seq = id + 1;
    ASSERT_TRUE(dur::WriteCheckpoint(root, c, 4).ok());
  }
  std::vector<std::string> files;
  ASSERT_TRUE(dur::ListDir(root + "/ckpt", &files).ok());
  ASSERT_EQ(files.size(), 2u);
  // Flip a byte in the newest file's body.
  std::string newest = root + "/ckpt/" + files.back();
  FILE* f = std::fopen(newest.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  std::fputc(0x5A, f);
  std::fclose(f);

  auto latest = dur::ReadLatestCheckpoint(root);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->id, 1u);
}

// ---------------------------------------------------------------------
// Engine recovery

constexpr char kAggQuery[] =
    "select tb, protocol, count(*), sum(len) from packets "
    "group by ts/10 as tb, protocol";

void IngestRange(StreamEngine& engine, int from, int to) {
  for (int i = from; i < to; ++i) {
    ASSERT_TRUE(
        engine.Ingest("packets", Pkt(i, i % 7, i % 2 == 0 ? 6 : 17, i % 512))
            .ok());
  }
}

std::vector<std::string> ReferenceRows(int tuples) {
  StreamEngine ref;
  EXPECT_TRUE(ref.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = ref.Submit(kAggQuery);
  EXPECT_TRUE(q.ok());
  IngestRange(ref, 0, tuples);
  ref.FinishAll();
  return Rows(*q);
}

std::vector<std::string> RecoverRows(const std::string& dir,
                                     bool use_checkpoint,
                                     RecoveryReport* report = nullptr) {
  StreamEngine engine;
  EXPECT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit(kAggQuery);
  EXPECT_TRUE(q.ok());
  dur::DurabilityOptions opt;
  opt.use_checkpoint = use_checkpoint;
  Status st = engine.EnableDurability(dir, opt);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (report != nullptr) *report = engine.recovery_report();
  engine.FinishAll();
  return Rows(*q);
}

TEST(EngineDurabilityTest, FinishedRunReplaysIdentically) {
  std::string dir = TempDir("finished");
  const int kTuples = 500;
  std::vector<std::string> live;
  {
    StreamEngine engine;
    ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
    auto q = engine.Submit(kAggQuery);
    ASSERT_TRUE(q.ok());
    dur::DurabilityOptions opt;
    opt.checkpoint_every = 100;
    ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
    EXPECT_FALSE(engine.recovery_report().recovered);
    IngestRange(engine, 0, kTuples);
    engine.FinishAll();
    live = Rows(*q);
  }
  EXPECT_EQ(live, ReferenceRows(kTuples));

  // Checkpoint-restore path: the final checkpoint holds everything, so
  // nothing replays.
  RecoveryReport rep;
  EXPECT_EQ(RecoverRows(dir, /*use_checkpoint=*/true, &rep), live);
  EXPECT_TRUE(rep.recovered);
  EXPECT_TRUE(rep.checkpoint_loaded);
  EXPECT_EQ(rep.restored_queries, 1u);
  EXPECT_EQ(rep.replayed_tuples + rep.replayed_puncts, 0u);

  // Full-replay audit path reproduces the same multiset from seq 0.
  EXPECT_EQ(RecoverRows(dir, /*use_checkpoint=*/false, &rep), live);
  EXPECT_EQ(rep.replayed_tuples, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(rep.restored_queries, 0u);
}

TEST(EngineDurabilityTest, SigkillMidRunRecoversEquivalently) {
  std::string dir = TempDir("sigkill");
  const int kTuples = 700;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: durable run that dies hard mid-stream — no FinishAll, no
    // destructors, a torn archive tail is fair game.
    StreamEngine engine;
    if (!engine.RegisterStream("packets", gen::PacketSchema()).ok()) _exit(3);
    if (!engine.Submit(kAggQuery).ok()) _exit(3);
    dur::DurabilityOptions opt;
    opt.checkpoint_every = 150;
    opt.flush_interval_ms = 0;  // Inline flush: every append hits the OS.
    if (!engine.EnableDurability(dir, opt).ok()) _exit(3);
    for (int i = 0; i < kTuples; ++i) {
      (void)engine.Ingest("packets",
                          Pkt(i, i % 7, i % 2 == 0 ? 6 : 17, i % 512));
    }
    raise(SIGKILL);
    _exit(4);  // Unreachable.
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Inline flush means the archive holds all 700 records, so recovery
  // must reproduce the uninterrupted run exactly (as a multiset).
  RecoveryReport rep;
  std::vector<std::string> recovered =
      RecoverRows(dir, /*use_checkpoint=*/true, &rep);
  EXPECT_TRUE(rep.checkpoint_loaded);  // checkpoint_every fired.
  EXPECT_GT(rep.checkpoint_position, 0u);
  EXPECT_GT(rep.replayed_tuples, 0u);  // The suffix past the checkpoint.
  EXPECT_LT(rep.replayed_tuples, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(recovered, ReferenceRows(kTuples));

  // And checkpoint restore + suffix == full replay of the same archive.
  EXPECT_EQ(RecoverRows(dir, /*use_checkpoint=*/false), recovered);
}

TEST(EngineDurabilityTest, NonCheckpointableQueryFallsBackToFullReplay) {
  std::string dir = TempDir("fallback");
  const char* q_text =
      "select tb, approx_count_distinct(src_ip) from packets "
      "group by ts/10 as tb";
  std::vector<std::string> live;
  {
    StreamEngine engine;
    ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
    auto q = engine.Submit(q_text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    dur::DurabilityOptions opt;
    opt.checkpoint_every = 50;
    ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
    IngestRange(engine, 0, 300);
    engine.FinishAll();
    live = Rows(*q);
  }
  // The HLL sketch has no serializer, so the checkpoint excludes the
  // query; recovery replays its input from seq 0 and still converges.
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit(q_text);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.EnableDurability(dir, {}).ok());
  const RecoveryReport& rep = engine.recovery_report();
  EXPECT_TRUE(rep.checkpoint_loaded);
  EXPECT_EQ(rep.restored_queries, 0u);
  EXPECT_EQ(rep.replay_from_zero_queries, 1u);
  EXPECT_EQ(rep.replayed_tuples, 300u);
  engine.FinishAll();
  EXPECT_EQ(Rows(*q), live);
}

TEST(EngineDurabilityTest, PunctuationIsArchivedAndReplayed) {
  std::string dir = TempDir("punct");
  {
    StreamEngine engine;
    ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
    ASSERT_TRUE(engine.EnableDurability(dir, {}).ok());
    ASSERT_TRUE(engine.IngestElement("packets", Element(Pkt(1, 1, 6, 9))).ok());
    ASSERT_TRUE(
        engine
            .IngestElement("packets", Element(Punctuation::Watermark(10)))
            .ok());
    engine.FinishAll();
  }
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  dur::DurabilityOptions opt;
  opt.use_checkpoint = false;
  ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
  EXPECT_EQ(engine.recovery_report().replayed_tuples, 1u);
  EXPECT_EQ(engine.recovery_report().replayed_puncts, 1u);
}

TEST(EngineDurabilityTest, ReplayIntoNewQueryOverArchivedPast) {
  std::string dir = TempDir("replayinto");
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.EnableDurability(dir, {}).ok());
  IngestRange(engine, 0, 100);

  // A late subscriber sees the archived past, then live data.
  auto q = engine.Submit("select ts from packets where len > 10");
  ASSERT_TRUE(q.ok());
  auto replayed = engine.ReplayInto(*q);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, 100u);
  size_t after_replay = (*q)->result_count();
  EXPECT_GT(after_replay, 0u);

  IngestRange(engine, 100, 150);
  engine.FinishAll();
  EXPECT_GT((*q)->result_count(), after_replay);

  // The late query's total equals a from-the-start subscription.
  StreamEngine ref;
  ASSERT_TRUE(ref.RegisterStream("packets", gen::PacketSchema()).ok());
  auto rq = ref.Submit("select ts from packets where len > 10");
  ASSERT_TRUE(rq.ok());
  IngestRange(ref, 0, 150);
  ref.FinishAll();
  EXPECT_EQ(Rows(*q), Rows(*rq));
}

TEST(EngineDurabilityTest, TornTailDoesNotMaskRecordsAfterRestart) {
  std::string dir = TempDir("torn-restart");
  // Run 1: durable ingest, then a crash tears the segment tail.
  {
    StreamEngine engine;
    ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
    ASSERT_TRUE(engine.Submit(kAggQuery).ok());
    dur::DurabilityOptions opt;
    opt.flush_interval_ms = 0;
    ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
    IngestRange(engine, 0, 100);
  }
  std::vector<std::string> segs;
  ASSERT_TRUE(dur::ListDir(dir + "/streams/packets", &segs).ok());
  ASSERT_FALSE(segs.empty());
  FILE* f =
      std::fopen((dir + "/streams/packets/" + segs.back()).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[] = {0x2A, 0x00, 0x00, 0x01, 0x55};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  // Run 2: recover past the torn frame and keep ingesting — the new
  // records land in a segment that sorts after the torn one.
  {
    StreamEngine engine;
    ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
    ASSERT_TRUE(engine.Submit(kAggQuery).ok());
    dur::DurabilityOptions opt;
    opt.flush_interval_ms = 0;
    ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
    IngestRange(engine, 100, 200);
    engine.FinishAll();
  }

  // Run 3: a full replay must see run 2's records — the stale torn
  // frame (already truncated away by run 2's recovery) must not end the
  // chain early and silently drop data that was acknowledged durable.
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit(kAggQuery);
  ASSERT_TRUE(q.ok());
  dur::DurabilityOptions opt;
  opt.use_checkpoint = false;
  ASSERT_TRUE(engine.EnableDurability(dir, opt).ok());
  EXPECT_EQ(engine.recovery_report().replayed_tuples, 200u);
  engine.FinishAll();
  EXPECT_EQ(Rows(*q), ReferenceRows(200));
}

TEST(EngineDurabilityTest, ReplayIntoStopsAtSubmitBoundary) {
  std::string dir = TempDir("replay-bound");
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.EnableDurability(dir, {}).ok());
  IngestRange(engine, 0, 50);

  auto q = engine.Submit("select ts from packets where len > 10");
  ASSERT_TRUE(q.ok());
  // Elements arriving between Submit and ReplayInto are delivered live;
  // the replay must stop at the Submit-time archive position so they
  // are not delivered a second time.
  IngestRange(engine, 50, 80);
  auto replayed = engine.ReplayInto(*q);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, 50u);

  IngestRange(engine, 80, 100);
  engine.FinishAll();

  StreamEngine ref;
  ASSERT_TRUE(ref.RegisterStream("packets", gen::PacketSchema()).ok());
  auto rq = ref.Submit("select ts from packets where len > 10");
  ASSERT_TRUE(rq.ok());
  IngestRange(ref, 0, 100);
  ref.FinishAll();
  EXPECT_EQ(Rows(*q), Rows(*rq));
}

TEST(EngineDurabilityTest, EnableTwiceRejected) {
  std::string dir = TempDir("twice");
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  ASSERT_TRUE(engine.EnableDurability(dir, {}).ok());
  EXPECT_EQ(engine.EnableDurability(dir, {}).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace sqp
