#include <gtest/gtest.h>

#include <map>

#include "exec/aggregate_op.h"
#include "exec/plan.h"

namespace sqp {
namespace {

// Input: [ts, key, val].
TupleRef T(int64_t ts, int64_t key, int64_t val) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(val)});
}

Schema InputSchema() {
  return *Schema::WithOrdering({{"ts", ValueType::kInt},
                                {"key", ValueType::kInt},
                                {"val", ValueType::kInt}},
                               "ts");
}

TEST(GroupByTest, UnwindowedEmitsAtFlush) {
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kSum, 2, 0.5}};
  Plan plan;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);

  gb->Push(Element(T(1, 10, 5)));
  gb->Push(Element(T(2, 10, 7)));
  gb->Push(Element(T(3, 20, 1)));
  EXPECT_EQ(sink->count(), 0u);  // Nothing until flush.
  gb->Flush();

  ASSERT_EQ(sink->count(), 2u);
  std::map<int64_t, std::pair<int64_t, int64_t>> rows;
  for (const TupleRef& t : sink->tuples()) {
    rows[t->at(1).AsInt()] = {t->at(2).AsInt(), t->at(3).AsInt()};
  }
  EXPECT_EQ(rows[10], std::make_pair(int64_t{2}, int64_t{12}));
  EXPECT_EQ(rows[20], std::make_pair(int64_t{1}, int64_t{1}));
}

TEST(GroupByTest, TumblingWindowClosesBucketsInOrder) {
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  opt.window_size = 10;
  Plan plan;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);

  gb->Push(Element(T(1, 1, 0)));
  gb->Push(Element(T(5, 1, 0)));
  EXPECT_EQ(sink->count(), 0u);
  gb->Push(Element(T(12, 1, 0)));  // Bucket [0,10) now provably complete.
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->ts(), 0);       // Bucket start.
  EXPECT_EQ(sink->tuples()[0]->at(2).AsInt(), 2);  // count.
  gb->Flush();
  ASSERT_EQ(sink->count(), 2u);
  EXPECT_EQ(sink->tuples()[1]->ts(), 10);
}

TEST(GroupByTest, WatermarkPunctuationClosesBuckets) {
  GroupByOptions opt;
  opt.key_cols = {};
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  opt.window_size = 10;
  Plan plan;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);

  gb->Push(Element(T(3, 0, 0)));
  gb->Push(Element(Punctuation::Watermark(8)));
  EXPECT_EQ(sink->count(), 0u);  // ts=9 tuples may still arrive.
  // Watermark 9 asserts no tuple with ts <= 9 remains: bucket [0,10)
  // is complete.
  gb->Push(Element(Punctuation::Watermark(9)));
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->punctuations().size(), 2u);  // Forwarded.
}

TEST(GroupByTest, HavingFiltersGroups) {
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kCount, -1, 0.5}};
  // Output layout [ts, key, count]: having count > 1.
  opt.having = Gt(Col(2), Lit(int64_t{1}));
  Plan plan;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  gb->Push(Element(T(1, 10, 0)));
  gb->Push(Element(T(2, 10, 0)));
  gb->Push(Element(T(3, 20, 0)));
  gb->Flush();
  ASSERT_EQ(sink->count(), 1u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 10);
}

TEST(GroupByTest, MultipleAggregatesPerGroup) {
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kMin, 2, 0.5},
              {AggKind::kMax, 2, 0.5},
              {AggKind::kAvg, 2, 0.5},
              {AggKind::kMedian, 2, 0.5}};
  Plan plan;
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  for (int64_t v : {1, 9, 5}) gb->Push(Element(T(v, 1, v)));
  gb->Flush();
  ASSERT_EQ(sink->count(), 1u);
  const TupleRef& r = sink->tuples()[0];
  EXPECT_EQ(r->at(2).AsInt(), 1);
  EXPECT_EQ(r->at(3).AsInt(), 9);
  EXPECT_DOUBLE_EQ(r->at(4).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(r->at(5).AsDouble(), 5.0);
}

TEST(GroupByTest, BoundedMemoryWithWindowUnboundedWithout) {
  // Slide 36's contrast, measured: same grouping, with and without a
  // window; keys grow without bound.
  GroupByOptions bounded_opt;
  bounded_opt.key_cols = {1};
  bounded_opt.aggs = {{AggKind::kCount, -1, 0.5}};
  bounded_opt.window_size = 100;
  GroupByOptions unbounded_opt = bounded_opt;
  unbounded_opt.window_size = 0;

  Plan plan;
  auto* windowed = plan.Make<GroupByAggregateOp>(bounded_opt, "w");
  auto* unwindowed = plan.Make<GroupByAggregateOp>(unbounded_opt, "u");
  auto* s1 = plan.Make<CountingSink>();
  auto* s2 = plan.Make<CountingSink>();
  windowed->SetOutput(s1);
  unwindowed->SetOutput(s2);

  for (int64_t i = 0; i < 20000; ++i) {
    TupleRef t = T(i, i, 0);  // Every tuple a fresh group key.
    windowed->Push(Element(t));
    unwindowed->Push(Element(t));
  }
  // Windowed: only the open bucket's groups are live.
  EXPECT_LE(windowed->open_groups(), 101u);
  EXPECT_EQ(unwindowed->open_groups(), 20000u);
  EXPECT_LT(windowed->StateBytes() * 10, unwindowed->StateBytes());
}

TEST(GroupByTest, OutputSchemaShape) {
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kAvg, 2, 0.5}};
  auto schema = GroupByAggregateOp::OutputSchema(InputSchema(), opt);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->num_fields(), 4u);
  EXPECT_EQ(schema->field(0).name, "ts");
  EXPECT_EQ(schema->field(1).name, "key");
  EXPECT_EQ(schema->field(2).name, "count");
  EXPECT_EQ(schema->field(2).type, ValueType::kInt);
  EXPECT_EQ(schema->field(3).name, "avg_val");
  EXPECT_EQ(schema->field(3).type, ValueType::kDouble);
}

TEST(GroupByTest, OutputSchemaRejectsBadColumns) {
  GroupByOptions opt;
  opt.key_cols = {9};
  EXPECT_FALSE(GroupByAggregateOp::OutputSchema(InputSchema(), opt).ok());
}

}  // namespace
}  // namespace sqp
