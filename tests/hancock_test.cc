#include <gtest/gtest.h>

#include <map>

#include "hancock/program.h"
#include "hancock/signature.h"
#include "stream/generators.h"

namespace sqp {
namespace hancock {
namespace {

TEST(SignatureStoreTest, GetMissingReturnsZeros) {
  SignatureStore store(3, 0.5);
  auto sig = store.Get(42);
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_DOUBLE_EQ(sig[0], 0.0);
  EXPECT_FALSE(store.Contains(42));
}

TEST(SignatureStoreTest, BlendConvergesToSteadyState) {
  SignatureStore store(1, 0.5);
  // Repeated observation of 100 converges to 100.
  for (int i = 0; i < 20; ++i) store.Blend(1, {100.0});
  EXPECT_NEAR(store.Get(1)[0], 100.0, 0.01);
}

TEST(SignatureStoreTest, BlendFormula) {
  SignatureStore store(1, 0.25);
  store.Put(1, {40.0});
  store.Blend(1, {80.0});
  // 0.25*80 + 0.75*40 = 50.
  EXPECT_DOUBLE_EQ(store.Get(1)[0], 50.0);
}

TEST(SignatureStoreTest, FirstBlendInitializes) {
  SignatureStore store(2, 0.1);
  store.Blend(7, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(store.Get(7)[0], 10.0);
  EXPECT_DOUBLE_EQ(store.Get(7)[1], 20.0);
}

TEST(SignatureStoreTest, IoCountersTrack) {
  SignatureStore store(1, 0.5);
  store.Blend(1, {1.0});  // 1 read + 1 write.
  store.Get(1);           // 1 read.
  EXPECT_EQ(store.reads(), 2u);
  EXPECT_EQ(store.writes(), 1u);
}

TEST(SignatureStoreTest, DeviationDetectsChange) {
  SignatureStore store(2, 0.5);
  store.Put(1, {10.0, 0.1});
  double small = store.Deviation(1, {11.0, 0.1});
  double large = store.Deviation(1, {100.0, 0.9});
  EXPECT_LT(small, 0.1);
  EXPECT_GT(large, 1.0);
  // Unknown entity: no baseline, no alert.
  EXPECT_DOUBLE_EQ(store.Deviation(99, {100.0, 1.0}), 0.0);
}

TEST(SignatureProgramTest, EventOrderOnSortedRuns) {
  // Tuples: [ts, key, dur]. Keys arrive unsorted within the block.
  std::vector<TupleRef> block = {
      MakeTuple(1, {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{10})}),
      MakeTuple(2, {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{20})}),
      MakeTuple(3, {Value(int64_t{3}), Value(int64_t{2}), Value(int64_t{30})}),
  };
  SignatureProgram prog(1, nullptr);
  std::vector<std::string> log;
  SignatureProgram::Events ev;
  ev.line_begin = [&](int64_t k) { log.push_back("begin" + std::to_string(k)); };
  ev.call = [&](const Tuple& t) {
    log.push_back("call" + t.at(2).ToString());
  };
  ev.line_end = [&](int64_t k) { log.push_back("end" + std::to_string(k)); };
  prog.RunBlock(block, ev);

  std::vector<std::string> expect = {"begin1", "call20", "end1",
                                     "begin2", "call10", "call30", "end2"};
  EXPECT_EQ(log, expect);
  EXPECT_EQ(prog.lines_processed(), 2u);
  EXPECT_EQ(prog.calls_processed(), 3u);
}

TEST(SignatureProgramTest, FilteredByDropsTuples) {
  // filteredby noIncomplete: keep dur > 15 here.
  std::vector<TupleRef> block = {
      MakeTuple(1, {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{10})}),
      MakeTuple(2, {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{20})}),
  };
  SignatureProgram prog(1, Gt(Col(2), Lit(int64_t{15})));
  int calls = 0;
  SignatureProgram::Events ev;
  ev.call = [&](const Tuple&) { ++calls; };
  prog.RunBlock(block, ev);
  EXPECT_EQ(calls, 1);
}

TEST(SignatureProgramTest, EmptyBlockNoEvents) {
  SignatureProgram prog(0, nullptr);
  bool fired = false;
  SignatureProgram::Events ev;
  ev.line_begin = [&](int64_t) { fired = true; };
  ev.line_end = [&](int64_t) { fired = true; };
  prog.RunBlock({}, ev);
  EXPECT_FALSE(fired);
}

// End-to-end fraud detection: signatures built over clean history flag
// injected fraud callers by deviation (slides 6-8 workload).
TEST(FraudDetectionTest, SignaturesSeparateFraudCallers) {
  gen::CdrOptions opt;
  opt.num_callers = 300;
  opt.fraud_fraction = 0.05;
  opt.seed = 123;
  gen::CdrGenerator cdrs(opt);

  SignatureStore store(1, 0.3);  // Signature: blended mean duration.
  SignatureProgram prog(gen::CdrCols::kOrigin, nullptr);

  // Process 40 blocks of 1000 calls: per caller per block, blend the
  // block's mean duration into the signature.
  std::map<int64_t, double> block_sum;
  std::map<int64_t, int> block_n;
  for (int b = 0; b < 40; ++b) {
    std::vector<TupleRef> block;
    for (int i = 0; i < 1000; ++i) block.push_back(cdrs.Next());
    block_sum.clear();
    block_n.clear();
    SignatureProgram::Events ev;
    ev.call = [&](const Tuple& t) {
      block_sum[t.at(gen::CdrCols::kOrigin).AsInt()] +=
          static_cast<double>(t.at(gen::CdrCols::kDuration).AsInt());
      block_n[t.at(gen::CdrCols::kOrigin).AsInt()]++;
    };
    ev.line_end = [&](int64_t caller) {
      store.Blend(caller, {block_sum[caller] / block_n[caller]});
    };
    prog.RunBlock(std::move(block), ev);
  }

  // Signatures of fraud callers should sit far above normal callers.
  double fraud_mean = 0, normal_mean = 0;
  int fraud_n = 0, normal_n = 0;
  for (int64_t c = 0; c < 300; ++c) {
    if (!store.Contains(c)) continue;
    double sig = store.Get(c)[0];
    if (cdrs.IsFraudCaller(c)) {
      fraud_mean += sig;
      ++fraud_n;
    } else {
      normal_mean += sig;
      ++normal_n;
    }
  }
  ASSERT_GT(fraud_n, 3);
  ASSERT_GT(normal_n, 100);
  EXPECT_GT(fraud_mean / fraud_n, 2.0 * (normal_mean / normal_n));
}

TEST(IoModelTest, SortedBlocksTouchEachSignatureOnce) {
  // The Hancock lesson (slide 6): sorted block processing does one
  // read+write per (caller, block); per-call processing does one per call.
  gen::CdrOptions opt;
  opt.num_callers = 50;
  gen::CdrGenerator cdrs(opt);
  std::vector<TupleRef> block;
  for (int i = 0; i < 2000; ++i) block.push_back(cdrs.Next());

  // Per-call updates.
  SignatureStore per_call(1, 0.5);
  for (const TupleRef& t : block) {
    per_call.Blend(t->at(gen::CdrCols::kOrigin).AsInt(),
                   {t->at(gen::CdrCols::kDuration).ToDouble()});
  }

  // Sorted block updates (one blend per line).
  SignatureStore per_line(1, 0.5);
  SignatureProgram prog(gen::CdrCols::kOrigin, nullptr);
  double sum = 0;
  int n = 0;
  SignatureProgram::Events ev;
  ev.line_begin = [&](int64_t) {
    sum = 0;
    n = 0;
  };
  ev.call = [&](const Tuple& t) {
    sum += t.at(gen::CdrCols::kDuration).ToDouble();
    ++n;
  };
  ev.line_end = [&](int64_t caller) { per_line.Blend(caller, {sum / n}); };
  prog.RunBlock(block, ev);

  EXPECT_EQ(per_call.writes(), 2000u);
  EXPECT_LE(per_line.writes(), 50u);
}

}  // namespace
}  // namespace hancock
}  // namespace sqp
