#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "arch/engine.h"
#include "exec/plan.h"
#include "exec/profiler.h"
#include "exec/project.h"
#include "exec/select.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/op_profile.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sched/parallel_executor.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

// ---------------------------------------------------------------------------
// Histogram: bucket boundaries and quantiles.

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b holds values with bit width b: 0 -> bucket 0, 1 -> 1,
  // [2,3] -> 2, [4,7] -> 3, ...
  EXPECT_EQ(obs::Histogram::BucketFor(0), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(1), 1);
  EXPECT_EQ(obs::Histogram::BucketFor(2), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(3), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(4), 3);
  EXPECT_EQ(obs::Histogram::BucketFor(7), 3);
  EXPECT_EQ(obs::Histogram::BucketFor(8), 4);
  EXPECT_EQ(obs::Histogram::BucketFor(UINT64_MAX), 64);

  EXPECT_EQ(obs::HistogramData::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::HistogramData::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::HistogramData::BucketLowerBound(3), 4u);
  EXPECT_EQ(obs::HistogramData::BucketUpperBound(3), 7u);
  EXPECT_EQ(obs::HistogramData::BucketUpperBound(64), UINT64_MAX);

  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);  // bit width 10
  obs::HistogramData d = h.Data();
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.sum, 1006u);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 2u);
  EXPECT_EQ(d.buckets[10], 1u);
}

TEST(HistogramTest, QuantileEstimates) {
  obs::Histogram h;
  // 100 observations of 10 (bucket 4: [8,15]) and 100 of 1000
  // (bucket 10: [512,1023]).
  for (int i = 0; i < 100; ++i) h.Observe(10);
  for (int i = 0; i < 100; ++i) h.Observe(1000);
  obs::HistogramData d = h.Data();
  // Quantile error is bounded by the bucket: p25 must land in [8,15],
  // p99 in [512,1023].
  double p25 = d.Quantile(0.25);
  EXPECT_GE(p25, 8.0);
  EXPECT_LE(p25, 15.0);
  double p99 = d.Quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
  // Degenerate inputs.
  EXPECT_EQ(obs::HistogramData{}.Quantile(0.5), 0.0);
  EXPECT_GE(d.Quantile(1.0), 512.0);
  EXPECT_LE(d.Quantile(0.0), 15.0);
  EXPECT_DOUBLE_EQ(d.Mean(), (100.0 * 10 + 100.0 * 1000) / 200.0);
}

// ---------------------------------------------------------------------------
// Concurrency: counters and histograms hammered from N threads (run
// under TSan in CI).

TEST(MetricsConcurrencyTest, CountersAreExactUnderContention) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("sqp_test_total");
  obs::Gauge* g = reg.GetGauge("sqp_test_hw");
  obs::Histogram* h = reg.GetHistogram("sqp_test_lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        g->UpdateMax(static_cast<double>(t * kPerThread + i));
        h->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g->Value(), kThreads * kPerThread - 1.0);
  EXPECT_EQ(h->Data().count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrencyTest, SnapshotWhileRunning) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("sqp_live_total");
  // Prime the counter so the final EXPECT_GT holds even if the writer
  // threads are never scheduled before the snapshot loop finishes.
  c->Inc();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c->Inc();
    });
  }
  // Concurrent snapshots must never tear a metric: each observed value
  // is monotonically non-decreasing.
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    obs::Snapshot snap = reg.TakeSnapshot();
    ASSERT_EQ(snap.samples.size(), 1u);
    EXPECT_GE(snap.samples[0].value, last);
    last = snap.samples[0].value;
  }
  stop = true;
  for (auto& th : writers) th.join();
  EXPECT_GT(last, 0.0);
}

TEST(MetricsConcurrencyTest, SameNameSameInstance) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("a", {{"k", "v"}}), reg.GetCounter("a", {{"k", "v"}}));
  EXPECT_NE(reg.GetCounter("a", {{"k", "v"}}), reg.GetCounter("a", {{"k", "w"}}));
  EXPECT_EQ(reg.GetOpMetrics("q0", "select", 0),
            reg.GetOpMetrics("q0", "select", 0));
  EXPECT_NE(reg.GetOpMetrics("q0", "select", 0),
            reg.GetOpMetrics("q0", "select", 1));
}

// ---------------------------------------------------------------------------
// Export goldens.

TEST(SnapshotExportTest, JsonGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("sqp_events_total", {{"stream", "pkts"}})->Inc(42);
  reg.GetGauge("sqp_depth")->Set(7);
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.ToJson(),
            "{\"metrics\":["
            "{\"name\":\"sqp_events_total\",\"labels\":{\"stream\":\"pkts\"},"
            "\"type\":\"counter\",\"value\":42},"
            "{\"name\":\"sqp_depth\",\"type\":\"gauge\",\"value\":7}"
            "],\"operators\":[],\"trace\":[]}");
}

TEST(SnapshotExportTest, PrometheusGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("sqp_events_total", {{"stream", "pkts"}})->Inc(42);
  obs::Histogram* h = reg.GetHistogram("sqp_lat_ns");
  h->Observe(3);  // bucket 2, le=3
  h->Observe(3);
  h->Observe(12);  // bucket 4, le=15
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.ToPrometheus(),
            "# TYPE sqp_events_total counter\n"
            "sqp_events_total{stream=\"pkts\"} 42\n"
            "# TYPE sqp_lat_ns histogram\n"
            "sqp_lat_ns_bucket{le=\"3\"} 2\n"
            "sqp_lat_ns_bucket{le=\"15\"} 3\n"
            "sqp_lat_ns_bucket{le=\"+Inf\"} 3\n"
            "sqp_lat_ns_sum 18\n"
            "sqp_lat_ns_count 3\n"
            "# TYPE sqp_lat_ns_p50 gauge\n"
            "sqp_lat_ns_p50 2.75\n"
            "# TYPE sqp_lat_ns_p99 gauge\n"
            "sqp_lat_ns_p99 14.79\n");
}

TEST(SnapshotExportTest, PrometheusGroupsFamiliesAndEmitsHelp) {
  // Two streams interleave with another family in registration order;
  // the exposition must still render each family as one block with a
  // single # TYPE (and # HELP for known families).
  obs::MetricsRegistry reg;
  reg.GetCounter("sqp_stream_ingested_total", {{"stream", "a"}})->Inc(1);
  reg.GetGauge("sqp_other")->Set(9);
  reg.GetCounter("sqp_stream_ingested_total", {{"stream", "b"}})->Inc(2);
  EXPECT_EQ(reg.TakeSnapshot().ToPrometheus(),
            "# HELP sqp_stream_ingested_total Elements ingested per "
            "stream.\n"
            "# TYPE sqp_stream_ingested_total counter\n"
            "sqp_stream_ingested_total{stream=\"a\"} 1\n"
            "sqp_stream_ingested_total{stream=\"b\"} 2\n"
            "# TYPE sqp_other gauge\n"
            "sqp_other 9\n");
}

TEST(SnapshotExportTest, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.GetCounter("sqp_events_total", {{"q", "a\\b\"c\nd"}})->Inc(1);
  EXPECT_NE(reg.TakeSnapshot().ToPrometheus().find(
                "sqp_events_total{q=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(SnapshotExportTest, JsonEscapesSpecials) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------------------
// Operator instrumentation: a bound plan reports in/out/selectivity,
// self time, and sampled lineage with zero per-operator code.

TEST(OpInstrumentationTest, BoundChainReportsCounts) {
  obs::MetricsRegistry reg;
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Gt(Col(1), Lit(int64_t{499})));
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{Col(1)});
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  plan.BindMetrics(reg, "q0");

  int64_t v = 0;
  RunStream(sel, [&] { int64_t i = v++; return T(i, i % 1000); }, 10000);

  obs::Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.ops.size(), 3u);
  const obs::OpSnapshot& s0 = snap.ops[0];
  EXPECT_EQ(s0.query, "q0");
  EXPECT_EQ(s0.op, "select");
  EXPECT_EQ(s0.tuples_in, 10000u);
  EXPECT_EQ(s0.tuples_out, 5000u);
  EXPECT_DOUBLE_EQ(s0.Selectivity(), 0.5);
  EXPECT_GT(s0.busy_ns, 0u);
  const obs::OpSnapshot& s1 = snap.ops[1];
  EXPECT_EQ(s1.op, "project");
  EXPECT_EQ(s1.tuples_in, 5000u);
  EXPECT_EQ(s1.tuples_out, 5000u);
  // The sink is a plan operator too.
  EXPECT_EQ(snap.ops[2].tuples_in, 5000u);
  // Renderings include the operators.
  EXPECT_NE(snap.ToPrometheus().find("sqp_op_tuples_in_total{query=\"q0\","
                                     "op=\"select\",index=\"0\"} 10000"),
            std::string::npos);
  EXPECT_NE(snap.Pretty().find("select"), std::string::npos);
}

TEST(OpInstrumentationTest, TracerRecordsLineage) {
  obs::MetricsRegistry reg;
  reg.EnableTracing(100);  // Every 100th tuple.
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));  // Pass-through.
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{Col(1)});
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  plan.BindMetrics(reg, "q0");

  int64_t v = 0;
  RunStream(sel, [&] { int64_t i = v++; return T(i, i); }, 1000);

  obs::Snapshot snap = reg.TakeSnapshot();
  // 10 sampled tuples x 3 hops each.
  ASSERT_EQ(snap.trace.size(), 30u);
  EXPECT_EQ(snap.trace[0].hop, 0u);
  EXPECT_EQ(snap.trace[0].op, "select");
  EXPECT_EQ(snap.trace[1].hop, 1u);
  EXPECT_EQ(snap.trace[1].op, "project");
  EXPECT_EQ(snap.trace[2].hop, 2u);
  EXPECT_EQ(snap.trace[2].op, "collect");
  // Hops of one trace share an id and have non-decreasing timestamps.
  EXPECT_EQ(snap.trace[0].trace_id, snap.trace[1].trace_id);
  EXPECT_LE(snap.trace[0].ts_ns, snap.trace[1].ts_ns);
  // Path latency histogram observed one value per sampled tuple.
  bool found = false;
  for (const obs::Sample& s : snap.samples) {
    if (s.name == "sqp_trace_path_ns") {
      found = true;
      EXPECT_EQ(s.hist.count, 10u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(OpInstrumentationTest, TraceRingWraps) {
  obs::Tracer tracer(4);
  tracer.SetSampleEvery(1);
  for (uint64_t i = 1; i <= 10; ++i) tracer.Record(i, 0, "op", i);
  std::vector<obs::TraceEvent> ev = tracer.Events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].trace_id, 7u);  // Oldest surviving entry first.
  EXPECT_EQ(ev[3].trace_id, 10u);
}

TEST(OpInstrumentationTest, UnboundOperatorsReportNothing) {
  obs::MetricsRegistry reg;
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  int64_t v = 0;
  RunStream(sel, [&] { int64_t i = v++; return T(i, i); }, 100);
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_TRUE(snap.ops.empty());
  EXPECT_TRUE(snap.trace.empty());
  // Classic per-operator stats still work.
  EXPECT_EQ(sel->stats().tuples_in, 100u);
}

// ---------------------------------------------------------------------------
// Engine integration: StreamEngine::Metrics() end-to-end, serial and
// parallel, snapshot taken while workers are live.

TEST(EngineMetricsTest, SerialQueryReportsPerOpMetrics) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts, len from packets where len > 500");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->metrics_label(), "q0");

  gen::PacketGenerator packets(gen::PacketOptions{});
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", packets.Next()).ok());
  }
  engine.FinishAll();

  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  ASSERT_FALSE(snap.ops.empty());
  uint64_t select_in = 0;
  uint64_t root_out = 0;
  for (const obs::OpSnapshot& o : snap.ops) {
    if (o.op == "select") select_in = o.tuples_in;
    root_out = o.tuples_out;  // Last plan op drives the sink.
  }
  EXPECT_EQ(select_in, 2000u);
  EXPECT_EQ(root_out, (*q)->result_count());
  // The ingest counter rode along.
  bool found = false;
  for (const obs::Sample& s : snap.samples) {
    if (s.name == "sqp_stream_ingested_total") {
      found = true;
      EXPECT_EQ(s.value, 2000.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(EngineMetricsTest, ParallelQueryPublishesStageStats) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts, len from packets where len > 500");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.EnableParallel(*q).ok());

  gen::PacketGenerator packets(gen::PacketOptions{});
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", packets.Next()).ok());
    if (i == 2500) {
      // Snapshot while the workers are live (ingest still running).
      obs::Snapshot live = engine.Metrics().TakeSnapshot();
      EXPECT_FALSE(live.samples.empty());
    }
  }
  engine.FinishAll();

  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  uint64_t stage0_processed = 0;
  for (const obs::Sample& s : snap.samples) {
    if (s.name != "sqp_stage_processed") continue;
    for (const auto& kv : s.labels) {
      if (kv.first == "stage" && kv.second == "0") {
        stage0_processed = static_cast<uint64_t>(s.value);
      }
    }
  }
  EXPECT_EQ(stage0_processed, 5000u);
  // Per-op metrics flow from the worker threads too.
  bool saw_select = false;
  for (const obs::OpSnapshot& o : snap.ops) {
    if (o.op == "select") {
      saw_select = true;
      EXPECT_EQ(o.tuples_in, 5000u);
    }
  }
  EXPECT_TRUE(saw_select);
}

TEST(EngineMetricsTest, DisabledMetricsBindNothing) {
  StreamEngine engine;
  engine.SetMetricsEnabled(false);
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts, len from packets where len > 500");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->metrics_label().empty());
  gen::PacketGenerator packets(gen::PacketOptions{});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", packets.Next()).ok());
  }
  engine.FinishAll();
  EXPECT_TRUE(engine.Metrics().TakeSnapshot().ops.empty());
}

// ---------------------------------------------------------------------------
// OpProfile: the hot-path half of the query profiler.

TEST(OpProfileTest, AggregatesDeliveriesWaitAndStatePeaks) {
  obs::OpProfile p;
  p.CountSingle();
  p.CountSingle();
  p.ObserveBatch(10);
  p.ObserveBatch(30);
  p.AddQueueWait(500, 5);
  p.SampleState(100);
  p.SampleState(400);
  p.SampleState(200);  // State shrank; the peak must not.
  obs::OpProfileData d = p.Snapshot();
  EXPECT_EQ(d.singles, 2u);
  EXPECT_EQ(d.batch_rows.count, 2u);
  EXPECT_EQ(d.batch_rows.sum, 40u);
  EXPECT_EQ(d.queue_wait_ns, 500u);
  EXPECT_EQ(d.queued_items, 5u);
  EXPECT_EQ(d.state_bytes, 200u);
  EXPECT_EQ(d.peak_state_bytes, 400u);
  // No watermark forwarded yet: the sentinel survives the snapshot.
  EXPECT_EQ(d.wm_ts, obs::OpProfile::kNoWatermark);
  EXPECT_EQ(d.wm_count, 0u);

  p.OnWatermarkForward(42);
  d = p.Snapshot();
  EXPECT_EQ(d.wm_ts, 42);
  EXPECT_EQ(d.wm_count, 1u);
  EXPECT_GT(d.wm_ns, 0u);
}

TEST(OpProfileTest, StateSamplingBacksOffGeometrically) {
  obs::OpProfile p;
  int calls = 0;
  for (int i = 0; i < 1000; ++i) {
    p.MaybeSampleState([&] {
      ++calls;
      return 64;
    });
  }
  // Intervals 1, 2, 4, ..., capped at 256: far fewer probes than
  // invocations, but more than a handful.
  EXPECT_GE(calls, 5);
  EXPECT_LE(calls, 20);
  EXPECT_EQ(p.Snapshot().state_bytes, 64u);
}

// ---------------------------------------------------------------------------
// EventLog: bounded ring, sequence-based tailing, JSON export.

TEST(EventLogTest, RingWrapsAndTailResumes) {
  obs::EventLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (int i = 1; i <= 10; ++i) {
    log.Emit(obs::EventKind::kQuerySubmit, "q0",
             "m" + std::to_string(i));
  }
  EXPECT_EQ(log.total(), 10u);

  std::vector<obs::EngineEvent> tail = log.Tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().seq, 7u);  // Oldest surviving event first.
  EXPECT_EQ(tail.back().seq, 10u);
  EXPECT_EQ(tail.back().message, "m10");

  // after_seq resumes a tail without re-reading.
  std::vector<obs::EngineEvent> after = log.Tail(0, 8);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after.front().seq, 9u);

  // max keeps only the newest events.
  std::vector<obs::EngineEvent> last2 = log.Tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2.front().seq, 9u);

  // Tail past the end is empty, not an error.
  EXPECT_TRUE(log.Tail(0, 10).empty());

  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"query_submit\""), std::string::npos);
  EXPECT_NE(json.find("\"query\":\"q0\""), std::string::npos);
}

TEST(EventLogTest, KindNamesAreWireStable) {
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kQuerySubmit),
               "query_submit");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kCheckpointWritten),
               "checkpoint_written");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kShardStall),
               "shard_stall");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kFlushError),
               "flush_error");
}

// ---------------------------------------------------------------------------
// QueryProfiler: plan-shaped span tree, lag math, EXPLAIN ANALYZE
// consistency with the metrics registry.

TEST(QueryProfilerTest, SnapshotTreeMatchesMetricsCounters) {
  obs::MetricsRegistry reg;
  obs::QueryProfiler profiler;
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Gt(Col(1), Lit(int64_t{499})));
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{Col(1)});
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  plan.BindMetrics(reg, "q0");
  obs::QueryProfiler::SourceWatermark* src =
      profiler.Register("q0", "select v from t where v > 499");
  profiler.BindPlan("q0", plan);

  int64_t v = 0;
  RunStream(sel, [&] { int64_t i = v++; return T(i, i % 1000); }, 10000);
  src->OnWatermark(9000);
  sel->Process(Element(Punctuation::Watermark(9000)));

  obs::QueryProfile p;
  ASSERT_TRUE(profiler.Snapshot("q0", &p));
  EXPECT_EQ(p.query, "q0");
  EXPECT_EQ(p.source_wm_ts, 9000);
  EXPECT_EQ(p.source_wm_count, 1u);
  ASSERT_EQ(p.ops.size(), 3u);

  // Pre-order from the sink-most root: collect <- project <- select.
  EXPECT_EQ(p.ops[0].op, "collect");
  EXPECT_EQ(p.ops[0].depth, 0);
  EXPECT_EQ(p.ops[1].op, "project");
  EXPECT_EQ(p.ops[1].depth, 1);
  EXPECT_EQ(p.ops[2].op, "select");
  EXPECT_EQ(p.ops[2].depth, 2);

  // Row counters are the same atomics the registry snapshot renders.
  obs::Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.ops.size(), 3u);
  for (const obs::OpProfileRow& row : p.ops) {
    bool matched = false;
    for (const obs::OpSnapshot& o : snap.ops) {
      if (o.op != row.op || o.index != row.index) continue;
      matched = true;
      EXPECT_EQ(row.tuples_in, o.tuples_in);
      EXPECT_EQ(row.tuples_out, o.tuples_out);
      EXPECT_DOUBLE_EQ(row.selectivity, o.Selectivity());
    }
    EXPECT_TRUE(matched) << row.op;
  }
  EXPECT_EQ(p.ops[2].tuples_in, 10000u);
  EXPECT_EQ(p.ops[2].tuples_out, 5000u);

  // Every forwarding operator relayed the watermark: zero lag vs the
  // source, known propagation delay (the source ring still holds ts
  // 9000). The sink forwards nothing, so its row keeps the sentinel.
  for (const obs::OpProfileRow& row : p.ops) {
    // RunStream drives per-element: deliveries fold singles in.
    EXPECT_GT(row.deliveries, 0u) << row.op;
    if (row.op == "collect") {
      EXPECT_FALSE(row.has_watermark);
      EXPECT_FALSE(row.has_lag);
      continue;
    }
    EXPECT_TRUE(row.has_watermark) << row.op;
    EXPECT_TRUE(row.has_lag) << row.op;
    EXPECT_EQ(row.lag, 0) << row.op;
    EXPECT_GE(row.propagation_ms, 0.0) << row.op;
  }

  // Renderings carry the table and the tree.
  std::string pretty = p.Pretty();
  EXPECT_NE(pretty.find("EXPLAIN ANALYZE q0"), std::string::npos);
  EXPECT_NE(pretty.find("select"), std::string::npos);
  std::string json = p.ToJson();
  EXPECT_NE(json.find("\"query\":\"q0\""), std::string::npos);
  EXPECT_NE(json.find("\"watermark_lag\":0"), std::string::npos);
}

TEST(QueryProfilerTest, LagNeedsBothSourceAndOperatorWatermarks) {
  obs::QueryProfiler profiler;
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  obs::QueryProfiler::SourceWatermark* src = profiler.Register("q0", "t");
  profiler.BindPlan("q0", plan);

  // Source saw a watermark but no operator forwarded one yet: the
  // INT64_MIN sentinel must suppress lag, not produce a huge number.
  src->OnWatermark(100);
  obs::QueryProfile p;
  ASSERT_TRUE(profiler.Snapshot("q0", &p));
  for (const obs::OpProfileRow& row : p.ops) {
    EXPECT_FALSE(row.has_watermark);
    EXPECT_FALSE(row.has_lag);
  }

  // Operators forwarded a watermark the source never tapped: same
  // suppression on a fresh registration (source at the sentinel). Only
  // the forwarding operator records it — the sink keeps the sentinel.
  profiler.Register("q1", "t");
  profiler.BindPlan("q1", plan);
  sel->Process(Element(Punctuation::Watermark(7)));
  ASSERT_TRUE(profiler.Snapshot("q1", &p));
  EXPECT_EQ(p.source_wm_ts, obs::OpProfile::kNoWatermark);
  for (const obs::OpProfileRow& row : p.ops) {
    EXPECT_EQ(row.has_watermark, row.op == "select") << row.op;
    EXPECT_FALSE(row.has_lag);
    EXPECT_LT(row.propagation_ms, 0.0);  // Unknown without a source tap.
  }
}

TEST(QueryProfilerTest, UnregisterDropsAndLabelsList) {
  obs::QueryProfiler profiler;
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CollectorSink>();
  sel->SetOutput(sink);
  profiler.Register("q0", "t");
  profiler.BindPlan("q0", plan);
  EXPECT_EQ(profiler.Labels(), std::vector<std::string>{"q0"});
  obs::QueryProfile p;
  EXPECT_TRUE(profiler.Snapshot("q0", &p));
  EXPECT_FALSE(profiler.Snapshot("q9", &p));
  for (const auto& op : plan.operators()) op->BindProfile(nullptr);
  profiler.Unregister("q0");
  EXPECT_FALSE(profiler.Snapshot("q0", &p));
  EXPECT_TRUE(profiler.Labels().empty());
}

TEST(EngineProfilerTest, ExplainAnalyzeWindowedAggregate) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/60 as tb");
  ASSERT_TRUE(q.ok());

  gen::PacketGenerator packets(gen::PacketOptions{});
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", packets.Next()).ok());
  }
  engine.FinishAll();

  obs::QueryProfile p;
  ASSERT_TRUE(engine.ProfileSnapshot(*q, &p));
  EXPECT_EQ(p.query, "q0");
  ASSERT_FALSE(p.ops.empty());
  // The leaf of the tree is the plan's entry operator: all 2000 tuples
  // entered it, and the numbers agree with the metrics registry.
  EXPECT_EQ(p.ops.back().tuples_in, 2000u);
  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  for (const obs::OpProfileRow& row : p.ops) {
    for (const obs::OpSnapshot& o : snap.ops) {
      if (o.op == row.op && o.index == row.index) {
        EXPECT_EQ(row.tuples_in, o.tuples_in) << row.op;
        EXPECT_EQ(row.tuples_out, o.tuples_out) << row.op;
      }
    }
  }
  // The engine also answers by label, and lists the query.
  EXPECT_TRUE(engine.ProfileSnapshot("q0", &p));
  EXPECT_EQ(engine.ProfiledQueries(), std::vector<std::string>{"q0"});

  // Submit/stop made it into the event log.
  bool saw_submit = false;
  for (const obs::EngineEvent& e : engine.Events().Tail()) {
    if (e.kind == obs::EventKind::kQuerySubmit && e.query == "q0") {
      saw_submit = true;
    }
  }
  EXPECT_TRUE(saw_submit);
}

// ---------------------------------------------------------------------------
// StageStats satellites: unified rendering + backlog underflow guard.

TEST(StageStatsTest, BacklogClampsTransientUnderflow) {
  sched::StageStats s;
  s.enqueued = 10;
  s.processed = 12;  // Torn concurrent read: processed ran ahead.
  EXPECT_EQ(s.Backlog(), 0u);
  s.enqueued = 20;
  EXPECT_EQ(s.Backlog(), 8u);
}

TEST(StageStatsTest, ToStringMatchesPublishedFields) {
  sched::StageStats s;
  s.enqueued = 5;
  s.processed = 3;
  s.batches = 2;
  s.dropped = 1;
  s.queue_depth = 3;
  s.max_queue_depth = 4;
  s.busy_time = 0.25;
  EXPECT_EQ(s.ToString(),
            "enqueued=5 processed=3 batches=2 dropped=1 backlog=2 "
            "queue_depth=3 max_queue_depth=4 busy_time=0.250000");
  // The obs bridge publishes exactly the same fields.
  obs::Snapshot snap;
  obs::SnapshotBuilder b(&snap);
  sched::PublishStageStats(b, {{"stage", "0"}}, s);
  ASSERT_EQ(snap.samples.size(), 8u);
  EXPECT_EQ(snap.samples[0].name, "sqp_stage_enqueued");
  EXPECT_EQ(snap.samples[0].value, 5.0);
  EXPECT_EQ(snap.samples[2].name, "sqp_stage_batches");
  EXPECT_EQ(snap.samples[2].value, 2.0);
  EXPECT_EQ(snap.samples[4].name, "sqp_stage_backlog");
  EXPECT_EQ(snap.samples[4].value, 2.0);
  EXPECT_EQ(snap.samples[5].name, "sqp_stage_queue_depth");
  EXPECT_EQ(snap.samples[5].value, 3.0);
}

}  // namespace
}  // namespace sqp
