#include <gtest/gtest.h>

#include <map>

#include "agg/partial_agg.h"
#include "common/rng.h"

namespace sqp {
namespace {

TupleRef KV(int64_t key, int64_t val) {
  return MakeTuple(0, {Value(key), Value(val)});
}

std::map<int64_t, std::vector<double>> Collect(
    const FinalAggregator& fin) {
  std::map<int64_t, std::vector<double>> out;
  for (const auto& [key, vals] : fin.Results()) {
    std::vector<double> row;
    for (const Value& v : vals) row.push_back(v.ToDouble());
    out[key.parts[0].AsInt()] = row;
  }
  return out;
}

TEST(PartialAggTest, UnboundedModeIsExact) {
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5},
                               {AggKind::kSum, 1, 0.5}};
  PartialAggregator agg(0, {0}, aggs);
  FinalAggregator fin(aggs);
  std::vector<PartialGroup> out;
  agg.Add(*KV(1, 10), &out);
  agg.Add(*KV(1, 20), &out);
  agg.Add(*KV(2, 5), &out);
  EXPECT_TRUE(out.empty());  // Unbounded: nothing evicted.
  agg.Flush(&out);
  for (auto& g : out) fin.Merge(std::move(g));

  auto res = Collect(fin);
  EXPECT_DOUBLE_EQ(res[1][0], 2);
  EXPECT_DOUBLE_EQ(res[1][1], 30);
  EXPECT_DOUBLE_EQ(res[2][0], 1);
  EXPECT_DOUBLE_EQ(res[2][1], 5);
}

TEST(PartialAggTest, CollisionsEvictPartials) {
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5}};
  // One slot: every key change evicts.
  PartialAggregator agg(1, {0}, aggs);
  std::vector<PartialGroup> out;
  agg.Add(*KV(1, 0), &out);
  agg.Add(*KV(2, 0), &out);  // Evicts key 1.
  agg.Add(*KV(1, 0), &out);  // Evicts key 2.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(agg.stats().evictions, 2u);
  agg.Flush(&out);
  EXPECT_EQ(out.size(), 3u);
}

// The central two-level property (slide 37): a slot-limited low level
// merged at the high level is exact, for any slot count.
class SlotSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SlotSweepTest, TwoLevelExactForAnySlotCount) {
  size_t slots = GetParam();
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5},
                               {AggKind::kSum, 1, 0.5},
                               {AggKind::kMin, 1, 0.5},
                               {AggKind::kMax, 1, 0.5}};
  Rng rng(77);
  std::vector<TupleRef> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(KV(static_cast<int64_t>(rng.Uniform(100)),
                      static_cast<int64_t>(rng.Uniform(1000))));
  }

  // Reference: unbounded single-level.
  PartialAggregator ref_agg(0, {0}, aggs);
  FinalAggregator ref_fin(aggs);
  std::vector<PartialGroup> tmp;
  for (const TupleRef& t : data) ref_agg.Add(*t, &tmp);
  ref_agg.Flush(&tmp);
  for (auto& g : tmp) ref_fin.Merge(std::move(g));

  // Slot-limited low level + merge.
  PartialAggregator low(slots, {0}, aggs);
  FinalAggregator high(aggs);
  std::vector<PartialGroup> partials;
  for (const TupleRef& t : data) low.Add(*t, &partials);
  low.Flush(&partials);
  for (auto& g : partials) high.Merge(std::move(g));

  auto expect = Collect(ref_fin);
  auto got = Collect(high);
  ASSERT_EQ(expect.size(), got.size());
  for (const auto& [key, vals] : expect) {
    ASSERT_TRUE(got.count(key));
    for (size_t i = 0; i < vals.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[key][i], vals[i]) << "key=" << key << " agg=" << i;
    }
  }
  // Fewer slots -> at least as many evictions.
  if (slots > 0 && slots < 100) {
    EXPECT_GT(low.stats().evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweepTest,
                         ::testing::Values(1, 2, 8, 32, 128, 0));

TEST(PartialAggTest, ResidentGroupsBoundedBySlots) {
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5}};
  PartialAggregator agg(16, {0}, aggs);
  std::vector<PartialGroup> out;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    agg.Add(*KV(static_cast<int64_t>(rng.Uniform(10000)), 0), &out);
    EXPECT_LE(agg.resident_groups(), 16u);
  }
}

TEST(PartialAggTest, MemoryStaysFlatWithBoundedSlots) {
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5}};
  PartialAggregator bounded(32, {0}, aggs);
  PartialAggregator unbounded(0, {0}, aggs);
  std::vector<PartialGroup> out;
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    TupleRef t = KV(static_cast<int64_t>(rng.Uniform(1000000)), 0);
    bounded.Add(*t, &out);
    out.clear();
    unbounded.Add(*t, &out);
  }
  EXPECT_LT(bounded.MemoryBytes() * 100, unbounded.MemoryBytes());
}

}  // namespace
}  // namespace sqp
