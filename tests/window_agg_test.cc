#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "exec/plan.h"
#include "exec/window_agg.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t val) {
  return MakeTuple(ts, {Value(ts), Value(val)});
}

TEST(WindowAggTest, TimeSlidingSum) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(10),
      std::vector<AggSpec>{{AggKind::kSum, 1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);

  wa->Push(Element(T(1, 5)));
  wa->Push(Element(T(5, 3)));
  wa->Push(Element(T(12, 2)));  // ts=1 expired (1 <= 12-10).
  ASSERT_EQ(sink->count(), 3u);
  EXPECT_EQ(sink->tuples()[0]->at(1).AsInt(), 5);
  EXPECT_EQ(sink->tuples()[1]->at(1).AsInt(), 8);
  EXPECT_EQ(sink->tuples()[2]->at(1).AsInt(), 5);  // 3 + 2.
}

TEST(WindowAggTest, CountSlidingAvg) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::CountSliding(2),
      std::vector<AggSpec>{{AggKind::kAvg, 1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);
  for (int64_t v : {2, 4, 6, 8}) wa->Push(Element(T(v, v)));
  ASSERT_EQ(sink->count(), 4u);
  EXPECT_DOUBLE_EQ(sink->tuples()[1]->at(1).AsDouble(), 3.0);  // (2+4)/2.
  EXPECT_DOUBLE_EQ(sink->tuples()[3]->at(1).AsDouble(), 7.0);  // (6+8)/2.
}

TEST(WindowAggTest, LandmarkNeverExpires) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::Landmark(0),
      std::vector<AggSpec>{{AggKind::kCount, -1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);
  for (int64_t t = 1; t <= 100; ++t) wa->Push(Element(T(t * 1000, 1)));
  EXPECT_EQ(sink->tuples().back()->at(1).AsInt(), 100);
}

TEST(WindowAggTest, LandmarkStartExcludesEarlier) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::Landmark(50),
      std::vector<AggSpec>{{AggKind::kCount, -1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);
  wa->Push(Element(T(10, 1)));  // Before landmark: excluded.
  wa->Push(Element(T(60, 1)));
  EXPECT_EQ(sink->tuples().back()->at(1).AsInt(), 1);
}

TEST(WindowAggTest, NonInvertibleTriggersRecompute) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(5),
      std::vector<AggSpec>{{AggKind::kMax, 1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);
  wa->Push(Element(T(1, 100)));
  wa->Push(Element(T(2, 50)));
  wa->Push(Element(T(10, 30)));  // Max 100 leaves the window.
  EXPECT_GE(wa->recompute_count(), 1u);
  EXPECT_EQ(sink->tuples().back()->at(1).AsInt(), 30);
}

TEST(WindowAggTest, PunctuationAdvancesTime) {
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(10),
      std::vector<AggSpec>{{AggKind::kSum, 1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);
  wa->Push(Element(T(1, 5)));
  wa->Push(Element(Punctuation::Watermark(100)));  // Expires everything.
  // The punctuation-triggered output reflects the empty window.
  ASSERT_GE(sink->count(), 2u);
  EXPECT_TRUE(sink->tuples().back()->at(1).is_null());  // Empty-window sum.
}

// Property: sliding max maintained via recompute must equal a brute-force
// window scan, under random timestamps and values.
class SlidingEquivalenceTest
    : public ::testing::TestWithParam<std::pair<AggKind, int64_t>> {};

TEST_P(SlidingEquivalenceTest, MatchesBruteForce) {
  auto [kind, window] = GetParam();
  Plan plan;
  auto* wa = plan.Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(window),
      std::vector<AggSpec>{{kind, 1, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  wa->SetOutput(sink);

  Rng rng(21);
  int64_t ts = 0;
  std::deque<std::pair<int64_t, int64_t>> brute;  // (ts, val)
  for (int i = 0; i < 400; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(4));
    int64_t val = static_cast<int64_t>(rng.Uniform(1000));
    wa->Push(Element(T(ts, val)));
    brute.emplace_back(ts, val);
    while (!brute.empty() && brute.front().first <= ts - window) {
      brute.pop_front();
    }
    // Brute-force aggregate.
    double expect = 0;
    if (kind == AggKind::kSum) {
      for (auto& [t2, v] : brute) expect += static_cast<double>(v);
    } else if (kind == AggKind::kMax) {
      expect = -1e18;
      for (auto& [t2, v] : brute) expect = std::max(expect, double(v));
    } else {  // kAvg
      for (auto& [t2, v] : brute) expect += static_cast<double>(v);
      expect /= static_cast<double>(brute.size());
    }
    ASSERT_NEAR(sink->tuples().back()->at(1).ToDouble(), expect, 1e-6)
        << "i=" << i << " kind=" << AggKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndWindows, SlidingEquivalenceTest,
    ::testing::Values(std::make_pair(AggKind::kSum, int64_t{10}),
                      std::make_pair(AggKind::kSum, int64_t{50}),
                      std::make_pair(AggKind::kMax, int64_t{10}),
                      std::make_pair(AggKind::kMax, int64_t{50}),
                      std::make_pair(AggKind::kAvg, int64_t{25})),
    [](const auto& info) {
      return std::string(AggKindName(info.param.first)) + "_w" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace sqp
