// Allocation-counting tests for the zero-allocation key-probe paths:
// this TU replaces global operator new to count heap allocations, then
// asserts that steady-state probes (existing keys/groups) perform none.
// Inserts of genuinely new keys are allowed to allocate — that is the
// KeyView::Materialize contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/tuple.h"
#include "exec/aggregate_op.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/punct_groupby.h"
#include "exec/sym_hash_join.h"
#include "stream/element_batch.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sqp {
namespace {

template <typename Fn>
uint64_t CountAllocs(Fn&& fn) {
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(AllocProbeTest, KeyViewHashAndEqualityMatchOwningKey) {
  TupleRef t = MakeTuple(7, {Value(int64_t{42}), Value(3.5), Value("abc")});
  std::vector<int> cols = {0, 2};
  Key owned = ExtractKey(*t, cols);
  KeyView view(*t, cols);
  KeyHash hash;
  EXPECT_EQ(hash(owned), hash(view));
  EXPECT_TRUE(KeyEq{}(view, owned));
  EXPECT_TRUE(KeyEq{}(owned, view));
  EXPECT_EQ(view.Materialize(), owned);
}

TEST(AllocProbeTest, KeyMapProbeIsAllocationFree) {
  KeyMap<int> map;
  std::vector<int> cols = {0};
  std::vector<TupleRef> keep;
  for (int64_t k = 0; k < 64; ++k) {
    keep.push_back(MakeTuple(k, {Value(k)}));
    map.emplace(ExtractKey(*keep.back(), cols), static_cast<int>(k));
  }
  TupleRef hit = MakeTuple(0, {Value(int64_t{17})});
  TupleRef miss = MakeTuple(0, {Value(int64_t{9999})});
  int found = -1;
  bool miss_found = true;
  uint64_t allocs = CountAllocs([&] {
    auto it = map.find(KeyView(*hit, cols));
    if (it != map.end()) found = it->second;
    // A missing key must not allocate either — only a real insert may.
    miss_found = map.find(KeyView(*miss, cols)) != map.end();
  });
  EXPECT_EQ(found, 17);
  EXPECT_FALSE(miss_found);
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocProbeTest, KeySetDuplicateProbeIsAllocationFree) {
  KeySet seen;
  std::vector<int> cols = {0};
  TupleRef t = MakeTuple(0, {Value(int64_t{5})});
  seen.insert(KeyView(*t, cols).Materialize());
  bool hit = false;
  uint64_t allocs = CountAllocs(
      [&] { hit = seen.find(KeyView(*t, cols)) != seen.end(); });
  EXPECT_TRUE(hit);
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocProbeTest, SymHashJoinExistingKeyPushIsAllocationFree) {
  // Warm up one key on the left side far enough that the bucket vector
  // has spare capacity; then a further same-key push probes the (empty-
  // for-this-key) right table and appends — zero allocations.
  SymmetricHashJoinOp join({0}, {0});
  CountingSink sink;
  join.SetOutput(&sink);
  std::vector<Element> warm;
  for (int64_t i = 0; i < 9; ++i) {
    warm.push_back(Element(MakeTuple(i, {Value(int64_t{1}), Value(i)})));
  }
  for (const Element& e : warm) join.Push(e, 0);
  // Give the right table a different key so the probe hits a bucket but
  // finds no match vector for key 1.
  Element right(MakeTuple(0, {Value(int64_t{2}), Value(int64_t{0})}));
  join.Push(right, 1);

  Element next(MakeTuple(10, {Value(int64_t{1}), Value(int64_t{10})}));
  uint64_t allocs = CountAllocs([&] { join.Push(next, 0); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(join.stats().tuples_in, 11u);
}

TEST(AllocProbeTest, GroupByFoldIntoExistingGroupIsAllocationFree) {
  GroupByOptions opt;
  opt.key_cols = {0};
  opt.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kSum, 1, 0.5}};
  opt.window_size = 0;  // Unwindowed: emission only at Flush.
  GroupByAggregateOp agg(opt);
  CountingSink sink;
  agg.SetOutput(&sink);
  for (int64_t i = 0; i < 8; ++i) {
    agg.Push(Element(MakeTuple(i, {Value(i % 4), Value(i)})));
  }
  Element next(MakeTuple(8, {Value(int64_t{2}), Value(int64_t{8})}));
  uint64_t allocs = CountAllocs([&] { agg.Push(next); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(agg.open_groups(), 4u);
}

TEST(AllocProbeTest, DistinctDuplicateIsAllocationFree) {
  DistinctOp distinct({0});
  CountingSink sink;
  distinct.SetOutput(&sink);
  distinct.Push(Element(MakeTuple(0, {Value(int64_t{3})})));
  Element dup(MakeTuple(1, {Value(int64_t{3})}));
  uint64_t allocs = CountAllocs([&] { distinct.Push(dup); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(sink.tuples(), 1u);
}

TEST(AllocProbeTest, PunctGroupByExistingGroupIsAllocationFree) {
  // Value-keyed grouping was already heterogeneous (probes by const
  // Value&); pin the zero-allocation property here so it stays true.
  PunctuationGroupByOp agg(0, {{AggKind::kCount, -1, 0.5}});
  CountingSink sink;
  agg.SetOutput(&sink);
  for (int64_t i = 0; i < 4; ++i) {
    agg.Push(Element(MakeTuple(i, {Value(int64_t{7}), Value(i)})));
  }
  Element next(MakeTuple(4, {Value(int64_t{7}), Value(int64_t{4})}));
  uint64_t allocs = CountAllocs([&] { agg.Push(next); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(agg.open_groups(), 1u);
}

TEST(AllocProbeTest, ElementBatchSmallBufferIsInline) {
  size_t size = 0;
  uint64_t allocs = CountAllocs([&] {
    ElementBatch batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(Element(Punctuation::Watermark(i)));
    }
    size = batch.size();
  });
  EXPECT_EQ(size, 8u);
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocProbeTest, ElementBatchSpillsAndMoves) {
  ElementBatch batch;
  for (int64_t i = 0; i < 40; ++i) {
    batch.push_back(i % 5 == 0
                        ? Element(Punctuation::Watermark(i))
                        : Element(MakeTuple(i, {Value(i)})));
  }
  ASSERT_EQ(batch.size(), 40u);
  ElementBatch moved(std::move(batch));
  EXPECT_EQ(moved.size(), 40u);
  EXPECT_TRUE(batch.empty());  // NOLINT(bugprone-use-after-move)
  int64_t i = 0;
  for (const Element& e : moved) {
    if (i % 5 == 0) {
      ASSERT_TRUE(e.is_punctuation());
      EXPECT_EQ(e.punctuation().ts, i);
    } else {
      ASSERT_TRUE(e.is_tuple());
      EXPECT_EQ(e.tuple()->ts(), i);
    }
    ++i;
  }
  // Cleared batches keep their capacity: refilling is allocation-free.
  moved.clear();
  uint64_t allocs = CountAllocs([&] {
    for (int64_t j = 0; j < 40; ++j) {
      moved.push_back(Element(Punctuation::Watermark(j)));
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace sqp
