#include <gtest/gtest.h>

#include "window/count_window.h"
#include "window/partitioned_window.h"
#include "window/punctuation_window.h"
#include "window/time_window.h"
#include "window/window_spec.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t v = 0) {
  return MakeTuple(ts, {Value(ts), Value(v)});
}

// --- WindowSpec ---

TEST(WindowSpecTest, Validation) {
  EXPECT_TRUE(WindowSpec::TimeSliding(10).Validate().ok());
  EXPECT_FALSE(WindowSpec::TimeSliding(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::CountSliding(-5).Validate().ok());
  EXPECT_TRUE(WindowSpec::Landmark().Validate().ok());
  EXPECT_TRUE(WindowSpec::Punctuated().Validate().ok());
}

TEST(WindowSpecTest, Names) {
  EXPECT_EQ(WindowSpec::TimeTumbling(60).ToString(), "time-tumbling size=60");
  EXPECT_EQ(WindowSpec::Landmark(5).ToString(), "landmark start=5");
}

// --- TimeWindowBuffer ---

TEST(TimeWindowTest, KeepsOnlyRecentTuples) {
  TimeWindowBuffer w(10);
  w.Insert(T(1));
  w.Insert(T(5));
  w.Insert(T(11));  // Expires ts=1 (1 <= 11-10).
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.contents().front()->ts(), 5);
}

TEST(TimeWindowTest, ExpiredTuplesReported) {
  TimeWindowBuffer w(3);
  std::vector<TupleRef> expired;
  w.Insert(T(1), &expired);
  w.Insert(T(2), &expired);
  EXPECT_TRUE(expired.empty());
  w.Insert(T(5), &expired);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0]->ts(), 1);
  EXPECT_EQ(expired[1]->ts(), 2);
}

TEST(TimeWindowTest, AdvanceToExpiresWithoutInsert) {
  TimeWindowBuffer w(5);
  w.Insert(T(1));
  std::vector<TupleRef> expired;
  w.AdvanceTo(100, &expired);
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_TRUE(w.empty());
}

TEST(TimeWindowTest, BoundaryIsExclusiveAtTail) {
  TimeWindowBuffer w(10);
  w.Insert(T(0));
  w.Insert(T(10));  // Window (0, 10]: ts=0 expires exactly.
  EXPECT_EQ(w.size(), 1u);
}

TEST(TimeWindowTest, MemoryTracksContents) {
  TimeWindowBuffer w(100);
  EXPECT_EQ(w.MemoryBytes(), 0u);
  w.Insert(T(1));
  size_t one = w.MemoryBytes();
  w.Insert(T(2));
  EXPECT_EQ(w.MemoryBytes(), 2 * one);
  w.AdvanceTo(500);
  EXPECT_EQ(w.MemoryBytes(), 0u);
}

TEST(TumblingAssignerTest, Buckets) {
  TumblingAssigner a(60);
  EXPECT_EQ(a.BucketOf(0), 0);
  EXPECT_EQ(a.BucketOf(59), 0);
  EXPECT_EQ(a.BucketOf(60), 1);
  EXPECT_EQ(a.BucketStart(2), 120);
  EXPECT_EQ(a.BucketEnd(2), 180);
}

// --- CountWindowBuffer ---

TEST(CountWindowTest, EvictsOldestWhenFull) {
  CountWindowBuffer w(3);
  EXPECT_FALSE(w.Insert(T(1)).has_value());
  EXPECT_FALSE(w.Insert(T(2)).has_value());
  EXPECT_FALSE(w.Insert(T(3)).has_value());
  EXPECT_TRUE(w.full());
  auto evicted = w.Insert(T(4));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ((*evicted)->ts(), 1);
  EXPECT_EQ(w.size(), 3u);
}

// --- PunctuationWindowBuffer ---

TEST(PunctuationWindowTest, CloseKeyReleasesGroup) {
  PunctuationWindowBuffer w(1);  // Key col 1.
  w.Insert(MakeTuple(1, {Value(int64_t{1}), Value(int64_t{7})}));
  w.Insert(MakeTuple(2, {Value(int64_t{2}), Value(int64_t{7})}));
  w.Insert(MakeTuple(3, {Value(int64_t{3}), Value(int64_t{8})}));
  EXPECT_EQ(w.num_open_keys(), 2u);

  auto closed = w.OnPunctuation(Punctuation::CloseKey(3, Value(int64_t{7})));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first.AsInt(), 7);
  EXPECT_EQ(closed[0].second.size(), 2u);
  EXPECT_EQ(w.num_open_keys(), 1u);
  EXPECT_EQ(w.buffered_tuples(), 1u);
}

TEST(PunctuationWindowTest, WatermarkClosesOldGroups) {
  PunctuationWindowBuffer w(1);
  w.Insert(MakeTuple(1, {Value(int64_t{1}), Value(int64_t{7})}));
  w.Insert(MakeTuple(9, {Value(int64_t{9}), Value(int64_t{8})}));
  auto closed = w.OnPunctuation(Punctuation::Watermark(5));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first.AsInt(), 7);
  EXPECT_EQ(w.num_open_keys(), 1u);
}

TEST(PunctuationWindowTest, CloseUnknownKeyIsNoop) {
  PunctuationWindowBuffer w(1);
  auto closed = w.OnPunctuation(Punctuation::CloseKey(1, Value(int64_t{42})));
  EXPECT_TRUE(closed.empty());
}

// --- PartitionedCountWindow ---

TEST(PartitionedWindowTest, IndependentPartitions) {
  PartitionedCountWindow w({1}, 2);  // Partition by col 1, 2 rows each.
  w.Insert(MakeTuple(1, {Value(int64_t{1}), Value(int64_t{10})}));
  w.Insert(MakeTuple(2, {Value(int64_t{2}), Value(int64_t{10})}));
  w.Insert(MakeTuple(3, {Value(int64_t{3}), Value(int64_t{20})}));
  EXPECT_EQ(w.num_partitions(), 2u);

  // Third insert into partition 10 evicts its oldest only.
  auto evicted = w.Insert(MakeTuple(4, {Value(int64_t{4}), Value(int64_t{10})}));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ((*evicted)->ts(), 1);

  Key k10{{Value(int64_t{10})}};
  EXPECT_EQ(w.Partition(k10).size(), 2u);
  Key k20{{Value(int64_t{20})}};
  EXPECT_EQ(w.Partition(k20).size(), 1u);
  EXPECT_EQ(w.Contents().size(), 3u);
}

TEST(PartitionedWindowTest, UnknownPartitionEmpty) {
  PartitionedCountWindow w({0}, 4);
  Key k{{Value(int64_t{5})}};
  EXPECT_TRUE(w.Partition(k).empty());
}

}  // namespace
}  // namespace sqp
