#include <gtest/gtest.h>

#include <cmath>

#include "agg/aggregate_fn.h"
#include "common/rng.h"

namespace sqp {
namespace {

std::unique_ptr<Accumulator> Acc(AggKind kind, double param = 0.5) {
  auto fn = AggregateFunction::Make(kind, param);
  EXPECT_TRUE(fn.ok());
  return fn->NewAccumulator();
}

TEST(AggClassTest, Classification) {
  EXPECT_EQ(ClassOf(AggKind::kSum), AggClass::kDistributive);
  EXPECT_EQ(ClassOf(AggKind::kCount), AggClass::kDistributive);
  EXPECT_EQ(ClassOf(AggKind::kAvg), AggClass::kAlgebraic);
  EXPECT_EQ(ClassOf(AggKind::kMedian), AggClass::kHolistic);
  EXPECT_EQ(ClassOf(AggKind::kCountDistinct), AggClass::kHolistic);
}

TEST(AggParseTest, Names) {
  EXPECT_EQ(*ParseAggKind("sum"), AggKind::kSum);
  EXPECT_EQ(*ParseAggKind("count_distinct"), AggKind::kCountDistinct);
  EXPECT_FALSE(ParseAggKind("bogus").ok());
  EXPECT_STREQ(AggKindName(AggKind::kBlend), "blend");
}

TEST(AccumulatorTest, Count) {
  auto a = Acc(AggKind::kCount);
  EXPECT_EQ(a->Result().AsInt(), 0);
  a->Add(Value(int64_t{5}));
  a->Add(Value("x"));
  EXPECT_EQ(a->Result().AsInt(), 2);
  a->Remove(Value(int64_t{5}));
  EXPECT_EQ(a->Result().AsInt(), 1);
  EXPECT_TRUE(a->invertible());
}

TEST(AccumulatorTest, SumPreservesIntType) {
  auto a = Acc(AggKind::kSum);
  EXPECT_TRUE(a->Result().is_null());
  a->Add(Value(int64_t{2}));
  a->Add(Value(int64_t{3}));
  EXPECT_EQ(a->Result().type(), ValueType::kInt);
  EXPECT_EQ(a->Result().AsInt(), 5);
}

TEST(AccumulatorTest, SumWidensToDouble) {
  auto a = Acc(AggKind::kSum);
  a->Add(Value(int64_t{2}));
  a->Add(Value(0.5));
  EXPECT_EQ(a->Result().type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 2.5);
}

TEST(AccumulatorTest, MinMax) {
  auto mn = Acc(AggKind::kMin);
  auto mx = Acc(AggKind::kMax);
  for (int64_t v : {5, 2, 9, 3}) {
    mn->Add(Value(v));
    mx->Add(Value(v));
  }
  EXPECT_EQ(mn->Result().AsInt(), 2);
  EXPECT_EQ(mx->Result().AsInt(), 9);
  EXPECT_FALSE(mn->invertible());
}

TEST(AccumulatorTest, AvgAndRemove) {
  auto a = Acc(AggKind::kAvg);
  a->Add(Value(int64_t{2}));
  a->Add(Value(int64_t{4}));
  a->Add(Value(int64_t{9}));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 5.0);
  a->Remove(Value(int64_t{9}));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 3.0);
}

TEST(AccumulatorTest, StddevMatchesFormula) {
  auto a = Acc(AggKind::kStddev);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a->Add(Value(v));
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(a->Result().AsDouble(), 2.1381, 1e-3);
}

TEST(AccumulatorTest, MedianOddAndEven) {
  auto a = Acc(AggKind::kMedian);
  for (int64_t v : {5, 1, 3}) a->Add(Value(v));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 3.0);
  a->Add(Value(int64_t{7}));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 4.0);
}

TEST(AccumulatorTest, CountDistinct) {
  auto a = Acc(AggKind::kCountDistinct);
  for (int64_t v : {1, 2, 2, 3, 3, 3}) a->Add(Value(v));
  EXPECT_EQ(a->Result().AsInt(), 3);
}

TEST(AccumulatorTest, FirstLast) {
  auto f = Acc(AggKind::kFirst);
  auto l = Acc(AggKind::kLast);
  for (int64_t v : {10, 20, 30}) {
    f->Add(Value(v));
    l->Add(Value(v));
  }
  EXPECT_EQ(f->Result().AsInt(), 10);
  EXPECT_EQ(l->Result().AsInt(), 30);
}

TEST(AccumulatorTest, BlendExponentialSmoothing) {
  auto a = Acc(AggKind::kBlend, 0.5);
  a->Add(Value(10.0));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 10.0);  // First obs initializes.
  a->Add(Value(20.0));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 15.0);
  a->Add(Value(15.0));
  EXPECT_DOUBLE_EQ(a->Result().AsDouble(), 15.0);
}

TEST(AccumulatorTest, BlendRejectsBadFactor) {
  EXPECT_FALSE(AggregateFunction::Make(AggKind::kBlend, 0.0).ok());
  EXPECT_FALSE(AggregateFunction::Make(AggKind::kBlend, 1.5).ok());
}

TEST(AccumulatorTest, HolisticMemoryGrows) {
  auto med = Acc(AggKind::kMedian);
  auto sum = Acc(AggKind::kSum);
  size_t med0 = med->MemoryBytes();
  size_t sum0 = sum->MemoryBytes();
  for (int i = 0; i < 10000; ++i) {
    med->Add(Value(static_cast<double>(i)));
    sum->Add(Value(static_cast<double>(i)));
  }
  EXPECT_GT(med->MemoryBytes(), med0 + 10000 * sizeof(double) / 2);
  EXPECT_EQ(sum->MemoryBytes(), sum0);  // Distributive: O(1) state.
}

// --- Merge property: merging partials equals aggregating everything ---
// (the correctness condition for two-level partial aggregation.)

class MergePropertyTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(MergePropertyTest, SplitMergeEqualsWhole) {
  AggKind kind = GetParam();
  Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 500; ++i) data.push_back(rng.NextDouble() * 100.0);

  auto whole = Acc(kind);
  for (double v : data) whole->Add(Value(v));

  // Split into 7 chunks, aggregate each, merge.
  auto merged = Acc(kind);
  size_t chunk = data.size() / 7 + 1;
  for (size_t start = 0; start < data.size(); start += chunk) {
    auto part = Acc(kind);
    for (size_t i = start; i < std::min(start + chunk, data.size()); ++i) {
      part->Add(Value(data[i]));
    }
    merged->Merge(*part);
  }

  Value a = whole->Result();
  Value b = merged->Result();
  ASSERT_EQ(a.type(), b.type());
  if (a.type() == ValueType::kDouble) {
    EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-6);
  } else {
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(whole->count(), merged->count());
}

INSTANTIATE_TEST_SUITE_P(
    AllMergeableKinds, MergePropertyTest,
    ::testing::Values(AggKind::kCount, AggKind::kSum, AggKind::kMin,
                      AggKind::kMax, AggKind::kAvg, AggKind::kStddev,
                      AggKind::kMedian, AggKind::kCountDistinct),
    [](const ::testing::TestParamInfo<AggKind>& info) {
      return AggKindName(info.param);
    });

// --- Remove property: add k, remove j first == aggregate of suffix ---

class RemovePropertyTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(RemovePropertyTest, RemovePrefixEqualsSuffixAggregate) {
  AggKind kind = GetParam();
  Rng rng(13);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(rng.NextDouble() * 10.0);

  auto acc = Acc(kind);
  for (double v : data) acc->Add(Value(v));
  for (size_t i = 0; i < 50; ++i) acc->Remove(Value(data[i]));

  auto suffix = Acc(kind);
  for (size_t i = 50; i < data.size(); ++i) suffix->Add(Value(data[i]));

  EXPECT_NEAR(acc->Result().ToDouble(), suffix->Result().ToDouble(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    InvertibleKinds, RemovePropertyTest,
    ::testing::Values(AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                      AggKind::kStddev),
    [](const ::testing::TestParamInfo<AggKind>& info) {
      return AggKindName(info.param);
    });

}  // namespace
}  // namespace sqp
