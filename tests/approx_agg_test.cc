#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "cql/planner.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "opt/memory_bound.h"
#include "stream/generators.h"
#include "synopsis/gk_quantile.h"

namespace sqp {
namespace {

std::unique_ptr<Accumulator> Acc(AggKind kind, double param = 0.5) {
  auto fn = AggregateFunction::Make(kind, param);
  EXPECT_TRUE(fn.ok());
  return fn->NewAccumulator();
}

TEST(ApproxAggTest, Classification) {
  EXPECT_EQ(ClassOf(AggKind::kApproxMedian), AggClass::kSketched);
  EXPECT_EQ(ClassOf(AggKind::kApproxCountDistinct), AggClass::kSketched);
  EXPECT_EQ(*ParseAggKind("approx_median"), AggKind::kApproxMedian);
  EXPECT_EQ(*ParseAggKind("approx_count_distinct"),
            AggKind::kApproxCountDistinct);
}

TEST(ApproxAggTest, ApproxMedianCloseToExact) {
  auto approx = Acc(AggKind::kApproxMedian, 0.01);
  auto exact = Acc(AggKind::kMedian);
  Rng rng(81);
  for (int i = 0; i < 50000; ++i) {
    Value v(rng.NextDouble() * 1000.0);
    approx->Add(v);
    exact->Add(v);
  }
  double e = exact->Result().AsDouble();
  EXPECT_NEAR(approx->Result().AsDouble() / e, 1.0, 0.05);
}

TEST(ApproxAggTest, ApproxMedianBoundedMemory) {
  auto approx = Acc(AggKind::kApproxMedian, 0.01);
  auto exact = Acc(AggKind::kMedian);
  Rng rng(82);
  for (int i = 0; i < 100000; ++i) {
    Value v(rng.NextDouble());
    approx->Add(v);
    exact->Add(v);
  }
  // The sketch's whole point: orders of magnitude less state.
  EXPECT_LT(approx->MemoryBytes() * 50, exact->MemoryBytes());
}

TEST(ApproxAggTest, ApproxMedianMerge) {
  auto a = Acc(AggKind::kApproxMedian, 0.01);
  auto b = Acc(AggKind::kApproxMedian, 0.01);
  Rng rng(83);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble() * 100.0;
    all.push_back(v);
    (i % 2 == 0 ? a : b)->Add(Value(v));
  }
  a->Merge(*b);
  std::sort(all.begin(), all.end());
  double truth = all[all.size() / 2];
  // Merge doubles the rank error bound; allow a loose window.
  EXPECT_NEAR(a->Result().AsDouble() / truth, 1.0, 0.1);
  EXPECT_EQ(a->count(), 20000u);
}

TEST(ApproxAggTest, ApproxCountDistinctAccuracy) {
  auto acc = Acc(AggKind::kApproxCountDistinct);
  for (int64_t i = 0; i < 50000; ++i) {
    acc->Add(Value(i % 10000));  // 10k distinct.
  }
  EXPECT_NEAR(static_cast<double>(acc->Result().AsInt()) / 10000.0, 1.0, 0.1);
}

TEST(ApproxAggTest, ApproxCountDistinctMergeEqualsUnion) {
  auto a = Acc(AggKind::kApproxCountDistinct);
  auto b = Acc(AggKind::kApproxCountDistinct);
  for (int64_t i = 0; i < 6000; ++i) a->Add(Value(i));
  for (int64_t i = 4000; i < 10000; ++i) b->Add(Value(i));
  a->Merge(*b);
  EXPECT_NEAR(static_cast<double>(a->Result().AsInt()) / 10000.0, 1.0, 0.1);
}

TEST(ApproxAggTest, SketchedVerdictIsBounded) {
  // [ABB+02] + slide 38: the exact holistic version is unbounded, the
  // sketched version bounded.
  AggQueryDesc exact;
  exact.group_domains = {{"proto", true, 256}};
  exact.aggs = {{AggKind::kMedian, false}};
  EXPECT_EQ(AnalyzeAggregateQuery(exact).verdict, MemoryVerdict::kUnbounded);

  AggQueryDesc sketched;
  sketched.group_domains = {{"proto", true, 256}};
  sketched.aggs = {{AggKind::kApproxMedian, false}};
  EXPECT_EQ(AnalyzeAggregateQuery(sketched).verdict, MemoryVerdict::kBounded);
}

TEST(ApproxAggTest, CqlEndToEnd) {
  cql::Catalog cat;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  ASSERT_TRUE(cat.Register("packets", gen::PacketSchema(), domains).ok());

  auto cq = cql::Compile(
      "select protocol, approx_count_distinct(src_ip), approx_median(len) "
      "from packets group by protocol",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  // Sketched aggregates over a bounded group domain: bounded memory.
  EXPECT_EQ((*cq)->memory().verdict, MemoryVerdict::kBounded);

  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  gen::PacketGenerator tap(gen::PacketOptions{});
  std::unordered_map<int64_t, std::unordered_set<int64_t>> truth;
  for (int i = 0; i < 50000; ++i) {
    TupleRef p = tap.Next();
    truth[p->at(gen::PacketCols::kProtocol).AsInt()].insert(
        p->at(gen::PacketCols::kSrcIp).AsInt());
    (*cq)->Push(Element(p));
  }
  (*cq)->Finish();

  ASSERT_EQ(sink.count(), truth.size());
  for (const TupleRef& row : sink.tuples()) {
    int64_t proto = row->at(0).AsInt();
    double est = static_cast<double>(row->at(1).AsInt());
    double exact = static_cast<double>(truth[proto].size());
    EXPECT_NEAR(est / exact, 1.0, 0.1) << "proto=" << proto;
  }
}

TEST(ApproxAggTest, OutputSchemaTypes) {
  Schema in = *Schema::WithOrdering(
      {{"ts", ValueType::kInt}, {"k", ValueType::kInt}, {"v", ValueType::kInt}},
      "ts");
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kApproxMedian, 2, 0.01},
              {AggKind::kApproxCountDistinct, 2, 0.5}};
  auto schema = GroupByAggregateOp::OutputSchema(in, opt);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->field(2).type, ValueType::kDouble);
  EXPECT_EQ(schema->field(3).type, ValueType::kInt);
}

TEST(GkMergeTest, MergedSummaryStaysSmall) {
  GkQuantile a(0.01), b(0.01);
  Rng rng(84);
  for (int i = 0; i < 20000; ++i) {
    a.Add(rng.NextDouble());
    b.Add(rng.NextDouble());
  }
  size_t before = a.summary_size();
  a.Merge(b);
  EXPECT_EQ(a.n(), 40000u);
  // Compression keeps the merged summary within a small factor.
  EXPECT_LT(a.summary_size(), 4 * before + 64);
}

}  // namespace
}  // namespace sqp
