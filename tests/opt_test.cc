#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "opt/memory_bound.h"
#include "opt/rate_model.h"
#include "opt/rate_optimizer.h"
#include "opt/sharing.h"

namespace sqp {
namespace {

// --- Rate model: the slide-41 example, exactly ---

TEST(RateModelTest, Slide41PlanRates) {
  // Stream at 500 tuples/sec. Slow op: service 50 t/s, sel 0.1.
  // Very fast op: sel 0.1, unbounded service rate.
  RatedStage slow{"slow", 0.1, 50.0};
  RatedStage fast{"fast", 0.1, 1e18};

  // Plan A (slow first): min(500, 50)*0.1 = 5 -> *0.1 = 0.5 t/s.
  EXPECT_NEAR(PipelineOutputRate(500.0, {slow, fast}), 0.5, 1e-9);
  // Plan B (fast first): 500*0.1 = 50 -> min(50,50)*0.1 = 5 t/s.
  EXPECT_NEAR(PipelineOutputRate(500.0, {fast, slow}), 5.0, 1e-9);
}

TEST(RateOptimizerTest, PicksTheSlide41Winner) {
  RatedStage slow{"slow", 0.1, 50.0};
  RatedStage fast{"fast", 0.1, 1e18};
  auto plan = MaximizeOutputRate(500.0, {slow, fast});
  ASSERT_EQ(plan.order.size(), 2u);
  EXPECT_EQ(plan.order[0], 1u);  // Fast op first.
  EXPECT_NEAR(plan.output_rate, 5.0, 1e-9);
}

TEST(RateOptimizerTest, WorkObjectiveCannotDistinguishSlide41Plans) {
  // The tutorial's point (slides 40-41): a cost/work objective sees the
  // two orderings as equal — the slow operator does ~1 second of work
  // per second either way — while their output rates differ 10x. Only a
  // rate-based objective separates them.
  RatedStage slow{"slow", 0.1, 50.0};
  RatedStage fast{"fast", 0.1, 1e18};
  double work_slow_first = PipelineWork(500.0, {slow, fast});
  double work_fast_first = PipelineWork(500.0, {fast, slow});
  EXPECT_NEAR(work_slow_first, work_fast_first, 1e-6);
  double rate_slow_first = PipelineOutputRate(500.0, {slow, fast});
  double rate_fast_first = PipelineOutputRate(500.0, {fast, slow});
  EXPECT_NEAR(rate_fast_first / rate_slow_first, 10.0, 1e-6);
}

TEST(RateOptimizerTest, ExhaustiveBeatsOrEqualsAnyFixedOrder) {
  Rng rng(3);
  std::vector<RatedStage> stages;
  for (int i = 0; i < 5; ++i) {
    stages.push_back({"s" + std::to_string(i), 0.1 + rng.NextDouble() * 0.8,
                      10.0 + rng.NextDouble() * 1000.0});
  }
  auto best = MaximizeOutputRate(500.0, stages);
  EXPECT_GE(best.output_rate, PipelineOutputRate(500.0, stages) - 1e-9);
  std::reverse(stages.begin(), stages.end());
  EXPECT_GE(best.output_rate, PipelineOutputRate(500.0, stages) - 1e-9);
}

TEST(RateModelTest, JoinOutputRate) {
  RatedJoin join{0.01, 10.0, 20.0};
  // f * r1 * r2 * (w1 + w2) = 0.01 * 5 * 4 * 30 = 6.
  EXPECT_NEAR(JoinOutputRate(5.0, 4.0, join), 6.0, 1e-9);
}

TEST(RateOptimizerTest, JoinOrderPrefersSelectiveFirst) {
  // Three streams; stream pair (0,1) has tiny selectivity — joining them
  // first minimizes intermediate rate but output rate of the full tree is
  // fixed? No: left-deep trees differ because intermediate rates feed
  // subsequent join terms. Verify the search returns the max.
  std::vector<double> rates = {10.0, 10.0, 10.0};
  std::vector<std::vector<double>> sel = {
      {1, 0.001, 0.5}, {0.001, 1, 0.5}, {0.5, 0.5, 1}};
  auto best = BestJoinOrder(rates, sel, 1.0);
  ASSERT_EQ(best.order.size(), 3u);
  // Exhaustive check.
  std::vector<size_t> perm = {0, 1, 2};
  double max_rate = 0;
  std::sort(perm.begin(), perm.end());
  do {
    double rate = rates[perm[0]];
    std::vector<size_t> joined = {perm[0]};
    for (size_t k = 1; k < 3; ++k) {
      double s = 1.0;
      for (size_t i : joined) s *= sel[i][perm[k]];
      rate = JoinOutputRate(rate, rates[perm[k]], RatedJoin{s, 1.0, 1.0});
      joined.push_back(perm[k]);
    }
    max_rate = std::max(max_rate, rate);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(best.output_rate, max_rate, 1e-9);
}

// --- Bounded-memory analysis [ABB+02], slide 36's two queries ---

TEST(MemoryBoundTest, UnboundedGroupingAttribute) {
  // select length ... group by length, with length unbounded.
  AggQueryDesc desc;
  desc.group_domains = {{"length", false, 0}};
  auto a = AnalyzeAggregateQuery(desc);
  EXPECT_EQ(a.verdict, MemoryVerdict::kUnbounded);
  EXPECT_NE(a.explanation.find("length"), std::string::npos);
}

TEST(MemoryBoundTest, RangeRestrictedGroupingIsBounded) {
  // Slide 36's bounded version: length > 512 and length < 1024.
  AggQueryDesc desc;
  desc.group_domains = {{"length", true, 511}};
  desc.aggs = {{AggKind::kCount, true}};
  auto a = AnalyzeAggregateQuery(desc);
  EXPECT_EQ(a.verdict, MemoryVerdict::kBounded);
  EXPECT_EQ(a.max_groups, 511u);
}

TEST(MemoryBoundTest, HolisticOnUnboundedAttrIsUnbounded) {
  AggQueryDesc desc;
  desc.group_domains = {{"proto", true, 256}};
  desc.aggs = {{AggKind::kMedian, false}};
  auto a = AnalyzeAggregateQuery(desc);
  EXPECT_EQ(a.verdict, MemoryVerdict::kUnbounded);
  EXPECT_NE(a.explanation.find("median"), std::string::npos);
}

TEST(MemoryBoundTest, HolisticOnBoundedAttrIsFine) {
  AggQueryDesc desc;
  desc.group_domains = {{"proto", true, 256}};
  desc.aggs = {{AggKind::kCountDistinct, true}};
  EXPECT_EQ(AnalyzeAggregateQuery(desc).verdict, MemoryVerdict::kBounded);
}

TEST(MemoryBoundTest, GroupCountMultiplies) {
  AggQueryDesc desc;
  desc.group_domains = {{"a", true, 10}, {"b", true, 20}};
  auto a = AnalyzeAggregateQuery(desc);
  EXPECT_EQ(a.verdict, MemoryVerdict::kBounded);
  EXPECT_EQ(a.max_groups, 200u);
}

// --- Shared predicate evaluation ---

TEST(SharedRangeFilterTest, MatchesSameAsNaive) {
  SharedRangeFilter f;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    double lo = rng.NextDouble() * 100.0;
    f.AddRange(lo, lo + rng.NextDouble() * 20.0);
  }
  f.Build();
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextDouble() * 120.0 - 10.0;
    auto a = f.Match(x);
    auto b = f.MatchNaive(x);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "x=" << x;
  }
}

TEST(SharedRangeFilterTest, PointQueries) {
  SharedRangeFilter f;
  int q0 = f.AddRange(0.0, 10.0);
  int q1 = f.AddRange(5.0, 15.0);
  int q2 = f.AddRange(20.0, 30.0);
  f.Build();
  auto m = f.Match(7.0);
  std::sort(m.begin(), m.end());
  EXPECT_EQ(m, (std::vector<int>{q0, q1}));
  EXPECT_TRUE(f.Match(16.0).empty());
  EXPECT_EQ(f.Match(25.0), std::vector<int>{q2});
}

TEST(SharedRangeFilterTest, BoundaryInclusive) {
  SharedRangeFilter f;
  int q = f.AddRange(1.0, 2.0);
  f.Build();
  EXPECT_EQ(f.Match(1.0), std::vector<int>{q});
  EXPECT_EQ(f.Match(2.0), std::vector<int>{q});
  EXPECT_TRUE(f.Match(2.0001).empty());
}

// --- Shared window join ---

TEST(SharedWindowJoinTest, PerQueryWindowAttribution) {
  // Three queries with windows 5, 20, 100 over the same join.
  SharedWindowJoin j({5, 20, 100}, {1}, {1});
  auto push = [&](int side, int64_t ts, int64_t key) {
    j.Push(side, MakeTuple(ts, {Value(ts), Value(key)}));
  };
  push(0, 0, 1);
  push(1, 3, 1);    // Gap 3: all three queries match.
  push(1, 15, 1);   // Gap 15: queries with windows 20 and 100.
  push(1, 60, 1);   // Gap 60: only window 100.
  EXPECT_EQ(j.results()[0], 1u);
  EXPECT_EQ(j.results()[1], 2u);
  EXPECT_EQ(j.results()[2], 3u);
}

TEST(SharedWindowJoinTest, MatchesPerQueryDedicatedJoins) {
  std::vector<int64_t> windows = {10, 50};
  Rng rng(6);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(3));
    inputs.emplace_back(rng.Bernoulli(0.5) ? 0 : 1,
                        MakeTuple(ts, {Value(ts), Value(static_cast<int64_t>(
                                                      rng.Uniform(10)))}));
  }
  SharedWindowJoin shared(windows, {1}, {1});
  for (auto& [side, t] : inputs) shared.Push(side, t);

  for (size_t q = 0; q < windows.size(); ++q) {
    SharedWindowJoin dedicated({windows[q]}, {1}, {1});
    for (auto& [side, t] : inputs) dedicated.Push(side, t);
    EXPECT_EQ(shared.results()[q], dedicated.results()[0]) << "q=" << q;
  }
}

}  // namespace
}  // namespace sqp
