#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "arch/engine.h"
#include "obs/http_exporter.h"
#include "obs/monitor.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef Pkt(int64_t ts, int64_t src, int64_t proto, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{9}),
                        Value(int64_t{1}), Value(int64_t{2}), Value(proto),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

/// Minimal in-process HTTP client: one blocking GET against localhost,
/// returning the raw response (status line + headers + body).
std::string FetchRaw(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

// ---------------------------------------------------------------------------
// SeriesRing.

TEST(SeriesRingTest, FillsThenWrapsOldestFirst) {
  obs::SeriesRing ring(4);
  EXPECT_TRUE(ring.empty());
  for (uint64_t t = 1; t <= 3; ++t) {
    ring.Push({t, t * 10, static_cast<double>(t)});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.Back().tick, 3u);
  auto pts = ring.Points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts.front().tick, 1u);

  for (uint64_t t = 4; t <= 10; ++t) {
    ring.Push({t, t * 10, static_cast<double>(t)});
  }
  EXPECT_EQ(ring.size(), 4u);
  pts = ring.Points();
  ASSERT_EQ(pts.size(), 4u);
  // Last 4 pushes survive, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pts[i].tick, 7u + i);
    EXPECT_DOUBLE_EQ(pts[i].value, static_cast<double>(7 + i));
  }
  EXPECT_EQ(ring.Back().tick, 10u);
}

TEST(SeriesRingTest, CapacityOneKeepsNewest) {
  obs::SeriesRing ring(1);
  ring.Push({1, 0, 1.0});
  ring.Push({2, 0, 2.0});
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.Points().front().tick, 2u);
  EXPECT_EQ(ring.Back().tick, 2u);
}

// ---------------------------------------------------------------------------
// Monitor rate derivation (manual ticks, scripted deltas).

TEST(MonitorTest, EwmaRateFromScriptedCounter) {
  obs::MetricsRegistry reg;
  auto* c = reg.GetCounter("sqp_stream_ingested_total", {{"stream", "s"}});
  obs::MonitorOptions opt;
  opt.period_ms = 0;  // Manual mode.
  opt.alpha = 0.5;
  obs::Monitor mon(&reg, opt);
  const std::string key = "rate(sqp_stream_ingested_total{stream=s})";

  c->Inc(100);
  mon.TickOnce(1.0);  // First observation only seeds the delta baseline.
  EXPECT_TRUE(mon.Series(key).empty());
  EXPECT_EQ(mon.ticks(), 1u);

  c->Inc(100);
  mon.TickOnce(1.0);  // delta 100 over 1s -> rate 100 seeds the EWMA.
  EXPECT_DOUBLE_EQ(mon.Current(key), 100.0);

  c->Inc(400);
  mon.TickOnce(1.0);  // 0.5*400 + 0.5*100.
  EXPECT_DOUBLE_EQ(mon.Current(key), 250.0);

  c->Inc(400);
  mon.TickOnce(2.0);  // delta 400 over 2s -> 200; 0.5*200 + 0.5*250.
  EXPECT_DOUBLE_EQ(mon.Current(key), 225.0);

  // The EWMA is republished as a derived gauge in the next snapshot.
  obs::Snapshot snap = reg.TakeSnapshot();
  bool found = false;
  for (const auto& s : snap.samples) {
    if (s.name == "sqp_monitor_stream_rate") {
      found = true;
      EXPECT_DOUBLE_EQ(s.value, 225.0);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(snap.ToPrometheus().find("sqp_monitor_stream_rate"),
            std::string::npos);
}

TEST(MonitorTest, GaugeHistoryAndRingCap) {
  obs::MetricsRegistry reg;
  auto* g = reg.GetGauge("depth");
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  opt.history = 3;
  obs::Monitor mon(&reg, opt);
  for (int t = 1; t <= 5; ++t) {
    g->Set(t);
    mon.TickOnce(1.0);
  }
  auto pts = mon.Series("depth");
  ASSERT_EQ(pts.size(), 3u);  // Ring capped at history.
  EXPECT_DOUBLE_EQ(pts[0].value, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].value, 5.0);
  EXPECT_EQ(pts[2].tick, 5u);
}

TEST(MonitorTest, HistogramQuantileSeriesAndDerivedGauges) {
  obs::MetricsRegistry reg;
  auto* h = reg.GetHistogram("sqp_query_latency_ns", {{"query", "q0"}});
  for (int i = 0; i < 100; ++i) h->Observe(1000);
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  obs::Monitor mon(&reg, opt);
  mon.TickOnce(1.0);
  EXPECT_GT(mon.Current("p50(sqp_query_latency_ns{query=q0})"), 0.0);
  EXPECT_GT(mon.Current("p99(sqp_query_latency_ns{query=q0})"), 0.0);
  obs::Snapshot snap = reg.TakeSnapshot();
  bool p50 = false;
  bool p99 = false;
  for (const auto& s : snap.samples) {
    if (s.name == "sqp_monitor_latency_p50_ns") p50 = true;
    if (s.name == "sqp_monitor_latency_p99_ns") p99 = true;
  }
  EXPECT_TRUE(p50 && p99);
}

TEST(MonitorTest, SkipsItsOwnDerivedGauges) {
  // The monitor's derived gauges come back through the registry
  // collector on the next snapshot; recording them again would double
  // the series set every tick.
  obs::MetricsRegistry reg;
  reg.GetCounter("sqp_stream_ingested_total", {{"stream", "s"}})->Inc(1);
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  obs::Monitor mon(&reg, opt);
  for (int t = 0; t < 4; ++t) mon.TickOnce(1.0);
  for (const std::string& name : mon.SeriesNames()) {
    EXPECT_NE(name.rfind("sqp_monitor_", 0), 0u) << name;
  }
}

TEST(MonitorTest, MaxSeriesBoundsHistory) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 8; ++i) {
    reg.GetGauge("g" + std::to_string(i))->Set(i);
  }
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  opt.max_series = 3;
  obs::Monitor mon(&reg, opt);
  mon.TickOnce(1.0);
  EXPECT_LE(mon.SeriesNames().size(), 3u);
}

TEST(MonitorTest, TickListenersFireAndDetach) {
  obs::MetricsRegistry reg;
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  obs::Monitor mon(&reg, opt);
  int calls = 0;
  uint64_t last_tick = 0;
  mon.AddTickListener("t", [&](uint64_t tick) {
    ++calls;
    last_tick = tick;
  });
  mon.TickOnce(1.0);
  mon.TickOnce(1.0);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last_tick, 2u);
  mon.RemoveTickListener("t");
  mon.TickOnce(1.0);
  EXPECT_EQ(calls, 2);
}

TEST(MonitorTest, RemoveTickListenerBarriersAgainstInFlightTick) {
  obs::MetricsRegistry reg;
  obs::MonitorOptions opt;
  opt.period_ms = 0;
  obs::Monitor mon(&reg, opt);

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) mon.TickOnce(1.0);
  });

  // Each listener captures heap state that is freed the moment removal
  // returns — exactly what the adaptive-shedding teardown does. A tick
  // that copied the listener list before RemoveTickListener's barrier
  // acquisition must not still invoke the stale copy afterwards; under
  // TSan this loop flags any such copy/invoke gap as a use-after-free.
  for (int i = 0; i < 4000; ++i) {
    auto state = std::make_unique<std::atomic<uint64_t>>(0);
    std::atomic<uint64_t>* raw = state.get();
    const std::string name = "l" + std::to_string(i % 4);
    mon.AddTickListener(name, [raw](uint64_t tick) {
      raw->store(tick, std::memory_order_relaxed);
    });
    mon.RemoveTickListener(name);
    state.reset();  // Safe only because removal barriers on the tick.
  }
  stop.store(true, std::memory_order_relaxed);
  ticker.join();
}

TEST(MonitorTest, BackgroundSamplerTicks) {
  obs::MetricsRegistry reg;
  reg.GetGauge("depth")->Set(1);
  obs::MonitorOptions opt;
  opt.period_ms = 1;
  obs::Monitor mon(&reg, opt);
  mon.Start();
  EXPECT_TRUE(mon.running());
  while (mon.ticks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  mon.Stop();
  EXPECT_FALSE(mon.running());
  EXPECT_GE(mon.ticks(), 3u);
  EXPECT_FALSE(mon.Series("depth").empty());
}

// ---------------------------------------------------------------------------
// Engine-level end-to-end latency tracking.

TEST(EngineLatencyTest, LatencyHistogramInEveryExport) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets where len > 100");
  ASSERT_TRUE(q.ok());
  engine.SetLatencySampleEvery(4);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.FinishAll();

  ASSERT_NE((*q)->latency_histogram(), nullptr);
  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  const obs::Sample* lat = nullptr;
  for (const auto& s : snap.samples) {
    if (s.name == "sqp_query_latency_ns") lat = &s;
  }
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->labels.size(), 1u);
  EXPECT_EQ(lat->labels[0].second, "q0");
  // 200 tuples at 1/4 sampling: ~50 samples (armed slots are claimed by
  // the next output, so allow slack for samples still in flight).
  EXPECT_GE(lat->hist.count, 25u);
  EXPECT_GT(lat->hist.Quantile(0.5), 0.0);

  // p50/p99 present in all three export formats.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("sqp_query_latency_ns"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  const std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("sqp_query_latency_ns_p50{query=\"q0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("sqp_query_latency_ns_p99{query=\"q0\"}"),
            std::string::npos);
  EXPECT_NE(snap.Pretty().find("p50="), std::string::npos);
}

TEST(EngineLatencyTest, SamplingDisabledRecordsNothing) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets");
  ASSERT_TRUE(q.ok());
  engine.SetLatencySampleEvery(0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.FinishAll();
  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  for (const auto& s : snap.samples) {
    if (s.name == "sqp_query_latency_ns") {
      EXPECT_EQ(s.hist.count, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// HTTP exporter, fetched by a real in-process client.

TEST(HttpExporterTest, ServesAllThreeEndpoints) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets where len > 100");
  ASSERT_TRUE(q.ok());
  obs::MonitorOptions mopt;
  mopt.period_ms = 0;  // Manual ticks keep the test deterministic.
  engine.StartMonitor(mopt);
  auto port = engine.ServeMetrics(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.monitor()->TickOnce(1.0);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.monitor()->TickOnce(1.0);

  const std::string metrics = FetchRaw(*port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE sqp_stream_ingested_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("sqp_stream_ingested_total{stream=\"packets\"} 128"),
            std::string::npos);
  EXPECT_NE(metrics.find("sqp_monitor_stream_rate"), std::string::npos);
  EXPECT_NE(metrics.find("sqp_query_latency_ns_p99"), std::string::npos);

  const std::string snapshot = FetchRaw(*port, "/snapshot.json");
  EXPECT_NE(snapshot.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("application/json"), std::string::npos);
  EXPECT_NE(snapshot.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(snapshot.find("sqp_stream_ingested_total"), std::string::npos);

  const std::string series = FetchRaw(*port, "/series.json");
  EXPECT_NE(series.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(series.find("\"ticks\":2"), std::string::npos);
  EXPECT_NE(
      series.find("rate(sqp_stream_ingested_total{stream=packets})"),
      std::string::npos);

  EXPECT_NE(FetchRaw(*port, "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(FetchRaw(*port, "/").find("streamqp metrics exporter"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(FetchRaw(*port, "/metrics?x=1").find("HTTP/1.0 200 OK"),
            std::string::npos);

  // Second ServeMetrics while serving is rejected.
  EXPECT_FALSE(engine.ServeMetrics(0).ok());
  engine.FinishAll();
}

TEST(HttpExporterTest, StandaloneWithoutMonitor) {
  obs::MetricsRegistry reg;
  reg.GetCounter("hits")->Inc(3);
  obs::HttpExporter exporter(&reg);
  ASSERT_TRUE(exporter.Serve(0).ok());
  const std::string series = FetchRaw(exporter.port(), "/series.json");
  EXPECT_NE(series.find("\"series\":[]"), std::string::npos);
  const std::string metrics = FetchRaw(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("hits 3"), std::string::npos);
  exporter.Stop();
  EXPECT_FALSE(exporter.serving());
}

TEST(HttpExporterTest, RoutingTableDirect) {
  obs::MetricsRegistry reg;
  obs::HttpExporter exporter(&reg);
  EXPECT_EQ(exporter.Handle("/metrics").code, 200);
  EXPECT_EQ(exporter.Handle("/snapshot.json").code, 200);
  EXPECT_EQ(exporter.Handle("/series.json").code, 200);
  EXPECT_EQ(exporter.Handle("/").code, 200);
  EXPECT_EQ(exporter.Handle("/missing").code, 404);
  EXPECT_FALSE(exporter.Serve(70000).ok());  // Port out of range.
}

// ---------------------------------------------------------------------------
// Concurrency: live ticking monitor + HTTP scrapes + parallel query
// ingest, all at once. Run under TSan in CI.

TEST(MonitorEngineTest, ConcurrentTickIngestAndScrape) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets where len > 100");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.EnableParallel(*q).ok());
  obs::MonitorOptions mopt;
  mopt.period_ms = 1;
  engine.StartMonitor(mopt);
  auto port = engine.ServeMetrics(0);
  ASSERT_TRUE(port.ok());

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)FetchRaw(*port, "/metrics");
      (void)FetchRaw(*port, "/series.json");
    }
  });
  const int kTuples = 20000;
  for (int i = 0; i < kTuples; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.FinishAll();
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ((*q)->result_count(), static_cast<size_t>(kTuples));
  EXPECT_GE(engine.monitor()->ticks(), 1u);
}

TEST(MonitorEngineTest, ConcurrentProfileScrapeWhileIngesting) {
  // The profiler's scrape path (ProfileSnapshot, /profile/<q>.json,
  // /events.json) races parallel ingest; TSan in CI proves the snapshot
  // reads only atomics and registration-time copies.
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit(
      "select tb, count(*) from packets group by ts/60 as tb");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.EnableParallel(*q).ok());
  auto port = engine.ServeMetrics(0);
  ASSERT_TRUE(port.ok());

  std::atomic<bool> done{false};
  std::atomic<int> profile_hits{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      obs::QueryProfile p;
      if (engine.ProfileSnapshot("q0", &p)) {
        profile_hits.fetch_add(1, std::memory_order_relaxed);
        (void)p.Pretty();
        (void)p.ToJson();
      }
      (void)engine.Events().ToJson();
      (void)engine.Metrics().TakeSnapshot();
    }
  });
  std::thread http_scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)FetchRaw(*port, "/profile/q0.json");
      (void)FetchRaw(*port, "/events.json");
    }
  });
  const int kTuples = 20000;
  for (int i = 0; i < kTuples; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  engine.FinishAll();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  http_scraper.join();

  EXPECT_GT(profile_hits.load(), 0);
  obs::QueryProfile final_profile;
  ASSERT_TRUE(engine.ProfileSnapshot(*q, &final_profile));
  EXPECT_EQ(final_profile.ops.back().tuples_in,
            static_cast<uint64_t>(kTuples));
  // The HTTP routes answer for real labels and 404 unknown ones.
  EXPECT_NE(FetchRaw(*port, "/profile/q0.json").find("HTTP/1.0 200"),
            std::string::npos);
  EXPECT_NE(FetchRaw(*port, "/profile/zz.json").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(FetchRaw(*port, "/events.json").find("query_submit"),
            std::string::npos);
}

TEST(MonitorEngineTest, TopStringCarriesWatermarkLag) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets where len > 100");
  ASSERT_TRUE(q.ok());
  obs::MonitorOptions mopt;
  mopt.period_ms = 0;  // Deterministic ticks.
  engine.StartMonitor(mopt);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Ingest("packets", Pkt(i, 1, 6, 200)).ok());
  }
  // A watermark through the chain gives the query an output watermark;
  // the source tap saw it at ingest, so lag is publishable.
  ASSERT_TRUE(
      engine.IngestElement("packets", Element(Punctuation::Watermark(90)))
          .ok());
  engine.monitor()->TickOnce(1.0);
  std::string top = engine.monitor()->TopString();
  EXPECT_NE(top.find("watermark lag"), std::string::npos);
  EXPECT_NE(top.find("query=q0"), std::string::npos);
  // And the same gauges ride the registry snapshot (/snapshot.json).
  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("sqp_query_source_watermark{query=\"q0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("sqp_query_watermark_lag{query=\"q0\"}"),
            std::string::npos);
  engine.FinishAll();
}

// ---------------------------------------------------------------------------
// The closed loop: monitor-driven adaptive shedding.

TEST(AdaptiveSheddingTest, Validation) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto q = engine.Submit("select ts from packets");
  ASSERT_TRUE(q.ok());
  // Serial query without a probe has nothing to observe.
  EXPECT_FALSE(engine.EnableAdaptiveShedding(*q).ok());
  EXPECT_FALSE(engine.EnableAdaptiveShedding(nullptr).ok());
  AdaptiveShedOptions opt;
  opt.backlog_probe = [] { return size_t{0}; };
  ASSERT_TRUE(engine.EnableAdaptiveShedding(*q, opt).ok());
  EXPECT_TRUE((*q)->adaptive_shedding());
  // Double-enable rejected.
  EXPECT_FALSE(engine.EnableAdaptiveShedding(*q, opt).ok());
}

TEST(AdaptiveSheddingTest, ConvergesUnderOverloadAndRecovers) {
  StreamEngine engine;
  ASSERT_TRUE(engine.RegisterStream("packets", gen::PacketSchema()).ok());
  auto qr = engine.Submit("select ts from packets");
  ASSERT_TRUE(qr.ok());
  QueryHandle* q = *qr;
  obs::MonitorOptions mopt;
  mopt.period_ms = 0;  // The test drives ticks deterministically.
  engine.StartMonitor(mopt);

  // Simulated downstream queue: accepted tuples enter, capacity 1/tick
  // leaves. Arrivals are 2/tick — a 2x overload whose steady state
  // needs a ~50% drop rate.
  size_t sim_queue = 0;
  const double kTarget = 20.0;
  AdaptiveShedOptions sopt;
  sopt.controller.target_queue = kTarget;
  sopt.backlog_probe = [&sim_queue] { return sim_queue; };
  ASSERT_TRUE(engine.EnableAdaptiveShedding(q, sopt).ok());

  uint64_t ingested = 0;
  size_t prev_results = 0;
  double tail_backlog = 0.0;
  int tail_n = 0;
  const int kTicks = 4000;
  for (int t = 0; t < kTicks; ++t) {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(engine.Ingest("packets", Pkt(t, 1, 6, 200)).ok());
      ++ingested;
    }
    // Tuples that survived the gate reached the sink; they feed the
    // simulated queue, which drains at capacity 1/tick.
    size_t now = q->result_count();
    sim_queue += now - prev_results;
    prev_results = now;
    if (sim_queue > 0) --sim_queue;
    engine.monitor()->TickOnce(1.0);
    if (t >= kTicks * 3 / 4) {
      tail_backlog += static_cast<double>(sim_queue);
      ++tail_n;
    }
  }
  // Backlog settles within +-25% of the target under 2x overload.
  EXPECT_NEAR(tail_backlog / tail_n, kTarget, kTarget * 0.25);
  // The gate really shed tuples out of the ingest path.
  EXPECT_GT(q->shed_dropped(), 0u);
  EXPECT_LT(q->result_count(), ingested);
  EXPECT_GT(q->shed_drop_rate(), 0.3);
  // Shedding state is visible in exports.
  obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  EXPECT_NE(snap.ToPrometheus().find("sqp_shed_drop_rate{query=\"q0\"}"),
            std::string::npos);

  // Load subsides: the queue drains and the drop rate must fall below
  // 1% within a bounded number of ticks (anti-windup at work).
  int recover_ticks = 0;
  while (q->shed_drop_rate() >= 0.01 && recover_ticks < 500) {
    if (sim_queue > 0) --sim_queue;
    engine.monitor()->TickOnce(1.0);
    ++recover_ticks;
  }
  EXPECT_LT(recover_ticks, 500);
  EXPECT_LT(q->shed_drop_rate(), 0.01);
  engine.FinishAll();
}

}  // namespace
}  // namespace sqp
