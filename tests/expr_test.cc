#include <gtest/gtest.h>

#include "exec/expr.h"

namespace sqp {
namespace {

Schema TestSchema() {
  return Schema({{"a", ValueType::kInt},
                 {"b", ValueType::kDouble},
                 {"s", ValueType::kString}});
}

TupleRef T(int64_t a, double b, const char* s) {
  return MakeTuple(0, {Value(a), Value(b), Value(s)});
}

TEST(ExprTest, ColumnAndConst) {
  TupleRef t = T(7, 2.5, "xy");
  EXPECT_EQ(Col(0)->Eval(*t).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Col(1)->Eval(*t).AsDouble(), 2.5);
  EXPECT_EQ(Lit(int64_t{9})->Eval(*t).AsInt(), 9);
}

TEST(ExprTest, Arithmetic) {
  TupleRef t = T(10, 0.5, "");
  EXPECT_EQ(Add(Col(0), Lit(int64_t{5}))->Eval(*t).AsInt(), 15);
  EXPECT_DOUBLE_EQ(Mul(Col(1), Lit(4.0))->Eval(*t).AsDouble(), 2.0);
  EXPECT_EQ(Mod(Col(0), Lit(int64_t{3}))->Eval(*t).AsInt(), 1);
  EXPECT_EQ(Div(Col(0), Lit(int64_t{4}))->Eval(*t).AsInt(), 2);
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  TupleRef t = T(1, 0.0, "");
  EXPECT_TRUE(Div(Col(0), Lit(int64_t{0}))->Eval(*t).is_null());
}

TEST(ExprTest, Comparisons) {
  TupleRef t = T(5, 5.0, "abc");
  EXPECT_TRUE(Truthy(Eq(Col(0), Col(1))->Eval(*t)));  // 5 == 5.0.
  EXPECT_TRUE(Truthy(Gt(Col(0), Lit(int64_t{4}))->Eval(*t)));
  EXPECT_FALSE(Truthy(Lt(Col(0), Lit(int64_t{4}))->Eval(*t)));
  EXPECT_TRUE(Truthy(Eq(Col(2), Lit("abc"))->Eval(*t)));
}

TEST(ExprTest, LogicalShortCircuit) {
  TupleRef t = T(1, 0.0, "");
  // RHS would divide by zero; AND must not evaluate it into a crash (it
  // yields null -> falsy anyway, but short-circuit means it's skipped).
  ExprRef e = And(Lit(int64_t{0}), Div(Col(0), Lit(int64_t{0})));
  EXPECT_FALSE(Truthy(e->Eval(*t)));
  EXPECT_TRUE(Truthy(Or(Lit(int64_t{1}), Lit(int64_t{0}))->Eval(*t)));
  EXPECT_TRUE(Truthy(Not(Lit(int64_t{0}))->Eval(*t)));
}

TEST(ExprTest, ContainsFn) {
  TupleRef t = T(0, 0.0, "..X-Kazaa-IP..");
  EXPECT_TRUE(Truthy(ContainsFn(Col(2), Lit("X-Kazaa-"))->Eval(*t)));
  EXPECT_FALSE(Truthy(ContainsFn(Col(2), Lit("BitTorrent"))->Eval(*t)));
  // Non-string operands are simply false, not errors.
  EXPECT_FALSE(Truthy(ContainsFn(Col(0), Lit("x"))->Eval(*t)));
}

TEST(ExprTest, CheckTypesArithmetic) {
  Schema s = TestSchema();
  EXPECT_EQ(*Add(Col(0), Lit(int64_t{1}))->Check(s), ValueType::kInt);
  EXPECT_EQ(*Add(Col(0), Col(1))->Check(s), ValueType::kDouble);
  EXPECT_FALSE(Add(Col(2), Lit(int64_t{1}))->Check(s).ok());
  EXPECT_FALSE(Mod(Col(1), Lit(int64_t{2}))->Check(s).ok());
}

TEST(ExprTest, CheckComparisonsMixedTypesRejected) {
  Schema s = TestSchema();
  EXPECT_TRUE(Eq(Col(0), Col(1))->Check(s).ok());
  EXPECT_FALSE(Eq(Col(0), Col(2))->Check(s).ok());
  EXPECT_EQ(Eq(Col(0), Col(2))->Check(s).status().code(),
            StatusCode::kTypeError);
}

TEST(ExprTest, CheckColumnBounds) {
  Schema s = TestSchema();
  EXPECT_TRUE(Col(2)->Check(s).ok());
  EXPECT_FALSE(Col(3)->Check(s).ok());
  EXPECT_FALSE(Col(-1)->Check(s).ok());
}

TEST(ExprTest, ToStringRoundtrip) {
  ExprRef e = And(Gt(Col(0), Lit(int64_t{5})), ContainsFn(Col(2), Lit("x")));
  EXPECT_EQ(e->ToString(), "(($0 > 5) and contains($2, x))");
}

TEST(ExprTest, TruthyRules) {
  EXPECT_FALSE(Truthy(Value::Null()));
  EXPECT_FALSE(Truthy(Value(int64_t{0})));
  EXPECT_TRUE(Truthy(Value(int64_t{-1})));
  EXPECT_FALSE(Truthy(Value(0.0)));
  EXPECT_TRUE(Truthy(Value(0.1)));
  EXPECT_FALSE(Truthy(Value("")));
  EXPECT_TRUE(Truthy(Value("x")));
}

}  // namespace
}  // namespace sqp
