#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/rng.h"
#include "cql/planner.h"
#include "exec/partitioned_window_agg.h"
#include "exec/plan.h"
#include "stream/generators.h"

namespace sqp {
namespace {

TupleRef T(int64_t ts, int64_t key, int64_t val) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(val)});
}

TEST(PartitionedWindowAggTest, PerKeyWindowsIndependent) {
  Plan plan;
  auto* op = plan.Make<PartitionedWindowAggregateOp>(
      1, 2, std::vector<AggSpec>{{AggKind::kSum, 2, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  op->SetOutput(sink);

  op->Push(Element(T(1, 7, 10)));  // Key 7: [10] -> 10.
  op->Push(Element(T(2, 8, 5)));   // Key 8: [5] -> 5.
  op->Push(Element(T(3, 7, 20)));  // Key 7: [10,20] -> 30.
  op->Push(Element(T(4, 7, 30)));  // Key 7: [20,30] -> 50 (10 evicted).
  ASSERT_EQ(sink->count(), 4u);
  EXPECT_EQ(sink->tuples()[0]->at(2).AsInt(), 10);
  EXPECT_EQ(sink->tuples()[1]->at(2).AsInt(), 5);
  EXPECT_EQ(sink->tuples()[2]->at(2).AsInt(), 30);
  EXPECT_EQ(sink->tuples()[3]->at(2).AsInt(), 50);
  EXPECT_EQ(op->num_partitions(), 2u);
  // Output carries the partition key.
  EXPECT_EQ(sink->tuples()[3]->at(1).AsInt(), 7);
}

TEST(PartitionedWindowAggTest, NonInvertibleRecomputes) {
  Plan plan;
  auto* op = plan.Make<PartitionedWindowAggregateOp>(
      1, 2, std::vector<AggSpec>{{AggKind::kMax, 2, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  op->SetOutput(sink);
  op->Push(Element(T(1, 7, 100)));
  op->Push(Element(T(2, 7, 50)));
  op->Push(Element(T(3, 7, 30)));  // 100 evicted: max over [50,30] = 50.
  EXPECT_EQ(sink->tuples()[2]->at(2).AsInt(), 50);
  EXPECT_GE(op->recompute_count(), 1u);
}

// Property: each emission equals the brute-force aggregate over that
// key's last N tuples.
class PartitionedPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, AggKind>> {};

TEST_P(PartitionedPropertyTest, MatchesBruteForce) {
  auto [rows, kind] = GetParam();
  Plan plan;
  auto* op = plan.Make<PartitionedWindowAggregateOp>(
      1, rows, std::vector<AggSpec>{{kind, 2, 0.5}});
  auto* sink = plan.Make<CollectorSink>();
  op->SetOutput(sink);

  Rng rng(41);
  std::map<int64_t, std::deque<int64_t>> brute;
  for (int64_t i = 0; i < 2000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(7));
    int64_t val = static_cast<int64_t>(rng.Uniform(1000));
    op->Push(Element(T(i, key, val)));
    auto& dq = brute[key];
    dq.push_back(val);
    if (dq.size() > rows) dq.pop_front();
    double expect = 0;
    if (kind == AggKind::kSum) {
      for (int64_t v : dq) expect += static_cast<double>(v);
    } else if (kind == AggKind::kMax) {
      expect = -1e18;
      for (int64_t v : dq) expect = std::max(expect, double(v));
    } else {  // kAvg
      for (int64_t v : dq) expect += static_cast<double>(v);
      expect /= static_cast<double>(dq.size());
    }
    ASSERT_NEAR(sink->tuples().back()->at(2).ToDouble(), expect, 1e-9)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionedPropertyTest,
    ::testing::Values(std::make_pair(size_t{4}, AggKind::kSum),
                      std::make_pair(size_t{16}, AggKind::kSum),
                      std::make_pair(size_t{8}, AggKind::kMax),
                      std::make_pair(size_t{8}, AggKind::kAvg)),
    [](const auto& info) {
      return std::string(AggKindName(info.param.second)) + "_n" +
             std::to_string(info.param.first);
    });

// --- CQL integration ---

cql::Catalog Cat() {
  cql::Catalog cat;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kSrcIp] = {"src_ip", true, 1024};
  EXPECT_TRUE(cat.Register("packets", gen::PacketSchema(), domains).ok());
  return cat;
}

TupleRef Pkt(int64_t ts, int64_t src, int64_t len) {
  return MakeTuple(ts, {Value(ts), Value(src), Value(int64_t{0}),
                        Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{6}),
                        Value(len), Value(int64_t{0}), Value(int64_t{0}),
                        Value("")});
}

TEST(PartitionedCqlTest, ParseAndRun) {
  cql::Catalog cat = Cat();
  auto cq = cql::Compile(
      "select src_ip, avg(len), count(*) from packets "
      "[partition by src_ip rows 3]",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_NE((*cq)->plan_desc().find("partitioned-window-agg"),
            std::string::npos);
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  // Key 1 gets 4 packets; window holds last 3.
  (*cq)->Push(Element(Pkt(1, 1, 10)));
  (*cq)->Push(Element(Pkt(2, 1, 20)));
  (*cq)->Push(Element(Pkt(3, 2, 99)));
  (*cq)->Push(Element(Pkt(4, 1, 30)));
  (*cq)->Push(Element(Pkt(5, 1, 40)));  // Window [20,30,40] -> avg 30.
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 5u);
  const TupleRef& last = sink.tuples().back();
  EXPECT_EQ(last->at(0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(last->at(1).AsDouble(), 30.0);
  EXPECT_EQ(last->at(2).AsInt(), 3);
}

TEST(PartitionedCqlTest, WhereAppliesBeforeWindow) {
  cql::Catalog cat = Cat();
  auto cq = cql::Compile(
      "select src_ip, sum(len) from packets [partition by src_ip rows 2] "
      "where len > 15",
      cat);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CollectorSink sink;
  (*cq)->AttachSink(&sink);
  (*cq)->Push(Element(Pkt(1, 1, 10)));  // Filtered out.
  (*cq)->Push(Element(Pkt(2, 1, 20)));
  (*cq)->Push(Element(Pkt(3, 1, 30)));
  (*cq)->Finish();
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.tuples()[1]->at(1).AsInt(), 50);  // 20 + 30 only.
}

TEST(PartitionedCqlTest, MemoryVerdictUsesPartitionDomain) {
  cql::Catalog cat = Cat();
  // src_ip declared bounded (1024) in this catalog: bounded partitions.
  auto bounded = cql::Compile(
      "select src_ip, sum(len) from packets [partition by src_ip rows 4]",
      cat);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ((*bounded)->memory().verdict, MemoryVerdict::kBounded);

  // dst_ip has no domain metadata: unbounded partitions.
  auto unbounded = cql::Compile(
      "select dst_ip, sum(len) from packets [partition by dst_ip rows 4]",
      cat);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_EQ((*unbounded)->memory().verdict, MemoryVerdict::kUnbounded);
}

TEST(PartitionedCqlTest, GroupByPlusPartitionWindowRejected) {
  cql::Catalog cat = Cat();
  auto cq = cql::Compile(
      "select src_ip, count(*) from packets [partition by src_ip rows 3] "
      "group by src_ip",
      cat);
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kUnimplemented);
}

TEST(PartitionedCqlTest, ParseErrors) {
  cql::Catalog cat = Cat();
  EXPECT_FALSE(cql::Compile(
                   "select src_ip from packets [partition by rows 3]", cat)
                   .ok());
  EXPECT_FALSE(
      cql::Compile("select src_ip from packets [partition by src_ip rows 0]",
                   cat)
          .ok());
  EXPECT_FALSE(
      cql::Compile(
          "select nosuch, sum(len) from packets [partition by nosuch rows 3]",
          cat)
          .ok());
}

TEST(PartitionedWindowAggTest, StateScalesWithPartitionsNotStream) {
  Plan plan;
  auto* op = plan.Make<PartitionedWindowAggregateOp>(
      1, 8, std::vector<AggSpec>{{AggKind::kSum, 2, 0.5}});
  auto* sink = plan.Make<CountingSink>();
  op->SetOutput(sink);
  Rng rng(42);
  for (int64_t i = 0; i < 50000; ++i) {
    op->Push(Element(T(i, static_cast<int64_t>(rng.Uniform(20)), 1)));
  }
  EXPECT_EQ(op->num_partitions(), 20u);
  // 20 partitions x 8 rows, regardless of the 50k tuples seen.
  EXPECT_LT(op->StateBytes(), 64 * 1024u);
}

}  // namespace
}  // namespace sqp
