// Compile-time check that the umbrella header is self-contained and the
// whole public API coexists in one translation unit, plus a smoke test
// touching one symbol from each layer.

#include "sqp.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(UmbrellaTest, OneSymbolPerLayer) {
  // common
  EXPECT_TRUE(Status::OK().ok());
  // stream
  EXPECT_TRUE(gen::PacketSchema()->has_ordering());
  // window
  EXPECT_TRUE(WindowSpec::TimeSliding(10).Validate().ok());
  // agg
  EXPECT_EQ(ClassOf(AggKind::kSum), AggClass::kDistributive);
  // synopsis
  HyperLogLog hll(10);
  hll.Add(Value(int64_t{1}));
  EXPECT_GT(hll.Estimate(), 0.0);
  // exec
  Plan plan;
  auto* sel = plan.Make<SelectOp>(Lit(int64_t{1}));
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(sink);
  sel->Push(Element(MakeTuple(0, {Value(int64_t{1})})));
  EXPECT_EQ(sink->tuples(), 1u);
  // sched
  EXPECT_EQ(MakeFifoPolicy()->name(), "fifo");
  // shed
  EXPECT_DOUBLE_EQ(QosCurve::Linear().Utility(0.5), 0.5);
  // opt
  EXPECT_NEAR(PipelineOutputRate(100.0, {{"f", 0.5, 1e18}}), 50.0, 1e-9);
  // cql
  EXPECT_TRUE(cql::Parse("select a from s").ok());
  // arch
  StreamEngine engine;
  EXPECT_TRUE(engine.RegisterStream("s", gen::SensorSchema()).ok());
  // hancock
  hancock::SignatureStore store(1, 0.5);
  store.Blend(1, {2.0});
  EXPECT_DOUBLE_EQ(store.Get(1)[0], 2.0);
  // xml
  EXPECT_TRUE(xml::ParseXPath("//a/b").ok());
}

}  // namespace
}  // namespace sqp
