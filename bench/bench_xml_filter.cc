// Experiment E13 (the tutorial's XML-stream references: XFilter [AF00],
// YFilter [DF03/DF03a], [CFGR02], [GMOS03]): shared multi-query XPath
// filtering over streaming XML documents. The same sharing argument as
// slide 45, in the second data model the course covered: one prefix-
// shared NFA evaluates thousands of path filters per document in one
// pass.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "xml/doc_gen.h"
#include "xml/filter.h"

namespace sqp {
namespace xml {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

/// Random filter workload: paths over the auction-doc vocabulary with
/// mixed axes, wildcards, and attribute predicates.
std::vector<std::string> MakePaths(size_t n, uint64_t seed) {
  Rng rng(seed);
  const char* kElems[] = {"site", "people", "person", "name", "city",
                          "auctions", "auction", "seller", "bid"};
  std::vector<std::string> out;
  for (size_t q = 0; q < n; ++q) {
    std::string path;
    size_t steps = 1 + rng.Uniform(3);
    for (size_t s = 0; s < steps; ++s) {
      path += rng.Bernoulli(0.4) ? "//" : "/";
      if (s == 0 && path == "/") path = "//";  // Root-relative child of
                                               // site only; keep it easy.
      path += rng.Bernoulli(0.1) ? "*" : kElems[rng.Uniform(9)];
    }
    if (rng.Bernoulli(0.25)) {
      path += "[@category='c" + std::to_string(rng.Uniform(8)) + "']";
    }
    out.push_back(path);
  }
  return out;
}

void PrintSharedVsNaive() {
  XmlDocOptions doc_opt;
  doc_opt.num_people = 100;
  doc_opt.num_auctions = 200;
  auto events = GenerateAuctionDoc(doc_opt);
  std::printf("\ndocument: %zu events\n", events.size());

  Table t({"filters", "NFA states", "naive (ms)", "shared (ms)", "speedup"});
  for (size_t nq : {8u, 64u, 512u, 4096u}) {
    XPathFilterSet set;
    for (const std::string& p : MakePaths(nq, 17)) {
      auto id = set.Add(p);
      if (!id.ok()) continue;  // Skip occasional degenerate paths.
    }
    auto t0 = std::chrono::steady_clock::now();
    auto naive = set.MatchDocumentNaive(events);
    auto t1 = std::chrono::steady_clock::now();
    auto shared = set.MatchDocument(events);
    auto t2 = std::chrono::steady_clock::now();
    if (naive != shared) std::printf("MISMATCH at %zu filters!\n", nq);
    double naive_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
    double shared_ms = std::chrono::duration<double>(t2 - t1).count() * 1e3;
    t.AddRow({FmtInt(set.num_queries()), FmtInt(set.num_states()),
              Fmt(naive_ms, 2), Fmt(shared_ms, 2),
              Fmt(naive_ms / shared_ms, 1)});
  }
  t.Print("E13: shared XPath NFA vs per-query evaluation (one document)");
  std::printf(
      "shape (YFilter): shared evaluation cost grows sublinearly with the\n"
      "number of filters thanks to prefix sharing; naive grows linearly.\n");
}

void BM_SharedFilter(benchmark::State& state) {
  size_t nq = static_cast<size_t>(state.range(0));
  XPathFilterSet set;
  for (const std::string& p : MakePaths(nq, 18)) {
    (void)set.Add(p);
  }
  XmlDocOptions doc_opt;
  auto events = GenerateAuctionDoc(doc_opt);
  for (auto _ : state) {
    auto counts = set.MatchDocument(events);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_SharedFilter)->Arg(16)->Arg(256)->Arg(2048)->ArgNames({"filters"});

void BM_Tokenize(benchmark::State& state) {
  XmlDocOptions doc_opt;
  doc_opt.num_people = 100;
  doc_opt.num_auctions = 200;
  std::string text = ToXmlText(GenerateAuctionDoc(doc_opt));
  for (auto _ : state) {
    auto ev = Tokenize(text);
    benchmark::DoNotOptimize(ev.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Tokenize);

}  // namespace
}  // namespace xml
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::xml::PrintSharedVsNaive();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
