// Experiment E9 (slide 52, "Comparative Matrix"): one workload — per-
// source traffic accounting over a Zipf packet stream pushed through a
// resource-limited low level — executed under profiles modelled on the
// five surveyed prototypes. The static design axes reproduce the
// slide's matrix; the measured columns show the consequences of each
// design on the same input: drops, state, and answer error.
//
//   Aurora    : operator network + QoS-driven semantic load shedding.
//   Gigascope : two-level GSQL — fixed-slot partial aggregation low,
//               exact merge high.
//   Hancock   : stream-in relation-out block signatures (I/O-optimized).
//   STREAM    : CQL with synopsis (Count-Min) under a memory budget.
//   Telegraph : adaptive exact dataflow with rich resources.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <unordered_map>

#include "agg/partial_agg.h"
#include "arch/node.h"
#include "arch/system.h"
#include "bench_util.h"
#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "hancock/program.h"
#include "hancock/signature.h"
#include "shed/load_shedder.h"
#include "stream/generators.h"
#include "synopsis/count_min.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

constexpr int kTuples = 200000;
constexpr uint64_t kHosts = 5000;

struct Workload {
  std::vector<TupleRef> tuples;  // [ts, src, len]
  std::unordered_map<int64_t, uint64_t> true_bytes;
  std::vector<int64_t> top_sources;
};

Workload MakeWorkload() {
  Workload w;
  Rng rng(61);
  ZipfGenerator zipf(kHosts, 1.1);
  for (int64_t i = 0; i < kTuples; ++i) {
    int64_t src = static_cast<int64_t>(zipf.Next(rng));
    int64_t len = 40 + static_cast<int64_t>(rng.Uniform(1460));
    w.tuples.push_back(MakeTuple(i, {Value(i), Value(src), Value(len)}));
    w.true_bytes[src] += static_cast<uint64_t>(len);
  }
  std::vector<std::pair<uint64_t, int64_t>> ranked;
  for (auto& [src, bytes] : w.true_bytes) ranked.emplace_back(bytes, src);
  std::sort(ranked.rbegin(), ranked.rend());
  for (int i = 0; i < 20; ++i) w.top_sources.push_back(ranked[static_cast<size_t>(i)].second);
  return w;
}

double TopKError(const Workload& w,
                 const std::function<double(int64_t)>& estimate) {
  double sum = 0;
  for (int64_t src : w.top_sources) {
    double truth = static_cast<double>(w.true_bytes.at(src));
    sum += std::fabs(estimate(src) - truth) / truth;
  }
  return sum / static_cast<double>(w.top_sources.size());
}

struct ProfileResult {
  double error;
  uint64_t drops;
  size_t state_bytes;
};

// Aurora: low-level node with limited capacity; a QoS-driven shedder
// keeps heavy-hitter traffic (len-weighted "important" tuples) and drops
// the rest when overloaded.
ProfileResult RunAurora(const Workload& w) {
  Plan plan;
  // Semantic shedder: always keep large packets (most of the byte mass).
  auto* shed = plan.Make<SemanticDropOp>(Gt(Col(2), Lit(int64_t{700})), 0.5, 62);
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kSum, 2, 0.5}};
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  shed->SetOutput(gb);
  gb->SetOutput(sink);
  for (const TupleRef& t : w.tuples) shed->Push(Element(t));
  gb->Flush();
  std::unordered_map<int64_t, double> est;
  for (const TupleRef& r : sink->tuples()) {
    est[r->at(1).AsInt()] = r->at(2).ToDouble();
  }
  // Scale the shed small-packet mass back up (approximate answer).
  double scale_small = 1.0 / (1.0 - 0.5);
  (void)scale_small;  // Aurora reports the shed answer unscaled.
  ProfileResult res;
  res.error = TopKError(w, [&](int64_t s) { return est.count(s) ? est[s] : 0.0; });
  res.drops = shed->dropped();
  res.state_bytes = gb->StateBytes();
  return res;
}

// Gigascope: two-level partial aggregation, exact after merge.
ProfileResult RunGigascope(const Workload& w) {
  std::vector<AggSpec> aggs = {{AggKind::kSum, 2, 0.5}};
  PartialAggregator low(256, {1}, aggs);
  FinalAggregator high(aggs);
  std::vector<PartialGroup> partials;
  size_t peak_low = 0;
  for (const TupleRef& t : w.tuples) {
    low.Add(*t, &partials);
    for (auto& g : partials) high.Merge(std::move(g));
    partials.clear();
    if ((t->ts() & 0x3ff) == 0) peak_low = std::max(peak_low, low.MemoryBytes());
  }
  low.Flush(&partials);
  for (auto& g : partials) high.Merge(std::move(g));
  std::unordered_map<int64_t, double> est;
  for (auto& [key, vals] : high.Results()) {
    est[key.parts[0].AsInt()] = vals[0].ToDouble();
  }
  ProfileResult res;
  res.error = TopKError(w, [&](int64_t s) { return est.count(s) ? est[s] : 0.0; });
  res.drops = 0;
  res.state_bytes = peak_low;  // The resource-limited level's footprint.
  return res;
}

// Hancock: sorted block processing, signatures in a persistent store.
ProfileResult RunHancock(const Workload& w) {
  hancock::SignatureStore store(1, 1.0);  // alpha=1: exact cumulative sums
  hancock::SignatureProgram prog(1, nullptr);
  const size_t kBlock = 20000;
  double line_sum = 0;
  for (size_t start = 0; start < w.tuples.size(); start += kBlock) {
    std::vector<TupleRef> block(
        w.tuples.begin() + static_cast<ptrdiff_t>(start),
        w.tuples.begin() +
            static_cast<ptrdiff_t>(std::min(start + kBlock, w.tuples.size())));
    hancock::SignatureProgram::Events ev;
    ev.line_begin = [&](int64_t) { line_sum = 0; };
    ev.call = [&](const Tuple& t) { line_sum += t.at(2).ToDouble(); };
    ev.line_end = [&](int64_t caller) {
      double prev = store.Contains(caller) ? store.Get(caller)[0] : 0.0;
      store.Put(caller, {prev + line_sum});
    };
    prog.RunBlock(std::move(block), ev);
  }
  ProfileResult res;
  res.error = TopKError(w, [&](int64_t s) {
    return store.Contains(s) ? store.Get(s)[0] : 0.0;
  });
  res.drops = 0;
  res.state_bytes = store.size() * (sizeof(int64_t) + sizeof(double) + 32);
  return res;
}

// STREAM: synopsis-based approximate answer in sublinear memory.
ProfileResult RunStream(const Workload& w) {
  CountMinSketch cm(4096, 4, 63);
  for (const TupleRef& t : w.tuples) {
    cm.Add(Value(t->at(1).AsInt()), static_cast<uint64_t>(t->at(2).AsInt()));
  }
  ProfileResult res;
  res.error = TopKError(w, [&](int64_t s) {
    return static_cast<double>(cm.Estimate(Value(s)));
  });
  res.drops = 0;
  res.state_bytes = cm.MemoryBytes();
  return res;
}

// Telegraph: exact adaptive dataflow with ample resources.
ProfileResult RunTelegraph(const Workload& w) {
  Plan plan;
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kSum, 2, 0.5}};
  auto* gb = plan.Make<GroupByAggregateOp>(opt);
  auto* sink = plan.Make<CollectorSink>();
  gb->SetOutput(sink);
  for (const TupleRef& t : w.tuples) gb->Push(Element(t));
  size_t state = gb->StateBytes();
  gb->Flush();
  std::unordered_map<int64_t, double> est;
  for (const TupleRef& r : sink->tuples()) {
    est[r->at(1).AsInt()] = r->at(2).ToDouble();
  }
  ProfileResult res;
  res.error = TopKError(w, [&](int64_t s) { return est.count(s) ? est[s] : 0.0; });
  res.drops = 0;
  res.state_bytes = state;
  return res;
}

void PrintMatrix() {
  Workload w = MakeWorkload();
  struct Row {
    const char* system;
    const char* arch;
    const char* model;
    const char* language;
    const char* answers;
    const char* plan;
    ProfileResult result;
  };
  Row rows[] = {
      {"Aurora", "low-level", "RS-in RS-out", "operators", "approximate",
       "QoS-based, load shedding", RunAurora(w)},
      {"Gigascope", "two level", "S-in S-out", "GSQL", "exact",
       "decomposition, avoid drops", RunGigascope(w)},
      {"Hancock", "high-level", "RS-in R-out", "procedural",
       "exact, signatures", "optimize I/O, blocks", RunHancock(w)},
      {"STREAM", "low-level", "RS-in RS-out", "CQL", "approximate",
       "optimize space, static analysis", RunStream(w)},
      {"Telegraph", "high-level", "RS-in RS-out", "SQL-based", "exact",
       "adaptive plans, multi-query", RunTelegraph(w)},
  };
  Table t({"System", "Architecture", "Data Model", "Language", "Answers",
           "Plan (slide 52)", "top-20 err", "drops", "state KiB"});
  for (const Row& r : rows) {
    t.AddRow({r.system, r.arch, r.model, r.language, r.answers, r.plan,
              Fmt(r.result.error, 4), FmtInt(r.result.drops),
              FmtInt(r.result.state_bytes / 1024)});
  }
  t.Print("E9 / slide 52: comparative matrix, one workload under five "
          "profiles");
  std::printf(
      "shape: exact profiles (Gigascope/Hancock/Telegraph) reach 0 error;\n"
      "Gigascope does it in bounded low-level state; STREAM trades a small\n"
      "sketch error for the smallest state; Aurora trades accuracy for\n"
      "surviving overload via semantic drops.\n");
}

void BM_Profile(benchmark::State& state) {
  Workload w = MakeWorkload();
  int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ProfileResult r;
    switch (which) {
      case 0: r = RunGigascope(w); break;
      case 1: r = RunStream(w); break;
      default: r = RunTelegraph(w); break;
    }
    benchmark::DoNotOptimize(r.error);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_Profile)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"giga_stream_tele"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintMatrix();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
