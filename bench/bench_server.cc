// Experiment E19: the continuous-query server under concurrent clients.
// N clients each register a standing query over HTTP, a driver thread
// ingests a shared feed stamped with wall-clock nanoseconds, and every
// client streams its rows back over chunked long-poll reads. Measured:
// aggregate delivered rows/s and per-row delivery latency (ingest stamp
// to client receipt) p50/p99. The run aborts on a completeness
// mismatch — every client must receive exactly the feed it subscribed
// to, or the numbers are meaningless.

#include <benchmark/benchmark.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "arch/engine.h"
#include "bench_util.h"
#include "obs/trace.h"
#include "server/http.h"
#include "server/query_server.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

SchemaRef EventSchema() {
  return std::make_shared<Schema>(
      std::vector<Field>{{"ts", ValueType::kInt}, {"v", ValueType::kInt}});
}

std::string RawRequest(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  if (!server::SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string Body(const std::string& raw) {
  std::string head, body;
  if (!server::SplitHttpResponse(raw, &head, &body)) return "";
  return server::DechunkBody(head, body);
}

std::string SessionOf(const std::string& body) {
  const std::string pat = "\"session\":\"";
  size_t p = body.find(pat);
  if (p == std::string::npos) return "";
  p += pat.size();
  return body.substr(p, body.find('"', p) - p);
}

struct ClientResult {
  uint64_t rows = 0;
  std::vector<uint64_t> latencies_ns;
};

/// Streams one session to completion, recording per-row delivery
/// latency from the ingest-time wall-clock stamp each row carries.
ClientResult RunClient(int port, const std::string& sid) {
  ClientResult out;
  uint64_t cursor = 0;
  for (;;) {
    std::string payload = Body(RawRequest(
        port, "GET /session/" + sid + "/results?wait_ms=2000&cursor=" +
                  std::to_string(cursor) +
                  " HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"));
    bool finished = false;
    size_t pos = 0;
    while (pos < payload.size()) {
      size_t nl = payload.find('\n', pos);
      if (nl == std::string::npos) nl = payload.size();
      const uint64_t now = obs::NowNs();
      std::string line = payload.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) continue;
      if (line.find("\"next_cursor\"") != std::string::npos) {
        size_t p = line.find("\"next_cursor\":");
        cursor = static_cast<uint64_t>(std::atoll(line.c_str() + p + 14));
        finished = line.find("\"finished\":true") != std::string::npos;
        continue;
      }
      size_t tp = line.find("\"ts\":");
      if (tp == std::string::npos) continue;
      uint64_t stamp = static_cast<uint64_t>(std::atoll(line.c_str() + tp + 5));
      out.rows += 1;
      out.latencies_ns.push_back(now > stamp ? now - stamp : 0);
    }
    if (finished) return out;
    if (payload.empty()) {
      // Connection refused / torn down: bail instead of spinning.
      return out;
    }
  }
}

double PercentileMs(std::vector<uint64_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns.size() - 1));
  return static_cast<double>(ns[idx]) / 1e6;
}

void PrintClientSweep() {
  const uint64_t rows_per_client = bench::Iters(20000, 2000);
  std::vector<int> sweep = bench::SmokeMode() ? std::vector<int>{1, 8}
                                              : std::vector<int>{1, 2, 4, 8,
                                                                 16, 32};
  Table table({"clients", "rows/client", "rows/s", "p50_ms", "p99_ms",
               "drops"});
  for (int clients : sweep) {
    StreamEngine engine;
    (void)engine.RegisterStream("events", EventSchema());
    server::QueryServerOptions opts;
    opts.admission.max_sessions = 64;
    auto bound = engine.Serve(0, opts);
    if (!bound.ok()) {
      std::fprintf(stderr, "bench_server: serve failed: %s\n",
                   bound.status().ToString().c_str());
      std::exit(1);
    }
    const int port = *bound;

    std::vector<std::string> sids(clients);
    for (int c = 0; c < clients; ++c) {
      const std::string cql = "select ts, v from events where v >= 0";
      std::string resp = RawRequest(
          port, "POST /query?queue=4096&block_ms=60000 HTTP/1.1\r\nHost: b\r\n"
                "Content-Length: " +
                    std::to_string(cql.size()) +
                    "\r\nConnection: close\r\n\r\n" + cql);
      sids[c] = SessionOf(Body(resp));
      if (sids[c].empty()) {
        std::fprintf(stderr, "bench_server: submit %d rejected\n", c);
        std::exit(1);
      }
    }

    std::vector<ClientResult> results(clients);
    std::vector<std::thread> readers;
    for (int c = 0; c < clients; ++c) {
      readers.emplace_back(
          [&, c] { results[c] = RunClient(port, sids[c]); });
    }

    const uint64_t t0 = obs::NowNs();
    for (uint64_t i = 0; i < rows_per_client; ++i) {
      const int64_t stamp = static_cast<int64_t>(obs::NowNs());
      (void)engine.Ingest(
          "events",
          MakeTuple(stamp, {Value(stamp), Value(static_cast<int64_t>(i))}));
    }
    engine.FinishAll();
    engine.query_server()->FinishSessions();
    for (auto& th : readers) th.join();
    const double secs = static_cast<double>(obs::NowNs() - t0) / 1e9;

    uint64_t total = 0;
    std::vector<uint64_t> all_ns;
    for (const ClientResult& r : results) {
      total += r.rows;
      all_ns.insert(all_ns.end(), r.latencies_ns.begin(),
                    r.latencies_ns.end());
    }
    const uint64_t want =
        static_cast<uint64_t>(clients) * rows_per_client;
    if (total != want) {
      std::fprintf(stderr,
                   "bench_server: completeness mismatch: delivered %llu of "
                   "%llu rows across %d clients\n",
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(want), clients);
      std::exit(1);
    }
    table.AddRow({FmtInt(static_cast<uint64_t>(clients)),
                  FmtInt(rows_per_client),
                  FmtInt(static_cast<uint64_t>(
                      static_cast<double>(total) / secs)),
                  Fmt(PercentileMs(all_ns, 0.50)),
                  Fmt(PercentileMs(all_ns, 0.99)), FmtInt(0)});
  }
  table.Print("E19 query server: concurrent streaming clients");
}

void BM_RowJson(benchmark::State& state) {
  TupleRef t = MakeTuple(
      12345, {Value(int64_t{12345}), Value(3.25), Value("payload")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(server::RowJson(*t));
  }
}
BENCHMARK(BM_RowJson);

void BM_ResultQueuePushAck(benchmark::State& state) {
  server::ResultQueueOptions opts;
  opts.limit = 1024;
  server::ResultQueue q(opts);
  TupleRef t = MakeTuple(1, {Value(int64_t{1}), Value(int64_t{2})});
  uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Push(t));
    q.Ack(++seq);
  }
}
BENCHMARK(BM_ResultQueuePushAck);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintClientSweep();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
