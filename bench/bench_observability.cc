// E15 — observability overhead. The sqp::obs subsystem promises that an
// *unbound* operator pays only a branch per element and a bound one pays
// two relaxed RMWs plus two clock reads. This binary measures both on
// the select->project hot path (the cheapest real operators, i.e. the
// worst case for relative overhead), plus the cost of sampled lineage
// tracing and of taking/rendering snapshots while the plan runs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "obs/registry.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::vector<Element> MakeInput(uint64_t n) {
  std::vector<Element> input;
  input.reserve(n);
  gen::PacketGenerator packets(gen::PacketOptions{});
  for (uint64_t i = 0; i < n; ++i) input.push_back(Element(packets.Next()));
  return input;
}

struct ChainRun {
  double seconds = 0.0;
  uint64_t out = 0;
};

/// Builds the select(len > 500) -> project(ts, len*2) -> count chain,
/// optionally bound to a registry/tracer, and streams `input` through.
ChainRun RunChain(const std::vector<Element>& input,
                  obs::MetricsRegistry* reg, uint64_t trace_every,
                  bool direct_push = false) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(
      Gt(Col(gen::PacketCols::kLen), Lit(int64_t{500})));
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{
      Col(gen::PacketCols::kTs), Mul(Col(gen::PacketCols::kLen),
                                     Lit(int64_t{2}))});
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  if (reg != nullptr) {
    reg->EnableTracing(trace_every);
    plan.BindMetrics(*reg, "e15");
  }
  auto t0 = std::chrono::steady_clock::now();
  if (direct_push) {
    // Pre-PR entry point: virtual Push with no instrumentation branch.
    for (const Element& e : input) sel->Push(e, 0);
  } else {
    for (const Element& e : input) sel->Process(e, 0);
  }
  sel->Flush();
  auto t1 = std::chrono::steady_clock::now();
  ChainRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.out = sink->tuples();
  return r;
}

void PrintOverheadTable() {
  const uint64_t n = bench::Iters(4000000, 100000);
  const int reps = 3;
  std::vector<Element> input = MakeInput(n);

  // Best-of-reps per configuration, interleaved so frequency scaling
  // and cache warmth hit every configuration equally.
  double base = 1e100;
  double off = 1e100;
  double on = 1e100;
  double traced = 1e100;
  uint64_t out_off = 0;
  uint64_t out_on = 0;
  for (int r = 0; r < reps; ++r) {
    base = std::min(base, RunChain(input, nullptr, 0, true).seconds);
    out_off = RunChain(input, nullptr, 0).out;
    off = std::min(off, RunChain(input, nullptr, 0).seconds);
    {
      obs::MetricsRegistry reg;
      out_on = RunChain(input, &reg, 0).out;
    }
    {
      obs::MetricsRegistry reg;
      on = std::min(on, RunChain(input, &reg, 0).seconds);
    }
    {
      obs::MetricsRegistry reg;
      traced = std::min(traced, RunChain(input, &reg, 1024).seconds);
    }
  }
  if (out_off != out_on) {
    std::fprintf(stderr, "FATAL: instrumentation changed results\n");
    std::exit(1);
  }

  auto mps = [&](double s) { return static_cast<double>(n) / s / 1e6; };
  auto row = [&](const char* name, double s) {
    return std::vector<std::string>{name, Fmt(mps(s)),
                                    Fmt(s / static_cast<double>(n) * 1e9, 1),
                                    Fmt((s - base) / base * 100.0, 1)};
  };
  Table t({"config", "Mtuples/s", "ns/tuple", "overhead %"});
  t.AddRow({"entry via Push() (pre-PR)", Fmt(mps(base)),
            Fmt(base / static_cast<double>(n) * 1e9, 1), "baseline"});
  t.AddRow(row("metrics unbound (disabled)", off));
  t.AddRow(row("metrics bound", on));
  t.AddRow(row("metrics + trace 1/1024", traced));
  t.Print("E15: instrumentation overhead, select->project hot path");
  std::printf(
      "note: 'disabled' is the shipped default for hand-built plans (two\n"
      "pointer loads + branch per hop); StreamEngine binds metrics at\n"
      "Submit. Acceptance gate: 'metrics unbound' overhead < 3%%.\n");
}

void PrintSnapshotCosts() {
  const uint64_t n = bench::Iters(500000, 20000);
  std::vector<Element> input = MakeInput(n);
  obs::MetricsRegistry reg;
  RunChain(input, &reg, 256);
  const int snaps = static_cast<int>(bench::Iters(200, 20));
  auto t0 = std::chrono::steady_clock::now();
  size_t json_bytes = 0;
  size_t prom_bytes = 0;
  for (int i = 0; i < snaps; ++i) {
    obs::Snapshot s = reg.TakeSnapshot();
    json_bytes = s.ToJson().size();
    prom_bytes = s.ToPrometheus().size();
  }
  auto t1 = std::chrono::steady_clock::now();
  double us = std::chrono::duration<double>(t1 - t0).count() * 1e6 /
              static_cast<double>(snaps);
  Table t({"what", "value"});
  t.AddRow({"snapshot+render us", Fmt(us, 1)});
  t.AddRow({"json bytes", FmtInt(json_bytes)});
  t.AddRow({"prometheus bytes", FmtInt(prom_bytes)});
  t.AddRow({"trace events", FmtInt(reg.TakeSnapshot().trace.size())});
  t.Print("E15: snapshot + export cost (3-op plan, tracing on)");
}

void BM_CounterInc(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Observe(v++);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_ChainDisabled(benchmark::State& state) {
  std::vector<Element> input = MakeInput(20000);
  for (auto _ : state) {
    ChainRun r = RunChain(input, nullptr, 0);
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ChainDisabled);

void BM_ChainInstrumented(benchmark::State& state) {
  std::vector<Element> input = MakeInput(20000);
  for (auto _ : state) {
    obs::MetricsRegistry reg;
    ChainRun r = RunChain(input, &reg, 0);
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ChainInstrumented);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintOverheadTable();
  sqp::PrintSnapshotCosts();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
