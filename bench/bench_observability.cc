// E15 — observability overhead. The sqp::obs subsystem promises that an
// *unbound* operator pays only a branch per element and a bound one pays
// two relaxed RMWs plus two clock reads. This binary measures both on
// the select->project hot path (the cheapest real operators, i.e. the
// worst case for relative overhead), plus the cost of sampled lineage
// tracing and of taking/rendering snapshots while the plan runs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "arch/engine.h"
#include "bench_util.h"
#include "common/rng.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "obs/monitor.h"
#include "obs/registry.h"
#include "shed/feedback_shedder.h"
#include "stream/arrival.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::vector<Element> MakeInput(uint64_t n) {
  std::vector<Element> input;
  input.reserve(n);
  gen::PacketGenerator packets(gen::PacketOptions{});
  for (uint64_t i = 0; i < n; ++i) input.push_back(Element(packets.Next()));
  return input;
}

struct ChainRun {
  double seconds = 0.0;
  uint64_t out = 0;
};

/// Builds the select(len > 500) -> project(ts, len*2) -> count chain,
/// optionally bound to a registry/tracer, and streams `input` through.
ChainRun RunChain(const std::vector<Element>& input,
                  obs::MetricsRegistry* reg, uint64_t trace_every,
                  bool direct_push = false) {
  Plan plan;
  auto* sel = plan.Make<SelectOp>(
      Gt(Col(gen::PacketCols::kLen), Lit(int64_t{500})));
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{
      Col(gen::PacketCols::kTs), Mul(Col(gen::PacketCols::kLen),
                                     Lit(int64_t{2}))});
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  if (reg != nullptr) {
    reg->EnableTracing(trace_every);
    plan.BindMetrics(*reg, "e15");
  }
  auto t0 = std::chrono::steady_clock::now();
  if (direct_push) {
    // Pre-PR entry point: virtual Push with no instrumentation branch.
    for (const Element& e : input) sel->Push(e, 0);
  } else {
    for (const Element& e : input) sel->Process(e, 0);
  }
  sel->Flush();
  auto t1 = std::chrono::steady_clock::now();
  ChainRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.out = sink->tuples();
  return r;
}

void PrintOverheadTable() {
  const uint64_t n = bench::Iters(4000000, 100000);
  const int reps = 3;
  std::vector<Element> input = MakeInput(n);

  // Best-of-reps per configuration, interleaved so frequency scaling
  // and cache warmth hit every configuration equally.
  double base = 1e100;
  double off = 1e100;
  double on = 1e100;
  double traced = 1e100;
  uint64_t out_off = 0;
  uint64_t out_on = 0;
  for (int r = 0; r < reps; ++r) {
    base = std::min(base, RunChain(input, nullptr, 0, true).seconds);
    out_off = RunChain(input, nullptr, 0).out;
    off = std::min(off, RunChain(input, nullptr, 0).seconds);
    {
      obs::MetricsRegistry reg;
      out_on = RunChain(input, &reg, 0).out;
    }
    {
      obs::MetricsRegistry reg;
      on = std::min(on, RunChain(input, &reg, 0).seconds);
    }
    {
      obs::MetricsRegistry reg;
      traced = std::min(traced, RunChain(input, &reg, 1024).seconds);
    }
  }
  if (out_off != out_on) {
    std::fprintf(stderr, "FATAL: instrumentation changed results\n");
    std::exit(1);
  }

  auto mps = [&](double s) { return static_cast<double>(n) / s / 1e6; };
  auto row = [&](const char* name, double s) {
    return std::vector<std::string>{name, Fmt(mps(s)),
                                    Fmt(s / static_cast<double>(n) * 1e9, 1),
                                    Fmt((s - base) / base * 100.0, 1)};
  };
  Table t({"config", "Mtuples/s", "ns/tuple", "overhead %"});
  t.AddRow({"entry via Push() (pre-PR)", Fmt(mps(base)),
            Fmt(base / static_cast<double>(n) * 1e9, 1), "baseline"});
  t.AddRow(row("metrics unbound (disabled)", off));
  t.AddRow(row("metrics bound", on));
  t.AddRow(row("metrics + trace 1/1024", traced));
  t.Print("E15: instrumentation overhead, select->project hot path");
  std::printf(
      "note: 'disabled' is the shipped default for hand-built plans (two\n"
      "pointer loads + branch per hop); StreamEngine binds metrics at\n"
      "Submit. Acceptance gate: 'metrics unbound' overhead < 3%%.\n");
}

void PrintSnapshotCosts() {
  const uint64_t n = bench::Iters(500000, 20000);
  std::vector<Element> input = MakeInput(n);
  obs::MetricsRegistry reg;
  RunChain(input, &reg, 256);
  const int snaps = static_cast<int>(bench::Iters(200, 20));
  auto t0 = std::chrono::steady_clock::now();
  size_t json_bytes = 0;
  size_t prom_bytes = 0;
  for (int i = 0; i < snaps; ++i) {
    obs::Snapshot s = reg.TakeSnapshot();
    json_bytes = s.ToJson().size();
    prom_bytes = s.ToPrometheus().size();
  }
  auto t1 = std::chrono::steady_clock::now();
  double us = std::chrono::duration<double>(t1 - t0).count() * 1e6 /
              static_cast<double>(snaps);
  Table t({"what", "value"});
  t.AddRow({"snapshot+render us", Fmt(us, 1)});
  t.AddRow({"json bytes", FmtInt(json_bytes)});
  t.AddRow({"prometheus bytes", FmtInt(prom_bytes)});
  t.AddRow({"trace events", FmtInt(reg.TakeSnapshot().trace.size())});
  t.Print("E15: snapshot + export cost (3-op plan, tracing on)");
}

struct EngineRun {
  double seconds = 0.0;
  size_t rows = 0;
};

/// Streams `input` through a full StreamEngine (select->project over the
/// packets stream) with the given observability configuration. The timed
/// region covers ingest through FinishAll, so it includes everything the
/// monitor/latency machinery touches on the hot path.
EngineRun RunEngineIngest(const std::vector<TupleRef>& input,
                          uint64_t latency_every, int monitor_period_ms) {
  StreamEngine engine;
  (void)engine.RegisterStream("packets", gen::PacketSchema());
  engine.SetLatencySampleEvery(latency_every);
  auto q = engine.Submit("select ts, len from packets where len > 500");
  if (!q.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  if (monitor_period_ms > 0) {
    obs::MonitorOptions mopt;
    mopt.period_ms = monitor_period_ms;
    engine.StartMonitor(mopt);
  }
  auto t0 = std::chrono::steady_clock::now();
  for (const TupleRef& t : input) (void)engine.Ingest("packets", t);
  engine.FinishAll();
  auto t1 = std::chrono::steady_clock::now();
  EngineRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.rows = (*q)->result_count();
  return r;
}

/// E17 — continuous-monitor overhead. The Monitor samples the registry
/// from its own thread; the ingest path only pays the latency probe (a
/// relaxed load + occasional CAS). This measures the whole engine ingest
/// path with the monitor off vs ticking, best-of-reps interleaved.
void PrintMonitorOverheadTable() {
  const uint64_t n = bench::Iters(2000000, 100000);
  const int reps = static_cast<int>(bench::Iters(7, 5));
  std::vector<TupleRef> input;
  input.reserve(n);
  gen::PacketGenerator packets(gen::PacketOptions{});
  for (uint64_t i = 0; i < n; ++i) input.push_back(packets.Next());

  struct Config {
    const char* name;
    uint64_t latency_every;
    int monitor_period_ms;
  };
  const Config configs[] = {
      {"metrics only (no monitor)", 0, 0},
      {"+ latency sampling 1/256 (default)", 256, 0},
      {"+ monitor 100ms tick (default)", 256, 100},
      {"+ monitor 10ms tick", 256, 10},
      {"+ monitor 1ms tick (stress)", 256, 1},
  };
  constexpr int kConfigs = 5;
  // Shared machines drift several percent between runs, swamping a
  // best-of comparison across configs. Pair instead: every rep times
  // the baseline and each config back to back, the overhead is the
  // per-rep ratio (slow drift cancels), and the median rep rejects
  // scheduler bursts.
  std::vector<std::vector<double>> ratio(kConfigs);
  double best[kConfigs] = {1e100, 1e100, 1e100, 1e100, 1e100};
  size_t rows[kConfigs] = {0, 0, 0, 0, 0};
  for (int r = 0; r < reps; ++r) {
    // Untimed warmup: the first engine of a rep otherwise runs cold
    // (allocator + cache state) and inflates whichever config runs
    // first. The rotation below makes any residual within-rep drift
    // hit every config in every slot across reps, so it cancels out
    // of the aggregated ratios instead of biasing the baseline.
    (void)RunEngineIngest(input, 0, 0);
    double rep_s[kConfigs];
    for (int s = 0; s < kConfigs; ++s) {
      int c = (r + s) % kConfigs;
      EngineRun run = RunEngineIngest(input, configs[c].latency_every,
                                      configs[c].monitor_period_ms);
      rep_s[c] = run.seconds;
      best[c] = std::min(best[c], run.seconds);
      rows[c] = run.rows;
    }
    for (int c = 0; c < kConfigs; ++c) ratio[c].push_back(rep_s[c] / rep_s[0]);
  }
  for (int c = 1; c < kConfigs; ++c) {
    if (rows[c] != rows[0]) {
      std::fprintf(stderr, "FATAL: observability changed results\n");
      std::exit(1);
    }
  }
  // Median rep for real runs; min rep under --smoke, where each run is
  // milliseconds and one scheduler burst skews even the median — the
  // min stays meaningful for the CI gate because a systematic slowdown
  // (say, a lock added to the ingest path) inflates every rep.
  auto agg = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    if (bench::SmokeMode()) return v.front();
    size_t m = v.size() / 2;
    return v.size() % 2 == 1 ? v[m] : (v[m - 1] + v[m]) / 2.0;
  };
  auto mps = [&](double s) { return static_cast<double>(n) / s / 1e6; };
  Table t({"config", "Mtuples/s", "ns/tuple", "overhead %"});
  t.AddRow({configs[0].name, Fmt(mps(best[0])),
            Fmt(best[0] / static_cast<double>(n) * 1e9, 1), "baseline"});
  for (int c = 1; c < kConfigs; ++c) {
    t.AddRow({configs[c].name, Fmt(mps(best[c])),
              Fmt(best[c] / static_cast<double>(n) * 1e9, 1),
              Fmt((agg(ratio[c]) - 1.0) * 100.0, 1)});
  }
  t.Print("E17: continuous monitor overhead, engine ingest path");
  std::printf(
      "note: the monitor thread snapshots every period; the ingest path\n"
      "itself only pays the sampled latency probe. overhead %% is the\n"
      "per-rep paired ratio vs the same rep's baseline (median rep on\n"
      "full runs, min rep under --smoke). Acceptance gate: 'monitor\n"
      "100ms tick (default)' < 3%% on a full run; the 1ms row is a\n"
      "stress configuration (100x the default).\n");
}

/// E17b — adaptive shedding convergence. Deterministic queue simulation:
/// Poisson arrivals at 2x service capacity, the PI controller watching
/// the queue. Reports time-to-target, steady-state error, and recovery.
void PrintSheddingConvergenceTable() {
  const int ticks = static_cast<int>(bench::Iters(20000, 3000));
  FeedbackShedder::Options opt;
  opt.target_queue = 100.0;
  FeedbackShedder shed(opt);
  Rng rng(17);
  PoissonArrival arrivals(2.0, 18);
  double queue = 0;
  int first_in_band = -1;
  double tail_queue = 0.0;
  double tail_rate = 0.0;
  int tail_n = 0;
  const int tail_start = ticks * 3 / 4;
  for (int t = 0; t < ticks; ++t) {
    uint64_t arr = arrivals.ArrivalsAt(t);
    double p = shed.Observe(static_cast<size_t>(queue));
    for (uint64_t i = 0; i < arr; ++i) {
      if (!rng.Bernoulli(p)) queue += 1;
    }
    queue = std::max(0.0, queue - 1.0);
    if (first_in_band < 0 && queue >= 75.0 && queue <= 125.0) {
      first_in_band = t;
    }
    if (t >= tail_start) {
      tail_queue += queue;
      tail_rate += p;
      ++tail_n;
    }
  }
  // Load vanishes: how fast does the gate reopen?
  int recovery_ticks = 0;
  while (shed.Observe(0) >= 0.01 && recovery_ticks < 10000) ++recovery_ticks;

  Table t({"metric", "value"});
  t.AddRow({"ticks to reach +-25% of target", FmtInt(static_cast<uint64_t>(
                                                  std::max(first_in_band, 0)))});
  t.AddRow({"tail mean queue (target 100)", Fmt(tail_queue / tail_n, 1)});
  t.AddRow({"tail mean drop rate (ideal 0.50)", Fmt(tail_rate / tail_n, 3)});
  t.AddRow({"ticks to <1% drops after load ends", FmtInt(
                                                      static_cast<uint64_t>(
                                                          recovery_ticks))});
  t.Print("E17b: adaptive shedding convergence, 2x overload");
}

void BM_CounterInc(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Observe(v++);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_ChainDisabled(benchmark::State& state) {
  std::vector<Element> input = MakeInput(20000);
  for (auto _ : state) {
    ChainRun r = RunChain(input, nullptr, 0);
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ChainDisabled);

void BM_ChainInstrumented(benchmark::State& state) {
  std::vector<Element> input = MakeInput(20000);
  for (auto _ : state) {
    obs::MetricsRegistry reg;
    ChainRun r = RunChain(input, &reg, 0);
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ChainInstrumented);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintOverheadTable();
  sqp::PrintSnapshotCosts();
  sqp::PrintMonitorOverheadTable();
  sqp::PrintSheddingConvergenceTable();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
