// Experiment E12 (slide 22, "Query Plan: Fixed or Adaptive?"): the
// survey's adaptivity axis, measured. (a) An eddy-style adaptive filter
// chain [AH00] vs the same filters in a fixed order when predicate
// selectivities drift mid-stream. (b) The N-way window join's probe
// order: adaptive fewest-matches-first vs fixed stream order [VNB03].
// (c) Sketched aggregates replacing holistic ones (slide 38) inside a
// grouped query: accuracy vs state.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/eddy.h"
#include "exec/mjoin.h"
#include "exec/plan.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

TupleRef T(int64_t ts, int64_t a, int64_t b) {
  return MakeTuple(ts, {Value(ts), Value(a), Value(b)});
}

void PrintEddyDrift() {
  // Two filters whose selectivities swap every phase; stream of 5
  // phases. The adaptive chain re-ranks within each phase.
  const int kPhases = 5;
  const int kPerPhase = 20000;
  auto make_stream = [&]() {
    Rng rng(111);
    std::vector<TupleRef> tuples;
    for (int64_t i = 0; i < int64_t{kPhases} * kPerPhase; ++i) {
      bool odd_phase = (i / kPerPhase) % 2 == 1;
      int64_t a = odd_phase ? static_cast<int64_t>(rng.Uniform(499))
                            : 500 + static_cast<int64_t>(rng.Uniform(500));
      int64_t b = odd_phase ? 500 + static_cast<int64_t>(rng.Uniform(500))
                            : static_cast<int64_t>(rng.Uniform(499));
      tuples.push_back(T(i, a, b));
    }
    return tuples;
  };
  std::vector<TupleRef> tuples = make_stream();

  auto run = [&](bool adaptive) {
    EddyOp::Options opt;
    opt.filters = {{Lt(Col(1), Lit(int64_t{500})), 1.0},
                   {Lt(Col(2), Lit(int64_t{500})), 1.0}};
    opt.adaptive = adaptive;
    opt.reorder_interval = 256;
    Plan plan;
    auto* eddy = plan.Make<EddyOp>(opt);
    auto* sink = plan.Make<CountingSink>();
    eddy->SetOutput(sink);
    for (const TupleRef& t : tuples) eddy->Push(Element(t));
    return std::make_pair(eddy->evaluations(), sink->tuples());
  };
  auto [adaptive_evals, r1] = run(true);
  auto [static_evals, r2] = run(false);

  Table t({"plan", "predicate evaluations", "evals/tuple", "results"});
  t.AddRow({"fixed order", FmtInt(static_evals),
            Fmt(double(static_evals) / double(tuples.size()), 3), FmtInt(r2)});
  t.AddRow({"eddy (adaptive)", FmtInt(adaptive_evals),
            Fmt(double(adaptive_evals) / double(tuples.size()), 3),
            FmtInt(r1)});
  t.Print("E12a / slide 22: drifting selectivities, fixed vs adaptive order");
  std::printf(
      "shape: both produce identical results (%llu); the fixed order pays\n"
      "~2 evaluations/tuple in the phases where its first filter stopped\n"
      "being selective; the eddy re-ranks and stays near 1.\n",
      static_cast<unsigned long long>(r1));
}

void PrintMJoinOrder() {
  Table t({"skew (key-domain ratio)", "fixed-order partials",
           "adaptive partials", "saved"});
  for (uint64_t wide : {8u, 32u, 128u}) {
    Rng rng(112);
    std::vector<std::pair<int, TupleRef>> inputs;
    int64_t ts = 0;
    for (int i = 0; i < 30000; ++i) {
      ++ts;
      int side = static_cast<int>(rng.Uniform(3));
      // Stream 2's keys are spread over `wide`x the domain -> its match
      // lists are the short ones.
      int64_t key = side == 2
                        ? static_cast<int64_t>(rng.Uniform(4 * wide))
                        : static_cast<int64_t>(rng.Uniform(4));
      inputs.emplace_back(side, T(ts, key, i));
    }
    auto partials = [&](bool adaptive) {
      MultiWindowJoinOp::Options opt;
      opt.streams = {{1, 300}, {1, 300}, {1, 300}};
      opt.adaptive_order = adaptive;
      Plan plan;
      auto* mjoin = plan.Make<MultiWindowJoinOp>(opt);
      auto* sink = plan.Make<CountingSink>();
      mjoin->SetOutput(sink);
      for (auto& [side, tup] : inputs) mjoin->Push(Element(tup), side);
      return mjoin->partial_results();
    };
    uint64_t fixed = partials(false);
    uint64_t adaptive = partials(true);
    t.AddRow({FmtInt(wide), FmtInt(fixed), FmtInt(adaptive),
              Fmt(100.0 * (1.0 - double(adaptive) / double(fixed)), 1) + "%"});
  }
  t.Print("E12b: 3-way window join, probe-order ablation [VNB03]");
}

void PrintSketchedGroupBy() {
  // Grouped count(distinct) over an unbounded-ish domain: exact holistic
  // vs HLL-backed, state and accuracy.
  Rng rng(113);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 200000; ++i) {
    tuples.push_back(T(i, static_cast<int64_t>(rng.Uniform(16)),
                       static_cast<int64_t>(rng.Uniform(50000))));
  }
  auto run = [&](AggKind kind) {
    GroupByOptions opt;
    opt.key_cols = {1};
    opt.aggs = {{kind, 2, 0.5}};
    Plan plan;
    auto* gb = plan.Make<GroupByAggregateOp>(opt);
    auto* sink = plan.Make<CollectorSink>();
    gb->SetOutput(sink);
    for (const TupleRef& t : tuples) gb->Push(Element(t));
    size_t state = gb->StateBytes();
    gb->Flush();
    std::map<int64_t, double> result;
    for (const TupleRef& r : sink->tuples()) {
      result[r->at(1).AsInt()] = r->at(2).ToDouble();
    }
    return std::make_pair(state, result);
  };
  auto [exact_state, exact] = run(AggKind::kCountDistinct);
  auto [approx_state, approx] = run(AggKind::kApproxCountDistinct);
  double mean_err = 0;
  for (auto& [k, v] : exact) {
    mean_err += std::abs(approx[k] - v) / v;
  }
  mean_err /= static_cast<double>(exact.size());

  Table t({"variant", "state (KiB)", "mean rel err over 16 groups"});
  t.AddRow({"count_distinct (holistic)", FmtInt(exact_state / 1024), "0"});
  t.AddRow({"approx_count_distinct (HLL)", FmtInt(approx_state / 1024),
            Fmt(mean_err, 4)});
  t.Print("E12c / slide 38: sketched aggregate inside a grouped query");
}

void BM_Eddy(benchmark::State& state) {
  bool adaptive = state.range(0) != 0;
  Rng rng(114);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 10000; ++i) {
    tuples.push_back(T(i, static_cast<int64_t>(rng.Uniform(1000)),
                       static_cast<int64_t>(rng.Uniform(1000))));
  }
  EddyOp::Options opt;
  opt.filters = {{Lt(Col(1), Lit(int64_t{100})), 1.0},
                 {Lt(Col(2), Lit(int64_t{900})), 1.0}};
  opt.adaptive = adaptive;
  for (auto _ : state) {
    Plan plan;
    auto* eddy = plan.Make<EddyOp>(opt);
    auto* sink = plan.Make<CountingSink>();
    eddy->SetOutput(sink);
    for (const TupleRef& t : tuples) eddy->Push(Element(t));
    benchmark::DoNotOptimize(sink->tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_Eddy)->Arg(0)->Arg(1)->ArgNames({"adaptive"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintEddyDrift();
  sqp::PrintMJoinOrder();
  sqp::PrintSketchedGroupBy();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
