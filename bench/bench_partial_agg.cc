// Experiment E5 (slide 37, "Aggregation in Gigascope"): two-level partial
// aggregation. The low level keeps a fixed number of group slots
// ("bounded number of groups maintained at low level"); collisions evict
// partials upward, and the high level merges them into exact answers
// ("unbounded number of groups maintainable at high level"). Sweep the
// slot count to show the memory/emission-volume trade, with results
// verified exact at every point.

#include <benchmark/benchmark.h>

#include <map>

#include "agg/partial_agg.h"
#include "arch/system.h"
#include "bench_util.h"
#include "common/rng.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PrintSlotSweep() {
  // Zipf-skewed source IPs, per-minute buckets: the Gigascope workload of
  // `select tb, srcIP, count(*), sum(len) group by time/60, srcIP`.
  const int kTuples = 300000;
  const uint64_t kHosts = 20000;
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5},
                               {AggKind::kSum, 2, 0.5}};

  // Ground truth with the unbounded aggregator.
  auto make_tuples = [&]() {
    Rng rng(3);
    ZipfGenerator zipf(kHosts, 1.1);
    std::vector<TupleRef> out;
    out.reserve(kTuples);
    for (int64_t i = 0; i < kTuples; ++i) {
      out.push_back(MakeTuple(
          i / 10, {Value(i / 10), Value(static_cast<int64_t>(zipf.Next(rng))),
                   Value(static_cast<int64_t>(rng.Uniform(1500)))}));
    }
    return out;
  };
  std::vector<TupleRef> tuples = make_tuples();

  auto run = [&](size_t slots) {
    PartialAggregator low(slots, {1}, aggs);
    FinalAggregator high(aggs);
    std::vector<PartialGroup> partials;
    size_t peak_low = 0;
    uint64_t emitted = 0;
    int64_t i = 0;
    for (const TupleRef& t : tuples) {
      low.Add(*t, &partials);
      emitted += partials.size();
      for (auto& g : partials) high.Merge(std::move(g));
      partials.clear();
      // MemoryBytes() walks the slot table; sample it rather than paying
      // O(slots) per tuple.
      if ((++i & 0x3ff) == 0) {
        peak_low = std::max(peak_low, low.MemoryBytes());
      }
    }
    peak_low = std::max(peak_low, low.MemoryBytes());
    low.Flush(&partials);
    emitted += partials.size();
    for (auto& g : partials) high.Merge(std::move(g));
    return std::make_tuple(peak_low, emitted, high.num_groups());
  };

  auto [ref_mem, ref_emit, ref_groups] = run(0);
  Table t({"low slots", "low peak mem (KiB)", "partials emitted",
           "emit ratio vs tuples", "final groups", "exact?"});
  for (size_t slots : {16u, 64u, 256u, 1024u, 4096u, 0u}) {
    auto [mem, emitted, groups] = run(slots);
    t.AddRow({slots == 0 ? "unbounded" : FmtInt(slots), FmtInt(mem / 1024),
              FmtInt(emitted),
              Fmt(static_cast<double>(emitted) / kTuples, 3), FmtInt(groups),
              groups == ref_groups ? "yes" : "NO"});
  }
  t.Print("E5 / slide 37: low-level slot sweep (Zipf 1.1 over 20k hosts)");
  std::printf(
      "shape: more slots -> fewer partial emissions (less upstream traffic),\n"
      "more low-level memory; every configuration is exact after the merge.\n");
}

void PrintThreeLevelPipeline() {
  ThreeLevelConfig cfg;
  cfg.key_cols = {1};
  cfg.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kAvg, 2, 0.5}};
  cfg.window_size = 600;
  cfg.low_slots = 128;
  cfg.low_node.capacity_per_tick = 1e9;
  cfg.high_node.capacity_per_tick = 1e9;
  auto schema = std::make_shared<const Schema>(
      *Schema::WithOrdering({{"ts", ValueType::kInt},
                             {"key", ValueType::kInt},
                             {"val", ValueType::kInt}},
                            "ts"));
  auto sys = ThreeLevelSystem::Make(schema, cfg);
  if (!sys.ok()) return;
  Rng rng(5);
  ZipfGenerator zipf(5000, 1.0);
  for (int64_t i = 0; i < 100000; ++i) {
    (*sys)->Arrive(MakeTuple(
        i / 20, {Value(i / 20), Value(static_cast<int64_t>(zipf.Next(rng))),
                 Value(static_cast<int64_t>(rng.Uniform(100)))}));
    (*sys)->Tick();
  }
  (*sys)->Drain();
  const PartialAggStats& st = (*sys)->partial_agg().agg_stats();
  Table t({"metric", "value"});
  t.AddRow({"tuples in", FmtInt(st.tuples_in)});
  t.AddRow({"low-level evictions", FmtInt(st.evictions)});
  t.AddRow({"bucket flushes", FmtInt(st.flushed)});
  t.AddRow({"rows stored in DBMS", FmtInt((*sys)->db().size())});
  t.Print("E5: end-to-end 3-level pipeline (low DSMS -> high DSMS -> DB)");
}

void BM_PartialAggregation(benchmark::State& state) {
  size_t slots = static_cast<size_t>(state.range(0));
  std::vector<AggSpec> aggs = {{AggKind::kCount, -1, 0.5}};
  Rng rng(9);
  ZipfGenerator zipf(10000, 1.0);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 20000; ++i) {
    tuples.push_back(
        MakeTuple(i, {Value(i), Value(static_cast<int64_t>(zipf.Next(rng)))}));
  }
  for (auto _ : state) {
    PartialAggregator low(slots, {1}, aggs);
    std::vector<PartialGroup> partials;
    for (const TupleRef& t : tuples) {
      low.Add(*t, &partials);
      partials.clear();
    }
    benchmark::DoNotOptimize(low.resident_groups());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_PartialAggregation)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(0)
    ->ArgNames({"slots"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintSlotSweep();
  sqp::PrintThreeLevelPipeline();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
