// Experiment E3 (slides 32-33, "Binary Joins [KNV03]"): window-join
// strategy trade-offs. Hash indexes spend memory to save CPU; nested
// loops the reverse; with asymmetric arrival rates the best combination
// is asymmetric — index the fast stream's window (probed often), scan
// the slow one's.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/plan.h"
#include "exec/window_join.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

struct WorkloadItem {
  int side;
  TupleRef tuple;
};

// rate_ratio : 1 arrivals left : right.
std::vector<WorkloadItem> MakeWorkload(int n, int rate_ratio, uint64_t keys,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkloadItem> out;
  out.reserve(static_cast<size_t>(n));
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ++ts;
    int side = rng.Uniform(static_cast<uint64_t>(rate_ratio) + 1) <
                       static_cast<uint64_t>(rate_ratio)
                   ? 0
                   : 1;
    out.push_back({side, MakeTuple(ts, {Value(ts),
                                        Value(static_cast<int64_t>(
                                            rng.Uniform(keys)))})});
  }
  return out;
}

struct RunResult {
  double seconds;
  size_t peak_state;
  WindowJoinStats stats;
};

RunResult RunJoin(const std::vector<WorkloadItem>& workload, JoinStrategy left,
                  JoinStrategy right, int64_t w) {
  Plan plan;
  BinaryWindowJoinOp::Options o;
  o.left_cols = {1};
  o.right_cols = {1};
  o.left_window = WindowSpec::TimeSliding(w);
  o.right_window = WindowSpec::TimeSliding(w);
  o.left_strategy = left;
  o.right_strategy = right;
  auto* j = plan.Make<BinaryWindowJoinOp>(o);
  auto* sink = plan.Make<CountingSink>();
  j->SetOutput(sink);

  size_t peak = 0;
  auto start = std::chrono::steady_clock::now();
  for (const auto& item : workload) {
    j->Push(Element(item.tuple), item.side);
    if ((item.tuple->ts() & 0xff) == 0) {
      peak = std::max(peak, j->StateBytes());
    }
  }
  auto end = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.peak_state = std::max(peak, j->StateBytes());
  r.stats = j->join_stats();
  return r;
}

void PrintStrategyMatrix() {
  // Asymmetric rates: left stream 9x faster than right (slide 33's
  // "asymmetric join processing has advantages if arrival rates differ").
  auto workload = MakeWorkload(200000, 9, 500, 101);
  Table t({"left-strategy(probed by right)", "right-strategy(probed by left)",
           "time (ms)", "peak state (KiB)", "results", "nl cmps"});
  const JoinStrategy kS[] = {JoinStrategy::kHash, JoinStrategy::kNestedLoop};
  for (JoinStrategy ls : kS) {
    for (JoinStrategy rs : kS) {
      auto r = RunJoin(workload, ls, rs, 2000);
      t.AddRow({JoinStrategyName(ls), JoinStrategyName(rs),
                Fmt(r.seconds * 1e3, 1), FmtInt(r.peak_state / 1024),
                FmtInt(r.stats.results), FmtInt(r.stats.nl_comparisons)});
    }
  }
  t.Print(
      "E3 / slides 32-33: window join strategies, left:right rate 9:1, "
      "window 2000");
  std::printf(
      "expected shape: the asymmetric winner indexes the slow (right)\n"
      "stream's window — it is probed by every fast-stream arrival — while\n"
      "scanning the fast stream's large window (probed rarely) avoids index\n"
      "upkeep; symmetric nested-loop burns the most CPU, symmetric hash the\n"
      "most memory.\n");
}

void PrintMemoryCpuTradeoff() {
  auto workload = MakeWorkload(100000, 1, 200, 202);
  Table t({"window", "hash time (ms)", "nl time (ms)", "hash KiB", "nl KiB"});
  for (int64_t w : {250, 1000, 4000, 16000}) {
    auto h = RunJoin(workload, JoinStrategy::kHash, JoinStrategy::kHash, w);
    auto n = RunJoin(workload, JoinStrategy::kNestedLoop,
                     JoinStrategy::kNestedLoop, w);
    t.AddRow({std::to_string(w), Fmt(h.seconds * 1e3, 1),
              Fmt(n.seconds * 1e3, 1), FmtInt(h.peak_state / 1024),
              FmtInt(n.peak_state / 1024)});
  }
  t.Print("E3 ablation: window sweep — NL CPU cost grows with window, hash "
          "memory does");
}

void BM_WindowJoin(benchmark::State& state) {
  JoinStrategy s =
      state.range(0) == 0 ? JoinStrategy::kHash : JoinStrategy::kNestedLoop;
  auto workload = MakeWorkload(20000, 1, 200, 7);
  for (auto _ : state) {
    auto r = RunJoin(workload, s, s, 1000);
    benchmark::DoNotOptimize(r.stats.results);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WindowJoin)->Arg(0)->Arg(1)->ArgNames({"nested_loop"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintStrategyMatrix();
  sqp::PrintMemoryCpuTradeoff();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
