// Experiment E8 (slide 45, "Multi-query Processing on Streams"):
// sharing across queries. (a) N range filters over the same attribute
// evaluated per tuple via an interval index vs N independent predicate
// tests; (b) M sliding-window joins differing only in window length
// evaluated by one shared max-window join vs M dedicated joins.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "opt/sharing.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PrintSharedFilters() {
  Table t({"queries", "naive (ms)", "shared index (ms)", "speedup"});
  Rng data_rng(51);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(data_rng.NextDouble() * 1000);

  for (size_t nq : {16u, 64u, 256u, 1024u}) {
    SharedRangeFilter f;
    Rng rng(52);
    for (size_t q = 0; q < nq; ++q) {
      double lo = rng.NextDouble() * 1000.0;
      f.AddRange(lo, lo + 5.0 + rng.NextDouble() * 50.0);
    }
    f.Build();

    auto t0 = std::chrono::steady_clock::now();
    size_t naive_hits = 0;
    for (double v : values) naive_hits += f.MatchNaive(v).size();
    auto t1 = std::chrono::steady_clock::now();
    size_t shared_hits = 0;
    for (double v : values) shared_hits += f.Match(v).size();
    auto t2 = std::chrono::steady_clock::now();
    if (naive_hits != shared_hits) {
      std::printf("MISMATCH %zu vs %zu\n", naive_hits, shared_hits);
    }
    double naive_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
    double shared_ms = std::chrono::duration<double>(t2 - t1).count() * 1e3;
    t.AddRow({FmtInt(nq), Fmt(naive_ms, 1), Fmt(shared_ms, 1),
              Fmt(naive_ms / shared_ms, 1)});
  }
  t.Print("E8 / slide 45: N range predicates per tuple, shared vs naive");
}

void PrintSharedJoins() {
  Rng rng(53);
  std::vector<std::pair<int, TupleRef>> inputs;
  int64_t ts = 0;
  for (int i = 0; i < 100000; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(3));
    inputs.emplace_back(
        rng.Bernoulli(0.5) ? 0 : 1,
        MakeTuple(ts, {Value(ts),
                       Value(static_cast<int64_t>(rng.Uniform(200)))}));
  }

  Table t({"queries", "dedicated joins (ms)", "shared join (ms)", "speedup",
           "shared state (KiB)"});
  for (size_t nq : {2u, 4u, 8u, 16u}) {
    std::vector<int64_t> windows;
    for (size_t q = 0; q < nq; ++q) {
      windows.push_back(100 << (q % 5));  // 100..1600, repeating.
    }

    auto t0 = std::chrono::steady_clock::now();
    std::vector<uint64_t> dedicated_results(nq);
    for (size_t q = 0; q < nq; ++q) {
      SharedWindowJoin j({windows[q]}, {1}, {1});
      for (auto& [side, tup] : inputs) j.Push(side, tup);
      dedicated_results[q] = j.results()[0];
    }
    auto t1 = std::chrono::steady_clock::now();
    SharedWindowJoin shared(windows, {1}, {1});
    for (auto& [side, tup] : inputs) shared.Push(side, tup);
    auto t2 = std::chrono::steady_clock::now();

    for (size_t q = 0; q < nq; ++q) {
      if (shared.results()[q] != dedicated_results[q]) {
        std::printf("MISMATCH q=%zu\n", q);
      }
    }
    double ded_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
    double sh_ms = std::chrono::duration<double>(t2 - t1).count() * 1e3;
    t.AddRow({FmtInt(nq), Fmt(ded_ms, 1), Fmt(sh_ms, 1),
              Fmt(ded_ms / sh_ms, 1), FmtInt(shared.StateBytes() / 1024)});
  }
  t.Print("E8 / slide 45: M window joins, shared max-window operator");
}

void BM_SharedFilterMatch(benchmark::State& state) {
  bool shared = state.range(0) != 0;
  SharedRangeFilter f;
  Rng rng(54);
  for (int q = 0; q < 512; ++q) {
    double lo = rng.NextDouble() * 1000.0;
    f.AddRange(lo, lo + 20.0);
  }
  f.Build();
  double x = 0;
  for (auto _ : state) {
    x += 1.37;
    if (x > 1000) x = 0;
    auto hits = shared ? f.Match(x) : f.MatchNaive(x);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedFilterMatch)->Arg(0)->Arg(1)->ArgNames({"shared"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintSharedFilters();
  sqp::PrintSharedJoins();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
