// Experiment E6 (slide 44, "Load Shedding"): answer quality vs shed
// fraction for random and semantic shedding, on a selective monitoring
// query (count of high-value tuples). Random shedding loses answer mass
// proportionally (recoverable in expectation by 1/(1-p) scaling but with
// variance); semantic shedding drops only query-irrelevant tuples and
// keeps the answer exact until forced to cut into relevant traffic.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/plan.h"
#include "exec/select.h"
#include "shed/load_shedder.h"
#include "shed/qos.h"
#include "shed/shed_planner.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::Table;

void PrintAccuracyVsShedFraction() {
  // Query: count of tuples with value >= 900 (top 10%).
  const int kTuples = 100000;
  auto make_values = [&]() {
    Rng rng(21);
    std::vector<int64_t> v(kTuples);
    for (auto& x : v) x = static_cast<int64_t>(rng.Uniform(1000));
    return v;
  };
  std::vector<int64_t> values = make_values();
  uint64_t truth = 0;
  for (int64_t v : values) truth += v >= 900 ? 1 : 0;

  Table t({"shed fraction", "random: rel err (scaled)", "semantic: rel err"});
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    // Random shedding + 1/(1-p) scale-up.
    Plan plan;
    auto* rnd = plan.Make<RandomDropOp>(p, 77);
    auto* sel1 = plan.Make<SelectOp>(Ge(Col(1), Lit(int64_t{900})));
    auto* sink1 = plan.Make<CountingSink>();
    rnd->SetOutput(sel1);
    sel1->SetOutput(sink1);
    // Semantic shedding: drop non-matching tuples at a rate that sheds
    // the same *total* fraction p of the stream (p/0.9 of non-matching).
    auto* sem = plan.Make<SemanticDropOp>(Ge(Col(1), Lit(int64_t{900})),
                                          std::min(1.0, p / 0.9), 78);
    auto* sel2 = plan.Make<SelectOp>(Ge(Col(1), Lit(int64_t{900})));
    auto* sink2 = plan.Make<CountingSink>();
    sem->SetOutput(sel2);
    sel2->SetOutput(sink2);

    for (int64_t i = 0; i < kTuples; ++i) {
      TupleRef tup = MakeTuple(i, {Value(i), Value(values[static_cast<size_t>(i)])});
      rnd->Push(Element(tup));
      sem->Push(Element(tup));
    }
    double rnd_est = static_cast<double>(sink1->tuples()) * rnd->scale_factor();
    double rnd_err = std::fabs(rnd_est - double(truth)) / double(truth);
    double sem_err =
        std::fabs(double(sink2->tuples()) - double(truth)) / double(truth);
    t.AddRow({Fmt(p, 1), Fmt(rnd_err, 4), Fmt(sem_err, 4)});
  }
  t.Print("E6 / slide 44: random vs semantic shedding, query = count(v>=900)");
  std::printf(
      "shape: semantic error stays ~0 until shed fraction approaches the\n"
      "non-relevant mass (90%%); random error is nonzero at every level.\n");
}

void PrintShedPlanner() {
  // Three candidate drop points with different downstream costs and
  // answer-loss weights; plan for increasing overload.
  std::vector<ShedPoint> points = {
      {50.0, 4.0, 0.2},  // Cheap to shed: after a pre-filter.
      {100.0, 1.0, 1.0},  // At a source feeding the whole query.
      {30.0, 2.0, 0.5},
  };
  double load = 50 * 4 + 100 * 1 + 30 * 2;  // 360 work units demanded.
  Table t({"capacity", "drop@filtered", "drop@source", "drop@mid",
           "answer loss", "feasible"});
  for (double cap : {360.0, 300.0, 200.0, 100.0, 40.0}) {
    auto plan = PlanShedding(points, load, cap);
    t.AddRow({Fmt(cap, 0), Fmt(plan.drop_rate[0], 2), Fmt(plan.drop_rate[1], 2),
              Fmt(plan.drop_rate[2], 2), Fmt(plan.expected_answer_loss, 3),
              plan.feasible ? "yes" : "no"});
  }
  t.Print("E6: shedding placement under decreasing capacity ([BDM03] greedy)");
}

void PrintQosAllocation() {
  // Aurora-style (slide 47): three queries with different QoS curves
  // share insufficient capacity.
  std::vector<double> rates = {100.0, 100.0, 100.0};
  std::vector<QosCurve> curves = {
      QosCurve::Linear(),
      *QosCurve::Make({{0.0, 0.0}, {0.2, 0.85}, {1.0, 1.0}}),  // Steep early.
      QosCurve::Knee(0.8),  // Needs nearly everything to be useful.
  };
  Table t({"capacity", "linear", "steep-early", "knee(.8)", "total utility"});
  for (double cap : {300.0, 200.0, 120.0, 60.0}) {
    auto a = AllocateCapacity(rates, curves, cap);
    t.AddRow({Fmt(cap, 0), Fmt(a.delivered_fraction[0], 2),
              Fmt(a.delivered_fraction[1], 2), Fmt(a.delivered_fraction[2], 2),
              Fmt(a.total_utility, 2)});
  }
  t.Print("E6: QoS-maximizing capacity allocation (Aurora, slide 47)");
}

void BM_SheddingOverhead(benchmark::State& state) {
  bool semantic = state.range(0) != 0;
  Rng rng(1);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 10000; ++i) {
    tuples.push_back(MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(1000)))}));
  }
  for (auto _ : state) {
    Plan plan;
    Operator* shed;
    if (semantic) {
      shed = plan.Make<SemanticDropOp>(Ge(Col(1), Lit(int64_t{900})), 0.5, 3);
    } else {
      shed = plan.Make<RandomDropOp>(0.5, 3);
    }
    auto* sink = plan.Make<CountingSink>();
    shed->SetOutput(sink);
    for (const TupleRef& t : tuples) shed->Push(Element(t));
    benchmark::DoNotOptimize(sink->tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_SheddingOverhead)->Arg(0)->Arg(1)->ArgNames({"semantic"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintAccuracyVsShedFraction();
  sqp::PrintShedPlanner();
  sqp::PrintQosAllocation();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
