// E20: the vectorized columnar path vs the batched row path.
//
// The gate sweep reuses E16's 4-stage select -> select -> project ->
// project numeric chain on the parallel op-per-stage executor: the row
// baseline at hand-off batch 64 (E16's best-practice setting) against
// columnar delivery across batch sizes. Columnar stages convert each
// claimed run to a ColumnBatch once, refine a selection vector through
// both selects (no data movement), gather the projections column-at-a-
// time, and hand downstream ONE queue item per batch — so queue locks,
// wakeups and virtual dispatch amortize over the batch on top of the
// kernel wins. Output counts must match the row path exactly — the
// harness aborts otherwise (bit-identical values are proved by
// columnar_equiv_test).
//
// Satellite sweeps: schema width (per-column conversion cost vs kernel
// win), string-heavy vs numeric schemas (arena copies vs int loops),
// and the E15 re-measure — per-batch metrics amortization (CountInBulk/
// CountOutBulk + whole-batch self-timing) against E15's per-element
// ~22% finding.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/column_batch.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "obs/op_metrics.h"
#include "sched/parallel_executor.h"
#include "stream/element_batch.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// E16's input schema: [pair_id, side, v], v uniform in [0, 1000).
constexpr int kV = 2;

std::vector<Element> MakeNumericInput(uint64_t n) {
  Rng rng(17);
  std::vector<Element> input;
  input.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    input.push_back(Element(MakeTuple(
        static_cast<int64_t>(i),
        {Value(static_cast<int64_t>(i / 2)),
         Value(static_cast<int64_t>(i % 2)),
         Value(static_cast<int64_t>(rng.Uniform(1000)))})));
  }
  return input;
}

/// [id, tag, word, v]: two string columns riding through the chain, so
/// conversion pays arena copies and the projection gathers strings.
std::vector<Element> MakeStringInput(uint64_t n) {
  Rng rng(17);
  static const char* kWords[] = {"alpha", "beta", "gamma-delta", "x",
                                 "stream-query", "punctuation"};
  std::vector<Element> input;
  input.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    input.push_back(Element(MakeTuple(
        static_cast<int64_t>(i),
        {Value(static_cast<int64_t>(i / 2)), Value(std::string(kWords[i % 6])),
         Value(std::string(kWords[(i + 3) % 6])),
         Value(static_cast<int64_t>(rng.Uniform(1000)))})));
  }
  return input;
}

/// `width` int columns; the select/project columns sit at the end so
/// extra width is pure conversion+gather ballast.
std::vector<Element> MakeWideInput(uint64_t n, size_t width) {
  Rng rng(17);
  std::vector<Element> input;
  input.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<Value> vals;
    vals.reserve(width);
    for (size_t c = 0; c + 1 < width; ++c) {
      vals.push_back(Value(static_cast<int64_t>(i + c)));
    }
    vals.push_back(Value(static_cast<int64_t>(rng.Uniform(1000))));
    input.push_back(Element(MakeTuple(static_cast<int64_t>(i), std::move(vals))));
  }
  return input;
}

/// E16's cheap 4-stage chain, parameterized on the value column (the
/// last one for wide schemas) and the projection lists.
std::vector<Operator*> BuildChain(Plan* plan, int vcol,
                                  std::vector<ExprRef> proj1,
                                  std::vector<ExprRef> proj2) {
  std::vector<Operator*> ops;
  ops.push_back(
      plan->Make<SelectOp>(Gt(Col(vcol), Lit(int64_t{99})), "sel"));
  ops.push_back(
      plan->Make<SelectOp>(Lt(Col(vcol), Lit(int64_t{990})), "sel2"));
  ops.push_back(plan->Make<ProjectOp>(std::move(proj1), "proj"));
  ops.push_back(plan->Make<ProjectOp>(std::move(proj2), "proj2"));
  return ops;
}

std::vector<ExprRef> Cols(std::initializer_list<int> idx) {
  std::vector<ExprRef> out;
  for (int i : idx) out.push_back(Col(i));
  return out;
}

struct RunResult {
  double seconds = 0;
  uint64_t out = 0;
};

struct RunConfig {
  size_t batch = 64;
  bool columnar = false;
  bool metrics = false;
  int vcol = kV;
  std::vector<ExprRef> proj1;
  std::vector<ExprRef> proj2;
};

/// Parallel op-per-stage run: wake_batch = max_batch = B. Columnar mode
/// flips Stage.columnar so each worker converts its claimed run once
/// and the chain stays columnar until the counting sink.
RunResult Run(const std::vector<Element>& input, const RunConfig& cfg) {
  Plan plan;
  std::vector<Operator*> chain =
      BuildChain(&plan, cfg.vcol, cfg.proj1, cfg.proj2);
  auto* sink = plan.Make<CountingSink>();
  std::vector<obs::OpMetrics> metrics(chain.size());
  if (cfg.metrics) {
    for (size_t i = 0; i < chain.size(); ++i) chain[i]->Bind(&metrics[i]);
  }
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : chain) {
    ParallelExecutor::Stage s;
    s.op = op;
    s.queue_limit = std::max<size_t>(512, cfg.batch);
    s.backpressure = Backpressure::kBlock;
    s.wake_batch = cfg.batch;
    s.max_batch = cfg.batch;
    s.columnar = cfg.columnar;
    stages.push_back(s);
  }
  ParallelExecutor exec(stages, sink);
  exec.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (const Element& e : input) exec.Arrive(e);
  exec.Drain();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

void CheckOut(uint64_t got, uint64_t want, const char* what) {
  if (got != want || got == 0) {
    std::fprintf(stderr,
                 "FATAL: %s produced %llu output tuples, expected %llu "
                 "(nonzero) — columnar path diverged\n",
                 what, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    std::abort();
  }
}

/// Best-of-N with reps interleaved across configs so drifting background
/// load biases no single configuration (E16's protocol).
template <typename MakeCfg>
std::vector<RunResult> Sweep(const std::vector<Element>& input, size_t n_cfgs,
                             MakeCfg make_cfg, int reps) {
  std::vector<RunResult> results(n_cfgs);
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < n_cfgs; ++i) {
      RunResult r = Run(input, make_cfg(i));
      if (rep == 0 || r.seconds < results[i].seconds) results[i] = r;
    }
  }
  for (size_t i = 1; i < n_cfgs; ++i) {
    CheckOut(results[i].out, results[0].out, "columnar sweep run");
  }
  return results;
}

// ---------------------------------------------------------------------------
// Gate sweep: row batch=64 baseline vs columnar batch sizes.

struct GateCfg {
  const char* name;
  size_t batch;
  bool columnar;
};

const GateCfg kGateCfgs[] = {
    {"row b=64", 64, false},    {"row b=256", 256, false},
    {"col b=64", 64, true},     {"col b=256", 256, true},
    {"col b=1024", 1024, true}, {"col b=4096", 4096, true},
};
constexpr size_t kNumGateCfgs = sizeof(kGateCfgs) / sizeof(kGateCfgs[0]);

void PrintGateSweep() {
  const uint64_t n = bench::Iters(400000, 4000);
  std::vector<Element> input = MakeNumericInput(n);
  const int reps = bench::SmokeMode() ? 1 : 5;

  std::vector<RunResult> results = Sweep(
      input, kNumGateCfgs,
      [](size_t i) {
        RunConfig c;
        c.batch = kGateCfgs[i].batch;
        c.columnar = kGateCfgs[i].columnar;
        c.proj1 = Cols({0, 1, 2});
        c.proj2 = Cols({0, 2});
        return c;
      },
      reps);

  double base_t = static_cast<double>(n) / results[0].seconds / 1000.0;
  Table t({"config", "Ktup/s", "speedup vs row b=64", "out"});
  for (size_t i = 0; i < kNumGateCfgs; ++i) {
    double bt = static_cast<double>(n) / results[i].seconds / 1000.0;
    t.AddRow({kGateCfgs[i].name, Fmt(bt, 0), Fmt(bt / base_t, 2),
              FmtInt(results[i].out)});
  }
  t.Print(
      "Columnar gate: parallel 4-stage select->select->project->project "
      "numeric chain, row batch=64 baseline vs columnar batch sweep");
  std::printf(
      "note: a columnar stage converts each claimed run once, refines a "
      "selection\nvector through both selects and hands ONE queue item "
      "per batch downstream;\nthe row path moves every surviving element "
      "through every queue individually.\n");
}

// ---------------------------------------------------------------------------
// Schema width: conversion touches every column, kernels only the used.

void PrintWidthSweep() {
  const uint64_t n = bench::Iters(150000, 3000);
  const int reps = bench::SmokeMode() ? 1 : 3;
  const size_t kWidths[] = {3, 8, 16};

  Table t({"width", "row b=64 Ktup/s", "col b=1024 Ktup/s", "speedup"});
  for (size_t width : kWidths) {
    std::vector<Element> input = MakeWideInput(n, width);
    const int vcol = static_cast<int>(width) - 1;
    auto make_cfg = [&](size_t i) {
      RunConfig c;
      c.vcol = vcol;
      // Project every column, then halve: the gather cost scales with
      // width like the row path's tuple rebuild does.
      for (int k = 0; k < static_cast<int>(width); ++k) {
        c.proj1.push_back(Col(k));
      }
      for (int k = 0; k < static_cast<int>(width); k += 2) {
        c.proj2.push_back(Col(k));
      }
      if (i == 0) {
        c.batch = 64;
        c.columnar = false;
      } else {
        c.batch = 1024;
        c.columnar = true;
      }
      return c;
    };
    std::vector<RunResult> results = Sweep(input, 2, make_cfg, reps);
    double row_t = static_cast<double>(n) / results[0].seconds / 1000.0;
    double col_t = static_cast<double>(n) / results[1].seconds / 1000.0;
    t.AddRow({FmtInt(width), Fmt(row_t, 0), Fmt(col_t, 0),
              Fmt(col_t / row_t, 2)});
  }
  t.Print("Schema width sweep: all-int columns, same 4-stage chain");
}

// ---------------------------------------------------------------------------
// String-heavy vs numeric: arena copies vs tight int loops.

void PrintStringSweep() {
  const uint64_t n = bench::Iters(150000, 3000);
  const int reps = bench::SmokeMode() ? 1 : 3;

  Table t({"schema", "row b=64 Ktup/s", "col b=1024 Ktup/s", "speedup"});
  struct Shape {
    const char* name;
    std::vector<Element> input;
    int vcol;
    std::vector<ExprRef> proj1;
    std::vector<ExprRef> proj2;
  };
  Shape shapes[2] = {
      {"numeric [i,i,i]", MakeNumericInput(n), kV, Cols({0, 1, 2}),
       Cols({0, 2})},
      {"strings [i,s,s,i]", MakeStringInput(n), 3, Cols({0, 1, 2, 3}),
       Cols({1, 3})},
  };
  for (Shape& shape : shapes) {
    auto make_cfg = [&](size_t i) {
      RunConfig c;
      c.vcol = shape.vcol;
      c.proj1 = shape.proj1;
      c.proj2 = shape.proj2;
      if (i == 0) {
        c.batch = 64;
        c.columnar = false;
      } else {
        c.batch = 1024;
        c.columnar = true;
      }
      return c;
    };
    std::vector<RunResult> results = Sweep(shape.input, 2, make_cfg, reps);
    double row_t = static_cast<double>(n) / results[0].seconds / 1000.0;
    double col_t = static_cast<double>(n) / results[1].seconds / 1000.0;
    t.AddRow({shape.name, Fmt(row_t, 0), Fmt(col_t, 0),
              Fmt(col_t / row_t, 2)});
  }
  t.Print(
      "String-heavy vs numeric schemas: conversion pays arena copies, "
      "kernels fall back to per-row loops on string columns");
}

// ---------------------------------------------------------------------------
// E15 re-measure: metrics overhead under per-batch amortization.

void PrintMetricsOverhead() {
  const uint64_t n = bench::Iters(200000, 3000);
  std::vector<Element> input = MakeNumericInput(n);
  const int reps = bench::SmokeMode() ? 1 : 5;

  struct Cfg {
    const char* name;
    size_t batch;
    bool columnar;
    bool metrics;
  };
  const Cfg cfgs[] = {
      {"row b=64, metrics off", 64, false, false},
      {"row b=64, metrics on", 64, false, true},
      {"col b=1024, metrics off", 1024, true, false},
      {"col b=1024, metrics on", 1024, true, true},
  };
  std::vector<RunResult> results = Sweep(
      input, 4,
      [&](size_t i) {
        RunConfig c;
        c.batch = cfgs[i].batch;
        c.columnar = cfgs[i].columnar;
        c.metrics = cfgs[i].metrics;
        c.proj1 = Cols({0, 1, 2});
        c.proj2 = Cols({0, 2});
        return c;
      },
      reps);

  Table t({"config", "Ktup/s", "overhead vs metrics-off"});
  for (size_t i = 0; i < 4; ++i) {
    double bt = static_cast<double>(n) / results[i].seconds / 1000.0;
    double off = static_cast<double>(n) / results[i & ~size_t{1}].seconds /
                 1000.0;
    t.AddRow({cfgs[i].name, Fmt(bt, 0),
              i % 2 == 0 ? std::string("-")
                         : Fmt((off / bt - 1.0) * 100.0, 1) + "%"});
  }
  t.Print(
      "Metrics overhead re-measure (E15): per-batch bulk counting + "
      "whole-batch self-timing vs per-element atomics");
  std::printf(
      "note: E15 measured ~22%% per-element metrics overhead on cheap "
      "chains; the\ncolumnar path counts a whole batch with two relaxed "
      "adds per direction and\ntimes the batch once, so the bound "
      "operators' cost no longer scales per tuple.\n");
}

// ---------------------------------------------------------------------------
// Microbenchmarks: conversion + kernel costs in isolation.

void BM_FromRows(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Element> input = MakeNumericInput(n);
  ElementBatch eb;
  for (const Element& e : input) eb.push_back(e);
  ColumnBatch cb;
  for (auto _ : state) {
    bool ok = ColumnBatch::FromRows(eb, &cb);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FromRows)->Arg(64)->Arg(1024)->ArgNames({"rows"});

void BM_MaterializeRows(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Element> input = MakeNumericInput(n);
  ElementBatch eb;
  for (const Element& e : input) eb.push_back(e);
  ColumnBatch cb;
  if (!ColumnBatch::FromRows(eb, &cb)) std::abort();
  for (auto _ : state) {
    ElementBatch out;
    cb.MaterializeRows(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_MaterializeRows)->Arg(64)->Arg(1024)->ArgNames({"rows"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintGateSweep();
  sqp::PrintWidthSweep();
  sqp::PrintStringSweep();
  sqp::PrintMetricsOverhead();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
