// Threaded pipeline executor vs the serial QueuedExecutor on the same
// select -> join -> aggregate operator chain, partitioned into 1/2/4/8
// stages. The serial executor pays a scheduling-policy decision (with a
// per-element view snapshot) for every delivery; the parallel executor
// runs one worker per stage over bounded queues with batched hand-off,
// so the chain keeps flowing while tuples arrive.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/window_join.h"
#include "exec/window_agg.h"
#include "sched/parallel_executor.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Input schema: [pair_id, side, v]; each pair_id occurs once per side,
// so the self-join emits exactly one joined row per completed pair.
constexpr int kPairId = 0;
constexpr int kSide = 1;
constexpr int kV = 2;

/// Routes elements to the wrapped sliding-window hash join's two ports
/// by the `side` column — the chain executors are unary, so the exchange
/// point is packaged as a single stage. Windowed, so join state stays
/// bounded the way a real stream join's does.
class SelfJoinStage : public Operator {
 public:
  SelfJoinStage()
      : Operator("self-join"),
        join_(JoinOptions()),
        bridge_([this](const Element& e) { Emit(e); }) {
    join_.SetOutput(&bridge_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      Emit(e);
      return;
    }
    int side = static_cast<int>(e.tuple()->at(kSide).AsInt());
    join_.Push(e, side);
  }

  void Flush() override {
    join_.Flush();  // Port-0 flush...
    join_.Flush();  // ...and port-1: the join forwards after both.
    Operator::Flush();
  }

  size_t StateBytes() const override { return join_.StateBytes(); }

 private:
  static BinaryWindowJoinOp::Options JoinOptions() {
    BinaryWindowJoinOp::Options o;
    o.left_cols = {kPairId};
    o.right_cols = {kPairId};
    o.left_window = WindowSpec::TimeSliding(64);
    o.right_window = WindowSpec::TimeSliding(64);
    return o;
  }

  BinaryWindowJoinOp join_;
  CallbackSink bridge_;
};

/// Fuses a pre-wired sub-chain [first..last] into one schedulable stage:
/// used to partition the same logical pipeline into fewer stages.
class FusedStage : public Operator {
 public:
  FusedStage(Operator* first, Operator* last)
      : Operator("fused"),
        first_(first),
        bridge_([this](const Element& e) { Emit(e); }) {
    last->SetOutput(&bridge_);
  }

  void Push(const Element& e, int port = 0) override {
    CountIn(e);
    first_->Push(e, port);
  }

  void Flush() override {
    first_->Flush();  // Propagates through the sub-chain into bridge_.
    Operator::Flush();
  }

 private:
  Operator* first_;
  CallbackSink bridge_;
};

/// Builds the 8-operator logical pipeline and partitions it into
/// `num_stages` contiguous fused groups. Returns the stage entry ops.
std::vector<Operator*> BuildChain(Plan* plan, size_t num_stages) {
  std::vector<Operator*> ops;
  // select (sel ~.9) -> project -> JOIN -> select -> window AGGREGATE ->
  // project -> select -> project: the tentpole's select/join/aggregate
  // chain padded to 8 ops so it can split into up to 8 stages.
  ops.push_back(plan->Make<SelectOp>(Gt(Col(kV), Lit(int64_t{99})), "sel0"));
  ops.push_back(plan->Make<ProjectOp>(
      std::vector<ExprRef>{Col(kPairId), Col(kSide), Col(kV)}, "proj0"));
  ops.push_back(plan->Make<SelfJoinStage>());
  // Joined row: [pair_id, side, v, pair_id, side, v].
  ops.push_back(plan->Make<SelectOp>(Gt(Add(Col(2), Col(5)), Lit(int64_t{250})),
                                     "sel1"));
  ops.push_back(plan->Make<WindowAggregateOp>(
      WindowSpec::TimeSliding(512),
      std::vector<AggSpec>{{AggKind::kCount, -1, 0.5}, {AggKind::kSum, 2, 0.5}},
      "agg"));
  // Aggregate row: [ts, count, sum].
  ops.push_back(plan->Make<ProjectOp>(
      std::vector<ExprRef>{Col(0), Col(1), Col(2)}, "proj1"));
  ops.push_back(plan->Make<SelectOp>(Gt(Col(1), Lit(int64_t{0})), "sel2"));
  ops.push_back(
      plan->Make<ProjectOp>(std::vector<ExprRef>{Col(2)}, "proj2"));

  std::vector<Operator*> stages;
  size_t per = ops.size() / num_stages;
  for (size_t s = 0; s < num_stages; ++s) {
    size_t begin = s * per;
    size_t end = (s + 1 == num_stages) ? ops.size() : begin + per;
    if (end - begin == 1) {
      stages.push_back(ops[begin]);
      continue;
    }
    for (size_t i = begin; i + 1 < end; ++i) {
      Plan::Connect(ops[i], ops[i + 1]);
    }
    stages.push_back(plan->Make<FusedStage>(ops[begin], ops[end - 1]));
  }
  return stages;
}

std::vector<Element> MakeInput(uint64_t n) {
  Rng rng(17);
  std::vector<Element> input;
  input.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    input.push_back(Element(MakeTuple(
        static_cast<int64_t>(i),
        {Value(static_cast<int64_t>(i / 2)),
         Value(static_cast<int64_t>(i % 2)),
         Value(static_cast<int64_t>(rng.Uniform(1000)))})));
  }
  return input;
}

struct RunResult {
  double seconds = 0;
  uint64_t out = 0;
};

RunResult RunSerial(const std::vector<Element>& input, size_t num_stages) {
  Plan plan;
  std::vector<Operator*> chain = BuildChain(&plan, num_stages);
  auto* sink = plan.Make<CountingSink>();
  std::vector<QueuedExecutor::Stage> stages;
  for (Operator* op : chain) stages.push_back({op, 1.0, 1.0, 0});
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  auto t0 = std::chrono::steady_clock::now();
  for (const Element& e : input) {
    exec.Arrive(e);
    exec.Tick(static_cast<double>(num_stages));
  }
  exec.Tick(1e15);
  exec.Drain();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

RunResult RunParallel(const std::vector<Element>& input, size_t num_stages) {
  Plan plan;
  std::vector<Operator*> chain = BuildChain(&plan, num_stages);
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : chain) {
    ParallelExecutor::Stage s;
    s.op = op;
    // Moderate bound + hand-off batch: big enough to amortize the queue
    // lock and wakeups, small enough that in-flight tuples stay
    // cache-resident across the stage hand-off (a 2048-element batch of
    // heap tuples is far past L1/L2 and made every hop memory-cold).
    s.queue_limit = 512;
    s.backpressure = Backpressure::kBlock;
    s.wake_batch = 128;
    stages.push_back(s);
  }
  ParallelExecutor exec(stages, sink);
  exec.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (const Element& e : input) exec.Arrive(e);
  exec.Drain();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

void PrintStageScaling() {
  const uint64_t n = bench::Iters(400000, 4000);
  std::vector<Element> input = MakeInput(n);
  Table t({"stages", "serial Ktup/s", "parallel Ktup/s", "speedup",
           "serial out", "parallel out"});
  // Best-of-3 per configuration: the executors are deterministic, so the
  // fastest rep is the least-perturbed one (shared hosts jitter a lot).
  const int kReps = bench::SmokeMode() ? 1 : 3;
  for (size_t stages : {1, 2, 4, 8}) {
    RunResult serial, par;
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult s = RunSerial(input, stages);
      RunResult p = RunParallel(input, stages);
      if (rep == 0 || s.seconds < serial.seconds) serial = s;
      if (rep == 0 || p.seconds < par.seconds) par = p;
    }
    double st = static_cast<double>(n) / serial.seconds / 1000.0;
    double pt = static_cast<double>(n) / par.seconds / 1000.0;
    t.AddRow({FmtInt(stages), Fmt(st, 0), Fmt(pt, 0), Fmt(pt / st, 2),
              FmtInt(serial.out), FmtInt(par.out)});
  }
  t.Print(
      "Threaded pipeline vs QueuedExecutor(FIFO), select->join->aggregate "
      "chain");
  std::printf(
      "note: identical 8-op pipeline partitioned into k fused stages; both\n"
      "executors see the same partitioning. Output counts must match.\n");
}

void PrintBackpressureProfile() {
  // Per-stage observability under a tight bound: enqueued/processed/
  // max-depth/busy per stage, the counters the engine exports.
  const uint64_t n = bench::Iters(100000, 2000);
  std::vector<Element> input = MakeInput(n);
  Plan plan;
  std::vector<Operator*> chain = BuildChain(&plan, 4);
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : chain) {
    stages.push_back({op, 256, Backpressure::kBlock, 0});
  }
  ParallelExecutor exec(stages, sink);
  exec.Start();
  for (const Element& e : input) exec.Arrive(e);
  exec.Drain();
  Table t({"stage", "enqueued", "processed", "dropped", "max depth",
           "busy ms"});
  for (size_t i = 0; i < exec.num_stages(); ++i) {
    auto s = exec.stage_stats(i);
    t.AddRow({FmtInt(i), FmtInt(s.enqueued), FmtInt(s.processed),
              FmtInt(s.dropped), FmtInt(s.max_queue_depth),
              Fmt(s.busy_time * 1e3, 1)});
  }
  t.Print("Per-stage counters, 4 stages, queue bound 256 (blocking)");
}

void BM_ParallelChain(benchmark::State& state) {
  const uint64_t n = 20000;
  std::vector<Element> input = MakeInput(n);
  for (auto _ : state) {
    RunResult r = RunParallel(input, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
// Real time, not CPU time: the work happens on worker threads, so the
// main thread's CPU clock measures almost nothing.
BENCHMARK(BM_ParallelChain)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->ArgNames({"stages"})->UseRealTime();

void BM_SerialChain(benchmark::State& state) {
  const uint64_t n = 20000;
  std::vector<Element> input = MakeInput(n);
  for (auto _ : state) {
    RunResult r = RunSerial(input, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SerialChain)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->ArgNames({"stages"})->UseRealTime();

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintStageScaling();
  sqp::PrintBackpressureProfile();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
