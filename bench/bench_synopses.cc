// Experiment E7 (slides 38/53, "Aggregation & Approximation"): accuracy
// vs space for the synopsis toolbox — GK quantiles (the one Gigascope
// ships, slide 53), Count-Min heavy hitters, HLL/FM distinct counts,
// reservoir sampling, AMS join-size estimation, and the exponential
// histogram for sliding-window counts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bench_util.h"
#include "common/rng.h"
#include "synopsis/ams.h"
#include "synopsis/count_min.h"
#include "synopsis/distinct.h"
#include "synopsis/exp_histogram.h"
#include "synopsis/gk_quantile.h"
#include "synopsis/misra_gries.h"
#include "synopsis/reservoir.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

constexpr int kN = 200000;

std::vector<double> LatencyStream() {
  Rng rng(41);
  std::vector<double> v;
  v.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // Log-normal-ish RTTs: most small, heavy tail.
    v.push_back(std::exp(rng.Gaussian() * 1.2 + 3.0));
  }
  return v;
}

void PrintQuantiles() {
  auto data = LatencyStream();
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  auto true_q = [&](double q) {
    return sorted[static_cast<size_t>(q * (sorted.size() - 1))];
  };

  Table t({"synopsis", "space (KiB)", "p50 rel err", "p95 rel err",
           "p99 rel err"});
  for (double eps : {0.05, 0.01, 0.001}) {
    GkQuantile gk(eps);
    for (double v : data) gk.Add(v);
    auto err = [&](double q) {
      return std::fabs(gk.Query(q) - true_q(q)) / true_q(q);
    };
    t.AddRow({"GK eps=" + Fmt(eps, 3), FmtInt(gk.MemoryBytes() / 1024),
              Fmt(err(0.5), 4), Fmt(err(0.95), 4), Fmt(err(0.99), 4)});
  }
  for (size_t cap : {256u, 4096u}) {
    ReservoirSample rs(cap, 42);
    for (double v : data) rs.Add(Value(v));
    auto err = [&](double q) {
      return std::fabs(rs.EstimateQuantile(q) - true_q(q)) / true_q(q);
    };
    t.AddRow({"reservoir n=" + FmtInt(cap), FmtInt(rs.MemoryBytes() / 1024),
              Fmt(err(0.5), 4), Fmt(err(0.95), 4), Fmt(err(0.99), 4)});
  }
  t.Print("E7: quantiles over 200k heavy-tailed latencies (slide 53)");
}

void PrintFrequencyAndDistinct() {
  Rng rng(43);
  ZipfGenerator zipf(100000, 1.05);
  std::unordered_map<int64_t, uint64_t> truth;
  CountMinSketch cm01 = CountMinSketch::FromError(0.01, 0.01, 1);
  CountMinSketch cm001 = CountMinSketch::FromError(0.001, 0.01, 2);
  MisraGries mg(1000);
  HyperLogLog hll(12);
  FlajoletMartin fm(64, 3);
  for (int i = 0; i < kN; ++i) {
    int64_t v = static_cast<int64_t>(zipf.Next(rng));
    truth[v]++;
    Value val(v);
    cm01.Add(val);
    cm001.Add(val);
    mg.Add(val);
    hll.Add(val);
    fm.Add(val);
  }
  // Mean relative error over the top-50 items.
  std::vector<std::pair<uint64_t, int64_t>> top;
  for (auto& [v, c] : truth) top.emplace_back(c, v);
  std::sort(top.rbegin(), top.rend());
  auto mean_err = [&](auto estimate) {
    double sum = 0;
    for (int i = 0; i < 50; ++i) {
      double est = static_cast<double>(estimate(top[static_cast<size_t>(i)].second));
      sum += std::fabs(est - double(top[static_cast<size_t>(i)].first)) /
             double(top[static_cast<size_t>(i)].first);
    }
    return sum / 50.0;
  };

  Table t({"synopsis", "space (KiB)", "metric", "value"});
  t.AddRow({"CM eps=.01", FmtInt(cm01.MemoryBytes() / 1024),
            "top-50 mean rel err",
            Fmt(mean_err([&](int64_t v) { return cm01.Estimate(Value(v)); }), 4)});
  t.AddRow({"CM eps=.001", FmtInt(cm001.MemoryBytes() / 1024),
            "top-50 mean rel err",
            Fmt(mean_err([&](int64_t v) { return cm001.Estimate(Value(v)); }), 4)});
  t.AddRow({"MisraGries k=1000", FmtInt(mg.MemoryBytes() / 1024),
            "top-50 mean rel err",
            Fmt(mean_err([&](int64_t v) { return mg.Estimate(Value(v)); }), 4)});
  double true_distinct = static_cast<double>(truth.size());
  t.AddRow({"HLL p=12", FmtInt(hll.MemoryBytes() / 1024), "distinct rel err",
            Fmt(std::fabs(hll.Estimate() - true_distinct) / true_distinct, 4)});
  t.AddRow({"FM 64 maps", FmtInt(fm.MemoryBytes() / 1024), "distinct rel err",
            Fmt(std::fabs(fm.Estimate() - true_distinct) / true_distinct, 4)});
  std::printf("\n(true distinct count: %.0f over %d tuples)\n", true_distinct,
              kN);
  t.Print("E7: frequency & distinct synopses (Zipf 1.05, 100k domain)");
}

void PrintJoinSizeAndWindow() {
  Rng rng(44);
  ZipfGenerator zipf(2000, 0.8);
  AmsSketch a(9, 64, 5), b(9, 64, 5);
  std::unordered_map<int64_t, int64_t> fa, fb;
  for (int i = 0; i < 50000; ++i) {
    int64_t x = static_cast<int64_t>(zipf.Next(rng));
    int64_t y = static_cast<int64_t>(zipf.Next(rng));
    a.Add(Value(x));
    fa[x]++;
    b.Add(Value(y));
    fb[y]++;
  }
  double truth = 0;
  for (auto& [v, c] : fa) {
    truth += static_cast<double>(c) * static_cast<double>(fb[v]);
  }
  double est = AmsSketch::EstimateJoinSize(a, b);

  Table t({"synopsis", "space (KiB)", "metric", "true", "estimate",
           "rel err"});
  t.AddRow({"AMS 9x64", FmtInt(a.MemoryBytes() / 1024), "join size",
            Fmt(truth, 0), Fmt(est, 0),
            Fmt(std::fabs(est - truth) / truth, 4)});

  // Exponential histogram: sliding count of 1s.
  ExpHistogram eh(10000, 0.05);
  Rng rng2(45);
  std::vector<int64_t> events;
  int64_t now = 0;
  for (int i = 0; i < kN; ++i) {
    now += static_cast<int64_t>(rng2.Uniform(3));
    eh.Add(now);
    events.push_back(now);
  }
  uint64_t true_count = 0;
  for (int64_t e : events) {
    if (e > now - 10000) ++true_count;
  }
  t.AddRow({"ExpHist eps=.05", FmtInt(eh.MemoryBytes() / 1024),
            "window count", FmtInt(true_count), FmtInt(eh.Estimate(now)),
            Fmt(std::fabs(double(eh.Estimate(now)) - double(true_count)) /
                    double(true_count),
                4)});
  t.Print("E7: join-size sketching and sliding-window counting");
}

void BM_SynopsisInsert(benchmark::State& state) {
  int which = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<Value> vals;
  for (int i = 0; i < 10000; ++i) {
    vals.push_back(Value(static_cast<int64_t>(rng.Uniform(100000))));
  }
  for (auto _ : state) {
    switch (which) {
      case 0: {
        CountMinSketch cm(2048, 4, 1);
        for (const Value& v : vals) cm.Add(v);
        benchmark::DoNotOptimize(cm.total());
        break;
      }
      case 1: {
        HyperLogLog hll(12);
        for (const Value& v : vals) hll.Add(v);
        benchmark::DoNotOptimize(hll.Estimate());
        break;
      }
      case 2: {
        GkQuantile gk(0.01);
        for (const Value& v : vals) gk.Add(v.ToDouble());
        benchmark::DoNotOptimize(gk.n());
        break;
      }
      case 3: {
        ReservoirSample rs(1024, 2);
        for (const Value& v : vals) rs.Add(v);
        benchmark::DoNotOptimize(rs.seen());
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(vals.size()));
}
BENCHMARK(BM_SynopsisInsert)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgNames({"cm_hll_gk_rsv"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintQuantiles();
  sqp::PrintFrequencyAndDistinct();
  sqp::PrintJoinSizeAndWindow();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
