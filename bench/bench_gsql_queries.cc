// Experiment E10 (slide 13, GSQL examples): the tutorial's two flagship
// queries run end-to-end through the CQL front-end over the synthetic
// packet tap: (a) per-minute per-source traffic with HAVING, (b) the
// SYN/SYN-ACK RTT join. Reports result volumes and front-end overhead.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cql/planner.h"
#include "exec/plan.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

cql::Catalog MakeCatalog() {
  cql::Catalog cat;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)cat.Register("packets", gen::PacketSchema(), domains);
  (void)cat.Register("syn", gen::PacketSchema(), domains);
  (void)cat.Register("synack", gen::PacketSchema(), domains);
  return cat;
}

void RunTrafficQuery() {
  cql::Catalog cat = MakeCatalog();
  const char* kQuery =
      "select tb, src_ip, sum(len) from packets "
      "where protocol = 6 "
      "group by ts/60 as tb, src_ip "
      "having count(*) > 5";
  auto cq = cql::Compile(kQuery, cat);
  if (!cq.ok()) {
    std::printf("compile failed: %s\n", cq.status().ToString().c_str());
    return;
  }
  CollectorSink sink;
  (*cq)->AttachSink(&sink);

  gen::PacketGenerator packets(gen::PacketOptions{});
  const int kN = 300000;
  uint64_t tcp = 0;
  for (int i = 0; i < kN; ++i) {
    TupleRef p = packets.Next();
    tcp += p->at(gen::PacketCols::kProtocol).AsInt() == gen::kProtoTcp;
    (*cq)->Push(Element(p));
  }
  (*cq)->Finish();

  Table t({"metric", "value"});
  t.AddRow({"query", kQuery});
  t.AddRow({"plan", (*cq)->plan_desc()});
  t.AddRow({"memory verdict", (*cq)->memory().explanation});
  t.AddRow({"packets in", FmtInt(kN)});
  t.AddRow({"tcp packets", FmtInt(tcp)});
  t.AddRow({"(tb, src) rows out", FmtInt(sink.count())});
  t.Print("E10a / slide 13: per-minute per-source traffic with HAVING");
}

void RunRttQuery() {
  cql::Catalog cat = MakeCatalog();
  const char* kQuery =
      "select s.ts, a.ts - s.ts as rtt "
      "from syn s [range 300], synack a [range 300] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "and s.src_port = a.dst_port and s.dst_port = a.src_port "
      "and s.is_syn = 1 and s.is_ack = 0 and a.is_syn = 1 and a.is_ack = 1";
  auto cq = cql::Compile(kQuery, cat);
  if (!cq.ok()) {
    std::printf("compile failed: %s\n", cq.status().ToString().c_str());
    return;
  }
  CollectorSink sink;
  (*cq)->AttachSink(&sink);

  gen::PacketOptions opt;
  opt.syn_prob = 0.1;
  opt.p2p_fraction = 0.0;
  gen::PacketGenerator packets(opt);
  const int kN = 300000;
  uint64_t syns = 0, acks = 0;
  for (int i = 0; i < kN; ++i) {
    TupleRef p = packets.Next();
    bool is_syn = p->at(gen::PacketCols::kIsSyn).AsInt() == 1;
    bool is_ack = p->at(gen::PacketCols::kIsAck).AsInt() == 1;
    if (is_syn && !is_ack) {
      ++syns;
      (*cq)->Push(Element(p), 0);
    } else if (is_syn && is_ack) {
      ++acks;
      (*cq)->Push(Element(p), 1);
    }
  }
  (*cq)->Finish();

  double mean_rtt = 0;
  for (const TupleRef& r : sink.tuples()) mean_rtt += r->at(1).ToDouble();
  if (!sink.tuples().empty()) {
    mean_rtt /= static_cast<double>(sink.count());
  }
  Table t({"metric", "value"});
  t.AddRow({"plan", (*cq)->plan_desc()});
  t.AddRow({"memory verdict", (*cq)->memory().explanation});
  t.AddRow({"SYNs", FmtInt(syns)});
  t.AddRow({"SYN-ACKs", FmtInt(acks)});
  t.AddRow({"matched (rtt rows)", FmtInt(sink.count())});
  t.AddRow({"mean rtt (ticks)", Fmt(mean_rtt, 1)});
  t.Print("E10b / slide 13: SYN/SYN-ACK round-trip-time join");
}

void BM_CompiledQueryThroughput(benchmark::State& state) {
  cql::Catalog cat = MakeCatalog();
  gen::PacketGenerator packets(gen::PacketOptions{});
  std::vector<TupleRef> tuples;
  for (int i = 0; i < 50000; ++i) tuples.push_back(packets.Next());
  for (auto _ : state) {
    auto cq = cql::Compile(
        "select tb, src_ip, sum(len) from packets where protocol = 6 "
        "group by ts/60 as tb, src_ip",
        cat);
    CountingSink sink;
    (*cq)->AttachSink(&sink);
    for (const TupleRef& t : tuples) (*cq)->Push(Element(t));
    (*cq)->Finish();
    benchmark::DoNotOptimize(sink.tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_CompiledQueryThroughput);

void BM_CompileOnly(benchmark::State& state) {
  cql::Catalog cat = MakeCatalog();
  for (auto _ : state) {
    auto cq = cql::Compile(
        "select tb, src_ip, sum(len) from packets where protocol = 6 "
        "group by ts/60 as tb, src_ip having count(*) > 5",
        cat);
    benchmark::DoNotOptimize(cq.ok());
  }
}
BENCHMARK(BM_CompileOnly);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::RunTrafficQuery();
  sqp::RunRttQuery();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
