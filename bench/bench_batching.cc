// E16: batched execution path vs per-element pushes, and the
// zero-allocation KeyView probe vs the allocating ExtractKey probe.
//
// Two sweeps, one per executor, both over a select -> project ->
// window-self-join chain with delivery batch sizes 1/8/64/256:
//
//  - Serial QueuedExecutor (FIFO policy): per-element delivery pays a
//    scheduling decision (policy Pick over fresh per-stage views) per
//    element per stage; batched delivery amortizes it across the batch
//    — the tutorial's Aurora "train" processing argument.
//  - ParallelExecutor op-per-stage: max_batch = wake_batch = B bounds
//    both the queue claim and the delivery unit, so B=1 is the classic
//    element-at-a-time executor (a lock round-trip, a producer wakeup
//    and a virtual Push per element) and larger B amortizes queue
//    locks, wakeups and dispatch.
//
// Output counts must match across every configuration of a sweep — the
// harness aborts otherwise. Microbenchmarks cover the directly-wired
// (no executor) chain, where per-element ref-passing is already optimal
// and batching buys nothing — the executors are the batch boundary.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/window_join.h"
#include "sched/parallel_executor.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "stream/element_batch.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Input schema: [pair_id, side, v]; each pair_id occurs once per side,
// so the self-join emits exactly one joined row per completed pair.
constexpr int kPairId = 0;
constexpr int kSide = 1;
constexpr int kV = 2;

/// Routes elements to the wrapped sliding-window hash join's two ports
/// by the `side` column (the chain drivers are unary).
class SelfJoinStage : public Operator {
 public:
  SelfJoinStage()
      : Operator("self-join"),
        join_(JoinOptions()),
        bridge_([this](const Element& e) { Emit(e); }) {
    join_.SetOutput(&bridge_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      Emit(e);
      return;
    }
    int side = static_cast<int>(e.tuple()->at(kSide).AsInt());
    join_.Push(e, side);
  }

  void Flush() override {
    join_.Flush();  // Port-0 flush...
    join_.Flush();  // ...and port-1: the join forwards after both.
    Operator::Flush();
  }

 private:
  static BinaryWindowJoinOp::Options JoinOptions() {
    BinaryWindowJoinOp::Options o;
    o.left_cols = {kPairId};
    o.right_cols = {kPairId};
    o.left_window = WindowSpec::TimeSliding(64);
    o.right_window = WindowSpec::TimeSliding(64);
    return o;
  }

  BinaryWindowJoinOp join_;
  CallbackSink bridge_;
};

/// select (~.9) -> project -> window self-join: the hot per-element
/// operators the batched path targets, ending in an expanding join.
std::vector<Operator*> BuildChain(Plan* plan) {
  std::vector<Operator*> ops;
  ops.push_back(plan->Make<SelectOp>(Gt(Col(kV), Lit(int64_t{99})), "sel"));
  ops.push_back(plan->Make<ProjectOp>(
      std::vector<ExprRef>{Col(kPairId), Col(kSide), Col(kV)}, "proj"));
  ops.push_back(plan->Make<SelfJoinStage>());
  return ops;
}

/// Four cheap stages — select -> select -> project -> project. Each
/// stage does tens of ns of real work, so per-element executor crossing
/// costs (a scheduling decision per delivery, a lock + wakeup per
/// hand-off) dominate: the fine-grained regime batched delivery
/// targets, and the regime E14 shows getting worse with stage count.
std::vector<Operator*> BuildCheapChain(Plan* plan) {
  std::vector<Operator*> ops;
  ops.push_back(plan->Make<SelectOp>(Gt(Col(kV), Lit(int64_t{99})), "sel"));
  ops.push_back(
      plan->Make<SelectOp>(Lt(Col(kV), Lit(int64_t{990})), "sel2"));
  ops.push_back(plan->Make<ProjectOp>(
      std::vector<ExprRef>{Col(kPairId), Col(kSide), Col(kV)}, "proj"));
  ops.push_back(plan->Make<ProjectOp>(
      std::vector<ExprRef>{Col(kPairId), Col(kV)}, "proj2"));
  return ops;
}

std::vector<Element> MakeInput(uint64_t n) {
  Rng rng(17);
  std::vector<Element> input;
  input.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    input.push_back(Element(MakeTuple(
        static_cast<int64_t>(i),
        {Value(static_cast<int64_t>(i / 2)),
         Value(static_cast<int64_t>(i % 2)),
         Value(static_cast<int64_t>(rng.Uniform(1000)))})));
  }
  return input;
}

struct RunResult {
  double seconds = 0;
  uint64_t out = 0;
};

/// Serial scheduled execution: elements arrive in chunks, and the FIFO
/// policy drives each chunk through the chain. Per-element delivery
/// (batch == 1) makes one scheduling decision — a Pick over freshly
/// built per-stage views — per element per stage; batched delivery
/// amortizes that decision over up to `batch` elements.
RunResult RunQueued(const std::vector<Element>& input, size_t batch) {
  Plan plan;
  std::vector<Operator*> chain = BuildCheapChain(&plan);
  auto* sink = plan.Make<CountingSink>();
  std::vector<QueuedExecutor::Stage> stages;
  for (Operator* op : chain) {
    QueuedExecutor::Stage s;
    s.op = op;
    s.cost = 1.0;
    s.max_batch = batch;
    stages.push_back(s);
  }
  QueuedExecutor exec(stages, sink, MakeFifoPolicy());
  const size_t kChunk = 256;
  // Budget per chunk covers every stage consuming every element (the
  // join expands, but Tick stops early once all queues are empty, so a
  // generous budget costs nothing).
  const double budget =
      static_cast<double>(kChunk) * static_cast<double>(stages.size()) * 2.0;
  auto t0 = std::chrono::steady_clock::now();
  size_t i = 0;
  while (i < input.size()) {
    const size_t end =
        i + kChunk < input.size() ? i + kChunk : input.size();
    for (; i < end; ++i) exec.Arrive(input[i]);
    exec.Tick(budget);
  }
  exec.Drain();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

/// Parallel, op-per-stage: max_batch = wake_batch = `batch`, so batch=1
/// is the classic element-at-a-time hand-off at every queue.
RunResult RunParallel(const std::vector<Element>& input, size_t batch) {
  Plan plan;
  std::vector<Operator*> chain = BuildCheapChain(&plan);
  auto* sink = plan.Make<CountingSink>();
  std::vector<ParallelExecutor::Stage> stages;
  for (Operator* op : chain) {
    ParallelExecutor::Stage s;
    s.op = op;
    s.queue_limit = 512;
    s.backpressure = Backpressure::kBlock;
    s.wake_batch = batch;
    s.max_batch = batch;
    stages.push_back(s);
  }
  ParallelExecutor exec(stages, sink);
  exec.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (const Element& e : input) exec.Arrive(e);
  exec.Drain();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

/// Directly-wired chain (no executor), driven per element or in
/// ElementBatch runs — the microbenchmark subject. Takes the input by
/// value: the batched drive moves elements into batches the way an
/// executor hands off ownership.
RunResult RunSerialDirect(std::vector<Element> input, size_t batch) {
  Plan plan;
  std::vector<Operator*> chain = BuildChain(&plan);
  auto* sink = plan.Make<CountingSink>();
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    Plan::Connect(chain[i], chain[i + 1]);
  }
  chain.back()->SetOutput(sink);
  Operator* entry = chain.front();
  auto t0 = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (const Element& e : input) entry->Process(e, 0);
  } else {
    ElementBatch eb;
    eb.reserve(batch);
    size_t i = 0;
    while (i < input.size()) {
      eb.clear();
      for (size_t j = 0; j < batch && i < input.size(); ++j, ++i) {
        eb.push_back(std::move(input[i]));
      }
      entry->ProcessBatch(eb, 0);
    }
  }
  entry->Flush();
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sink->tuples()};
}

void CheckOut(uint64_t got, uint64_t want, const char* what) {
  if (got != want || got == 0) {
    std::fprintf(stderr,
                 "FATAL: %s produced %llu output tuples, expected %llu "
                 "(nonzero) — batched path diverged\n",
                 what, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    std::abort();
  }
}

const size_t kBatchSizes[] = {1, 8, 64, 256};

void PrintQueuedSweep() {
  const uint64_t n = bench::Iters(400000, 4000);
  std::vector<Element> input = MakeInput(n);
  const int kReps = bench::SmokeMode() ? 1 : 5;

  // Interleave reps across configs (best-of-N per config) so drifting
  // background load biases no single batch size.
  RunResult results[4];
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t i = 0; i < 4; ++i) {
      RunResult r = RunQueued(input, kBatchSizes[i]);
      if (rep == 0 || r.seconds < results[i].seconds) results[i] = r;
    }
  }
  for (size_t i = 1; i < 4; ++i) {
    CheckOut(results[i].out, results[0].out, "queued batched run");
  }
  double base_t = static_cast<double>(n) / results[0].seconds / 1000.0;
  Table t({"batch", "Ktup/s", "speedup vs batch=1", "out"});
  for (size_t i = 0; i < 4; ++i) {
    double bt = static_cast<double>(n) / results[i].seconds / 1000.0;
    t.AddRow({FmtInt(kBatchSizes[i]), Fmt(bt, 0), Fmt(bt / base_t, 2),
              FmtInt(results[i].out)});
  }
  t.Print(
      "Serial QueuedExecutor (FIFO policy), 4-stage "
      "select->select->project->project: delivery batch size sweep");
  std::printf(
      "note: batch=1 makes one scheduling decision (policy Pick over "
      "fresh stage\nviews) per element per stage; batching amortizes it "
      "— Aurora's train argument.\n");
}

void PrintParallelSweep() {
  const uint64_t n = bench::Iters(200000, 4000);
  std::vector<Element> input = MakeInput(n);
  const int kReps = bench::SmokeMode() ? 1 : 3;

  RunResult results[4];
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t i = 0; i < 4; ++i) {
      RunResult r = RunParallel(input, kBatchSizes[i]);
      if (rep == 0 || r.seconds < results[i].seconds) results[i] = r;
    }
  }
  for (size_t i = 1; i < 4; ++i) {
    CheckOut(results[i].out, results[0].out, "parallel batched run");
  }
  double base_t = static_cast<double>(n) / results[0].seconds / 1000.0;
  Table t({"batch", "Ktup/s", "speedup vs batch=1", "out"});
  for (size_t i = 0; i < 4; ++i) {
    double bt = static_cast<double>(n) / results[i].seconds / 1000.0;
    t.AddRow({FmtInt(kBatchSizes[i]), Fmt(bt, 0), Fmt(bt / base_t, 2),
              FmtInt(results[i].out)});
  }
  t.Print(
      "Parallel op-per-stage 4-stage select->select->project->project "
      "pipeline: hand-off batch size sweep (max_batch = wake_batch = B)");
  std::printf(
      "note: B=1 claims one element per lock acquisition and wakes the "
      "consumer per\nelement; larger B amortizes queue locks, wakeups "
      "and dispatch across the batch.\n");
}

// ---------------------------------------------------------------------------
// Microbenchmarks.

// Directly-wired chain: per-element ref-passing vs batch-driving. A
// synchronous push chain passes references with zero per-element copies,
// so batch-driving it mostly measures the buffer shuttling cost — the
// reason batching lives at executor boundaries, not inside wired chains.
void BM_DirectPerElement(benchmark::State& state) {
  const uint64_t n = 20000;
  std::vector<Element> input = MakeInput(n);
  for (auto _ : state) {
    RunResult r = RunSerialDirect(input, 0);
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DirectPerElement)->UseRealTime();

void BM_DirectBatched(benchmark::State& state) {
  const uint64_t n = 20000;
  std::vector<Element> input = MakeInput(n);
  for (auto _ : state) {
    RunResult r =
        RunSerialDirect(input, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(r.out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DirectBatched)
    ->Arg(8)->Arg(64)->Arg(256)->ArgNames({"batch"})->UseRealTime();

// KeyView probe vs materializing ExtractKey probe on a warm KeyMap —
// the per-probe allocation the tentpole removes.
void BM_ProbeExtractKey(benchmark::State& state) {
  std::vector<int> cols = {0, 2};
  KeyMap<int> map;
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 1024; ++i) {
    tuples.push_back(MakeTuple(i, {Value(i), Value(i % 2), Value(i * 3)}));
    map.emplace(ExtractKey(*tuples.back(), cols), static_cast<int>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    Key key = ExtractKey(*tuples[i & 1023], cols);
    benchmark::DoNotOptimize(map.find(key) != map.end());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeExtractKey);

void BM_ProbeKeyView(benchmark::State& state) {
  std::vector<int> cols = {0, 2};
  KeyMap<int> map;
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 1024; ++i) {
    tuples.push_back(MakeTuple(i, {Value(i), Value(i % 2), Value(i * 3)}));
    map.emplace(ExtractKey(*tuples.back(), cols), static_cast<int>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.find(KeyView(*tuples[i & 1023], cols)) != map.end());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeKeyView);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintQueuedSweep();
  sqp::PrintParallelSweep();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
