// Experiment E1 (slide 41, "Rate-Based Optimization"): two orderings of
// the same pair of filters over a 500 tuples/sec stream. The slow,
// selective operator (service 50 t/s, sel 0.1) placed first throttles the
// stream to an output rate of 0.5 t/s; placing the very fast filter
// first yields 5 t/s — a 10x difference invisible to a work-based cost
// model. The analytic model reproduces the slide numbers exactly; the
// google-benchmark section then validates the effect on the real
// executor by measuring throughput of the two physical plans.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/plan.h"
#include "exec/select.h"
#include "opt/rate_optimizer.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::Table;

void PrintSlide41() {
  RatedStage slow{"slow(sel=.1,svc=50/s)", 0.1, 50.0};
  RatedStage fast{"fast(sel=.1,svc=inf)", 0.1, 1e18};
  const double input = 500.0;

  Table t({"plan", "output rate (t/s)", "work (s/s)"});
  t.AddRow({"slow -> fast (paper: 0.5 t/s)",
            Fmt(PipelineOutputRate(input, {slow, fast}), 2),
            Fmt(PipelineWork(input, {slow, fast}), 3)});
  t.AddRow({"fast -> slow (paper: 5 t/s)",
            Fmt(PipelineOutputRate(input, {fast, slow}), 2),
            Fmt(PipelineWork(input, {fast, slow}), 3)});
  t.Print("E1 / slide 41: rate-based plan selection (s1=500 t/s)");

  auto best = MaximizeOutputRate(input, {slow, fast});
  std::printf("rate-based optimizer picks: %s first (rate %.2f t/s)\n",
              best.order[0] == 1 ? "fast" : "slow", best.output_rate);

  // Randomized extension: 6 filters, exhaustive rate-based search vs the
  // classic rank (least-work) order.
  Rng rng(17);
  Table t2({"trial", "rate-optimal (t/s)", "rank-order (t/s)", "ratio"});
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<RatedStage> stages;
    for (int i = 0; i < 6; ++i) {
      stages.push_back({"f" + std::to_string(i),
                        0.05 + rng.NextDouble() * 0.9,
                        20.0 + rng.NextDouble() * 2000.0});
    }
    auto rate_plan = MaximizeOutputRate(1000.0, stages);
    auto work_plan = MinimizeWork(1000.0, stages);
    t2.AddRow({std::to_string(trial), Fmt(rate_plan.output_rate, 3),
               Fmt(work_plan.output_rate, 3),
               Fmt(rate_plan.output_rate /
                       std::max(1e-9, work_plan.output_rate),
                   2)});
  }
  t2.Print("E1 extension: 6-filter pipelines, rate-based vs rank ordering");
}

// Physical validation: run both filter orders over real tuples; the
// cheap-first order does less evaluation work per input tuple when the
// expensive predicate is selective.
void BM_FilterOrder(benchmark::State& state) {
  bool expensive_first = state.range(0) != 0;
  // Expensive predicate: substring search in a payload; cheap: int cmp.
  ExprRef cheap = Eq(Col(1), Lit(int64_t{1}));
  ExprRef expensive = ContainsFn(Col(2), Lit("needle"));

  Rng rng(1);
  std::vector<TupleRef> tuples;
  for (int i = 0; i < 4096; ++i) {
    std::string payload(200, 'x');
    if (rng.Bernoulli(0.5)) payload.replace(100, 6, "needle");
    tuples.push_back(MakeTuple(
        i, {Value(int64_t{i}), Value(static_cast<int64_t>(rng.Uniform(10))),
            Value(std::move(payload))}));
  }
  for (auto _ : state) {
    Plan plan;
    auto* first = plan.Make<SelectOp>(expensive_first ? expensive : cheap);
    auto* second = plan.Make<SelectOp>(expensive_first ? cheap : expensive);
    auto* sink = plan.Make<CountingSink>();
    first->SetOutput(second);
    second->SetOutput(sink);
    for (const TupleRef& t : tuples) first->Push(Element(t));
    benchmark::DoNotOptimize(sink->tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_FilterOrder)->Arg(0)->Arg(1)->ArgNames({"expensive_first"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintSlide41();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
