// E22 — query profiler overhead. The sqp::obs::OpProfile slots behind
// EXPLAIN ANALYZE promise the same deal OpMetrics made in E15: an
// unbound operator pays one pointer load + branch per delivery, and a
// bound one pays a couple of relaxed RMWs (plus a clock read only on
// the rare watermark path). This binary measures the four-stage
// select->select->project->project chain (the E16 shape — the cheapest
// real operators, i.e. the worst case for relative overhead) across
// the ladder of configurations, then prices the scrape side: profile
// snapshot + render, and the event log.
//
// Acceptance gates (CI, full run): 'disabled' (nothing bound) < 3%
// over the raw Push baseline; 'metrics + profiler' < 10% over
// 'disabled'.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exec/expr.h"
#include "exec/plan.h"
#include "exec/profiler.h"
#include "exec/project.h"
#include "exec/select.h"
#include "obs/event_log.h"
#include "obs/op_profile.h"
#include "obs/registry.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

/// Packet stream with a watermark every `punct_every` tuples, so the
/// profiler's watermark-forwarding path (clock read + 3 relaxed stores)
/// is exercised at a realistic punctuation rate.
std::vector<Element> MakeInput(uint64_t n, uint64_t punct_every) {
  std::vector<Element> input;
  input.reserve(n + n / punct_every + 1);
  gen::PacketGenerator packets(gen::PacketOptions{});
  int64_t last_ts = 0;
  for (uint64_t i = 0; i < n; ++i) {
    TupleRef t = packets.Next();
    last_ts = t->ts();
    input.push_back(Element(std::move(t)));
    if ((i + 1) % punct_every == 0) {
      input.push_back(Element(Punctuation::Watermark(last_ts)));
    }
  }
  return input;
}

enum class Mode {
  kDirectPush,      // Pre-instrumentation entry point.
  kDisabled,        // Process(), nothing bound (the shipped default).
  kMetrics,         // OpMetrics bound (the \metrics path).
  kMetricsProfile,  // OpMetrics + OpProfile bound (EXPLAIN ANALYZE).
};

struct ChainRun {
  double seconds = 0.0;
  uint64_t out = 0;
};

/// Builds the 4-stage select->select->project->project chain and
/// streams `input` through under `mode`. The profiler configuration
/// registers the plan with a QueryProfiler and taps every watermark at
/// the source, exactly as StreamEngine::Submit + DeliverDirect do.
ChainRun RunChain(const std::vector<Element>& input, Mode mode) {
  Plan plan;
  auto* sel1 = plan.Make<SelectOp>(
      Gt(Col(gen::PacketCols::kLen), Lit(int64_t{200})));
  auto* sel2 = plan.Make<SelectOp>(
      Gt(Lit(int64_t{1400}), Col(gen::PacketCols::kLen)));
  auto* proj1 = plan.Make<ProjectOp>(std::vector<ExprRef>{
      Col(gen::PacketCols::kTs),
      Mul(Col(gen::PacketCols::kLen), Lit(int64_t{2}))});
  auto* proj2 = plan.Make<ProjectOp>(std::vector<ExprRef>{Col(0), Col(1)});
  auto* sink = plan.Make<CountingSink>();
  sel1->SetOutput(sel2);
  sel2->SetOutput(proj1);
  proj1->SetOutput(proj2);
  proj2->SetOutput(sink);

  obs::MetricsRegistry reg;
  obs::QueryProfiler profiler;
  obs::QueryProfiler::SourceWatermark* src = nullptr;
  if (mode == Mode::kMetrics || mode == Mode::kMetricsProfile) {
    plan.BindMetrics(reg, "e22");
  }
  if (mode == Mode::kMetricsProfile) {
    src = profiler.Register("e22", "select ... x4 chain");
    profiler.BindPlan("e22", plan);
  }

  auto t0 = std::chrono::steady_clock::now();
  if (mode == Mode::kDirectPush) {
    for (const Element& e : input) sel1->Push(e, 0);
  } else if (src != nullptr) {
    for (const Element& e : input) {
      if (e.is_punctuation() && !e.punctuation().has_key) {
        src->OnWatermark(e.punctuation().ts);
      }
      sel1->Process(e, 0);
    }
  } else {
    for (const Element& e : input) sel1->Process(e, 0);
  }
  sel1->Flush();
  auto t1 = std::chrono::steady_clock::now();
  ChainRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.out = sink->tuples();
  return r;
}

void PrintOverheadTable() {
  const uint64_t n = bench::Iters(4000000, 100000);
  const int reps = static_cast<int>(bench::Iters(7, 3));
  std::vector<Element> input = MakeInput(n, 1024);

  const Mode modes[] = {Mode::kDirectPush, Mode::kDisabled, Mode::kMetrics,
                        Mode::kMetricsProfile};
  const char* names[] = {"entry via Push() (no hooks)",
                         "disabled (unbound Process)", "metrics bound",
                         "metrics + profiler"};
  constexpr int kModes = 4;
  // Paired per-rep ratios against that same rep's Push baseline, median
  // across reps (min under --smoke): slow machine drift cancels, bursts
  // are rejected. Same scheme as E17.
  std::vector<std::vector<double>> ratio(kModes);
  std::vector<double> prof_over_metrics;
  double best[kModes] = {1e100, 1e100, 1e100, 1e100};
  uint64_t out[kModes] = {0, 0, 0, 0};
  for (int r = 0; r < reps; ++r) {
    (void)RunChain(input, Mode::kDisabled);  // Untimed warmup.
    double rep_s[kModes];
    for (int s = 0; s < kModes; ++s) {
      const int m = (r + s) % kModes;
      ChainRun run = RunChain(input, modes[m]);
      rep_s[m] = run.seconds;
      best[m] = std::min(best[m], run.seconds);
      out[m] = run.out;
    }
    for (int m = 0; m < kModes; ++m) ratio[m].push_back(rep_s[m] / rep_s[0]);
    prof_over_metrics.push_back(rep_s[3] / rep_s[2]);
  }
  for (int m = 1; m < kModes; ++m) {
    if (out[m] != out[0]) {
      std::fprintf(stderr, "FATAL: profiling changed results (%llu vs %llu)\n",
                   static_cast<unsigned long long>(out[m]),
                   static_cast<unsigned long long>(out[0]));
      std::exit(1);
    }
  }
  auto agg = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    if (bench::SmokeMode()) return v.front();
    size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
  };
  auto mps = [&](double s) { return static_cast<double>(n) / s / 1e6; };
  Table t({"config", "Mtuples/s", "ns/tuple", "overhead %"});
  t.AddRow({names[0], Fmt(mps(best[0])),
            Fmt(best[0] / static_cast<double>(n) * 1e9, 1), "baseline"});
  for (int m = 1; m < kModes; ++m) {
    t.AddRow({names[m], Fmt(mps(best[m])),
              Fmt(best[m] / static_cast<double>(n) * 1e9, 1),
              Fmt((agg(ratio[m]) - 1.0) * 100.0, 1)});
  }
  t.AddRow({"profiler vs metrics bound", "-", "-",
            Fmt((agg(prof_over_metrics) - 1.0) * 100.0, 1)});
  t.Print("E22: query profiler overhead, 4-stage select/project chain");
  std::printf(
      "note: overhead %% is the per-rep paired ratio vs the same rep's\n"
      "Push baseline (median rep on full runs, min under --smoke); the\n"
      "last row pairs profiler-on against metrics-only instead, because\n"
      "the StreamEngine always binds metrics at Submit — that row is the\n"
      "marginal cost of EXPLAIN ANALYZE on a live engine query, and the\n"
      "metrics rows carry E15's known clock-read cost. Acceptance gates:\n"
      "'disabled (unbound Process)' < 3%% over baseline; 'profiler vs\n"
      "metrics bound' < 10%%.\n");
}

/// Scrape-side cost: snapshotting and rendering a live profile, and the
/// event log's emit + export path. None of these touch the hot path.
void PrintScrapeCosts() {
  const uint64_t n = bench::Iters(500000, 20000);
  std::vector<Element> input = MakeInput(n, 1024);

  Plan plan;
  auto* sel = plan.Make<SelectOp>(
      Gt(Col(gen::PacketCols::kLen), Lit(int64_t{200})));
  auto* proj = plan.Make<ProjectOp>(std::vector<ExprRef>{
      Col(gen::PacketCols::kTs), Col(gen::PacketCols::kLen)});
  auto* sink = plan.Make<CountingSink>();
  sel->SetOutput(proj);
  proj->SetOutput(sink);
  obs::MetricsRegistry reg;
  plan.BindMetrics(reg, "e22");
  obs::QueryProfiler profiler;
  obs::QueryProfiler::SourceWatermark* src =
      profiler.Register("e22", "scrape-cost chain");
  profiler.BindPlan("e22", plan);
  for (const Element& e : input) {
    if (e.is_punctuation() && !e.punctuation().has_key) {
      src->OnWatermark(e.punctuation().ts);
    }
    sel->Process(e, 0);
  }
  sel->Flush();

  const int snaps = static_cast<int>(bench::Iters(2000, 100));
  size_t pretty_bytes = 0;
  size_t json_bytes = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < snaps; ++i) {
    obs::QueryProfile p;
    profiler.Snapshot("e22", &p);
    pretty_bytes = p.Pretty().size();
    json_bytes = p.ToJson().size();
  }
  auto t1 = std::chrono::steady_clock::now();
  const double snap_us = std::chrono::duration<double>(t1 - t0).count() *
                         1e6 / static_cast<double>(snaps);

  obs::EventLog events(1024);
  const uint64_t emits = bench::Iters(200000, 10000);
  t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < emits; ++i) {
    events.Emit(obs::EventKind::kQuerySubmit, "q0", "bench event payload");
  }
  t1 = std::chrono::steady_clock::now();
  const double emit_ns = std::chrono::duration<double>(t1 - t0).count() *
                         1e9 / static_cast<double>(emits);
  t0 = std::chrono::steady_clock::now();
  size_t events_bytes = 0;
  const int dumps = static_cast<int>(bench::Iters(500, 50));
  for (int i = 0; i < dumps; ++i) events_bytes = events.ToJson().size();
  t1 = std::chrono::steady_clock::now();
  const double dump_us = std::chrono::duration<double>(t1 - t0).count() *
                         1e6 / static_cast<double>(dumps);

  Table t({"what", "value"});
  t.AddRow({"profile snapshot+render us", Fmt(snap_us, 1)});
  t.AddRow({"profile pretty bytes", FmtInt(pretty_bytes)});
  t.AddRow({"profile json bytes", FmtInt(json_bytes)});
  t.AddRow({"event emit ns", Fmt(emit_ns, 1)});
  t.AddRow({"event log json us (full ring)", Fmt(dump_us, 1)});
  t.AddRow({"event log json bytes", FmtInt(events_bytes)});
  t.Print("E22: scrape-side cost (profile snapshot, event log)");
}

void BM_OpProfileWatermarkForward(benchmark::State& state) {
  obs::OpProfile p;
  int64_t ts = 0;
  for (auto _ : state) {
    p.OnWatermarkForward(ts++);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_OpProfileWatermarkForward);

void BM_OpProfileCountSingle(benchmark::State& state) {
  obs::OpProfile p;
  for (auto _ : state) {
    p.CountSingle();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_OpProfileCountSingle);

void BM_EventLogEmit(benchmark::State& state) {
  obs::EventLog log(1024);
  for (auto _ : state) {
    log.Emit(obs::EventKind::kQuerySubmit, "q0", "payload");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EventLogEmit);

void BM_SourceWatermarkTap(benchmark::State& state) {
  obs::QueryProfiler profiler;
  obs::QueryProfiler::SourceWatermark* src = profiler.Register("q0", "t");
  int64_t ts = 0;
  for (auto _ : state) {
    src->OnWatermark(ts++);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SourceWatermarkTap);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintOverheadTable();
  sqp::PrintScrapeCosts();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
