#ifndef SQP_BENCH_BENCH_UTIL_H_
#define SQP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace sqp {
namespace bench {

/// Minimal fixed-width table printer so every experiment binary reports
/// its figure/table in the same shape the slides use.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(const char* title) const {
    std::printf("\n=== %s ===\n", title);
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

}  // namespace bench
}  // namespace sqp

#endif  // SQP_BENCH_BENCH_UTIL_H_
