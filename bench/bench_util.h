#ifndef SQP_BENCH_BENCH_UTIL_H_
#define SQP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/snapshot.h"

namespace sqp {
namespace bench {

/// --smoke: CI mode. Every bench binary accepts it; experiments shrink
/// their iteration counts via Iters() and the google-benchmark
/// microbenchmark pass is skipped, so a full bench run finishes in
/// seconds and bit-rot (compile breaks, crashed experiments, asserts)
/// is still caught on every PR.
inline bool& SmokeFlag() {
  static bool smoke = false;
  return smoke;
}

inline bool SmokeMode() { return SmokeFlag(); }

/// --json=<path>: machine-readable report. Every table a bench binary
/// prints is also recorded and written to <path> as one JSON document at
/// exit, so CI runs can archive BENCH_*.json artifacts instead of
/// scraping stdout.
inline std::string& JsonPath() {
  static std::string path;
  return path;
}

/// The recorded tables (in Print order) behind the JSON report.
struct TableData {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

inline std::vector<TableData>& JsonReport() {
  static std::vector<TableData> report;
  return report;
}

inline std::string& BinaryName() {
  static std::string name = "bench";
  return name;
}

/// Writes the recorded tables to `path`. Called automatically at exit
/// when --json=<path> was given; exposed for tests.
inline void WriteJsonReport(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write --json file %s\n", path.c_str());
    return;
  }
  std::string out = "{\"binary\":\"" + obs::JsonEscape(BinaryName()) +
                    "\",\"smoke\":" + (SmokeMode() ? "true" : "false") +
                    ",\"tables\":[";
  const std::vector<TableData>& report = JsonReport();
  for (size_t t = 0; t < report.size(); ++t) {
    if (t > 0) out += ",";
    out += "{\"title\":\"" + obs::JsonEscape(report[t].title) +
           "\",\"headers\":[";
    for (size_t c = 0; c < report[t].headers.size(); ++c) {
      if (c > 0) out += ",";
      out += "\"" + obs::JsonEscape(report[t].headers[c]) + "\"";
    }
    out += "],\"rows\":[";
    for (size_t r = 0; r < report[t].rows.size(); ++r) {
      if (r > 0) out += ",";
      out += "[";
      for (size_t c = 0; c < report[t].rows[r].size(); ++c) {
        if (c > 0) out += ",";
        out += "\"" + obs::JsonEscape(report[t].rows[r][c]) + "\"";
      }
      out += "]";
    }
    out += "]}";
  }
  out += "]}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

/// Strips --smoke and --json=<path> from argv (so benchmark::Initialize
/// never sees them) and records them. Call first thing in main.
inline void ParseBenchArgs(int& argc, char** argv) {
  if (argc > 0) BinaryName() = argv[0];
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      SmokeFlag() = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      JsonPath() = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!JsonPath().empty()) {
    JsonReport();  // Construct before registering: destroyed after.
    std::atexit([] {
      if (!JsonPath().empty()) WriteJsonReport(JsonPath());
    });
  }
}

/// Iteration count for an experiment loop: `full` normally, `smoke`
/// under --smoke.
inline uint64_t Iters(uint64_t full, uint64_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Runs the registered google-benchmark microbenchmarks unless --smoke.
inline void RunMicrobenchmarks(int& argc, char** argv) {
  if (SmokeMode()) {
    std::printf("\n[--smoke] skipping google-benchmark microbenchmarks\n");
    return;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
}

/// Minimal fixed-width table printer so every experiment binary reports
/// its figure/table in the same shape the slides use. Print also records
/// the table for the --json report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(const char* title) const {
    std::printf("\n=== %s ===\n", title);
    // Size the width table to the widest row, not just the headers: a
    // row with extra trailing cells must not index past `widths`.
    size_t cols = headers_.size();
    for (const auto& row : rows_) cols = std::max(cols, row.size());
    std::vector<size_t> widths(cols, 0);
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    JsonReport().push_back(TableData{title, headers_, rows_});
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

}  // namespace bench
}  // namespace sqp

#endif  // SQP_BENCH_BENCH_UTIL_H_
