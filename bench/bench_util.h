#ifndef SQP_BENCH_BENCH_UTIL_H_
#define SQP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace sqp {
namespace bench {

/// --smoke: CI mode. Every bench binary accepts it; experiments shrink
/// their iteration counts via Iters() and the google-benchmark
/// microbenchmark pass is skipped, so a full bench run finishes in
/// seconds and bit-rot (compile breaks, crashed experiments, asserts)
/// is still caught on every PR.
inline bool& SmokeFlag() {
  static bool smoke = false;
  return smoke;
}

inline bool SmokeMode() { return SmokeFlag(); }

/// Strips --smoke from argv (so benchmark::Initialize never sees it)
/// and records it. Call first thing in main.
inline void ParseBenchArgs(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      SmokeFlag() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

/// Iteration count for an experiment loop: `full` normally, `smoke`
/// under --smoke.
inline uint64_t Iters(uint64_t full, uint64_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Runs the registered google-benchmark microbenchmarks unless --smoke.
inline void RunMicrobenchmarks(int& argc, char** argv) {
  if (SmokeMode()) {
    std::printf("\n[--smoke] skipping google-benchmark microbenchmarks\n");
    return;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
}

/// Minimal fixed-width table printer so every experiment binary reports
/// its figure/table in the same shape the slides use.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(const char* title) const {
    std::printf("\n=== %s ===\n", title);
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

}  // namespace bench
}  // namespace sqp

#endif  // SQP_BENCH_BENCH_UTIL_H_
