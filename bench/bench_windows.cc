// Experiment E11 (slide 27, window taxonomy): cost and state of the
// window kinds — agglomerative (landmark), sliding, shifting (tumbling)
// — maintained over the same stream, plus punctuation-based windows
// (slide 28) on the auction workload.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/paned_window_agg.h"
#include "exec/plan.h"
#include "exec/window_agg.h"
#include "stream/generators.h"
#include "window/punctuation_window.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PrintWindowKinds() {
  const int kN = 200000;
  auto make_tuples = [&]() {
    Rng rng(71);
    std::vector<TupleRef> out;
    for (int64_t i = 0; i < kN; ++i) {
      out.push_back(MakeTuple(
          i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(1000)))}));
    }
    return out;
  };
  std::vector<TupleRef> tuples = make_tuples();

  Table t({"window kind", "outputs", "peak state (KiB)", "note"});

  // Landmark (agglomerative): grows from the start, O(1) state for
  // invertible aggregates.
  {
    Plan plan;
    auto* wa = plan.Make<WindowAggregateOp>(
        WindowSpec::Landmark(0), std::vector<AggSpec>{{AggKind::kSum, 1, 0.5}});
    auto* sink = plan.Make<CountingSink>();
    wa->SetOutput(sink);
    size_t peak = 0;
    for (const TupleRef& tup : tuples) {
      wa->Push(Element(tup));
      peak = std::max(peak, wa->StateBytes());
    }
    t.AddRow({"agglomerative (landmark)", FmtInt(sink->tuples()),
              FmtInt(peak / 1024), "start..now; O(1) state for sum"});
  }
  // Sliding: per-tuple output, state = window contents.
  {
    Plan plan;
    auto* wa = plan.Make<WindowAggregateOp>(
        WindowSpec::TimeSliding(5000),
        std::vector<AggSpec>{{AggKind::kSum, 1, 0.5}});
    auto* sink = plan.Make<CountingSink>();
    wa->SetOutput(sink);
    size_t peak = 0;
    for (const TupleRef& tup : tuples) {
      wa->Push(Element(tup));
      peak = std::max(peak, wa->StateBytes());
    }
    t.AddRow({"sliding [range 5000]", FmtInt(sink->tuples()),
              FmtInt(peak / 1024), "state = window contents"});
  }
  // Tumbling (shifting): one output per bucket, one open bucket live.
  {
    Plan plan;
    GroupByOptions opt;
    opt.key_cols = {};
    opt.aggs = {{AggKind::kSum, 1, 0.5}};
    opt.window_size = 5000;
    auto* gb = plan.Make<GroupByAggregateOp>(opt);
    auto* sink = plan.Make<CountingSink>();
    gb->SetOutput(sink);
    size_t peak = 0;
    for (const TupleRef& tup : tuples) {
      gb->Push(Element(tup));
      peak = std::max(peak, gb->StateBytes());
    }
    gb->Flush();
    t.AddRow({"shifting (tumbling 5000)", FmtInt(sink->tuples()),
              FmtInt(peak / 1024), "one open bucket"});
  }
  t.Print("E11 / slide 27: window taxonomy on a 200k-tuple stream");
}

void PrintPunctuationWindows() {
  // Slide 28: auctions close on data-dependent punctuations.
  gen::AuctionGenerator auctions(gen::AuctionOptions{});
  PunctuationWindowBuffer buf(gen::AuctionCols::kAuctionId);
  uint64_t closed = 0, bids = 0;
  size_t peak_open = 0, peak_buffered = 0;
  double total_winning = 0;
  for (int i = 0; i < 100000; ++i) {
    Element e = auctions.Next();
    if (e.is_punctuation()) {
      auto groups = buf.OnPunctuation(e.punctuation());
      for (auto& [key, tuples] : groups) {
        ++closed;
        double best = 0;
        for (const TupleRef& t : tuples) {
          best = std::max(best, t->at(gen::AuctionCols::kAmount).AsDouble());
        }
        total_winning += best;
      }
    } else {
      ++bids;
      buf.Insert(e.tuple());
    }
    peak_open = std::max(peak_open, buf.num_open_keys());
    peak_buffered = std::max(peak_buffered, buf.buffered_tuples());
  }
  Table t({"metric", "value"});
  t.AddRow({"bids", FmtInt(bids)});
  t.AddRow({"auctions closed by punctuation", FmtInt(closed)});
  t.AddRow({"mean winning bid", Fmt(total_winning / double(closed), 2)});
  t.AddRow({"peak open auctions", FmtInt(peak_open)});
  t.AddRow({"peak buffered bids", FmtInt(peak_buffered)});
  t.Print("E11 / slide 28: punctuation-delimited auction windows");
  std::printf(
      "state stays bounded by the number of *open* auctions — punctuations\n"
      "let an unbounded-domain grouping run in bounded memory.\n");
}

void PrintPanedAblation() {
  // Sliding max with window W, slide S: per-tuple recompute vs panes.
  const int kN = 200000;
  auto make_tuples = [&]() {
    Rng rng(73);
    std::vector<TupleRef> out;
    for (int64_t i = 0; i < kN; ++i) {
      out.push_back(MakeTuple(
          i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(100000)))}));
    }
    return out;
  };
  std::vector<TupleRef> tuples = make_tuples();

  Table t({"window/slide", "naive sliding (ms)", "paned (ms)",
           "paned state (B)", "pane merges"});
  for (auto [w, s] : {std::pair<int64_t, int64_t>{2000, 100},
                      {2000, 500},
                      {10000, 500}}) {
    // Naive: WindowAggregateOp recomputes max on expiry, emits per tuple.
    auto t0 = std::chrono::steady_clock::now();
    {
      Plan plan;
      auto* wa = plan.Make<WindowAggregateOp>(
          WindowSpec::TimeSliding(w),
          std::vector<AggSpec>{{AggKind::kMax, 1, 0.5}});
      auto* sink = plan.Make<CountingSink>();
      wa->SetOutput(sink);
      for (const TupleRef& tup : tuples) wa->Push(Element(tup));
    }
    auto t1 = std::chrono::steady_clock::now();
    uint64_t merges = 0;
    size_t state_bytes = 0;
    {
      Plan plan;
      PanedWindowAggregateOp::Options opt;
      opt.window = w;
      opt.slide = s;
      opt.aggs = {{AggKind::kMax, 1, 0.5}};
      auto* pw = plan.Make<PanedWindowAggregateOp>(opt);
      auto* sink = plan.Make<CountingSink>();
      pw->SetOutput(sink);
      for (const TupleRef& tup : tuples) pw->Push(Element(tup));
      pw->Flush();
      merges = pw->merges();
      state_bytes = pw->StateBytes();
    }
    auto t2 = std::chrono::steady_clock::now();
    t.AddRow({std::to_string(w) + "/" + std::to_string(s),
              Fmt(std::chrono::duration<double>(t1 - t0).count() * 1e3, 1),
              Fmt(std::chrono::duration<double>(t2 - t1).count() * 1e3, 1),
              FmtInt(state_bytes), FmtInt(merges)});
  }
  t.Print("E11 ablation: sliding max — per-tuple maintenance vs panes "
          "(shared subaggregation)");
}

void BM_WindowMaintenance(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  Rng rng(72);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 20000; ++i) {
    tuples.push_back(MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(1000)))}));
  }
  for (auto _ : state) {
    Plan plan;
    WindowSpec spec = kind == 0   ? WindowSpec::Landmark(0)
                      : kind == 1 ? WindowSpec::TimeSliding(2000)
                                  : WindowSpec::CountSliding(2000);
    auto* wa = plan.Make<WindowAggregateOp>(
        spec, std::vector<AggSpec>{{AggKind::kAvg, 1, 0.5}});
    auto* sink = plan.Make<CountingSink>();
    wa->SetOutput(sink);
    for (const TupleRef& t : tuples) wa->Push(Element(t));
    benchmark::DoNotOptimize(sink->tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_WindowMaintenance)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"landmark_time_count"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintWindowKinds();
  sqp::PrintPunctuationWindows();
  sqp::PrintPanedAblation();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
