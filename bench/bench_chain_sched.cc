// Experiment E2 (slide 43, "Operator scheduling [BBDM03]"): queue memory
// of FIFO vs Greedy vs Chain on the slide's 2-operator chain (op1 sel
// 0.2, op2 sel 0; one tuple/sec burst), reproducing the table's five
// rows exactly, then extending to longer chains and stochastic bursty
// arrivals where Chain's envelope priorities beat plain Greedy.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/plan.h"
#include "exec/select.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "sched/sim.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PrintSlide43() {
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.2}, {1.0, 0.0}};
  cfg.ticks = 5;

  auto run = [&](std::unique_ptr<SchedulingPolicy> policy) {
    ScheduledArrival arrivals({1, 1, 1, 1, 1});
    return RunChainSim(cfg, arrivals, *policy);
  };
  auto fifo = run(MakeFifoPolicy());
  auto greedy = run(MakeGreedyPolicy());
  auto chain = run(MakeChainPolicy({1.0, 1.0}, {0.2, 0.0}));

  Table t({"Time", "Greedy", "FIFO", "Chain", "paper Greedy", "paper FIFO"});
  const double paper_greedy[] = {1.0, 1.2, 1.4, 1.6, 1.8};
  const double paper_fifo[] = {1.0, 1.2, 2.0, 2.2, 3.0};
  for (int i = 0; i < 5; ++i) {
    t.AddRow({std::to_string(i), Fmt(greedy.memory_at_tick[i], 1),
              Fmt(fifo.memory_at_tick[i], 1), Fmt(chain.memory_at_tick[i], 1),
              Fmt(paper_greedy[i], 1), Fmt(paper_fifo[i], 1)});
  }
  t.Print("E2 / slide 43: queue memory, 2-op chain, burst arrivals");
}

void PrintBurstyExtension() {
  // 4-op chain under on/off bursts: Chain <= Greedy <= FIFO on average
  // memory; all complete the same work.
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.8}, {1.0, 0.5}, {1.0, 0.25}, {1.0, 0.0}};
  cfg.ticks = 20000;
  std::vector<double> costs = {1, 1, 1, 1};
  std::vector<double> sels = {0.8, 0.5, 0.25, 0.0};

  Table t({"policy", "avg queue mem", "peak queue mem", "completed"});
  struct Row {
    const char* name;
    std::unique_ptr<SchedulingPolicy> policy;
  };
  Row rows[] = {
      {"fifo", MakeFifoPolicy()},
      {"round-robin", MakeRoundRobinPolicy()},
      {"greedy", MakeGreedyPolicy()},
      {"chain", MakeChainPolicy(costs, sels)},
  };
  for (Row& r : rows) {
    BurstyArrival arrivals(0.9, 30.0, 90.0, 71);
    auto res = RunChainSim(cfg, arrivals, *r.policy);
    t.AddRow({r.name, Fmt(res.avg_memory, 2), Fmt(res.peak_memory, 1),
              std::to_string(res.completed)});
  }
  t.Print("E2 extension: 4-op chain, on/off bursts (rate .9 on, 25% duty)");
}

// A data-reduction operator matching the [BBDM03] model exactly: each
// processed tuple *shrinks* to `factor` of its payload (factor 0 =
// consumed). Selections drop whole tuples instead — a different memory
// profile, noted below.
class ShrinkOp : public Operator {
 public:
  ShrinkOp(double factor, std::string name)
      : Operator(std::move(name)), factor_(factor) {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    if (e.is_punctuation()) {
      Emit(e);
      return;
    }
    if (factor_ <= 0.0) return;  // Consumed.
    const Tuple& t = *e.tuple();
    const std::string& payload = t.at(1).AsString();
    size_t new_len = static_cast<size_t>(
        static_cast<double>(payload.size()) * factor_);
    Emit(Element(MakeTuple(
        t.ts(), {t.at(0), Value(payload.substr(0, new_len))})));
  }

 private:
  double factor_;
};

void PrintRealOperatorValidation() {
  // The same policies drive *physical* operators through QueuedExecutor:
  // a 3-stage data-reduction chain (tuples shrink 1 -> 0.5 -> 0.2 -> 0,
  // the [BBDM03] model) under bursty arrivals, measuring queued BYTES.
  auto run = [&](std::unique_ptr<SchedulingPolicy> policy) {
    Plan plan;
    auto* s1 = plan.Make<ShrinkOp>(0.5, "shrink1");
    auto* s2 = plan.Make<ShrinkOp>(0.4, "shrink2");
    auto* s3 = plan.Make<ShrinkOp>(0.0, "shrink3");
    auto* sink = plan.Make<CountingSink>();
    std::vector<QueuedExecutor::Stage> stages = {
        {s1, 1.0, 0.5, 0}, {s2, 1.0, 0.4, 0}, {s3, 1.0, 0.0, 0}};
    QueuedExecutor exec(stages, sink, std::move(policy));

    BurstyArrival arrivals(0.9, 30.0, 90.0, 71);
    double sum_bytes = 0;
    size_t peak = 0;
    const int kTicks = 20000;
    const std::string kPayload(1000, 'x');
    for (int t = 0; t < kTicks; ++t) {
      uint64_t n = arrivals.ArrivalsAt(t);
      for (uint64_t i = 0; i < n; ++i) {
        exec.Arrive(
            Element(MakeTuple(t, {Value(int64_t{t}), Value(kPayload)})));
      }
      sum_bytes += static_cast<double>(exec.QueuedBytes());
      exec.Tick();
      peak = std::max(peak, exec.QueuedBytes());
    }
    return std::make_pair(sum_bytes / kTicks / 1024.0, peak / 1024);
  };

  Table t({"policy (real operators)", "avg queued KiB", "peak KiB"});
  auto [fifo_avg, fifo_peak] = run(MakeFifoPolicy());
  auto [greedy_avg, greedy_peak] = run(MakeGreedyPolicy());
  auto [chain_avg, chain_peak] =
      run(MakeChainPolicy({1, 1, 1}, {0.5, 0.4, 0.0}));
  t.AddRow({"fifo", Fmt(fifo_avg, 1), FmtInt(fifo_peak)});
  t.AddRow({"greedy", Fmt(greedy_avg, 1), FmtInt(greedy_peak)});
  t.AddRow({"chain", Fmt(chain_avg, 1), FmtInt(chain_peak)});
  t.Print("E2 validation: same policies over a physical data-reduction "
          "chain (queued bytes)");
  std::printf(
      "note: [BBDM03] models tuples that SHRINK through operators. For\n"
      "pure filters (tuples drop whole or survive full-size), count-based\n"
      "greedy is the right objective and Chain's size-based envelope does\n"
      "not apply — the model boundary, visible if you swap ShrinkOp for\n"
      "SelectOp here.\n");
}

void BM_ChainSimulation(benchmark::State& state) {
  ChainSimConfig cfg;
  cfg.ops = {{1.0, 0.8}, {1.0, 0.5}, {1.0, 0.25}, {1.0, 0.0}};
  cfg.ticks = state.range(0);
  for (auto _ : state) {
    BurstyArrival arrivals(0.9, 30.0, 90.0, 71);
    auto chain = MakeChainPolicy({1, 1, 1, 1}, {0.8, 0.5, 0.25, 0.0});
    auto res = RunChainSim(cfg, arrivals, *chain);
    benchmark::DoNotOptimize(res.avg_memory);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChainSimulation)->Arg(1000)->Arg(10000)->ArgNames({"ticks"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintSlide43();
  sqp::PrintBurstyExtension();
  sqp::PrintRealOperatorValidation();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
