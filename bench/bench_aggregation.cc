// Experiment E4 (slides 35-36, "Aggregation in Bounded Memory"): state
// growth of the two slide-36 queries. Grouping on an unrestricted
// unbounded attribute grows without bound; adding the range predicate
// (512 < len < 1024) caps live groups at 511; windowing by the ordering
// attribute keeps only the open bucket live. The [ABB+02] analyzer's
// verdicts are printed next to the measured state.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "cql/planner.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::FmtInt;
using bench::Table;

TupleRef Pkt(Rng& rng, int64_t ts) {
  // Heavy-tailed lengths so the unbounded query keeps finding new groups.
  int64_t len = 40 + static_cast<int64_t>(rng.Exponential(1.0 / 3000.0));
  return MakeTuple(ts, {Value(ts), Value(static_cast<int64_t>(rng.Uniform(1000))),
                        Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0}),
                        Value(gen::kProtoTcp), Value(len), Value(int64_t{0}),
                        Value(int64_t{0}), Value("")});
}

void PrintMemoryGrowth() {
  cql::Catalog cat;
  (void)cat.Register("packets", gen::PacketSchema());
  struct Variant {
    const char* label;
    const char* query;
  };
  Variant variants[] = {
      {"unbounded: group by len",
       "select len, count(*) from packets where len > 512 group by len"},
      {"bounded: 512<len<1024",
       "select len, count(*) from packets where len > 512 and len < 1024 "
       "group by len"},
      {"windowed: group by ts/1000, len",
       "select tb, len, count(*) from packets where len > 512 "
       "group by ts/1000 as tb, len"},
  };

  std::vector<std::unique_ptr<cql::CompiledQuery>> queries;
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (const Variant& v : variants) {
    auto cq = cql::Compile(v.query, cat);
    if (!cq.ok()) {
      std::printf("compile failed: %s\n", cq.status().ToString().c_str());
      return;
    }
    sinks.push_back(std::make_unique<CountingSink>());
    (*cq)->AttachSink(sinks.back().get());
    queries.push_back(std::move(*cq));
  }

  Table t({"tuples", "unbounded state (KiB)", "range-bounded (KiB)",
           "windowed (KiB)"});
  Rng rng(11);
  const int64_t kTotal = 200000;
  for (int64_t i = 1; i <= kTotal; ++i) {
    TupleRef pkt = Pkt(rng, i);
    for (auto& q : queries) q->Push(Element(pkt));
    if (i % (kTotal / 5) == 0) {
      std::vector<std::string> row = {FmtInt(static_cast<uint64_t>(i))};
      for (auto& q : queries) {
        row.push_back(FmtInt(q->plan().TotalStateBytes() / 1024));
      }
      t.AddRow(std::move(row));
    }
  }
  t.Print("E4 / slide 36: group-by state growth over stream length");

  Table v({"query", "[ABB+02] verdict", "max groups", "why"});
  for (size_t i = 0; i < queries.size(); ++i) {
    const MemoryAnalysis& m = queries[i]->memory();
    v.AddRow({variants[i].label,
              m.verdict == MemoryVerdict::kBounded ? "BOUNDED" : "UNBOUNDED",
              m.verdict == MemoryVerdict::kBounded ? FmtInt(m.max_groups) : "-",
              m.explanation});
  }
  v.Print("E4: static analyzer verdicts (match measured behaviour)");
}

void BM_GroupByThroughput(benchmark::State& state) {
  bool windowed = state.range(0) != 0;
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kSum, 2, 0.5}};
  opt.window_size = windowed ? 1000 : 0;
  Rng rng(5);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 10000; ++i) {
    tuples.push_back(MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(100))),
            Value(static_cast<int64_t>(rng.Uniform(1000)))}));
  }
  for (auto _ : state) {
    Plan plan;
    auto* gb = plan.Make<GroupByAggregateOp>(opt);
    auto* sink = plan.Make<CountingSink>();
    gb->SetOutput(sink);
    for (const TupleRef& t : tuples) gb->Push(Element(t));
    gb->Flush();
    benchmark::DoNotOptimize(sink->tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_GroupByThroughput)->Arg(0)->Arg(1)->ArgNames({"windowed"});

void BM_HolisticVsDistributive(benchmark::State& state) {
  bool holistic = state.range(0) != 0;
  GroupByOptions opt;
  opt.key_cols = {1};
  opt.aggs = {holistic ? AggSpec{AggKind::kMedian, 2, 0.5}
                       : AggSpec{AggKind::kAvg, 2, 0.5}};
  Rng rng(6);
  std::vector<TupleRef> tuples;
  for (int64_t i = 0; i < 10000; ++i) {
    tuples.push_back(MakeTuple(
        i, {Value(i), Value(static_cast<int64_t>(rng.Uniform(10))),
            Value(static_cast<int64_t>(rng.Uniform(1000)))}));
  }
  for (auto _ : state) {
    Plan plan;
    auto* gb = plan.Make<GroupByAggregateOp>(opt);
    auto* sink = plan.Make<CountingSink>();
    gb->SetOutput(sink);
    for (const TupleRef& t : tuples) gb->Push(Element(t));
    gb->Flush();
    benchmark::DoNotOptimize(plan.TotalStateBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_HolisticVsDistributive)->Arg(0)->Arg(1)->ArgNames({"holistic"});

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintMemoryGrowth();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
