// E18: key-partitioned sharded execution — scaling, routing modes,
// and skew.
//
// Four tables:
//
//  - Scaling sweep (the CI gate): a nested-loop sliding-window join
//    under disjoint routing at shards 1/2/4/8. shards=1 goes through
//    the full exchange/merge path (router, bounded queues, worker and
//    merge threads), so it is the honest baseline: the speedup column
//    is scaling, not wrapper-removal. Disjoint partitioning shrinks
//    each replica's window to ~1/N of the keys, so nested-loop probe
//    work drops ~N-fold — the sweep shows work reduction even on a
//    single core, and true parallelism on top of it on multi-core.
//  - Routing modes: disjoint vs replicated on the same join. Replicated
//    broadcasts the non-partitioned side to every shard (the
//    shared-nothing trade-off when one side has no usable key), and the
//    routed counters make the ingest amplification visible.
//  - Sharded windowed group-by: hash aggregation is O(1) per tuple, so
//    there is no work reduction to harvest — the sweep reports what the
//    exchange overhead costs when the operator is cheap.
//  - Zipf skew: hash partitioning sends each key to one shard, so a
//    skewed key distribution concentrates load; the skew gauge is the
//    number an operator watches before trusting a scaling factor.
//
// Every sharded configuration's output count must equal the serial
// operator's on the same input — the harness aborts otherwise, so
// correctness rides every measurement run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/aggregate_op.h"
#include "exec/exchange.h"
#include "exec/plan.h"
#include "exec/sharded_op.h"
#include "exec/window_join.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Input schema: [ts, key, payload].
TupleRef T(int64_t ts, int64_t key, int64_t payload = 0) {
  return MakeTuple(ts, {Value(ts), Value(key), Value(payload)});
}

BinaryWindowJoinOp::Options NlJoinOptions(int64_t window) {
  BinaryWindowJoinOp::Options j;
  j.left_cols = {1};
  j.right_cols = {1};
  j.left_window = WindowSpec::TimeSliding(window);
  j.right_window = WindowSpec::TimeSliding(window);
  // Nested-loop on both sides: probe cost is proportional to window
  // population, which disjoint sharding divides by N.
  j.left_strategy = JoinStrategy::kNestedLoop;
  j.right_strategy = JoinStrategy::kNestedLoop;
  return j;
}

GroupByOptions Grouping() {
  GroupByOptions g;
  g.key_cols = {1};
  g.aggs = {AggSpec{AggKind::kCount, -1, 0.5},
            AggSpec{AggKind::kSum, 2, 0.5}};
  g.window_size = 100;
  return g;
}

struct Workload {
  int n = 0;
  int keys = 64;
  int64_t rate = 4;      // Tuples per timestamp tick (per port).
  double zipf_s = 0.0;   // 0 = uniform.
};

/// Drives `push(element, port)` with a deterministic keyed two-port
/// stream: ts advances every `rate` tuples, keys are uniform or Zipf,
/// and a watermark trails on both ports every 512 tuples.
template <typename PushFn>
void Drive(const Workload& w, PushFn&& push) {
  Rng rng(42);
  ZipfGenerator zipf(w.keys, w.zipf_s > 0 ? w.zipf_s : 1.0);
  for (int i = 0; i < w.n; ++i) {
    int64_t ts = i / w.rate;
    int64_t key = w.zipf_s > 0
                      ? static_cast<int64_t>(zipf.Next(rng))
                      : static_cast<int64_t>(rng.Uniform(
                            static_cast<uint64_t>(w.keys)));
    push(Element(T(ts, key, i)), static_cast<int>(rng.Uniform(2)));
    if (i % 512 == 511) {
      push(Element(Punctuation::Watermark(ts - 64)), 0);
      push(Element(Punctuation::Watermark(ts - 64)), 1);
    }
  }
}

struct RunResult {
  double seconds = 0;
  uint64_t results = 0;
  uint64_t routed = 0;
  double skew = 1.0;
};

/// Serial reference: the bare operator, no exchange.
template <typename MakeOp>
RunResult RunSerial(const Workload& w, MakeOp&& make_op, int flushes) {
  Plan plan;
  Operator* op = plan.Add(make_op(0));
  auto* sink = plan.Make<CountingSink>();
  op->SetOutput(sink);
  auto t0 = std::chrono::steady_clock::now();
  Drive(w, [&](const Element& e, int port) { op->Push(e, port); });
  for (int f = 0; f < flushes; ++f) op->Flush();
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.results = sink->tuples();
  return r;
}

/// Sharded run: the operator behind a ShardedOp, including shards=1.
template <typename MakeOp>
RunResult RunSharded(const Workload& w, MakeOp&& make_op, int shards,
                     ShardRouting routing,
                     std::vector<std::vector<int>> key_cols) {
  Plan plan;
  ShardedOpOptions so;
  so.shards = shards;
  so.routing = routing;
  so.key_cols = std::move(key_cols);
  so.expected_flushes = static_cast<int>(so.key_cols.size());
  auto* sharded = plan.Make<ShardedOp>(
      so, [&](int i) { return make_op(i); }, "bench-sharded");
  auto* sink = plan.Make<CountingSink>();
  sharded->SetOutput(sink);
  auto t0 = std::chrono::steady_clock::now();
  Drive(w, [&](const Element& e, int port) { sharded->Push(e, port); });
  for (int f = 0; f < so.expected_flushes; ++f) sharded->Flush();
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.results = sink->tuples();
  for (int i = 0; i < shards; ++i) r.routed += sharded->shard_stats(i).routed;
  r.skew = sharded->SkewRatio();
  return r;
}

void RequireEqualResults(const char* what, uint64_t serial,
                         uint64_t sharded) {
  if (serial != sharded) {
    std::fprintf(stderr,
                 "FATAL: %s sharded output diverged from serial "
                 "(serial=%llu sharded=%llu)\n",
                 what, static_cast<unsigned long long>(serial),
                 static_cast<unsigned long long>(sharded));
    std::abort();
  }
}

// --- Table 1: scaling sweep (the CI perf gate parses this one) ---

void PrintScalingSweep() {
  // Windows sized so nested-loop probe work dwarfs the per-tuple
  // exchange cost (~400 ticks x 16/tick / 2 sides ~= 3200 live tuples
  // scanned per probe serial): the sweep then measures partitioning's
  // work reduction, not queue overhead, and stays stable under --smoke.
  // Many keys keep selectivity low — result emission rides the shared
  // merge path at every shard count, so a high-fanout join would put a
  // constant-cost floor under the sweep and mask the scaling.
  Workload w;
  w.n = bench::Iters(32000, 4000);
  w.keys = 1024;
  w.rate = 16;
  auto make_join = [](int) {
    return std::make_unique<BinaryWindowJoinOp>(NlJoinOptions(400));
  };

  RunResult serial = RunSerial(w, make_join, 2);

  Table t({"shards", "time_ms", "ktuples/s", "results", "skew",
           "speedup vs shards=1"});
  double base_seconds = 0;
  for (int shards : {1, 2, 4, 8}) {
    RunResult r = RunSharded(w, make_join, shards, ShardRouting::kDisjoint,
                             {{1}, {1}});
    RequireEqualResults("scaling sweep", serial.results, r.results);
    if (shards == 1) base_seconds = r.seconds;
    t.AddRow({FmtInt(static_cast<uint64_t>(shards)),
              Fmt(r.seconds * 1e3, 1),
              Fmt(static_cast<double>(w.n) / r.seconds / 1e3, 1),
              FmtInt(r.results), Fmt(r.skew),
              Fmt(base_seconds / r.seconds)});
  }
  t.AddRow({"serial", Fmt(serial.seconds * 1e3, 1),
            Fmt(static_cast<double>(w.n) / serial.seconds / 1e3, 1),
            FmtInt(serial.results), "-", "-"});
  t.Print("E18: sharding scaling (NL window join, disjoint)");
}

// --- Table 2: disjoint vs replicated routing ---

void PrintRoutingModes() {
  Workload w;
  w.n = bench::Iters(16000, 2000);
  w.keys = 48;
  w.rate = 8;
  auto make_join = [](int) {
    return std::make_unique<BinaryWindowJoinOp>(NlJoinOptions(120));
  };
  RunResult serial = RunSerial(w, make_join, 2);

  Table t({"routing", "shards", "time_ms", "routed", "ingest amp",
           "results"});
  for (ShardRouting routing :
       {ShardRouting::kDisjoint, ShardRouting::kReplicated}) {
    RunResult r = RunSharded(w, make_join, 4, routing, {{1}, {1}});
    RequireEqualResults("routing modes", serial.results, r.results);
    // Routed counts tuples only; watermarks are not in the denominator.
    double amp = static_cast<double>(r.routed) / static_cast<double>(w.n);
    t.AddRow({ShardRoutingName(routing), "4", Fmt(r.seconds * 1e3, 1),
              FmtInt(r.routed), Fmt(amp), FmtInt(r.results)});
  }
  t.Print("E18: routing modes (replicated broadcasts the probe side)");
}

// --- Table 3: sharded windowed group-by ---

void PrintGroupBySweep() {
  Workload w;
  w.n = bench::Iters(200000, 20000);
  w.keys = 256;
  w.rate = 16;
  auto make_agg = [](int) {
    return std::make_unique<GroupByAggregateOp>(Grouping());
  };
  RunResult serial = RunSerial(w, make_agg, 1);

  Table t({"shards", "time_ms", "ktuples/s", "results", "skew"});
  for (int shards : {1, 2, 4}) {
    RunResult r = RunSharded(w, make_agg, shards, ShardRouting::kDisjoint,
                             {{1}});
    RequireEqualResults("group-by sweep", serial.results, r.results);
    t.AddRow({FmtInt(static_cast<uint64_t>(shards)),
              Fmt(r.seconds * 1e3, 1),
              Fmt(static_cast<double>(w.n) / r.seconds / 1e3, 1),
              FmtInt(r.results), Fmt(r.skew)});
  }
  t.AddRow({"serial", Fmt(serial.seconds * 1e3, 1),
            Fmt(static_cast<double>(w.n) / serial.seconds / 1e3, 1),
            FmtInt(serial.results), "-"});
  t.Print("E18: sharded windowed group-by (cheap operator, overhead view)");
}

// --- Table 4: Zipf skew ---

void PrintSkewSweep() {
  auto make_join = [](int) {
    return std::make_unique<BinaryWindowJoinOp>(NlJoinOptions(150));
  };
  Table t({"zipf s", "time_ms", "ktuples/s", "skew", "results"});
  for (double s : {0.0, 0.9, 1.4}) {
    Workload w;
    w.n = bench::Iters(16000, 2000);
    w.keys = 64;
    w.rate = 8;
    w.zipf_s = s;
    RunResult serial = RunSerial(w, make_join, 2);
    RunResult r = RunSharded(w, make_join, 4, ShardRouting::kDisjoint,
                             {{1}, {1}});
    RequireEqualResults("skew sweep", serial.results, r.results);
    t.AddRow({s == 0.0 ? "uniform" : Fmt(s, 1), Fmt(r.seconds * 1e3, 1),
              Fmt(static_cast<double>(w.n) / r.seconds / 1e3, 1),
              Fmt(r.skew), FmtInt(r.results)});
  }
  t.Print("E18: Zipf key skew at shards=4 (disjoint)");
}

// --- Microbenchmarks: the routing decision itself ---

void BM_RouteDisjointTuple(benchmark::State& state) {
  ShardRouter r(8, ShardRouting::kDisjoint, {{1}});
  Element e(T(7, 12345));
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Route(e, 0));
  }
}
BENCHMARK(BM_RouteDisjointTuple);

void BM_RouteCloseKeyPunct(benchmark::State& state) {
  ShardRouter r(8, ShardRouting::kDisjoint, {{1}});
  Element e(Punctuation::CloseKey(7, Value(int64_t{12345})));
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Route(e, 0));
  }
}
BENCHMARK(BM_RouteCloseKeyPunct);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintScalingSweep();
  sqp::PrintRoutingModes();
  sqp::PrintGroupBySweep();
  sqp::PrintSkewSweep();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
