// Experiment E21: what durability costs on the ingest path, and what
// recovery buys back. The same grouped aggregation ingests the same
// feed under three regimes — archive off, group-commit (background
// flusher, the default), and sync-every-append (inline flush per
// record, the group-commit counterfactual) — and reports ingest
// throughput plus overhead vs the archive-off baseline. A second table
// measures recovery of the archived run: checkpoint restore (nothing
// replays) vs full archive replay from seq 0. Every durable run's
// output is compared against the in-memory baseline; a mismatch aborts
// the bench, so the numbers are only ever printed for correct runs.

#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/engine.h"
#include "bench_util.h"
#include "dur/archive.h"
#include "dur/codec.h"
#include "dur/manager.h"
#include "obs/trace.h"
#include "stream/generators.h"

namespace sqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

constexpr char kQuery[] =
    "select tb, protocol, count(*), sum(len) from packets "
    "group by ts/100 as tb, protocol";

std::string FreshDir() {
  std::string tmpl = "/tmp/sqp-bench-dur-XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  if (got == nullptr) {
    std::fprintf(stderr, "bench_durability: mkdtemp failed\n");
    std::exit(1);
  }
  return got;
}

/// Best-effort cleanup of the known archive tree (streams/*/segments,
/// ckpt/*). Leaves anything unexpected in place.
void RemoveTree(const std::string& root) {
  std::vector<std::string> streams;
  if (dur::ListDir(root + "/streams", &streams).ok()) {
    for (const std::string& s : streams) {
      const std::string dir = root + "/streams/" + s;
      std::vector<std::string> segs;
      if (dur::ListDir(dir, &segs).ok()) {
        for (const std::string& f : segs) ::unlink((dir + "/" + f).c_str());
      }
      ::rmdir(dir.c_str());
    }
    ::rmdir((root + "/streams").c_str());
  }
  std::vector<std::string> ckpts;
  if (dur::ListDir(root + "/ckpt", &ckpts).ok()) {
    for (const std::string& f : ckpts) {
      ::unlink((root + "/ckpt/" + f).c_str());
    }
    ::rmdir((root + "/ckpt").c_str());
  }
  ::rmdir(root.c_str());
}

uint64_t TreeBytes(const std::string& root) {
  uint64_t total = 0;
  std::vector<std::string> streams;
  if (dur::ListDir(root + "/streams", &streams).ok()) {
    for (const std::string& s : streams) {
      const std::string dir = root + "/streams/" + s;
      std::vector<std::string> segs;
      if (dur::ListDir(dir, &segs).ok()) {
        for (const std::string& f : segs) {
          struct stat st;
          if (::stat((dir + "/" + f).c_str(), &st) == 0) {
            total += static_cast<uint64_t>(st.st_size);
          }
        }
      }
    }
  }
  return total;
}

TupleRef Pkt(int i) {
  const int64_t ts = i;
  return MakeTuple(ts, {Value(ts), Value(int64_t{i % 7}),
                        Value(int64_t{i % 11}), Value(int64_t{i % 13}),
                        Value(int64_t{80}),
                        Value(int64_t{i % 2 == 0 ? 6 : 17}),
                        Value(int64_t{64 + i % 1400}), Value(int64_t{0}),
                        Value(int64_t{0}), Value("")});
}

struct RunResult {
  double secs = 0;
  size_t rows = 0;
  uint64_t archive_bytes = 0;
};

enum class Mode { kOff, kGroupCommit, kSyncAppend };

RunResult RunIngest(Mode mode, int tuples, const std::string& dir) {
  StreamEngine engine;
  (void)engine.RegisterStream("packets", gen::PacketSchema());
  auto q = engine.Submit(kQuery);
  if (!q.ok()) {
    std::fprintf(stderr, "bench_durability: submit failed: %s\n",
                 q.status().ToString().c_str());
    std::exit(1);
  }
  if (mode != Mode::kOff) {
    dur::DurabilityOptions opt;
    opt.flush_interval_ms = mode == Mode::kGroupCommit ? 5 : 0;
    opt.checkpoint_every = static_cast<uint64_t>(tuples) / 4;
    Status st = engine.EnableDurability(dir, opt);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_durability: enable failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  const uint64_t t0 = obs::NowNs();
  for (int i = 0; i < tuples; ++i) {
    (void)engine.Ingest("packets", Pkt(i));
  }
  engine.FinishAll();
  RunResult out;
  out.secs = static_cast<double>(obs::NowNs() - t0) / 1e9;
  out.rows = (*q)->result_count();
  if (mode != Mode::kOff) out.archive_bytes = TreeBytes(dir);
  return out;
}

struct RecoveryResult {
  double secs = 0;
  size_t rows = 0;
  uint64_t replayed = 0;
  size_t restored = 0;
};

RecoveryResult RunRecovery(const std::string& dir, bool use_checkpoint) {
  StreamEngine engine;
  (void)engine.RegisterStream("packets", gen::PacketSchema());
  auto q = engine.Submit(kQuery);
  if (!q.ok()) std::exit(1);
  dur::DurabilityOptions opt;
  opt.use_checkpoint = use_checkpoint;
  const uint64_t t0 = obs::NowNs();
  Status st = engine.EnableDurability(dir, opt);
  const double secs = static_cast<double>(obs::NowNs() - t0) / 1e9;
  if (!st.ok()) {
    std::fprintf(stderr, "bench_durability: recovery failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  const RecoveryReport& rep = engine.recovery_report();
  engine.FinishAll();
  RecoveryResult out;
  out.secs = secs;
  out.rows = (*q)->result_count();
  out.replayed = rep.replayed_tuples + rep.replayed_puncts;
  out.restored = rep.restored_queries;
  return out;
}

void PrintDurabilitySweep() {
  const int tuples = static_cast<int>(bench::Iters(1000000, 20000));

  const RunResult off = RunIngest(Mode::kOff, tuples, "");
  std::string group_dir = FreshDir();
  const RunResult group = RunIngest(Mode::kGroupCommit, tuples, group_dir);
  std::string sync_dir = FreshDir();
  const RunResult sync = RunIngest(Mode::kSyncAppend, tuples, sync_dir);

  if (group.rows != off.rows || sync.rows != off.rows) {
    std::fprintf(stderr,
                 "bench_durability: output mismatch: off=%zu group=%zu "
                 "sync=%zu rows\n",
                 off.rows, group.rows, sync.rows);
    std::exit(1);
  }

  Table table({"mode", "tuples", "tuples/s", "overhead", "archive_mb"});
  auto add = [&](const char* mode, const RunResult& r, bool baseline) {
    const double rate = static_cast<double>(tuples) / r.secs;
    table.AddRow({mode, FmtInt(static_cast<uint64_t>(tuples)),
                  FmtInt(static_cast<uint64_t>(rate)),
                  baseline ? std::string("baseline")
                           : Fmt((r.secs / off.secs - 1.0) * 100.0),
                  Fmt(static_cast<double>(r.archive_bytes) / (1 << 20))});
  };
  add("off", off, true);
  add("group-commit", group, false);
  add("sync-append", sync, false);
  table.Print("E21 durability: archive cost on the ingest path");

  // Recovery of the group-commit archive (its FinishAll sealed a final
  // checkpoint): restore-only vs full replay, both must reproduce the
  // live run's rows.
  const RecoveryResult ckpt = RunRecovery(group_dir, /*use_checkpoint=*/true);
  const RecoveryResult full = RunRecovery(group_dir, /*use_checkpoint=*/false);
  if (ckpt.rows != off.rows || full.rows != off.rows) {
    std::fprintf(stderr,
                 "bench_durability: recovery mismatch: live=%zu ckpt=%zu "
                 "full=%zu rows\n",
                 off.rows, ckpt.rows, full.rows);
    std::exit(1);
  }
  Table rec({"path", "replayed", "restored_queries", "seconds", "records/s"});
  rec.AddRow({"checkpoint restore", FmtInt(ckpt.replayed),
              FmtInt(ckpt.restored), Fmt(ckpt.secs), "-"});
  rec.AddRow({"full replay", FmtInt(full.replayed), FmtInt(full.restored),
              Fmt(full.secs),
              FmtInt(static_cast<uint64_t>(
                  static_cast<double>(full.replayed) / full.secs))});
  rec.Print("E21b recovery: checkpoint restore vs full archive replay");

  RemoveTree(group_dir);
  RemoveTree(sync_dir);
}

void BM_ArchiveAppend(benchmark::State& state) {
  std::string dir = FreshDir();
  obs::MetricsRegistry metrics;
  dur::DurabilityOptions opt;
  opt.flush_interval_ms = 1000;  // Measure the buffered append alone.
  dur::DurabilityManager mgr(dir, opt, &metrics);
  if (!mgr.Open().ok()) std::exit(1);
  Element e(Pkt(42));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Append("packets", e));
  }
  (void)mgr.Flush();
  state.SetItemsProcessed(state.iterations());
  RemoveTree(dir);
}
BENCHMARK(BM_ArchiveAppend);

void BM_FrameCrc(benchmark::State& state) {
  dur::BufWriter w;
  w.Elem(Element(Pkt(7)));
  const std::string& payload = w.data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dur::Crc32(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_FrameCrc);

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  sqp::bench::ParseBenchArgs(argc, argv);
  sqp::PrintDurabilitySweep();
  sqp::bench::RunMicrobenchmarks(argc, argv);
  return 0;
}
