
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/operator_test.cc" "tests/CMakeFiles/operator_test.dir/operator_test.cc.o" "gcc" "tests/CMakeFiles/operator_test.dir/operator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_shed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_cql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_hancock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
