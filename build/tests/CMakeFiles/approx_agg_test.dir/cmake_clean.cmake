file(REMOVE_RECURSE
  "CMakeFiles/approx_agg_test.dir/approx_agg_test.cc.o"
  "CMakeFiles/approx_agg_test.dir/approx_agg_test.cc.o.d"
  "approx_agg_test"
  "approx_agg_test.pdb"
  "approx_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
