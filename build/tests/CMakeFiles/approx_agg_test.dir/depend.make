# Empty dependencies file for approx_agg_test.
# This may be replaced when dependencies are built.
