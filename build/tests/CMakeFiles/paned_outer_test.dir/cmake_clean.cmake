file(REMOVE_RECURSE
  "CMakeFiles/paned_outer_test.dir/paned_outer_test.cc.o"
  "CMakeFiles/paned_outer_test.dir/paned_outer_test.cc.o.d"
  "paned_outer_test"
  "paned_outer_test.pdb"
  "paned_outer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paned_outer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
