# Empty dependencies file for paned_outer_test.
# This may be replaced when dependencies are built.
