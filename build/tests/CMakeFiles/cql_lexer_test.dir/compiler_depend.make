# Empty compiler generated dependencies file for cql_lexer_test.
# This may be replaced when dependencies are built.
