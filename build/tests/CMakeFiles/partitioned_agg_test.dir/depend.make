# Empty dependencies file for partitioned_agg_test.
# This may be replaced when dependencies are built.
