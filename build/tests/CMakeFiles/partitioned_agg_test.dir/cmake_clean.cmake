file(REMOVE_RECURSE
  "CMakeFiles/partitioned_agg_test.dir/partitioned_agg_test.cc.o"
  "CMakeFiles/partitioned_agg_test.dir/partitioned_agg_test.cc.o.d"
  "partitioned_agg_test"
  "partitioned_agg_test.pdb"
  "partitioned_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
