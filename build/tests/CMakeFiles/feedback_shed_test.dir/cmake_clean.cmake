file(REMOVE_RECURSE
  "CMakeFiles/feedback_shed_test.dir/feedback_shed_test.cc.o"
  "CMakeFiles/feedback_shed_test.dir/feedback_shed_test.cc.o.d"
  "feedback_shed_test"
  "feedback_shed_test.pdb"
  "feedback_shed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_shed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
