# Empty dependencies file for feedback_shed_test.
# This may be replaced when dependencies are built.
