file(REMOVE_RECURSE
  "CMakeFiles/cql_plan_test.dir/cql_plan_test.cc.o"
  "CMakeFiles/cql_plan_test.dir/cql_plan_test.cc.o.d"
  "cql_plan_test"
  "cql_plan_test.pdb"
  "cql_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
