# Empty dependencies file for cql_plan_test.
# This may be replaced when dependencies are built.
