file(REMOVE_RECURSE
  "CMakeFiles/window_agg_test.dir/window_agg_test.cc.o"
  "CMakeFiles/window_agg_test.dir/window_agg_test.cc.o.d"
  "window_agg_test"
  "window_agg_test.pdb"
  "window_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
