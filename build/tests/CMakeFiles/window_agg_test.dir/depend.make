# Empty dependencies file for window_agg_test.
# This may be replaced when dependencies are built.
