file(REMOVE_RECURSE
  "CMakeFiles/aggregate_op_test.dir/aggregate_op_test.cc.o"
  "CMakeFiles/aggregate_op_test.dir/aggregate_op_test.cc.o.d"
  "aggregate_op_test"
  "aggregate_op_test.pdb"
  "aggregate_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
