# Empty dependencies file for partial_agg_test.
# This may be replaced when dependencies are built.
