file(REMOVE_RECURSE
  "CMakeFiles/partial_agg_test.dir/partial_agg_test.cc.o"
  "CMakeFiles/partial_agg_test.dir/partial_agg_test.cc.o.d"
  "partial_agg_test"
  "partial_agg_test.pdb"
  "partial_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
