# Empty compiler generated dependencies file for cql_parser_test.
# This may be replaced when dependencies are built.
