# Empty dependencies file for streamify_test.
# This may be replaced when dependencies are built.
