file(REMOVE_RECURSE
  "CMakeFiles/streamify_test.dir/streamify_test.cc.o"
  "CMakeFiles/streamify_test.dir/streamify_test.cc.o.d"
  "streamify_test"
  "streamify_test.pdb"
  "streamify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
