file(REMOVE_RECURSE
  "CMakeFiles/hancock_test.dir/hancock_test.cc.o"
  "CMakeFiles/hancock_test.dir/hancock_test.cc.o.d"
  "hancock_test"
  "hancock_test.pdb"
  "hancock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hancock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
