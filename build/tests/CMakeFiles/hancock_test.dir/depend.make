# Empty dependencies file for hancock_test.
# This may be replaced when dependencies are built.
