
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hancock/program.cc" "src/CMakeFiles/sqp_hancock.dir/hancock/program.cc.o" "gcc" "src/CMakeFiles/sqp_hancock.dir/hancock/program.cc.o.d"
  "/root/repo/src/hancock/signature.cc" "src/CMakeFiles/sqp_hancock.dir/hancock/signature.cc.o" "gcc" "src/CMakeFiles/sqp_hancock.dir/hancock/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
