file(REMOVE_RECURSE
  "libsqp_hancock.a"
)
