file(REMOVE_RECURSE
  "CMakeFiles/sqp_hancock.dir/hancock/program.cc.o"
  "CMakeFiles/sqp_hancock.dir/hancock/program.cc.o.d"
  "CMakeFiles/sqp_hancock.dir/hancock/signature.cc.o"
  "CMakeFiles/sqp_hancock.dir/hancock/signature.cc.o.d"
  "libsqp_hancock.a"
  "libsqp_hancock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_hancock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
