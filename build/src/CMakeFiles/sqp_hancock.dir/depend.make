# Empty dependencies file for sqp_hancock.
# This may be replaced when dependencies are built.
