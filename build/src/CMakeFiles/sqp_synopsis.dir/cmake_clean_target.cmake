file(REMOVE_RECURSE
  "libsqp_synopsis.a"
)
