
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synopsis/ams.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/ams.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/ams.cc.o.d"
  "/root/repo/src/synopsis/count_min.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/count_min.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/count_min.cc.o.d"
  "/root/repo/src/synopsis/distinct.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/distinct.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/distinct.cc.o.d"
  "/root/repo/src/synopsis/exp_histogram.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/exp_histogram.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/exp_histogram.cc.o.d"
  "/root/repo/src/synopsis/gk_quantile.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/gk_quantile.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/gk_quantile.cc.o.d"
  "/root/repo/src/synopsis/histogram.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/histogram.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/histogram.cc.o.d"
  "/root/repo/src/synopsis/misra_gries.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/misra_gries.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/misra_gries.cc.o.d"
  "/root/repo/src/synopsis/reservoir.cc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/reservoir.cc.o" "gcc" "src/CMakeFiles/sqp_synopsis.dir/synopsis/reservoir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
