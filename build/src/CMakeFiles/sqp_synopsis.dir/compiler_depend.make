# Empty compiler generated dependencies file for sqp_synopsis.
# This may be replaced when dependencies are built.
