file(REMOVE_RECURSE
  "CMakeFiles/sqp_synopsis.dir/synopsis/ams.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/ams.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/count_min.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/count_min.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/distinct.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/distinct.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/exp_histogram.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/exp_histogram.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/gk_quantile.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/gk_quantile.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/histogram.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/histogram.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/misra_gries.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/misra_gries.cc.o.d"
  "CMakeFiles/sqp_synopsis.dir/synopsis/reservoir.cc.o"
  "CMakeFiles/sqp_synopsis.dir/synopsis/reservoir.cc.o.d"
  "libsqp_synopsis.a"
  "libsqp_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
