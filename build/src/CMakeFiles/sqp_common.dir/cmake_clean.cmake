file(REMOVE_RECURSE
  "CMakeFiles/sqp_common.dir/common/rng.cc.o"
  "CMakeFiles/sqp_common.dir/common/rng.cc.o.d"
  "CMakeFiles/sqp_common.dir/common/schema.cc.o"
  "CMakeFiles/sqp_common.dir/common/schema.cc.o.d"
  "CMakeFiles/sqp_common.dir/common/status.cc.o"
  "CMakeFiles/sqp_common.dir/common/status.cc.o.d"
  "CMakeFiles/sqp_common.dir/common/strings.cc.o"
  "CMakeFiles/sqp_common.dir/common/strings.cc.o.d"
  "CMakeFiles/sqp_common.dir/common/tuple.cc.o"
  "CMakeFiles/sqp_common.dir/common/tuple.cc.o.d"
  "CMakeFiles/sqp_common.dir/common/value.cc.o"
  "CMakeFiles/sqp_common.dir/common/value.cc.o.d"
  "libsqp_common.a"
  "libsqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
