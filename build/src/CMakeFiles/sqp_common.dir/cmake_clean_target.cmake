file(REMOVE_RECURSE
  "libsqp_common.a"
)
