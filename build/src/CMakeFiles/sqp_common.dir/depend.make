# Empty dependencies file for sqp_common.
# This may be replaced when dependencies are built.
