
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cql/analyzer.cc" "src/CMakeFiles/sqp_cql.dir/cql/analyzer.cc.o" "gcc" "src/CMakeFiles/sqp_cql.dir/cql/analyzer.cc.o.d"
  "/root/repo/src/cql/ast.cc" "src/CMakeFiles/sqp_cql.dir/cql/ast.cc.o" "gcc" "src/CMakeFiles/sqp_cql.dir/cql/ast.cc.o.d"
  "/root/repo/src/cql/lexer.cc" "src/CMakeFiles/sqp_cql.dir/cql/lexer.cc.o" "gcc" "src/CMakeFiles/sqp_cql.dir/cql/lexer.cc.o.d"
  "/root/repo/src/cql/parser.cc" "src/CMakeFiles/sqp_cql.dir/cql/parser.cc.o" "gcc" "src/CMakeFiles/sqp_cql.dir/cql/parser.cc.o.d"
  "/root/repo/src/cql/planner.cc" "src/CMakeFiles/sqp_cql.dir/cql/planner.cc.o" "gcc" "src/CMakeFiles/sqp_cql.dir/cql/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
