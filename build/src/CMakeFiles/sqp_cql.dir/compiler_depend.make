# Empty compiler generated dependencies file for sqp_cql.
# This may be replaced when dependencies are built.
