file(REMOVE_RECURSE
  "libsqp_cql.a"
)
