file(REMOVE_RECURSE
  "CMakeFiles/sqp_cql.dir/cql/analyzer.cc.o"
  "CMakeFiles/sqp_cql.dir/cql/analyzer.cc.o.d"
  "CMakeFiles/sqp_cql.dir/cql/ast.cc.o"
  "CMakeFiles/sqp_cql.dir/cql/ast.cc.o.d"
  "CMakeFiles/sqp_cql.dir/cql/lexer.cc.o"
  "CMakeFiles/sqp_cql.dir/cql/lexer.cc.o.d"
  "CMakeFiles/sqp_cql.dir/cql/parser.cc.o"
  "CMakeFiles/sqp_cql.dir/cql/parser.cc.o.d"
  "CMakeFiles/sqp_cql.dir/cql/planner.cc.o"
  "CMakeFiles/sqp_cql.dir/cql/planner.cc.o.d"
  "libsqp_cql.a"
  "libsqp_cql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_cql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
