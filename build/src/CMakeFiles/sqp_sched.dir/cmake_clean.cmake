file(REMOVE_RECURSE
  "CMakeFiles/sqp_sched.dir/sched/policies.cc.o"
  "CMakeFiles/sqp_sched.dir/sched/policies.cc.o.d"
  "CMakeFiles/sqp_sched.dir/sched/queued_executor.cc.o"
  "CMakeFiles/sqp_sched.dir/sched/queued_executor.cc.o.d"
  "CMakeFiles/sqp_sched.dir/sched/sim.cc.o"
  "CMakeFiles/sqp_sched.dir/sched/sim.cc.o.d"
  "libsqp_sched.a"
  "libsqp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
