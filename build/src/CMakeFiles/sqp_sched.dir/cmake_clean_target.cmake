file(REMOVE_RECURSE
  "libsqp_sched.a"
)
