# Empty compiler generated dependencies file for sqp_sched.
# This may be replaced when dependencies are built.
