# Empty dependencies file for sqp_sched.
# This may be replaced when dependencies are built.
