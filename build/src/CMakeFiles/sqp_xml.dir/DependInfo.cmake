
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/doc_gen.cc" "src/CMakeFiles/sqp_xml.dir/xml/doc_gen.cc.o" "gcc" "src/CMakeFiles/sqp_xml.dir/xml/doc_gen.cc.o.d"
  "/root/repo/src/xml/filter.cc" "src/CMakeFiles/sqp_xml.dir/xml/filter.cc.o" "gcc" "src/CMakeFiles/sqp_xml.dir/xml/filter.cc.o.d"
  "/root/repo/src/xml/xml_event.cc" "src/CMakeFiles/sqp_xml.dir/xml/xml_event.cc.o" "gcc" "src/CMakeFiles/sqp_xml.dir/xml/xml_event.cc.o.d"
  "/root/repo/src/xml/xpath.cc" "src/CMakeFiles/sqp_xml.dir/xml/xpath.cc.o" "gcc" "src/CMakeFiles/sqp_xml.dir/xml/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
