# Empty compiler generated dependencies file for sqp_xml.
# This may be replaced when dependencies are built.
