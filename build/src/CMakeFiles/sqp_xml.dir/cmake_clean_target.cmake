file(REMOVE_RECURSE
  "libsqp_xml.a"
)
