file(REMOVE_RECURSE
  "CMakeFiles/sqp_xml.dir/xml/doc_gen.cc.o"
  "CMakeFiles/sqp_xml.dir/xml/doc_gen.cc.o.d"
  "CMakeFiles/sqp_xml.dir/xml/filter.cc.o"
  "CMakeFiles/sqp_xml.dir/xml/filter.cc.o.d"
  "CMakeFiles/sqp_xml.dir/xml/xml_event.cc.o"
  "CMakeFiles/sqp_xml.dir/xml/xml_event.cc.o.d"
  "CMakeFiles/sqp_xml.dir/xml/xpath.cc.o"
  "CMakeFiles/sqp_xml.dir/xml/xpath.cc.o.d"
  "libsqp_xml.a"
  "libsqp_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
