# Empty dependencies file for sqp_window.
# This may be replaced when dependencies are built.
