file(REMOVE_RECURSE
  "CMakeFiles/sqp_window.dir/window/count_window.cc.o"
  "CMakeFiles/sqp_window.dir/window/count_window.cc.o.d"
  "CMakeFiles/sqp_window.dir/window/partitioned_window.cc.o"
  "CMakeFiles/sqp_window.dir/window/partitioned_window.cc.o.d"
  "CMakeFiles/sqp_window.dir/window/punctuation_window.cc.o"
  "CMakeFiles/sqp_window.dir/window/punctuation_window.cc.o.d"
  "CMakeFiles/sqp_window.dir/window/time_window.cc.o"
  "CMakeFiles/sqp_window.dir/window/time_window.cc.o.d"
  "CMakeFiles/sqp_window.dir/window/window_spec.cc.o"
  "CMakeFiles/sqp_window.dir/window/window_spec.cc.o.d"
  "libsqp_window.a"
  "libsqp_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
