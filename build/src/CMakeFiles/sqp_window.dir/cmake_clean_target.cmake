file(REMOVE_RECURSE
  "libsqp_window.a"
)
