
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/window/count_window.cc" "src/CMakeFiles/sqp_window.dir/window/count_window.cc.o" "gcc" "src/CMakeFiles/sqp_window.dir/window/count_window.cc.o.d"
  "/root/repo/src/window/partitioned_window.cc" "src/CMakeFiles/sqp_window.dir/window/partitioned_window.cc.o" "gcc" "src/CMakeFiles/sqp_window.dir/window/partitioned_window.cc.o.d"
  "/root/repo/src/window/punctuation_window.cc" "src/CMakeFiles/sqp_window.dir/window/punctuation_window.cc.o" "gcc" "src/CMakeFiles/sqp_window.dir/window/punctuation_window.cc.o.d"
  "/root/repo/src/window/time_window.cc" "src/CMakeFiles/sqp_window.dir/window/time_window.cc.o" "gcc" "src/CMakeFiles/sqp_window.dir/window/time_window.cc.o.d"
  "/root/repo/src/window/window_spec.cc" "src/CMakeFiles/sqp_window.dir/window/window_spec.cc.o" "gcc" "src/CMakeFiles/sqp_window.dir/window/window_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
