file(REMOVE_RECURSE
  "CMakeFiles/sqp_stream.dir/stream/arrival.cc.o"
  "CMakeFiles/sqp_stream.dir/stream/arrival.cc.o.d"
  "CMakeFiles/sqp_stream.dir/stream/element.cc.o"
  "CMakeFiles/sqp_stream.dir/stream/element.cc.o.d"
  "CMakeFiles/sqp_stream.dir/stream/generators.cc.o"
  "CMakeFiles/sqp_stream.dir/stream/generators.cc.o.d"
  "CMakeFiles/sqp_stream.dir/stream/queue.cc.o"
  "CMakeFiles/sqp_stream.dir/stream/queue.cc.o.d"
  "libsqp_stream.a"
  "libsqp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
