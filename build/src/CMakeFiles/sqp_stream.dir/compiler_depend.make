# Empty compiler generated dependencies file for sqp_stream.
# This may be replaced when dependencies are built.
