
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/arrival.cc" "src/CMakeFiles/sqp_stream.dir/stream/arrival.cc.o" "gcc" "src/CMakeFiles/sqp_stream.dir/stream/arrival.cc.o.d"
  "/root/repo/src/stream/element.cc" "src/CMakeFiles/sqp_stream.dir/stream/element.cc.o" "gcc" "src/CMakeFiles/sqp_stream.dir/stream/element.cc.o.d"
  "/root/repo/src/stream/generators.cc" "src/CMakeFiles/sqp_stream.dir/stream/generators.cc.o" "gcc" "src/CMakeFiles/sqp_stream.dir/stream/generators.cc.o.d"
  "/root/repo/src/stream/queue.cc" "src/CMakeFiles/sqp_stream.dir/stream/queue.cc.o" "gcc" "src/CMakeFiles/sqp_stream.dir/stream/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
