file(REMOVE_RECURSE
  "libsqp_stream.a"
)
