# Empty dependencies file for sqp_opt.
# This may be replaced when dependencies are built.
