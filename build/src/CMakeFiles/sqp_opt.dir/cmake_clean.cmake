file(REMOVE_RECURSE
  "CMakeFiles/sqp_opt.dir/opt/memory_bound.cc.o"
  "CMakeFiles/sqp_opt.dir/opt/memory_bound.cc.o.d"
  "CMakeFiles/sqp_opt.dir/opt/rate_model.cc.o"
  "CMakeFiles/sqp_opt.dir/opt/rate_model.cc.o.d"
  "CMakeFiles/sqp_opt.dir/opt/rate_optimizer.cc.o"
  "CMakeFiles/sqp_opt.dir/opt/rate_optimizer.cc.o.d"
  "CMakeFiles/sqp_opt.dir/opt/sharing.cc.o"
  "CMakeFiles/sqp_opt.dir/opt/sharing.cc.o.d"
  "libsqp_opt.a"
  "libsqp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
