file(REMOVE_RECURSE
  "libsqp_opt.a"
)
