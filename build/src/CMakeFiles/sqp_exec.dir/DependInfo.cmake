
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate_op.cc" "src/CMakeFiles/sqp_exec.dir/exec/aggregate_op.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/aggregate_op.cc.o.d"
  "/root/repo/src/exec/eddy.cc" "src/CMakeFiles/sqp_exec.dir/exec/eddy.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/eddy.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/sqp_exec.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "src/CMakeFiles/sqp_exec.dir/exec/merge_join.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/merge_join.cc.o.d"
  "/root/repo/src/exec/mjoin.cc" "src/CMakeFiles/sqp_exec.dir/exec/mjoin.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/mjoin.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/sqp_exec.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/paned_window_agg.cc" "src/CMakeFiles/sqp_exec.dir/exec/paned_window_agg.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/paned_window_agg.cc.o.d"
  "/root/repo/src/exec/partitioned_window_agg.cc" "src/CMakeFiles/sqp_exec.dir/exec/partitioned_window_agg.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/partitioned_window_agg.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/CMakeFiles/sqp_exec.dir/exec/plan.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/plan.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/sqp_exec.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/punct_groupby.cc" "src/CMakeFiles/sqp_exec.dir/exec/punct_groupby.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/punct_groupby.cc.o.d"
  "/root/repo/src/exec/reorder.cc" "src/CMakeFiles/sqp_exec.dir/exec/reorder.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/reorder.cc.o.d"
  "/root/repo/src/exec/select.cc" "src/CMakeFiles/sqp_exec.dir/exec/select.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/select.cc.o.d"
  "/root/repo/src/exec/streamify.cc" "src/CMakeFiles/sqp_exec.dir/exec/streamify.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/streamify.cc.o.d"
  "/root/repo/src/exec/sym_hash_join.cc" "src/CMakeFiles/sqp_exec.dir/exec/sym_hash_join.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/sym_hash_join.cc.o.d"
  "/root/repo/src/exec/union.cc" "src/CMakeFiles/sqp_exec.dir/exec/union.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/union.cc.o.d"
  "/root/repo/src/exec/window_agg.cc" "src/CMakeFiles/sqp_exec.dir/exec/window_agg.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/window_agg.cc.o.d"
  "/root/repo/src/exec/window_join.cc" "src/CMakeFiles/sqp_exec.dir/exec/window_join.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/window_join.cc.o.d"
  "/root/repo/src/exec/xjoin.cc" "src/CMakeFiles/sqp_exec.dir/exec/xjoin.cc.o" "gcc" "src/CMakeFiles/sqp_exec.dir/exec/xjoin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_window.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
