file(REMOVE_RECURSE
  "libsqp_exec.a"
)
