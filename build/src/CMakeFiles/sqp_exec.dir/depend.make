# Empty dependencies file for sqp_exec.
# This may be replaced when dependencies are built.
