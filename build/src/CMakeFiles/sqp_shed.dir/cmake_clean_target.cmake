file(REMOVE_RECURSE
  "libsqp_shed.a"
)
