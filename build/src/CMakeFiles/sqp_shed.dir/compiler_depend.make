# Empty compiler generated dependencies file for sqp_shed.
# This may be replaced when dependencies are built.
