file(REMOVE_RECURSE
  "CMakeFiles/sqp_shed.dir/shed/feedback_shedder.cc.o"
  "CMakeFiles/sqp_shed.dir/shed/feedback_shedder.cc.o.d"
  "CMakeFiles/sqp_shed.dir/shed/load_shedder.cc.o"
  "CMakeFiles/sqp_shed.dir/shed/load_shedder.cc.o.d"
  "CMakeFiles/sqp_shed.dir/shed/qos.cc.o"
  "CMakeFiles/sqp_shed.dir/shed/qos.cc.o.d"
  "CMakeFiles/sqp_shed.dir/shed/shed_planner.cc.o"
  "CMakeFiles/sqp_shed.dir/shed/shed_planner.cc.o.d"
  "libsqp_shed.a"
  "libsqp_shed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_shed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
