# Empty compiler generated dependencies file for sqp_arch.
# This may be replaced when dependencies are built.
