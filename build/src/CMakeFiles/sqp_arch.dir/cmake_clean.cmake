file(REMOVE_RECURSE
  "CMakeFiles/sqp_arch.dir/arch/cql_decompose.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/cql_decompose.cc.o.d"
  "CMakeFiles/sqp_arch.dir/arch/db_sink.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/db_sink.cc.o.d"
  "CMakeFiles/sqp_arch.dir/arch/decompose.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/decompose.cc.o.d"
  "CMakeFiles/sqp_arch.dir/arch/engine.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/engine.cc.o.d"
  "CMakeFiles/sqp_arch.dir/arch/node.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/node.cc.o.d"
  "CMakeFiles/sqp_arch.dir/arch/system.cc.o"
  "CMakeFiles/sqp_arch.dir/arch/system.cc.o.d"
  "libsqp_arch.a"
  "libsqp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
