file(REMOVE_RECURSE
  "libsqp_arch.a"
)
