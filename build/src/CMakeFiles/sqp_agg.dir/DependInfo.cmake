
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/aggregate_fn.cc" "src/CMakeFiles/sqp_agg.dir/agg/aggregate_fn.cc.o" "gcc" "src/CMakeFiles/sqp_agg.dir/agg/aggregate_fn.cc.o.d"
  "/root/repo/src/agg/partial_agg.cc" "src/CMakeFiles/sqp_agg.dir/agg/partial_agg.cc.o" "gcc" "src/CMakeFiles/sqp_agg.dir/agg/partial_agg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqp_synopsis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
