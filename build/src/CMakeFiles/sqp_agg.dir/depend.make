# Empty dependencies file for sqp_agg.
# This may be replaced when dependencies are built.
