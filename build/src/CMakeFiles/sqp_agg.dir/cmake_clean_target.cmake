file(REMOVE_RECURSE
  "libsqp_agg.a"
)
