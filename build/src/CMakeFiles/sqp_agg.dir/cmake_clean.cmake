file(REMOVE_RECURSE
  "CMakeFiles/sqp_agg.dir/agg/aggregate_fn.cc.o"
  "CMakeFiles/sqp_agg.dir/agg/aggregate_fn.cc.o.d"
  "CMakeFiles/sqp_agg.dir/agg/partial_agg.cc.o"
  "CMakeFiles/sqp_agg.dir/agg/partial_agg.cc.o.d"
  "libsqp_agg.a"
  "libsqp_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqp_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
