# Empty dependencies file for rtt_monitor.
# This may be replaced when dependencies are built.
