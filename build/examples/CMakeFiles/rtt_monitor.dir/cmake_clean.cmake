file(REMOVE_RECURSE
  "CMakeFiles/rtt_monitor.dir/rtt_monitor.cpp.o"
  "CMakeFiles/rtt_monitor.dir/rtt_monitor.cpp.o.d"
  "rtt_monitor"
  "rtt_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
