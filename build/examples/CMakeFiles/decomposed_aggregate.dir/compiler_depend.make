# Empty compiler generated dependencies file for decomposed_aggregate.
# This may be replaced when dependencies are built.
