file(REMOVE_RECURSE
  "CMakeFiles/decomposed_aggregate.dir/decomposed_aggregate.cpp.o"
  "CMakeFiles/decomposed_aggregate.dir/decomposed_aggregate.cpp.o.d"
  "decomposed_aggregate"
  "decomposed_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposed_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
