# Empty dependencies file for p2p_detection.
# This may be replaced when dependencies are built.
