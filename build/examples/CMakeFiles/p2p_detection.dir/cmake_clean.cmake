file(REMOVE_RECURSE
  "CMakeFiles/p2p_detection.dir/p2p_detection.cpp.o"
  "CMakeFiles/p2p_detection.dir/p2p_detection.cpp.o.d"
  "p2p_detection"
  "p2p_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
