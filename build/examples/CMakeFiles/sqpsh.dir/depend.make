# Empty dependencies file for sqpsh.
# This may be replaced when dependencies are built.
