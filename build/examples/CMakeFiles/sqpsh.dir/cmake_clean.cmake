file(REMOVE_RECURSE
  "CMakeFiles/sqpsh.dir/sqpsh.cpp.o"
  "CMakeFiles/sqpsh.dir/sqpsh.cpp.o.d"
  "sqpsh"
  "sqpsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqpsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
