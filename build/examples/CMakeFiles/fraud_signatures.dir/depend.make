# Empty dependencies file for fraud_signatures.
# This may be replaced when dependencies are built.
