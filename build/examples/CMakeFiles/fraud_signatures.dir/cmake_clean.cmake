file(REMOVE_RECURSE
  "CMakeFiles/fraud_signatures.dir/fraud_signatures.cpp.o"
  "CMakeFiles/fraud_signatures.dir/fraud_signatures.cpp.o.d"
  "fraud_signatures"
  "fraud_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
