# Empty dependencies file for cql_demo.
# This may be replaced when dependencies are built.
