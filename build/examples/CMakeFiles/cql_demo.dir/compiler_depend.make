# Empty compiler generated dependencies file for cql_demo.
# This may be replaced when dependencies are built.
