file(REMOVE_RECURSE
  "CMakeFiles/cql_demo.dir/cql_demo.cpp.o"
  "CMakeFiles/cql_demo.dir/cql_demo.cpp.o.d"
  "cql_demo"
  "cql_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
