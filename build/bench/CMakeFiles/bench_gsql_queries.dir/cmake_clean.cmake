file(REMOVE_RECURSE
  "CMakeFiles/bench_gsql_queries.dir/bench_gsql_queries.cc.o"
  "CMakeFiles/bench_gsql_queries.dir/bench_gsql_queries.cc.o.d"
  "bench_gsql_queries"
  "bench_gsql_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gsql_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
