# Empty compiler generated dependencies file for bench_gsql_queries.
# This may be replaced when dependencies are built.
