# Empty dependencies file for bench_chain_sched.
# This may be replaced when dependencies are built.
