file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_sched.dir/bench_chain_sched.cc.o"
  "CMakeFiles/bench_chain_sched.dir/bench_chain_sched.cc.o.d"
  "bench_chain_sched"
  "bench_chain_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
