file(REMOVE_RECURSE
  "CMakeFiles/bench_window_join.dir/bench_window_join.cc.o"
  "CMakeFiles/bench_window_join.dir/bench_window_join.cc.o.d"
  "bench_window_join"
  "bench_window_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
