# Empty compiler generated dependencies file for bench_window_join.
# This may be replaced when dependencies are built.
