# Empty dependencies file for bench_partial_agg.
# This may be replaced when dependencies are built.
