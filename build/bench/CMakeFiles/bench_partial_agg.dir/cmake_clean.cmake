file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_agg.dir/bench_partial_agg.cc.o"
  "CMakeFiles/bench_partial_agg.dir/bench_partial_agg.cc.o.d"
  "bench_partial_agg"
  "bench_partial_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
