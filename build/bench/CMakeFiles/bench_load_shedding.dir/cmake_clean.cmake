file(REMOVE_RECURSE
  "CMakeFiles/bench_load_shedding.dir/bench_load_shedding.cc.o"
  "CMakeFiles/bench_load_shedding.dir/bench_load_shedding.cc.o.d"
  "bench_load_shedding"
  "bench_load_shedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
