# Empty dependencies file for bench_load_shedding.
# This may be replaced when dependencies are built.
