file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_opt.dir/bench_rate_opt.cc.o"
  "CMakeFiles/bench_rate_opt.dir/bench_rate_opt.cc.o.d"
  "bench_rate_opt"
  "bench_rate_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
