# Empty compiler generated dependencies file for bench_rate_opt.
# This may be replaced when dependencies are built.
