# Empty compiler generated dependencies file for bench_systems_matrix.
# This may be replaced when dependencies are built.
