file(REMOVE_RECURSE
  "CMakeFiles/bench_systems_matrix.dir/bench_systems_matrix.cc.o"
  "CMakeFiles/bench_systems_matrix.dir/bench_systems_matrix.cc.o.d"
  "bench_systems_matrix"
  "bench_systems_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_systems_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
