file(REMOVE_RECURSE
  "CMakeFiles/bench_xml_filter.dir/bench_xml_filter.cc.o"
  "CMakeFiles/bench_xml_filter.dir/bench_xml_filter.cc.o.d"
  "bench_xml_filter"
  "bench_xml_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
