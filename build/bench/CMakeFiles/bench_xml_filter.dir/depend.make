# Empty dependencies file for bench_xml_filter.
# This may be replaced when dependencies are built.
