file(REMOVE_RECURSE
  "CMakeFiles/bench_synopses.dir/bench_synopses.cc.o"
  "CMakeFiles/bench_synopses.dir/bench_synopses.cc.o.d"
  "bench_synopses"
  "bench_synopses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synopses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
