#ifndef SQP_AGG_PARTIAL_AGG_H_
#define SQP_AGG_PARTIAL_AGG_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "agg/aggregate_fn.h"
#include "common/tuple.h"

namespace sqp {

/// One aggregate expression inside a GROUP BY: `kind(input_col)`.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  /// Input column; -1 for count(*).
  int input_col = -1;
  /// Blend factor for kBlend.
  double param = 0.5;
};

/// A group's partial state flowing from the low level to the high level.
struct PartialGroup {
  Key key;
  std::vector<std::unique_ptr<Accumulator>> accs;
};

/// Counters for the partial-aggregation experiments (E5).
struct PartialAggStats {
  uint64_t tuples_in = 0;
  /// Groups emitted early because their slot was stolen (collision).
  uint64_t evictions = 0;
  /// Groups emitted at flush.
  uint64_t flushed = 0;
};

/// Gigascope's low-level partial aggregation (slide 37).
///
/// The low level (inside the NIC driver, in the real system) can afford
/// only a fixed number of group slots. Groups hash into a direct-mapped
/// table; a colliding new group evicts the resident group, which is
/// emitted downstream as a *partial* aggregate. The high level
/// (`FinalAggregator`) merges partials, so results are exact while the
/// low level runs in constant memory and constant per-tuple time — the
/// property that "reduces drops".
class PartialAggregator {
 public:
  /// `slots == 0` means unbounded (degenerates to a full hash aggregate).
  PartialAggregator(size_t slots, std::vector<int> key_cols,
                    std::vector<AggSpec> aggs);

  /// Folds one tuple in. Evicted partial groups are appended to `out`.
  void Add(const Tuple& t, std::vector<PartialGroup>* out);

  /// Emits all resident groups (end of time bucket / end of stream).
  void Flush(std::vector<PartialGroup>* out);

  const PartialAggStats& stats() const { return stats_; }
  size_t resident_groups() const;
  size_t MemoryBytes() const;

 private:
  struct Slot {
    bool occupied = false;
    PartialGroup group;
  };

  PartialGroup NewGroup(Key key) const;
  void FoldInto(PartialGroup& g, const Tuple& t) const;

  size_t slots_;
  std::vector<int> key_cols_;
  std::vector<AggSpec> agg_specs_;
  std::vector<AggregateFunction> fns_;
  // Fixed table when slots_ > 0; unbounded map otherwise.
  std::vector<Slot> table_;
  std::unordered_map<Key, PartialGroup, KeyHash> unbounded_;
  PartialAggStats stats_;
};

/// High-level merger of partial groups; holds the exact final answer.
class FinalAggregator {
 public:
  explicit FinalAggregator(std::vector<AggSpec> aggs);

  void Merge(PartialGroup group);

  /// Final (key, aggregate values) rows.
  std::vector<std::pair<Key, std::vector<Value>>> Results() const;

  size_t num_groups() const { return groups_.size(); }

 private:
  std::vector<AggSpec> agg_specs_;
  std::unordered_map<Key, std::vector<std::unique_ptr<Accumulator>>, KeyHash>
      groups_;
};

}  // namespace sqp

#endif  // SQP_AGG_PARTIAL_AGG_H_
