#include "agg/partial_agg.h"

#include <cassert>

namespace sqp {

namespace {

std::vector<AggregateFunction> MakeFns(const std::vector<AggSpec>& specs) {
  std::vector<AggregateFunction> fns;
  fns.reserve(specs.size());
  for (const AggSpec& s : specs) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns.push_back(std::move(fn.value()));
  }
  return fns;
}

}  // namespace

PartialAggregator::PartialAggregator(size_t slots, std::vector<int> key_cols,
                                     std::vector<AggSpec> aggs)
    : slots_(slots),
      key_cols_(std::move(key_cols)),
      agg_specs_(std::move(aggs)),
      fns_(MakeFns(agg_specs_)) {
  if (slots_ > 0) table_.resize(slots_);
}

PartialGroup PartialAggregator::NewGroup(Key key) const {
  PartialGroup g;
  g.key = std::move(key);
  g.accs.reserve(fns_.size());
  for (const AggregateFunction& fn : fns_) g.accs.push_back(fn.NewAccumulator());
  return g;
}

void PartialAggregator::FoldInto(PartialGroup& g, const Tuple& t) const {
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    const AggSpec& s = agg_specs_[i];
    // count(*) feeds a constant; others read their input column.
    if (s.input_col < 0) {
      g.accs[i]->Add(Value(int64_t{1}));
    } else {
      g.accs[i]->Add(t.at(static_cast<size_t>(s.input_col)));
    }
  }
}

void PartialAggregator::Add(const Tuple& t, std::vector<PartialGroup>* out) {
  ++stats_.tuples_in;
  Key key = ExtractKey(t, key_cols_);

  if (slots_ == 0) {
    auto it = unbounded_.find(key);
    if (it == unbounded_.end()) {
      it = unbounded_.emplace(key, NewGroup(key)).first;
    }
    FoldInto(it->second, t);
    return;
  }

  size_t idx = KeyHash()(key) % slots_;
  Slot& slot = table_[idx];
  if (slot.occupied && !(slot.group.key == key)) {
    // Collision: evict the resident group as a partial result.
    ++stats_.evictions;
    out->push_back(std::move(slot.group));
    slot.occupied = false;
  }
  if (!slot.occupied) {
    slot.group = NewGroup(std::move(key));
    slot.occupied = true;
  }
  FoldInto(slot.group, t);
}

void PartialAggregator::Flush(std::vector<PartialGroup>* out) {
  if (slots_ == 0) {
    for (auto& [key, group] : unbounded_) {
      ++stats_.flushed;
      out->push_back(std::move(group));
    }
    unbounded_.clear();
    return;
  }
  for (Slot& slot : table_) {
    if (slot.occupied) {
      ++stats_.flushed;
      out->push_back(std::move(slot.group));
      slot.occupied = false;
    }
  }
}

size_t PartialAggregator::resident_groups() const {
  if (slots_ == 0) return unbounded_.size();
  size_t n = 0;
  for (const Slot& s : table_) n += s.occupied ? 1 : 0;
  return n;
}

size_t PartialAggregator::MemoryBytes() const {
  size_t bytes = sizeof(*this) + table_.capacity() * sizeof(Slot);
  auto group_bytes = [](const PartialGroup& g) {
    size_t b = 0;
    for (const Value& v : g.key.parts) b += v.MemoryBytes();
    for (const auto& a : g.accs) b += a->MemoryBytes();
    return b;
  };
  for (const Slot& s : table_) {
    if (s.occupied) bytes += group_bytes(s.group);
  }
  for (const auto& [key, group] : unbounded_) {
    bytes += group_bytes(group) + sizeof(Key);
  }
  return bytes;
}

FinalAggregator::FinalAggregator(std::vector<AggSpec> aggs)
    : agg_specs_(std::move(aggs)) {}

void FinalAggregator::Merge(PartialGroup group) {
  auto it = groups_.find(group.key);
  if (it == groups_.end()) {
    groups_.emplace(std::move(group.key), std::move(group.accs));
    return;
  }
  for (size_t i = 0; i < it->second.size(); ++i) {
    it->second[i]->Merge(*group.accs[i]);
  }
}

std::vector<std::pair<Key, std::vector<Value>>> FinalAggregator::Results()
    const {
  std::vector<std::pair<Key, std::vector<Value>>> out;
  out.reserve(groups_.size());
  for (const auto& [key, accs] : groups_) {
    std::vector<Value> vals;
    vals.reserve(accs.size());
    for (const auto& a : accs) vals.push_back(a->Result());
    out.emplace_back(key, std::move(vals));
  }
  return out;
}

}  // namespace sqp
