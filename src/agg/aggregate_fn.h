#ifndef SQP_AGG_AGGREGATE_FN_H_
#define SQP_AGG_AGGREGATE_FN_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "dur/codec.h"

namespace sqp {

/// Aggregate expressions supported by the engine (slide 34).
enum class AggKind {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kStddev,
  kMedian,         // holistic
  kCountDistinct,  // holistic
  kFirst,
  kLast,
  kBlend,  ///< Hancock's exponential blend: sig = a*x + (1-a)*sig (slide 8)
  /// Sketch-backed approximations of the holistic aggregates (slide 38:
  /// "use summary structures" when exact computation needs unbounded
  /// storage). Bounded state, mergeable.
  kApproxMedian,         ///< Greenwald-Khanna quantile summary.
  kApproxCountDistinct,  ///< HyperLogLog.
};

/// The classification that drives bounded-memory analysis [ABB+02]:
/// distributive and algebraic aggregates need O(1) state per group;
/// holistic ones need state proportional to the data; sketched ones
/// trade a bounded error for bounded state (slide 38).
enum class AggClass { kDistributive, kAlgebraic, kHolistic, kSketched };

AggClass ClassOf(AggKind kind);
const char* AggKindName(AggKind kind);
/// Parses "count", "sum", "count_distinct"/"count(distinct"... style names.
Result<AggKind> ParseAggKind(const std::string& name);

/// Incremental aggregate state for one group.
///
/// `Remove` supports sliding-window maintenance and is only available when
/// `invertible()` (count/sum/avg/stddev); min/max/median require buffer
/// replay, which WindowAggregateOp handles.
class Accumulator {
 public:
  virtual ~Accumulator() = default;

  virtual AggKind kind() const = 0;

  virtual void Add(const Value& v) = 0;

  /// Inverse of Add. Precondition: invertible() and v was previously added.
  virtual void Remove(const Value& v);

  virtual bool invertible() const { return false; }

  /// Current aggregate value (Null when no input yet, except count = 0).
  virtual Value Result() const = 0;

  /// Merges another accumulator of the same kind into this one — the
  /// high-level step of two-level partial aggregation (slide 37).
  virtual void Merge(const Accumulator& other) = 0;

  /// Approximate state footprint.
  virtual size_t MemoryBytes() const = 0;

  virtual uint64_t count() const { return n_; }

  /// Serializes the exact accumulator state for a durability checkpoint
  /// (dur::Checkpoint). Returns false when this kind has no serializer —
  /// the sketch-backed accumulators — in which case the owning query is
  /// excluded from checkpoints and recovers by full replay.
  virtual bool SaveState(dur::BufWriter& w) const {
    (void)w;
    return false;
  }
  /// Inverse of SaveState, on a freshly built accumulator of the same
  /// configuration. Default: Unimplemented.
  virtual Status LoadState(dur::BufReader& r);

 protected:
  uint64_t n_ = 0;
};

/// True when accumulators of `kind` round-trip through
/// SaveState/LoadState (everything except the sketches).
bool AggStateSerializable(AggKind kind);

/// Factory + metadata for one aggregate expression.
class AggregateFunction {
 public:
  /// Creates the function; `param` is the blend factor for kBlend.
  static Result<AggregateFunction> Make(AggKind kind, double param = 0.5);

  AggKind kind() const { return kind_; }
  AggClass agg_class() const { return ClassOf(kind_); }

  std::unique_ptr<Accumulator> NewAccumulator() const;

 private:
  AggregateFunction(AggKind kind, double param)
      : kind_(kind), param_(param) {}

  AggKind kind_;
  double param_;
};

}  // namespace sqp

#endif  // SQP_AGG_AGGREGATE_FN_H_
