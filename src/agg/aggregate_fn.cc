#include "agg/aggregate_fn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "synopsis/distinct.h"
#include "synopsis/gk_quantile.h"

namespace sqp {

AggClass ClassOf(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kFirst:
    case AggKind::kLast:
      return AggClass::kDistributive;
    case AggKind::kAvg:
    case AggKind::kStddev:
    case AggKind::kBlend:
      return AggClass::kAlgebraic;
    case AggKind::kMedian:
    case AggKind::kCountDistinct:
      return AggClass::kHolistic;
    case AggKind::kApproxMedian:
    case AggKind::kApproxCountDistinct:
      return AggClass::kSketched;
  }
  return AggClass::kHolistic;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kStddev:
      return "stddev";
    case AggKind::kMedian:
      return "median";
    case AggKind::kCountDistinct:
      return "count_distinct";
    case AggKind::kFirst:
      return "first";
    case AggKind::kLast:
      return "last";
    case AggKind::kBlend:
      return "blend";
    case AggKind::kApproxMedian:
      return "approx_median";
    case AggKind::kApproxCountDistinct:
      return "approx_count_distinct";
  }
  return "?";
}

Result<AggKind> ParseAggKind(const std::string& name) {
  static const std::map<std::string, AggKind> kNames = {
      {"count", AggKind::kCount},
      {"sum", AggKind::kSum},
      {"min", AggKind::kMin},
      {"max", AggKind::kMax},
      {"avg", AggKind::kAvg},
      {"stddev", AggKind::kStddev},
      {"median", AggKind::kMedian},
      {"count_distinct", AggKind::kCountDistinct},
      {"first", AggKind::kFirst},
      {"last", AggKind::kLast},
      {"blend", AggKind::kBlend},
      {"approx_median", AggKind::kApproxMedian},
      {"approx_count_distinct", AggKind::kApproxCountDistinct},
  };
  auto it = kNames.find(name);
  if (it == kNames.end()) {
    return Status::ParseError("unknown aggregate function: " + name);
  }
  return it->second;
}

void Accumulator::Remove(const Value& /*v*/) {
  assert(false && "Remove called on non-invertible accumulator");
}

Status Accumulator::LoadState(dur::BufReader& /*r*/) {
  return Status::Unimplemented(std::string("no state serializer for ") +
                               AggKindName(kind()));
}

bool AggStateSerializable(AggKind kind) {
  switch (kind) {
    case AggKind::kApproxMedian:
    case AggKind::kApproxCountDistinct:
      return false;
    default:
      return true;
  }
}

namespace {

class CountAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kCount; }
  void Add(const Value& /*v*/) override { ++n_; }
  void Remove(const Value& /*v*/) override { --n_; }
  bool invertible() const override { return true; }
  Value Result() const override { return Value(static_cast<int64_t>(n_)); }
  void Merge(const Accumulator& other) override { n_ += other.count(); }
  size_t MemoryBytes() const override { return sizeof(*this); }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override { return r.U64(&n_); }
};

class SumAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kSum; }
  void Add(const Value& v) override {
    ++n_;
    if (v.type() == ValueType::kDouble) saw_double_ = true;
    sum_ += v.ToDouble();
    int_sum_ += v.ToInt();
  }
  void Remove(const Value& v) override {
    --n_;
    sum_ -= v.ToDouble();
    int_sum_ -= v.ToInt();
  }
  bool invertible() const override { return true; }
  Value Result() const override {
    if (n_ == 0) return Value::Null();
    return saw_double_ ? Value(sum_) : Value(int_sum_);
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const SumAcc&>(other);
    n_ += o.n_;
    saw_double_ = saw_double_ || o.saw_double_;
    sum_ += o.sum_;
    int_sum_ += o.int_sum_;
  }
  size_t MemoryBytes() const override { return sizeof(*this); }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.U8(saw_double_ ? 1 : 0);
    w.F64(sum_);
    w.I64(int_sum_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    uint8_t b = 0;
    SQP_RETURN_NOT_OK(r.U64(&n_));
    SQP_RETURN_NOT_OK(r.U8(&b));
    saw_double_ = b != 0;
    SQP_RETURN_NOT_OK(r.F64(&sum_));
    return r.I64(&int_sum_);
  }

 private:
  bool saw_double_ = false;
  double sum_ = 0.0;
  int64_t int_sum_ = 0;
};

class MinMaxAcc : public Accumulator {
 public:
  explicit MinMaxAcc(bool is_min) : is_min_(is_min) {}
  AggKind kind() const override {
    return is_min_ ? AggKind::kMin : AggKind::kMax;
  }
  void Add(const Value& v) override {
    ++n_;
    if (best_.is_null() || (is_min_ ? v < best_ : v > best_)) best_ = v;
  }
  Value Result() const override { return best_; }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const MinMaxAcc&>(other);
    n_ += o.n_;
    if (!o.best_.is_null() &&
        (best_.is_null() || (is_min_ ? o.best_ < best_ : o.best_ > best_))) {
      best_ = o.best_;
    }
  }
  size_t MemoryBytes() const override {
    return sizeof(*this) + best_.MemoryBytes();
  }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.Val(best_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    return r.Val(&best_);
  }

 private:
  bool is_min_;
  Value best_;
};

class AvgAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kAvg; }
  void Add(const Value& v) override {
    ++n_;
    sum_ += v.ToDouble();
  }
  void Remove(const Value& v) override {
    --n_;
    sum_ -= v.ToDouble();
  }
  bool invertible() const override { return true; }
  Value Result() const override {
    if (n_ == 0) return Value::Null();
    return Value(sum_ / static_cast<double>(n_));
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const AvgAcc&>(other);
    n_ += o.n_;
    sum_ += o.sum_;
  }
  size_t MemoryBytes() const override { return sizeof(*this); }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.F64(sum_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    return r.F64(&sum_);
  }

 private:
  double sum_ = 0.0;
};

// Sum-of-squares form so Merge and Remove are exact.
class StddevAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kStddev; }
  void Add(const Value& v) override {
    ++n_;
    double x = v.ToDouble();
    sum_ += x;
    sum_sq_ += x * x;
  }
  void Remove(const Value& v) override {
    --n_;
    double x = v.ToDouble();
    sum_ -= x;
    sum_sq_ -= x * x;
  }
  bool invertible() const override { return true; }
  Value Result() const override {
    if (n_ < 2) return Value(0.0);
    double nd = static_cast<double>(n_);
    double var = (sum_sq_ - sum_ * sum_ / nd) / (nd - 1.0);
    return Value(std::sqrt(std::max(0.0, var)));
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const StddevAcc&>(other);
    n_ += o.n_;
    sum_ += o.sum_;
    sum_sq_ += o.sum_sq_;
  }
  size_t MemoryBytes() const override { return sizeof(*this); }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.F64(sum_);
    w.F64(sum_sq_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    SQP_RETURN_NOT_OK(r.F64(&sum_));
    return r.F64(&sum_sq_);
  }

 private:
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

// Holistic: buffers everything. This is exactly why [ABB+02] rules
// holistic aggregates out of bounded-memory plans.
class MedianAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kMedian; }
  void Add(const Value& v) override {
    ++n_;
    vals_.push_back(v.ToDouble());
  }
  Value Result() const override {
    if (vals_.empty()) return Value::Null();
    std::vector<double> sorted = vals_;
    std::sort(sorted.begin(), sorted.end());
    size_t m = sorted.size() / 2;
    if (sorted.size() % 2 == 1) return Value(sorted[m]);
    return Value((sorted[m - 1] + sorted[m]) / 2.0);
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const MedianAcc&>(other);
    n_ += o.n_;
    vals_.insert(vals_.end(), o.vals_.begin(), o.vals_.end());
  }
  size_t MemoryBytes() const override {
    return sizeof(*this) + vals_.capacity() * sizeof(double);
  }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.U32(static_cast<uint32_t>(vals_.size()));
    for (double v : vals_) w.F64(v);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    uint32_t count = 0;
    SQP_RETURN_NOT_OK(r.U32(&count));
    vals_.clear();
    vals_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      double v = 0;
      SQP_RETURN_NOT_OK(r.F64(&v));
      vals_.push_back(v);
    }
    return Status::OK();
  }

 private:
  std::vector<double> vals_;
};

class CountDistinctAcc : public Accumulator {
 public:
  AggKind kind() const override { return AggKind::kCountDistinct; }
  void Add(const Value& v) override {
    ++n_;
    seen_.insert(v);
  }
  Value Result() const override {
    return Value(static_cast<int64_t>(seen_.size()));
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const CountDistinctAcc&>(other);
    n_ += o.n_;
    seen_.insert(o.seen_.begin(), o.seen_.end());
  }
  size_t MemoryBytes() const override {
    size_t bytes = sizeof(*this);
    for (const Value& v : seen_) bytes += v.MemoryBytes() + 16;
    return bytes;
  }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.U32(static_cast<uint32_t>(seen_.size()));
    for (const Value& v : seen_) w.Val(v);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    uint32_t count = 0;
    SQP_RETURN_NOT_OK(r.U32(&count));
    seen_.clear();
    for (uint32_t i = 0; i < count; ++i) {
      Value v;
      SQP_RETURN_NOT_OK(r.Val(&v));
      seen_.insert(std::move(v));
    }
    return Status::OK();
  }

 private:
  std::unordered_set<Value, ValueHash> seen_;
};

class FirstLastAcc : public Accumulator {
 public:
  explicit FirstLastAcc(bool is_first) : is_first_(is_first) {}
  AggKind kind() const override {
    return is_first_ ? AggKind::kFirst : AggKind::kLast;
  }
  void Add(const Value& v) override {
    ++n_;
    if (!is_first_ || n_ == 1) val_ = v;
  }
  Value Result() const override { return val_; }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const FirstLastAcc&>(other);
    if (o.n_ == 0) return;
    if (!is_first_ || n_ == 0) val_ = o.val_;
    n_ += o.n_;
  }
  size_t MemoryBytes() const override {
    return sizeof(*this) + val_.MemoryBytes();
  }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.Val(val_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    return r.Val(&val_);
  }

 private:
  bool is_first_;
  Value val_;
};

// Hancock's signature update (slide 8): exponentially weighted blend of
// the new observation into the running signature.
class BlendAcc : public Accumulator {
 public:
  explicit BlendAcc(double alpha) : alpha_(alpha) {}
  AggKind kind() const override { return AggKind::kBlend; }
  void Add(const Value& v) override {
    ++n_;
    sig_ = (n_ == 1) ? v.ToDouble() : alpha_ * v.ToDouble() + (1 - alpha_) * sig_;
  }
  Value Result() const override {
    return n_ == 0 ? Value::Null() : Value(sig_);
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const BlendAcc&>(other);
    if (o.n_ == 0) return;
    sig_ = (n_ == 0) ? o.sig_ : alpha_ * o.sig_ + (1 - alpha_) * sig_;
    n_ += o.n_;
  }
  size_t MemoryBytes() const override { return sizeof(*this); }
  bool SaveState(dur::BufWriter& w) const override {
    w.U64(n_);
    w.F64(sig_);
    return true;
  }
  Status LoadState(dur::BufReader& r) override {
    SQP_RETURN_NOT_OK(r.U64(&n_));
    return r.F64(&sig_);
  }

 private:
  double alpha_;
  double sig_ = 0.0;
};

// Slide 38: when exact computation would need unbounded storage, use a
// summary structure. GK quantile summary standing in for median.
class ApproxMedianAcc : public Accumulator {
 public:
  explicit ApproxMedianAcc(double eps) : gk_(eps) {}
  AggKind kind() const override { return AggKind::kApproxMedian; }
  void Add(const Value& v) override {
    ++n_;
    gk_.Add(v.ToDouble());
  }
  Value Result() const override {
    return n_ == 0 ? Value::Null() : Value(gk_.Query(0.5));
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const ApproxMedianAcc&>(other);
    n_ += o.n_;
    gk_.Merge(o.gk_);
  }
  size_t MemoryBytes() const override {
    return sizeof(*this) + gk_.MemoryBytes();
  }

 private:
  GkQuantile gk_;
};

// HyperLogLog standing in for count(distinct). Mergeable, so it also
// works under two-level decomposition (unlike the exact version).
class ApproxCountDistinctAcc : public Accumulator {
 public:
  ApproxCountDistinctAcc() : hll_(10) {}
  AggKind kind() const override { return AggKind::kApproxCountDistinct; }
  void Add(const Value& v) override {
    ++n_;
    hll_.Add(v);
  }
  Value Result() const override {
    return Value(static_cast<int64_t>(hll_.Estimate() + 0.5));
  }
  void Merge(const Accumulator& other) override {
    const auto& o = static_cast<const ApproxCountDistinctAcc&>(other);
    n_ += o.n_;
    hll_.Merge(o.hll_);
  }
  size_t MemoryBytes() const override {
    return sizeof(*this) + hll_.MemoryBytes();
  }

 private:
  HyperLogLog hll_;
};

}  // namespace

Result<AggregateFunction> AggregateFunction::Make(AggKind kind, double param) {
  if (kind == AggKind::kBlend && (param <= 0.0 || param > 1.0)) {
    return Status::InvalidArgument("blend factor must be in (0, 1]");
  }
  return AggregateFunction(kind, param);
}

std::unique_ptr<Accumulator> AggregateFunction::NewAccumulator() const {
  switch (kind_) {
    case AggKind::kCount:
      return std::make_unique<CountAcc>();
    case AggKind::kSum:
      return std::make_unique<SumAcc>();
    case AggKind::kMin:
      return std::make_unique<MinMaxAcc>(true);
    case AggKind::kMax:
      return std::make_unique<MinMaxAcc>(false);
    case AggKind::kAvg:
      return std::make_unique<AvgAcc>();
    case AggKind::kStddev:
      return std::make_unique<StddevAcc>();
    case AggKind::kMedian:
      return std::make_unique<MedianAcc>();
    case AggKind::kCountDistinct:
      return std::make_unique<CountDistinctAcc>();
    case AggKind::kFirst:
      return std::make_unique<FirstLastAcc>(true);
    case AggKind::kLast:
      return std::make_unique<FirstLastAcc>(false);
    case AggKind::kBlend:
      return std::make_unique<BlendAcc>(param_);
    case AggKind::kApproxMedian:
      // `param` doubles as the GK epsilon; the 0.5 factory default maps
      // to a sensible 0.01.
      return std::make_unique<ApproxMedianAcc>(
          param_ > 0.0 && param_ < 0.5 ? param_ : 0.01);
    case AggKind::kApproxCountDistinct:
      return std::make_unique<ApproxCountDistinctAcc>();
  }
  return nullptr;
}

}  // namespace sqp
