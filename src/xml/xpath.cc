#include "xml/xpath.h"

#include <cctype>

namespace sqp {
namespace xml {

std::string XPath::ToString() const {
  std::string out;
  for (const XPathStep& s : steps) {
    out += s.axis == XPathStep::Axis::kChild ? "/" : "//";
    out += s.name;
    if (s.pred.has_value()) {
      out += "[@" + s.pred->attr + "='" + s.pred->value + "']";
    }
  }
  return out;
}

Result<XPath> ParseXPath(const std::string& text) {
  XPath path;
  size_t i = 0;
  const size_t n = text.size();
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  };

  if (n == 0 || text[0] != '/') {
    return Status::ParseError("XPath must start with '/' or '//'");
  }
  while (i < n) {
    XPathStep step;
    if (text[i] != '/') {
      return Status::ParseError("expected '/' at offset " + std::to_string(i));
    }
    ++i;
    if (i < n && text[i] == '/') {
      step.axis = XPathStep::Axis::kDescendant;
      ++i;
    }
    if (i < n && text[i] == '*') {
      step.name = "*";
      ++i;
    } else {
      size_t start = i;
      while (i < n && is_name_char(text[i])) ++i;
      if (i == start) {
        return Status::ParseError("expected element name at offset " +
                                  std::to_string(i));
      }
      step.name = text.substr(start, i - start);
    }
    if (i < n && text[i] == '[') {
      // [@attr='value']
      if (i + 1 >= n || text[i + 1] != '@') {
        return Status::ParseError("only [@attr='value'] predicates supported");
      }
      i += 2;
      size_t start = i;
      while (i < n && is_name_char(text[i])) ++i;
      if (i == start) return Status::ParseError("empty attribute name");
      XPathStep::AttrPred pred;
      pred.attr = text.substr(start, i - start);
      if (i + 1 >= n || text[i] != '=' || text[i + 1] != '\'') {
        return Status::ParseError("expected ='...' in predicate");
      }
      i += 2;
      start = i;
      while (i < n && text[i] != '\'') ++i;
      if (i >= n) return Status::ParseError("unterminated predicate value");
      pred.value = text.substr(start, i - start);
      ++i;
      if (i >= n || text[i] != ']') {
        return Status::ParseError("expected ']' closing predicate");
      }
      ++i;
      step.pred = pred;
    }
    path.steps.push_back(std::move(step));
  }
  if (path.steps.empty()) return Status::ParseError("empty XPath");
  return path;
}

}  // namespace xml
}  // namespace sqp
