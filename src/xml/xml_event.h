#ifndef SQP_XML_XML_EVENT_H_
#define SQP_XML_XML_EVENT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace xml {

/// SAX-style parse event. XML documents stream through filters as event
/// sequences, never materialized as trees — the setting of the XML
/// stream-filtering work the tutorial cites ([AF00] XFilter, [DF03]
/// YFilter, [GMOS03], [CFGR02]).
struct XmlEvent {
  enum class Kind { kStart, kEnd, kText };

  Kind kind = Kind::kStart;
  std::string name;                                       // kStart/kEnd.
  std::vector<std::pair<std::string, std::string>> attrs;  // kStart.
  std::string text;                                       // kText.

  static XmlEvent Start(std::string name,
                        std::vector<std::pair<std::string, std::string>>
                            attrs = {}) {
    XmlEvent e;
    e.kind = Kind::kStart;
    e.name = std::move(name);
    e.attrs = std::move(attrs);
    return e;
  }
  static XmlEvent End(std::string name) {
    XmlEvent e;
    e.kind = Kind::kEnd;
    e.name = std::move(name);
    return e;
  }
  static XmlEvent Text(std::string text) {
    XmlEvent e;
    e.kind = Kind::kText;
    e.text = std::move(text);
    return e;
  }
};

/// Tokenizes a small XML subset into events: elements, attributes with
/// single- or double-quoted values, self-closing tags, and text. No
/// namespaces, comments, CDATA, or entities — enough for filter
/// workloads, not a general parser.
Result<std::vector<XmlEvent>> Tokenize(const std::string& doc);

}  // namespace xml
}  // namespace sqp

#endif  // SQP_XML_XML_EVENT_H_
