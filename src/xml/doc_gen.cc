#include "xml/doc_gen.h"

#include "common/strings.h"

namespace sqp {
namespace xml {

std::vector<XmlEvent> GenerateAuctionDoc(const XmlDocOptions& options) {
  Rng rng(options.seed);
  std::vector<XmlEvent> ev;
  ev.push_back(XmlEvent::Start("site"));

  ev.push_back(XmlEvent::Start("people"));
  for (int p = 0; p < options.num_people; ++p) {
    ev.push_back(XmlEvent::Start(
        "person", {{"id", "p" + std::to_string(p)}}));
    ev.push_back(XmlEvent::Start("name"));
    ev.push_back(XmlEvent::Text("person" + std::to_string(p)));
    ev.push_back(XmlEvent::End("name"));
    if (rng.Bernoulli(0.7)) {
      ev.push_back(XmlEvent::Start("city"));
      ev.push_back(XmlEvent::Text("city" + std::to_string(rng.Uniform(10))));
      ev.push_back(XmlEvent::End("city"));
    }
    ev.push_back(XmlEvent::End("person"));
  }
  ev.push_back(XmlEvent::End("people"));

  ev.push_back(XmlEvent::Start("auctions"));
  for (int a = 0; a < options.num_auctions; ++a) {
    ev.push_back(XmlEvent::Start(
        "auction",
        {{"id", "a" + std::to_string(a)},
         {"category",
          "c" + std::to_string(rng.Uniform(
                    static_cast<uint64_t>(options.num_categories)))}}));
    ev.push_back(XmlEvent::Start(
        "seller",
        {{"ref", "p" + std::to_string(rng.Uniform(
                           static_cast<uint64_t>(options.num_people)))}}));
    ev.push_back(XmlEvent::End("seller"));
    uint64_t bids = 1 + rng.Uniform(static_cast<uint64_t>(options.max_bids));
    for (uint64_t b = 0; b < bids; ++b) {
      ev.push_back(XmlEvent::Start(
          "bid", {{"amount", std::to_string(10 + rng.Uniform(990))}}));
      ev.push_back(XmlEvent::End("bid"));
    }
    ev.push_back(XmlEvent::End("auction"));
  }
  ev.push_back(XmlEvent::End("auctions"));

  ev.push_back(XmlEvent::End("site"));
  return ev;
}

std::string ToXmlText(const std::vector<XmlEvent>& events) {
  std::string out;
  for (const XmlEvent& e : events) {
    switch (e.kind) {
      case XmlEvent::Kind::kStart:
        out += "<" + e.name;
        for (const auto& [k, v] : e.attrs) {
          out += " " + k + "='" + v + "'";
        }
        out += ">";
        break;
      case XmlEvent::Kind::kEnd:
        out += "</" + e.name + ">";
        break;
      case XmlEvent::Kind::kText:
        out += e.text;
        break;
    }
  }
  return out;
}

}  // namespace xml
}  // namespace sqp
