#ifndef SQP_XML_FILTER_H_
#define SQP_XML_FILTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xml/xml_event.h"
#include "xml/xpath.h"

namespace sqp {
namespace xml {

/// Shared streaming evaluation of many XPath filters (YFilter [DF03]):
/// all registered paths compile into one prefix-shared NFA; a document's
/// event stream is pushed through once, activating NFA states per depth,
/// and every query whose accept state is reached fires. Per-document
/// work is O(events x active states) instead of O(events x queries).
class XPathFilterSet {
 public:
  XPathFilterSet() = default;

  /// Registers a filter; returns its query id.
  Result<int> Add(const std::string& xpath_text);
  Result<int> Add(const XPath& path);

  size_t num_queries() const { return num_queries_; }
  size_t num_states() const { return states_.size(); }

  /// Streaming matcher over one document. Matches are counted per query
  /// at the matching element's Start event.
  class Matcher {
   public:
    explicit Matcher(const XPathFilterSet* set);

    /// Feeds one event; for Start events, returns the ids of queries
    /// whose path is satisfied by this element (possibly repeated for
    /// multiple distinct derivations — duplicates removed).
    std::vector<int> OnEvent(const XmlEvent& e);

    /// Total matches recorded per query so far.
    const std::vector<uint64_t>& match_counts() const { return counts_; }

   private:
    /// Active entry: state id * 2 + full. `full` activations may fire
    /// every outgoing edge; persisted copies (kept so descendant axes
    /// can retry deeper) may only fire descendant edges — otherwise a
    /// state shared between a child-axis query and a descendant-axis
    /// query would wrongly relax the child query's depth constraint.
    const XPathFilterSet* set_;
    std::vector<std::vector<int>> stack_;
    std::vector<uint64_t> counts_;
  };

  Matcher NewMatcher() const { return Matcher(this); }

  /// Convenience: run the whole event stream, return per-query counts.
  std::vector<uint64_t> MatchDocument(const std::vector<XmlEvent>& events) const;

  /// Naive baseline for the sharing benchmark: evaluates one query's
  /// private matcher per registered filter.
  std::vector<uint64_t> MatchDocumentNaive(
      const std::vector<XmlEvent>& events) const;

 private:
  friend class Matcher;

  struct Edge {
    XPathStep step;
    int target = -1;
  };
  struct State {
    std::vector<Edge> edges;
    /// True when any incoming edge is descendant-axis: the state stays
    /// active at deeper levels to retry the match.
    bool has_descendant_out = false;
    std::vector<int> accepts;  // Query ids accepted at this state.
  };

  int AddPathToTrie(const XPath& path);

  std::vector<State> states_ = {State{}};  // State 0 = root.
  size_t num_queries_ = 0;
  std::vector<XPath> paths_;  // Kept for the naive baseline.
};

}  // namespace xml
}  // namespace sqp

#endif  // SQP_XML_FILTER_H_
