#include "xml/filter.h"

#include <algorithm>

namespace sqp {
namespace xml {

namespace {

bool NameMatches(const std::string& pattern, const std::string& name) {
  return pattern == "*" || pattern == name;
}

bool PredMatches(const std::optional<XPathStep::AttrPred>& pred,
                 const XmlEvent& e) {
  if (!pred.has_value()) return true;
  for (const auto& [attr, value] : e.attrs) {
    if (attr == pred->attr) return value == pred->value;
  }
  return false;
}

}  // namespace

Result<int> XPathFilterSet::Add(const std::string& xpath_text) {
  auto path = ParseXPath(xpath_text);
  if (!path.ok()) return path.status();
  return Add(*path);
}

Result<int> XPathFilterSet::Add(const XPath& path) {
  if (path.steps.empty()) return Status::InvalidArgument("empty path");
  int id = AddPathToTrie(path);
  paths_.push_back(path);
  return id;
}

int XPathFilterSet::AddPathToTrie(const XPath& path) {
  int state = 0;
  for (const XPathStep& step : path.steps) {
    // Share an existing identical edge (prefix sharing — the YFilter
    // mechanism that makes thousands of filters cheap).
    int next = -1;
    for (const Edge& e : states_[static_cast<size_t>(state)].edges) {
      if (e.step == step) {
        next = e.target;
        break;
      }
    }
    if (next < 0) {
      next = static_cast<int>(states_.size());
      states_.push_back(State{});
      states_[static_cast<size_t>(state)].edges.push_back(Edge{step, next});
    }
    if (step.axis == XPathStep::Axis::kDescendant) {
      states_[static_cast<size_t>(state)].has_descendant_out = true;
    }
    state = next;
  }
  int id = static_cast<int>(num_queries_++);
  states_[static_cast<size_t>(state)].accepts.push_back(id);
  return id;
}

XPathFilterSet::Matcher::Matcher(const XPathFilterSet* set) : set_(set) {
  // Root state active (full) for top-level elements: id*2 + 1.
  stack_.push_back({0 * 2 + 1});
  counts_.assign(set_->num_queries_, 0);
}

std::vector<int> XPathFilterSet::Matcher::OnEvent(const XmlEvent& e) {
  switch (e.kind) {
    case XmlEvent::Kind::kText:
      return {};
    case XmlEvent::Kind::kEnd:
      if (stack_.size() > 1) stack_.pop_back();
      return {};
    case XmlEvent::Kind::kStart:
      break;
  }

  std::vector<int> next;
  std::vector<int> matched;
  for (int entry : stack_.back()) {
    int s = entry >> 1;
    bool full = (entry & 1) != 0;
    const State& state = set_->states_[static_cast<size_t>(s)];
    for (const Edge& edge : state.edges) {
      // Persisted (non-full) activations only retry descendant edges.
      if (!full && edge.step.axis == XPathStep::Axis::kChild) continue;
      if (NameMatches(edge.step.name, e.name) && PredMatches(edge.step.pred, e)) {
        next.push_back(edge.target * 2 + 1);
        for (int q : set_->states_[static_cast<size_t>(edge.target)].accepts) {
          matched.push_back(q);
        }
      }
    }
    // A state with outgoing descendant edges keeps trying at every
    // deeper level (persisted copy).
    if (state.has_descendant_out) next.push_back(s * 2 + 0);
  }
  // Dedupe; a full activation subsumes a persisted one of the same state.
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  for (size_t i = 0; i + 1 < next.size();) {
    if ((next[i] >> 1) == (next[i + 1] >> 1)) {
      // next[i] is the persisted (even) copy; drop it.
      next.erase(next.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::sort(matched.begin(), matched.end());
  matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
  for (int q : matched) ++counts_[static_cast<size_t>(q)];
  stack_.push_back(std::move(next));
  return matched;
}

std::vector<uint64_t> XPathFilterSet::MatchDocument(
    const std::vector<XmlEvent>& events) const {
  Matcher m = NewMatcher();
  for (const XmlEvent& e : events) m.OnEvent(e);
  return m.match_counts();
}

std::vector<uint64_t> XPathFilterSet::MatchDocumentNaive(
    const std::vector<XmlEvent>& events) const {
  std::vector<uint64_t> counts(num_queries_, 0);
  for (size_t q = 0; q < paths_.size(); ++q) {
    XPathFilterSet single;
    (void)single.Add(paths_[q]);
    Matcher m = single.NewMatcher();
    for (const XmlEvent& e : events) m.OnEvent(e);
    counts[q] = m.match_counts()[0];
  }
  return counts;
}

}  // namespace xml
}  // namespace sqp
