#ifndef SQP_XML_XPATH_H_
#define SQP_XML_XPATH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace xml {

/// One location step of a filter path.
struct XPathStep {
  enum class Axis { kChild, kDescendant };

  Axis axis = Axis::kChild;
  /// Element name; "*" matches any element.
  std::string name;
  /// Optional attribute equality predicate [@attr='value'].
  struct AttrPred {
    std::string attr;
    std::string value;
  };
  std::optional<AttrPred> pred;

  bool operator==(const XPathStep& other) const {
    bool p_eq = pred.has_value() == other.pred.has_value() &&
                (!pred.has_value() || (pred->attr == other.pred->attr &&
                                       pred->value == other.pred->value));
    return axis == other.axis && name == other.name && p_eq;
  }
};

/// A parsed filter path, e.g. `/site/people//person[@id='p1']/name`.
struct XPath {
  std::vector<XPathStep> steps;

  std::string ToString() const;
};

/// Parses the XPath subset used by streaming filters:
///   path   := step+
///   step   := ("/" | "//") name [ "[@" attr "='" value "']" ]
///   name   := element-name | "*"
Result<XPath> ParseXPath(const std::string& text);

}  // namespace xml
}  // namespace sqp

#endif  // SQP_XML_XPATH_H_
