#ifndef SQP_XML_DOC_GEN_H_
#define SQP_XML_DOC_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "xml/xml_event.h"

namespace sqp {
namespace xml {

/// Synthetic auction-site documents (an XMark-flavoured miniature):
///
///   <site>
///     <people> <person id='pN'> <name>..</name> <city>..</city> ... </people>
///     <auctions> <auction id='aN' category='cK'> <seller ref='pN'/>
///                <bid amount='..'/> ... </auction> ... </auctions>
///   </site>
///
/// Used by the XML filtering tests/benchmarks as the document workload
/// (message-brokering streams of the tutorial's XML references).
struct XmlDocOptions {
  int num_people = 20;
  int num_auctions = 30;
  int max_bids = 5;
  int num_categories = 8;
  uint64_t seed = 7;
};

/// Generates one document's event stream directly (no string round-trip).
std::vector<XmlEvent> GenerateAuctionDoc(const XmlDocOptions& options);

/// Serializes events back to XML text (for tokenizer round-trip tests).
std::string ToXmlText(const std::vector<XmlEvent>& events);

}  // namespace xml
}  // namespace sqp

#endif  // SQP_XML_DOC_GEN_H_
