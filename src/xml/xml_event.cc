#include "xml/xml_event.h"

#include <cctype>

#include "common/strings.h"

namespace sqp {
namespace xml {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

Result<std::vector<XmlEvent>> Tokenize(const std::string& doc) {
  std::vector<XmlEvent> out;
  std::vector<std::string> open;  // Tag stack for balance checking.
  size_t i = 0;
  const size_t n = doc.size();

  while (i < n) {
    if (doc[i] != '<') {
      size_t start = i;
      while (i < n && doc[i] != '<') ++i;
      std::string text(StripWhitespace(doc.substr(start, i - start)));
      if (!text.empty()) out.push_back(XmlEvent::Text(std::move(text)));
      continue;
    }
    ++i;  // Consume '<'.
    if (i < n && doc[i] == '/') {
      ++i;
      size_t start = i;
      while (i < n && IsNameChar(doc[i])) ++i;
      std::string name = doc.substr(start, i - start);
      while (i < n && doc[i] != '>') ++i;
      if (i >= n) return Status::ParseError("unterminated close tag");
      ++i;
      if (open.empty() || open.back() != name) {
        return Status::ParseError("mismatched close tag: " + name);
      }
      open.pop_back();
      out.push_back(XmlEvent::End(std::move(name)));
      continue;
    }
    size_t start = i;
    while (i < n && IsNameChar(doc[i])) ++i;
    if (i == start) return Status::ParseError("empty tag name");
    std::string name = doc.substr(start, i - start);

    std::vector<std::pair<std::string, std::string>> attrs;
    while (i < n && doc[i] != '>' && doc[i] != '/') {
      while (i < n && std::isspace(static_cast<unsigned char>(doc[i]))) ++i;
      if (i < n && (doc[i] == '>' || doc[i] == '/')) break;
      size_t astart = i;
      while (i < n && IsNameChar(doc[i])) ++i;
      if (i == astart) return Status::ParseError("bad attribute in " + name);
      std::string aname = doc.substr(astart, i - astart);
      if (i >= n || doc[i] != '=') {
        return Status::ParseError("attribute without value: " + aname);
      }
      ++i;
      if (i >= n || (doc[i] != '\'' && doc[i] != '"')) {
        return Status::ParseError("unquoted attribute value: " + aname);
      }
      char quote = doc[i++];
      size_t vstart = i;
      while (i < n && doc[i] != quote) ++i;
      if (i >= n) return Status::ParseError("unterminated attribute value");
      attrs.emplace_back(std::move(aname), doc.substr(vstart, i - vstart));
      ++i;
    }
    bool self_close = i < n && doc[i] == '/';
    if (self_close) ++i;
    if (i >= n || doc[i] != '>') {
      return Status::ParseError("unterminated tag: " + name);
    }
    ++i;
    out.push_back(XmlEvent::Start(name, std::move(attrs)));
    if (self_close) {
      out.push_back(XmlEvent::End(name));
    } else {
      open.push_back(name);
    }
  }
  if (!open.empty()) {
    return Status::ParseError("unclosed element: " + open.back());
  }
  return out;
}

}  // namespace xml
}  // namespace sqp
