#ifndef SQP_EXEC_EXPR_H_
#define SQP_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"

namespace sqp {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Binary operators in predicate / projection expressions.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);

/// Structural shape of an expression node, exposed so plan-time
/// compilers (the vectorizer in exec/vector_expr, the project ordinal
/// fast path) can walk the tree without RTTI. kOther is the safe
/// default for future node types: compilers must treat it as opaque and
/// fall back to per-tuple Eval.
enum class ExprKind { kColumn, kConst, kBinary, kNot, kContains, kOther };

/// Scalar expression tree evaluated against one tuple.
///
/// Contract: `Check` validates the expression against a schema at plan
/// time and reports the output type; after a successful Check, `Eval`
/// cannot fail for tuples of that schema (runtime anomalies such as
/// division by zero yield Null). This keeps the per-tuple hot path free
/// of Status plumbing, per the usual engine layering.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `t`. See class contract.
  virtual Value Eval(const Tuple& t) const = 0;

  /// Plan-time type check; returns the expression's output type.
  virtual Result<ValueType> Check(const Schema& schema) const = 0;

  virtual std::string ToString() const = 0;

  /// Reflection for plan-time compilation (see ExprKind). The accessors
  /// below are meaningful only for the kinds noted; defaults are the
  /// "not this kind" sentinels so callers can probe without casts.
  virtual ExprKind kind() const { return ExprKind::kOther; }
  /// kColumn: the referenced column ordinal, else -1.
  virtual int column_index() const { return -1; }
  /// kConst: the literal, else nullptr.
  virtual const Value* literal() const { return nullptr; }
  /// kBinary: the operator (unspecified for other kinds).
  virtual BinOp bin_op() const { return BinOp::kAdd; }
  /// Operand subtrees: child(0)/child(1) for kBinary and kContains
  /// (haystack, needle), child(0) for kNot; nullptr past the end.
  virtual const Expr* child(int i) const {
    (void)i;
    return nullptr;
  }
};

/// Column reference by position.
ExprRef Col(int index);
/// Constant.
ExprRef Lit(Value v);
inline ExprRef Lit(int64_t v) { return Lit(Value(v)); }
inline ExprRef Lit(double v) { return Lit(Value(v)); }
inline ExprRef Lit(const char* v) { return Lit(Value(v)); }
/// Binary expression.
ExprRef Bin(BinOp op, ExprRef lhs, ExprRef rhs);
/// NOT.
ExprRef Not(ExprRef e);
/// contains(haystack, needle): byte-substring match (payload keywords).
ExprRef ContainsFn(ExprRef haystack, ExprRef needle);

// Shorthand combinators.
inline ExprRef Eq(ExprRef a, ExprRef b) { return Bin(BinOp::kEq, a, b); }
inline ExprRef Ne(ExprRef a, ExprRef b) { return Bin(BinOp::kNe, a, b); }
inline ExprRef Lt(ExprRef a, ExprRef b) { return Bin(BinOp::kLt, a, b); }
inline ExprRef Le(ExprRef a, ExprRef b) { return Bin(BinOp::kLe, a, b); }
inline ExprRef Gt(ExprRef a, ExprRef b) { return Bin(BinOp::kGt, a, b); }
inline ExprRef Ge(ExprRef a, ExprRef b) { return Bin(BinOp::kGe, a, b); }
inline ExprRef And(ExprRef a, ExprRef b) { return Bin(BinOp::kAnd, a, b); }
inline ExprRef Or(ExprRef a, ExprRef b) { return Bin(BinOp::kOr, a, b); }
inline ExprRef Add(ExprRef a, ExprRef b) { return Bin(BinOp::kAdd, a, b); }
inline ExprRef Sub(ExprRef a, ExprRef b) { return Bin(BinOp::kSub, a, b); }
inline ExprRef Mul(ExprRef a, ExprRef b) { return Bin(BinOp::kMul, a, b); }
inline ExprRef Div(ExprRef a, ExprRef b) { return Bin(BinOp::kDiv, a, b); }
inline ExprRef Mod(ExprRef a, ExprRef b) { return Bin(BinOp::kMod, a, b); }

/// True when `v` is a truthy boolean (non-zero int / non-null).
bool Truthy(const Value& v);

}  // namespace sqp

#endif  // SQP_EXEC_EXPR_H_
