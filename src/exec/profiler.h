#ifndef SQP_EXEC_PROFILER_H_
#define SQP_EXEC_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exec/plan.h"
#include "obs/op_metrics.h"
#include "obs/op_profile.h"
#include "obs/snapshot.h"

namespace sqp {
namespace obs {

/// One operator row of a query profile snapshot. Rows are in pre-order
/// over the plan tree: the root is the sink-most operator, a row at
/// depth d is an input of the nearest preceding row at depth d-1.
struct OpProfileRow {
  std::string op;
  int index = 0;  // Plan position (disambiguates duplicate names).
  int depth = 0;

  // Row counters from the operator's OpMetrics slot (zero when metrics
  // were not bound) — the same atomics `\metrics` renders, so EXPLAIN
  // ANALYZE always sums consistently with the registry.
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t puncts_in = 0;
  uint64_t puncts_out = 0;
  uint64_t exec_batches = 0;
  uint64_t busy_ns = 0;
  uint64_t queue_depth_hw = 0;
  double selectivity = 0.0;

  OpProfileData prof;
  /// Deliveries into this operator = per-element Process calls plus
  /// batched ProcessBatch/ProcessColumns calls.
  uint64_t deliveries = 0;
  /// Mean elements per delivery (singles fold in as batches of one).
  double mean_batch = 0.0;

  bool has_watermark = false;  // prof.wm_ts != OpProfile::kNoWatermark.
  bool has_lag = false;        // A source watermark exists too.
  /// Event-time lag: source watermark ts minus this operator's last
  /// forwarded watermark ts (>= 0 in a well-behaved chain).
  int64_t lag = 0;
  /// Punctuation propagation delay: wall ms from the watermark's ingest
  /// to this operator forwarding it; < 0 = unknown (ring evicted it or
  /// the watermark predates profiling).
  double propagation_ms = -1.0;
};

/// A full per-query profile snapshot — the EXPLAIN ANALYZE payload.
struct QueryProfile {
  std::string query;  // Engine label ("q0", ...).
  std::string text;   // CQL text.
  uint64_t submit_ns = 0;
  uint64_t snapshot_ns = 0;
  int64_t source_wm_ts = OpProfile::kNoWatermark;
  uint64_t source_wm_count = 0;
  std::vector<OpProfileRow> ops;

  /// Annotated text tree (the `\explain analyze` rendering).
  std::string Pretty() const;
  /// {"query":..,"text":..,"source":{..},"ops":[{..,"depth":..},..]}
  std::string ToJson() const;
};

/// Per-query profile registry: owns the OpProfile slots operators write
/// into and the plan-shaped tree a snapshot renders. Registration and
/// (re)binding happen under the engine's exclusive registration lock;
/// Snapshot may run from any thread (monitor, HTTP handler, sqpsh)
/// while ingest runs — it reads only atomics and registration-time
/// copies under the profiler's own mutex, never live Operator state.
///
/// Lives in exec (not obs) because binding walks Plan/Operator; the
/// hot-path half (OpProfile) sits below in obs so Operator can hold a
/// slot pointer without a layering cycle.
class QueryProfiler {
 public:
  /// Lock-free source-side watermark tap, one per registered query: the
  /// engine's ingest path stamps every non-keyed punctuation entering
  /// the query here. The small ring of (ts, ingest ns) pairs is what
  /// per-operator propagation delay is computed against.
  class SourceWatermark {
   public:
    void OnWatermark(int64_t ts) {
      const uint64_t now = NowNs();
      ts_.store(ts, std::memory_order_relaxed);
      ns_.store(now, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t slot =
          head_.fetch_add(1, std::memory_order_relaxed) % kRingSize;
      ring_[slot].ts.store(ts, std::memory_order_relaxed);
      ring_[slot].ns.store(now, std::memory_order_relaxed);
    }

    int64_t last_ts() const { return ts_.load(std::memory_order_relaxed); }
    uint64_t last_ns() const { return ns_.load(std::memory_order_relaxed); }
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }

    /// Ingest timestamp of the watermark with event time `ts`; false
    /// when the ring has already evicted it. A racing writer can pair a
    /// fresh ts with a stale ns for one slot — tolerated, the result is
    /// a statistical read like every other scrape.
    bool LookupIngestNs(int64_t ts, uint64_t* ns) const {
      for (const Slot& s : ring_) {
        if (s.ts.load(std::memory_order_relaxed) == ts) {
          *ns = s.ns.load(std::memory_order_relaxed);
          return true;
        }
      }
      return false;
    }

   private:
    static constexpr size_t kRingSize = 64;
    struct Slot {
      std::atomic<int64_t> ts{OpProfile::kNoWatermark};
      std::atomic<uint64_t> ns{0};
    };
    std::atomic<int64_t> ts_{OpProfile::kNoWatermark};
    std::atomic<uint64_t> ns_{0};
    std::atomic<uint64_t> count_{0};
    std::array<Slot, kRingSize> ring_;
    std::atomic<uint64_t> head_{0};
  };

  /// Registers a query; returns its stable source tap (valid until
  /// Unregister). Re-registering an existing label resets it.
  SourceWatermark* Register(const std::string& label, std::string text);

  /// Walks `plan`, allocates (or reuses, keyed by name+position) an
  /// OpProfile slot per connected operator, binds it via BindProfile,
  /// and rebuilds the snapshot tree. Call after Plan::BindMetrics so
  /// rows capture the operators' current metrics slots; call again
  /// after a structural rewrite (EnableSharding) — disconnected
  /// leftovers of the rewrite (no output, nothing feeding them) are
  /// excluded. No-op for unregistered labels.
  void BindPlan(const std::string& label, Plan& plan);

  /// Drops the query's slots and tap. The caller must detach every
  /// operator first (BindProfile(nullptr)) — after Unregister returns,
  /// no snapshot can observe the query, but the slots are gone too.
  void Unregister(const std::string& label);

  /// Copies a consistent-enough profile out; false if unknown label.
  bool Snapshot(const std::string& label, QueryProfile* out) const;

  std::vector<std::string> Labels() const;

  /// Publishes per-query watermark gauges (sqp_query_watermark_lag,
  /// sqp_query_source_watermark) — registered as a registry collector
  /// by the engine so `/snapshot.json` and `\top` see event-time lag.
  void Publish(SnapshotBuilder& b) const;

 private:
  struct Node {
    std::string name;
    int index = 0;
    int depth = 0;
    OpProfile* profile = nullptr;
    OpMetrics* metrics = nullptr;
  };
  struct Entry {
    std::string text;
    uint64_t submit_ns = 0;
    SourceWatermark source;
    /// Slot storage: deque for address stability across BindPlan
    /// re-walks (operators hold raw pointers into it).
    std::deque<OpProfile> slots;
    std::map<std::pair<std::string, int>, OpProfile*> slot_by_key;
    std::vector<Node> tree;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_EXEC_PROFILER_H_
