#ifndef SQP_EXEC_SELECT_H_
#define SQP_EXEC_SELECT_H_

#include <memory>
#include <string>

#include "exec/expr.h"
#include "exec/operator.h"

namespace sqp {

/// Selection (filter): a local, per-element operator (slide 29).
/// Punctuations pass through unchanged.
class SelectOp : public Operator {
 public:
  explicit SelectOp(ExprRef predicate, std::string name = "select");

  void Push(const Element& e, int port = 0) override;

  const ExprRef& predicate() const { return pred_; }

 protected:
  /// Tight filter loop: evaluate the predicate per element without
  /// re-entering the virtual Push per element.
  void PushBatch(ElementBatch& batch, int port) override;

 private:
  ExprRef pred_;
};

}  // namespace sqp

#endif  // SQP_EXEC_SELECT_H_
