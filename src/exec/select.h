#ifndef SQP_EXEC_SELECT_H_
#define SQP_EXEC_SELECT_H_

#include <memory>
#include <string>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/vector_expr.h"

namespace sqp {

/// Selection (filter): a local, per-element operator (slide 29).
/// Punctuations pass through unchanged.
class SelectOp : public Operator {
 public:
  explicit SelectOp(ExprRef predicate, std::string name = "select");

  void Push(const Element& e, int port = 0) override;

  const ExprRef& predicate() const { return pred_; }

  /// Columnar when the predicate vectorized at construction time.
  bool SupportsColumns(int port = 0) const override {
    (void)port;
    return vpred_ != nullptr;
  }

 protected:
  /// Tight filter loop: evaluate the predicate per element without
  /// re-entering the virtual Push per element.
  void PushBatch(ElementBatch& batch, int port) override;

  /// Vectorized filter: refines the batch's selection vector in place
  /// and forwards the same batch — zero data movement per stage.
  void PushColumns(ColumnBatch& batch, int port) override;

 private:
  ExprRef pred_;
  std::unique_ptr<vec::CompiledPredicate> vpred_;
};

}  // namespace sqp

#endif  // SQP_EXEC_SELECT_H_
