#ifndef SQP_EXEC_STREAMIFY_H_
#define SQP_EXEC_STREAMIFY_H_

#include <memory>
#include <string>

#include "exec/operator.h"
#include "window/time_window.h"

namespace sqp {

/// CQL's relation-to-stream operators (slide 26 "streamify"), applied to
/// the time-varying relation defined by a sliding window over the input:
///  - IStream: emits each tuple as it *enters* the window (identity on
///    append-only input, kept for plan completeness);
///  - DStream: emits each tuple as it *expires* from the window;
///  - RStream: emits the entire window contents every `period` time units.
enum class StreamifyKind { kIStream, kDStream, kRStream };

const char* StreamifyKindName(StreamifyKind kind);

class StreamifyOp : public Operator {
 public:
  /// `window_size` defines the underlying sliding window; `period` is the
  /// RStream sampling interval (ignored otherwise).
  StreamifyOp(StreamifyKind kind, int64_t window_size, int64_t period = 1,
              std::string name = "streamify");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

 private:
  void MaybeEmitSnapshots(int64_t now);

  StreamifyKind kind_;
  int64_t period_;
  TimeWindowBuffer buf_;
  int64_t last_snapshot_ = INT64_MIN;
};

}  // namespace sqp

#endif  // SQP_EXEC_STREAMIFY_H_
