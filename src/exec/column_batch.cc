#include "exec/column_batch.h"

namespace sqp {

Value ColumnBatch::Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type) {
    case ValueType::kInt:
      return Value::Int(ints[row]);
    case ValueType::kDouble:
      return Value::Double(dbls[row]);
    case ValueType::kString:
      return Value::String(std::string(Str(row)));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

void ColumnBatch::Clear() {
  for (Column& c : cols) c.Clear();
  ts.clear();
  puncts.clear();
  sel.clear();
  has_sel = false;
}

namespace {

/// Appends one value to a column whose type has already been fixed.
/// Null slots still append a placeholder so every array stays aligned
/// with the physical row index.
void AppendValue(ColumnBatch::Column* c, const Value& v, size_t row) {
  const bool is_null = v.is_null();
  if (is_null && c->nulls.empty() && c->type != ValueType::kNull) {
    // First null in a typed column: backfill the mask for the rows
    // already appended, then record this one (the push below must not
    // be skipped when row == 0 leaves the backfill empty).
    c->nulls.reserve(row + 1);
    c->nulls.assign(row, 0);
    c->nulls.push_back(1);
  } else if (!c->nulls.empty()) {
    c->nulls.push_back(is_null ? 1 : 0);
  }
  switch (c->type) {
    case ValueType::kInt:
      c->ints.push_back(is_null ? 0 : v.AsInt());
      break;
    case ValueType::kDouble:
      c->dbls.push_back(is_null ? 0.0 : v.AsDouble());
      break;
    case ValueType::kString: {
      if (!is_null) c->bytes.append(v.AsString());
      c->offsets.push_back(static_cast<uint32_t>(c->bytes.size()));
      break;
    }
    case ValueType::kNull:
      break;  // all-null column: no storage.
  }
}

}  // namespace

bool ColumnBatch::FromRows(const ElementBatch& in, ColumnBatch* out) {
  out->Clear();
  // Pass 1: arity + per-column type resolution. First non-null value
  // fixes a column's type; a later non-null of a different type makes
  // the batch non-columnar (row fallback) so kernels stay exactly typed.
  size_t arity = 0;
  bool have_tuple = false;
  for (const Element& e : in) {
    if (!e.is_tuple()) continue;
    const Tuple& t = *e.tuple();
    if (!have_tuple) {
      arity = t.arity();
      have_tuple = true;
      out->cols.resize(arity);
    } else if (t.arity() != arity) {
      out->Clear();
      out->cols.clear();
      return false;
    }
    for (size_t i = 0; i < arity; ++i) {
      const Value& v = t.at(i);
      if (v.is_null()) continue;
      Column& c = out->cols[i];
      if (c.type == ValueType::kNull) {
        c.type = v.type();
      } else if (c.type != v.type()) {
        out->Clear();
        out->cols.clear();
        return false;
      }
    }
  }
  // Pass 2: fill the arrays; punctuations become out-of-band slots
  // anchored to the physical row they precede.
  for (Column& c : out->cols) {
    if (c.type == ValueType::kString) c.offsets.push_back(0);
  }
  for (const Element& e : in) {
    if (e.is_punctuation()) {
      out->puncts.push_back(
          {static_cast<uint32_t>(out->ts.size()), e.punctuation()});
      continue;
    }
    if (!e.is_tuple()) continue;  // moved-from slot
    const Tuple& t = *e.tuple();
    const size_t row = out->ts.size();
    for (size_t i = 0; i < arity; ++i) {
      AppendValue(&out->cols[i], t.at(i), row);
    }
    out->ts.push_back(t.ts());
  }
  return true;
}

void ColumnBatch::MaterializeRows(ElementBatch* out) const {
  const size_t n = ActiveRows();
  const size_t width = cols.size();
  size_t pi = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = Active(k);
    while (pi < puncts.size() && puncts[pi].pos <= r) {
      out->push_back(Element(puncts[pi].punct));
      ++pi;
    }
    std::vector<Value> vals;
    vals.reserve(width);
    for (const Column& c : cols) vals.push_back(c.ValueAt(r));
    out->push_back(Element(MakeTuple(ts[r], std::move(vals))));
  }
  while (pi < puncts.size()) {
    out->push_back(Element(puncts[pi].punct));
    ++pi;
  }
}

size_t ColumnBatch::MemoryBytes() const {
  size_t bytes = sizeof(ColumnBatch);
  for (const Column& c : cols) {
    bytes += c.ints.capacity() * sizeof(int64_t) +
             c.dbls.capacity() * sizeof(double) +
             c.offsets.capacity() * sizeof(uint32_t) + c.bytes.capacity() +
             c.nulls.capacity();
  }
  bytes += ts.capacity() * sizeof(int64_t) +
           puncts.capacity() * sizeof(PunctSlot) +
           sel.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace sqp
