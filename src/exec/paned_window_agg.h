#ifndef SQP_EXEC_PANED_WINDOW_AGG_H_
#define SQP_EXEC_PANED_WINDOW_AGG_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "exec/operator.h"

namespace sqp {

/// Sliding-window aggregation with a slide step, evaluated with *panes*:
/// the window [s - W, s) is split into W/p disjoint panes of width
/// p = gcd(W, S); each pane is aggregated once, and each emission merges
/// the W/p pane partials. Work per slide is O(W/p) merges instead of
/// O(window contents) — the standard shared-subaggregation technique for
/// the overlapping windows of slide 27.
///
/// Requires mergeable aggregates (all built-in kinds qualify, including
/// the sketched ones). Output row: [ts = window end s, agg values...],
/// emitted once per slide boundary as soon as the stream provably passes
/// it (ordering attribute or watermark).
class PanedWindowAggregateOp : public Operator {
 public:
  struct Options {
    int64_t window = 60;
    int64_t slide = 10;
    std::vector<AggSpec> aggs;
  };

  explicit PanedWindowAggregateOp(Options options,
                                  std::string name = "paned-window-agg");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  int64_t pane_size() const { return pane_; }
  /// Accumulator merges performed (the cost panes optimize).
  uint64_t merges() const { return merges_; }

 private:
  using Accs = std::vector<std::unique_ptr<Accumulator>>;

  Accs NewAccs() const;
  void FoldTuple(const Tuple& t);
  /// Closes panes and emits slide boundaries implied by time `now`
  /// (exclusive: panes containing `now` stay open).
  void AdvanceTo(int64_t now);
  void ClosePane();
  void EmitBoundary(int64_t boundary);

  Options options_;
  int64_t pane_;
  std::vector<AggregateFunction> fns_;

  int64_t current_pane_ = INT64_MIN;  // Pane id of the open pane.
  Accs current_;
  /// Closed panes, oldest first: (pane id, partials). Holds at most
  /// window/pane entries.
  std::deque<std::pair<int64_t, Accs>> panes_;
  int64_t last_boundary_ = INT64_MIN;  // Last emitted window end.
  uint64_t merges_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_PANED_WINDOW_AGG_H_
