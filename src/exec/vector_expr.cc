#include "exec/vector_expr.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/strings.h"

namespace sqp {
namespace vec {

/// Compiled expression node: the Expr tree re-walked into a dumb struct
/// so evaluation never touches virtual dispatch. Constant subtrees are
/// folded at compile time.
struct VNode {
  enum Kind { kCol, kConst, kBin, kNot, kContains };
  Kind kind = kConst;
  int col = -1;     // kCol
  Value lit;        // kConst
  BinOp op = BinOp::kAdd;  // kBin
  std::unique_ptr<VNode> a, b;
};

namespace {

bool IsCmp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Scalar twin of BinaryExpr::Eval over already-evaluated operands —
/// the per-row body of the generic fallback loop. Must stay exactly in
/// step with exec/expr.cc.
Value EvalBinScalar(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::kAnd:
      if (!Truthy(a)) return Value(int64_t{0});
      return Value(int64_t{Truthy(b) ? 1 : 0});
    case BinOp::kOr:
      if (Truthy(a)) return Value(int64_t{1});
      return Value(int64_t{Truthy(b) ? 1 : 0});
    case BinOp::kAdd:
      return Value::Add(a, b).value_or(Value::Null());
    case BinOp::kSub:
      return Value::Sub(a, b).value_or(Value::Null());
    case BinOp::kMul:
      return Value::Mul(a, b).value_or(Value::Null());
    case BinOp::kDiv:
      return Value::Div(a, b).value_or(Value::Null());
    case BinOp::kMod:
      return Value::Mod(a, b).value_or(Value::Null());
    case BinOp::kEq:
      return Value(int64_t{a == b});
    case BinOp::kNe:
      return Value(int64_t{a != b});
    case BinOp::kLt:
      return Value(int64_t{a < b});
    case BinOp::kLe:
      return Value(int64_t{a <= b});
    case BinOp::kGt:
      return Value(int64_t{a > b});
    case BinOp::kGe:
      return Value(int64_t{a >= b});
  }
  return Value::Null();
}

Value EvalContainsScalar(const Value& h, const Value& n) {
  if (h.type() != ValueType::kString || n.type() != ValueType::kString) {
    return Value(int64_t{0});
  }
  return Value(int64_t{Contains(h.AsString(), n.AsString()) ? 1 : 0});
}

// ---------------------------------------------------------------------------
// Compile
// ---------------------------------------------------------------------------

std::unique_ptr<VNode> CompileNode(const Expr& e, int* max_col) {
  auto node = std::make_unique<VNode>();
  switch (e.kind()) {
    case ExprKind::kColumn: {
      node->kind = VNode::kCol;
      node->col = e.column_index();
      if (node->col < 0) return nullptr;
      *max_col = std::max(*max_col, node->col);
      return node;
    }
    case ExprKind::kConst: {
      node->kind = VNode::kConst;
      node->lit = *e.literal();
      return node;
    }
    case ExprKind::kBinary: {
      node->kind = VNode::kBin;
      node->op = e.bin_op();
      node->a = CompileNode(*e.child(0), max_col);
      if (node->a == nullptr) return nullptr;
      node->b = CompileNode(*e.child(1), max_col);
      if (node->b == nullptr) return nullptr;
      if (node->a->kind == VNode::kConst && node->b->kind == VNode::kConst) {
        Value folded = EvalBinScalar(node->op, node->a->lit, node->b->lit);
        node->kind = VNode::kConst;
        node->lit = std::move(folded);
        node->a.reset();
        node->b.reset();
      }
      return node;
    }
    case ExprKind::kNot: {
      node->kind = VNode::kNot;
      node->a = CompileNode(*e.child(0), max_col);
      if (node->a == nullptr) return nullptr;
      if (node->a->kind == VNode::kConst) {
        node->kind = VNode::kConst;
        node->lit = Value(int64_t{Truthy(node->a->lit) ? 0 : 1});
        node->a.reset();
      }
      return node;
    }
    case ExprKind::kContains: {
      node->kind = VNode::kContains;
      node->a = CompileNode(*e.child(0), max_col);
      if (node->a == nullptr) return nullptr;
      node->b = CompileNode(*e.child(1), max_col);
      if (node->b == nullptr) return nullptr;
      if (node->a->kind == VNode::kConst && node->b->kind == VNode::kConst) {
        node->lit = EvalContainsScalar(node->a->lit, node->b->lit);
        node->kind = VNode::kConst;
        node->a.reset();
        node->b.reset();
      }
      return node;
    }
    case ExprKind::kOther:
      return nullptr;  // Unknown node type: caller keeps the row path.
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// One node's result over the batch's live rows. Dense representations
/// hold one slot per *live* row (index k); column references stay
/// physical (index via the selection vector). kConst broadcasts.
struct VecVal {
  enum Rep { kConst, kColRef, kDenseInt, kDenseDbl, kDenseNull, kDenseVal };
  Rep rep = kDenseNull;
  Value cval;                                   // kConst
  const ColumnBatch::Column* colref = nullptr;  // kColRef
  std::vector<int64_t> ints;                    // kDenseInt
  std::vector<double> dbls;                     // kDenseDbl
  std::vector<Value> vals;                      // kDenseVal (generic)
  std::vector<uint8_t> nulls;  // dense reps: empty = no nulls
};

inline uint32_t Phys(const uint32_t* idx, size_t k) {
  return idx != nullptr ? idx[k] : static_cast<uint32_t>(k);
}

/// Rebuilds the boxed Value of one live row (generic-path accessor).
Value ValueOf(const VecVal& v, const uint32_t* idx, size_t k) {
  switch (v.rep) {
    case VecVal::kConst:
      return v.cval;
    case VecVal::kColRef:
      return v.colref->ValueAt(Phys(idx, k));
    case VecVal::kDenseInt:
      return (!v.nulls.empty() && v.nulls[k] != 0) ? Value::Null()
                                                   : Value::Int(v.ints[k]);
    case VecVal::kDenseDbl:
      return (!v.nulls.empty() && v.nulls[k] != 0) ? Value::Null()
                                                   : Value::Double(v.dbls[k]);
    case VecVal::kDenseNull:
      return Value::Null();
    case VecVal::kDenseVal:
      return v.vals[k];
  }
  return Value::Null();
}

/// A numeric operand admissible to the tight typed kernels: a numeric
/// constant, a no-null int/double column (physical indexing), or a
/// no-null dense intermediate (live indexing). Anything else (per-row
/// nulls, strings, generic results) routes to the per-row fallback.
struct NumSrc {
  bool ok = false;
  bool is_int = false;  // exact int64 source (no double involved)
  bool is_const = false;
  bool physical = false;  // index via idx[k] rather than k
  int64_t ci = 0;
  double cd = 0.0;
  const int64_t* ip = nullptr;
  const double* dp = nullptr;

  int64_t IntAt(uint32_t r, size_t k) const {
    return is_const ? ci : ip[physical ? r : k];
  }
  double DblAt(uint32_t r, size_t k) const {
    if (is_const) return cd;
    const size_t at = physical ? r : k;
    return ip != nullptr ? static_cast<double>(ip[at]) : dp[at];
  }
};

NumSrc MakeNumSrc(const VecVal& v) {
  NumSrc s;
  switch (v.rep) {
    case VecVal::kConst:
      if (v.cval.type() == ValueType::kInt) {
        s.ok = true;
        s.is_int = true;
        s.is_const = true;
        s.ci = v.cval.AsInt();
        s.cd = static_cast<double>(s.ci);
      } else if (v.cval.type() == ValueType::kDouble) {
        s.ok = true;
        s.is_const = true;
        s.cd = v.cval.AsDouble();
      }
      return s;
    case VecVal::kColRef:
      if (v.colref->HasNulls()) return s;
      if (v.colref->type == ValueType::kInt) {
        s.ok = true;
        s.is_int = true;
        s.physical = true;
        s.ip = v.colref->ints.data();
      } else if (v.colref->type == ValueType::kDouble) {
        s.ok = true;
        s.physical = true;
        s.dp = v.colref->dbls.data();
      }
      return s;
    case VecVal::kDenseInt:
      if (v.nulls.empty()) {
        s.ok = true;
        s.is_int = true;
        s.ip = v.ints.data();
      }
      return s;
    case VecVal::kDenseDbl:
      if (v.nulls.empty()) {
        s.ok = true;
        s.dp = v.dbls.data();
      }
      return s;
    default:
      return s;
  }
}

/// A string operand admissible to the string kernels: a string constant
/// or a no-null string column.
struct StrSrc {
  bool ok = false;
  bool is_const = false;
  std::string_view cs;
  const ColumnBatch::Column* col = nullptr;

  std::string_view At(uint32_t r) const { return is_const ? cs : col->Str(r); }
};

StrSrc MakeStrSrc(const VecVal& v) {
  StrSrc s;
  if (v.rep == VecVal::kConst && v.cval.type() == ValueType::kString) {
    s.ok = true;
    s.is_const = true;
    s.cs = v.cval.AsString();
  } else if (v.rep == VecVal::kColRef &&
             v.colref->type == ValueType::kString && !v.colref->HasNulls()) {
    s.ok = true;
    s.col = v.colref;
  }
  return s;
}

template <typename Pred>
void CmpLoopInt(const NumSrc& a, const NumSrc& b, const uint32_t* idx,
                size_t n, std::vector<int64_t>* out, Pred pred) {
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = Phys(idx, k);
    (*out)[k] = pred(a.IntAt(r, k), b.IntAt(r, k)) ? 1 : 0;
  }
}

template <typename Pred>
void CmpLoopDbl(const NumSrc& a, const NumSrc& b, const uint32_t* idx,
                size_t n, std::vector<int64_t>* out, Pred pred) {
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = Phys(idx, k);
    (*out)[k] = pred(a.DblAt(r, k), b.DblAt(r, k)) ? 1 : 0;
  }
}

/// Numeric comparison kernel. The double predicates are spelled so NaN
/// behaves exactly like Value::Compare (NaN compares "equal": both a<b
/// and a>b false -> 0): kEq is !(a<b)&&!(a>b), kLe is !(a>b), etc.
void CmpKernel(BinOp op, const NumSrc& a, const NumSrc& b,
               const uint32_t* idx, size_t n, VecVal* out) {
  out->rep = VecVal::kDenseInt;
  out->ints.resize(n);
  out->nulls.clear();
  std::vector<int64_t>* o = &out->ints;
  if (a.is_int && b.is_int) {
    switch (op) {
      case BinOp::kEq:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x == y; });
        break;
      case BinOp::kNe:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x != y; });
        break;
      case BinOp::kLt:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x < y; });
        break;
      case BinOp::kLe:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x <= y; });
        break;
      case BinOp::kGt:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x > y; });
        break;
      case BinOp::kGe:
        CmpLoopInt(a, b, idx, n, o, [](int64_t x, int64_t y) { return x >= y; });
        break;
      default:
        break;
    }
    return;
  }
  switch (op) {
    case BinOp::kEq:
      CmpLoopDbl(a, b, idx, n, o,
                 [](double x, double y) { return !(x < y) && !(x > y); });
      break;
    case BinOp::kNe:
      CmpLoopDbl(a, b, idx, n, o,
                 [](double x, double y) { return x < y || x > y; });
      break;
    case BinOp::kLt:
      CmpLoopDbl(a, b, idx, n, o, [](double x, double y) { return x < y; });
      break;
    case BinOp::kLe:
      CmpLoopDbl(a, b, idx, n, o, [](double x, double y) { return !(x > y); });
      break;
    case BinOp::kGt:
      CmpLoopDbl(a, b, idx, n, o, [](double x, double y) { return x > y; });
      break;
    case BinOp::kGe:
      CmpLoopDbl(a, b, idx, n, o, [](double x, double y) { return !(x < y); });
      break;
    default:
      break;
  }
}

/// String comparison kernel (both operands no-null strings). Matches
/// Value::Compare's byte order.
void StrCmpKernel(BinOp op, const StrSrc& a, const StrSrc& b,
                  const uint32_t* idx, size_t n, VecVal* out) {
  out->rep = VecVal::kDenseInt;
  out->ints.resize(n);
  out->nulls.clear();
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = Phys(idx, k);
    const int c = a.At(r).compare(b.At(r));
    bool v = false;
    switch (op) {
      case BinOp::kEq:
        v = c == 0;
        break;
      case BinOp::kNe:
        v = c != 0;
        break;
      case BinOp::kLt:
        v = c < 0;
        break;
      case BinOp::kLe:
        v = c <= 0;
        break;
      case BinOp::kGt:
        v = c > 0;
        break;
      case BinOp::kGe:
        v = c >= 0;
        break;
      default:
        break;
    }
    out->ints[k] = v ? 1 : 0;
  }
}

void SetNull(VecVal* out, size_t n, size_t k) {
  if (out->nulls.empty()) out->nulls.assign(n, 0);
  out->nulls[k] = 1;
}

/// Arithmetic kernel for NumSrc operands. Int/int stays int (with
/// per-row null on /0 and %0, exactly like Value::Div/Mod); any double
/// operand promotes the whole result to double.
void ArithKernel(BinOp op, const NumSrc& a, const NumSrc& b,
                 const uint32_t* idx, size_t n, VecVal* out) {
  out->nulls.clear();
  if (a.is_int && b.is_int) {
    out->rep = VecVal::kDenseInt;
    out->ints.resize(n);
    for (size_t k = 0; k < n; ++k) {
      const uint32_t r = Phys(idx, k);
      const int64_t x = a.IntAt(r, k), y = b.IntAt(r, k);
      int64_t v = 0;
      switch (op) {
        case BinOp::kAdd:
          v = x + y;
          break;
        case BinOp::kSub:
          v = x - y;
          break;
        case BinOp::kMul:
          v = x * y;
          break;
        case BinOp::kDiv:
          if (y == 0) {
            SetNull(out, n, k);
          } else {
            v = x / y;
          }
          break;
        case BinOp::kMod:
          if (y == 0) {
            SetNull(out, n, k);
          } else {
            v = x % y;
          }
          break;
        default:
          break;
      }
      out->ints[k] = v;
    }
    return;
  }
  out->rep = VecVal::kDenseDbl;
  out->dbls.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = Phys(idx, k);
    const double x = a.DblAt(r, k), y = b.DblAt(r, k);
    double v = 0.0;
    switch (op) {
      case BinOp::kAdd:
        v = x + y;
        break;
      case BinOp::kSub:
        v = x - y;
        break;
      case BinOp::kMul:
        v = x * y;
        break;
      case BinOp::kDiv:
        if (y == 0.0) {
          SetNull(out, n, k);
        } else {
          v = x / y;
        }
        break;
      default:
        break;
    }
    out->dbls[k] = v;
  }
}

/// Truthiness of each live row as a dense 0/1 vector (the And/Or/Not
/// combine domain; also the Filter refine input). Matches Truthy().
void TruthyMask(const VecVal& v, const uint32_t* idx, size_t n,
                std::vector<int64_t>* out) {
  out->resize(n);
  switch (v.rep) {
    case VecVal::kConst: {
      const int64_t t = Truthy(v.cval) ? 1 : 0;
      std::fill(out->begin(), out->end(), t);
      return;
    }
    case VecVal::kDenseNull:
      std::fill(out->begin(), out->end(), int64_t{0});
      return;
    case VecVal::kDenseInt:
      for (size_t k = 0; k < n; ++k) {
        (*out)[k] =
            ((v.nulls.empty() || v.nulls[k] == 0) && v.ints[k] != 0) ? 1 : 0;
      }
      return;
    case VecVal::kDenseDbl:
      for (size_t k = 0; k < n; ++k) {
        (*out)[k] =
            ((v.nulls.empty() || v.nulls[k] == 0) && v.dbls[k] != 0.0) ? 1 : 0;
      }
      return;
    case VecVal::kDenseVal:
      for (size_t k = 0; k < n; ++k) (*out)[k] = Truthy(v.vals[k]) ? 1 : 0;
      return;
    case VecVal::kColRef: {
      const ColumnBatch::Column& c = *v.colref;
      switch (c.type) {
        case ValueType::kNull:
          std::fill(out->begin(), out->end(), int64_t{0});
          return;
        case ValueType::kInt:
          for (size_t k = 0; k < n; ++k) {
            const uint32_t r = Phys(idx, k);
            (*out)[k] = (!c.IsNull(r) && c.ints[r] != 0) ? 1 : 0;
          }
          return;
        case ValueType::kDouble:
          for (size_t k = 0; k < n; ++k) {
            const uint32_t r = Phys(idx, k);
            (*out)[k] = (!c.IsNull(r) && c.dbls[r] != 0.0) ? 1 : 0;
          }
          return;
        case ValueType::kString:
          for (size_t k = 0; k < n; ++k) {
            const uint32_t r = Phys(idx, k);
            (*out)[k] = (!c.IsNull(r) && !c.Str(r).empty()) ? 1 : 0;
          }
          return;
      }
      return;
    }
  }
}

void EvalNode(const VNode& nd, const ColumnBatch& cb, const uint32_t* idx,
              size_t n, VecVal* out);

/// Per-row fallback for a binary node: boxes operand Values and applies
/// the scalar twin. Correct for every operand/type combination.
void GenericBin(BinOp op, const VecVal& a, const VecVal& b,
                const uint32_t* idx, size_t n, VecVal* out) {
  out->rep = VecVal::kDenseVal;
  out->vals.resize(n);
  for (size_t k = 0; k < n; ++k) {
    out->vals[k] = EvalBinScalar(op, ValueOf(a, idx, k), ValueOf(b, idx, k));
  }
}

void EvalBinNode(const VNode& nd, const ColumnBatch& cb, const uint32_t* idx,
                 size_t n, VecVal* out) {
  VecVal a, b;
  EvalNode(*nd.a, cb, idx, n, &a);
  EvalNode(*nd.b, cb, idx, n, &b);
  if (nd.op == BinOp::kAnd || nd.op == BinOp::kOr) {
    // Operands are side-effect-free, so evaluating both columns fully is
    // equivalent to the scalar short-circuit.
    std::vector<int64_t> ta, tb;
    TruthyMask(a, idx, n, &ta);
    TruthyMask(b, idx, n, &tb);
    out->rep = VecVal::kDenseInt;
    out->nulls.clear();
    out->ints.resize(n);
    if (nd.op == BinOp::kAnd) {
      for (size_t k = 0; k < n; ++k) out->ints[k] = ta[k] & tb[k];
    } else {
      for (size_t k = 0; k < n; ++k) out->ints[k] = ta[k] | tb[k];
    }
    return;
  }
  if (IsCmp(nd.op)) {
    const NumSrc na = MakeNumSrc(a), nb = MakeNumSrc(b);
    if (na.ok && nb.ok) {
      CmpKernel(nd.op, na, nb, idx, n, out);
      return;
    }
    const StrSrc sa = MakeStrSrc(a), sb = MakeStrSrc(b);
    if (sa.ok && sb.ok) {
      StrCmpKernel(nd.op, sa, sb, idx, n, out);
      return;
    }
    GenericBin(nd.op, a, b, idx, n, out);
    return;
  }
  // Arithmetic.
  const NumSrc na = MakeNumSrc(a), nb = MakeNumSrc(b);
  const bool mod_ok = nd.op != BinOp::kMod || (na.is_int && nb.is_int);
  if (na.ok && nb.ok && mod_ok) {
    ArithKernel(nd.op, na, nb, idx, n, out);
    return;
  }
  GenericBin(nd.op, a, b, idx, n, out);
}

void EvalNode(const VNode& nd, const ColumnBatch& cb, const uint32_t* idx,
              size_t n, VecVal* out) {
  switch (nd.kind) {
    case VNode::kConst:
      out->rep = VecVal::kConst;
      out->cval = nd.lit;
      return;
    case VNode::kCol:
      out->rep = VecVal::kColRef;
      out->colref = &cb.cols[static_cast<size_t>(nd.col)];
      return;
    case VNode::kBin:
      EvalBinNode(nd, cb, idx, n, out);
      return;
    case VNode::kNot: {
      VecVal a;
      EvalNode(*nd.a, cb, idx, n, &a);
      std::vector<int64_t> t;
      TruthyMask(a, idx, n, &t);
      out->rep = VecVal::kDenseInt;
      out->nulls.clear();
      out->ints.resize(n);
      for (size_t k = 0; k < n; ++k) out->ints[k] = 1 - t[k];
      return;
    }
    case VNode::kContains: {
      VecVal a, b;
      EvalNode(*nd.a, cb, idx, n, &a);
      EvalNode(*nd.b, cb, idx, n, &b);
      const StrSrc sa = MakeStrSrc(a), sb = MakeStrSrc(b);
      out->rep = VecVal::kDenseInt;
      out->nulls.clear();
      out->ints.resize(n);
      if (sa.ok && sb.ok) {
        for (size_t k = 0; k < n; ++k) {
          const uint32_t r = Phys(idx, k);
          out->ints[k] = Contains(sa.At(r), sb.At(r)) ? 1 : 0;
        }
      } else {
        for (size_t k = 0; k < n; ++k) {
          out->ints[k] =
              EvalContainsScalar(ValueOf(a, idx, k), ValueOf(b, idx, k))
                  .AsInt();
        }
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Projection materialization helpers
// ---------------------------------------------------------------------------

void GatherColumn(const ColumnBatch::Column& src, const uint32_t* idx,
                  size_t n, ColumnBatch::Column* dst) {
  dst->Clear();
  dst->type = src.type;
  if (idx == nullptr) {
    *dst = src;  // whole column survives: flat array copies
    return;
  }
  const bool has_nulls = src.HasNulls();
  if (has_nulls) dst->nulls.reserve(n);
  switch (src.type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      dst->ints.reserve(n);
      for (size_t k = 0; k < n; ++k) dst->ints.push_back(src.ints[idx[k]]);
      break;
    case ValueType::kDouble:
      dst->dbls.reserve(n);
      for (size_t k = 0; k < n; ++k) dst->dbls.push_back(src.dbls[idx[k]]);
      break;
    case ValueType::kString:
      dst->offsets.reserve(n + 1);
      dst->offsets.push_back(0);
      for (size_t k = 0; k < n; ++k) {
        dst->bytes.append(src.Str(idx[k]));
        dst->offsets.push_back(static_cast<uint32_t>(dst->bytes.size()));
      }
      break;
  }
  if (has_nulls) {
    for (size_t k = 0; k < n; ++k) dst->nulls.push_back(src.nulls[idx[k]]);
  }
}

void FillConst(const Value& v, size_t n, ColumnBatch::Column* dst) {
  dst->Clear();
  dst->type = v.type();
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      dst->ints.assign(n, v.AsInt());
      break;
    case ValueType::kDouble:
      dst->dbls.assign(n, v.AsDouble());
      break;
    case ValueType::kString: {
      const std::string& s = v.AsString();
      dst->offsets.reserve(n + 1);
      dst->offsets.push_back(0);
      dst->bytes.reserve(n * s.size());
      for (size_t k = 0; k < n; ++k) {
        dst->bytes.append(s);
        dst->offsets.push_back(static_cast<uint32_t>(dst->bytes.size()));
      }
      break;
    }
  }
}

/// Lands an evaluated VecVal as a dense output column. Returns false
/// when a generic (kDenseVal) result mixes non-null types across rows —
/// not representable columnarly, so the whole batch falls back.
bool VecToColumn(VecVal&& v, const uint32_t* idx, size_t n,
                 ColumnBatch::Column* dst) {
  switch (v.rep) {
    case VecVal::kConst:
      FillConst(v.cval, n, dst);
      return true;
    case VecVal::kColRef:
      GatherColumn(*v.colref, idx, n, dst);
      return true;
    case VecVal::kDenseInt:
      dst->Clear();
      dst->type = ValueType::kInt;
      dst->ints = std::move(v.ints);
      dst->nulls = std::move(v.nulls);
      return true;
    case VecVal::kDenseDbl:
      dst->Clear();
      dst->type = ValueType::kDouble;
      dst->dbls = std::move(v.dbls);
      dst->nulls = std::move(v.nulls);
      return true;
    case VecVal::kDenseNull:
      dst->Clear();
      return true;
    case VecVal::kDenseVal: {
      dst->Clear();
      ValueType t = ValueType::kNull;
      for (const Value& val : v.vals) {
        if (val.is_null()) continue;
        if (t == ValueType::kNull) {
          t = val.type();
        } else if (t != val.type()) {
          return false;
        }
      }
      dst->type = t;
      if (t == ValueType::kString) dst->offsets.push_back(0);
      for (size_t k = 0; k < n; ++k) {
        const Value& val = v.vals[k];
        const bool is_null = val.is_null();
        if (is_null && dst->nulls.empty() && t != ValueType::kNull) {
          dst->nulls.assign(k, 0);
        }
        if (!dst->nulls.empty()) dst->nulls.push_back(is_null ? 1 : 0);
        switch (t) {
          case ValueType::kNull:
            break;
          case ValueType::kInt:
            dst->ints.push_back(is_null ? 0 : val.AsInt());
            break;
          case ValueType::kDouble:
            dst->dbls.push_back(is_null ? 0.0 : val.AsDouble());
            break;
          case ValueType::kString:
            if (!is_null) dst->bytes.append(val.AsString());
            dst->offsets.push_back(static_cast<uint32_t>(dst->bytes.size()));
            break;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// CompiledPredicate
// ---------------------------------------------------------------------------

CompiledPredicate::CompiledPredicate(std::unique_ptr<VNode> root, int max_col)
    : root_(std::move(root)), max_col_(max_col) {}

CompiledPredicate::~CompiledPredicate() = default;

std::unique_ptr<CompiledPredicate> CompiledPredicate::Compile(const Expr& e) {
  int max_col = -1;
  std::unique_ptr<VNode> root = CompileNode(e, &max_col);
  if (root == nullptr) return nullptr;
  return std::unique_ptr<CompiledPredicate>(
      new CompiledPredicate(std::move(root), max_col));
}

bool CompiledPredicate::Filter(ColumnBatch* cb) const {
  if (max_col_ >= 0 && static_cast<size_t>(max_col_) >= cb->width()) {
    return false;  // batch narrower than the plan: row path handles it
  }
  const size_t n = cb->ActiveRows();
  if (n == 0) return true;
  const uint32_t* idx = cb->has_sel ? cb->sel.data() : nullptr;
  VecVal v;
  EvalNode(*root_, *cb, idx, n, &v);
  if (v.rep == VecVal::kConst) {
    // Constant predicate: keep everything or drop everything.
    if (Truthy(v.cval)) return true;
    cb->sel.clear();
    cb->has_sel = true;
    return true;
  }
  std::vector<int64_t> keep;
  TruthyMask(v, idx, n, &keep);
  if (!cb->has_sel) {
    cb->sel.clear();
    cb->sel.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      if (keep[k] != 0) cb->sel.push_back(static_cast<uint32_t>(k));
    }
    cb->has_sel = true;
  } else {
    // Refine in place: writes trail reads, both ascending.
    size_t j = 0;
    for (size_t k = 0; k < n; ++k) {
      if (keep[k] != 0) cb->sel[j++] = cb->sel[k];
    }
    cb->sel.resize(j);
  }
  return true;
}

// ---------------------------------------------------------------------------
// CompiledProjection
// ---------------------------------------------------------------------------

CompiledProjection::CompiledProjection(
    std::vector<std::unique_ptr<VNode>> outs, int max_col)
    : outs_(std::move(outs)), max_col_(max_col) {}

CompiledProjection::~CompiledProjection() = default;

std::unique_ptr<CompiledProjection> CompiledProjection::Compile(
    const std::vector<ExprRef>& exprs) {
  int max_col = -1;
  std::vector<std::unique_ptr<VNode>> outs;
  outs.reserve(exprs.size());
  for (const ExprRef& e : exprs) {
    if (e == nullptr) return nullptr;
    std::unique_ptr<VNode> node = CompileNode(*e, &max_col);
    if (node == nullptr) return nullptr;
    outs.push_back(std::move(node));
  }
  return std::unique_ptr<CompiledProjection>(
      new CompiledProjection(std::move(outs), max_col));
}

bool CompiledProjection::Project(const ColumnBatch& in,
                                 ColumnBatch* out) const {
  if (max_col_ >= 0 && static_cast<size_t>(max_col_) >= in.width()) {
    return false;
  }
  out->Clear();
  const size_t n = in.ActiveRows();
  const uint32_t* idx = in.has_sel ? in.sel.data() : nullptr;
  out->cols.resize(outs_.size());
  for (size_t i = 0; i < outs_.size(); ++i) {
    const VNode& nd = *outs_[i];
    if (nd.kind == VNode::kCol) {
      GatherColumn(in.cols[static_cast<size_t>(nd.col)], idx, n,
                   &out->cols[i]);
      continue;
    }
    if (nd.kind == VNode::kConst) {
      FillConst(nd.lit, n, &out->cols[i]);
      continue;
    }
    VecVal v;
    EvalNode(nd, in, idx, n, &v);
    if (!VecToColumn(std::move(v), idx, n, &out->cols[i])) {
      out->Clear();
      return false;
    }
  }
  // Timestamps survive projection unchanged (gathered over live rows).
  out->ts.reserve(n);
  for (size_t k = 0; k < n; ++k) out->ts.push_back(in.ts[in.Active(k)]);
  // Remap punctuation anchors across the dropped rows: the new position
  // is the number of live rows preceding the old physical position.
  out->puncts.reserve(in.puncts.size());
  for (const ColumnBatch::PunctSlot& p : in.puncts) {
    uint32_t pos = p.pos;
    if (in.has_sel) {
      pos = static_cast<uint32_t>(
          std::lower_bound(in.sel.begin(), in.sel.end(), p.pos) -
          in.sel.begin());
    }
    out->puncts.push_back({pos, p.punct});
  }
  return true;
}

}  // namespace vec
}  // namespace sqp
