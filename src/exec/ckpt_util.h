#ifndef SQP_EXEC_CKPT_UTIL_H_
#define SQP_EXEC_CKPT_UTIL_H_

#include <memory>
#include <vector>

#include "agg/aggregate_fn.h"
#include "common/tuple.h"
#include "dur/codec.h"

/// Shared (de)serialization helpers for CheckpointableOperator
/// implementations: grouping keys and per-group accumulator lists.
namespace sqp {
namespace ckpt {

inline void SaveKey(dur::BufWriter& w, const Key& k) {
  w.U32(static_cast<uint32_t>(k.parts.size()));
  for (const Value& v : k.parts) w.Val(v);
}

inline Status LoadKey(dur::BufReader& r, Key* k) {
  uint32_t n = 0;
  SQP_RETURN_NOT_OK(r.U32(&n));
  k->parts.clear();
  k->parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    SQP_RETURN_NOT_OK(r.Val(&v));
    k->parts.push_back(std::move(v));
  }
  return Status::OK();
}

/// u32 count, then per accumulator a u8 kind tag (restore-time sanity
/// check) and the accumulator's own state. Returns false if any
/// accumulator lacks a serializer — callers should have screened with
/// AggStateSerializable via CanCheckpointState first.
inline bool SaveAccs(dur::BufWriter& w,
                     const std::vector<std::unique_ptr<Accumulator>>& accs) {
  w.U32(static_cast<uint32_t>(accs.size()));
  for (const auto& acc : accs) {
    w.U8(static_cast<uint8_t>(acc->kind()));
    if (!acc->SaveState(w)) return false;
  }
  return true;
}

/// Rebuilds fresh accumulators from `fns` and loads their saved state.
inline Status LoadAccs(dur::BufReader& r,
                       const std::vector<AggregateFunction>& fns,
                       std::vector<std::unique_ptr<Accumulator>>* out) {
  uint32_t n = 0;
  SQP_RETURN_NOT_OK(r.U32(&n));
  if (n != fns.size()) {
    return Status::Internal("checkpoint accumulator count mismatch");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    SQP_RETURN_NOT_OK(r.U8(&kind));
    if (static_cast<AggKind>(kind) != fns[i].kind()) {
      return Status::Internal("checkpoint accumulator kind mismatch");
    }
    auto acc = fns[i].NewAccumulator();
    SQP_RETURN_NOT_OK(acc->LoadState(r));
    out->push_back(std::move(acc));
  }
  return Status::OK();
}

}  // namespace ckpt
}  // namespace sqp

#endif  // SQP_EXEC_CKPT_UTIL_H_
