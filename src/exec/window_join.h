#ifndef SQP_EXEC_WINDOW_JOIN_H_
#define SQP_EXEC_WINDOW_JOIN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/operator.h"
#include "exec/sharding.h"
#include "window/count_window.h"
#include "window/time_window.h"
#include "window/window_spec.h"

namespace sqp {

/// Per-side evaluation strategy for the KNV03 window join (slide 33):
/// nested-loop scans the opposite window; hash keeps an index on it.
/// Hash spends memory to save CPU; nested-loop the reverse — choosing
/// per side ("asymmetric join processing") wins when rates differ.
enum class JoinStrategy { kNestedLoop, kHash };

const char* JoinStrategyName(JoinStrategy s);

/// Cost counters used by the E3 experiments.
struct WindowJoinStats {
  /// Tuple comparisons performed by nested-loop probes.
  uint64_t nl_comparisons = 0;
  /// Hash probes performed.
  uint64_t hash_probes = 0;
  /// Join output tuples.
  uint64_t results = 0;
  /// Padded rows emitted for unmatched left tuples (left_outer only).
  uint64_t unmatched_left = 0;
};

/// Binary sliding-window equijoin [KNV03] (slide 32).
///
/// On a new tuple from stream A:
///   1. scan/probe B's window for matches and emit results,
///   2. insert the tuple into A's window,
///   3. invalidate expired tuples in A's window.
///
/// Windows are per-side (time- or count-based); probe strategy is
/// per-side too: `left_strategy` is the strategy used to probe the
/// *left* window (i.e. applied when a right tuple arrives).
class BinaryWindowJoinOp : public Operator, public ShardableOperator {
 public:
  struct Options {
    std::vector<int> left_cols;
    std::vector<int> right_cols;
    WindowSpec left_window = WindowSpec::TimeSliding(100);
    WindowSpec right_window = WindowSpec::TimeSliding(100);
    JoinStrategy left_strategy = JoinStrategy::kHash;
    JoinStrategy right_strategy = JoinStrategy::kHash;
    /// LEFT OUTER semantics: a left tuple that leaves its window without
    /// ever matching is emitted padded with `right_arity` nulls. The
    /// natural stream form of an outer join — the "no reply" case of
    /// the SYN/SYN-ACK monitor (connection attempts that never complete).
    bool left_outer = false;
    size_t right_arity = 0;
  };

  explicit BinaryWindowJoinOp(Options options,
                              std::string name = "window-join");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  const WindowJoinStats& join_stats() const { return jstats_; }

  std::unique_ptr<Operator> CloneReplica() const override {
    return std::make_unique<BinaryWindowJoinOp>(options_, name());
  }
  std::vector<std::vector<int>> ShardKeyColumns() const override {
    return {options_.left_cols, options_.right_cols};
  }
  /// Time windows shard cleanly (expiry is by timestamp, identical on
  /// every replica). Count windows don't: a shard's last-N of its slice
  /// is not the stream's last-N. Outer joins don't either: pad-row
  /// timestamps come from the window's shard-local clock.
  bool CanShard(std::string* why) const override;

 private:
  struct Side {
    std::vector<int> key_cols;
    WindowSpec window;
    JoinStrategy strategy = JoinStrategy::kHash;
    std::unique_ptr<TimeWindowBuffer> time_buf;
    std::unique_ptr<CountWindowBuffer> count_buf;
    /// Hash index over the window (kHash only); lazily purged.
    /// KeyView-probed: arrivals and expiries never allocate for lookups.
    KeyMap<std::vector<TupleRef>> index;
    size_t index_bytes = 0;
  };

  void Insert(Side& side, const TupleRef& t);
  /// Returns the number of matches produced. `key` is a borrowed view of
  /// `t`'s key columns (valid for the duration of the call).
  uint64_t Probe(const Side& probe_side, const KeyView& key, const Tuple& t,
                 bool t_is_left);
  void RemoveFromIndex(Side& side, const std::vector<TupleRef>& expired);
  /// Expiry hook: index cleanup plus outer-join emission for side 0.
  void HandleExpired(int side, const std::vector<TupleRef>& expired);
  void EmitJoined(const Tuple& left, const Tuple& right);
  void EmitUnmatchedLeft(const Tuple& left, int64_t ts);

  /// Retained verbatim so CloneReplica can build identical replicas.
  Options options_;
  bool left_outer_ = false;
  size_t right_arity_ = 0;
  Side sides_[2];
  /// Left tuples that have participated in at least one result
  /// (left_outer only; entries are purged on expiry).
  std::unordered_set<const Tuple*> left_matched_;
  WindowJoinStats jstats_;
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_WINDOW_JOIN_H_
