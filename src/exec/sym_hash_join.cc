#include "exec/sym_hash_join.h"

#include <algorithm>

namespace sqp {

SymmetricHashJoinOp::SymmetricHashJoinOp(std::vector<int> left_cols,
                                         std::vector<int> right_cols,
                                         std::string name)
    : Operator(std::move(name)) {
  key_cols_[0] = std::move(left_cols);
  key_cols_[1] = std::move(right_cols);
}

void SymmetricHashJoinOp::EmitJoined(const Tuple& left, const Tuple& right) {
  std::vector<Value> row;
  row.reserve(left.arity() + right.arity());
  row.insert(row.end(), left.values().begin(), left.values().end());
  row.insert(row.end(), right.values().begin(), right.values().end());
  Emit(Element(MakeTuple(std::max(left.ts(), right.ts()), std::move(row))));
}

void SymmetricHashJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  int side = port == 0 ? 0 : 1;
  int other = 1 - side;
  const TupleRef& t = e.tuple();
  // Probe and insert through a borrowed view: an owning Key is only
  // materialized the first time a key value is seen on this side.
  KeyView key(*t, key_cols_[side]);

  // Probe the other side's table first, then insert (no self-pairing).
  auto it = table_[other].find(key);
  if (it != table_[other].end()) {
    for (const TupleRef& match : it->second) {
      if (side == 0) {
        EmitJoined(*t, *match);
      } else {
        EmitJoined(*match, *t);
      }
    }
  }
  table_bytes_[side] += t->MemoryBytes();
  auto own = table_[side].find(key);
  if (own == table_[side].end()) {
    own = table_[side].emplace(key.Materialize(), std::vector<TupleRef>{})
              .first;
  }
  own->second.push_back(t);
}

void SymmetricHashJoinOp::Flush() {
  if (++flushes_ < 2) return;
  Operator::Flush();
}

size_t SymmetricHashJoinOp::StateBytes() const {
  return sizeof(*this) + table_bytes_[0] + table_bytes_[1];
}

}  // namespace sqp
