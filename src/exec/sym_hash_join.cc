#include "exec/sym_hash_join.h"

#include <algorithm>

#include "exec/ckpt_util.h"

namespace sqp {

SymmetricHashJoinOp::SymmetricHashJoinOp(std::vector<int> left_cols,
                                         std::vector<int> right_cols,
                                         std::string name)
    : Operator(std::move(name)) {
  key_cols_[0] = std::move(left_cols);
  key_cols_[1] = std::move(right_cols);
}

void SymmetricHashJoinOp::EmitJoined(const Tuple& left, const Tuple& right) {
  std::vector<Value> row;
  row.reserve(left.arity() + right.arity());
  row.insert(row.end(), left.values().begin(), left.values().end());
  row.insert(row.end(), right.values().begin(), right.values().end());
  Emit(Element(MakeTuple(std::max(left.ts(), right.ts()), std::move(row))));
}

void SymmetricHashJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  int side = port == 0 ? 0 : 1;
  int other = 1 - side;
  const TupleRef& t = e.tuple();
  // Probe and insert through a borrowed view: an owning Key is only
  // materialized the first time a key value is seen on this side.
  KeyView key(*t, key_cols_[side]);

  // Probe the other side's table first, then insert (no self-pairing).
  auto it = table_[other].find(key);
  if (it != table_[other].end()) {
    for (const TupleRef& match : it->second) {
      if (side == 0) {
        EmitJoined(*t, *match);
      } else {
        EmitJoined(*match, *t);
      }
    }
  }
  table_bytes_[side] += t->MemoryBytes();
  auto own = table_[side].find(key);
  if (own == table_[side].end()) {
    own = table_[side].emplace(key.Materialize(), std::vector<TupleRef>{})
              .first;
  }
  own->second.push_back(t);
}

void SymmetricHashJoinOp::Flush() {
  if (++flushes_ < 2) return;
  Operator::Flush();
}

size_t SymmetricHashJoinOp::StateBytes() const {
  return sizeof(*this) + table_bytes_[0] + table_bytes_[1];
}

void SymmetricHashJoinOp::SaveState(dur::BufWriter& w) const {
  w.I64(flushes_);
  for (int side = 0; side < 2; ++side) {
    w.U32(static_cast<uint32_t>(table_[side].size()));
    for (const auto& [key, tuples] : table_[side]) {
      ckpt::SaveKey(w, key);
      w.U32(static_cast<uint32_t>(tuples.size()));
      for (const TupleRef& t : tuples) w.Tup(*t);
    }
  }
}

Status SymmetricHashJoinOp::RestoreState(dur::BufReader& r) {
  int64_t flushes = 0;
  SQP_RETURN_NOT_OK(r.I64(&flushes));
  flushes_ = static_cast<int>(flushes);
  for (int side = 0; side < 2; ++side) {
    table_[side].clear();
    table_bytes_[side] = 0;
    uint32_t nkeys = 0;
    SQP_RETURN_NOT_OK(r.U32(&nkeys));
    for (uint32_t k = 0; k < nkeys; ++k) {
      Key key;
      SQP_RETURN_NOT_OK(ckpt::LoadKey(r, &key));
      uint32_t ntuples = 0;
      SQP_RETURN_NOT_OK(r.U32(&ntuples));
      std::vector<TupleRef> tuples;
      tuples.reserve(ntuples);
      for (uint32_t i = 0; i < ntuples; ++i) {
        TupleRef t;
        SQP_RETURN_NOT_OK(r.Tup(&t));
        table_bytes_[side] += t->MemoryBytes();
        tuples.push_back(std::move(t));
      }
      table_[side].emplace(std::move(key), std::move(tuples));
    }
  }
  return Status::OK();
}

}  // namespace sqp
