#ifndef SQP_EXEC_WINDOW_AGG_H_
#define SQP_EXEC_WINDOW_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "exec/operator.h"
#include "window/count_window.h"
#include "window/time_window.h"
#include "window/window_spec.h"

namespace sqp {

/// Sliding-window aggregation: for each arriving tuple, emits the current
/// aggregate over the window (IStream semantics of a windowed aggregate).
///
/// Invertible aggregates (count/sum/avg/stddev) are maintained
/// incrementally in O(1) per tuple; non-invertible ones (min/max/median/
/// count-distinct) are recomputed from the window buffer on expiry, the
/// textbook cost asymmetry between the two classes.
///
/// Output row: [ts, agg...]. Supports time-sliding, count-sliding and
/// landmark (agglomerative) windows (slide 27).
class WindowAggregateOp : public Operator {
 public:
  WindowAggregateOp(WindowSpec window, std::vector<AggSpec> aggs,
                    std::string name = "window-agg");

  void Push(const Element& e, int port = 0) override;
  size_t StateBytes() const override;

  /// Number of full recomputations triggered by non-invertible aggregates.
  uint64_t recompute_count() const { return recomputes_; }

 private:
  void AddToAccs(const Tuple& t);
  void RemoveFromAccs(const Tuple& t);
  void RecomputeFromBuffer();
  void EmitCurrent(int64_t ts);
  Value InputOf(const AggSpec& s, const Tuple& t) const;

  WindowSpec window_;
  std::vector<AggSpec> agg_specs_;
  std::vector<AggregateFunction> fns_;
  std::vector<std::unique_ptr<Accumulator>> accs_;
  bool all_invertible_;

  std::unique_ptr<TimeWindowBuffer> time_buf_;
  std::unique_ptr<CountWindowBuffer> count_buf_;
  uint64_t recomputes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_WINDOW_AGG_H_
