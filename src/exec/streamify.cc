#include "exec/streamify.h"

namespace sqp {

const char* StreamifyKindName(StreamifyKind kind) {
  switch (kind) {
    case StreamifyKind::kIStream:
      return "istream";
    case StreamifyKind::kDStream:
      return "dstream";
    case StreamifyKind::kRStream:
      return "rstream";
  }
  return "?";
}

StreamifyOp::StreamifyOp(StreamifyKind kind, int64_t window_size,
                         int64_t period, std::string name)
    : Operator(std::move(name)),
      kind_(kind),
      period_(period),
      buf_(window_size) {}

void StreamifyOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    std::vector<TupleRef> expired;
    buf_.AdvanceTo(e.punctuation().ts, &expired);
    if (kind_ == StreamifyKind::kDStream) {
      for (TupleRef& t : expired) Emit(Element(std::move(t)));
    }
    MaybeEmitSnapshots(e.punctuation().ts);
    Emit(e);
    return;
  }

  std::vector<TupleRef> expired;
  int64_t now = e.tuple()->ts();
  buf_.Insert(e.tuple(), &expired);
  switch (kind_) {
    case StreamifyKind::kIStream:
      Emit(e);
      break;
    case StreamifyKind::kDStream:
      for (TupleRef& t : expired) Emit(Element(std::move(t)));
      break;
    case StreamifyKind::kRStream:
      MaybeEmitSnapshots(now);
      break;
  }
}

void StreamifyOp::MaybeEmitSnapshots(int64_t now) {
  if (kind_ != StreamifyKind::kRStream) return;
  if (last_snapshot_ == INT64_MIN) last_snapshot_ = now - period_;
  while (last_snapshot_ + period_ <= now) {
    last_snapshot_ += period_;
    for (const TupleRef& t : buf_.contents()) {
      // Re-stamp with the snapshot time: RStream output is ordered by
      // emission time, not original arrival.
      Emit(Element(MakeTuple(last_snapshot_, t->values())));
    }
  }
}

void StreamifyOp::Flush() {
  if (kind_ == StreamifyKind::kDStream) {
    // Remaining window contents expire at end-of-stream.
    for (const TupleRef& t : buf_.contents()) Emit(Element(t));
  }
  Operator::Flush();
}

size_t StreamifyOp::StateBytes() const {
  return sizeof(*this) + buf_.MemoryBytes();
}

}  // namespace sqp
