#ifndef SQP_EXEC_AGGREGATE_OP_H_
#define SQP_EXEC_AGGREGATE_OP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/partial_agg.h"
#include "dur/checkpointable.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/sharding.h"

namespace sqp {

/// Configuration of a grouped aggregation (slide 34's general form:
/// select G, F1 from S where P group by G having F2 op theta).
struct GroupByOptions {
  /// Grouping columns of the input.
  std::vector<int> key_cols;
  /// Aggregate expressions.
  std::vector<AggSpec> aggs;
  /// Tumbling window width in ordering units; 0 = single group-by over the
  /// whole (finite) stream, emitted at Flush. With a window, each bucket's
  /// groups are emitted when the stream moves past the bucket (the
  /// `group by time/60 as tb` pattern of slides 13/37).
  int64_t window_size = 0;
  /// Optional HAVING predicate over the *output* row layout
  /// (see OutputSchema); null = keep all.
  ExprRef having;
};

/// Grouped aggregation operator.
///
/// Output row layout: [ts, key..., agg...] where ts is the window-bucket
/// start (or the max input ts when unwindowed). Watermark punctuations
/// close buckets at or below the watermark; Flush closes everything.
///
/// Memory behaviour mirrors [ABB+02]: bounded iff the grouping columns
/// have bounded domains within a window and no aggregate is holistic —
/// measured, not assumed, via StateBytes() (experiment E4).
class GroupByAggregateOp : public Operator,
                           public ShardableOperator,
                           public CheckpointableOperator {
 public:
  GroupByAggregateOp(GroupByOptions options, std::string name = "group-by");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Partitioning on the full grouping key puts each group wholly on
  /// one shard, so ANY aggregate (holistic included) stays exact —
  /// no partial-aggregate merge is ever needed.
  std::unique_ptr<Operator> CloneReplica() const override {
    return std::make_unique<GroupByAggregateOp>(options_, name());
  }
  std::vector<std::vector<int>> ShardKeyColumns() const override {
    return {options_.key_cols};
  }
  /// Global aggregates (no grouping key) have one group spanning every
  /// shard; unwindowed grouped output stamps rows with the shard-local
  /// max ts, so only windowed or punctuation-bounded plans stay
  /// bit-identical.
  bool CanShard(std::string* why) const override {
    if (options_.key_cols.empty()) {
      if (why != nullptr) *why = "global aggregate spans all shards";
      return false;
    }
    if (options_.window_size <= 0) {
      if (why != nullptr) *why = "unwindowed output ts is shard-local";
      return false;
    }
    return true;
  }

  /// Output schema for the given input schema.
  static Result<Schema> OutputSchema(const Schema& input,
                                     const GroupByOptions& options);

  /// Number of currently open (bucket, group) pairs.
  size_t open_groups() const;

  /// Checkpointing: open buckets/groups and their accumulators round-trip
  /// exactly, unless an aggregate is sketch-backed (no serializer).
  bool CanCheckpointState(std::string* why) const override;
  void SaveState(dur::BufWriter& w) const override;
  Status RestoreState(dur::BufReader& r) override;

 private:
  struct GroupState {
    std::vector<std::unique_ptr<Accumulator>> accs;
  };
  using GroupMap = KeyMap<GroupState>;  // KeyView-probed (zero-alloc).

  void FoldTuple(const Tuple& t);
  void EmitBucket(int64_t bucket, GroupMap& groups);
  void CloseBucketsThrough(int64_t watermark);

  GroupByOptions options_;
  std::vector<AggregateFunction> fns_;
  // Buckets in timestamp order so close-out is oldest-first.
  std::map<int64_t, GroupMap> buckets_;  // bucket id -> groups
  int64_t max_ts_ = INT64_MIN;
};

}  // namespace sqp

#endif  // SQP_EXEC_AGGREGATE_OP_H_
