#ifndef SQP_EXEC_EDDY_H_
#define SQP_EXEC_EDDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace sqp {

/// Eddy-style adaptive filter routing [AH00] (slide 22: "adaptive query
/// operators ... volatile, unpredictable environments").
///
/// Holds a set of commutable predicates with (possibly different,
/// possibly *drifting*) selectivities and evaluation costs. Tuples pass
/// through the predicates in the operator's current order; per-predicate
/// selectivity and cost are tracked with exponentially weighted moving
/// averages, and every `reorder_interval` tuples the order re-sorts by
/// the classic rank metric (1 - selectivity) / cost. When the data
/// distribution shifts mid-stream, the order follows it — the adaptivity
/// a fixed plan lacks.
class EddyOp : public Operator {
 public:
  struct Filter {
    ExprRef predicate;
    /// Relative evaluation cost (work units per evaluation); measured
    /// systems estimate this, here it is declared.
    double cost = 1.0;
  };

  struct Options {
    std::vector<Filter> filters;
    /// Tuples between re-ranking decisions.
    uint64_t reorder_interval = 128;
    /// EWMA factor for selectivity estimates.
    double ewma_alpha = 0.05;
    /// false = keep the initial order forever (the static baseline).
    bool adaptive = true;
  };

  explicit EddyOp(Options options, std::string name = "eddy");

  void Push(const Element& e, int port = 0) override;

  /// Total predicate-evaluation work (sum of costs of evaluations) —
  /// the objective adaptivity minimizes.
  double work() const { return work_; }
  uint64_t evaluations() const { return evaluations_; }
  /// Current routing order (filter indexes).
  const std::vector<size_t>& order() const { return order_; }
  /// Current selectivity estimate of filter i.
  double selectivity_estimate(size_t i) const { return sel_[i]; }

 private:
  void MaybeReorder();

  Options options_;
  std::vector<size_t> order_;
  std::vector<double> sel_;  // EWMA pass rate per filter.
  double work_ = 0.0;
  uint64_t evaluations_ = 0;
  uint64_t since_reorder_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_EDDY_H_
