#include "exec/partitioned_window_agg.h"

#include <cassert>

namespace sqp {

PartitionedWindowAggregateOp::PartitionedWindowAggregateOp(
    int partition_col, size_t rows, std::vector<AggSpec> aggs,
    std::string name)
    : Operator(std::move(name)),
      partition_col_(partition_col),
      rows_(rows),
      agg_specs_(std::move(aggs)) {
  assert(rows_ > 0);
  for (const AggSpec& s : agg_specs_) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns_.push_back(std::move(fn.value()));
    if (!fns_.back().NewAccumulator()->invertible()) all_invertible_ = false;
  }
}

Value PartitionedWindowAggregateOp::InputOf(const AggSpec& s,
                                            const Tuple& t) const {
  return s.input_col < 0 ? Value(int64_t{1})
                         : t.at(static_cast<size_t>(s.input_col));
}

void PartitionedWindowAggregateOp::Recompute(Partition& p) {
  ++recomputes_;
  for (size_t i = 0; i < fns_.size(); ++i) {
    p.accs[i] = fns_[i].NewAccumulator();
  }
  for (const TupleRef& t : p.window.contents()) {
    for (size_t i = 0; i < agg_specs_.size(); ++i) {
      p.accs[i]->Add(InputOf(agg_specs_[i], *t));
    }
  }
}

void PartitionedWindowAggregateOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  const TupleRef& t = e.tuple();
  const Value& key = t->at(static_cast<size_t>(partition_col_));
  auto it = parts_.find(key);
  if (it == parts_.end()) {
    it = parts_.emplace(key, Partition(rows_)).first;
    for (const AggregateFunction& fn : fns_) {
      it->second.accs.push_back(fn.NewAccumulator());
    }
  }
  Partition& p = it->second;

  std::optional<TupleRef> evicted = p.window.Insert(t);
  if (evicted.has_value() && !all_invertible_) {
    Recompute(p);  // Window already holds the new tuple.
  } else {
    if (evicted.has_value()) {
      for (size_t i = 0; i < agg_specs_.size(); ++i) {
        p.accs[i]->Remove(InputOf(agg_specs_[i], **evicted));
      }
    }
    for (size_t i = 0; i < agg_specs_.size(); ++i) {
      p.accs[i]->Add(InputOf(agg_specs_[i], *t));
    }
  }

  std::vector<Value> row;
  row.reserve(2 + p.accs.size());
  row.push_back(Value(t->ts()));
  row.push_back(key);
  for (const auto& acc : p.accs) row.push_back(acc->Result());
  Emit(Element(MakeTuple(t->ts(), std::move(row))));
}

size_t PartitionedWindowAggregateOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, p] : parts_) {
    bytes += key.MemoryBytes() + 32;
    bytes += p.window.MemoryBytes();
    for (const auto& acc : p.accs) bytes += acc->MemoryBytes();
  }
  return bytes;
}

}  // namespace sqp
