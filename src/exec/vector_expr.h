#ifndef SQP_EXEC_VECTOR_EXPR_H_
#define SQP_EXEC_VECTOR_EXPR_H_

#include <memory>
#include <vector>

#include "exec/column_batch.h"
#include "exec/expr.h"

namespace sqp {
namespace vec {

struct VNode;  // compiled expression node (vector_expr.cc)

/// A predicate compiled for column-at-a-time evaluation. Compile walks
/// the Expr tree via its reflection API (folding constant subtrees) and
/// returns nullptr for shapes it cannot vectorize — the caller keeps the
/// per-tuple path. Evaluation dispatches per *batch* on the runtime
/// column types: no-null int/double columns take tight typed loops, and
/// every remaining shape (per-row nulls, strings in arithmetic, mixed
/// type-tag comparisons) takes a per-row loop built from the same Value
/// primitives the scalar evaluator uses, so results are bit-identical to
/// Expr::Eval by construction.
///
/// Not thread-safe: like an Operator, a compiled expression belongs to
/// one driving thread at a time.
class CompiledPredicate {
 public:
  ~CompiledPredicate();

  static std::unique_ptr<CompiledPredicate> Compile(const Expr& e);

  /// Refines cb->sel in place to the live rows where the predicate is
  /// truthy (identical to the row path's Truthy(Eval(t))). Returns false
  /// without touching the batch when it cannot apply (batch narrower
  /// than the referenced columns) — the caller materializes and falls
  /// back to rows.
  bool Filter(ColumnBatch* cb) const;

 private:
  CompiledPredicate(std::unique_ptr<VNode> root, int max_col);

  std::unique_ptr<VNode> root_;
  int max_col_;
};

/// A projection list compiled for column-at-a-time evaluation. Pure
/// column references gather (or wholesale-copy) source arrays; computed
/// expressions evaluate like CompiledPredicate and land as freshly typed
/// dense columns. The output batch is dense (no selection vector) with
/// punctuation slots remapped across the dropped rows.
class CompiledProjection {
 public:
  ~CompiledProjection();

  static std::unique_ptr<CompiledProjection> Compile(
      const std::vector<ExprRef>& exprs);

  /// Projects the live rows of `in` into `out` (cleared first). Returns
  /// false when the batch cannot be projected columnarly (referenced
  /// column missing, or an expression whose per-row results mix types) —
  /// `out` is unusable and the caller falls back to the row path.
  bool Project(const ColumnBatch& in, ColumnBatch* out) const;

 private:
  CompiledProjection(std::vector<std::unique_ptr<VNode>> outs, int max_col);

  std::vector<std::unique_ptr<VNode>> outs_;
  int max_col_;
};

}  // namespace vec
}  // namespace sqp

#endif  // SQP_EXEC_VECTOR_EXPR_H_
