#ifndef SQP_EXEC_REORDER_H_
#define SQP_EXEC_REORDER_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace sqp {

/// Injects watermark punctuations ("heartbeats" in STREAM's terminology)
/// every `period` units of the ordering attribute, based on the maximum
/// tuple timestamp seen. Downstream windows and aggregates can then make
/// progress even when the application never punctuates.
///
/// Emitted watermark: max_ts - slack. A nonzero slack leaves room for
/// bounded disorder downstream (pair with SlackReorderOp upstream or
/// rely on the consumer's tolerance).
class HeartbeatOp : public Operator {
 public:
  HeartbeatOp(int64_t period, int64_t slack = 0,
              std::string name = "heartbeat");

  void Push(const Element& e, int port = 0) override;

 private:
  int64_t period_;
  int64_t slack_;
  int64_t max_ts_ = INT64_MIN;
  int64_t last_beat_ = INT64_MIN;
};

/// Restores order for streams with *bounded disorder*: tuples may arrive
/// up to `slack` ordering units late. Arrivals are buffered in a min-heap
/// and released once the high-water mark passes them by more than the
/// slack, so the output is nondecreasing in ts provided the input honors
/// the bound. Tuples later than the slack (already passed) are either
/// dropped or emitted out-of-order, per `drop_late`.
///
/// This is the standard front-end that makes the ordering-attribute
/// assumption of slides 17/29 hold on real feeds.
class SlackReorderOp : public Operator {
 public:
  SlackReorderOp(int64_t slack, bool drop_late = true,
                 std::string name = "reorder");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  uint64_t late_dropped() const { return late_dropped_; }
  size_t buffered() const { return heap_.size(); }

 private:
  void Release(int64_t up_to);

  struct ByTs {
    bool operator()(const TupleRef& a, const TupleRef& b) const {
      return a->ts() > b->ts();  // Min-heap on ts.
    }
  };

  int64_t slack_;
  bool drop_late_;
  std::priority_queue<TupleRef, std::vector<TupleRef>, ByTs> heap_;
  int64_t max_ts_ = INT64_MIN;
  int64_t emitted_ts_ = INT64_MIN;
  uint64_t late_dropped_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_REORDER_H_
