#include "exec/reorder.h"

#include <algorithm>

namespace sqp {

HeartbeatOp::HeartbeatOp(int64_t period, int64_t slack, std::string name)
    : Operator(std::move(name)), period_(period), slack_(slack) {}

void HeartbeatOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  Emit(e);
  if (e.is_punctuation()) return;
  max_ts_ = std::max(max_ts_, e.ts());
  if (last_beat_ == INT64_MIN) last_beat_ = max_ts_;
  while (max_ts_ - last_beat_ >= period_) {
    last_beat_ += period_;
    Emit(Element(Punctuation::Watermark(last_beat_ - slack_)));
  }
}

SlackReorderOp::SlackReorderOp(int64_t slack, bool drop_late,
                               std::string name)
    : Operator(std::move(name)), slack_(slack), drop_late_(drop_late) {}

void SlackReorderOp::Release(int64_t up_to) {
  while (!heap_.empty() && heap_.top()->ts() <= up_to) {
    emitted_ts_ = std::max(emitted_ts_, heap_.top()->ts());
    Emit(Element(heap_.top()));
    heap_.pop();
  }
}

void SlackReorderOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    // A watermark asserts completeness: release everything at or below.
    Release(e.punctuation().ts);
    Emit(e);
    return;
  }
  const TupleRef& t = e.tuple();
  if (t->ts() < emitted_ts_) {
    // Beyond the promised disorder bound: a larger timestamp was already
    // emitted, so in-order delivery is impossible for this tuple.
    if (drop_late_) {
      ++late_dropped_;
      return;
    }
    Emit(e);  // Caller accepts out-of-order delivery for stragglers.
    return;
  }
  heap_.push(t);
  max_ts_ = std::max(max_ts_, t->ts());
  Release(max_ts_ - slack_);
}

void SlackReorderOp::Flush() {
  Release(INT64_MAX);
  Operator::Flush();
}

size_t SlackReorderOp::StateBytes() const {
  return sizeof(*this) + heap_.size() * 64;
}

}  // namespace sqp
