#include "exec/merge_join.h"

#include <algorithm>

namespace sqp {

OrderedMergeJoinOp::OrderedMergeJoinOp(Options options, std::string name)
    : Operator(std::move(name)), options_(std::move(options)) {}

bool OrderedMergeJoinOp::KeysMatch(const Tuple& l, const Tuple& r) const {
  if (options_.left_cols.empty()) return true;
  return ExtractKey(l, options_.left_cols) == ExtractKey(r, options_.right_cols);
}

void OrderedMergeJoinOp::EmitJoined(const Tuple& l, const Tuple& r) {
  std::vector<Value> row;
  row.reserve(l.arity() + r.arity());
  row.insert(row.end(), l.values().begin(), l.values().end());
  row.insert(row.end(), r.values().begin(), r.values().end());
  Emit(Element(MakeTuple(std::max(l.ts(), r.ts()), std::move(row))));
}

void OrderedMergeJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  int me = port == 0 ? 0 : 1;
  if (e.is_punctuation()) {
    frontier_[me] = std::max(frontier_[me], e.punctuation().ts);
    Advance();
    Emit(e);
    return;
  }
  const TupleRef& t = e.tuple();
  frontier_[me] = std::max(frontier_[me], t->ts());

  // Join against the opposite buffer within the band.
  const std::deque<TupleRef>& other = buf_[1 - me];
  for (const TupleRef& o : other) {
    if (std::llabs(o->ts() - t->ts()) <= options_.band && KeysMatch(
            me == 0 ? *t : *o, me == 0 ? *o : *t)) {
      if (me == 0) {
        EmitJoined(*t, *o);
      } else {
        EmitJoined(*o, *t);
      }
    }
  }
  buf_[me].push_back(t);
  Advance();
}

void OrderedMergeJoinOp::Advance() {
  // Drop tuples that can no longer match: older than the other side's
  // frontier minus the band. An unseen frontier (INT64_MIN) purges
  // nothing — the subtraction would underflow.
  for (int s = 0; s < 2; ++s) {
    if (frontier_[1 - s] == INT64_MIN) continue;
    int64_t bound = frontier_[1 - s] - options_.band;
    while (!buf_[s].empty() && buf_[s].front()->ts() < bound) {
      buf_[s].pop_front();
    }
  }
}

void OrderedMergeJoinOp::Flush() {
  if (++flushes_ < 2) return;
  buf_[0].clear();
  buf_[1].clear();
  Operator::Flush();
}

size_t OrderedMergeJoinOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& side : buf_) {
    for (const TupleRef& t : side) bytes += t->MemoryBytes();
  }
  return bytes;
}

}  // namespace sqp
