#ifndef SQP_EXEC_PARTITIONED_WINDOW_AGG_H_
#define SQP_EXEC_PARTITIONED_WINDOW_AGG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/partial_agg.h"
#include "exec/operator.h"
#include "window/count_window.h"

namespace sqp {

/// CQL's partitioned window (slide 26 "variants"; `[partition by K
/// rows N]`): each partition key maintains its *own* window of the last
/// N rows, and each arriving tuple emits the aggregate over its
/// partition's current window.
///
/// Output row: [ts, partition key, agg values...]. Invertible aggregates
/// update in O(1) on eviction; others replay the partition's window.
class PartitionedWindowAggregateOp : public Operator {
 public:
  PartitionedWindowAggregateOp(int partition_col, size_t rows,
                               std::vector<AggSpec> aggs,
                               std::string name = "partitioned-window-agg");

  void Push(const Element& e, int port = 0) override;
  size_t StateBytes() const override;

  size_t num_partitions() const { return parts_.size(); }
  uint64_t recompute_count() const { return recomputes_; }

 private:
  struct Partition {
    CountWindowBuffer window;
    std::vector<std::unique_ptr<Accumulator>> accs;

    explicit Partition(size_t rows) : window(rows) {}
  };

  Value InputOf(const AggSpec& s, const Tuple& t) const;
  void Recompute(Partition& p);

  int partition_col_;
  size_t rows_;
  std::vector<AggSpec> agg_specs_;
  std::vector<AggregateFunction> fns_;
  bool all_invertible_ = true;
  std::unordered_map<Value, Partition, ValueHash> parts_;
  uint64_t recomputes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_PARTITIONED_WINDOW_AGG_H_
