#include "exec/window_agg.h"

#include <cassert>

namespace sqp {

WindowAggregateOp::WindowAggregateOp(WindowSpec window,
                                     std::vector<AggSpec> aggs,
                                     std::string name)
    : Operator(std::move(name)),
      window_(window),
      agg_specs_(std::move(aggs)) {
  assert(window_.Validate().ok());
  fns_.reserve(agg_specs_.size());
  all_invertible_ = true;
  for (const AggSpec& s : agg_specs_) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns_.push_back(std::move(fn.value()));
    accs_.push_back(fns_.back().NewAccumulator());
    if (!accs_.back()->invertible()) all_invertible_ = false;
  }
  switch (window_.kind) {
    case WindowKind::kTimeSliding:
      time_buf_ = std::make_unique<TimeWindowBuffer>(window_.size);
      break;
    case WindowKind::kCountSliding:
      count_buf_ =
          std::make_unique<CountWindowBuffer>(static_cast<size_t>(window_.size));
      break;
    case WindowKind::kTimeLandmark:
      // Landmark windows never expire: accumulators only.
      break;
    default:
      assert(false && "WindowAggregateOp supports sliding/landmark windows");
  }
}

Value WindowAggregateOp::InputOf(const AggSpec& s, const Tuple& t) const {
  return s.input_col < 0 ? Value(int64_t{1})
                         : t.at(static_cast<size_t>(s.input_col));
}

void WindowAggregateOp::AddToAccs(const Tuple& t) {
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    accs_[i]->Add(InputOf(agg_specs_[i], t));
  }
}

void WindowAggregateOp::RemoveFromAccs(const Tuple& t) {
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    accs_[i]->Remove(InputOf(agg_specs_[i], t));
  }
}

void WindowAggregateOp::RecomputeFromBuffer() {
  ++recomputes_;
  for (size_t i = 0; i < accs_.size(); ++i) {
    accs_[i] = fns_[i].NewAccumulator();
  }
  if (time_buf_ != nullptr) {
    for (const TupleRef& t : time_buf_->contents()) AddToAccs(*t);
  } else if (count_buf_ != nullptr) {
    for (const TupleRef& t : count_buf_->contents()) AddToAccs(*t);
  }
}

void WindowAggregateOp::EmitCurrent(int64_t ts) {
  std::vector<Value> row;
  row.reserve(1 + accs_.size());
  row.push_back(Value(ts));
  for (const auto& acc : accs_) row.push_back(acc->Result());
  Emit(Element(MakeTuple(ts, std::move(row))));
}

void WindowAggregateOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    // Advance time so expiry happens even without new tuples.
    if (time_buf_ != nullptr && !e.punctuation().has_key) {
      std::vector<TupleRef> expired;
      time_buf_->AdvanceTo(e.punctuation().ts, &expired);
      if (!expired.empty()) {
        if (all_invertible_) {
          for (const TupleRef& t : expired) RemoveFromAccs(*t);
        } else {
          RecomputeFromBuffer();
        }
        EmitCurrent(e.punctuation().ts);
      }
    }
    Emit(e);
    return;
  }

  const TupleRef& t = e.tuple();
  switch (window_.kind) {
    case WindowKind::kTimeSliding: {
      std::vector<TupleRef> expired;
      time_buf_->Insert(t, &expired);
      if (!expired.empty() && !all_invertible_) {
        // Buffer already holds the new tuple; replay it wholesale.
        RecomputeFromBuffer();
      } else {
        for (const TupleRef& x : expired) RemoveFromAccs(*x);
        AddToAccs(*t);
      }
      break;
    }
    case WindowKind::kCountSliding: {
      std::optional<TupleRef> evicted = count_buf_->Insert(t);
      if (evicted.has_value() && !all_invertible_) {
        RecomputeFromBuffer();
      } else {
        if (evicted.has_value()) RemoveFromAccs(**evicted);
        AddToAccs(*t);
      }
      break;
    }
    case WindowKind::kTimeLandmark:
      if (t->ts() >= window_.start) AddToAccs(*t);
      break;
    default:
      break;
  }
  EmitCurrent(t->ts());
}

size_t WindowAggregateOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  if (time_buf_ != nullptr) bytes += time_buf_->MemoryBytes();
  if (count_buf_ != nullptr) bytes += count_buf_->MemoryBytes();
  for (const auto& acc : accs_) bytes += acc->MemoryBytes();
  return bytes;
}

}  // namespace sqp
