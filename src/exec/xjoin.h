#ifndef SQP_EXEC_XJOIN_H_
#define SQP_EXEC_XJOIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace sqp {

/// XJoin [UF00] (slide 31): a symmetric hash join whose in-memory hash
/// tables respect a memory budget. When the budget is exceeded, the
/// largest partition is spilled to "disk" (a simulated second stage) and
/// joined during Flush, counting the disk I/O the real XJoin would pay.
///
/// Duplicate avoidance follows the paper: each tuple records its arrival
/// and spill sequence numbers; the clean-up stage skips pairs that were
/// provably matched while both were memory-resident.
class XJoinOp : public Operator {
 public:
  struct Options {
    std::vector<int> left_cols;
    std::vector<int> right_cols;
    /// In-memory budget across both hash tables, in bytes. 0 = unbounded.
    size_t memory_budget_bytes = 0;
    /// Number of hash partitions (spill granularity).
    size_t partitions = 16;
  };

  explicit XJoinOp(Options options, std::string name = "xjoin");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Simulated disk traffic in bytes.
  uint64_t disk_write_bytes() const { return disk_writes_; }
  uint64_t disk_read_bytes() const { return disk_reads_; }
  uint64_t spilled_tuples() const { return spilled_tuples_; }
  /// Results produced in the in-memory stage vs. the clean-up stage.
  uint64_t memory_stage_results() const { return mem_results_; }
  uint64_t disk_stage_results() const { return disk_results_; }

 private:
  static constexpr uint64_t kNeverSpilled = UINT64_MAX;

  struct Entry {
    TupleRef t;
    uint64_t arrive;                 // Global arrival sequence number.
    uint64_t spill = kNeverSpilled;  // Sequence number when spilled.
  };

  struct Partition {
    std::unordered_map<Key, std::vector<Entry>, KeyHash> mem;
    std::vector<Entry> disk;
    size_t mem_bytes = 0;
  };

  size_t PartitionOf(const Key& key) const {
    return KeyHash()(key) % options_.partitions;
  }
  void SpillLargest();
  void EmitJoined(const Tuple& left, const Tuple& right, bool disk_stage);

  /// True if (a, b) was produced during the memory stage: the later
  /// arrival happened while the earlier one was still resident. A spill
  /// recorded at the same sequence number happened *after* that tuple's
  /// probe (probe precedes spill within one Push), hence <=.
  static bool AlreadyJoined(const Entry& a, const Entry& b) {
    const Entry& early = a.arrive < b.arrive ? a : b;
    const Entry& late = a.arrive < b.arrive ? b : a;
    return early.spill == kNeverSpilled || late.arrive <= early.spill;
  }

  Options options_;
  std::vector<Partition> sides_[2];  // [0]=left, [1]=right.
  size_t mem_bytes_total_ = 0;
  uint64_t seq_ = 0;
  uint64_t disk_writes_ = 0;
  uint64_t disk_reads_ = 0;
  uint64_t spilled_tuples_ = 0;
  uint64_t mem_results_ = 0;
  uint64_t disk_results_ = 0;
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_XJOIN_H_
