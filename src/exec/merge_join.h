#ifndef SQP_EXEC_MERGE_JOIN_H_
#define SQP_EXEC_MERGE_JOIN_H_

#include <deque>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace sqp {

/// Ordered band equijoin on the streams' ordering attributes [JMS95]
/// (slide 30: "equijoin on stream ordering attributes is tractable").
///
/// Joins left/right tuples whose timestamps differ by at most `band`
/// (band = 0 is a pure ts-equijoin) and that agree on the optional extra
/// equi-columns. Because both inputs are ordered, state is bounded by the
/// band: each side buffers only tuples within `band` of the other side's
/// frontier.
class OrderedMergeJoinOp : public Operator {
 public:
  struct Options {
    int64_t band = 0;
    /// Optional additional equijoin columns (beyond the time band).
    std::vector<int> left_cols;
    std::vector<int> right_cols;
  };

  explicit OrderedMergeJoinOp(Options options,
                              std::string name = "merge-join");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

 private:
  void Advance();
  bool KeysMatch(const Tuple& l, const Tuple& r) const;
  void EmitJoined(const Tuple& l, const Tuple& r);

  Options options_;
  std::deque<TupleRef> buf_[2];
  int64_t frontier_[2] = {INT64_MIN, INT64_MIN};
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_MERGE_JOIN_H_
