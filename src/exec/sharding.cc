#include "exec/sharding.h"

#include <utility>

namespace sqp {

namespace {

bool AllPortsKeyed(const std::vector<std::vector<int>>& cols) {
  for (const auto& c : cols) {
    if (c.empty()) return false;
  }
  return true;
}

}  // namespace

std::vector<ShardRewrite> ShardStatefulOps(Plan& plan,
                                           const ShardPlanOptions& options) {
  std::vector<ShardRewrite> rewrites;
  // Snapshot the candidates first: splicing adds ShardedOps to the plan,
  // and we must not revisit those (ShardedOp is not ShardableOperator,
  // but iterating a vector being appended to is asking for trouble).
  std::vector<Operator*> candidates;
  for (const auto& op : plan.operators()) candidates.push_back(op.get());

  for (Operator* op : candidates) {
    auto* shardable = dynamic_cast<ShardableOperator*>(op);
    if (shardable == nullptr) continue;

    ShardRewrite rw;
    rw.original = op;
    if (options.shards <= 1) {
      rw.reason = "shards<=1";
      rewrites.push_back(std::move(rw));
      continue;
    }
    std::string why;
    if (!shardable->CanShard(&why)) {
      rw.reason = why.empty() ? "not shardable" : why;
      rewrites.push_back(std::move(rw));
      continue;
    }

    std::vector<std::vector<int>> key_cols = shardable->ShardKeyColumns();
    const bool binary = key_cols.size() >= 2;
    ShardRouting routing = ShardRouting::kDisjoint;
    if (binary) {
      routing = options.routing;
      if (!AllPortsKeyed(key_cols)) routing = ShardRouting::kReplicated;
    } else if (key_cols.empty() || key_cols[0].empty()) {
      // Unary with no partition key: round-robin would scatter one
      // group's tuples across shards.
      rw.reason = "no partition key";
      rewrites.push_back(std::move(rw));
      continue;
    }

    ShardedOpOptions op_opts;
    op_opts.shards = options.shards;
    op_opts.routing = routing;
    op_opts.key_cols = key_cols;
    op_opts.queue_limit = options.queue_limit;
    op_opts.backpressure = options.backpressure;
    op_opts.merge_queue_limit = options.merge_queue_limit;
    op_opts.wake_batch = options.wake_batch;
    op_opts.expected_flushes = static_cast<int>(key_cols.size());
    op_opts.columnar = options.columnar;
    op_opts.events = options.events;
    op_opts.event_label = options.event_label;

    ShardedOp* sharded = plan.Make<ShardedOp>(
        op_opts, [shardable](int) { return shardable->CloneReplica(); },
        "sharded(" + op->name() + ")");

    // Inherit the downstream edge, then steal every upstream edge.
    sharded->SetOutput(op->output(), op->output_port());
    for (const auto& other : plan.operators()) {
      if (other.get() != sharded && other->output() == op) {
        other->SetOutput(sharded, other->output_port());
      }
    }
    op->SetOutput(nullptr);

    rw.sharded = sharded;
    rw.routing = routing;
    rewrites.push_back(std::move(rw));
  }
  return rewrites;
}

}  // namespace sqp
