#ifndef SQP_EXEC_OPERATOR_H_
#define SQP_EXEC_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#include <thread>
#endif

#include "dur/checkpointable.h"
#include "exec/column_batch.h"
#include "obs/op_metrics.h"
#include "obs/op_profile.h"
#include "stream/element.h"
#include "stream/element_batch.h"

namespace sqp {

namespace obs {
class Tracer;
}  // namespace obs

/// Per-operator throughput counters.
struct OperatorStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t puncts_in = 0;
  uint64_t puncts_out = 0;

  /// Observed selectivity (tuples out per tuple in).
  double Selectivity() const {
    return tuples_in == 0
               ? 0.0
               : static_cast<double>(tuples_out) /
                     static_cast<double>(tuples_in);
  }
};

/// Push-based physical operator (streams-in, stream-out; slide 13).
///
/// Operators form a DAG. An upstream operator calls `Push(e, port)` on its
/// downstream; binary operators (joins, union) distinguish inputs by
/// `port` (0 = left, 1 = right). `Flush` signals end-of-stream and must be
/// forwarded after emitting any buffered state.
///
/// Single-caller by design: the scheduling layer (sqp/sched) decides
/// when each operator runs and interposes queues; operator code itself
/// stays oblivious, matching the tutorial's separation of operator
/// semantics from scheduling policy (slides 42-43). An operator is never
/// thread-safe — all Push/Flush/Emit calls on one operator must come
/// from a single thread. The serial executors trivially satisfy this;
/// ParallelExecutor satisfies it by pinning each stage's operator to
/// that stage's worker thread. Debug builds assert the contract
/// (AssertSingleCaller), so TSan jobs and unit tests catch an operator
/// accidentally shared across stages.
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Processes one element arriving on `port`.
  virtual void Push(const Element& e, int port = 0) = 0;

  /// Instrumented entry point: drivers (RunStream, executors, the
  /// engine) and Emit route elements through here so a bound operator
  /// gets self-time accounting and sampled lineage tracing without any
  /// per-operator code. Unbound operators (the default) pay one
  /// predictable branch and fall straight through to Push.
  void Process(const Element& e, int port = 0) {
    if (profile_ != nullptr) profile_->CountSingle();
    if (metrics_ == nullptr && tracer_ == nullptr) {
      Push(e, port);
      return;
    }
    ProcessInstrumented(e, port);
  }

  /// Batched entry point (non-virtual, mirrors Process): semantically
  /// identical to calling Process once per element in order, but the
  /// whole run crosses the operator in one call. While the batch is
  /// being processed, Emit coalesces this operator's output into a
  /// batch of its own and forwards it downstream via ProcessBatch when
  /// the input batch completes (or the coalescing buffer hits its cap),
  /// so batches propagate down the chain instead of decaying back into
  /// singletons at the first selective operator. Tuple/punctuation
  /// ordering is preserved end to end: the output batch holds exactly
  /// the sequence the per-element path would have pushed.
  ///
  /// The batch is taken by mutable reference because the operator may
  /// move elements out of it (pass-through operators forward ownership
  /// instead of bumping tuple refcounts); after the call the batch's
  /// elements are unspecified — clear()/refill before reuse.
  void ProcessBatch(ElementBatch& batch, int port = 0);

  /// Columnar entry point (non-virtual, mirrors ProcessBatch):
  /// semantically identical to materializing the batch's live rows and
  /// punctuations in order and calling Process on each. Operators with a
  /// PushColumns override stay columnar; everything else transparently
  /// materializes and takes its row path — the fallback boundary of the
  /// vectorized execution path (DESIGN.md "Columnar execution").
  ///
  /// Like ProcessBatch, the batch is consumed: an override may move its
  /// arrays or refine its selection vector in place.
  void ProcessColumns(ColumnBatch& batch, int port = 0);

  /// True when this operator processes port's input columnarly (has a
  /// real PushColumns). Executors use it to decide where row→column
  /// conversion pays; sending columns to a non-supporting operator is
  /// still correct, it just materializes at the boundary.
  virtual bool SupportsColumns(int port = 0) const {
    (void)port;
    return false;
  }

  /// Binds observability outputs (see sqp::obs). Pass nullptr to
  /// disable. Must happen before the operator processes elements; the
  /// bound objects must outlive the operator's last Push.
  void Bind(obs::OpMetrics* metrics, obs::Tracer* tracer = nullptr) {
    metrics_ = metrics;
    tracer_ = tracer;
  }
  obs::OpMetrics* metrics() const { return metrics_; }

  /// Binds this operator's per-query profile slot (see sqp::obs::
  /// OpProfile and obs::QueryProfiler): watermark forwarding, batch-size
  /// distribution, queue wait, and sampled StateBytes report there.
  /// Virtual so composite operators (ShardedOp) can forward the slot to
  /// the internal operator that actually emits downstream. Pass nullptr
  /// to detach; same lifetime contract as Bind.
  virtual void BindProfile(obs::OpProfile* profile) { profile_ = profile; }
  obs::OpProfile* profile() const { return profile_; }

  /// End-of-stream: emit buffered results, then forward downstream.
  virtual void Flush();

  /// Bytes of operator-held state (windows, hash tables) — drives the
  /// memory-limited experiments.
  virtual size_t StateBytes() const { return 0; }

  /// Connects this operator's output to `out`'s input `port`.
  void SetOutput(Operator* out, int port = 0) {
    out_ = out;
    out_port_ = port;
  }

  const std::string& name() const { return name_; }
  const OperatorStats& stats() const { return stats_; }
  Operator* output() const { return out_; }
  int output_port() const { return out_port_; }

 protected:
  /// Batch body, called by ProcessBatch. The default loops Push, so
  /// every operator participates in the batched path unchanged; hot
  /// per-element operators (select, project, sinks) override it with a
  /// tight loop that skips the per-element virtual dispatch. Overrides
  /// must preserve per-element semantics exactly: CountIn each element,
  /// Emit in arrival order. Overrides may move elements out of the
  /// batch (the caller treats the contents as consumed).
  virtual void PushBatch(ElementBatch& batch, int port) {
    for (const Element& e : batch) Push(e, port);
  }

  /// Columnar body, called by ProcessColumns. The default is the
  /// fallback boundary: rebuild rows and run the batched row path.
  /// Overrides must preserve per-element semantics exactly (bulk-count
  /// arrivals, keep punctuation interleaving) and may consume the batch.
  virtual void PushColumns(ColumnBatch& batch, int port) {
    ElementBatch rows;
    batch.MaterializeRows(&rows);
    PushBatch(rows, port);
  }

  /// Forwards a whole columnar batch downstream, maintaining counters in
  /// bulk. Any row emissions buffered so far are flushed first so output
  /// order matches the per-element path. The batch is consumed.
  void EmitColumns(ColumnBatch&& batch);

  /// Bulk arrival accounting for PushColumns overrides (the columnar
  /// twin of calling CountIn per element).
  void CountInColumns(const ColumnBatch& batch) {
    AssertSingleCaller();
    const uint64_t tuples = batch.ActiveRows();
    const uint64_t puncts = batch.puncts.size();
    stats_.tuples_in += tuples;
    stats_.puncts_in += puncts;
    if (metrics_ != nullptr) metrics_->CountInBulk(tuples, puncts);
  }

  /// Forwards an element downstream, maintaining counters. Inside a
  /// ProcessBatch call, emissions are coalesced into an output batch
  /// (see ProcessBatch); otherwise they are pushed downstream
  /// immediately.
  void Emit(const Element& e);

  /// Move form: while coalescing, the element is moved into the output
  /// batch instead of copied — pass-through operators (select) and
  /// operators emitting freshly built elements (project, joins) avoid a
  /// tuple refcount round-trip per element. Outside a batch it behaves
  /// exactly like Emit(const Element&).
  void Emit(Element&& e);

  /// Counts an arriving element. Subclasses call this first in Push.
  void CountIn(const Element& e) {
    AssertSingleCaller();
    if (e.is_punctuation()) {
      ++stats_.puncts_in;
    } else {
      ++stats_.tuples_in;
    }
    if (metrics_ != nullptr) metrics_->CountIn(e.is_punctuation());
  }

  /// Debug check that every Push/Emit on this operator comes from one
  /// thread: the first caller claims ownership, later callers must match.
  /// Compiled out in release builds.
  void AssertSingleCaller() const {
#ifndef NDEBUG
    std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_relaxed)) {
      assert(expected == self &&
             "operator driven from multiple threads; each operator must "
             "belong to exactly one stage/worker");
    }
#endif
  }

  Operator* out_ = nullptr;
  int out_port_ = 0;
  OperatorStats stats_;

 private:
  /// Out-of-line slow path of Process: self-time metrics + tracing.
  void ProcessInstrumented(const Element& e, int port);
  /// Slow path of ProcessBatch: whole-batch self-timing; falls back to
  /// per-element Process when lineage tracing is on.
  void ProcessBatchInstrumented(ElementBatch& batch, int port);
  /// Slow path of ProcessColumns: whole-batch self-timing (per-batch
  /// metrics amortization); materializes to per-element Process under
  /// lineage tracing so sampled traces look identical.
  void ProcessColumnsInstrumented(ColumnBatch& batch, int port);
  /// Hands the coalesced output batch downstream and resets the buffer.
  void FlushEmitBuffer();

  /// Emit buffer cap while coalescing: a join exploding one input batch
  /// into many outputs flushes downstream mid-batch instead of growing
  /// the buffer without bound (ordering is unaffected — the flush
  /// forwards the prefix in order).
  static constexpr size_t kEmitBufferCap = 1024;

  std::string name_;
  obs::OpMetrics* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::OpProfile* profile_ = nullptr;
  /// True only inside a ProcessBatch call with a wired output.
  bool coalescing_ = false;
  ElementBatch emit_buf_;
#ifndef NDEBUG
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

/// Terminal operator that retains results for inspection (tests, examples).
/// Checkpointable so a recovered engine's collected results equal an
/// uninterrupted run's (dur recovery restores the prefix, replay
/// regenerates the suffix).
class CollectorSink : public Operator, public CheckpointableOperator {
 public:
  CollectorSink() : Operator("collect") {}

  void SaveState(dur::BufWriter& w) const override;
  Status RestoreState(dur::BufReader& r) override;

  void Push(const Element& e, int port = 0) override;

  /// Retained results count toward operator state for the memory
  /// experiments (a collector is a window that never expires).
  size_t StateBytes() const override;

  const std::vector<TupleRef>& tuples() const { return tuples_; }
  const std::vector<Punctuation>& punctuations() const { return puncts_; }
  size_t count() const { return tuples_.size(); }

  void Clear() {
    tuples_.clear();
    puncts_.clear();
  }

 protected:
  /// Batched append: one reserve per batch, then the per-element loop.
  void PushBatch(ElementBatch& batch, int port) override;

  /// Materialization boundary of the columnar path: rows are rebuilt
  /// here, at the sink, with one reserve from the batch's live-row count.
  void PushColumns(ColumnBatch& batch, int port) override;

 private:
  std::vector<TupleRef> tuples_;
  std::vector<Punctuation> puncts_;
};

/// Terminal operator that only counts (benchmarks; no retention cost).
class CountingSink : public Operator {
 public:
  CountingSink() : Operator("count-sink") {}

  void Push(const Element& e, int /*port*/ = 0) override { CountIn(e); }

  uint64_t tuples() const { return stats().tuples_in; }

  /// A counting sink never needs rows at all, so columnar batches are
  /// tallied without materialization — the late-materialization ideal.
  bool SupportsColumns(int /*port*/ = 0) const override { return true; }

 protected:
  /// Counting needs no per-element work at all: tally the batch once
  /// and bump the counters in bulk.
  void PushBatch(ElementBatch& batch, int /*port*/) override {
    AssertSingleCaller();
    uint64_t tuples = 0;
    for (const Element& e : batch) {
      if (!e.is_punctuation()) ++tuples;
    }
    const uint64_t puncts = batch.size() - tuples;
    stats_.tuples_in += tuples;
    stats_.puncts_in += puncts;
    if (metrics() != nullptr) metrics()->CountInBulk(tuples, puncts);
  }

  void PushColumns(ColumnBatch& batch, int /*port*/) override {
    CountInColumns(batch);
  }
};

/// Terminal operator invoking a callback per element.
class CallbackSink : public Operator {
 public:
  explicit CallbackSink(std::function<void(const Element&)> fn)
      : Operator("callback-sink"), fn_(std::move(fn)) {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    fn_(e);
  }

 private:
  std::function<void(const Element&)> fn_;
};

}  // namespace sqp

#endif  // SQP_EXEC_OPERATOR_H_
