#include "exec/eddy.h"

#include <algorithm>
#include <numeric>

namespace sqp {

EddyOp::EddyOp(Options options, std::string name)
    : Operator(std::move(name)), options_(std::move(options)) {
  order_.resize(options_.filters.size());
  std::iota(order_.begin(), order_.end(), 0);
  // Optimistic prior: assume everything passes until observed otherwise.
  sel_.assign(options_.filters.size(), 1.0);
}

void EddyOp::MaybeReorder() {
  if (!options_.adaptive) return;
  if (++since_reorder_ < options_.reorder_interval) return;
  since_reorder_ = 0;
  // Rank ordering on current estimates: most filtering per unit cost
  // first.
  std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    double ra = (1.0 - sel_[a]) / options_.filters[a].cost;
    double rb = (1.0 - sel_[b]) / options_.filters[b].cost;
    return ra > rb;
  });
}

void EddyOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  const Tuple& t = *e.tuple();
  bool pass = true;
  for (size_t i : order_) {
    const Filter& f = options_.filters[i];
    ++evaluations_;
    work_ += f.cost;
    bool ok = Truthy(f.predicate->Eval(t));
    sel_[i] = (1.0 - options_.ewma_alpha) * sel_[i] +
              options_.ewma_alpha * (ok ? 1.0 : 0.0);
    if (!ok) {
      pass = false;
      break;  // Short-circuit: later filters never see this tuple.
    }
  }
  MaybeReorder();
  if (pass) Emit(e);
}

}  // namespace sqp
