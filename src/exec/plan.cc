#include "exec/plan.h"

#include "common/strings.h"

namespace sqp {

void Plan::BindMetrics(obs::MetricsRegistry& registry,
                       const std::string& query_label) {
  int index = 0;
  for (const auto& op : ops_) {
    op->Bind(registry.GetOpMetrics(query_label, op->name(), index),
             registry.tracer());
    ++index;
  }
}

size_t Plan::TotalStateBytes() const {
  size_t bytes = 0;
  for (const auto& op : ops_) bytes += op->StateBytes();
  return bytes;
}

std::string Plan::StatsString() const {
  std::string out;
  for (const auto& op : ops_) {
    const OperatorStats& s = op->stats();
    out += StrFormat("%-16s in=%llu out=%llu sel=%.4f state=%zuB\n",
                     op->name().c_str(),
                     static_cast<unsigned long long>(s.tuples_in),
                     static_cast<unsigned long long>(s.tuples_out),
                     s.Selectivity(), op->StateBytes());
  }
  return out;
}

void RunStream(Operator* entry, const std::function<TupleRef()>& next,
               uint64_t n, bool flush) {
  for (uint64_t i = 0; i < n; ++i) {
    entry->Process(Element(next()), 0);
  }
  if (flush) entry->Flush();
}

void RunElements(Operator* entry, const std::function<Element()>& next,
                 uint64_t n, bool flush) {
  for (uint64_t i = 0; i < n; ++i) {
    entry->Process(next(), 0);
  }
  if (flush) entry->Flush();
}

}  // namespace sqp
