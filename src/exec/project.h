#ifndef SQP_EXEC_PROJECT_H_
#define SQP_EXEC_PROJECT_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/schema.h"
#include "dur/checkpointable.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/vector_expr.h"

namespace sqp {

/// Duplicate-preserving projection (generalized: any scalar expressions).
/// Output tuples keep the input timestamp — projections on streams must
/// preserve the ordering attribute (slide 29, [JMS95]).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::vector<ExprRef> exprs, std::string name = "project");

  void Push(const Element& e, int port = 0) override;

  /// Computes the output schema given the input schema; names fields
  /// f0..fn unless `names` provided.
  static Result<Schema> OutputSchema(const Schema& input,
                                     const std::vector<ExprRef>& exprs,
                                     const std::vector<std::string>& names = {});

  /// Columnar when every output expression vectorized at construction.
  bool SupportsColumns(int port = 0) const override {
    (void)port;
    return vproj_ != nullptr;
  }

 protected:
  /// Tight per-batch projection loop (see Operator::PushBatch).
  void PushBatch(ElementBatch& batch, int port) override;

  /// Vectorized projection: gathers/computes dense output columns from
  /// the live rows and forwards a fresh batch.
  void PushColumns(ColumnBatch& batch, int port) override;

 private:
  /// Row-path body shared by Push/PushBatch. Pure column projections
  /// (every expression a bare column reference, resolved to ordinals at
  /// construction) copy cells directly instead of virtual-dispatching
  /// Eval per cell.
  TupleRef ProjectRow(const Tuple& in) const;

  std::vector<ExprRef> exprs_;
  /// Bind-time ordinal resolution: non-empty iff every expression is a
  /// bare column reference.
  std::vector<int> ordinals_;
  std::unique_ptr<vec::CompiledProjection> vproj_;
  ColumnBatch scratch_;  // columnar output (reused across batches)
};

/// Duplicate-eliminating projection: "like grouping" (slide 29). Keeps a
/// seen-set per tumbling window when `window_size > 0` (reset at bucket
/// boundaries, keeping memory bounded); unbounded otherwise — the
/// distinction slide 36 draws for `select distinct`.
class DistinctOp : public Operator, public CheckpointableOperator {
 public:
  explicit DistinctOp(std::vector<int> cols, int64_t window_size = 0,
                      std::string name = "distinct");

  void Push(const Element& e, int port = 0) override;
  size_t StateBytes() const override;

  /// Checkpointing: the seen-set and current bucket round-trip.
  void SaveState(dur::BufWriter& w) const override;
  Status RestoreState(dur::BufReader& r) override;

 private:
  std::vector<int> cols_;
  int64_t window_size_;
  int64_t current_bucket_ = INT64_MIN;
  KeySet seen_;  // KeyView-probed: duplicates never materialize a Key.
};

}  // namespace sqp

#endif  // SQP_EXEC_PROJECT_H_
