#ifndef SQP_EXEC_PROJECT_H_
#define SQP_EXEC_PROJECT_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/schema.h"
#include "exec/expr.h"
#include "exec/operator.h"

namespace sqp {

/// Duplicate-preserving projection (generalized: any scalar expressions).
/// Output tuples keep the input timestamp — projections on streams must
/// preserve the ordering attribute (slide 29, [JMS95]).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::vector<ExprRef> exprs, std::string name = "project");

  void Push(const Element& e, int port = 0) override;

  /// Computes the output schema given the input schema; names fields
  /// f0..fn unless `names` provided.
  static Result<Schema> OutputSchema(const Schema& input,
                                     const std::vector<ExprRef>& exprs,
                                     const std::vector<std::string>& names = {});

 protected:
  /// Tight per-batch projection loop (see Operator::PushBatch).
  void PushBatch(ElementBatch& batch, int port) override;

 private:
  std::vector<ExprRef> exprs_;
};

/// Duplicate-eliminating projection: "like grouping" (slide 29). Keeps a
/// seen-set per tumbling window when `window_size > 0` (reset at bucket
/// boundaries, keeping memory bounded); unbounded otherwise — the
/// distinction slide 36 draws for `select distinct`.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(std::vector<int> cols, int64_t window_size = 0,
                      std::string name = "distinct");

  void Push(const Element& e, int port = 0) override;
  size_t StateBytes() const override;

 private:
  std::vector<int> cols_;
  int64_t window_size_;
  int64_t current_bucket_ = INT64_MIN;
  KeySet seen_;  // KeyView-probed: duplicates never materialize a Key.
};

}  // namespace sqp

#endif  // SQP_EXEC_PROJECT_H_
