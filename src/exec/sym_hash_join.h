#ifndef SQP_EXEC_SYM_HASH_JOIN_H_
#define SQP_EXEC_SYM_HASH_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dur/checkpointable.h"
#include "exec/operator.h"
#include "exec/sharding.h"

namespace sqp {

/// Symmetric hash join [WA91] (slide 31): both inputs build and probe,
/// so results stream out as tuples arrive instead of blocking on one
/// side. Unwindowed — state grows with both inputs, which is exactly why
/// stream systems bound it with windows (see BinaryWindowJoinOp).
///
/// Output row: left tuple's values ++ right tuple's values; output ts is
/// the later of the two.
class SymmetricHashJoinOp : public Operator,
                            public ShardableOperator,
                            public CheckpointableOperator {
 public:
  SymmetricHashJoinOp(std::vector<int> left_cols, std::vector<int> right_cols,
                      std::string name = "sym-hash-join");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Equi-join: partitioning both sides on the join keys keeps matching
  /// pairs co-located, so disjoint routing is always valid.
  std::unique_ptr<Operator> CloneReplica() const override {
    return std::make_unique<SymmetricHashJoinOp>(key_cols_[0], key_cols_[1],
                                                 name());
  }
  std::vector<std::vector<int>> ShardKeyColumns() const override {
    return {key_cols_[0], key_cols_[1]};
  }
  bool CanShard(std::string* /*why*/) const override { return true; }

  /// Checkpointing: both build tables (all retained tuples) round-trip.
  void SaveState(dur::BufWriter& w) const override;
  Status RestoreState(dur::BufReader& r) override;

 private:
  void EmitJoined(const Tuple& left, const Tuple& right);

  std::vector<int> key_cols_[2];
  KeyMap<std::vector<TupleRef>> table_[2];  // KeyView-probed (zero-alloc).
  size_t table_bytes_[2] = {0, 0};
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_SYM_HASH_JOIN_H_
