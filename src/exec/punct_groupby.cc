#include "exec/punct_groupby.h"

#include <cassert>

#include "exec/ckpt_util.h"

namespace sqp {

PunctuationGroupByOp::PunctuationGroupByOp(int key_col,
                                           std::vector<AggSpec> aggs,
                                           std::string name)
    : Operator(std::move(name)),
      key_col_(key_col),
      agg_specs_(std::move(aggs)) {
  fns_.reserve(agg_specs_.size());
  for (const AggSpec& s : agg_specs_) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns_.push_back(std::move(fn.value()));
  }
}

void PunctuationGroupByOp::EmitGroup(int64_t close_ts, const Value& key,
                                     GroupState& state) {
  std::vector<Value> row;
  row.reserve(2 + state.accs.size());
  row.push_back(Value(close_ts));
  row.push_back(key);
  for (const auto& acc : state.accs) row.push_back(acc->Result());
  Emit(Element(MakeTuple(close_ts, std::move(row))));
}

void PunctuationGroupByOp::HandlePunct(const Punctuation& p) {
  if (p.has_key) {
    auto it = groups_.find(p.key);
    if (it != groups_.end()) {
      EmitGroup(p.ts, it->first, it->second);
      groups_.erase(it);
    }
  } else {
    // Watermark: any group silent since before it is complete.
    for (auto it = groups_.begin(); it != groups_.end();) {
      if (it->second.last_ts <= p.ts) {
        EmitGroup(p.ts, it->first, it->second);
        it = groups_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Emit(Element(p));
}

void PunctuationGroupByOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    HandlePunct(e.punctuation());
    return;
  }

  const Tuple& t = *e.tuple();
  const Value& key = t.at(static_cast<size_t>(key_col_));
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    GroupState state;
    state.accs.reserve(fns_.size());
    for (const AggregateFunction& fn : fns_) {
      state.accs.push_back(fn.NewAccumulator());
    }
    it = groups_.emplace(key, std::move(state)).first;
  }
  it->second.last_ts = std::max(it->second.last_ts, t.ts());
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    const AggSpec& s = agg_specs_[i];
    if (s.input_col < 0) {
      it->second.accs[i]->Add(Value(int64_t{1}));
    } else {
      it->second.accs[i]->Add(t.at(static_cast<size_t>(s.input_col)));
    }
  }
}

void PunctuationGroupByOp::FoldRow(const ColumnBatch& batch, uint32_t row) {
  Value key = batch.cols[static_cast<size_t>(key_col_)].ValueAt(row);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    GroupState state;
    state.accs.reserve(fns_.size());
    for (const AggregateFunction& fn : fns_) {
      state.accs.push_back(fn.NewAccumulator());
    }
    it = groups_.emplace(std::move(key), std::move(state)).first;
  }
  it->second.last_ts = std::max(it->second.last_ts, batch.ts[row]);
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    const AggSpec& s = agg_specs_[i];
    if (s.input_col < 0) {
      it->second.accs[i]->Add(Value(int64_t{1}));
    } else {
      it->second.accs[i]->Add(
          batch.cols[static_cast<size_t>(s.input_col)].ValueAt(row));
    }
  }
}

void PunctuationGroupByOp::PushColumns(ColumnBatch& batch, int /*port*/) {
  CountInColumns(batch);
  // Merge live rows and punctuation slots back into stream order; rows
  // fold straight from the typed arrays (no Tuple is ever built for the
  // input side), punctuations run the same close-out as the row path.
  const size_t n = batch.ActiveRows();
  size_t pi = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = batch.Active(k);
    while (pi < batch.puncts.size() && batch.puncts[pi].pos <= r) {
      HandlePunct(batch.puncts[pi].punct);
      ++pi;
    }
    FoldRow(batch, r);
  }
  while (pi < batch.puncts.size()) {
    HandlePunct(batch.puncts[pi].punct);
    ++pi;
  }
}

void PunctuationGroupByOp::Flush() {
  for (auto& [key, state] : groups_) {
    EmitGroup(state.last_ts, key, state);
  }
  groups_.clear();
  Operator::Flush();
}

size_t PunctuationGroupByOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : groups_) {
    bytes += key.MemoryBytes() + 32;
    for (const auto& acc : state.accs) bytes += acc->MemoryBytes();
  }
  return bytes;
}

bool PunctuationGroupByOp::CanCheckpointState(std::string* why) const {
  for (const AggregateFunction& fn : fns_) {
    if (!AggStateSerializable(fn.kind())) {
      if (why != nullptr) {
        *why = std::string("aggregate ") + AggKindName(fn.kind()) +
               " has no state serializer";
      }
      return false;
    }
  }
  return true;
}

void PunctuationGroupByOp::SaveState(dur::BufWriter& w) const {
  w.U32(static_cast<uint32_t>(groups_.size()));
  for (const auto& [key, state] : groups_) {
    w.Val(key);
    w.I64(state.last_ts);
    ckpt::SaveAccs(w, state.accs);
  }
}

Status PunctuationGroupByOp::RestoreState(dur::BufReader& r) {
  groups_.clear();
  uint32_t ngroups = 0;
  SQP_RETURN_NOT_OK(r.U32(&ngroups));
  for (uint32_t g = 0; g < ngroups; ++g) {
    Value key;
    SQP_RETURN_NOT_OK(r.Val(&key));
    GroupState state;
    SQP_RETURN_NOT_OK(r.I64(&state.last_ts));
    SQP_RETURN_NOT_OK(ckpt::LoadAccs(r, fns_, &state.accs));
    groups_.emplace(std::move(key), std::move(state));
  }
  return Status::OK();
}

}  // namespace sqp
