#ifndef SQP_EXEC_UNION_H_
#define SQP_EXEC_UNION_H_

#include <deque>
#include <string>

#include "exec/operator.h"

namespace sqp {

/// Merges two streams in arrival order (no ordering guarantee on output).
/// Watermark punctuations are forwarded only at the minimum of the two
/// inputs' watermarks, so downstream windows stay correct.
class UnionOp : public Operator {
 public:
  explicit UnionOp(std::string name = "union");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;

 private:
  int64_t watermark_[2] = {INT64_MIN, INT64_MIN};
  int64_t emitted_watermark_ = INT64_MIN;
  int flushes_ = 0;
};

/// Merges two *ordered* streams into one ordered stream by buffering each
/// side and releasing elements up to min(latest ts seen per side) — the
/// standard order-preserving merge that exploits ordering attributes to
/// stay non-blocking (slide 48).
class OrderedMergeOp : public Operator {
 public:
  explicit OrderedMergeOp(std::string name = "merge");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

 private:
  void Release();

  std::deque<TupleRef> buf_[2];
  int64_t seen_ts_[2] = {INT64_MIN, INT64_MIN};
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_UNION_H_
