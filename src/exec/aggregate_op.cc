#include "exec/aggregate_op.h"

#include <cassert>

#include "exec/ckpt_util.h"

namespace sqp {

namespace {

std::vector<AggregateFunction> MakeFns(const std::vector<AggSpec>& specs) {
  std::vector<AggregateFunction> fns;
  fns.reserve(specs.size());
  for (const AggSpec& s : specs) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns.push_back(std::move(fn.value()));
  }
  return fns;
}

}  // namespace

GroupByAggregateOp::GroupByAggregateOp(GroupByOptions options,
                                       std::string name)
    : Operator(std::move(name)),
      options_(std::move(options)),
      fns_(MakeFns(options_.aggs)) {}

void GroupByAggregateOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    const Punctuation& p = e.punctuation();
    if (!p.has_key && options_.window_size > 0) {
      CloseBucketsThrough(p.ts);
    }
    Emit(e);
    return;
  }
  FoldTuple(*e.tuple());
  // A tuple in a newer bucket proves older buckets are complete (the
  // stream's ordering attribute is nondecreasing).
  if (options_.window_size > 0) {
    CloseBucketsThrough(max_ts_ - (max_ts_ % options_.window_size) - 1);
  }
}

void GroupByAggregateOp::FoldTuple(const Tuple& t) {
  max_ts_ = std::max(max_ts_, t.ts());
  int64_t bucket =
      options_.window_size > 0 ? t.ts() / options_.window_size : 0;
  GroupMap& groups = buckets_[bucket];
  // Borrowed-view probe: folding into an existing group — the steady
  // state — allocates nothing for the key.
  KeyView key(t, options_.key_cols);
  auto it = groups.find(key);
  if (it == groups.end()) {
    GroupState state;
    state.accs.reserve(fns_.size());
    for (const AggregateFunction& fn : fns_) {
      state.accs.push_back(fn.NewAccumulator());
    }
    it = groups.emplace(key.Materialize(), std::move(state)).first;
  }
  for (size_t i = 0; i < options_.aggs.size(); ++i) {
    const AggSpec& s = options_.aggs[i];
    if (s.input_col < 0) {
      it->second.accs[i]->Add(Value(int64_t{1}));
    } else {
      it->second.accs[i]->Add(t.at(static_cast<size_t>(s.input_col)));
    }
  }
}

void GroupByAggregateOp::CloseBucketsThrough(int64_t watermark) {
  if (options_.window_size <= 0) return;
  // Close every bucket that ends at or before the watermark.
  while (!buckets_.empty()) {
    auto it = buckets_.begin();
    int64_t bucket_end = (it->first + 1) * options_.window_size - 1;
    if (bucket_end > watermark) break;
    EmitBucket(it->first, it->second);
    buckets_.erase(it);
  }
}

void GroupByAggregateOp::EmitBucket(int64_t bucket, GroupMap& groups) {
  int64_t out_ts = options_.window_size > 0
                       ? bucket * options_.window_size
                       : (max_ts_ == INT64_MIN ? 0 : max_ts_);
  for (auto& [key, state] : groups) {
    std::vector<Value> row;
    row.reserve(1 + key.parts.size() + state.accs.size());
    row.push_back(Value(out_ts));
    for (const Value& v : key.parts) row.push_back(v);
    for (const auto& acc : state.accs) row.push_back(acc->Result());
    TupleRef out = MakeTuple(out_ts, std::move(row));
    if (options_.having != nullptr && !Truthy(options_.having->Eval(*out))) {
      continue;
    }
    Emit(Element(std::move(out)));
  }
}

void GroupByAggregateOp::Flush() {
  for (auto& [bucket, groups] : buckets_) EmitBucket(bucket, groups);
  buckets_.clear();
  Operator::Flush();
}

size_t GroupByAggregateOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [bucket, groups] : buckets_) {
    for (const auto& [key, state] : groups) {
      for (const Value& v : key.parts) bytes += v.MemoryBytes();
      for (const auto& acc : state.accs) bytes += acc->MemoryBytes();
      bytes += 32;  // Hash-table node overhead.
    }
  }
  return bytes;
}

size_t GroupByAggregateOp::open_groups() const {
  size_t n = 0;
  for (const auto& [bucket, groups] : buckets_) n += groups.size();
  return n;
}

bool GroupByAggregateOp::CanCheckpointState(std::string* why) const {
  for (const AggregateFunction& fn : fns_) {
    if (!AggStateSerializable(fn.kind())) {
      if (why != nullptr) {
        *why = std::string("aggregate ") + AggKindName(fn.kind()) +
               " has no state serializer";
      }
      return false;
    }
  }
  return true;
}

void GroupByAggregateOp::SaveState(dur::BufWriter& w) const {
  w.I64(max_ts_);
  w.U32(static_cast<uint32_t>(buckets_.size()));
  for (const auto& [bucket, groups] : buckets_) {
    w.I64(bucket);
    w.U32(static_cast<uint32_t>(groups.size()));
    for (const auto& [key, state] : groups) {
      ckpt::SaveKey(w, key);
      ckpt::SaveAccs(w, state.accs);
    }
  }
}

Status GroupByAggregateOp::RestoreState(dur::BufReader& r) {
  buckets_.clear();
  SQP_RETURN_NOT_OK(r.I64(&max_ts_));
  uint32_t nbuckets = 0;
  SQP_RETURN_NOT_OK(r.U32(&nbuckets));
  for (uint32_t b = 0; b < nbuckets; ++b) {
    int64_t bucket = 0;
    uint32_t ngroups = 0;
    SQP_RETURN_NOT_OK(r.I64(&bucket));
    SQP_RETURN_NOT_OK(r.U32(&ngroups));
    GroupMap& groups = buckets_[bucket];
    for (uint32_t g = 0; g < ngroups; ++g) {
      Key key;
      SQP_RETURN_NOT_OK(ckpt::LoadKey(r, &key));
      GroupState state;
      SQP_RETURN_NOT_OK(ckpt::LoadAccs(r, fns_, &state.accs));
      groups.emplace(std::move(key), std::move(state));
    }
  }
  return Status::OK();
}

Result<Schema> GroupByAggregateOp::OutputSchema(const Schema& input,
                                                const GroupByOptions& options) {
  std::vector<Field> fields;
  fields.push_back(Field{"ts", ValueType::kInt});
  for (int c : options.key_cols) {
    if (c < 0 || static_cast<size_t>(c) >= input.num_fields()) {
      return Status::InvalidArgument("group-by column out of range");
    }
    fields.push_back(input.field(static_cast<size_t>(c)));
  }
  for (const AggSpec& s : options.aggs) {
    ValueType type;
    switch (s.kind) {
      case AggKind::kCount:
      case AggKind::kCountDistinct:
      case AggKind::kApproxCountDistinct:
        type = ValueType::kInt;
        break;
      case AggKind::kAvg:
      case AggKind::kStddev:
      case AggKind::kMedian:
      case AggKind::kApproxMedian:
      case AggKind::kBlend:
        type = ValueType::kDouble;
        break;
      default: {
        if (s.input_col < 0 ||
            static_cast<size_t>(s.input_col) >= input.num_fields()) {
          return Status::InvalidArgument("aggregate input column out of range");
        }
        type = input.field(static_cast<size_t>(s.input_col)).type;
      }
    }
    std::string name = std::string(AggKindName(s.kind));
    if (s.input_col >= 0) {
      name += "_" + input.field(static_cast<size_t>(s.input_col)).name;
    }
    fields.push_back(Field{std::move(name), type});
  }
  return Schema::WithOrdering(std::move(fields), "ts");
}

}  // namespace sqp
