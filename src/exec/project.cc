#include "exec/project.h"

#include "exec/ckpt_util.h"

namespace sqp {

ProjectOp::ProjectOp(std::vector<ExprRef> exprs, std::string name)
    : Operator(std::move(name)), exprs_(std::move(exprs)) {
  // Bind-time resolution: a projection made only of bare column
  // references needs no expression evaluation at all per row — the
  // ordinals are fixed here, once, and the hot loop just copies cells.
  ordinals_.reserve(exprs_.size());
  for (const ExprRef& ex : exprs_) {
    if (ex == nullptr || ex->kind() != ExprKind::kColumn) {
      ordinals_.clear();
      break;
    }
    ordinals_.push_back(ex->column_index());
  }
  if (ordinals_.size() != exprs_.size()) ordinals_.clear();
  vproj_ = vec::CompiledProjection::Compile(exprs_);
}

TupleRef ProjectOp::ProjectRow(const Tuple& in) const {
  std::vector<Value> out;
  out.reserve(exprs_.size());
  if (!ordinals_.empty()) {
    for (int c : ordinals_) out.push_back(in.at(static_cast<size_t>(c)));
  } else {
    for (const ExprRef& ex : exprs_) out.push_back(ex->Eval(in));
  }
  return MakeTuple(in.ts(), std::move(out));
}

void ProjectOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  Emit(Element(ProjectRow(*e.tuple())));
}

void ProjectOp::PushBatch(ElementBatch& batch, int /*port*/) {
  AssertSingleCaller();
  uint64_t tuples = 0;
  uint64_t puncts = 0;
  for (Element& e : batch) {
    if (e.is_punctuation()) {
      ++puncts;
      Emit(std::move(e));
      continue;
    }
    ++tuples;
    Emit(Element(ProjectRow(*e.tuple())));
  }
  stats_.tuples_in += tuples;
  stats_.puncts_in += puncts;
  if (metrics() != nullptr) metrics()->CountInBulk(tuples, puncts);
}

void ProjectOp::PushColumns(ColumnBatch& batch, int /*port*/) {
  CountInColumns(batch);
  if (vproj_ != nullptr && vproj_->Project(batch, &scratch_)) {
    EmitColumns(std::move(scratch_));
    return;
  }
  // Fallback (unsupported expression or a batch whose computed column
  // mixes types): rebuild rows and project per element, counters
  // already settled.
  ElementBatch rows;
  batch.MaterializeRows(&rows);
  for (Element& e : rows) {
    if (e.is_punctuation()) {
      Emit(std::move(e));
      continue;
    }
    Emit(Element(ProjectRow(*e.tuple())));
  }
}

Result<Schema> ProjectOp::OutputSchema(const Schema& input,
                                       const std::vector<ExprRef>& exprs,
                                       const std::vector<std::string>& names) {
  std::vector<Field> fields;
  fields.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    auto type = exprs[i]->Check(input);
    if (!type.ok()) return type.status();
    std::string name =
        i < names.size() ? names[i] : ("f" + std::to_string(i));
    fields.push_back(Field{std::move(name), *type});
  }
  return Schema(std::move(fields));
}

DistinctOp::DistinctOp(std::vector<int> cols, int64_t window_size,
                       std::string name)
    : Operator(std::move(name)),
      cols_(std::move(cols)),
      window_size_(window_size) {}

void DistinctOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  const Tuple& t = *e.tuple();
  if (window_size_ > 0) {
    int64_t bucket = t.ts() / window_size_;
    if (bucket != current_bucket_) {
      current_bucket_ = bucket;
      seen_.clear();
    }
  }
  // Probe with a borrowed view; duplicates (the common case once the
  // window warms up) never allocate a Key.
  KeyView view(t, cols_);
  if (seen_.find(view) == seen_.end()) {
    seen_.insert(view.Materialize());
    // First occurrence (in this window): project to the distinct columns.
    std::vector<Value> out;
    out.reserve(cols_.size());
    for (int c : cols_) out.push_back(t.at(static_cast<size_t>(c)));
    Emit(Element(MakeTuple(t.ts(), std::move(out))));
  }
}

size_t DistinctOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const Key& k : seen_) {
    for (const Value& v : k.parts) bytes += v.MemoryBytes();
    bytes += 16;
  }
  return bytes;
}

void DistinctOp::SaveState(dur::BufWriter& w) const {
  w.I64(current_bucket_);
  w.U32(static_cast<uint32_t>(seen_.size()));
  for (const Key& k : seen_) ckpt::SaveKey(w, k);
}

Status DistinctOp::RestoreState(dur::BufReader& r) {
  SQP_RETURN_NOT_OK(r.I64(&current_bucket_));
  uint32_t n = 0;
  SQP_RETURN_NOT_OK(r.U32(&n));
  seen_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    Key k;
    SQP_RETURN_NOT_OK(ckpt::LoadKey(r, &k));
    seen_.insert(std::move(k));
  }
  return Status::OK();
}

}  // namespace sqp
