#include "exec/paned_window_agg.h"

#include <cassert>
#include <numeric>

namespace sqp {

PanedWindowAggregateOp::PanedWindowAggregateOp(Options options,
                                               std::string name)
    : Operator(std::move(name)), options_(std::move(options)) {
  assert(options_.window > 0 && options_.slide > 0);
  assert(options_.slide <= options_.window);
  pane_ = std::gcd(options_.window, options_.slide);
  for (const AggSpec& s : options_.aggs) {
    auto fn = AggregateFunction::Make(s.kind, s.param);
    assert(fn.ok());
    fns_.push_back(std::move(fn.value()));
  }
  current_ = NewAccs();
}

PanedWindowAggregateOp::Accs PanedWindowAggregateOp::NewAccs() const {
  Accs accs;
  accs.reserve(fns_.size());
  for (const AggregateFunction& fn : fns_) accs.push_back(fn.NewAccumulator());
  return accs;
}

void PanedWindowAggregateOp::FoldTuple(const Tuple& t) {
  for (size_t i = 0; i < options_.aggs.size(); ++i) {
    const AggSpec& s = options_.aggs[i];
    if (s.input_col < 0) {
      current_[i]->Add(Value(int64_t{1}));
    } else {
      current_[i]->Add(t.at(static_cast<size_t>(s.input_col)));
    }
  }
}

void PanedWindowAggregateOp::ClosePane() {
  if (current_pane_ == INT64_MIN) return;
  panes_.emplace_back(current_pane_, std::move(current_));
  current_ = NewAccs();
  // Retain only the panes the widest pending window can still need.
  size_t max_panes = static_cast<size_t>(options_.window / pane_);
  while (panes_.size() > max_panes) panes_.pop_front();
}

void PanedWindowAggregateOp::EmitBoundary(int64_t boundary) {
  // Window covers [boundary - W, boundary): merge the covering panes.
  Accs merged = NewAccs();
  int64_t first_pane = (boundary - options_.window) / pane_;
  int64_t end_pane = boundary / pane_;
  for (const auto& [pane_id, accs] : panes_) {
    if (pane_id >= first_pane && pane_id < end_pane) {
      for (size_t i = 0; i < merged.size(); ++i) {
        merged[i]->Merge(*accs[i]);
        ++merges_;
      }
    }
  }
  std::vector<Value> row;
  row.reserve(1 + merged.size());
  row.push_back(Value(boundary));
  for (const auto& acc : merged) row.push_back(acc->Result());
  Emit(Element(MakeTuple(boundary, std::move(row))));
}

void PanedWindowAggregateOp::AdvanceTo(int64_t now) {
  int64_t pane = now / pane_;
  if (current_pane_ == INT64_MIN) {
    current_pane_ = pane;
    // Start emitting from the first slide boundary after the stream
    // begins (partial windows before that are skipped).
    last_boundary_ = (now / options_.slide) * options_.slide;
    return;
  }
  if (pane <= current_pane_) return;
  // The open pane closes; any panes between it and `pane` are empty, so
  // the open pane can jump directly.
  ClosePane();
  current_pane_ = pane;
  int64_t complete_through = pane * pane_;
  while (last_boundary_ + options_.slide <= complete_through) {
    int64_t nb = last_boundary_ + options_.slide;
    int64_t newest_end =
        panes_.empty() ? INT64_MIN : (panes_.back().first + 1) * pane_;
    if (newest_end <= nb - options_.window) {
      // Every remaining boundary up to complete_through has an empty
      // window; skip the run (empty windows are suppressed).
      last_boundary_ = (complete_through / options_.slide) * options_.slide;
      break;
    }
    last_boundary_ = nb;
    EmitBoundary(nb);
  }
}

void PanedWindowAggregateOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    if (!e.punctuation().has_key) AdvanceTo(e.punctuation().ts + 1);
    Emit(e);
    return;
  }
  AdvanceTo(e.tuple()->ts());
  FoldTuple(*e.tuple());
}

void PanedWindowAggregateOp::Flush() {
  if (current_pane_ != INT64_MIN) {
    // Close the open pane and emit the remaining boundaries, plus one
    // trailing (possibly partial) window covering data past the last
    // boundary.
    int64_t data_end = (current_pane_ + 1) * pane_;
    ClosePane();
    while (last_boundary_ + options_.slide <= data_end) {
      last_boundary_ += options_.slide;
      EmitBoundary(last_boundary_);
    }
    if (last_boundary_ < data_end) {
      last_boundary_ += options_.slide;
      EmitBoundary(last_boundary_);
    }
  }
  Operator::Flush();
}

size_t PanedWindowAggregateOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& acc : current_) bytes += acc->MemoryBytes();
  for (const auto& [id, accs] : panes_) {
    for (const auto& acc : accs) bytes += acc->MemoryBytes();
  }
  return bytes;
}

}  // namespace sqp
