#ifndef SQP_EXEC_COLUMN_BATCH_H_
#define SQP_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stream/element.h"
#include "stream/element_batch.h"

namespace sqp {

/// Columnar mirror of an ElementBatch: the unit of the vectorized
/// execution path (see DESIGN.md "Columnar execution").
///
/// Layout
///   - one typed array per attribute (`Column`): int64/double vectors, or
///     an offset+arena pair for strings; a lazily allocated validity mask
///     marks per-row nulls, and a column whose values are *all* null
///     carries `type == kNull` with no storage at all;
///   - the out-of-band tuple timestamps (`ts`), one per physical row;
///   - a selection vector (`sel`, ascending physical row indices):
///     selects *refine* it in place instead of copying survivors, so a
///     chain of filters touches each column once and moves no data;
///   - punctuation slots (`puncts`): each records the punctuation plus
///     the physical row index it precedes (`pos == rows()` = after the
///     last row), so interleavings survive the columnar detour exactly.
///
/// Equivalence contract: MaterializeRows(FromRows(batch)) reproduces the
/// source batch element-for-element (same tuple values, timestamps and
/// punctuation interleaving), and any operator sequence applied
/// columnarly must yield the same materialized rows as its row-path
/// twin. Conversion is best-effort: FromRows returns false (and the
/// caller stays on the row path) for ragged batches or columns mixing
/// non-null types — the row path remains the general fallback.
class ColumnBatch {
 public:
  /// One attribute's values across all physical rows.
  struct Column {
    ValueType type = ValueType::kNull;  ///< kNull => every value is null.
    std::vector<int64_t> ints;          ///< when type == kInt
    std::vector<double> dbls;           ///< when type == kDouble
    /// String storage: rows+1 offsets into the shared byte arena, so the
    /// column is two contiguous allocations regardless of row count.
    std::vector<uint32_t> offsets;
    std::string bytes;
    /// Validity: empty means "no nulls"; else one byte per physical row
    /// (1 = null). Kept as bytes, not bits — branchless loads beat bit
    /// twiddling at these batch sizes and the mask is usually absent.
    std::vector<uint8_t> nulls;

    bool HasNulls() const { return !nulls.empty(); }
    bool IsNull(size_t row) const {
      return type == ValueType::kNull || (!nulls.empty() && nulls[row] != 0);
    }
    std::string_view Str(size_t row) const {
      return std::string_view(bytes.data() + offsets[row],
                              offsets[row + 1] - offsets[row]);
    }
    /// Rebuilds the boxed Value for one row (materialization boundary).
    Value ValueAt(size_t row) const;

    void Clear() {
      type = ValueType::kNull;
      ints.clear();
      dbls.clear();
      offsets.clear();
      bytes.clear();
      nulls.clear();
    }
  };

  /// A punctuation anchored before physical row `pos` (pos == rows() =
  /// trailing). Slots are kept in arrival order; pos is non-decreasing.
  struct PunctSlot {
    uint32_t pos = 0;
    Punctuation punct;
  };

  std::vector<Column> cols;
  std::vector<int64_t> ts;  ///< per-physical-row tuple timestamps
  std::vector<PunctSlot> puncts;

  /// Selection vector: when `has_sel`, only the physical rows listed in
  /// `sel` (ascending) are live; otherwise all rows are.
  std::vector<uint32_t> sel;
  bool has_sel = false;

  size_t rows() const { return ts.size(); }
  size_t width() const { return cols.size(); }
  size_t ActiveRows() const { return has_sel ? sel.size() : rows(); }
  bool empty() const { return rows() == 0 && puncts.empty(); }

  /// Physical index of the k-th live row.
  uint32_t Active(size_t k) const {
    return has_sel ? sel[k] : static_cast<uint32_t>(k);
  }

  /// Resets to an empty batch; storage capacity is retained so reused
  /// scratch batches stop allocating once warm.
  void Clear();

  /// Converts a row batch. Returns false (out is cleared) when the batch
  /// cannot be represented: tuples of differing arity, or a column whose
  /// non-null values mix types (e.g. int and double) — callers fall back
  /// to the row path. Moved-from elements in `in` are skipped the same
  /// way ElementBatch consumers skip them.
  static bool FromRows(const ElementBatch& in, ColumnBatch* out);

  /// Appends the live rows and punctuations to `out` in stream order —
  /// the late-materialization step at sinks and fallback boundaries.
  void MaterializeRows(ElementBatch* out) const;

  /// Approximate footprint (queue/shedding accounting).
  size_t MemoryBytes() const;
};

}  // namespace sqp

#endif  // SQP_EXEC_COLUMN_BATCH_H_
