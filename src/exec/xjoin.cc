#include "exec/xjoin.h"

#include <algorithm>

namespace sqp {

XJoinOp::XJoinOp(Options options, std::string name)
    : Operator(std::move(name)), options_(std::move(options)) {
  sides_[0].resize(options_.partitions);
  sides_[1].resize(options_.partitions);
}

void XJoinOp::EmitJoined(const Tuple& left, const Tuple& right,
                         bool disk_stage) {
  if (disk_stage) {
    ++disk_results_;
  } else {
    ++mem_results_;
  }
  std::vector<Value> row;
  row.reserve(left.arity() + right.arity());
  row.insert(row.end(), left.values().begin(), left.values().end());
  row.insert(row.end(), right.values().begin(), right.values().end());
  Emit(Element(MakeTuple(std::max(left.ts(), right.ts()), std::move(row))));
}

void XJoinOp::SpillLargest() {
  int best_side = 0;
  size_t best_part = 0, best_bytes = 0;
  for (int s = 0; s < 2; ++s) {
    for (size_t p = 0; p < options_.partitions; ++p) {
      if (sides_[s][p].mem_bytes > best_bytes) {
        best_bytes = sides_[s][p].mem_bytes;
        best_side = s;
        best_part = p;
      }
    }
  }
  if (best_bytes == 0) return;
  Partition& part = sides_[best_side][best_part];
  for (auto& [key, entries] : part.mem) {
    for (Entry& e : entries) {
      disk_writes_ += e.t->MemoryBytes();
      ++spilled_tuples_;
      e.spill = seq_;
      part.disk.push_back(std::move(e));
    }
  }
  part.mem.clear();
  mem_bytes_total_ -= part.mem_bytes;
  part.mem_bytes = 0;
}

void XJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  int me = port == 0 ? 0 : 1;
  int other = 1 - me;
  const TupleRef& t = e.tuple();
  Key key = ExtractKey(*t, me == 0 ? options_.left_cols : options_.right_cols);
  size_t p = PartitionOf(key);
  ++seq_;

  // Memory-stage probe against the opposite side's resident partition.
  auto it = sides_[other][p].mem.find(key);
  if (it != sides_[other][p].mem.end()) {
    for (const Entry& match : it->second) {
      if (me == 0) {
        EmitJoined(*t, *match.t, false);
      } else {
        EmitJoined(*match.t, *t, false);
      }
    }
  }

  size_t bytes = t->MemoryBytes();
  sides_[me][p].mem[std::move(key)].push_back(Entry{t, seq_});
  sides_[me][p].mem_bytes += bytes;
  mem_bytes_total_ += bytes;
  while (options_.memory_budget_bytes > 0 &&
         mem_bytes_total_ > options_.memory_budget_bytes) {
    SpillLargest();
  }
}

void XJoinOp::Flush() {
  if (++flushes_ < 2) return;

  // Clean-up stage: per partition, join every left/right pair not already
  // produced while both were resident. Disk reads are charged per spilled
  // tuple scanned.
  for (size_t p = 0; p < options_.partitions; ++p) {
    std::vector<const Entry*> left, right;
    for (const auto& [key, entries] : sides_[0][p].mem) {
      for (const Entry& e : entries) left.push_back(&e);
    }
    for (const Entry& e : sides_[0][p].disk) {
      disk_reads_ += e.t->MemoryBytes();
      left.push_back(&e);
    }
    for (const auto& [key, entries] : sides_[1][p].mem) {
      for (const Entry& e : entries) right.push_back(&e);
    }
    for (const Entry& e : sides_[1][p].disk) {
      disk_reads_ += e.t->MemoryBytes();
      right.push_back(&e);
    }
    if (left.empty() || right.empty()) continue;

    // Hash the right list, then stream the left through it.
    std::unordered_map<Key, std::vector<const Entry*>, KeyHash> table;
    for (const Entry* r : right) {
      table[ExtractKey(*r->t, options_.right_cols)].push_back(r);
    }
    for (const Entry* l : left) {
      auto it = table.find(ExtractKey(*l->t, options_.left_cols));
      if (it == table.end()) continue;
      for (const Entry* r : it->second) {
        if (AlreadyJoined(*l, *r)) continue;
        EmitJoined(*l->t, *r->t, true);
      }
    }
  }
  Operator::Flush();
}

size_t XJoinOp::StateBytes() const {
  return sizeof(*this) + mem_bytes_total_;
}

}  // namespace sqp
