#ifndef SQP_EXEC_EXCHANGE_H_
#define SQP_EXEC_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace sqp {

/// Tuple-routing mode of a hash exchange, after the shared-nothing
/// windowed-join paper's trade-off:
///  - kDisjoint: every input port is hash-partitioned on its key
///    columns, so each shard owns a disjoint key range. Cheapest (each
///    element crosses to exactly one shard) but requires every port to
///    be keyed on the partitioning attribute (equi-joins, group-by,
///    distinct).
///  - kReplicated: port 0 is partitioned (hashed when keyed, else
///    round-robin) and every other port is broadcast to all shards.
///    Each shard then joins its slice of port 0 against the full
///    opposite stream, producing every result exactly once — works for
///    predicates that disjoint routing can't partition, at the cost of
///    N-fold ingest of the broadcast side.
enum class ShardRouting { kDisjoint, kReplicated };

const char* ShardRoutingName(ShardRouting r);

/// Full-queue policy of the sharded executor's internal queues —
/// mirrors sched::Backpressure without a layering dependency (sqp_sched
/// links sqp_exec, not the reverse).
enum class ShardBackpressure { kBlock, kDropNewest };

/// The routing decision shared by HashExchangeOp (serial, unit-testable)
/// and ShardedOp (threaded): element + port -> one shard, or broadcast.
///
/// Watermarks always broadcast (every shard's windows must advance).
/// Key-addressed punctuations (CloseKey) follow their key under disjoint
/// routing — the owner shard holds all of that key's state — and
/// broadcast under replicated routing.
class ShardRouter {
 public:
  static constexpr int kBroadcast = -1;

  /// `key_cols_by_port[p]` are the partition key columns of input port
  /// p; its size fixes the operator's input port count. An empty column
  /// list on a partitioned port falls back to round-robin (balanced but
  /// key-oblivious — only sound under kReplicated or for stateless
  /// sub-plans).
  ShardRouter(int shards, ShardRouting routing,
              std::vector<std::vector<int>> key_cols_by_port);

  /// Target shard index, or kBroadcast. Non-const: round-robin ports
  /// advance a cursor.
  int Route(const Element& e, int port);

  int shards() const { return shards_; }
  ShardRouting routing() const { return routing_; }
  int ports() const { return static_cast<int>(key_cols_.size()); }

 private:
  int shards_;
  ShardRouting routing_;
  std::vector<std::vector<int>> key_cols_;
  uint64_t rr_ = 0;
};

/// Hash-partition exchange: routes each arriving element to one of N
/// shard outputs (or all of them) per ShardRouter. The serial half of
/// the data-parallel exchange — ShardedOp adds the queues and threads.
///
/// Single-caller like every operator; the shard outputs are invoked
/// synchronously on the caller's thread.
class HashExchangeOp : public Operator {
 public:
  HashExchangeOp(int shards, ShardRouting routing,
                 std::vector<std::vector<int>> key_cols_by_port,
                 std::string name = "exchange");

  /// Wires shard `i`'s output. All shards must be wired before the
  /// first Push.
  void SetShardOutput(int shard, Operator* op, int port = 0);

  void Push(const Element& e, int port = 0) override;

  /// Forwards the flush to every shard output (each exactly once per
  /// upstream flush, preserving the per-port flush count binary
  /// operators rely on).
  void Flush() override;

  /// Elements delivered to shard i (broadcasts count once per shard, so
  /// the replicated mode's ingest amplification is visible here).
  uint64_t routed(int shard) const {
    return routed_[static_cast<size_t>(shard)];
  }
  /// Max over shards of routed / mean routed (1.0 = perfectly even).
  double SkewRatio() const;

  int shards() const { return router_.shards(); }

 private:
  struct ShardOut {
    Operator* op = nullptr;
    int port = 0;
  };

  void Forward(const Element& e, int shard);

  ShardRouter router_;
  std::vector<ShardOut> outs_;
  std::vector<uint64_t> routed_;
};

/// Punctuation-correct fan-in of N shard output streams back into one.
///
/// Tuples forward in arrival order (inter-shard order is
/// nondeterministic under threading; per-shard order is preserved).
/// Watermarks apply the classic exchange merge rule: track each shard's
/// latest watermark and forward the minimum across shards whenever it
/// advances — downstream never sees time move before every shard got
/// there, so window close-outs stay exactly as correct as the serial
/// plan's. Key-addressed punctuations forward straight through under
/// disjoint routing (one shard owns the key) and are deduplicated under
/// replicated routing (forwarded once all shards emitted theirs).
///
/// Push port = originating shard index. Flush forwards downstream only
/// on the Nth call (one per shard), mirroring binary operators' per-port
/// flush counting.
class ShardMergeOp : public Operator {
 public:
  ShardMergeOp(int shards, ShardRouting routing,
               std::string name = "shard-merge");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// The merged (min-across-shards) watermark forwarded so far.
  int64_t merged_watermark() const { return emitted_wm_; }

 private:
  int shards_;
  ShardRouting routing_;
  std::vector<int64_t> shard_wm_;
  int64_t emitted_wm_;
  /// Replicated-mode CloseKey dedup: key -> (max ts seen, arrivals).
  std::unordered_map<Value, std::pair<int64_t, int>, ValueHash>
      pending_close_;
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_EXCHANGE_H_
