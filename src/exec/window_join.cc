#include "exec/window_join.h"

#include <algorithm>
#include <cassert>

namespace sqp {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kNestedLoop:
      return "nested-loop";
    case JoinStrategy::kHash:
      return "hash";
  }
  return "?";
}

BinaryWindowJoinOp::BinaryWindowJoinOp(Options options, std::string name)
    : Operator(std::move(name)),
      options_(std::move(options)),
      left_outer_(options_.left_outer),
      right_arity_(options_.right_arity) {
  sides_[0].key_cols = options_.left_cols;
  sides_[1].key_cols = options_.right_cols;
  sides_[0].window = options_.left_window;
  sides_[1].window = options_.right_window;
  sides_[0].strategy = options_.left_strategy;
  sides_[1].strategy = options_.right_strategy;
  assert(!left_outer_ || right_arity_ > 0);
  for (Side& s : sides_) {
    assert(s.window.Validate().ok());
    switch (s.window.kind) {
      case WindowKind::kTimeSliding:
        s.time_buf = std::make_unique<TimeWindowBuffer>(s.window.size);
        break;
      case WindowKind::kCountSliding:
        s.count_buf = std::make_unique<CountWindowBuffer>(
            static_cast<size_t>(s.window.size));
        break;
      default:
        assert(false && "window join supports sliding windows");
    }
  }
}

void BinaryWindowJoinOp::EmitJoined(const Tuple& left, const Tuple& right) {
  ++jstats_.results;
  if (left_outer_) left_matched_.insert(&left);
  std::vector<Value> row;
  row.reserve(left.arity() + right.arity());
  row.insert(row.end(), left.values().begin(), left.values().end());
  row.insert(row.end(), right.values().begin(), right.values().end());
  Emit(Element(MakeTuple(std::max(left.ts(), right.ts()), std::move(row))));
}

void BinaryWindowJoinOp::EmitUnmatchedLeft(const Tuple& left, int64_t ts) {
  ++jstats_.unmatched_left;
  std::vector<Value> row;
  row.reserve(left.arity() + right_arity_);
  row.insert(row.end(), left.values().begin(), left.values().end());
  for (size_t i = 0; i < right_arity_; ++i) row.push_back(Value::Null());
  Emit(Element(MakeTuple(ts, std::move(row))));
}

uint64_t BinaryWindowJoinOp::Probe(const Side& probe_side, const KeyView& key,
                                   const Tuple& t, bool t_is_left) {
  uint64_t matches = 0;
  if (probe_side.strategy == JoinStrategy::kHash) {
    ++jstats_.hash_probes;
    auto it = probe_side.index.find(key);
    if (it == probe_side.index.end()) return 0;
    // Lazy deletion: skip entries no longer in the window.
    int64_t bound = probe_side.time_buf != nullptr
                        ? probe_side.time_buf->now() - probe_side.window.size
                        : INT64_MIN;
    for (const TupleRef& match : it->second) {
      if (probe_side.time_buf != nullptr && match->ts() <= bound) continue;
      ++matches;
      if (t_is_left) {
        EmitJoined(t, *match);
      } else {
        EmitJoined(*match, t);
      }
    }
    return matches;
  }
  // Nested loop: scan the window buffer, comparing each candidate's key
  // columns directly against the already-extracted probe key — no
  // per-candidate key construction.
  auto scan = [&](const auto& contents) {
    const std::vector<int>& cols = probe_side.key_cols;
    for (const TupleRef& match : contents) {
      ++jstats_.nl_comparisons;
      bool eq = cols.size() == key.size();
      for (size_t c = 0; eq && c < cols.size(); ++c) {
        eq = match->at(static_cast<size_t>(cols[c])) == key.part(c);
      }
      if (eq) {
        ++matches;
        if (t_is_left) {
          EmitJoined(t, *match);
        } else {
          EmitJoined(*match, t);
        }
      }
    }
  };
  if (probe_side.time_buf != nullptr) {
    scan(probe_side.time_buf->contents());
  } else {
    scan(probe_side.count_buf->contents());
  }
  return matches;
}

void BinaryWindowJoinOp::RemoveFromIndex(Side& side,
                                         const std::vector<TupleRef>& expired) {
  if (side.strategy != JoinStrategy::kHash) return;
  for (const TupleRef& t : expired) {
    KeyView key(*t, side.key_cols);
    auto it = side.index.find(key);
    if (it == side.index.end()) continue;
    auto& vec = it->second;
    for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
      if (vit->get() == t.get()) {
        side.index_bytes -= t->MemoryBytes();
        vec.erase(vit);
        break;
      }
    }
    if (vec.empty()) side.index.erase(it);
  }
}

void BinaryWindowJoinOp::HandleExpired(int side,
                                       const std::vector<TupleRef>& expired) {
  RemoveFromIndex(sides_[side], expired);
  if (side != 0 || !left_outer_) return;
  // Outer semantics: a left tuple leaving the window unmatched will
  // never match (right arrivals only probe the live window).
  for (const TupleRef& t : expired) {
    auto it = left_matched_.find(t.get());
    if (it != left_matched_.end()) {
      left_matched_.erase(it);
    } else {
      EmitUnmatchedLeft(*t, sides_[0].time_buf != nullptr
                                ? sides_[0].time_buf->now()
                                : t->ts());
    }
  }
}

void BinaryWindowJoinOp::Insert(Side& side, const TupleRef& t) {
  std::vector<TupleRef> expired;
  if (side.time_buf != nullptr) {
    side.time_buf->Insert(t, &expired);
  } else {
    auto evicted = side.count_buf->Insert(t);
    if (evicted.has_value()) expired.push_back(std::move(*evicted));
  }
  if (side.strategy == JoinStrategy::kHash) {
    side.index_bytes += t->MemoryBytes();
    KeyView key(*t, side.key_cols);
    auto it = side.index.find(key);
    if (it == side.index.end()) {
      it = side.index.emplace(key.Materialize(), std::vector<TupleRef>{})
               .first;
    }
    it->second.push_back(t);
  }
  HandleExpired(static_cast<int>(&side - &sides_[0]), expired);
}

void BinaryWindowJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  if (e.is_punctuation()) {
    // Advance both windows so stale state is purged on quiet streams.
    if (!e.punctuation().has_key) {
      for (int s = 0; s < 2; ++s) {
        if (sides_[s].time_buf != nullptr) {
          std::vector<TupleRef> expired;
          sides_[s].time_buf->AdvanceTo(e.punctuation().ts, &expired);
          HandleExpired(s, expired);
        }
      }
    }
    Emit(e);
    return;
  }

  int me = port == 0 ? 0 : 1;
  int other = 1 - me;
  const TupleRef& t = e.tuple();
  KeyView key(*t, sides_[me].key_cols);

  // KNV03 order: invalidate the opposite window up to the arriving
  // tuple's time, probe it, then insert into our own window (which also
  // invalidates our side).
  if (sides_[other].time_buf != nullptr) {
    std::vector<TupleRef> expired;
    sides_[other].time_buf->AdvanceTo(t->ts(), &expired);
    HandleExpired(other, expired);
  }
  Probe(sides_[other], key, *t, /*t_is_left=*/me == 0);
  Insert(sides_[me], t);
}

void BinaryWindowJoinOp::Flush() {
  if (++flushes_ < 2) return;
  if (left_outer_) {
    // End of stream: everything still in the left window that never
    // matched is reported unmatched.
    auto drain = [&](const auto& contents) {
      for (const TupleRef& t : contents) {
        if (left_matched_.count(t.get()) == 0) {
          EmitUnmatchedLeft(*t, t->ts());
        }
      }
    };
    if (sides_[0].time_buf != nullptr) {
      drain(sides_[0].time_buf->contents());
    } else if (sides_[0].count_buf != nullptr) {
      drain(sides_[0].count_buf->contents());
    }
  }
  Operator::Flush();
}

bool BinaryWindowJoinOp::CanShard(std::string* why) const {
  for (const Side& s : sides_) {
    if (s.window.kind == WindowKind::kCountSliding) {
      if (why != nullptr) *why = "count window is not partitionable";
      return false;
    }
  }
  if (left_outer_) {
    if (why != nullptr) *why = "outer join pad timestamps are shard-local";
    return false;
  }
  return true;
}

size_t BinaryWindowJoinOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const Side& s : sides_) {
    if (s.time_buf != nullptr) bytes += s.time_buf->MemoryBytes();
    if (s.count_buf != nullptr) bytes += s.count_buf->MemoryBytes();
    bytes += s.index_bytes;
    bytes += s.index.size() * 48;  // Bucket overhead.
  }
  bytes += left_matched_.size() * 16;
  return bytes;
}

}  // namespace sqp
