#include "exec/sharded_op.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace sqp {

/// Shard worker i's downstream: buffers the replica's emissions and
/// hands them to the merge queue a chunk at a time — one lock
/// acquisition and at most one wakeup per chunk. Punctuations flush the
/// buffer immediately (they are the latency-critical control path;
/// ordering is preserved because the whole buffer goes over in order).
class ShardedOp::MergeFeed : public Operator {
 public:
  MergeFeed(ShardedOp* owner, int shard, size_t cap)
      : Operator("merge-feed"),
        owner_(owner),
        shard_(shard),
        cap_(cap == 0 ? 1 : cap) {
    buf_.reserve(cap_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    bool punct = e.is_punctuation();
    buf_.push_back(MergeItem{e, shard_, false});
    if (punct || buf_.size() >= cap_) FlushBuffer();
  }

  /// Reached by the replica's flush cascade.
  void Flush() override { FlushBuffer(); }

  /// Batched hand-off from the replica's Emit coalescing.
  void PushBatch(ElementBatch& batch, int /*port*/) override {
    buf_.reserve(buf_.size() + batch.size());
    bool saw_punct = false;
    for (Element& e : batch) {
      if (e.is_punctuation()) saw_punct = true;
      buf_.push_back(MergeItem{std::move(e), shard_, false});
    }
    if (saw_punct || buf_.size() >= cap_) FlushBuffer();
  }

  void FlushBuffer() {
    if (buf_.empty()) return;
    owner_->EnqueueMerge(buf_);
    buf_.clear();
  }

  /// End-of-shard marker, after the replica's close-out output.
  void SendDone() {
    buf_.push_back(MergeItem{Element(), shard_, true});
    FlushBuffer();
  }

 private:
  ShardedOp* owner_;
  int shard_;
  size_t cap_;
  std::vector<MergeItem> buf_;
};

ShardedOp::ShardedOp(ShardedOpOptions options, ShardReplicaFactory factory,
                     std::string name)
    : Operator(std::move(name)),
      options_(options),
      router_(options.shards, options.routing, options.key_cols),
      expected_flushes_(options.expected_flushes > 0
                            ? options.expected_flushes
                            : static_cast<int>(options.key_cols.size())),
      merge_(options.shards, options.routing) {
  assert(options_.shards > 0);
  states_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto st = std::make_unique<ShardState>();
    st->replica = factory(i);
    st->feed = std::make_unique<MergeFeed>(this, i, options_.wake_batch);
    st->replica->SetOutput(st->feed.get());
    st->state_bytes.store(st->replica->StateBytes(),
                          std::memory_order_relaxed);
    states_.push_back(std::move(st));
  }
}

ShardedOp::~ShardedOp() {
  if (running_.load(std::memory_order_acquire)) StopAndJoin();
}

void ShardedOp::EnsureStarted() {
  if (started_) return;
  started_ = true;
  // The merge drives everything downstream of this operator, so wire it
  // to whatever Push-time output this op has. (Re-wiring the output
  // after the first Push is not supported.)
  merge_.SetOutput(output(), output_port());
  running_.store(true, std::memory_order_release);
  merge_worker_ = std::thread([this] { MergeLoop(); });
  for (int i = 0; i < options_.shards; ++i) {
    states_[static_cast<size_t>(i)]->worker =
        std::thread([this, i] { ShardLoop(i); });
  }
}

void ShardedOp::Push(const Element& e, int port) {
  CountIn(e);
  EnsureStarted();
  int target = router_.Route(e, port);
  if (target == ShardRouter::kBroadcast) {
    for (int i = 0; i < options_.shards; ++i) {
      EnqueueShard(i, Item{e, port});
    }
    return;
  }
  EnqueueShard(target, Item{e, port});
}

bool ShardedOp::EnqueueShard(int shard, Item item) {
  ShardState& st = *states_[static_cast<size_t>(shard)];
  std::unique_lock<std::mutex> lock(st.mu);
  if (stop_.load(std::memory_order_relaxed) || st.closed) return false;
  const size_t limit = options_.queue_limit;
  const bool is_punct = item.e.is_punctuation();
  // Punctuations bypass the limit: a lost watermark stalls the merge's
  // min rule and every windowed replica behind it.
  if (limit != 0 && st.q.size() >= limit && !is_punct) {
    if (options_.backpressure == ShardBackpressure::kDropNewest) {
      ++st.dropped;
      return false;
    }
    if (options_.events != nullptr) {
      const uint64_t now = obs::NowNs();
      if (now - st.last_stall_ns >= 1000000000ull) {  // 1/s per shard.
        st.last_stall_ns = now;
        options_.events->Emit(
            obs::EventKind::kShardStall, options_.event_label,
            name() + " shard " + std::to_string(shard) + " queue full (" +
                std::to_string(st.q.size()) + " queued); producer blocked");
      }
    }
    st.not_full.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) || st.closed ||
             st.q.size() < limit;
    });
    if (stop_.load(std::memory_order_relaxed) || st.closed) return false;
  }
  st.q.push_back(std::move(item));
  st.routed.fetch_add(1, std::memory_order_relaxed);
  if (st.q.size() > st.max_depth) st.max_depth = st.q.size();
  // Batched wakeup (see ParallelExecutor::Enqueue): the worker only
  // sleeps on an empty queue, so the threshold is crossed exactly once
  // per sleep; the worker's poll timeout covers sub-batch trickles.
  size_t wake = options_.wake_batch == 0 ? 1 : options_.wake_batch;
  if (limit != 0 && wake > limit) wake = limit;
  if (is_punct || st.q.size() == wake) st.not_empty.notify_one();
  return true;
}

void ShardedOp::EnqueueMerge(std::vector<MergeItem>& items) {
  std::unique_lock<std::mutex> lock(merge_mu_);
  const size_t limit = options_.merge_queue_limit;
  for (MergeItem& item : items) {
    if (stop_.load(std::memory_order_relaxed)) return;
    // The merge queue always blocks (never drops): these are produced
    // results, and losing them would silently corrupt output — load
    // shedding belongs at the input queues. Punctuations and done
    // markers bypass the bound.
    if (limit != 0 && merge_q_.size() >= limit && !item.shard_done &&
        !item.e.is_punctuation()) {
      merge_not_empty_.notify_one();
      merge_not_full_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               merge_q_.size() < limit;
      });
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    merge_q_.push_back(std::move(item));
  }
  merge_not_empty_.notify_one();  // Once per chunk.
}

void ShardedOp::ShardLoop(int shard) {
  ShardState& st = *states_[static_cast<size_t>(shard)];
  Operator* replica = st.replica.get();
  const bool columnar = options_.columnar;
  std::deque<Item> batch;
  ElementBatch eb;
  ColumnBatch cb;
  for (;;) {
    batch.clear();
    bool drain = false;
    {
      std::unique_lock<std::mutex> lock(st.mu);
      st.not_empty.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stop_.load(std::memory_order_relaxed) || st.closed ||
               !st.q.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      if (!st.q.empty()) {
        batch.swap(st.q);
      } else if (st.closed) {
        drain = true;
      } else {
        continue;  // Poll timeout with nothing to do.
      }
    }
    if (drain) break;
    st.not_full.notify_all();
    auto t0 = std::chrono::steady_clock::now();
    size_t i = 0;
    while (i < batch.size()) {
      const int port = batch[i].port;
      if (!columnar || !replica->SupportsColumns(port)) {
        replica->Process(batch[i].e, port);
        ++i;
      } else {
        // Columnar shard: convert the consecutive same-port run once
        // and fold it column-at-a-time; conversion failure (ragged or
        // mixed-type rows) falls back to the row batch unchanged.
        eb.clear();
        while (i < batch.size() && batch[i].port == port) {
          eb.push_back(std::move(batch[i].e));
          ++i;
        }
        if (ColumnBatch::FromRows(eb, &cb)) {
          replica->ProcessColumns(cb, port);
        } else {
          replica->ProcessBatch(eb, port);
        }
      }
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    // Don't sit on buffered emissions while waiting for the next batch.
    st.feed->FlushBuffer();
    auto t1 = std::chrono::steady_clock::now();
    st.busy_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        std::memory_order_relaxed);
    st.state_bytes.store(replica->StateBytes(), std::memory_order_relaxed);
  }
  // Drain: one Flush per input port (binary replicas count flushes),
  // close-out emissions flow into the merge queue, then the done marker.
  for (int f = 0; f < expected_flushes_; ++f) replica->Flush();
  st.feed->FlushBuffer();
  st.state_bytes.store(replica->StateBytes(), std::memory_order_relaxed);
  st.feed->SendDone();
}

void ShardedOp::MergeLoop() {
  int done = 0;
  std::deque<MergeItem> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(merge_mu_);
      merge_not_empty_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !merge_q_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      batch.swap(merge_q_);
    }
    merge_not_full_.notify_all();
    for (MergeItem& item : batch) {
      if (item.shard_done) {
        ++done;
        continue;
      }
      if (item.e.is_tuple()) {
        merged_tuples_.fetch_add(1, std::memory_order_relaxed);
      }
      states_[static_cast<size_t>(item.shard)]->merged.fetch_add(
          1, std::memory_order_relaxed);
      merge_.Push(item.e, item.shard);
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    if (done >= options_.shards) {
      // Every shard flushed and its marker is behind all its output
      // (per-shard FIFO), so the tail is fully forwarded. The Nth merge
      // flush forwards one Flush downstream, on this thread — the only
      // thread that ever touched downstream.
      for (int i = 0; i < options_.shards; ++i) merge_.Flush();
      return;
    }
  }
}

void ShardedOp::Flush() {
  if (++flushes_seen_ < expected_flushes_) return;
  if (!started_) {
    // Never saw data: nothing to drain, but the cascade must continue.
    Operator::Flush();
    return;
  }
  DrainAndJoin();
}

void ShardedOp::DrainAndJoin() {
  for (auto& st : states_) {
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->closed = true;
    }
    st->not_empty.notify_all();
    st->not_full.notify_all();
  }
  for (auto& st : states_) {
    if (st->worker.joinable()) st->worker.join();
  }
  if (merge_worker_.joinable()) merge_worker_.join();
  running_.store(false, std::memory_order_release);
  // Mirror the merge's out-counters into this op's stats so StatsString
  // and selectivity read like the serial operator's.
  stats_.tuples_out = merge_.stats().tuples_out;
  stats_.puncts_out = merge_.stats().puncts_out;
}

void ShardedOp::StopAndJoin() {
  stop_.store(true, std::memory_order_release);
  for (auto& st : states_) {
    std::lock_guard<std::mutex> lock(st->mu);
    st->not_empty.notify_all();
    st->not_full.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_not_empty_.notify_all();
    merge_not_full_.notify_all();
  }
  for (auto& st : states_) {
    if (st->worker.joinable()) st->worker.join();
  }
  if (merge_worker_.joinable()) merge_worker_.join();
  running_.store(false, std::memory_order_release);
}

size_t ShardedOp::StateBytes() const {
  size_t bytes = sizeof(*this) + merge_.StateBytes();
  for (const auto& st : states_) {
    bytes += st->state_bytes.load(std::memory_order_relaxed);
  }
  return bytes;
}

ShardStats ShardedOp::shard_stats(int i) const {
  const ShardState& st = *states_[static_cast<size_t>(i)];
  ShardStats out;
  out.routed = st.routed.load(std::memory_order_relaxed);
  out.merged = st.merged.load(std::memory_order_relaxed);
  out.busy_time =
      static_cast<double>(st.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  out.state_bytes = st.state_bytes.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(st.mu);
  out.dropped = st.dropped;
  out.queue_depth = st.q.size();
  out.max_queue_depth = st.max_depth;
  return out;
}

double ShardedOp::SkewRatio() const {
  uint64_t total = 0;
  uint64_t peak = 0;
  for (const auto& st : states_) {
    uint64_t r = st->routed.load(std::memory_order_relaxed);
    total += r;
    peak = std::max(peak, r);
  }
  if (total == 0) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(states_.size());
  return static_cast<double>(peak) / mean;
}

uint64_t ShardedOp::dropped() const {
  uint64_t n = 0;
  for (const auto& st : states_) {
    std::lock_guard<std::mutex> lock(st->mu);
    n += st->dropped;
  }
  return n;
}

void ShardedOp::CollectStats(obs::SnapshotBuilder& builder,
                             const obs::LabelSet& base_labels) const {
  obs::LabelSet op_labels = base_labels;
  op_labels.emplace_back("op", name());
  builder.AddGauge("sqp_shard_skew", op_labels, SkewRatio());
  builder.AddGauge("sqp_shard_count", op_labels,
                   static_cast<double>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    ShardStats s = shard_stats(i);
    obs::LabelSet labels = op_labels;
    labels.emplace_back("shard", std::to_string(i));
    builder.AddCounter("sqp_shard_routed_total", labels,
                       static_cast<double>(s.routed));
    builder.AddCounter("sqp_shard_merged_total", labels,
                       static_cast<double>(s.merged));
    builder.AddCounter("sqp_shard_dropped_total", labels,
                       static_cast<double>(s.dropped));
    builder.AddGauge("sqp_shard_backlog", labels,
                     static_cast<double>(s.queue_depth));
    builder.AddGauge("sqp_shard_max_queue_depth", labels,
                     static_cast<double>(s.max_queue_depth));
    builder.AddCounter("sqp_shard_busy_time", labels, s.busy_time);
    builder.AddGauge("sqp_shard_state_bytes", labels,
                     static_cast<double>(s.state_bytes));
  }
}

}  // namespace sqp
