#include "exec/expr.h"

#include "common/strings.h"

namespace sqp {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

namespace {

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(int index) : index_(index) {}

  Value Eval(const Tuple& t) const override {
    return t.at(static_cast<size_t>(index_));
  }

  Result<ValueType> Check(const Schema& schema) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= schema.num_fields()) {
      return Status::InvalidArgument(
          StrFormat("column index %d out of range (schema has %zu fields)",
                    index_, schema.num_fields()));
    }
    return schema.field(static_cast<size_t>(index_)).type;
  }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

  ExprKind kind() const override { return ExprKind::kColumn; }
  int column_index() const override { return index_; }

 private:
  int index_;
};

class ConstExpr : public Expr {
 public:
  explicit ConstExpr(Value v) : v_(std::move(v)) {}

  Value Eval(const Tuple& /*t*/) const override { return v_; }

  Result<ValueType> Check(const Schema& /*schema*/) const override {
    return v_.type();
  }

  std::string ToString() const override { return v_.ToString(); }

  ExprKind kind() const override { return ExprKind::kConst; }
  const Value* literal() const override { return &v_; }

 private:
  Value v_;
};

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinOp op, ExprRef lhs, ExprRef rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Tuple& t) const override {
    switch (op_) {
      case BinOp::kAnd: {
        // Short-circuit.
        if (!Truthy(lhs_->Eval(t))) return Value(int64_t{0});
        return Value(int64_t{Truthy(rhs_->Eval(t)) ? 1 : 0});
      }
      case BinOp::kOr: {
        if (Truthy(lhs_->Eval(t))) return Value(int64_t{1});
        return Value(int64_t{Truthy(rhs_->Eval(t)) ? 1 : 0});
      }
      default:
        break;
    }
    Value a = lhs_->Eval(t);
    Value b = rhs_->Eval(t);
    switch (op_) {
      case BinOp::kAdd:
        return Value::Add(a, b).value_or(Value::Null());
      case BinOp::kSub:
        return Value::Sub(a, b).value_or(Value::Null());
      case BinOp::kMul:
        return Value::Mul(a, b).value_or(Value::Null());
      case BinOp::kDiv:
        return Value::Div(a, b).value_or(Value::Null());
      case BinOp::kMod:
        return Value::Mod(a, b).value_or(Value::Null());
      case BinOp::kEq:
        return Value(int64_t{a == b});
      case BinOp::kNe:
        return Value(int64_t{a != b});
      case BinOp::kLt:
        return Value(int64_t{a < b});
      case BinOp::kLe:
        return Value(int64_t{a <= b});
      case BinOp::kGt:
        return Value(int64_t{a > b});
      case BinOp::kGe:
        return Value(int64_t{a >= b});
      case BinOp::kAnd:
      case BinOp::kOr:
        break;  // Handled above.
    }
    return Value::Null();
  }

  Result<ValueType> Check(const Schema& schema) const override {
    auto lt = lhs_->Check(schema);
    if (!lt.ok()) return lt;
    auto rt = rhs_->Check(schema);
    if (!rt.ok()) return rt;
    switch (op_) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        if (!IsNumericType(*lt) || !IsNumericType(*rt)) {
          return Status::TypeError(std::string("operator ") + BinOpName(op_) +
                                   " requires numeric operands in " +
                                   ToString());
        }
        return (*lt == ValueType::kDouble || *rt == ValueType::kDouble)
                   ? ValueType::kDouble
                   : ValueType::kInt;
      case BinOp::kMod:
        if (*lt != ValueType::kInt || *rt != ValueType::kInt) {
          return Status::TypeError("% requires integer operands in " +
                                   ToString());
        }
        return ValueType::kInt;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        if (IsNumericType(*lt) != IsNumericType(*rt)) {
          return Status::TypeError("cannot compare " +
                                   std::string(ValueTypeName(*lt)) + " with " +
                                   ValueTypeName(*rt) + " in " + ToString());
        }
        return ValueType::kInt;
      case BinOp::kAnd:
      case BinOp::kOr:
        return ValueType::kInt;
    }
    return Status::Internal("unhandled binary operator");
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

  ExprKind kind() const override { return ExprKind::kBinary; }
  BinOp bin_op() const override { return op_; }
  const Expr* child(int i) const override {
    return i == 0 ? lhs_.get() : (i == 1 ? rhs_.get() : nullptr);
  }

 private:
  BinOp op_;
  ExprRef lhs_, rhs_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprRef e) : e_(std::move(e)) {}

  Value Eval(const Tuple& t) const override {
    return Value(int64_t{Truthy(e_->Eval(t)) ? 0 : 1});
  }

  Result<ValueType> Check(const Schema& schema) const override {
    auto et = e_->Check(schema);
    if (!et.ok()) return et;
    return ValueType::kInt;
  }

  std::string ToString() const override { return "not " + e_->ToString(); }

  ExprKind kind() const override { return ExprKind::kNot; }
  const Expr* child(int i) const override {
    return i == 0 ? e_.get() : nullptr;
  }

 private:
  ExprRef e_;
};

class ContainsExpr : public Expr {
 public:
  ContainsExpr(ExprRef haystack, ExprRef needle)
      : haystack_(std::move(haystack)), needle_(std::move(needle)) {}

  Value Eval(const Tuple& t) const override {
    Value h = haystack_->Eval(t);
    Value n = needle_->Eval(t);
    if (h.type() != ValueType::kString || n.type() != ValueType::kString) {
      return Value(int64_t{0});
    }
    return Value(int64_t{Contains(h.AsString(), n.AsString()) ? 1 : 0});
  }

  Result<ValueType> Check(const Schema& schema) const override {
    auto ht = haystack_->Check(schema);
    if (!ht.ok()) return ht;
    auto nt = needle_->Check(schema);
    if (!nt.ok()) return nt;
    if (*ht != ValueType::kString || *nt != ValueType::kString) {
      return Status::TypeError("contains() requires string arguments");
    }
    return ValueType::kInt;
  }

  std::string ToString() const override {
    return "contains(" + haystack_->ToString() + ", " + needle_->ToString() +
           ")";
  }

  ExprKind kind() const override { return ExprKind::kContains; }
  const Expr* child(int i) const override {
    return i == 0 ? haystack_.get() : (i == 1 ? needle_.get() : nullptr);
  }

 private:
  ExprRef haystack_, needle_;
};

}  // namespace

ExprRef Col(int index) { return std::make_shared<ColumnExpr>(index); }

ExprRef Lit(Value v) { return std::make_shared<ConstExpr>(std::move(v)); }

ExprRef Bin(BinOp op, ExprRef lhs, ExprRef rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprRef Not(ExprRef e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprRef ContainsFn(ExprRef haystack, ExprRef needle) {
  return std::make_shared<ContainsExpr>(std::move(haystack),
                                        std::move(needle));
}

}  // namespace sqp
