#ifndef SQP_EXEC_PLAN_H_
#define SQP_EXEC_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "obs/registry.h"

namespace sqp {

/// Owns a DAG of operators. Sources push into entry operators; the plan
/// is the unit the optimizer rewrites and the scheduler executes.
class Plan {
 public:
  Plan() = default;

  /// Takes ownership; returns a raw handle valid for the plan's lifetime.
  template <typename Op>
  Op* Add(std::unique_ptr<Op> op) {
    Op* raw = op.get();
    ops_.push_back(std::move(op));
    return raw;
  }

  /// Constructs an operator in place.
  template <typename Op, typename... Args>
  Op* Make(Args&&... args) {
    return Add(std::make_unique<Op>(std::forward<Args>(args)...));
  }

  /// Connects `from`'s output to `to`'s input `port`.
  static void Connect(Operator* from, Operator* to, int port = 0) {
    from->SetOutput(to, port);
  }

  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return ops_;
  }

  /// Instruments every operator in the plan: each gets an OpMetrics
  /// slot in `registry` labeled (query_label, op name, plan index) plus
  /// the registry's tracer, so a whole plan reports to the engine-wide
  /// registry with one call and zero per-operator code.
  void BindMetrics(obs::MetricsRegistry& registry,
                   const std::string& query_label);

  /// Sum of StateBytes over all operators.
  size_t TotalStateBytes() const;

  /// Per-operator stats dump ("name: in=.. out=.. sel=..").
  std::string StatsString() const;

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
};

/// Drives `n` tuples from `next` into `entry` (port 0), then flushes.
void RunStream(Operator* entry, const std::function<TupleRef()>& next,
               uint64_t n, bool flush = true);

/// Drives elements (tuples or punctuations).
void RunElements(Operator* entry,
                 const std::function<Element()>& next, uint64_t n,
                 bool flush = true);

}  // namespace sqp

#endif  // SQP_EXEC_PLAN_H_
