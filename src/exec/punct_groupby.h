#ifndef SQP_EXEC_PUNCT_GROUPBY_H_
#define SQP_EXEC_PUNCT_GROUPBY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/partial_agg.h"
#include "dur/checkpointable.h"
#include "exec/operator.h"
#include "exec/sharding.h"

namespace sqp {

/// Grouped aggregation whose groups close on punctuations [TMSF03]
/// (slide 28): the auction pattern. Tuples fold into per-key
/// accumulators; a CloseKey punctuation emits and retires that key's
/// row; a watermark closes every group whose last activity is at or
/// below it; Flush closes the rest.
///
/// Output row: [ts = close time, key, agg...]. Unlike the tumbling
/// GroupByAggregateOp, window extent here is *data-dependent*: the
/// application, not the clock, decides when a group is complete.
class PunctuationGroupByOp : public Operator,
                             public ShardableOperator,
                             public CheckpointableOperator {
 public:
  /// `key_col` both partitions tuples and matches CloseKey punctuations.
  PunctuationGroupByOp(int key_col, std::vector<AggSpec> aggs,
                       std::string name = "punct-group-by");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Columnar ingest: keys and aggregate inputs are read straight from
  /// the typed arrays (no per-row Tuple materialization); group rows and
  /// punctuations still emit through the row path, so this operator is a
  /// natural row/column boundary.
  bool SupportsColumns(int port = 0) const override {
    (void)port;
    return true;
  }

  size_t open_groups() const { return groups_.size(); }

  /// Single-column key: CloseKey punctuations hash-route (via
  /// OneValueKeyHash) to the same shard as the group's tuples, so
  /// data-dependent close-out works unchanged under disjoint sharding.
  std::unique_ptr<Operator> CloneReplica() const override {
    return std::make_unique<PunctuationGroupByOp>(key_col_, agg_specs_,
                                                  name());
  }
  std::vector<std::vector<int>> ShardKeyColumns() const override {
    return {{key_col_}};
  }
  bool CanShard(std::string* /*why*/) const override { return true; }

  /// Checkpointing: every open group (accumulators + last activity ts)
  /// round-trips exactly, unless an aggregate is sketch-backed.
  bool CanCheckpointState(std::string* why) const override;
  void SaveState(dur::BufWriter& w) const override;
  Status RestoreState(dur::BufReader& r) override;

 protected:
  void PushColumns(ColumnBatch& batch, int port) override;

 private:
  struct GroupState {
    std::vector<std::unique_ptr<Accumulator>> accs;
    int64_t last_ts = INT64_MIN;
  };

  void EmitGroup(int64_t close_ts, const Value& key, GroupState& state);
  /// Punctuation body shared by Push and PushColumns (close-outs + the
  /// pass-through emission).
  void HandlePunct(const Punctuation& p);
  /// Folds one physical row of a columnar batch into its group.
  void FoldRow(const ColumnBatch& batch, uint32_t row);

  int key_col_;
  std::vector<AggSpec> agg_specs_;
  std::vector<AggregateFunction> fns_;
  std::unordered_map<Value, GroupState, ValueHash> groups_;
};

}  // namespace sqp

#endif  // SQP_EXEC_PUNCT_GROUPBY_H_
