#include "exec/select.h"

namespace sqp {

SelectOp::SelectOp(ExprRef predicate, std::string name)
    : Operator(std::move(name)), pred_(std::move(predicate)) {}

void SelectOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  if (Truthy(pred_->Eval(*e.tuple()))) Emit(e);
}

void SelectOp::PushBatch(ElementBatch& batch, int /*port*/) {
  AssertSingleCaller();
  // Per-element work is only the predicate: passing elements are moved
  // straight into the coalesced output batch (no refcount traffic), and
  // in/out counters are settled once per batch instead of per element.
  uint64_t tuples = 0;
  uint64_t puncts = 0;
  for (Element& e : batch) {
    if (e.is_punctuation()) {
      ++puncts;
      Emit(std::move(e));
      continue;
    }
    ++tuples;
    if (Truthy(pred_->Eval(*e.tuple()))) Emit(std::move(e));
  }
  stats_.tuples_in += tuples;
  stats_.puncts_in += puncts;
  if (metrics() != nullptr) metrics()->CountInBulk(tuples, puncts);
}

}  // namespace sqp
