#include "exec/select.h"

namespace sqp {

SelectOp::SelectOp(ExprRef predicate, std::string name)
    : Operator(std::move(name)), pred_(std::move(predicate)) {
  vpred_ = vec::CompiledPredicate::Compile(*pred_);
}

void SelectOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  if (Truthy(pred_->Eval(*e.tuple()))) Emit(e);
}

void SelectOp::PushBatch(ElementBatch& batch, int /*port*/) {
  AssertSingleCaller();
  // Per-element work is only the predicate: passing elements are moved
  // straight into the coalesced output batch (no refcount traffic), and
  // in/out counters are settled once per batch instead of per element.
  uint64_t tuples = 0;
  uint64_t puncts = 0;
  for (Element& e : batch) {
    if (e.is_punctuation()) {
      ++puncts;
      Emit(std::move(e));
      continue;
    }
    ++tuples;
    if (Truthy(pred_->Eval(*e.tuple()))) Emit(std::move(e));
  }
  stats_.tuples_in += tuples;
  stats_.puncts_in += puncts;
  if (metrics() != nullptr) metrics()->CountInBulk(tuples, puncts);
}

void SelectOp::PushColumns(ColumnBatch& batch, int port) {
  CountInColumns(batch);
  if (vpred_ == nullptr || !vpred_->Filter(&batch)) {
    // Predicate didn't vectorize (or the batch doesn't fit the plan):
    // materialize once and take the row loop. Counters were already
    // settled in bulk, so bypass PushBatch's accounting via the
    // uncounted filter loop below.
    ElementBatch rows;
    batch.MaterializeRows(&rows);
    for (Element& e : rows) {
      if (e.is_punctuation() || Truthy(pred_->Eval(*e.tuple()))) {
        Emit(std::move(e));
      }
    }
    return;
  }
  EmitColumns(std::move(batch));
}

}  // namespace sqp
