#include "exec/select.h"

namespace sqp {

SelectOp::SelectOp(ExprRef predicate, std::string name)
    : Operator(std::move(name)), pred_(std::move(predicate)) {}

void SelectOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  if (Truthy(pred_->Eval(*e.tuple()))) Emit(e);
}

}  // namespace sqp
