#ifndef SQP_EXEC_MJOIN_H_
#define SQP_EXEC_MJOIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "window/time_window.h"

namespace sqp {

/// N-way sliding-window star equijoin (MJoin; [GO03, VNB03] — the
/// "sliding window multi-joins" work the tutorial cites). All streams
/// join on one attribute each (all equal). A new tuple from stream i
/// probes every other stream's window and emits the cross-product of
/// matches — no intermediate materialized join trees.
///
/// The probe *order* does not change results, but it changes work: probing
/// the most selective (fewest-matches) stream first prunes earliest.
/// `adaptive_order == true` reorders probes by current match counts per
/// probe (the [VNB03] heuristic); otherwise probes go in stream order.
class MultiWindowJoinOp : public Operator {
 public:
  struct StreamSpec {
    /// Join column within this stream's tuples.
    int key_col = 0;
    /// Sliding time window length.
    int64_t window = 100;
  };

  struct Options {
    std::vector<StreamSpec> streams;  // One per input port.
    bool adaptive_order = true;
  };

  explicit MultiWindowJoinOp(Options options, std::string name = "mjoin");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Partial-match tuples visited during probing (the cost the probe
  /// order optimizes).
  uint64_t partial_results() const { return partials_; }
  uint64_t results() const { return results_; }

 private:
  struct Side {
    StreamSpec spec;
    TimeWindowBuffer buf;
    std::unordered_map<Value, std::vector<TupleRef>, ValueHash> index;

    explicit Side(const StreamSpec& s) : spec(s), buf(s.window) {}
  };

  void ExpireAll(int64_t now);
  void RemoveFromIndex(Side& side, const std::vector<TupleRef>& expired);
  void EmitCombined(const std::vector<const Tuple*>& parts, int64_t ts);

  Options options_;
  std::vector<Side> sides_;
  uint64_t partials_ = 0;
  uint64_t results_ = 0;
  int flushes_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_MJOIN_H_
