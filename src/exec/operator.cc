#include "exec/operator.h"

#include "obs/trace.h"

namespace sqp {

void Operator::Flush() {
  if (out_ != nullptr) out_->Flush();
}

void Operator::Emit(const Element& e) {
  AssertSingleCaller();
  if (e.is_punctuation()) {
    ++stats_.puncts_out;
    // Watermark tracking (event-time lag in EXPLAIN ANALYZE): keyed
    // punctuations close one group, only non-keyed ones advance time.
    if (profile_ != nullptr && !e.punctuation().has_key) {
      profile_->OnWatermarkForward(e.punctuation().ts);
    }
  } else {
    ++stats_.tuples_out;
  }
  if (metrics_ != nullptr) metrics_->CountOut(e.is_punctuation());
  if (coalescing_) {
    // Inside a ProcessBatch call: buffer the emission so downstream
    // receives one batch per input batch instead of a singleton per
    // output element. The cap bounds buffer growth for expanding
    // operators (joins); flushing a prefix early preserves order.
    emit_buf_.push_back(e);
    if (emit_buf_.size() >= kEmitBufferCap) FlushEmitBuffer();
    return;
  }
  if (out_ != nullptr) out_->Process(e, out_port_);
}

void Operator::Emit(Element&& e) {
  AssertSingleCaller();
  if (e.is_punctuation()) {
    ++stats_.puncts_out;
    if (profile_ != nullptr && !e.punctuation().has_key) {
      profile_->OnWatermarkForward(e.punctuation().ts);
    }
  } else {
    ++stats_.tuples_out;
  }
  if (metrics_ != nullptr) metrics_->CountOut(e.is_punctuation());
  if (coalescing_) {
    emit_buf_.push_back(std::move(e));
    if (emit_buf_.size() >= kEmitBufferCap) FlushEmitBuffer();
    return;
  }
  if (out_ != nullptr) out_->Process(e, out_port_);
}

void Operator::ProcessBatch(ElementBatch& batch, int port) {
  if (batch.empty()) return;
  if (profile_ != nullptr) profile_->ObserveBatch(batch.size());
  if (metrics_ == nullptr && tracer_ == nullptr) {
    coalescing_ = out_ != nullptr;
    PushBatch(batch, port);
    coalescing_ = false;
    FlushEmitBuffer();
    return;
  }
  ProcessBatchInstrumented(batch, port);
}

void Operator::ProcessBatchInstrumented(ElementBatch& batch, int port) {
  if (tracer_ != nullptr) {
    // Lineage tracing records per-element hop chains; take the exact
    // per-element path so sampled traces look identical under batching.
    for (const Element& e : batch) Process(e, port);
    return;
  }
  obs::ThreadObsContext& ctx = obs::ObsContext();
  const bool entry = ctx.depth == 0;
  if (entry) {
    // Unlike the per-element path, every batch is timed: the two clock
    // reads amortize over the whole batch, so no 1-in-N sampling (and
    // busy_ns is recorded unscaled).
    ctx.busy_sampled = false;
    ctx.timed = true;
  }
  ++ctx.depth;
  const uint64_t saved_child = ctx.child_ns;
  ctx.child_ns = 0;
  const uint64_t t0 = obs::NowNs();
  coalescing_ = out_ != nullptr;
  PushBatch(batch, port);
  coalescing_ = false;
  FlushEmitBuffer();
  const uint64_t total = obs::NowNs() - t0;
  const uint64_t self = total > ctx.child_ns ? total - ctx.child_ns : 0;
  metrics_->AddBusyNs(self);
  if (profile_ != nullptr) {
    profile_->MaybeSampleState([this] { return StateBytes(); });
  }
  ctx.child_ns = saved_child + total;
  --ctx.depth;
  if (entry) {
    ctx.child_ns = 0;
    ctx.timed = false;
  }
}

void Operator::ProcessColumns(ColumnBatch& batch, int port) {
  if (batch.empty()) return;
  if (profile_ != nullptr) {
    profile_->ObserveBatch(batch.ActiveRows() + batch.puncts.size());
  }
  if (metrics_ == nullptr && tracer_ == nullptr) {
    coalescing_ = out_ != nullptr;
    PushColumns(batch, port);
    coalescing_ = false;
    FlushEmitBuffer();
    return;
  }
  ProcessColumnsInstrumented(batch, port);
}

void Operator::ProcessColumnsInstrumented(ColumnBatch& batch, int port) {
  if (tracer_ != nullptr) {
    // Lineage traces are per-element; materialize so sampled hop chains
    // look identical to the row path.
    ElementBatch rows;
    batch.MaterializeRows(&rows);
    for (const Element& e : rows) Process(e, port);
    return;
  }
  obs::ThreadObsContext& ctx = obs::ObsContext();
  const bool entry = ctx.depth == 0;
  if (entry) {
    ctx.busy_sampled = false;
    ctx.timed = true;
  }
  ++ctx.depth;
  const uint64_t saved_child = ctx.child_ns;
  ctx.child_ns = 0;
  const uint64_t t0 = obs::NowNs();
  coalescing_ = out_ != nullptr;
  PushColumns(batch, port);
  coalescing_ = false;
  FlushEmitBuffer();
  const uint64_t total = obs::NowNs() - t0;
  const uint64_t self = total > ctx.child_ns ? total - ctx.child_ns : 0;
  metrics_->AddBusyNs(self);
  if (profile_ != nullptr) {
    profile_->MaybeSampleState([this] { return StateBytes(); });
  }
  ctx.child_ns = saved_child + total;
  --ctx.depth;
  if (entry) {
    ctx.child_ns = 0;
    ctx.timed = false;
  }
}

void Operator::EmitColumns(ColumnBatch&& batch) {
  AssertSingleCaller();
  const uint64_t tuples = batch.ActiveRows();
  const uint64_t puncts = batch.puncts.size();
  stats_.tuples_out += tuples;
  stats_.puncts_out += puncts;
  if (metrics_ != nullptr) metrics_->CountOutBulk(tuples, puncts);
  if (profile_ != nullptr) {
    // The newest watermark in the batch is the one that matters for lag
    // tracking (slots are in stream order).
    for (auto it = batch.puncts.rbegin(); it != batch.puncts.rend(); ++it) {
      if (!it->punct.has_key) {
        profile_->OnWatermarkForward(it->punct.ts);
        break;
      }
    }
  }
  // Row emissions buffered before this batch must go first so output
  // order matches the per-element path.
  FlushEmitBuffer();
  if (out_ != nullptr) out_->ProcessColumns(batch, out_port_);
}

void Operator::FlushEmitBuffer() {
  if (emit_buf_.empty()) return;
  // Non-empty only when coalescing was on, which requires out_ != nullptr.
  out_->ProcessBatch(emit_buf_, out_port_);
  emit_buf_.clear();
}

void Operator::ProcessInstrumented(const Element& e, int port) {
  obs::ThreadObsContext& ctx = obs::ObsContext();
  const bool entry = ctx.depth == 0;
  if (entry) {
    if (tracer_ != nullptr && e.is_tuple()) {
      ctx.trace_id = tracer_->SampleArrival();
      ctx.hop = 0;
    }
    // Clock reads dominate instrumentation cost on cheap operators, so
    // only every kTimeSampleEvery-th chain is actually timed; its
    // self-times are scaled back up when recorded. Traced elements are
    // timed too (hop timestamps need a clock) but don't feed busy_ns.
    ctx.busy_sampled = (ctx.time_tick++ & (obs::kTimeSampleEvery - 1)) == 0;
    ctx.timed = ctx.busy_sampled || ctx.trace_id != 0;
  }
  if (!ctx.timed) {
    ++ctx.depth;
    Push(e, port);  // Counters still tick via CountIn/Emit.
    --ctx.depth;
    return;
  }
  ++ctx.depth;
  // Self time = own inclusive time minus the inclusive time of nested
  // Process calls (downstream operators reached via Emit), collected in
  // the thread-local child accumulator — the classic profiler trick, and
  // it works across a synchronous push chain without any per-operator
  // code.
  const uint64_t saved_child = ctx.child_ns;
  ctx.child_ns = 0;
  const uint64_t t0 = obs::NowNs();
  if (tracer_ != nullptr && ctx.trace_id != 0) {
    tracer_->Record(ctx.trace_id, ctx.hop++, name(), t0);
  }
  Push(e, port);
  const uint64_t total = obs::NowNs() - t0;
  if (metrics_ != nullptr && ctx.busy_sampled) {
    const uint64_t self = total > ctx.child_ns ? total - ctx.child_ns : 0;
    metrics_->AddBusyNs(self * obs::kTimeSampleEvery);
    // StateBytes sampling rides the already-sampled timing path (1/16
    // chains, with its own geometric backoff on top), and only ever
    // runs on this operator's single driving thread.
    if (profile_ != nullptr) {
      profile_->MaybeSampleState([this] { return StateBytes(); });
    }
  }
  ctx.child_ns = saved_child + total;
  --ctx.depth;
  if (entry) {
    if (ctx.trace_id != 0) {
      if (tracer_ != nullptr) tracer_->ObservePathNs(total);
      ctx.trace_id = 0;
    }
    ctx.child_ns = 0;
    ctx.timed = false;
  }
}

void CollectorSink::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    puncts_.push_back(e.punctuation());
  } else {
    tuples_.push_back(e.tuple());
  }
}

void CollectorSink::PushBatch(ElementBatch& batch, int /*port*/) {
  size_t tuples = 0;
  for (const Element& e : batch) {
    if (!e.is_punctuation()) ++tuples;
  }
  tuples_.reserve(tuples_.size() + tuples);
  puncts_.reserve(puncts_.size() + (batch.size() - tuples));
  for (const Element& e : batch) {
    CountIn(e);
    if (e.is_punctuation()) {
      puncts_.push_back(e.punctuation());
    } else {
      tuples_.push_back(e.tuple());
    }
  }
}

void CollectorSink::PushColumns(ColumnBatch& batch, int /*port*/) {
  CountInColumns(batch);
  tuples_.reserve(tuples_.size() + batch.ActiveRows());
  puncts_.reserve(puncts_.size() + batch.puncts.size());
  // Interleave live rows and punctuation slots in stream order, exactly
  // like MaterializeRows, but appending straight into the result vectors.
  const size_t n = batch.ActiveRows();
  const size_t width = batch.width();
  size_t pi = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = batch.Active(k);
    while (pi < batch.puncts.size() && batch.puncts[pi].pos <= r) {
      puncts_.push_back(batch.puncts[pi].punct);
      ++pi;
    }
    std::vector<Value> vals;
    vals.reserve(width);
    for (const ColumnBatch::Column& c : batch.cols) {
      vals.push_back(c.ValueAt(r));
    }
    tuples_.push_back(MakeTuple(batch.ts[r], std::move(vals)));
  }
  while (pi < batch.puncts.size()) {
    puncts_.push_back(batch.puncts[pi].punct);
    ++pi;
  }
}

size_t CollectorSink::StateBytes() const {
  size_t bytes = tuples_.capacity() * sizeof(TupleRef) +
                 puncts_.capacity() * sizeof(Punctuation);
  for (const TupleRef& t : tuples_) bytes += t->MemoryBytes();
  return bytes;
}

void CollectorSink::SaveState(dur::BufWriter& w) const {
  w.U32(static_cast<uint32_t>(tuples_.size()));
  for (const TupleRef& t : tuples_) w.Tup(*t);
  w.U32(static_cast<uint32_t>(puncts_.size()));
  for (const Punctuation& p : puncts_) w.Punct(p);
}

Status CollectorSink::RestoreState(dur::BufReader& r) {
  tuples_.clear();
  puncts_.clear();
  uint32_t ntuples = 0;
  SQP_RETURN_NOT_OK(r.U32(&ntuples));
  tuples_.reserve(ntuples);
  for (uint32_t i = 0; i < ntuples; ++i) {
    TupleRef t;
    SQP_RETURN_NOT_OK(r.Tup(&t));
    tuples_.push_back(std::move(t));
  }
  uint32_t npuncts = 0;
  SQP_RETURN_NOT_OK(r.U32(&npuncts));
  puncts_.reserve(npuncts);
  for (uint32_t i = 0; i < npuncts; ++i) {
    Punctuation p;
    SQP_RETURN_NOT_OK(r.Punct(&p));
    puncts_.push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace sqp
