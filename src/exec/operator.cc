#include "exec/operator.h"

namespace sqp {

void Operator::Flush() {
  if (out_ != nullptr) out_->Flush();
}

void Operator::Emit(const Element& e) {
  AssertSingleCaller();
  if (e.is_punctuation()) {
    ++stats_.puncts_out;
  } else {
    ++stats_.tuples_out;
  }
  if (out_ != nullptr) out_->Push(e, out_port_);
}

void CollectorSink::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    puncts_.push_back(e.punctuation());
  } else {
    tuples_.push_back(e.tuple());
  }
}

}  // namespace sqp
