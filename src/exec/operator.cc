#include "exec/operator.h"

#include "obs/trace.h"

namespace sqp {

void Operator::Flush() {
  if (out_ != nullptr) out_->Flush();
}

void Operator::Emit(const Element& e) {
  AssertSingleCaller();
  if (e.is_punctuation()) {
    ++stats_.puncts_out;
  } else {
    ++stats_.tuples_out;
  }
  if (metrics_ != nullptr) metrics_->CountOut(e.is_punctuation());
  if (out_ != nullptr) out_->Process(e, out_port_);
}

void Operator::ProcessInstrumented(const Element& e, int port) {
  obs::ThreadObsContext& ctx = obs::ObsContext();
  const bool entry = ctx.depth == 0;
  if (entry) {
    if (tracer_ != nullptr && e.is_tuple()) {
      ctx.trace_id = tracer_->SampleArrival();
      ctx.hop = 0;
    }
    // Clock reads dominate instrumentation cost on cheap operators, so
    // only every kTimeSampleEvery-th chain is actually timed; its
    // self-times are scaled back up when recorded. Traced elements are
    // timed too (hop timestamps need a clock) but don't feed busy_ns.
    ctx.busy_sampled = (ctx.time_tick++ & (obs::kTimeSampleEvery - 1)) == 0;
    ctx.timed = ctx.busy_sampled || ctx.trace_id != 0;
  }
  if (!ctx.timed) {
    ++ctx.depth;
    Push(e, port);  // Counters still tick via CountIn/Emit.
    --ctx.depth;
    return;
  }
  ++ctx.depth;
  // Self time = own inclusive time minus the inclusive time of nested
  // Process calls (downstream operators reached via Emit), collected in
  // the thread-local child accumulator — the classic profiler trick, and
  // it works across a synchronous push chain without any per-operator
  // code.
  const uint64_t saved_child = ctx.child_ns;
  ctx.child_ns = 0;
  const uint64_t t0 = obs::NowNs();
  if (tracer_ != nullptr && ctx.trace_id != 0) {
    tracer_->Record(ctx.trace_id, ctx.hop++, name(), t0);
  }
  Push(e, port);
  const uint64_t total = obs::NowNs() - t0;
  if (metrics_ != nullptr && ctx.busy_sampled) {
    const uint64_t self = total > ctx.child_ns ? total - ctx.child_ns : 0;
    metrics_->AddBusyNs(self * obs::kTimeSampleEvery);
  }
  ctx.child_ns = saved_child + total;
  --ctx.depth;
  if (entry) {
    if (ctx.trace_id != 0) {
      if (tracer_ != nullptr) tracer_->ObservePathNs(total);
      ctx.trace_id = 0;
    }
    ctx.child_ns = 0;
    ctx.timed = false;
  }
}

void CollectorSink::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    puncts_.push_back(e.punctuation());
  } else {
    tuples_.push_back(e.tuple());
  }
}

}  // namespace sqp
