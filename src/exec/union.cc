#include "exec/union.h"

#include <algorithm>

namespace sqp {

UnionOp::UnionOp(std::string name) : Operator(std::move(name)) {}

void UnionOp::Push(const Element& e, int port) {
  CountIn(e);
  int side = port == 0 ? 0 : 1;
  if (e.is_punctuation()) {
    const Punctuation& p = e.punctuation();
    if (p.has_key) {
      Emit(e);  // Key punctuations are stream-specific; forward as-is.
      return;
    }
    watermark_[side] = std::max(watermark_[side], p.ts);
    int64_t min_wm = std::min(watermark_[0], watermark_[1]);
    if (min_wm > emitted_watermark_) {
      emitted_watermark_ = min_wm;
      Emit(Element(Punctuation::Watermark(min_wm)));
    }
    return;
  }
  Emit(e);
}

void UnionOp::Flush() {
  if (++flushes_ < 2) return;
  Operator::Flush();
}

OrderedMergeOp::OrderedMergeOp(std::string name) : Operator(std::move(name)) {}

void OrderedMergeOp::Push(const Element& e, int port) {
  CountIn(e);
  int side = port == 0 ? 0 : 1;
  if (e.is_punctuation()) {
    // A watermark asserts no earlier tuples on that side.
    seen_ts_[side] = std::max(seen_ts_[side], e.punctuation().ts);
    Release();
    return;
  }
  seen_ts_[side] = std::max(seen_ts_[side], e.ts());
  buf_[side].push_back(e.tuple());
  Release();
}

void OrderedMergeOp::Release() {
  // Safe to release anything <= the slower side's frontier.
  int64_t frontier = std::min(seen_ts_[0], seen_ts_[1]);
  while (true) {
    int pick = -1;
    int64_t best = INT64_MAX;
    for (int s = 0; s < 2; ++s) {
      if (!buf_[s].empty() && buf_[s].front()->ts() <= frontier &&
          buf_[s].front()->ts() < best) {
        best = buf_[s].front()->ts();
        pick = s;
      }
    }
    if (pick < 0) break;
    Emit(Element(buf_[pick].front()));
    buf_[pick].pop_front();
  }
}

void OrderedMergeOp::Flush() {
  if (++flushes_ < 2) return;
  // Drain remaining buffers in timestamp order.
  while (!buf_[0].empty() || !buf_[1].empty()) {
    int pick;
    if (buf_[0].empty()) {
      pick = 1;
    } else if (buf_[1].empty()) {
      pick = 0;
    } else {
      pick = buf_[0].front()->ts() <= buf_[1].front()->ts() ? 0 : 1;
    }
    Emit(Element(buf_[pick].front()));
    buf_[pick].pop_front();
  }
  Operator::Flush();
}

size_t OrderedMergeOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& side : buf_) {
    for (const TupleRef& t : side) bytes += t->MemoryBytes();
  }
  return bytes;
}

}  // namespace sqp
