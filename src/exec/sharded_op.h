#ifndef SQP_EXEC_SHARDED_OP_H_
#define SQP_EXEC_SHARDED_OP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/exchange.h"
#include "exec/operator.h"
#include "obs/event_log.h"
#include "obs/snapshot.h"

namespace sqp {

/// Builds one state-empty replica of the sharded sub-plan. Called once
/// per shard at construction; the replica is driven exclusively by that
/// shard's worker thread.
using ShardReplicaFactory = std::function<std::unique_ptr<Operator>(int)>;

struct ShardedOpOptions {
  /// Replica count (worker threads). 1 still exercises the full
  /// exchange/merge path — the honest baseline for scaling numbers.
  int shards = 4;
  ShardRouting routing = ShardRouting::kDisjoint;
  /// Partition key columns per input port; the vector's size is the
  /// operator's input port count (1 unary, 2 joins). An empty column
  /// list on a partitioned port routes round-robin.
  std::vector<std::vector<int>> key_cols = {{}};
  /// Bound of each shard's input queue in elements (0 = unbounded).
  size_t queue_limit = 1024;
  ShardBackpressure backpressure = ShardBackpressure::kBlock;
  /// Bound of the merge (fan-in) queue in elements (0 = unbounded).
  /// Shard workers block on it; the merge worker never blocks on
  /// shards, so there is no cycle to deadlock.
  size_t merge_queue_limit = 4096;
  /// Producer wakes a shard worker only once this many elements are
  /// queued (punctuations and queue-full wake immediately); workers
  /// also poll on a ~1ms timeout so a sub-batch trickle is bounded.
  size_t wake_batch = 64;
  /// Input-side Flush calls expected before the drain starts; 0 = the
  /// input port count (binary operators receive one flush per side).
  int expected_flushes = 0;
  /// Columnar delivery inside each shard: the worker converts every
  /// claimed same-port run into a ColumnBatch (ColumnBatch::FromRows)
  /// and hands it to the replica as one ProcessColumns call, falling
  /// back to per-element Process when conversion fails or the replica
  /// does not support columns on that port. Routing and the merge stay
  /// row-based — the hash exchange reads per-row keys and the merge
  /// re-serializes per element, so those are natural materialization
  /// boundaries.
  bool columnar = false;
  /// Structured event sink for backpressure stalls (nullptr = silent).
  /// A kShardStall event is emitted, rate-limited to one per second per
  /// shard, whenever a producer blocks on a full shard queue under
  /// kBlock — the signal that routing skew or an expensive replica is
  /// throttling ingest.
  obs::EventLog* events = nullptr;
  /// Query label stamped on emitted events ("q0", ...).
  std::string event_label;
};

/// Per-shard counters, snapshot-safe while the workers run.
struct ShardStats {
  /// Elements delivered to this shard's queue (broadcasts count once
  /// per shard — replicated routing's ingest amplification shows here).
  uint64_t routed = 0;
  /// Elements the merge worker forwarded downstream from this shard.
  uint64_t merged = 0;
  /// Elements lost at this shard's bounded queue (kDropNewest).
  uint64_t dropped = 0;
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth = 0;
  /// Wall-clock seconds this shard's worker spent in its replica.
  double busy_time = 0.0;
  /// Replica-held state (windows, hash tables), sampled per batch.
  size_t state_bytes = 0;
};

/// Key-partitioned data-parallel execution of one stateful operator,
/// packaged as a drop-in Operator: N replicas of a keyed sub-plan run on
/// their own worker threads behind bounded queues, fed by a hash
/// exchange on the caller's thread and re-serialized by a
/// punctuation-correct merge on a dedicated fan-in thread.
///
///   caller ── route ──> shard queue i ── worker i ──> replica i
///                                                        │ emits
///   downstream <── merge worker <── merge queue <────────┘
///
/// Threading contract:
///  - Push/Flush stay single-caller (the usual Operator contract).
///  - Replica i is touched only by shard worker i; the downstream
///    operator is touched only by the merge worker — every operator
///    keeps exactly one driving thread, so debug single-caller asserts
///    and TSan stay clean.
///  - Stats accessors (shard_stats, SkewRatio, StateBytes,
///    CollectStats) are safe from any thread while running.
///
/// Flush protocol: the Nth input-side Flush (one per input port) closes
/// the shard queues; each worker drains its backlog, flushes its
/// replica (close-out emissions flow into the merge queue) and exits;
/// the merge worker forwards the tail, flushes downstream, and exits;
/// Flush returns after joining them all — results are safe to read.
///
/// Equivalence: with disjoint routing over the partition keys (or
/// replicated routing for joins), the merged output is the serial
/// operator's output up to inter-shard tuple reordering; watermarks
/// follow the min-across-shards rule so no element ever appears after a
/// watermark that should have sealed it. Count-based windows are NOT
/// shardable (a per-shard last-N is not the global last-N).
class ShardedOp : public Operator {
 public:
  ShardedOp(ShardedOpOptions options, ShardReplicaFactory factory,
            std::string name = "sharded");
  ~ShardedOp() override;

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  /// Binds the profile to the merge stage too: the merge is the fan-in
  /// that emits the min-across-shards watermark downstream, so sharing
  /// the slot makes the profile's watermark fields reflect post-merge
  /// event time (what the rest of the chain actually observes).
  void BindProfile(obs::OpProfile* profile) override {
    Operator::BindProfile(profile);
    merge_.BindProfile(profile);
  }

  int shards() const { return options_.shards; }
  ShardRouting routing() const { return options_.routing; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ShardStats shard_stats(int i) const;
  /// Max over shards of routed / mean routed (1.0 = perfectly even).
  double SkewRatio() const;
  /// Total elements lost at bounded shard queues.
  uint64_t dropped() const;
  /// Tuples (not punctuations) the merge forwarded downstream.
  uint64_t merged_tuples() const {
    return merged_tuples_.load(std::memory_order_relaxed);
  }

  /// Publishes per-shard counters (sqp_shard_*) under
  /// {base_labels..., op=name, shard=i} plus an op-level skew gauge —
  /// registered as a MetricsRegistry collector by whoever owns the op.
  void CollectStats(obs::SnapshotBuilder& builder,
                    const obs::LabelSet& base_labels) const;

 private:
  class MergeFeed;

  struct Item {
    Element e;
    int port;
  };
  /// One shard's queue + worker + replica + counters.
  struct ShardState {
    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Item> q;
    bool closed = false;
    uint64_t dropped = 0;
    uint64_t max_depth = 0;
    /// Last kShardStall emission (ns, guarded by mu) — rate limiter.
    uint64_t last_stall_ns = 0;
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> merged{0};
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<size_t> state_bytes{0};
    std::unique_ptr<Operator> replica;
    std::unique_ptr<MergeFeed> feed;  // Replica output -> merge queue.
    std::thread worker;
  };
  struct MergeItem {
    Element e;
    int shard;
    bool shard_done;
  };

  void EnsureStarted();
  bool EnqueueShard(int shard, Item item);
  void EnqueueMerge(std::vector<MergeItem>& items);
  void ShardLoop(int shard);
  void MergeLoop();
  void DrainAndJoin();
  void StopAndJoin();

  ShardedOpOptions options_;
  ShardRouter router_;
  int expected_flushes_;
  std::vector<std::unique_ptr<ShardState>> states_;
  ShardMergeOp merge_;

  std::mutex merge_mu_;
  std::condition_variable merge_not_empty_;
  std::condition_variable merge_not_full_;
  std::deque<MergeItem> merge_q_;
  std::thread merge_worker_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> merged_tuples_{0};
  bool started_ = false;
  int flushes_seen_ = 0;
};

}  // namespace sqp

#endif  // SQP_EXEC_SHARDED_OP_H_
