#include "exec/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sqp {
namespace obs {

namespace {

std::string FmtDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FmtBytes(uint64_t b) {
  char buf[64];
  if (b >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(b) / (1024.0 * 1024.0));
  } else if (b >= 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", b);
  }
  return buf;
}

}  // namespace

std::string QueryProfile::Pretty() const {
  std::string out = "EXPLAIN ANALYZE " + query;
  if (!text.empty()) out += ": " + text;
  out += "\n";
  const double run_s =
      snapshot_ns > submit_ns
          ? static_cast<double>(snapshot_ns - submit_ns) / 1e9
          : 0.0;
  out += "running " + FmtDouble(run_s, 1) + "s; source watermark ";
  if (source_wm_ts == OpProfile::kNoWatermark) {
    out += "none";
  } else {
    out += std::to_string(source_wm_ts) + " (" +
           std::to_string(source_wm_count) + " puncts)";
  }
  out += "\n";

  static const char* kHeaders[] = {"op",      "in",      "out",     "sel",
                                   "busy_ms", "deliver", "avg_rows", "qwait_ms",
                                   "state",   "peak",    "wm_lag",  "prop_ms"};
  constexpr size_t kCols = sizeof(kHeaders) / sizeof(kHeaders[0]);
  std::vector<std::array<std::string, kCols>> rows;
  for (const OpProfileRow& r : ops) {
    std::array<std::string, kCols> row;
    row[0] = std::string(static_cast<size_t>(r.depth) * 2, ' ') + r.op;
    row[1] = std::to_string(r.tuples_in);
    row[2] = std::to_string(r.tuples_out);
    row[3] = FmtDouble(r.selectivity, 3);
    row[4] = FmtDouble(static_cast<double>(r.busy_ns) / 1e6, 1);
    row[5] = std::to_string(r.deliveries);
    row[6] = FmtDouble(r.mean_batch, 1);
    row[7] = FmtDouble(static_cast<double>(r.prof.queue_wait_ns) / 1e6, 1);
    row[8] = FmtBytes(r.prof.state_bytes);
    row[9] = FmtBytes(r.prof.peak_state_bytes);
    row[10] = r.has_lag ? std::to_string(r.lag)
                        : (r.has_watermark ? "0" : "-");
    row[11] = r.propagation_ms >= 0.0 ? FmtDouble(r.propagation_ms, 2) : "-";
    rows.push_back(std::move(row));
  }

  std::array<size_t, kCols> widths;
  for (size_t c = 0; c < kCols; ++c) {
    widths[c] = std::string(kHeaders[c]).size();
    for (const auto& row : rows) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::array<std::string, kCols>& row) {
    for (size_t c = 0; c < kCols; ++c) {
      if (c == 0) {
        // Left-justify the tree column, right-justify the numbers.
        out += row[c] + std::string(widths[c] - row[c].size(), ' ');
      } else {
        out += "  " + std::string(widths[c] - row[c].size(), ' ') + row[c];
      }
    }
    out += "\n";
  };
  std::array<std::string, kCols> hdr;
  for (size_t c = 0; c < kCols; ++c) hdr[c] = kHeaders[c];
  emit(hdr);
  for (const auto& row : rows) emit(row);
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"text\":\"" + JsonEscape(text) + "\"";
  out += ",\"running_seconds\":" +
         FmtDouble(snapshot_ns > submit_ns
                       ? static_cast<double>(snapshot_ns - submit_ns) / 1e9
                       : 0.0,
                   3);
  out += ",\"source\":{";
  if (source_wm_ts != OpProfile::kNoWatermark) {
    out += "\"watermark_ts\":" + std::to_string(source_wm_ts) + ",";
  }
  out += "\"watermarks\":" + std::to_string(source_wm_count) + "}";
  out += ",\"ops\":[";
  bool first = true;
  for (const OpProfileRow& r : ops) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + JsonEscape(r.op) + "\"";
    out += ",\"index\":" + std::to_string(r.index);
    out += ",\"depth\":" + std::to_string(r.depth);
    out += ",\"tuples_in\":" + std::to_string(r.tuples_in);
    out += ",\"tuples_out\":" + std::to_string(r.tuples_out);
    out += ",\"puncts_in\":" + std::to_string(r.puncts_in);
    out += ",\"puncts_out\":" + std::to_string(r.puncts_out);
    out += ",\"selectivity\":" + FmtDouble(r.selectivity, 4);
    out += ",\"busy_ns\":" + std::to_string(r.busy_ns);
    out += ",\"deliveries\":" + std::to_string(r.deliveries);
    out += ",\"mean_batch_rows\":" + FmtDouble(r.mean_batch, 2);
    out += ",\"queue_wait_ns\":" + std::to_string(r.prof.queue_wait_ns);
    out += ",\"queue_depth_hw\":" + std::to_string(r.queue_depth_hw);
    out += ",\"state_bytes\":" + std::to_string(r.prof.state_bytes);
    out += ",\"peak_state_bytes\":" + std::to_string(r.prof.peak_state_bytes);
    if (r.has_watermark) {
      out += ",\"watermark_ts\":" + std::to_string(r.prof.wm_ts);
      out += ",\"watermarks\":" + std::to_string(r.prof.wm_count);
    }
    if (r.has_lag) out += ",\"watermark_lag\":" + std::to_string(r.lag);
    if (r.propagation_ms >= 0.0) {
      out += ",\"propagation_ms\":" + FmtDouble(r.propagation_ms, 3);
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

QueryProfiler::SourceWatermark* QueryProfiler::Register(
    const std::string& label, std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->text = std::move(text);
  entry->submit_ns = NowNs();
  SourceWatermark* tap = &entry->source;
  entries_[label] = std::move(entry);
  return tap;
}

void QueryProfiler::BindPlan(const std::string& label, Plan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(label);
  if (it == entries_.end()) return;
  Entry& e = *it->second;

  const auto& ops = plan.operators();
  std::map<const Operator*, size_t> pos;
  for (size_t i = 0; i < ops.size(); ++i) pos[ops[i].get()] = i;
  // An operator is part of the live DAG when it has an output edge or
  // something feeds it; a rewrite leftover (EnableSharding disconnects
  // the replaced original but keeps it plan-owned as the replica
  // template) has neither and is excluded.
  std::map<const Operator*, int> fed;
  for (const auto& op : ops) {
    if (op->output() != nullptr && pos.count(op->output()) != 0) {
      ++fed[op->output()];
    }
  }
  auto connected = [&](const Operator* op) {
    return op->output() != nullptr || fed[op] > 0;
  };

  // Bind slots: reuse by (name, plan position) so a re-walk after a
  // structural rewrite keeps accumulated history for surviving ops.
  std::vector<Operator*> live;
  for (size_t i = 0; i < ops.size(); ++i) {
    Operator* op = ops[i].get();
    if (!connected(op)) continue;
    live.push_back(op);
    const std::pair<std::string, int> key(op->name(), static_cast<int>(i));
    OpProfile*& slot = e.slot_by_key[key];
    if (slot == nullptr) {
      e.slots.emplace_back();
      slot = &e.slots.back();
    }
    op->BindProfile(slot);
  }

  // Tree: root = live op whose output leaves the plan (the engine tee);
  // children of p = live ops whose output is p, in plan order.
  e.tree.clear();
  std::map<const Operator*, std::vector<Operator*>> children;
  std::vector<Operator*> roots;
  for (Operator* op : live) {
    Operator* out = op->output();
    if (out != nullptr && pos.count(out) != 0 && connected(out)) {
      children[out].push_back(op);
    } else {
      roots.push_back(op);
    }
  }
  // Iterative pre-order DFS, keeping plan order among siblings.
  std::vector<std::pair<Operator*, int>> stack;
  for (auto rit = roots.rbegin(); rit != roots.rend(); ++rit) {
    stack.emplace_back(*rit, 0);
  }
  while (!stack.empty()) {
    auto [op, depth] = stack.back();
    stack.pop_back();
    Node n;
    n.name = op->name();
    n.index = static_cast<int>(pos[op]);
    n.depth = depth;
    n.profile = op->profile();
    n.metrics = op->metrics();
    e.tree.push_back(std::move(n));
    auto cit = children.find(op);
    if (cit != children.end()) {
      for (auto rit = cit->second.rbegin(); rit != cit->second.rend(); ++rit) {
        stack.emplace_back(*rit, depth + 1);
      }
    }
  }
}

void QueryProfiler::Unregister(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(label);
}

bool QueryProfiler::Snapshot(const std::string& label,
                             QueryProfile* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(label);
  if (it == entries_.end()) return false;
  const Entry& e = *it->second;

  out->query = label;
  out->text = e.text;
  out->submit_ns = e.submit_ns;
  out->snapshot_ns = NowNs();
  out->source_wm_ts = e.source.last_ts();
  out->source_wm_count = e.source.count();
  out->ops.clear();
  out->ops.reserve(e.tree.size());
  for (const Node& n : e.tree) {
    OpProfileRow r;
    r.op = n.name;
    r.index = n.index;
    r.depth = n.depth;
    if (n.metrics != nullptr) {
      OpSnapshot m = n.metrics->Snapshot("", "", 0);
      r.tuples_in = m.tuples_in;
      r.tuples_out = m.tuples_out;
      r.puncts_in = m.puncts_in;
      r.puncts_out = m.puncts_out;
      r.exec_batches = m.batches;
      r.busy_ns = m.busy_ns;
      r.queue_depth_hw = m.queue_depth_hw;
      r.selectivity = m.Selectivity();
    }
    if (n.profile != nullptr) r.prof = n.profile->Snapshot();
    r.deliveries = r.prof.singles + r.prof.batch_rows.count;
    const double total_rows = static_cast<double>(r.prof.singles) +
                              static_cast<double>(r.prof.batch_rows.sum);
    r.mean_batch = r.deliveries == 0
                       ? 0.0
                       : total_rows / static_cast<double>(r.deliveries);
    r.has_watermark = r.prof.wm_ts != OpProfile::kNoWatermark;
    if (r.has_watermark && out->source_wm_ts != OpProfile::kNoWatermark) {
      r.has_lag = true;
      r.lag = out->source_wm_ts - r.prof.wm_ts;
    }
    if (r.has_watermark) {
      uint64_t ingest_ns = 0;
      if (e.source.LookupIngestNs(r.prof.wm_ts, &ingest_ns) &&
          r.prof.wm_ns >= ingest_ns) {
        r.propagation_ms =
            static_cast<double>(r.prof.wm_ns - ingest_ns) / 1e6;
      }
    }
    out->ops.push_back(std::move(r));
  }
  return true;
}

std::vector<std::string> QueryProfiler::Labels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [label, entry] : entries_) out.push_back(label);
  return out;
}

void QueryProfiler::Publish(SnapshotBuilder& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [label, entry] : entries_) {
    const int64_t src = entry->source.last_ts();
    if (src == OpProfile::kNoWatermark) continue;
    LabelSet ls{{"query", label}};
    b.AddGauge("sqp_query_source_watermark", ls, static_cast<double>(src));
    // Lag of the query's output: the root (sink-most) operator's last
    // forwarded watermark vs the source — how far behind event time the
    // query's results run.
    if (!entry->tree.empty() && entry->tree.front().profile != nullptr) {
      const int64_t root_wm =
          entry->tree.front().profile->wm_ts.load(std::memory_order_relaxed);
      if (root_wm != OpProfile::kNoWatermark) {
        b.AddGauge("sqp_query_watermark_lag", ls,
                   static_cast<double>(src - root_wm));
      }
    }
  }
}

}  // namespace obs
}  // namespace sqp
