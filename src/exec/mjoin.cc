#include "exec/mjoin.h"

#include <algorithm>
#include <cassert>

namespace sqp {

MultiWindowJoinOp::MultiWindowJoinOp(Options options, std::string name)
    : Operator(std::move(name)), options_(std::move(options)) {
  assert(options_.streams.size() >= 2);
  sides_.reserve(options_.streams.size());
  for (const StreamSpec& s : options_.streams) sides_.emplace_back(s);
}

void MultiWindowJoinOp::RemoveFromIndex(
    Side& side, const std::vector<TupleRef>& expired) {
  for (const TupleRef& t : expired) {
    const Value& key = t->at(static_cast<size_t>(side.spec.key_col));
    auto it = side.index.find(key);
    if (it == side.index.end()) continue;
    auto& vec = it->second;
    for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
      if (vit->get() == t.get()) {
        vec.erase(vit);
        break;
      }
    }
    if (vec.empty()) side.index.erase(it);
  }
}

void MultiWindowJoinOp::ExpireAll(int64_t now) {
  for (Side& s : sides_) {
    std::vector<TupleRef> expired;
    s.buf.AdvanceTo(now, &expired);
    RemoveFromIndex(s, expired);
  }
}

void MultiWindowJoinOp::EmitCombined(const std::vector<const Tuple*>& parts,
                                     int64_t ts) {
  ++results_;
  std::vector<Value> row;
  size_t arity = 0;
  for (const Tuple* p : parts) arity += p->arity();
  row.reserve(arity);
  for (const Tuple* p : parts) {
    row.insert(row.end(), p->values().begin(), p->values().end());
  }
  Emit(Element(MakeTuple(ts, std::move(row))));
}

void MultiWindowJoinOp::Push(const Element& e, int port) {
  CountIn(e);
  if (e.is_punctuation()) {
    if (!e.punctuation().has_key) ExpireAll(e.punctuation().ts);
    Emit(e);
    return;
  }
  size_t me = static_cast<size_t>(port);
  assert(me < sides_.size());
  const TupleRef& t = e.tuple();

  // Invalidate every window up to the new arrival's time.
  ExpireAll(t->ts());

  const Value& key = t->at(static_cast<size_t>(sides_[me].spec.key_col));

  // Gather the other sides' match lists; bail early on any empty one.
  struct Probe {
    size_t side;
    const std::vector<TupleRef>* matches;
  };
  std::vector<Probe> probes;
  probes.reserve(sides_.size() - 1);
  for (size_t s = 0; s < sides_.size(); ++s) {
    if (s == me) continue;
    auto it = sides_[s].index.find(key);
    if (it == sides_[s].index.end() || it->second.empty()) {
      probes.clear();
      break;
    }
    probes.push_back({s, &it->second});
  }

  if (!probes.empty() || sides_.size() == 1) {
    if (options_.adaptive_order) {
      // Most selective probe first: fewest matches prunes earliest (in
      // the cross-product enumeration below, earlier probes multiply
      // fewer partials).
      std::sort(probes.begin(), probes.end(),
                [](const Probe& a, const Probe& b) {
                  return a.matches->size() < b.matches->size();
                });
    } else {
      std::sort(probes.begin(), probes.end(),
                [](const Probe& a, const Probe& b) { return a.side < b.side; });
    }

    // Partial-work model [VNB03]: pairwise composition materializes the
    // prefix products of the probe order, so probing small lists first
    // shrinks every intermediate.
    uint64_t prefix = 1;
    for (size_t k = 0; k + 1 < probes.size(); ++k) {
      prefix *= probes[k].matches->size();
      partials_ += prefix;
    }

    // Enumerate the cross-product over the probe lists.
    std::vector<size_t> idx(probes.size(), 0);
    if (!probes.empty()) {
      while (true) {
        // Assemble this combination in *stream order* for a stable
        // output layout.
        std::vector<const Tuple*> parts(sides_.size(), nullptr);
        parts[me] = t.get();
        for (size_t k = 0; k < probes.size(); ++k) {
          parts[probes[k].side] = (*probes[k].matches)[idx[k]].get();
        }
        EmitCombined(parts, t->ts());
        // Advance the mixed-radix counter.
        size_t k = 0;
        while (k < idx.size()) {
          if (++idx[k] < probes[k].matches->size()) break;
          idx[k] = 0;
          ++k;
        }
        if (k == idx.size()) break;
      }
    }
  } else if (sides_.size() > 1) {
    // Count the aborted probe as one unit of partial work.
    ++partials_;
  }

  // Insert the new tuple into its own window + index.
  sides_[me].buf.Insert(t);
  sides_[me].index[key].push_back(t);
}

void MultiWindowJoinOp::Flush() {
  if (++flushes_ < static_cast<int>(sides_.size())) return;
  Operator::Flush();
}

size_t MultiWindowJoinOp::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const Side& s : sides_) {
    bytes += s.buf.MemoryBytes();
    bytes += s.index.size() * 48;
  }
  return bytes;
}

}  // namespace sqp
