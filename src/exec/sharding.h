#ifndef SQP_EXEC_SHARDING_H_
#define SQP_EXEC_SHARDING_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exchange.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/sharded_op.h"

namespace sqp {

/// Mixin an operator implements to opt into key-partitioned execution
/// (ShardStatefulOps). The contract a shardable operator asserts:
/// running one replica per key partition, each fed exactly the tuples
/// whose ShardKeyColumns land there (watermarks broadcast), produces the
/// serial operator's output up to inter-partition reordering.
class ShardableOperator {
 public:
  virtual ~ShardableOperator() = default;

  /// A fresh, state-empty operator configured exactly like this one.
  /// Called once per shard; each replica is driven by a single worker
  /// thread, so replicas may share immutable config (expressions, agg
  /// specs) but never mutable state.
  virtual std::unique_ptr<Operator> CloneReplica() const = 0;

  /// Partition key columns per input port; the vector's size is the
  /// operator's input port count. An empty list on a port means the port
  /// carries no partitioning key (forces replicated routing for joins).
  virtual std::vector<std::vector<int>> ShardKeyColumns() const = 0;

  /// True when partitioned execution preserves this operator's
  /// semantics. False (with *why filled when non-null) for configs that
  /// don't partition — count-based windows (a per-shard last-N is not
  /// the global last-N), global aggregates (one group spans all
  /// shards), outer joins (pad-row timestamps depend on per-shard
  /// arrival interleaving).
  virtual bool CanShard(std::string* why) const = 0;
};

/// Knobs of the ShardStatefulOps rewrite; the per-operator routing mode
/// is derived (see ShardRewrite::routing), everything else passes
/// through to each spliced ShardedOp.
struct ShardPlanOptions {
  int shards = 4;
  /// Preferred routing for binary operators. Unary operators are always
  /// disjoint; a join with an unkeyed input port falls back to
  /// replicated regardless of this preference.
  ShardRouting routing = ShardRouting::kDisjoint;
  size_t queue_limit = 1024;
  ShardBackpressure backpressure = ShardBackpressure::kBlock;
  size_t merge_queue_limit = 4096;
  size_t wake_batch = 64;
  /// Columnar delivery inside each shard (ShardedOpOptions::columnar):
  /// replicas that support columns fold converted runs column-at-a-time.
  bool columnar = false;
  /// Structured event sink + query label for backpressure-stall events,
  /// passed through to every spliced ShardedOp (nullptr = silent).
  obs::EventLog* events = nullptr;
  std::string event_label;
};

/// One operator's outcome under the rewrite: either spliced (sharded !=
/// nullptr, original disconnected but still plan-owned) or skipped
/// (sharded == nullptr, reason says why).
struct ShardRewrite {
  Operator* original = nullptr;
  ShardedOp* sharded = nullptr;
  ShardRouting routing = ShardRouting::kDisjoint;
  std::string reason;
};

/// Plan rewrite: replaces every shardable stateful operator in `plan`
/// with a ShardedOp running `options.shards` replicas of it, rewiring
/// upstream outputs and inheriting the original's downstream edge. The
/// original operators stay plan-owned (they serve as replica templates
/// during the rewrite) but are disconnected from the DAG.
///
/// Returns one entry per ShardableOperator found — spliced or skipped —
/// so callers (StreamEngine::EnableSharding) can patch external edges
/// (query input tables) and register shard metrics.
///
/// With options.shards <= 1 the plan is left untouched (every operator
/// reports skipped); the shards=1 baseline in benchmarks instead builds
/// a ShardedOp explicitly so the exchange overhead is measured, not
/// bypassed.
std::vector<ShardRewrite> ShardStatefulOps(Plan& plan,
                                           const ShardPlanOptions& options);

}  // namespace sqp

#endif  // SQP_EXEC_SHARDING_H_
