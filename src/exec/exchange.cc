#include "exec/exchange.h"

#include <algorithm>
#include <cassert>

namespace sqp {

const char* ShardRoutingName(ShardRouting r) {
  switch (r) {
    case ShardRouting::kDisjoint:
      return "disjoint";
    case ShardRouting::kReplicated:
      return "replicated";
  }
  return "?";
}

ShardRouter::ShardRouter(int shards, ShardRouting routing,
                         std::vector<std::vector<int>> key_cols_by_port)
    : shards_(shards), routing_(routing), key_cols_(std::move(key_cols_by_port)) {
  assert(shards_ > 0);
  if (key_cols_.empty()) key_cols_.push_back({});
}

int ShardRouter::Route(const Element& e, int port) {
  if (shards_ == 1) return 0;
  if (e.is_punctuation()) {
    const Punctuation& p = e.punctuation();
    if (!p.has_key || routing_ == ShardRouting::kReplicated) {
      return kBroadcast;
    }
    // Disjoint CloseKey: the punctuation's single-value key must land on
    // the shard owning that key's tuples — OneValueKeyHash matches
    // KeyView::Hash over a one-column key.
    return static_cast<int>(OneValueKeyHash(p.key) %
                            static_cast<size_t>(shards_));
  }
  if (routing_ == ShardRouting::kReplicated && port != 0) return kBroadcast;
  const std::vector<int>& cols =
      key_cols_[static_cast<size_t>(port) < key_cols_.size()
                    ? static_cast<size_t>(port)
                    : 0];
  if (cols.empty()) {
    return static_cast<int>(rr_++ % static_cast<uint64_t>(shards_));
  }
  return static_cast<int>(KeyView(*e.tuple(), cols).Hash() %
                          static_cast<size_t>(shards_));
}

HashExchangeOp::HashExchangeOp(int shards, ShardRouting routing,
                               std::vector<std::vector<int>> key_cols_by_port,
                               std::string name)
    : Operator(std::move(name)),
      router_(shards, routing, std::move(key_cols_by_port)),
      outs_(static_cast<size_t>(shards)),
      routed_(static_cast<size_t>(shards), 0) {}

void HashExchangeOp::SetShardOutput(int shard, Operator* op, int port) {
  outs_[static_cast<size_t>(shard)] = ShardOut{op, port};
}

void HashExchangeOp::Forward(const Element& e, int shard) {
  ++routed_[static_cast<size_t>(shard)];
  // Multi-output fan-out can't use Emit (one out_); keep the operator's
  // own out-counters honest by hand.
  if (e.is_punctuation()) {
    ++stats_.puncts_out;
  } else {
    ++stats_.tuples_out;
  }
  const ShardOut& o = outs_[static_cast<size_t>(shard)];
  if (o.op != nullptr) o.op->Process(e, o.port);
}

void HashExchangeOp::Push(const Element& e, int port) {
  CountIn(e);
  int target = router_.Route(e, port);
  if (target == ShardRouter::kBroadcast) {
    for (int i = 0; i < router_.shards(); ++i) Forward(e, i);
    return;
  }
  Forward(e, target);
}

void HashExchangeOp::Flush() {
  for (const ShardOut& o : outs_) {
    if (o.op != nullptr) o.op->Flush();
  }
}

double HashExchangeOp::SkewRatio() const {
  uint64_t total = 0;
  uint64_t peak = 0;
  for (uint64_t r : routed_) {
    total += r;
    peak = std::max(peak, r);
  }
  if (total == 0) return 1.0;
  double mean = static_cast<double>(total) / static_cast<double>(routed_.size());
  return static_cast<double>(peak) / mean;
}

ShardMergeOp::ShardMergeOp(int shards, ShardRouting routing, std::string name)
    : Operator(std::move(name)),
      shards_(shards),
      routing_(routing),
      shard_wm_(static_cast<size_t>(shards), INT64_MIN),
      emitted_wm_(INT64_MIN) {}

void ShardMergeOp::Push(const Element& e, int port) {
  CountIn(e);
  if (!e.is_punctuation()) {
    Emit(e);
    return;
  }
  const Punctuation& p = e.punctuation();
  if (p.has_key) {
    if (routing_ == ShardRouting::kDisjoint) {
      // Exactly one shard owns the key; its close-out is already
      // ordered after that shard's tuples for the key.
      Emit(e);
      return;
    }
    auto [it, inserted] =
        pending_close_.try_emplace(p.key, std::make_pair(p.ts, 0));
    auto& pending = it->second;
    pending.first = std::max(pending.first, p.ts);
    if (++pending.second >= shards_) {
      int64_t ts = pending.first;
      Value key = p.key;
      pending_close_.erase(p.key);
      Emit(Element(Punctuation::CloseKey(ts, std::move(key))));
    }
    return;
  }
  // Watermark fan-in: forward min across shards, monotonically. All
  // tuples any shard emitted before its own watermark W were already
  // forwarded (per-shard FIFO), so downstream ordering guarantees are
  // preserved.
  int64_t& wm = shard_wm_[static_cast<size_t>(port)];
  wm = std::max(wm, p.ts);
  int64_t merged = *std::min_element(shard_wm_.begin(), shard_wm_.end());
  if (merged > emitted_wm_) {
    emitted_wm_ = merged;
    Emit(Element(Punctuation::Watermark(merged)));
  }
}

void ShardMergeOp::Flush() {
  if (++flushes_ < shards_) return;
  Operator::Flush();
}

size_t ShardMergeOp::StateBytes() const {
  return sizeof(*this) + shard_wm_.capacity() * sizeof(int64_t) +
         pending_close_.size() * (sizeof(Value) + sizeof(int64_t) + 32);
}

}  // namespace sqp
