#ifndef SQP_SQP_H_
#define SQP_SQP_H_

/// \file
/// Umbrella header for streamqp's public API. Downstream users can
/// `#include "sqp.h"` and link `streamqp`; fine-grained headers remain
/// available for faster builds.
///
/// Layering (see DESIGN.md):
///   common -> stream/window/agg/synopsis -> exec -> sched/shed/opt/cql
///   -> arch (3-level architecture + StreamEngine); hancock and xml are
///   self-contained side libraries.

// Core value/tuple model and error handling.
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/tuple.h"
#include "common/value.h"

// Stream elements, queues, arrival processes, workload generators.
#include "stream/arrival.h"
#include "stream/element.h"
#include "stream/generators.h"
#include "stream/queue.h"

// Window taxonomy (slides 26-28).
#include "window/count_window.h"
#include "window/partitioned_window.h"
#include "window/punctuation_window.h"
#include "window/time_window.h"
#include "window/window_spec.h"

// Aggregates and synopses (slides 34-38).
#include "agg/aggregate_fn.h"
#include "agg/partial_agg.h"
#include "synopsis/ams.h"
#include "synopsis/count_min.h"
#include "synopsis/distinct.h"
#include "synopsis/exp_histogram.h"
#include "synopsis/gk_quantile.h"
#include "synopsis/histogram.h"
#include "synopsis/misra_gries.h"
#include "synopsis/reservoir.h"

// Observability: engine-wide metrics registry, per-operator counters,
// sampled lineage tracing, JSON/Prometheus export.
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/op_metrics.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

// Physical operators (slides 29-33).
#include "exec/aggregate_op.h"
#include "exec/eddy.h"
#include "exec/expr.h"
#include "exec/merge_join.h"
#include "exec/mjoin.h"
#include "exec/operator.h"
#include "exec/paned_window_agg.h"
#include "exec/partitioned_window_agg.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "exec/punct_groupby.h"
#include "exec/reorder.h"
#include "exec/select.h"
#include "exec/streamify.h"
#include "exec/sym_hash_join.h"
#include "exec/union.h"
#include "exec/window_agg.h"
#include "exec/window_join.h"
#include "exec/xjoin.h"

// Scheduling, shedding, optimization (slides 39-45).
#include "opt/memory_bound.h"
#include "opt/rate_model.h"
#include "opt/rate_optimizer.h"
#include "opt/sharing.h"
#include "sched/policies.h"
#include "sched/queued_executor.h"
#include "sched/sim.h"
#include "shed/feedback_shedder.h"
#include "shed/load_shedder.h"
#include "shed/qos.h"
#include "shed/shed_planner.h"

// Continuous query language (slide 25).
#include "cql/analyzer.h"
#include "cql/parser.h"
#include "cql/planner.h"

// 3-level architecture and engine facade (slides 14-15, 54).
#include "arch/cql_decompose.h"
#include "arch/db_sink.h"
#include "arch/decompose.h"
#include "arch/engine.h"
#include "arch/node.h"
#include "arch/system.h"

// Case-study side libraries.
#include "hancock/program.h"
#include "hancock/signature.h"
#include "xml/doc_gen.h"
#include "xml/filter.h"
#include "xml/xml_event.h"
#include "xml/xpath.h"

#endif  // SQP_SQP_H_
