#ifndef SQP_DUR_CHECKPOINT_H_
#define SQP_DUR_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace dur {

/// Captured state of one standing query at a checkpoint.
struct QueryCheckpoint {
  /// The CQL text — recovery matches checkpointed state to resubmitted
  /// queries by it.
  std::string text;
  /// False: the query's plan could not be checkpointed (parallel/sharded
  /// execution, a front-end, or an operator without a serializer) and
  /// recovery replays its input from seq 0 instead.
  bool included = false;
  /// One opaque blob per checkpointable operator, in plan order, with
  /// the result collector last.
  std::vector<std::string> op_states;
};

/// An engine-wide consistent cut: every included query's operator state
/// as of archive position `position`. Recovery restores the states and
/// replays only records with seq > position into included queries.
struct Checkpoint {
  uint64_t id = 0;
  uint64_t position = 0;
  /// Global sequence counter to resume appending at.
  uint64_t next_seq = 0;
  std::vector<QueryCheckpoint> queries;
};

/// Writes `c` under `<root>/ckpt/` (tmp file + atomic rename, CRC over
/// the body) and prunes all but the newest `keep` checkpoint files.
/// `fsync` additionally syncs the file before the rename and the
/// directory after it, so the checkpoint survives OS/power failure —
/// pass the archive's fsync option so both halves share one contract.
Status WriteCheckpoint(const std::string& root, const Checkpoint& c,
                       size_t keep, bool fsync = false);

/// Loads the newest readable checkpoint. Files whose CRC fails (e.g. a
/// crash mid-prune corrupted nothing — rename is atomic — but disks
/// happen) are skipped in favor of the next-newest. NotFound when no
/// checkpoint exists.
Result<Checkpoint> ReadLatestCheckpoint(const std::string& root);

}  // namespace dur
}  // namespace sqp

#endif  // SQP_DUR_CHECKPOINT_H_
