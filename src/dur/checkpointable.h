#ifndef SQP_DUR_CHECKPOINTABLE_H_
#define SQP_DUR_CHECKPOINTABLE_H_

#include <string>

#include "common/status.h"
#include "dur/codec.h"

namespace sqp {

/// Mixin for operators whose in-memory state can round-trip through a
/// checkpoint (dur::Checkpoint). Implemented by the stateful synopses
/// the CQL planner emits — windowed group-by, punctuated group-by,
/// symmetric hash join, distinct — plus the result collector.
///
/// Contract: SaveState on a quiescent operator (the single driving
/// thread is parked in the checkpoint) followed by RestoreState on a
/// freshly built operator of the same configuration must reproduce
/// behavior exactly: pushing the same element suffix yields the same
/// outputs. RestoreState returns a Status (never throws) so a corrupt
/// or mismatched checkpoint degrades to full replay, not a crash.
class CheckpointableOperator {
 public:
  virtual ~CheckpointableOperator() = default;

  /// False when the current configuration cannot round-trip — e.g. an
  /// approximate-sketch accumulator (GK quantile, HyperLogLog) with no
  /// serializer. The engine then excludes the whole query from the
  /// checkpoint and recovery replays it from seq 0.
  virtual bool CanCheckpointState(std::string* why) const {
    (void)why;
    return true;
  }

  virtual void SaveState(dur::BufWriter& w) const = 0;
  virtual Status RestoreState(dur::BufReader& r) = 0;
};

}  // namespace sqp

#endif  // SQP_DUR_CHECKPOINTABLE_H_
