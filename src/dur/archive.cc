#include "dur/archive.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace sqp {
namespace dur {

namespace {

constexpr uint32_t kSegmentMagic = 0x53515041;  // "SQPA"
constexpr uint32_t kSegmentVersion = 1;
// Frames larger than this are treated as corruption, not data: the
// archive never writes records anywhere near it, and honoring a garbage
// length would turn one flipped bit into a gigabyte allocation.
constexpr uint32_t kMaxFrameLen = 64u << 20;

std::string SegmentName(uint64_t first_seq) {
  return StrFormat("seg-%016llx.sqpa",
                   static_cast<unsigned long long>(first_seq));
}

// Best-effort repair: chop a torn tail off a crashed segment so future
// recoveries see a clean chain. Failure (read-only archive) is fine —
// the reader skips the torn tail either way.
void TruncateFile(const std::string& path, long len) {
  if (len < 0) return;
  (void)::truncate(path.c_str(), static_cast<off_t>(len));
}

}  // namespace

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::string partial;
  size_t i = 0;
  while (i < path.size()) {
    size_t next = path.find('/', i + 1);
    if (next == std::string::npos) next = path.size();
    partial = path.substr(0, next);
    i = next;
    if (partial.empty() || partial == "/" || partial == ".") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(StrFormat("mkdir %s: %s", partial.c_str(),
                                        std::strerror(errno)));
    }
  }
  return Status::OK();
}

Status ListDir(const std::string& path, std::vector<std::string>* out) {
  out->clear();
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::Internal(StrFormat("opendir %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  while (struct dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    out->push_back(e->d_name);
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status FsyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrFormat("open dir %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(StrFormat("fsync dir %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return Status::OK();
}

void FrameRecordTo(uint64_t seq, const Element& e, BufWriter* w) {
  // Reserve the crc|len slots, encode the payload in place, then patch
  // them — one buffer, no payload copy.
  const size_t base = w->size();
  w->U32(0);
  w->U32(0);
  w->U64(seq);
  w->Elem(e);
  const size_t len = w->size() - base - 8;
  w->PatchU32(base + 4, static_cast<uint32_t>(len));
  w->PatchU32(base, Crc32(w->data().data() + base + 8, len));
}

std::string FrameRecord(uint64_t seq, const Element& e) {
  BufWriter frame;
  FrameRecordTo(seq, e, &frame);
  return frame.Take();
}

ArchiveWriter::ArchiveWriter(std::string root, std::string stream,
                             size_t segment_bytes)
    : dir_(root + "/streams/" + stream),
      stream_(std::move(stream)),
      segment_bytes_(segment_bytes) {}

ArchiveWriter::~ArchiveWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void ArchiveWriter::AppendFramed(uint64_t seq, std::string_view framed) {
  if (!have_pending_) {
    pending_first_seq_ = seq;
    have_pending_ = true;
  }
  pending_.append(framed.data(), framed.size());
}

Status ArchiveWriter::EnsureOpen() {
  if (f_ != nullptr) return Status::OK();
  SQP_RETURN_NOT_OK(MakeDirs(dir_));
  const std::string path = dir_ + "/" + SegmentName(pending_first_seq_);
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    return Status::Internal(StrFormat("open %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  BufWriter header;
  header.U32(kSegmentMagic);
  header.U32(kSegmentVersion);
  header.Str(stream_);
  if (std::fwrite(header.data().data(), 1, header.size(), f_) !=
      header.size()) {
    return Status::Internal("short write on segment header: " + path);
  }
  seg_bytes_ = header.size();
  dir_sync_pending_ = true;
  return Status::OK();
}

Status ArchiveWriter::Flush(bool fsync) {
  if (pending_.empty()) return Status::OK();
  Status st = FlushPendingLocked(fsync);
  if (!st.ok()) {
    // Abandon the (possibly half-written) segment and keep the buffer:
    // the retry lands in a fresh file named for the buffer's first seq,
    // and the reader's monotonic-seq guard drops whatever duplicate
    // prefix of this batch made it to disk here.
    if (f_ != nullptr) {
      std::fclose(f_);
      f_ = nullptr;
    }
    seg_bytes_ = 0;
    return st;
  }
  seg_bytes_ += pending_.size();
  bytes_written_ += pending_.size();
  pending_.clear();
  have_pending_ = false;
  // Size-based rotation at flush granularity: the next batch opens a
  // fresh segment named for its first seq.
  if (seg_bytes_ >= segment_bytes_) {
    std::fclose(f_);
    f_ = nullptr;
    seg_bytes_ = 0;
  }
  return Status::OK();
}

Status ArchiveWriter::FlushPendingLocked(bool fsync) {
  SQP_RETURN_NOT_OK(EnsureOpen());
  if (std::fwrite(pending_.data(), 1, pending_.size(), f_) !=
      pending_.size()) {
    return Status::Internal("short write on segment for stream " + stream_);
  }
  if (std::fflush(f_) != 0) {
    return Status::Internal("fflush failed for stream " + stream_);
  }
  if (fsync) {
    if (::fsync(::fileno(f_)) != 0) {
      return Status::Internal(StrFormat("fsync failed for stream %s: %s",
                                        stream_.c_str(),
                                        std::strerror(errno)));
    }
    // First durable flush of a new segment also pins its directory
    // entry; without this the file itself can vanish on power loss.
    if (dir_sync_pending_) {
      SQP_RETURN_NOT_OK(FsyncDir(dir_));
      dir_sync_pending_ = false;
    }
  }
  return Status::OK();
}

ArchiveReader::~ArchiveReader() {
  for (StreamCursor& c : cursors_) {
    if (c.f != nullptr) std::fclose(c.f);
  }
}

Status ArchiveReader::Open() {
  std::vector<std::string> streams;
  SQP_RETURN_NOT_OK(ListDir(root_ + "/streams", &streams));
  for (const std::string& s : streams) {
    StreamCursor c;
    c.stream = s;
    c.dir = root_ + "/streams/" + s;
    SQP_RETURN_NOT_OK(ListDir(c.dir, &c.segments));
    cursors_.push_back(std::move(c));
  }
  for (StreamCursor& c : cursors_) SQP_RETURN_NOT_OK(AdvanceCursor(c));
  return Status::OK();
}

Status ArchiveReader::OpenNextSegment(StreamCursor& c) {
  while (c.seg_index < c.segments.size()) {
    const std::string path = c.dir + "/" + c.segments[c.seg_index++];
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::Internal(StrFormat("open %s: %s", path.c_str(),
                                        std::strerror(errno)));
    }
    // Validate the header. A header cut short by a crash means the
    // segment holds nothing durable: drop the husk (best effort) and
    // keep walking the chain — later segments are still valid.
    BufWriter expect;
    expect.U32(kSegmentMagic);
    expect.U32(kSegmentVersion);
    expect.Str(c.stream);
    std::string got(expect.size(), '\0');
    size_t n = std::fread(got.data(), 1, got.size(), f);
    if (n != got.size() || got != expect.data()) {
      std::fclose(f);
      ++torn_streams_;
      (void)::unlink(path.c_str());
      continue;
    }
    c.f = f;
    c.cur_path = path;
    return Status::OK();
  }
  c.done = true;
  return Status::OK();
}

Status ArchiveReader::AdvanceCursor(StreamCursor& c) {
  c.has_head = false;
  while (!c.done) {
    if (c.f == nullptr) {
      SQP_RETURN_NOT_OK(OpenNextSegment(c));
      continue;
    }
    const long frame_off = std::ftell(c.f);
    char hdr[8];
    size_t n = std::fread(hdr, 1, sizeof(hdr), c.f);
    if (n == 0) {
      // Clean end of this segment; move to the next one.
      std::fclose(c.f);
      c.f = nullptr;
      continue;
    }
    uint32_t crc = 0, len = 0;
    if (n == sizeof(hdr)) {
      std::memcpy(&crc, hdr, 4);
      std::memcpy(&len, hdr + 4, 4);
    }
    std::string payload;
    bool torn = n != sizeof(hdr) || len == 0 || len > kMaxFrameLen;
    if (!torn) {
      payload.resize(len);
      torn = std::fread(payload.data(), 1, len, c.f) != len ||
             Crc32(payload.data(), len) != crc;
    }
    ArchivedRecord rec;
    if (!torn) {
      BufReader r(payload);
      torn = !r.U64(&rec.seq).ok() || !r.Elem(&rec.element).ok() || !r.done();
    }
    if (torn) {
      // The write the process died inside of. Nothing past it in THIS
      // segment is reachable, but segments written after a crash ->
      // recover -> continue cycle sort later in the chain and hold
      // records that were acknowledged durable — never stop the whole
      // chain. Chop the garbage tail off so the next recovery starts
      // clean, then carry on with the next segment file.
      std::fclose(c.f);
      c.f = nullptr;
      ++torn_streams_;
      TruncateFile(c.cur_path, frame_off);
      continue;
    }
    // Exactly-once guard: a flush retried after a short write can leave
    // a record both in a broken segment's intact prefix and again in
    // its replacement; drop non-advancing seqs.
    if (c.emitted && rec.seq <= c.last_seq) continue;
    c.last_seq = rec.seq;
    c.emitted = true;
    rec.stream = c.stream;
    c.head = std::move(rec);
    c.has_head = true;
    return Status::OK();
  }
  return Status::OK();
}

Result<bool> ArchiveReader::Next(ArchivedRecord* out) {
  StreamCursor* best = nullptr;
  for (StreamCursor& c : cursors_) {
    if (!c.has_head) continue;
    if (best == nullptr || c.head.seq < best->head.seq) best = &c;
  }
  if (best == nullptr) return false;
  *out = std::move(best->head);
  last_seq_ = std::max(last_seq_, out->seq);
  SQP_RETURN_NOT_OK(AdvanceCursor(*best));
  return true;
}

}  // namespace dur
}  // namespace sqp
