#ifndef SQP_DUR_CODEC_H_
#define SQP_DUR_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/tuple.h"
#include "stream/element.h"

namespace sqp {
namespace dur {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes. Pass the
/// previous return value as `seed` to checksum data in pieces.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Append-only little-endian encoder for the archive/checkpoint wire
/// format. All multi-byte integers are fixed-width little-endian so a
/// record is decodable on any host this engine builds on.
class BufWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLE(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLE(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// u32 length + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  /// u8 type tag (== ValueType) + typed payload.
  void Val(const Value& v);
  /// i64 ts + u32 arity + values.
  void Tup(const Tuple& t);
  /// i64 ts + u8 has_key + [key].
  void Punct(const Punctuation& p);
  /// u8 kind (0 = tuple, 1 = punctuation) + payload.
  void Elem(const Element& e);

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }
  void Clear() { buf_.clear(); }

  /// Overwrites 4 bytes at `off` (little-endian) — for patching a
  /// length/CRC slot reserved before its value was known.
  void PatchU32(size_t off, uint32_t v) {
    std::memcpy(buf_.data() + off, &v, sizeof(v));
  }

 private:
  void AppendLE(const void* p, size_t n) {
    // Every supported target is little-endian; memcpy keeps it UB-free.
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range. Every read returns
/// Status so corrupt or truncated input surfaces as a recoverable error,
/// never as UB or an exception.
class BufReader {
 public:
  BufReader(const char* p, size_t n) : p_(p), end_(p + n) {}
  explicit BufReader(std::string_view s) : BufReader(s.data(), s.size()) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I64(int64_t* out) {
    return U64(reinterpret_cast<uint64_t*>(out));
  }
  Status F64(double* out);
  Status Str(std::string* out);

  Status Val(Value* out);
  Status Tup(TupleRef* out);
  Status Punct(Punctuation* out);
  Status Elem(Element* out);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::Internal("dur: truncated record (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()) + ")");
    }
    return Status::OK();
  }
  const char* p_;
  const char* end_;
};

}  // namespace dur
}  // namespace sqp

#endif  // SQP_DUR_CODEC_H_
