#ifndef SQP_DUR_MANAGER_H_
#define SQP_DUR_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "dur/archive.h"
#include "obs/registry.h"

namespace sqp {
namespace dur {

/// Tuning for StreamEngine::EnableDurability.
struct DurabilityOptions {
  /// Archive segments rotate once they exceed this.
  size_t segment_bytes = 64u << 20;
  /// Group-commit period of the background flusher. <= 0 flushes
  /// synchronously on every append (the slow, maximally durable mode
  /// bench_durability measures as the group-commit counterfactual).
  int flush_interval_ms = 5;
  /// Pending bytes that force an early flush on the ingest thread, so an
  /// ingest burst cannot grow the buffer without bound between ticks.
  size_t flush_buffer_bytes = 1u << 20;
  /// fsync segments on flush: survives OS/power failure, not just
  /// process death. Off by default — the write() alone survives kill -9.
  bool fsync = false;
  /// Records between automatic checkpoints (0 = only explicit
  /// CheckpointNow / final checkpoint at FinishAll).
  uint64_t checkpoint_every = 0;
  /// Checkpoint files retained (older ones are pruned).
  size_t keep_checkpoints = 2;
  /// Recover (checkpoint restore + archive replay) from an existing
  /// archive when EnableDurability finds one.
  bool recover = true;
  /// False: ignore any checkpoint and replay the full archive — the
  /// recovery-audit mode (`sqpsh --ignore-checkpoint`).
  bool use_checkpoint = true;
};

/// Owns the archive write path: per-stream segment writers behind one
/// group-commit buffer, flushed by a background thread every
/// `flush_interval_ms` (and inline when the buffer tops
/// `flush_buffer_bytes`). Append is called by the engine's single ingest
/// thread; Flush may run concurrently from the flusher.
class DurabilityManager {
 public:
  DurabilityManager(std::string root, DurabilityOptions options,
                    obs::MetricsRegistry* metrics);
  ~DurabilityManager();

  /// Creates the directory tree and starts the flusher thread.
  Status Open();

  /// Assigns the next global seq, frames the record, and buffers it for
  /// the stream's segment chain. Ingest thread only. Fails (without
  /// buffering or consuming a seq) once any flush has hit a sticky IO
  /// error — the ingest path must stop rather than acknowledge elements
  /// that will never reach disk — and propagates the error of an inline
  /// flush it triggered.
  Result<uint64_t> Append(const std::string& stream, const Element& e);

  /// Group commit: writes every stream's pending records and flushes to
  /// the OS. Safe from any thread.
  Status Flush();

  /// True once `checkpoint_every` records accumulated since the last
  /// call that returned true. Clears the counter. Ingest thread only.
  bool TakeCheckpointDue();

  /// Global sequence counter (next to be assigned / resume point after
  /// recovery). Ingest thread only, except during recovery setup.
  uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(uint64_t s) { next_seq_ = s; }
  /// Seq of the last appended record (0 when nothing was appended).
  uint64_t last_seq() const { return next_seq_ == 0 ? 0 : next_seq_ - 1; }

  const std::string& root() const { return root_; }
  const DurabilityOptions& options() const { return opts_; }

  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t bytes_buffered_total() const {
    return bytes_total_.load(std::memory_order_relaxed);
  }

 private:
  ArchiveWriter* WriterForLocked(const std::string& stream);
  Status FlushLocked();
  void FlusherLoop();

  const std::string root_;
  const DurabilityOptions opts_;

  // Ingest-thread-only counters (no lock needed).
  uint64_t next_seq_ = 1;  // Seq 0 is reserved as "before everything".
  uint64_t since_checkpoint_ = 0;
  BufWriter scratch_;  // Reused frame buffer, ingest thread only.

  std::mutex mu_;  // Guards writers_, their buffers, and the file IO.
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<ArchiveWriter>> writers_;
  size_t pending_bytes_ = 0;
  bool stop_ = false;
  Status flush_error_;  // First IO failure, sticky; fails Append/Flush.

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> bytes_total_{0};

  obs::Counter* records_ctr_ = nullptr;
  obs::Counter* bytes_ctr_ = nullptr;
  obs::Counter* flushes_ctr_ = nullptr;

  std::thread flusher_;
};

}  // namespace dur
}  // namespace sqp

#endif  // SQP_DUR_MANAGER_H_
