#include "dur/manager.h"

#include <chrono>

namespace sqp {
namespace dur {

DurabilityManager::DurabilityManager(std::string root,
                                     DurabilityOptions options,
                                     obs::MetricsRegistry* metrics)
    : root_(std::move(root)), opts_(options) {
  if (metrics != nullptr) {
    records_ctr_ = metrics->GetCounter("sqp_dur_records_total", {});
    bytes_ctr_ = metrics->GetCounter("sqp_dur_bytes_total", {});
    flushes_ctr_ = metrics->GetCounter("sqp_dur_flushes_total", {});
  }
}

DurabilityManager::~DurabilityManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Final group commit so a clean shutdown archives everything.
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

Status DurabilityManager::Open() {
  SQP_RETURN_NOT_OK(MakeDirs(root_ + "/streams"));
  if (opts_.flush_interval_ms > 0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

ArchiveWriter* DurabilityManager::WriterForLocked(const std::string& stream) {
  auto it = writers_.find(stream);
  if (it == writers_.end()) {
    it = writers_
             .emplace(stream, std::make_unique<ArchiveWriter>(
                                  root_, stream, opts_.segment_bytes))
             .first;
  }
  return it->second.get();
}

Result<uint64_t> DurabilityManager::Append(const std::string& stream,
                                           const Element& e) {
  const uint64_t seq = next_seq_;
  // Frame into the reused scratch buffer — ingest thread only, so a
  // single member buffer makes the steady-state append allocation-free.
  scratch_.Clear();
  FrameRecordTo(seq, e, &scratch_);
  const size_t framed_bytes = scratch_.size();

  bool flush_inline = opts_.flush_interval_ms <= 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A sticky IO failure (disk full, bad archive dir) means nothing
    // buffered here will ever reach disk: refuse the record so ingest
    // fails loudly instead of growing the buffer without bound.
    if (!flush_error_.ok()) return flush_error_;
    WriterForLocked(stream)->AppendFramed(seq, scratch_.data());
    pending_bytes_ += framed_bytes;
    flush_inline = flush_inline || pending_bytes_ >= opts_.flush_buffer_bytes;
    if (flush_inline) SQP_RETURN_NOT_OK(FlushLocked());
  }
  ++next_seq_;
  ++since_checkpoint_;

  appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_total_.fetch_add(framed_bytes, std::memory_order_relaxed);
  if (records_ctr_ != nullptr) records_ctr_->Inc();
  if (bytes_ctr_ != nullptr) bytes_ctr_->Inc(framed_bytes);
  return seq;
}

Status DurabilityManager::FlushLocked() {
  if (pending_bytes_ == 0) return flush_error_;
  for (auto& [name, writer] : writers_) {
    Status st = writer->Flush(opts_.fsync);
    if (!st.ok() && flush_error_.ok()) flush_error_ = st;
  }
  // A failed writer keeps its unwritten buffer: recompute instead of
  // zeroing so the byte-threshold trigger still sees it.
  size_t still_pending = 0;
  for (auto& [name, writer] : writers_) still_pending += writer->pending_bytes();
  pending_bytes_ = still_pending;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (flushes_ctr_ != nullptr) flushes_ctr_->Inc();
  return flush_error_;
}

Status DurabilityManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

bool DurabilityManager::TakeCheckpointDue() {
  if (opts_.checkpoint_every == 0 ||
      since_checkpoint_ < opts_.checkpoint_every) {
    return false;
  }
  since_checkpoint_ = 0;
  return true;
}

void DurabilityManager::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.flush_interval_ms),
                 [this] { return stop_; });
    FlushLocked();
  }
}

}  // namespace dur
}  // namespace sqp
