#include "dur/codec.h"

#include <array>

namespace sqp {
namespace dur {

namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input
// bytes per iteration instead of one — the archive CRCs every framed
// record on the ingest path, so the bytewise loop showed up in E21.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (size_t t = 1; t < 8; ++t) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[t][i] =
          tables[0][tables[t - 1][i] & 0xFFu] ^ (tables[t - 1][i] >> 8);
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildCrcTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, sizeof(lo));      // Little-endian targets only,
    std::memcpy(&hi, p + 4, sizeof(hi));  // same assumption as AppendLE.
    lo ^= c;
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BufWriter::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

void BufWriter::Tup(const Tuple& t) {
  I64(t.ts());
  U32(static_cast<uint32_t>(t.arity()));
  for (size_t i = 0; i < t.arity(); ++i) Val(t.at(i));
}

void BufWriter::Punct(const Punctuation& p) {
  I64(p.ts);
  U8(p.has_key ? 1 : 0);
  if (p.has_key) Val(p.key);
}

void BufWriter::Elem(const Element& e) {
  if (e.is_tuple()) {
    U8(0);
    Tup(*e.tuple());
  } else {
    U8(1);
    Punct(e.punctuation());
  }
}

Status BufReader::U8(uint8_t* out) {
  SQP_RETURN_NOT_OK(Need(1));
  *out = static_cast<uint8_t>(*p_++);
  return Status::OK();
}

Status BufReader::U32(uint32_t* out) {
  SQP_RETURN_NOT_OK(Need(4));
  std::memcpy(out, p_, 4);
  p_ += 4;
  return Status::OK();
}

Status BufReader::U64(uint64_t* out) {
  SQP_RETURN_NOT_OK(Need(8));
  std::memcpy(out, p_, 8);
  p_ += 8;
  return Status::OK();
}

Status BufReader::F64(double* out) {
  uint64_t bits = 0;
  SQP_RETURN_NOT_OK(U64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BufReader::Str(std::string* out) {
  uint32_t n = 0;
  SQP_RETURN_NOT_OK(U32(&n));
  SQP_RETURN_NOT_OK(Need(n));
  out->assign(p_, n);
  p_ += n;
  return Status::OK();
}

Status BufReader::Val(Value* out) {
  uint8_t tag = 0;
  SQP_RETURN_NOT_OK(U8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kInt: {
      int64_t v = 0;
      SQP_RETURN_NOT_OK(I64(&v));
      *out = Value::Int(v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double v = 0;
      SQP_RETURN_NOT_OK(F64(&v));
      *out = Value::Double(v);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      SQP_RETURN_NOT_OK(Str(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::Internal("dur: bad value tag " + std::to_string(tag));
}

Status BufReader::Tup(TupleRef* out) {
  int64_t ts = 0;
  uint32_t arity = 0;
  SQP_RETURN_NOT_OK(I64(&ts));
  SQP_RETURN_NOT_OK(U32(&arity));
  // Each value costs at least one tag byte — rejects absurd arities from
  // corrupt input before the reserve below can explode.
  SQP_RETURN_NOT_OK(Need(arity));
  std::vector<Value> vals;
  vals.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    SQP_RETURN_NOT_OK(Val(&v));
    vals.push_back(std::move(v));
  }
  *out = MakeTuple(ts, std::move(vals));
  return Status::OK();
}

Status BufReader::Punct(Punctuation* out) {
  SQP_RETURN_NOT_OK(I64(&out->ts));
  uint8_t has_key = 0;
  SQP_RETURN_NOT_OK(U8(&has_key));
  out->has_key = has_key != 0;
  if (out->has_key) SQP_RETURN_NOT_OK(Val(&out->key));
  return Status::OK();
}

Status BufReader::Elem(Element* out) {
  uint8_t kind = 0;
  SQP_RETURN_NOT_OK(U8(&kind));
  if (kind == 0) {
    TupleRef t;
    SQP_RETURN_NOT_OK(Tup(&t));
    *out = Element(std::move(t));
    return Status::OK();
  }
  if (kind == 1) {
    Punctuation p;
    SQP_RETURN_NOT_OK(Punct(&p));
    *out = Element(std::move(p));
    return Status::OK();
  }
  return Status::Internal("dur: bad element kind " + std::to_string(kind));
}

}  // namespace dur
}  // namespace sqp
