#include "dur/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "dur/archive.h"
#include "dur/codec.h"

namespace sqp {
namespace dur {

namespace {

constexpr uint32_t kCkptMagic = 0x53515043;  // "SQPC"
constexpr uint32_t kCkptVersion = 1;

std::string CkptName(uint64_t id) {
  return StrFormat("ckpt-%016llx.sqpc", static_cast<unsigned long long>(id));
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("open " + path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::Internal("read " + path);
  return Status::OK();
}

Status ParseCheckpoint(const std::string& bytes, Checkpoint* out) {
  BufReader r(bytes);
  uint32_t magic = 0, version = 0, crc = 0, body_len = 0;
  SQP_RETURN_NOT_OK(r.U32(&magic));
  SQP_RETURN_NOT_OK(r.U32(&version));
  SQP_RETURN_NOT_OK(r.U32(&crc));
  SQP_RETURN_NOT_OK(r.U32(&body_len));
  if (magic != kCkptMagic || version != kCkptVersion) {
    return Status::Internal("not a checkpoint file");
  }
  if (r.remaining() != body_len) {
    return Status::Internal("checkpoint body length mismatch");
  }
  const char* body = bytes.data() + (bytes.size() - body_len);
  if (Crc32(body, body_len) != crc) {
    return Status::Internal("checkpoint CRC mismatch");
  }
  SQP_RETURN_NOT_OK(r.U64(&out->id));
  SQP_RETURN_NOT_OK(r.U64(&out->position));
  SQP_RETURN_NOT_OK(r.U64(&out->next_seq));
  uint32_t nq = 0;
  SQP_RETURN_NOT_OK(r.U32(&nq));
  out->queries.clear();
  for (uint32_t i = 0; i < nq; ++i) {
    QueryCheckpoint qc;
    SQP_RETURN_NOT_OK(r.Str(&qc.text));
    uint8_t included = 0;
    SQP_RETURN_NOT_OK(r.U8(&included));
    qc.included = included != 0;
    uint32_t nops = 0;
    SQP_RETURN_NOT_OK(r.U32(&nops));
    for (uint32_t k = 0; k < nops; ++k) {
      std::string state;
      SQP_RETURN_NOT_OK(r.Str(&state));
      qc.op_states.push_back(std::move(state));
    }
    out->queries.push_back(std::move(qc));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::string& root, const Checkpoint& c,
                       size_t keep, bool fsync) {
  const std::string dir = root + "/ckpt";
  SQP_RETURN_NOT_OK(MakeDirs(dir));

  BufWriter body;
  body.U64(c.id);
  body.U64(c.position);
  body.U64(c.next_seq);
  body.U32(static_cast<uint32_t>(c.queries.size()));
  for (const QueryCheckpoint& qc : c.queries) {
    body.Str(qc.text);
    body.U8(qc.included ? 1 : 0);
    body.U32(static_cast<uint32_t>(qc.op_states.size()));
    for (const std::string& s : qc.op_states) body.Str(s);
  }

  BufWriter file;
  file.U32(kCkptMagic);
  file.U32(kCkptVersion);
  file.U32(Crc32(body.data().data(), body.size()));
  file.U32(static_cast<uint32_t>(body.size()));
  file.Raw(body.data().data(), body.size());

  // tmp + rename: a reader never sees a half-written checkpoint, and a
  // crash mid-write leaves only a dot-file ListDir ignores.
  const std::string tmp = dir + "/.tmp-" + CkptName(c.id);
  const std::string final_path = dir + "/" + CkptName(c.id);
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("open " + tmp);
  bool ok = std::fwrite(file.data().data(), 1, file.size(), f) == file.size();
  ok = std::fflush(f) == 0 && ok;
  // Sync the contents before the rename publishes the file, or power
  // loss could leave a fully renamed checkpoint full of zeroes.
  if (fsync && ok) ok = ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + final_path);
  }
  if (fsync) SQP_RETURN_NOT_OK(FsyncDir(dir));

  std::vector<std::string> files;
  SQP_RETURN_NOT_OK(ListDir(dir, &files));
  if (files.size() > keep) {
    for (size_t i = 0; i + keep < files.size(); ++i) {
      std::remove((dir + "/" + files[i]).c_str());
    }
  }
  return Status::OK();
}

Result<Checkpoint> ReadLatestCheckpoint(const std::string& root) {
  std::vector<std::string> files;
  SQP_RETURN_NOT_OK(ListDir(root + "/ckpt", &files));
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::string bytes;
    if (!ReadWholeFile(root + "/ckpt/" + *it, &bytes).ok()) continue;
    Checkpoint c;
    if (ParseCheckpoint(bytes, &c).ok()) return c;
  }
  return Status::NotFound("no readable checkpoint under " + root + "/ckpt");
}

}  // namespace dur
}  // namespace sqp
