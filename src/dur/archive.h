#ifndef SQP_DUR_ARCHIVE_H_
#define SQP_DUR_ARCHIVE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dur/codec.h"
#include "stream/element.h"

namespace sqp {
namespace dur {

/// mkdir -p. OK when the directory already exists.
Status MakeDirs(const std::string& path);
/// Regular entries (no dot files) of `path`, sorted ascending. OK with an
/// empty result when the directory does not exist.
Status ListDir(const std::string& path, std::vector<std::string>* out);
/// fsync on the directory itself, pinning entries created/renamed in it
/// against power loss.
Status FsyncDir(const std::string& path);

/// On-disk layout (one archive root per engine):
///
///   <root>/streams/<stream>/seg-<16-hex first seq>.sqpa
///   <root>/ckpt/ckpt-<16-hex id>.sqpc
///
/// A segment starts with a header (magic, version, stream name) and then
/// carries CRC-framed records:
///
///   u32 crc(payload) | u32 len | payload
///   payload = u64 global_seq | element (tuple or punctuation, dur codec)
///
/// The global sequence number is assigned by the engine across *all*
/// streams, so a reader merging per-stream segment chains by seq
/// reproduces the exact ingest interleaving — which is what makes replay
/// deterministic and keeps watermark ordering intact.
///
/// Torn tails are expected (the process can die mid-write): a reader
/// stops *within that segment* at the first record whose frame is short
/// or whose CRC mismatches, truncates the garbage tail off the file
/// (best effort), and continues with the stream's later segment files —
/// a crash -> recover -> continue cycle appends to a fresh segment, so
/// records acknowledged after the recovery must never be masked by an
/// older torn frame.

/// Serializes one record into its framed wire form.
std::string FrameRecord(uint64_t seq, const Element& e);

/// Same, appended to an existing buffer — the allocation-free path the
/// ingest-side Append uses with a reused scratch BufWriter.
void FrameRecordTo(uint64_t seq, const Element& e, BufWriter* w);

/// Append side for one stream's segment chain. Not thread-safe — the
/// DurabilityManager serializes access. Append only buffers; Flush does
/// the file IO (group commit).
class ArchiveWriter {
 public:
  ArchiveWriter(std::string root, std::string stream, size_t segment_bytes);
  ~ArchiveWriter();

  /// Buffers an already-framed record (see FrameRecord); the bytes are
  /// copied, the view need only live for the call.
  void AppendFramed(uint64_t seq, std::string_view framed);

  size_t pending_bytes() const { return pending_.size(); }

  /// Writes buffered records to the current segment, rotating to a new
  /// segment file once the current one exceeds the size bound. Flushes
  /// libc buffers to the OS (surviving kill -9); `fsync` additionally
  /// survives an OS crash (the fsync result is checked, and the first
  /// durable flush of a segment also fsyncs its directory). On failure
  /// the buffer is kept for retry and the current segment is abandoned,
  /// so the retry lands in a fresh file.
  Status Flush(bool fsync);

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status EnsureOpen();
  /// The IO of Flush, without the success/failure bookkeeping.
  Status FlushPendingLocked(bool fsync);

  std::string dir_;  // <root>/streams/<stream>
  std::string stream_;
  size_t segment_bytes_;
  std::string pending_;
  uint64_t pending_first_seq_ = 0;
  bool have_pending_ = false;
  FILE* f_ = nullptr;
  size_t seg_bytes_ = 0;
  uint64_t bytes_written_ = 0;
  bool dir_sync_pending_ = false;  // New segment's dirent not yet fsynced.
};

/// One archived element, in global ingest order.
struct ArchivedRecord {
  std::string stream;
  uint64_t seq = 0;
  Element element;
};

/// Reads a whole archive root back in global-seq order by k-way merging
/// the per-stream segment chains. Tolerant of torn tails.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::string root) : root_(std::move(root)) {}
  ~ArchiveReader();

  /// Scans the stream directories. OK (with no records) for an empty or
  /// absent archive.
  Status Open();

  /// Loads the next record in global-seq order. Returns false at end.
  Result<bool> Next(ArchivedRecord* out);

  /// Highest seq returned by Next so far (0 before the first record).
  uint64_t last_seq() const { return last_seq_; }
  /// Torn/corrupt segment tails encountered (each truncated at the last
  /// intact record, best effort, before continuing with the chain).
  size_t torn_streams() const { return torn_streams_; }

 private:
  struct StreamCursor {
    std::string stream;
    std::string dir;
    std::vector<std::string> segments;  // File names, sorted = seq order.
    size_t seg_index = 0;
    FILE* f = nullptr;
    std::string cur_path;  // Path of the open segment (for tail repair).
    ArchivedRecord head;
    bool has_head = false;
    bool done = false;
    uint64_t last_seq = 0;  // Exactly-once guard across segment overlap.
    bool emitted = false;
  };

  /// Advances `c` to its next decodable record; marks it done at the
  /// chain's end. A torn/corrupt frame ends its segment (truncated at
  /// the last intact record), not the chain.
  Status AdvanceCursor(StreamCursor& c);
  Status OpenNextSegment(StreamCursor& c);

  std::string root_;
  std::vector<StreamCursor> cursors_;
  uint64_t last_seq_ = 0;
  size_t torn_streams_ = 0;
};

}  // namespace dur
}  // namespace sqp

#endif  // SQP_DUR_ARCHIVE_H_
