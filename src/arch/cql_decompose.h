#ifndef SQP_ARCH_CQL_DECOMPOSE_H_
#define SQP_ARCH_CQL_DECOMPOSE_H_

#include <memory>
#include <string>

#include "arch/system.h"
#include "cql/analyzer.h"

namespace sqp {

/// Automatic query decomposition across the 3-level architecture
/// (slide 54: "how do we decompose a declarative SQL query?").
///
/// Takes a single-stream windowed aggregate query in CQL text and
/// produces a ThreeLevelConfig: the WHERE clause is pushed down to the
/// low level, the aggregates are split into partial (low) and merge
/// (high) phases, and the shifting window drives per-bucket emission.
/// Rejects queries the architecture cannot split exactly (joins,
/// holistic aggregates, HAVING — the latter must run where final values
/// exist, which the caller can do over the DB sink).
struct CqlDecomposition {
  ThreeLevelConfig config;
  SchemaRef input_schema;
  /// The original query text, for diagnostics.
  std::string query;
};

Result<CqlDecomposition> DecomposeCqlAggregate(const std::string& text,
                                               const cql::Catalog& catalog,
                                               size_t low_slots = 64);

}  // namespace sqp

#endif  // SQP_ARCH_CQL_DECOMPOSE_H_
